package fdgrid_test

import (
	"fmt"
	"testing"

	"fdgrid"
)

// TestFacadeQuickstart exercises the public API end to end, as the
// README shows it.
func TestFacadeQuickstart(t *testing.T) {
	cfg := fdgrid.Config{
		N: 5, T: 2, Seed: 1, MaxSteps: 1_000_000, GST: 500,
		Crashes:   map[fdgrid.ProcID]fdgrid.Time{4: 700},
		Bandwidth: 5,
	}
	sys := fdgrid.MustNewSystem(cfg)
	oracle := fdgrid.NewOmega(sys, 2)
	out := fdgrid.NewOutcome()
	for p := 1; p <= cfg.N; p++ {
		sys.Spawn(fdgrid.ProcID(p), fdgrid.KSetMain(oracle, fdgrid.Value(100+p), out))
	}
	rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
	if !rep.StoppedEarly {
		t.Fatal("timed out")
	}
	if err := out.Check(sys.Pattern(), 2); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeAddOmega exercises the one-call additivity experiment.
func TestFacadeAddOmega(t *testing.T) {
	cfg := fdgrid.Config{
		N: 5, T: 2, Seed: 5, MaxSteps: 200_000, GST: 500, Bandwidth: 5,
	}
	trace, sys, rep, err := fdgrid.AddOmega(cfg, 2, 1, 15_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.StoppedEarly {
		t.Fatal("did not stabilize within budget")
	}
	if err := trace.CheckOmega(sys.Pattern(), 1, 10_000); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeAddOmegaBadConfig propagates config errors.
func TestFacadeAddOmegaBadConfig(t *testing.T) {
	if _, _, _, err := fdgrid.AddOmega(fdgrid.Config{N: 0}, 1, 0, 0); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestFacadeGrid exercises the grid API.
func TestFacadeGrid(t *testing.T) {
	c := fdgrid.Class{Fam: fdgrid.FamEvtS, Param: 3}
	if got := fdgrid.KSetPower(c, 3); got != 2 {
		t.Errorf("KSetPower = %d", got)
	}
	line := fdgrid.GridLine(2, 3)
	if len(line) != 6 {
		t.Errorf("GridLine has %d classes", len(line))
	}
	v := fdgrid.CanTransform(
		[]fdgrid.Class{{Fam: fdgrid.FamEvtS, Param: 3}, {Fam: fdgrid.FamEvtPhi, Param: 1}},
		fdgrid.Class{Fam: fdgrid.FamOmega, Param: 1}, 3)
	if !v.OK {
		t.Errorf("motivating addition rejected: %s", v.Reason)
	}
}

// ExampleCanTransform shows the paper's motivating addition as a
// reducibility query.
func ExampleCanTransform() {
	const t = 3
	v := fdgrid.CanTransform(
		[]fdgrid.Class{{Fam: fdgrid.FamEvtS, Param: t}, {Fam: fdgrid.FamEvtPhi, Param: 1}},
		fdgrid.Class{Fam: fdgrid.FamOmega, Param: 1}, t)
	fmt.Println(v.OK)
	// Output: true
}

// ExampleKSetPower shows grid-line lookups.
func ExampleKSetPower() {
	const t = 3
	fmt.Println(fdgrid.KSetPower(fdgrid.Class{Fam: fdgrid.FamOmega, Param: 2}, t))
	fmt.Println(fdgrid.KSetPower(fdgrid.Class{Fam: fdgrid.FamEvtS, Param: t + 1}, t))
	fmt.Println(fdgrid.KSetPower(fdgrid.Class{Fam: fdgrid.FamPhi, Param: 0}, t))
	// Output:
	// 2
	// 1
	// 4
}

// TestSweepTopLevel drives the exported scenario-sweep engine end to
// end: a small k-set matrix runs in parallel, passes, and reproduces
// byte-identically.
func TestSweepTopLevel(t *testing.T) {
	m := fdgrid.SweepMatrix{
		Name: "top-level", Protocol: "kset-omega",
		Seeds: []int64{0, 1}, Sizes: []fdgrid.SweepSize{{N: 5, T: 2}},
		Patterns: []fdgrid.SweepCrashPattern{{Name: "last-crashes",
			Crashes: []fdgrid.SweepCrashSpec{{Proc: 0, At: 300}}}},
		Combos: []fdgrid.SweepCombo{{Z: 2}},
		GST:    200, MaxSteps: 400_000,
	}
	r1, err := fdgrid.Sweep(m, fdgrid.SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.OK() {
		t.Fatalf("sweep failed: %s", r1.Summary())
	}
	r2, err := fdgrid.Sweep(m, fdgrid.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := r1.CanonicalJSON()
	j2, _ := r2.CanonicalJSON()
	if string(j1) != string(j2) {
		t.Fatal("top-level sweep reports are not byte-identical")
	}
	if len(fdgrid.SweepProtocols()) < 10 {
		t.Errorf("expected the built-in protocol registry, got %v", fdgrid.SweepProtocols())
	}
}

// TestSweepShardedGeneratedAdversaries drives the PR-3 surface through
// the facade: a matrix whose adversary dimension is generated
// (AdversaryFamily), run as two shards and merged back byte-identically
// to the unsharded report.
func TestSweepShardedGeneratedAdversaries(t *testing.T) {
	m := fdgrid.SweepMatrix{
		Name: "top-level-gen", Protocol: "kset-omega",
		Seeds: []int64{0}, Sizes: []fdgrid.SweepSize{{N: 6, T: 2}},
		AdversaryFamilies: []fdgrid.AdversaryFamily{
			{Kind: "staggered", Count: 2, Variants: 2, Seed: 3, Start: 200},
		},
		Combos: []fdgrid.SweepCombo{{Z: 2}},
		GST:    300, MaxSteps: 400_000,
	}
	full, err := fdgrid.Sweep(m, fdgrid.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !full.OK() {
		t.Fatalf("generated-adversary sweep failed: %s", full.Summary())
	}
	want, _ := full.CanonicalJSON()
	var parts []*fdgrid.SweepReport
	for i := 0; i < 2; i++ {
		p, err := fdgrid.Sweep(m, fdgrid.SweepOptions{Shard: fdgrid.SweepShard{Index: i, Count: 2}})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	merged, err := fdgrid.MergeSweepReports(parts)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := merged.CanonicalJSON()
	if string(got) != string(want) {
		t.Fatal("merged shard reports differ from the unsharded run")
	}
}
