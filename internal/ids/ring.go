package ids

import "fmt"

// Binomial returns C(n, k). It panics on overflow or invalid arguments;
// the simulations only use n ≤ MaxProcs with small k, far below overflow.
func Binomial(n, k int) uint64 {
	if k < 0 || n < 0 || k > n {
		panic(fmt.Sprintf("ids: Binomial(%d,%d) invalid", n, k))
	}
	if k > n-k {
		k = n - k
	}
	var c uint64 = 1
	for i := 1; i <= k; i++ {
		next := c * uint64(n-k+i)
		if c != 0 && next/c != uint64(n-k+i) {
			panic(fmt.Sprintf("ids: Binomial(%d,%d) overflows uint64", n, k))
		}
		c = next / uint64(i)
	}
	return c
}

// Ring enumerates the k-subsets of a ground set in lexicographic order,
// cyclically. All processes construct the same Ring, so they scan the same
// sequence (paper §4.1: "This sequence is assumed to be initially known by
// all the processes").
type Ring struct {
	ground  []ProcID // ascending members of the ground set
	k       int
	idx     []int // current combination: ascending indices into ground
	current Set
}

// NewRing returns a ring over the k-subsets of ground, positioned at the
// lexicographically first subset. It panics if k is not in 1..|ground|.
func NewRing(ground Set, k int) *Ring {
	m := ground.Size()
	if k < 1 || k > m {
		panic(fmt.Sprintf("ids: NewRing k=%d out of range 1..%d", k, m))
	}
	r := &Ring{ground: ground.Members(), k: k, idx: make([]int, k)}
	r.reset()
	return r
}

func (r *Ring) reset() {
	for i := range r.idx {
		r.idx[i] = i
	}
	r.recompute()
}

func (r *Ring) recompute() {
	var s Set
	for _, i := range r.idx {
		s = s.Add(r.ground[i])
	}
	r.current = s
}

// Current returns the subset at the ring's current position.
func (r *Ring) Current() Set { return r.current }

// K returns the subset size the ring enumerates.
func (r *Ring) K() int { return r.k }

// Len returns the number of positions in the ring, C(|ground|, k).
func (r *Ring) Len() uint64 { return Binomial(len(r.ground), r.k) }

// Next advances to the lexicographic successor and reports whether the
// ring wrapped past the last subset back to the first.
func (r *Ring) Next() (wrapped bool) {
	m := len(r.ground)
	// Find the rightmost index that can be incremented.
	i := r.k - 1
	for i >= 0 && r.idx[i] == m-r.k+i {
		i--
	}
	if i < 0 {
		r.reset()
		return true
	}
	r.idx[i]++
	for j := i + 1; j < r.k; j++ {
		r.idx[j] = r.idx[j-1] + 1
	}
	r.recompute()
	return false
}

// XPos is a position of the lower wheel's ring (paper Fig. 4): a candidate
// representative Leader within the candidate set X.
type XPos struct {
	Leader ProcID
	X      Set
}

// String implements fmt.Stringer.
func (p XPos) String() string { return fmt.Sprintf("(l=%d, X=%s)", int(p.Leader), p.X) }

// XRing is the lower wheel's infinite sequence
// l¹₁,…,l¹ₓ, l²₁,…,l²ₓ, … over all x-subsets X[1..nb_x] of {1..n},
// wrapping around (paper Fig. 4).
type XRing struct {
	ring *Ring
	j    int // 0-based index of the leader within the current subset
}

// NewXRing returns the ring of (leader, X) pairs over x-subsets of {1..n},
// positioned at (l¹₁, X[1]).
func NewXRing(n, x int) *XRing {
	return &XRing{ring: NewRing(FullSet(n), x)}
}

// Current returns the current (leader, X) position.
func (r *XRing) Current() XPos {
	x := r.ring.Current()
	return XPos{Leader: x.Nth(r.j), X: x}
}

// Next advances one position: next member of the current set, or the first
// member of the next set (paper's Next function).
func (r *XRing) Next() {
	r.j++
	if r.j >= r.ring.K() {
		r.j = 0
		r.ring.Next()
	}
}

// Len returns the number of (leader, X) positions: x · C(n, x).
func (r *XRing) Len() uint64 { return uint64(r.ring.K()) * r.ring.Len() }

// LYPos is a position of the upper wheel's ring: a candidate leader set L
// (the Ω_z output candidate) within the candidate crash region Y.
type LYPos struct {
	L Set // |L| = z, L ⊆ Y
	Y Set // |Y| = t−y+1
}

// String implements fmt.Stringer.
func (p LYPos) String() string { return fmt.Sprintf("(L=%s, Y=%s)", p.L, p.Y) }

// LYRing is the upper wheel's infinite sequence
// L¹₁,…,L¹_nbL, L²₁,…  (paper §4.2.1): Y ranges over the ySize-subsets of
// {1..n}; for each Y, L ranges over the lSize-subsets of Y.
type LYRing struct {
	lSize int
	outer *Ring // Y over {1..n}
	inner *Ring // L over the current Y
}

// NewLYRing returns the ring of (L, Y) pairs, positioned at the first pair.
// It panics unless 1 ≤ lSize ≤ ySize ≤ n.
func NewLYRing(n, ySize, lSize int) *LYRing {
	if ySize < 1 || ySize > n || lSize < 1 || lSize > ySize {
		panic(fmt.Sprintf("ids: NewLYRing(n=%d, ySize=%d, lSize=%d) invalid", n, ySize, lSize))
	}
	outer := NewRing(FullSet(n), ySize)
	return &LYRing{
		lSize: lSize,
		outer: outer,
		inner: NewRing(outer.Current(), lSize),
	}
}

// Current returns the current (L, Y) position.
func (r *LYRing) Current() LYPos {
	return LYPos{L: r.inner.Current(), Y: r.outer.Current()}
}

// Next advances one position: next L within the current Y, or the first L
// of the next Y (paper's Next function on (L, Y) pairs).
func (r *LYRing) Next() {
	if r.inner.Next() {
		r.outer.Next()
		r.inner = NewRing(r.outer.Current(), r.lSize)
	}
}

// Len returns the number of (L, Y) positions:
// C(n, ySize) · C(ySize, lSize).
func (r *LYRing) Len() uint64 {
	return r.outer.Len() * Binomial(r.outer.K(), r.lSize)
}
