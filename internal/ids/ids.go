// Package ids provides process identities and identity sets for the
// failure-detector simulations.
//
// Processes are numbered 1..n as in the paper. Sets are fixed-width
// multi-word bit sets capped at MaxProcs members — wide enough for the
// large-n sweep matrices (n up to 256) while keeping set algebra a
// value-type operation: no heap allocation, comparable, copied by
// assignment.
package ids

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxProcs is the largest number of processes a Set can hold.
const MaxProcs = 256

// SetWords is the number of 64-bit words backing a Set. Exported so the
// scheduler can size its own process masks to match.
const SetWords = MaxProcs / 64

// ProcID identifies a process. Valid IDs are 1..n; 0 is "no process".
type ProcID int

// None is the zero ProcID, meaning "no process".
const None ProcID = 0

// String implements fmt.Stringer.
func (p ProcID) String() string {
	if p == None {
		return "p∅"
	}
	return fmt.Sprintf("p%d", int(p))
}

// Set is an immutable-by-convention bit set of process identities:
// process p occupies bit (p−1)&63 of word (p−1)>>6. The zero value is
// the empty set and is ready to use.
type Set struct {
	w [SetWords]uint64
}

// EmptySet returns the empty set. Equivalent to Set{} but reads better.
func EmptySet() Set { return Set{} }

// NewSet builds a set from the given identities.
// It panics if an identity is outside 1..MaxProcs; identities are trusted
// inputs produced by the simulation, not external data.
func NewSet(members ...ProcID) Set {
	var s Set
	for _, p := range members {
		s = s.Add(p)
	}
	return s
}

// FullSet returns {1..n}.
func FullSet(n int) Set {
	if n < 0 || n > MaxProcs {
		panic(fmt.Sprintf("ids: FullSet(%d) out of range", n))
	}
	var s Set
	for i := 0; i < n>>6; i++ {
		s.w[i] = ^uint64(0)
	}
	if rest := uint(n & 63); rest != 0 {
		s.w[n>>6] = (uint64(1) << rest) - 1
	}
	return s
}

func checkID(p ProcID) {
	if p < 1 || int(p) > MaxProcs {
		panic(fmt.Sprintf("ids: process id %d out of range 1..%d", int(p), MaxProcs))
	}
}

// Add returns s ∪ {p}.
func (s Set) Add(p ProcID) Set {
	checkID(p)
	s.w[(p-1)>>6] |= 1 << (uint(p-1) & 63)
	return s
}

// Remove returns s ∖ {p}.
func (s Set) Remove(p ProcID) Set {
	checkID(p)
	s.w[(p-1)>>6] &^= 1 << (uint(p-1) & 63)
	return s
}

// Contains reports whether p ∈ s.
func (s Set) Contains(p ProcID) bool {
	if p < 1 || int(p) > MaxProcs {
		return false
	}
	return s.w[(p-1)>>6]&(1<<(uint(p-1)&63)) != 0
}

// Size returns |s|.
func (s Set) Size() int {
	n := 0
	for _, w := range s.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether s = ∅.
func (s Set) IsEmpty() bool {
	var u uint64
	for _, w := range s.w {
		u |= w
	}
	return u == 0
}

// Union returns s ∪ o.
func (s Set) Union(o Set) Set {
	for i := range s.w {
		s.w[i] |= o.w[i]
	}
	return s
}

// Intersect returns s ∩ o.
func (s Set) Intersect(o Set) Set {
	for i := range s.w {
		s.w[i] &= o.w[i]
	}
	return s
}

// Minus returns s ∖ o.
func (s Set) Minus(o Set) Set {
	for i := range s.w {
		s.w[i] &^= o.w[i]
	}
	return s
}

// Equal reports whether s = o.
func (s Set) Equal(o Set) bool { return s.w == o.w }

// SubsetOf reports whether s ⊆ o.
func (s Set) SubsetOf(o Set) bool {
	var u uint64
	for i := range s.w {
		u |= s.w[i] &^ o.w[i]
	}
	return u == 0
}

// Intersects reports whether s ∩ o ≠ ∅.
func (s Set) Intersects(o Set) bool {
	var u uint64
	for i := range s.w {
		u |= s.w[i] & o.w[i]
	}
	return u != 0
}

// Min returns the smallest identity in s, or None if s is empty.
func (s Set) Min() ProcID {
	for i, w := range s.w {
		if w != 0 {
			return ProcID(i<<6 + bits.TrailingZeros64(w) + 1)
		}
	}
	return None
}

// Max returns the largest identity in s, or None if s is empty.
func (s Set) Max() ProcID {
	for i := SetWords - 1; i >= 0; i-- {
		if w := s.w[i]; w != 0 {
			return ProcID(i<<6 + 64 - bits.LeadingZeros64(w))
		}
	}
	return None
}

// Members returns the identities in ascending order.
func (s Set) Members() []ProcID {
	out := make([]ProcID, 0, s.Size())
	for i, w := range s.w {
		base := i << 6
		for ; w != 0; w &= w - 1 {
			out = append(out, ProcID(base+bits.TrailingZeros64(w)+1))
		}
	}
	return out
}

// ForEach calls fn on each member in ascending order until fn returns
// false or the set is exhausted.
func (s Set) ForEach(fn func(ProcID) bool) {
	for i, w := range s.w {
		base := i << 6
		for ; w != 0; w &= w - 1 {
			if !fn(ProcID(base + bits.TrailingZeros64(w) + 1)) {
				return
			}
		}
	}
}

// ForEachWord calls fn once per non-zero backing word, in ascending word
// order, with the word's index and bits. Process p occupies bit (p−1)&63
// of word (p−1)>>6, so callers can run their own bit loops over whole
// words — one call per 64 identities instead of one per member, which is
// what keeps n = 256 scans from paying a closure call per process.
func (s Set) ForEachWord(fn func(i int, bits uint64)) {
	for i, w := range s.w {
		if w != 0 {
			fn(i, w)
		}
	}
}

// CountIn returns |s ∩ {1..n}| — a popcount over the live words only,
// with the partial top word masked. The word-level eligibility count for
// quorum and scope checks: no per-member iteration at any n.
func (s Set) CountIn(n int) int {
	if n < 0 {
		return 0
	}
	if n > MaxProcs {
		n = MaxProcs
	}
	c := 0
	for i := 0; i < n>>6; i++ {
		c += bits.OnesCount64(s.w[i])
	}
	if rest := uint(n & 63); rest != 0 {
		c += bits.OnesCount64(s.w[n>>6] & (uint64(1)<<rest - 1))
	}
	return c
}

// IntersectSize returns |s ∩ o| without materializing the intersection.
func (s Set) IntersectSize(o Set) int {
	c := 0
	for i := range s.w {
		c += bits.OnesCount64(s.w[i] & o.w[i])
	}
	return c
}

// ForEachIn calls fn on each member of s ∩ {1..n} in ascending order
// until fn returns false or the members are exhausted — masked
// iteration: ids above n are cut off at the word level, so no per-member
// bound check runs.
func (s Set) ForEachIn(n int, fn func(ProcID) bool) {
	if n > MaxProcs {
		n = MaxProcs
	}
	if n < 1 {
		return
	}
	last := (n - 1) >> 6
	for i := 0; i <= last; i++ {
		w := s.w[i]
		if i == last {
			if rest := uint(n & 63); rest != 0 {
				w &= uint64(1)<<rest - 1
			}
		}
		base := i << 6
		for ; w != 0; w &= w - 1 {
			if !fn(ProcID(base + bits.TrailingZeros64(w) + 1)) {
				return
			}
		}
	}
}

// Nth returns the i-th smallest member (0-based), or None if i is out of
// range.
func (s Set) Nth(i int) ProcID {
	if i < 0 {
		return None
	}
	for j, w := range s.w {
		c := bits.OnesCount64(w)
		if i >= c {
			i -= c
			continue
		}
		for ; i > 0; i-- {
			w &= w - 1
		}
		return ProcID(j<<6 + bits.TrailingZeros64(w) + 1)
	}
	return None
}

// Index returns the 0-based rank of p within s (position in ascending
// order), or -1 if p ∉ s.
func (s Set) Index(p ProcID) int {
	if !s.Contains(p) {
		return -1
	}
	word, bit := int(p-1)>>6, uint(p-1)&63
	rank := bits.OnesCount64(s.w[word] & (uint64(1)<<bit - 1))
	for i := 0; i < word; i++ {
		rank += bits.OnesCount64(s.w[i])
	}
	return rank
}

// String renders the set as {p1,p3,...}.
func (s Set) String() string {
	members := s.Members()
	parts := make([]string, len(members))
	for i, p := range members {
		parts[i] = fmt.Sprintf("%d", int(p))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// SortIDs sorts a slice of process identities in place and returns it.
func SortIDs(ps []ProcID) []ProcID {
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}
