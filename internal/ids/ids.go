// Package ids provides process identities and identity sets for the
// failure-detector simulations.
//
// Processes are numbered 1..n as in the paper. Sets are bit sets capped at
// 64 members, which is far beyond the scale the simulations run at
// (n ≤ 16) while keeping set algebra allocation-free.
package ids

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxProcs is the largest number of processes a Set can hold.
const MaxProcs = 64

// ProcID identifies a process. Valid IDs are 1..n; 0 is "no process".
type ProcID int

// None is the zero ProcID, meaning "no process".
const None ProcID = 0

// String implements fmt.Stringer.
func (p ProcID) String() string {
	if p == None {
		return "p∅"
	}
	return fmt.Sprintf("p%d", int(p))
}

// Set is an immutable-by-convention bit set of process identities.
// The zero value is the empty set and is ready to use.
type Set struct {
	bits uint64
}

// EmptySet returns the empty set. Equivalent to Set{} but reads better.
func EmptySet() Set { return Set{} }

// NewSet builds a set from the given identities.
// It panics if an identity is outside 1..MaxProcs; identities are trusted
// inputs produced by the simulation, not external data.
func NewSet(members ...ProcID) Set {
	var s Set
	for _, p := range members {
		s = s.Add(p)
	}
	return s
}

// FullSet returns {1..n}.
func FullSet(n int) Set {
	if n < 0 || n > MaxProcs {
		panic(fmt.Sprintf("ids: FullSet(%d) out of range", n))
	}
	if n == 0 {
		return Set{}
	}
	if n == MaxProcs {
		return Set{bits: ^uint64(0)}
	}
	return Set{bits: (uint64(1) << n) - 1}
}

func checkID(p ProcID) {
	if p < 1 || int(p) > MaxProcs {
		panic(fmt.Sprintf("ids: process id %d out of range 1..%d", int(p), MaxProcs))
	}
}

// Add returns s ∪ {p}.
func (s Set) Add(p ProcID) Set {
	checkID(p)
	return Set{bits: s.bits | 1<<(uint(p)-1)}
}

// Remove returns s ∖ {p}.
func (s Set) Remove(p ProcID) Set {
	checkID(p)
	return Set{bits: s.bits &^ (1 << (uint(p) - 1))}
}

// Contains reports whether p ∈ s.
func (s Set) Contains(p ProcID) bool {
	if p < 1 || int(p) > MaxProcs {
		return false
	}
	return s.bits&(1<<(uint(p)-1)) != 0
}

// Size returns |s|.
func (s Set) Size() int { return bits.OnesCount64(s.bits) }

// IsEmpty reports whether s = ∅.
func (s Set) IsEmpty() bool { return s.bits == 0 }

// Union returns s ∪ o.
func (s Set) Union(o Set) Set { return Set{bits: s.bits | o.bits} }

// Intersect returns s ∩ o.
func (s Set) Intersect(o Set) Set { return Set{bits: s.bits & o.bits} }

// Minus returns s ∖ o.
func (s Set) Minus(o Set) Set { return Set{bits: s.bits &^ o.bits} }

// Equal reports whether s = o.
func (s Set) Equal(o Set) bool { return s.bits == o.bits }

// SubsetOf reports whether s ⊆ o.
func (s Set) SubsetOf(o Set) bool { return s.bits&^o.bits == 0 }

// Intersects reports whether s ∩ o ≠ ∅.
func (s Set) Intersects(o Set) bool { return s.bits&o.bits != 0 }

// Min returns the smallest identity in s, or None if s is empty.
func (s Set) Min() ProcID {
	if s.bits == 0 {
		return None
	}
	return ProcID(bits.TrailingZeros64(s.bits) + 1)
}

// Max returns the largest identity in s, or None if s is empty.
func (s Set) Max() ProcID {
	if s.bits == 0 {
		return None
	}
	return ProcID(64 - bits.LeadingZeros64(s.bits))
}

// Members returns the identities in ascending order.
func (s Set) Members() []ProcID {
	out := make([]ProcID, 0, s.Size())
	b := s.bits
	for b != 0 {
		i := bits.TrailingZeros64(b)
		out = append(out, ProcID(i+1))
		b &^= 1 << uint(i)
	}
	return out
}

// ForEach calls fn on each member in ascending order until fn returns
// false or the set is exhausted.
func (s Set) ForEach(fn func(ProcID) bool) {
	b := s.bits
	for b != 0 {
		i := bits.TrailingZeros64(b)
		if !fn(ProcID(i + 1)) {
			return
		}
		b &^= 1 << uint(i)
	}
}

// Nth returns the i-th smallest member (0-based), or None if i is out of
// range.
func (s Set) Nth(i int) ProcID {
	if i < 0 || i >= s.Size() {
		return None
	}
	b := s.bits
	for ; i > 0; i-- {
		b &^= 1 << uint(bits.TrailingZeros64(b))
	}
	return ProcID(bits.TrailingZeros64(b) + 1)
}

// Index returns the 0-based rank of p within s (position in ascending
// order), or -1 if p ∉ s.
func (s Set) Index(p ProcID) int {
	if !s.Contains(p) {
		return -1
	}
	mask := uint64(1)<<(uint(p)-1) - 1
	return bits.OnesCount64(s.bits & mask)
}

// String renders the set as {p1,p3,...}.
func (s Set) String() string {
	members := s.Members()
	parts := make([]string, len(members))
	for i, p := range members {
		parts[i] = fmt.Sprintf("%d", int(p))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// SortIDs sorts a slice of process identities in place and returns it.
func SortIDs(ps []ProcID) []ProcID {
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}
