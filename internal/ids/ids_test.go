package ids

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(3, 1, 7)
	if got := s.Size(); got != 3 {
		t.Fatalf("Size() = %d, want 3", got)
	}
	for _, p := range []ProcID{1, 3, 7} {
		if !s.Contains(p) {
			t.Errorf("Contains(%d) = false, want true", p)
		}
	}
	for _, p := range []ProcID{2, 4, 64} {
		if s.Contains(p) {
			t.Errorf("Contains(%d) = true, want false", p)
		}
	}
	if s.Contains(None) {
		t.Error("Contains(None) = true, want false")
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min() = %d, want 1", got)
	}
	if got := s.Max(); got != 7 {
		t.Errorf("Max() = %d, want 7", got)
	}
	if got := s.String(); got != "{1,3,7}" {
		t.Errorf("String() = %q, want {1,3,7}", got)
	}
}

func TestSetZeroValue(t *testing.T) {
	var s Set
	if !s.IsEmpty() {
		t.Error("zero Set not empty")
	}
	if got := s.Min(); got != None {
		t.Errorf("empty Min() = %d, want None", got)
	}
	if got := s.Max(); got != None {
		t.Errorf("empty Max() = %d, want None", got)
	}
	if got := len(s.Members()); got != 0 {
		t.Errorf("empty Members() has %d elements", got)
	}
	if got := s.String(); got != "{}" {
		t.Errorf("empty String() = %q", got)
	}
}

func TestFullSet(t *testing.T) {
	for _, n := range []int{0, 1, 5, 63, 64, 65, 127, 128, 255, 256} {
		s := FullSet(n)
		if got := s.Size(); got != n {
			t.Errorf("FullSet(%d).Size() = %d", n, got)
		}
		if n > 0 && (!s.Contains(1) || !s.Contains(ProcID(n))) {
			t.Errorf("FullSet(%d) missing endpoints", n)
		}
		if n < MaxProcs && s.Contains(ProcID(n+1)) {
			t.Errorf("FullSet(%d) contains %d", n, n+1)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewSet(1, 2, 3)
	b := NewSet(3, 4)
	if got := a.Union(b); !got.Equal(NewSet(1, 2, 3, 4)) {
		t.Errorf("Union = %s", got)
	}
	if got := a.Intersect(b); !got.Equal(NewSet(3)) {
		t.Errorf("Intersect = %s", got)
	}
	if got := a.Minus(b); !got.Equal(NewSet(1, 2)) {
		t.Errorf("Minus = %s", got)
	}
	if !NewSet(1, 2).SubsetOf(a) {
		t.Error("SubsetOf = false, want true")
	}
	if b.SubsetOf(a) {
		t.Error("SubsetOf = true, want false")
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}
	if a.Intersects(NewSet(9)) {
		t.Error("Intersects = true, want false")
	}
	if got := a.Remove(2); !got.Equal(NewSet(1, 3)) {
		t.Errorf("Remove = %s", got)
	}
}

func TestNthAndIndex(t *testing.T) {
	s := NewSet(2, 5, 9)
	want := []ProcID{2, 5, 9}
	for i, p := range want {
		if got := s.Nth(i); got != p {
			t.Errorf("Nth(%d) = %d, want %d", i, got, p)
		}
		if got := s.Index(p); got != i {
			t.Errorf("Index(%d) = %d, want %d", p, got, i)
		}
	}
	if got := s.Nth(3); got != None {
		t.Errorf("Nth(3) = %d, want None", got)
	}
	if got := s.Nth(-1); got != None {
		t.Errorf("Nth(-1) = %d, want None", got)
	}
	if got := s.Index(4); got != -1 {
		t.Errorf("Index(4) = %d, want -1", got)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := NewSet(1, 2, 3, 4)
	var seen []ProcID
	s.ForEach(func(p ProcID) bool {
		seen = append(seen, p)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("ForEach early stop saw %v", seen)
	}
}

func TestCheckIDPanics(t *testing.T) {
	for _, p := range []ProcID{0, -1, MaxProcs + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) did not panic", p)
				}
			}()
			Set{}.Add(p)
		}()
	}
}

// randomSet draws a set over {1..n} for property tests.
func randomSet(r *rand.Rand, n int) Set {
	var s Set
	for p := 1; p <= n; p++ {
		if r.Intn(2) == 0 {
			s = s.Add(ProcID(p))
		}
	}
	return s
}

func TestQuickSetLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// De Morgan-ish and size laws over random sets.
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, 16), randomSet(r, 16)
		u, i := a.Union(b), a.Intersect(b)
		if u.Size()+i.Size() != a.Size()+b.Size() {
			return false
		}
		if !i.SubsetOf(a) || !i.SubsetOf(b) || !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		if !a.Minus(b).Union(i).Equal(a) {
			return false
		}
		// Members round-trips through NewSet.
		if !NewSet(a.Members()...).Equal(a) {
			return false
		}
		return true
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickNthIndexInverse(t *testing.T) {
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r, 20)
		for i := 0; i < s.Size(); i++ {
			if s.Index(s.Nth(i)) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSortIDs(t *testing.T) {
	got := SortIDs([]ProcID{5, 1, 3})
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("SortIDs = %v", got)
	}
}

func TestProcIDString(t *testing.T) {
	if got := ProcID(4).String(); got != "p4" {
		t.Errorf("String() = %q", got)
	}
	if got := None.String(); got != "p∅" {
		t.Errorf("None.String() = %q", got)
	}
}
