package ids

import (
	"testing"
	"testing/quick"
)

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want uint64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {9, 4, 126},
		{16, 8, 12870}, {20, 10, 184756}, {64, 1, 64},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPanics(t *testing.T) {
	for _, c := range [][2]int{{-1, 0}, {3, 4}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Binomial(%d,%d) did not panic", c[0], c[1])
				}
			}()
			Binomial(c[0], c[1])
		}()
	}
}

func TestRingEnumeratesAllSubsetsOnce(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{4, 2}, {5, 3}, {6, 1}, {6, 6}, {7, 4}} {
		r := NewRing(FullSet(tc.n), tc.k)
		seen := map[Set]bool{}
		count := int(r.Len())
		for i := 0; i < count; i++ {
			cur := r.Current()
			if cur.Size() != tc.k {
				t.Fatalf("n=%d k=%d: subset %s has size %d", tc.n, tc.k, cur, cur.Size())
			}
			if seen[cur] {
				t.Fatalf("n=%d k=%d: subset %s repeated", tc.n, tc.k, cur)
			}
			seen[cur] = true
			r.Next()
		}
		if len(seen) != count {
			t.Fatalf("n=%d k=%d: enumerated %d distinct, want %d", tc.n, tc.k, len(seen), count)
		}
		// After Len() steps the ring is back at the first subset.
		first := NewRing(FullSet(tc.n), tc.k).Current()
		if !r.Current().Equal(first) {
			t.Fatalf("n=%d k=%d: ring did not wrap to %s, at %s", tc.n, tc.k, first, r.Current())
		}
	}
}

func TestRingLexOrder(t *testing.T) {
	r := NewRing(FullSet(4), 2)
	want := []Set{
		NewSet(1, 2), NewSet(1, 3), NewSet(1, 4),
		NewSet(2, 3), NewSet(2, 4), NewSet(3, 4),
	}
	for i, w := range want {
		if !r.Current().Equal(w) {
			t.Fatalf("position %d = %s, want %s", i, r.Current(), w)
		}
		wrapped := r.Next()
		if wrapped != (i == len(want)-1) {
			t.Fatalf("position %d: wrapped = %v", i, wrapped)
		}
	}
}

func TestRingOverSubsetGround(t *testing.T) {
	ground := NewSet(2, 5, 7)
	r := NewRing(ground, 2)
	want := []Set{NewSet(2, 5), NewSet(2, 7), NewSet(5, 7)}
	for i, w := range want {
		if !r.Current().Equal(w) {
			t.Fatalf("position %d = %s, want %s", i, r.Current(), w)
		}
		r.Next()
	}
	if !r.Current().Equal(want[0]) {
		t.Fatalf("did not wrap, at %s", r.Current())
	}
}

func TestNewRingPanics(t *testing.T) {
	for _, k := range []int{0, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRing(k=%d) did not panic", k)
				}
			}()
			NewRing(FullSet(3), k)
		}()
	}
}

func TestXRingSequence(t *testing.T) {
	// n=3, x=2: X[1]={1,2}, X[2]={1,3}, X[3]={2,3}; leaders in order.
	r := NewXRing(3, 2)
	want := []XPos{
		{1, NewSet(1, 2)}, {2, NewSet(1, 2)},
		{1, NewSet(1, 3)}, {3, NewSet(1, 3)},
		{2, NewSet(2, 3)}, {3, NewSet(2, 3)},
	}
	if got := r.Len(); got != uint64(len(want)) {
		t.Fatalf("Len() = %d, want %d", got, len(want))
	}
	for lap := 0; lap < 2; lap++ {
		for i, w := range want {
			got := r.Current()
			if got.Leader != w.Leader || !got.X.Equal(w.X) {
				t.Fatalf("lap %d position %d = %s, want %s", lap, i, got, w)
			}
			r.Next()
		}
	}
}

func TestXRingLeaderAlwaysMember(t *testing.T) {
	law := func(nRaw, xRaw uint8) bool {
		n := int(nRaw%8) + 2 // 2..9
		x := int(xRaw)%n + 1 // 1..n
		r := NewXRing(n, x)
		steps := int(r.Len()) + 3
		for i := 0; i < steps; i++ {
			cur := r.Current()
			if !cur.X.Contains(cur.Leader) || cur.X.Size() != x {
				return false
			}
			r.Next()
		}
		return true
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLYRingSequence(t *testing.T) {
	// n=4, |Y|=3, |L|=2: for each of the 4 Y sets, 3 L subsets.
	r := NewLYRing(4, 3, 2)
	if got := r.Len(); got != 12 {
		t.Fatalf("Len() = %d, want 12", got)
	}
	seen := map[LYPos]bool{}
	for i := 0; i < 12; i++ {
		cur := r.Current()
		if cur.Y.Size() != 3 || cur.L.Size() != 2 {
			t.Fatalf("position %d: sizes wrong: %s", i, cur)
		}
		if !cur.L.SubsetOf(cur.Y) {
			t.Fatalf("position %d: L ⊄ Y: %s", i, cur)
		}
		if seen[cur] {
			t.Fatalf("position %d repeated: %s", i, cur)
		}
		seen[cur] = true
		r.Next()
	}
	first := NewLYRing(4, 3, 2).Current()
	got := r.Current()
	if !got.L.Equal(first.L) || !got.Y.Equal(first.Y) {
		t.Fatalf("did not wrap to %s, at %s", first, got)
	}
}

func TestLYRingContainmentProperty(t *testing.T) {
	law := func(seed uint8) bool {
		n := int(seed%5) + 3 // 3..7
		ySize := n - 1
		lSize := (int(seed) % ySize) + 1
		r := NewLYRing(n, ySize, lSize)
		steps := 50
		for i := 0; i < steps; i++ {
			cur := r.Current()
			if !cur.L.SubsetOf(cur.Y) || cur.L.Size() != lSize || cur.Y.Size() != ySize {
				return false
			}
			r.Next()
		}
		return true
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewLYRingPanics(t *testing.T) {
	for _, c := range [][3]int{{4, 5, 1}, {4, 0, 1}, {4, 3, 4}, {4, 3, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLYRing(%v) did not panic", c)
				}
			}()
			NewLYRing(c[0], c[1], c[2])
		}()
	}
}

func TestXPosString(t *testing.T) {
	p := XPos{Leader: 2, X: NewSet(1, 2)}
	if got := p.String(); got == "" {
		t.Error("XPos.String() empty")
	}
	q := LYPos{L: NewSet(1), Y: NewSet(1, 2)}
	if got := q.String(); got == "" {
		t.Error("LYPos.String() empty")
	}
}
