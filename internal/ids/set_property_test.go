package ids

import (
	"math/rand"
	"testing"
)

// wordBoundarySizes are the n values the multi-word representation must
// get right: one bit below, at and above each 64-bit word boundary, plus
// the cap itself.
var wordBoundarySizes = []int{63, 64, 65, 127, 128, 191, 192, 193, 255, 256}

// denseRandomSet draws a set over {1..n} with density d.
func denseRandomSet(r *rand.Rand, n int, d float64) Set {
	var s Set
	for p := 1; p <= n; p++ {
		if r.Float64() < d {
			s = s.Add(ProcID(p))
		}
	}
	return s
}

// refSet is the model implementation the properties are checked against:
// a plain bool slice indexed by process id.
type refSet []bool

func toRef(s Set, n int) refSet {
	r := make(refSet, n+1)
	s.ForEach(func(p ProcID) bool {
		r[p] = true
		return true
	})
	return r
}

// TestSetAcrossWordBoundaries checks the full Set API against the model
// implementation at every boundary size: algebra, membership, rank
// queries and iteration all agree with the bool-slice reference.
func TestSetAcrossWordBoundaries(t *testing.T) {
	r := rand.New(rand.NewSource(20260729))
	for _, n := range wordBoundarySizes {
		for round := 0; round < 40; round++ {
			a := denseRandomSet(r, n, 0.3)
			b := denseRandomSet(r, n, 0.7)
			ra, rb := toRef(a, n), toRef(b, n)

			u, i, m := a.Union(b), a.Intersect(b), a.Minus(b)
			size := 0
			for p := 1; p <= n; p++ {
				id := ProcID(p)
				if got, want := u.Contains(id), ra[p] || rb[p]; got != want {
					t.Fatalf("n=%d Union.Contains(%d) = %v, want %v", n, p, got, want)
				}
				if got, want := i.Contains(id), ra[p] && rb[p]; got != want {
					t.Fatalf("n=%d Intersect.Contains(%d) = %v, want %v", n, p, got, want)
				}
				if got, want := m.Contains(id), ra[p] && !rb[p]; got != want {
					t.Fatalf("n=%d Minus.Contains(%d) = %v, want %v", n, p, got, want)
				}
				if ra[p] {
					size++
				}
			}
			if got := a.Size(); got != size {
				t.Fatalf("n=%d Size() = %d, want %d", n, got, size)
			}
			if u.Size()+i.Size() != a.Size()+b.Size() {
				t.Fatalf("n=%d inclusion–exclusion violated", n)
			}
			if !i.SubsetOf(a) || !i.SubsetOf(b) || !a.SubsetOf(u) || !b.SubsetOf(u) {
				t.Fatalf("n=%d subset laws violated", n)
			}
			if a.Intersects(b) != !i.IsEmpty() {
				t.Fatalf("n=%d Intersects disagrees with Intersect", n)
			}
			if !m.Union(i).Equal(a) {
				t.Fatalf("n=%d Minus/Union does not reassemble", n)
			}
		}
	}
}

// TestSetIterationRoundTrips checks Members/ForEach/Nth/Index/Min/Max
// consistency at the boundary sizes: ascending order, rank inverses, and
// Members round-tripping through NewSet.
func TestSetIterationRoundTrips(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range wordBoundarySizes {
		for round := 0; round < 40; round++ {
			s := denseRandomSet(r, n, 0.4)
			members := s.Members()
			if len(members) != s.Size() {
				t.Fatalf("n=%d len(Members) = %d, Size = %d", n, len(members), s.Size())
			}
			for i, p := range members {
				if i > 0 && members[i-1] >= p {
					t.Fatalf("n=%d Members not strictly ascending at %d", n, i)
				}
				if got := s.Nth(i); got != p {
					t.Fatalf("n=%d Nth(%d) = %d, want %d", n, i, got, p)
				}
				if got := s.Index(p); got != i {
					t.Fatalf("n=%d Index(%d) = %d, want %d", n, p, got, i)
				}
			}
			if got := s.Nth(len(members)); got != None {
				t.Fatalf("n=%d Nth past the end = %d", n, got)
			}
			if !NewSet(members...).Equal(s) {
				t.Fatalf("n=%d Members does not round-trip through NewSet", n)
			}
			var walked []ProcID
			s.ForEach(func(p ProcID) bool {
				walked = append(walked, p)
				return true
			})
			if len(walked) != len(members) {
				t.Fatalf("n=%d ForEach walked %d of %d members", n, len(walked), len(members))
			}
			for i := range walked {
				if walked[i] != members[i] {
					t.Fatalf("n=%d ForEach order diverges at %d", n, i)
				}
			}
			if len(members) > 0 {
				if s.Min() != members[0] || s.Max() != members[len(members)-1] {
					t.Fatalf("n=%d Min/Max = %d/%d, want %d/%d",
						n, s.Min(), s.Max(), members[0], members[len(members)-1])
				}
			} else if s.Min() != None || s.Max() != None {
				t.Fatalf("n=%d empty set has Min/Max", n)
			}
		}
	}
}

// TestWordLevelAccessors checks the word-level helpers the hot paths
// use — ForEachWord, CountIn, IntersectSize, ForEachIn — against the
// bool-slice model at every boundary size, including sets with members
// above the n horizon (the masked-top-word case CountIn and ForEachIn
// must cut off exactly).
func TestWordLevelAccessors(t *testing.T) {
	r := rand.New(rand.NewSource(20260807))
	for _, n := range wordBoundarySizes {
		for round := 0; round < 40; round++ {
			// Draw over the full id space so members above n exercise
			// the horizon masking; a second set for the intersection.
			a := denseRandomSet(r, MaxProcs, 0.3)
			b := denseRandomSet(r, MaxProcs, 0.5)
			ra := toRef(a, MaxProcs)

			var rebuilt Set
			total := 0
			prev := -1
			a.ForEachWord(func(i int, bits uint64) {
				if bits == 0 {
					t.Fatalf("n=%d ForEachWord visited a zero word %d", n, i)
				}
				if i <= prev {
					t.Fatalf("n=%d ForEachWord words out of order: %d after %d", n, i, prev)
				}
				prev = i
				for w := bits; w != 0; w &= w - 1 {
					rebuilt = rebuilt.Add(ProcID(i<<6 + trailingZeros(w) + 1))
					total++
				}
			})
			if !rebuilt.Equal(a) || total != a.Size() {
				t.Fatalf("n=%d ForEachWord does not reassemble the set", n)
			}

			want := 0
			for p := 1; p <= n; p++ {
				if ra[p] {
					want++
				}
			}
			if got := a.CountIn(n); got != want {
				t.Fatalf("n=%d CountIn = %d, want %d", n, got, want)
			}
			if got, want := a.IntersectSize(b), a.Intersect(b).Size(); got != want {
				t.Fatalf("n=%d IntersectSize = %d, want %d", n, got, want)
			}

			var walked []ProcID
			a.ForEachIn(n, func(p ProcID) bool {
				walked = append(walked, p)
				return true
			})
			if len(walked) != a.CountIn(n) {
				t.Fatalf("n=%d ForEachIn walked %d members, CountIn says %d", n, len(walked), a.CountIn(n))
			}
			for i, p := range walked {
				if int(p) > n || !ra[p] {
					t.Fatalf("n=%d ForEachIn yielded %d (beyond horizon or non-member)", n, p)
				}
				if i > 0 && walked[i-1] >= p {
					t.Fatalf("n=%d ForEachIn not strictly ascending at %d", n, i)
				}
			}

			if len(walked) > 1 {
				stop := len(walked) / 2
				seen := 0
				a.ForEachIn(n, func(ProcID) bool {
					seen++
					return seen < stop
				})
				if seen != stop {
					t.Fatalf("n=%d ForEachIn ignored early stop: %d visits, want %d", n, seen, stop)
				}
			}
		}
	}
	if got := FullSet(MaxProcs).CountIn(0); got != 0 {
		t.Fatalf("CountIn(0) = %d, want 0", got)
	}
	if got := FullSet(MaxProcs).CountIn(-1); got != 0 {
		t.Fatalf("CountIn(-1) = %d, want 0", got)
	}
}

func trailingZeros(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}

// TestSetSingleBitPerBoundary pins the exact bit placement at every
// boundary id: a singleton behaves identically wherever its word is.
func TestSetSingleBitPerBoundary(t *testing.T) {
	for _, n := range wordBoundarySizes {
		p := ProcID(n)
		s := NewSet(p)
		if s.Size() != 1 || !s.Contains(p) || s.Min() != p || s.Max() != p {
			t.Fatalf("singleton {%d} misbehaves: %s", p, s)
		}
		if s.Contains(p-1) || (n < MaxProcs && s.Contains(p+1)) {
			t.Fatalf("singleton {%d} bleeds into neighbours", p)
		}
		if got := s.Remove(p); !got.IsEmpty() {
			t.Fatalf("Remove(%d) left %s", p, got)
		}
		if got := FullSet(n).Minus(s).Size(); got != n-1 {
			t.Fatalf("FullSet(%d) minus {%d} has size %d", n, p, got)
		}
	}
}
