package ids

import (
	"math/bits"
	"testing"
)

// FuzzSetOps drives a Set and a bool-slice model through the same
// operation stream decoded from the fuzz input and checks they agree.
// Each pair of input bytes is one operation: the first selects the op,
// the second the process id (mapped into 1..MaxProcs).
//
// Run as a plain test it replays the seed corpus; `go test -fuzz
// FuzzSetOps ./internal/ids` explores further.
func FuzzSetOps(f *testing.F) {
	f.Add([]byte{0, 1, 1, 64, 0, 65, 2, 64, 1, 255})
	f.Add([]byte{0, 63, 0, 64, 0, 127, 0, 128, 0, 255, 3, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Set
		model := make([]bool, MaxProcs+1)
		for i := 0; i+1 < len(data); i += 2 {
			p := ProcID(int(data[i+1])%MaxProcs + 1)
			switch data[i] % 4 {
			case 0:
				s = s.Add(p)
				model[p] = true
			case 1:
				s = s.Remove(p)
				model[p] = false
			case 2:
				if got := s.Contains(p); got != model[p] {
					t.Fatalf("Contains(%d) = %v, model says %v", p, got, model[p])
				}
			case 3:
				s = s.Intersect(FullSet(int(p)))
				for q := int(p) + 1; q <= MaxProcs; q++ {
					model[q] = false
				}
			}
		}
		size := 0
		var members []ProcID
		for p := 1; p <= MaxProcs; p++ {
			if model[p] {
				size++
				members = append(members, ProcID(p))
			}
		}
		if got := s.Size(); got != size {
			t.Fatalf("Size() = %d, model has %d members", got, size)
		}
		if !NewSet(members...).Equal(s) {
			t.Fatalf("model members %v do not rebuild the set %s", members, s)
		}
		for i, p := range members {
			if s.Nth(i) != p || s.Index(p) != i {
				t.Fatalf("rank queries diverge at member %d", i)
			}
		}
		// Word-level helpers agree with the model at every horizon the
		// final set could be cut at (including word boundaries).
		for _, n := range []int{1, 63, 64, 65, 128, 192, 255, MaxProcs} {
			count := 0
			for p := 1; p <= n; p++ {
				if model[p] {
					count++
				}
			}
			if got := s.CountIn(n); got != count {
				t.Fatalf("CountIn(%d) = %d, model has %d", n, got, count)
			}
			walked := 0
			s.ForEachIn(n, func(p ProcID) bool {
				if int(p) > n || !model[p] {
					t.Fatalf("ForEachIn(%d) yielded %d", n, p)
				}
				walked++
				return true
			})
			if walked != count {
				t.Fatalf("ForEachIn(%d) walked %d, model has %d", n, walked, count)
			}
		}
		if got := s.IntersectSize(s); got != size {
			t.Fatalf("IntersectSize(self) = %d, want %d", got, size)
		}
		words := 0
		s.ForEachWord(func(i int, w uint64) {
			if w == 0 {
				t.Fatalf("ForEachWord visited zero word %d", i)
			}
			words += bits.OnesCount64(w)
		})
		if words != size {
			t.Fatalf("ForEachWord saw %d bits, model has %d", words, size)
		}
	})
}
