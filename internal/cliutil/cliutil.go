// Package cliutil holds small helpers shared by the repository's
// command-line tools: crash-schedule parsing and plain-text tables.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// ParseCrashes parses a crash schedule of the form "p:t,p:t", e.g.
// "3:0,5:400" (process 3 crashes initially, process 5 at tick 400).
// The empty string yields an empty schedule.
func ParseCrashes(spec string, n int) (map[ids.ProcID]sim.Time, error) {
	out := make(map[ids.ProcID]sim.Time)
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("cliutil: bad crash entry %q (want p:t)", part)
		}
		p, err := strconv.Atoi(kv[0])
		if err != nil || p < 1 || p > n {
			return nil, fmt.Errorf("cliutil: bad process id %q", kv[0])
		}
		at, err := strconv.ParseInt(kv[1], 10, 64)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("cliutil: bad crash time %q", kv[1])
		}
		id := ids.ProcID(p)
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("cliutil: duplicate crash entry for process %d", p)
		}
		out[id] = sim.Time(at)
	}
	return out, nil
}

// Table renders rows as aligned plain text (and, with Markdown set, as a
// GitHub-flavoured markdown table).
type Table struct {
	Headers  []string
	Rows     [][]string
	Markdown bool
}

// Add appends a row; values are stringified with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	width := make([]int, cols)
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i := 0; i < cols && i < len(r); i++ {
			if len(r[i]) > width[i] {
				width[i] = len(r[i])
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if t.Markdown {
				b.WriteString("| ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", width[i]-len(cell)))
			if !t.Markdown {
				b.WriteString("  ")
			} else {
				b.WriteString(" ")
			}
		}
		if t.Markdown {
			b.WriteString("|")
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	if t.Markdown {
		sep := make([]string, cols)
		for i := range sep {
			sep[i] = strings.Repeat("-", width[i])
		}
		writeRow(sep)
	} else {
		under := make([]string, cols)
		for i := range under {
			under[i] = strings.Repeat("-", width[i])
		}
		writeRow(under)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
