package cliutil

import (
	"strings"
	"testing"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

func TestParseCrashes(t *testing.T) {
	got, err := ParseCrashes("3:0, 5:400", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[3] != 0 || got[5] != 400 {
		t.Errorf("got %v", got)
	}
	empty, err := ParseCrashes("  ", 6)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty spec: %v %v", empty, err)
	}
	bad := []string{"3", "x:1", "3:x", "9:1", "0:1", "3:-2", "3:1,3:2"}
	for _, spec := range bad {
		if _, err := ParseCrashes(spec, 6); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseCrashesTypes(t *testing.T) {
	got, _ := ParseCrashes("2:7", 3)
	var _ map[ids.ProcID]sim.Time = got
}

func TestTablePlain(t *testing.T) {
	tab := &Table{Headers: []string{"a", "long-header"}}
	tab.Add(1, "x")
	tab.Add("yy", 234)
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[0], "long-header") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "1 ") {
		t.Errorf("row misaligned: %q", lines[2])
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{Markdown: true, Headers: []string{"h1", "h2"}}
	tab.Add("v", 2)
	s := tab.String()
	if !strings.Contains(s, "| h1 | h2 |") {
		t.Errorf("markdown header missing:\n%s", s)
	}
	if !strings.Contains(s, "| -- | -- |") {
		t.Errorf("markdown separator missing:\n%s", s)
	}
	if !strings.Contains(s, "| v  | 2  |") {
		t.Errorf("markdown row missing:\n%s", s)
	}
}

func TestTableShortRow(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b", "c"}}
	tab.Add("only")
	if s := tab.String(); !strings.Contains(s, "only") {
		t.Errorf("short row mangled:\n%s", s)
	}
}
