package benchrec

import (
	"strings"
	"testing"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{42}, 42},
		{"odd", []float64{3, 1, 2}, 2},
		// Even length: the upper-middle element (index len/2 of the
		// sorted samples) — the convention the gate and the EXP-PERF
		// renderer both rely on.
		{"even", []float64{4, 1, 3, 2}, 3},
		{"unsorted duplicates", []float64{5, 5, 1, 5}, 5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("%s: Median(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
	// Median must not reorder the caller's slice.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestParseBenchOutput(t *testing.T) {
	out, err := ParseBenchOutput(strings.NewReader(`
goos: linux
goarch: amd64
BenchmarkSchedulerTick-8     	 1000000	        52.7 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedulerTick-8     	 1000000	        54.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedulerSend       	  500000	       642.5 ns/op
BenchmarkSweep/full-16       	       3	 350000000 ns/op	     151 cells
PASS
ok  	fdgrid	12.3s
`))
	if err != nil {
		t.Fatal(err)
	}
	// The GOMAXPROCS suffix is stripped: keys compare across machines,
	// and a suffix-less 1-CPU line lands under the same name.
	tick, ok := out["BenchmarkSchedulerTick"]
	if !ok {
		t.Fatalf("keys: %v", out)
	}
	if len(tick.NsOp) != 2 || tick.NsOp[0] != 52.7 || tick.NsOp[1] != 54.1 {
		t.Errorf("tick samples %v", tick.NsOp)
	}
	if len(tick.Raw) != 2 {
		t.Errorf("tick raw lines %d, want 2", len(tick.Raw))
	}
	if got := out["BenchmarkSchedulerSend"]; got == nil || len(got.NsOp) != 1 {
		t.Errorf("suffix-less benchmark not parsed: %+v", got)
	}
	sweep := out["BenchmarkSweep/full"]
	if sweep == nil {
		t.Fatal("sub-benchmark name not parsed")
	}
	if got := sweep.Metrics["cells"]; len(got) != 1 || got[0] != 151 {
		t.Errorf("custom metric = %v", sweep.Metrics)
	}
}

// TestParseBenchOutputTruncated: a result line cut off mid-way (a
// crashed run, a full disk) must not produce phantom samples, and its
// parseable prefix is kept.
func TestParseBenchOutputTruncated(t *testing.T) {
	out, err := ParseBenchOutput(strings.NewReader(
		"BenchmarkSchedulerTick-8 \t 1000000\t        52.7 ns/op\t     17 B\n" + // unit cut off mid-pair is kept as metric "B"
			"BenchmarkSchedulerSend-8 \t  500000\t       642.5\n" + // value with no unit at all
			"BenchmarkTrunca"))
	if err != nil {
		t.Fatal(err)
	}
	tick := out["BenchmarkSchedulerTick"]
	if tick == nil || len(tick.NsOp) != 1 {
		t.Fatalf("truncated-line benchmark parsed as %+v", tick)
	}
	send := out["BenchmarkSchedulerSend"]
	if send == nil {
		t.Fatal("value-only line dropped entirely")
	}
	if len(send.NsOp) != 0 {
		t.Errorf("value with no unit counted as ns/op: %v", send.NsOp)
	}
	if Median(send.NsOp) != 0 {
		t.Error("no-sample benchmark must have median 0 (the gate skips it)")
	}
	if _, ok := out["BenchmarkTrunca"]; ok {
		t.Error("name-only fragment produced a benchmark")
	}
}

// TestParseBenchOutputNoResults: a run that produced no benchmark lines
// (build failure output, -bench matching nothing) parses to an empty
// map, not an error — the gate's "gated nothing" check handles it.
func TestParseBenchOutputNoResults(t *testing.T) {
	out, err := ParseBenchOutput(strings.NewReader("PASS\nok  \tfdgrid\t0.01s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("parsed %d benchmarks from a result-free run", len(out))
	}
	out, err = ParseBenchOutput(strings.NewReader(""))
	if err != nil || len(out) != 0 {
		t.Errorf("empty input: %v, %v", out, err)
	}
}
