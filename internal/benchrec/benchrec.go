// Package benchrec defines the on-disk layout of the committed
// benchmark record (BENCH_PR3.json) and the parser for `go test -bench`
// text output. cmd/bench2json writes the record, cmd/experiments
// renders it (the EXP-PERF section) and cmd/benchgate gates CI on it,
// so the schema and parser live here, shared, rather than drifting
// apart in three mirrors.
package benchrec

import (
	"bufio"
	"encoding/json"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark aggregates one benchmark's samples across -count runs.
type Benchmark struct {
	NsOp    []float64            `json:"ns_op"`
	Metrics map[string][]float64 `json:"metrics,omitempty"`
	Raw     []string             `json:"raw"` // benchstat-compatible lines
}

// Record is the file layout. Baseline, when present, is a Record-shaped
// reference measurement (the PR-1 scheduler) preserved across
// regenerations of the current numbers. SweepCells records how many
// cells the timed suite swept (the suite grows across PRs, so wall
// times across records compare only alongside their cell counts; the
// JSON key of SweepWallS is frozen for baseline compatibility, 151 was
// the PR-1 suite size).
type Record struct {
	Note       string                `json:"note,omitempty"`
	Machine    string                `json:"machine,omitempty"`
	SweepCells int                   `json:"sweep_cells,omitempty"`
	SweepWallS []float64             `json:"sweep_151_cells_wall_s,omitempty"`
	Benchmarks map[string]*Benchmark `json:"benchmarks"`
	Baseline   json.RawMessage       `json:"baseline,omitempty"`
}

// Median of a sample slice (0 when empty).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// benchLine matches one `go test -bench` result line. The name group is
// lazy so the `-N` GOMAXPROCS suffix (absent on a 1-CPU box, present
// everywhere else) lands in its own group and is stripped — baseline
// keys must compare equal across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+(.*)$`)

// ParseBenchOutput parses `go test -bench` text into per-benchmark
// sample aggregates keyed by benchmark name (GOMAXPROCS suffix
// stripped). Non-benchmark lines are ignored.
func ParseBenchOutput(r io.Reader) (map[string]*Benchmark, error) {
	out := map[string]*Benchmark{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := out[m[1]]
		if b == nil {
			b = &Benchmark{Metrics: map[string][]float64{}}
			out[m[1]] = b
		}
		b.Raw = append(b.Raw, line)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsOp = append(b.NsOp, v)
			default:
				b.Metrics[unit] = append(b.Metrics[unit], v)
			}
		}
	}
	return out, sc.Err()
}
