// Package benchrec defines the on-disk layout of the committed
// benchmark record (BENCH_PR2.json). cmd/bench2json writes it and
// cmd/experiments renders it (the EXP-PERF section), so the schema
// lives here, shared, rather than drifting apart in two mirrors.
package benchrec

import (
	"encoding/json"
	"sort"
)

// Benchmark aggregates one benchmark's samples across -count runs.
type Benchmark struct {
	NsOp    []float64            `json:"ns_op"`
	Metrics map[string][]float64 `json:"metrics,omitempty"`
	Raw     []string             `json:"raw"` // benchstat-compatible lines
}

// Record is the file layout. Baseline, when present, is a Record-shaped
// reference measurement (the PR-1 scheduler) preserved across
// regenerations of the current numbers.
type Record struct {
	Note       string                `json:"note,omitempty"`
	Machine    string                `json:"machine,omitempty"`
	SweepWallS []float64             `json:"sweep_151_cells_wall_s,omitempty"`
	Benchmarks map[string]*Benchmark `json:"benchmarks"`
	Baseline   json.RawMessage       `json:"baseline,omitempty"`
}

// Median of a sample slice (0 when empty).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
