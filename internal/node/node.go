// Package node hosts a stack of protocol layers on one simulated process.
//
// The paper composes algorithms: a transformation (e.g. the two wheels)
// runs underneath an agreement protocol and feeds it an emulated failure
// detector. On a Node, lower layers intercept the raw message stream —
// consuming their own protocol messages, relaying reliable broadcasts —
// while the top-level protocol drives the event loop in blocking style
// (Step / WaitUntil). Every step also gives each layer a Poll call, which
// is where the layers' autonomous tasks ("repeat forever" in the paper's
// pseudo-code) make progress.
package node

import (
	"fdgrid/internal/sim"
)

// Layer is one protocol layer in the stack.
//
// Layers run entirely on the owning process's goroutine. Emulated
// failure detector outputs they expose are read by samplers and other
// processes under the same run token (see the internal/sim concurrency
// contract), so no internal locking is needed.
type Layer interface {
	// Handle inspects one message coming up the stack. It returns the
	// (possibly rewritten) message and true to pass it further up, or
	// false to consume it.
	Handle(m sim.Message) (sim.Message, bool)
	// Poll runs the layer's autonomous tasks. It is called at least once
	// per event-loop step (message or tick).
	Poll()
}

// WakeHinter is an optional Layer extension declaring when the layer's
// Poll next needs to run without a message having arrived: NextWake
// returns the earliest future tick at which the layer's autonomous tasks
// may have something to do (sim.Never for purely message-driven layers).
// The node sleeps until the earliest layer hint — a layer that does not
// implement WakeHinter keeps the node waking every tick, which is always
// correct but prevents the scheduler from skipping idle virtual time.
type WakeHinter interface {
	NextWake(now sim.Time) sim.Time
}

// Node is one process's protocol stack.
type Node struct {
	env    *sim.Env
	layers []Layer // bottom (closest to the network) first

	// hinters caches the layers' WakeHinter views; dense is set when any
	// layer lacks one, pinning the node to every-tick wakes. Cached at
	// assembly so the per-step path does no interface assertions.
	hinters []WakeHinter
	dense   bool
}

// New assembles a stack over env; layers are ordered bottom-up.
func New(env *sim.Env, layers ...Layer) *Node {
	nd := &Node{env: env}
	for _, l := range layers {
		nd.Push(l)
	}
	return nd
}

// Env returns the process environment.
func (nd *Node) Env() *sim.Env { return nd.env }

// Push appends a layer on top of the stack.
func (nd *Node) Push(l Layer) {
	nd.layers = append(nd.layers, l)
	if h, ok := l.(WakeHinter); ok {
		nd.hinters = append(nd.hinters, h)
	} else {
		nd.dense = true
	}
}

// Step advances the event loop once: it blocks for the next message or
// tick, lets every layer poll, and filters a received message up the
// stack. It returns (msg, true) if a message survived to the top, and
// (Message{}, false) on ticks or consumed messages.
func (nd *Node) Step() (sim.Message, bool) {
	return nd.step(nd.env.Now() + 1)
}

// StepUntil is Step with a wake condition for the top-level protocol: the
// node blocks until a message arrives or the clock reaches wake — or any
// layer's NextWake hint, whichever is earliest. A top level whose wait is
// purely message-driven passes sim.Never.
func (nd *Node) StepUntil(wake sim.Time) (sim.Message, bool) {
	return nd.step(wake)
}

func (nd *Node) step(wake sim.Time) (sim.Message, bool) {
	if nd.dense {
		// Some layer declares no wake hint: wake every tick (StepUntil
		// clamps a past wake to the next tick).
		wake = 0
	} else {
		now := nd.env.Now()
		for _, h := range nd.hinters {
			if w := h.NextWake(now); w < wake {
				wake = w
			}
		}
	}
	m, ok := nd.env.StepUntil(wake)
	if ok {
		for _, l := range nd.layers {
			m, ok = l.Handle(m)
			if !ok {
				break
			}
		}
	}
	for _, l := range nd.layers {
		l.Poll()
	}
	return m, ok
}

// WaitUntil runs the event loop until pred() holds, feeding surviving
// messages to onMsg (may be nil). pred is evaluated before the first step
// and after every step. The node wakes on every tick, so pred may depend
// on anything (time, oracle outputs, messages).
func (nd *Node) WaitUntil(pred func() bool, onMsg func(sim.Message)) {
	for !pred() {
		m, ok := nd.Step()
		if ok && onMsg != nil {
			onMsg(m)
		}
	}
}

// WaitOn is WaitUntil for message-driven predicates: pred may only
// change when a message is handled (by a layer or onMsg), so the node
// sleeps between messages instead of waking every tick. Layer wake
// hints still apply.
func (nd *Node) WaitOn(pred func() bool, onMsg func(sim.Message)) {
	for !pred() {
		m, ok := nd.StepUntil(sim.Never)
		if ok && onMsg != nil {
			onMsg(m)
		}
	}
}

// RunForever drives the event loop until the process is crashed or the
// run stops (the Env unwinds the goroutine). Used by transformation-only
// processes that have no top-level protocol.
func (nd *Node) RunForever() {
	// Initial poll round: layer autonomous tasks take their first step
	// before the node first parks (with wake hints the first pure time
	// wake may otherwise never come).
	for _, l := range nd.layers {
		l.Poll()
	}
	for {
		nd.StepUntil(sim.Never)
	}
}
