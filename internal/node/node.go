// Package node hosts a stack of protocol layers on one simulated process.
//
// The paper composes algorithms: a transformation (e.g. the two wheels)
// runs underneath an agreement protocol and feeds it an emulated failure
// detector. On a Node, lower layers intercept the raw message stream —
// consuming their own protocol messages, relaying reliable broadcasts —
// while the top-level protocol drives the event loop in blocking style
// (Step / WaitUntil). Every step also gives each layer a Poll call, which
// is where the layers' autonomous tasks ("repeat forever" in the paper's
// pseudo-code) make progress.
package node

import (
	"fdgrid/internal/sim"
)

// Layer is one protocol layer in the stack.
//
// Layers run entirely on the owning process's goroutine; they need
// internal locking only if they expose state to other goroutines (e.g.
// emulated failure detector outputs read by samplers).
type Layer interface {
	// Handle inspects one message coming up the stack. It returns the
	// (possibly rewritten) message and true to pass it further up, or
	// false to consume it.
	Handle(m sim.Message) (sim.Message, bool)
	// Poll runs the layer's autonomous tasks. It is called at least once
	// per event-loop step (message or tick).
	Poll()
}

// Node is one process's protocol stack.
type Node struct {
	env    *sim.Env
	layers []Layer // bottom (closest to the network) first
}

// New assembles a stack over env; layers are ordered bottom-up.
func New(env *sim.Env, layers ...Layer) *Node {
	return &Node{env: env, layers: layers}
}

// Env returns the process environment.
func (nd *Node) Env() *sim.Env { return nd.env }

// Push appends a layer on top of the stack.
func (nd *Node) Push(l Layer) { nd.layers = append(nd.layers, l) }

// Step advances the event loop once: it blocks for the next message or
// tick, lets every layer poll, and filters a received message up the
// stack. It returns (msg, true) if a message survived to the top, and
// (Message{}, false) on ticks or consumed messages.
func (nd *Node) Step() (sim.Message, bool) {
	m, ok := nd.env.Step()
	if ok {
		for _, l := range nd.layers {
			m, ok = l.Handle(m)
			if !ok {
				break
			}
		}
	}
	for _, l := range nd.layers {
		l.Poll()
	}
	return m, ok
}

// WaitUntil runs the event loop until pred() holds, feeding surviving
// messages to onMsg (may be nil). pred is evaluated before the first step
// and after every step.
func (nd *Node) WaitUntil(pred func() bool, onMsg func(sim.Message)) {
	for !pred() {
		m, ok := nd.Step()
		if ok && onMsg != nil {
			onMsg(m)
		}
	}
}

// RunForever drives the event loop until the process is crashed or the
// run stops (the Env unwinds the goroutine). Used by transformation-only
// processes that have no top-level protocol.
func (nd *Node) RunForever() {
	for {
		nd.Step()
	}
}
