package node

import (
	"sync"
	"testing"

	"fdgrid/internal/sim"
)

// countingLayer records Handle/Poll calls and optionally consumes or
// rewrites messages.
type countingLayer struct {
	mu      sync.Mutex
	handled int
	polled  int
	consume func(m sim.Message) bool
	rewrite func(m sim.Message) sim.Message
}

func (l *countingLayer) Handle(m sim.Message) (sim.Message, bool) {
	l.mu.Lock()
	l.handled++
	l.mu.Unlock()
	if l.consume != nil && l.consume(m) {
		return sim.Message{}, false
	}
	if l.rewrite != nil {
		m = l.rewrite(m)
	}
	return m, true
}

func (l *countingLayer) Poll() {
	l.mu.Lock()
	l.polled++
	l.mu.Unlock()
}

func (l *countingLayer) counts() (int, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.handled, l.polled
}

func TestStackFiltersBottomUp(t *testing.T) {
	sys := sim.MustNew(sim.Config{N: 2, T: 0, Seed: 1, MaxSteps: 50_000})
	bottom := &countingLayer{consume: func(m sim.Message) bool { return m.Tag == sim.Intern("eat") }}
	top := &countingLayer{rewrite: func(m sim.Message) sim.Message {
		m.Tag = sim.Intern("rewritten:" + m.Tag.String())
		return m
	}}
	var mu sync.Mutex
	var got []string
	sys.Spawn(1, func(env *sim.Env) {
		env.Send(2, sim.Intern("eat"), nil)
		env.Send(2, sim.Intern("pass"), nil)
		env.Send(2, sim.Intern("pass2"), nil)
		for {
			env.Step()
		}
	})
	sys.Spawn(2, func(env *sim.Env) {
		nd := New(env, bottom, top)
		for {
			m, ok := nd.Step()
			if ok {
				mu.Lock()
				got = append(got, m.Tag.String())
				mu.Unlock()
			}
		}
	})
	sys.Run(func() bool {
		mu.Lock()
		defer mu.Unlock()
		h, _ := bottom.counts()
		return h == 3 && len(got) >= 2
	})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("top level saw %v", got)
	}
	for _, tag := range got {
		if tag != "rewritten:pass" && tag != "rewritten:pass2" {
			t.Errorf("unexpected tag %q", tag)
		}
	}
	h, p := bottom.counts()
	if h != 3 {
		t.Errorf("bottom handled %d messages, want 3", h)
	}
	if p == 0 {
		t.Error("bottom never polled")
	}
	// The consumed message must not reach the top layer's Handle.
	hTop, _ := top.counts()
	if hTop != 2 {
		t.Errorf("top handled %d, want 2", hTop)
	}
}

func TestPollRunsOnTicksToo(t *testing.T) {
	sys := sim.MustNew(sim.Config{N: 1, T: 0, Seed: 2, MaxSteps: 500})
	layer := &countingLayer{}
	sys.Spawn(1, func(env *sim.Env) {
		nd := New(env, layer)
		nd.RunForever()
	})
	sys.Run(nil)
	if _, p := layer.counts(); p < 100 {
		t.Errorf("layer polled only %d times over 500 ticks", p)
	}
}

func TestWaitUntilImmediate(t *testing.T) {
	sys := sim.MustNew(sim.Config{N: 1, T: 0, Seed: 3, MaxSteps: 2_000})
	done := false
	var mu sync.Mutex
	sys.Spawn(1, func(env *sim.Env) {
		nd := New(env)
		nd.WaitUntil(func() bool { return true }, nil) // returns without stepping
		mu.Lock()
		done = true
		mu.Unlock()
		nd.RunForever()
	})
	sys.Run(func() bool { mu.Lock(); defer mu.Unlock(); return done })
	mu.Lock()
	defer mu.Unlock()
	if !done {
		t.Fatal("WaitUntil with true predicate did not return")
	}
}

func TestPushAddsLayer(t *testing.T) {
	sys := sim.MustNew(sim.Config{N: 2, T: 0, Seed: 4, MaxSteps: 50_000})
	late := &countingLayer{consume: func(sim.Message) bool { return true }}
	var sawAny bool
	var mu sync.Mutex
	var started bool
	sys.Spawn(1, func(env *sim.Env) {
		mu.Lock()
		started = true
		mu.Unlock()
		env.Send(2, sim.Intern("x"), nil)
		for {
			env.Step()
		}
	})
	sys.Spawn(2, func(env *sim.Env) {
		nd := New(env)
		nd.Push(late)
		if nd.Env() != env {
			t.Error("Env() mismatch")
		}
		for {
			m, ok := nd.Step()
			if ok && m.Tag == sim.Intern("x") {
				mu.Lock()
				sawAny = true
				mu.Unlock()
			}
		}
	})
	sys.Run(func() bool {
		mu.Lock()
		defer mu.Unlock()
		h, _ := late.counts()
		return started && h > 0
	})
	mu.Lock()
	defer mu.Unlock()
	if sawAny {
		t.Error("pushed layer did not consume the message")
	}
	if h, _ := late.counts(); h == 0 {
		t.Error("pushed layer never handled")
	}
}
