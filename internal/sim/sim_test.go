package sim

import (
	"sync"
	"sync/atomic"
	"testing"

	"fdgrid/internal/ids"
)

func TestConfigValidate(t *testing.T) {
	valid := Config{N: 4, T: 1, MaxSteps: 100}
	if _, err := New(valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{N: 0, T: 0, MaxSteps: 10},
		{N: ids.MaxProcs + 1, T: 1, MaxSteps: 10},
		{N: 4, T: 1, MaxSteps: 10, Holds: []Hold{{From: ids.NewSet(1), To: ids.NewSet(2), Since: -1, Until: 5}}},
		{N: 4, T: 1, MaxSteps: 10, Holds: []Hold{{From: ids.NewSet(1), To: ids.NewSet(2), Since: 7, Until: 5}}},
		{N: 4, T: 4, MaxSteps: 10},
		{N: 4, T: -1, MaxSteps: 10},
		{N: 4, T: 1, MaxSteps: 0},
		{N: 4, T: 1, MaxSteps: 10, Crashes: map[ids.ProcID]Time{1: 0, 2: 0}},
		{N: 4, T: 2, MaxSteps: 10, Crashes: map[ids.ProcID]Time{5: 0}},
		{N: 4, T: 2, MaxSteps: 10, Crashes: map[ids.ProcID]Time{1: -3}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPattern(t *testing.T) {
	cfg := Config{N: 5, T: 2, MaxSteps: 10, Crashes: map[ids.ProcID]Time{2: 0, 4: 7}}
	s := MustNew(cfg)
	fp := s.Pattern()
	if got := fp.Correct(); !got.Equal(ids.NewSet(1, 3, 5)) {
		t.Errorf("Correct() = %s", got)
	}
	if got := fp.Faulty(); !got.Equal(ids.NewSet(2, 4)) {
		t.Errorf("Faulty() = %s", got)
	}
	if !fp.Crashed(2, 0) || fp.Crashed(4, 6) || !fp.Crashed(4, 7) {
		t.Error("Crashed() timing wrong")
	}
	if fp.AllCrashed(ids.NewSet(2, 4), 6) {
		t.Error("AllCrashed true too early")
	}
	if !fp.AllCrashed(ids.NewSet(2, 4), 7) {
		t.Error("AllCrashed false at crash time")
	}
	if !fp.AllCrashed(ids.EmptySet(), 0) {
		t.Error("empty set should be vacuously AllCrashed")
	}
	if fp.CrashTime(1) != Never {
		t.Error("CrashTime(correct) != Never")
	}
}

// TestBroadcastDelivery: every correct process receives a broadcast from
// every correct process.
func TestBroadcastDelivery(t *testing.T) {
	const n = 5
	s := MustNew(Config{N: n, T: 0, Seed: 1, MaxSteps: 100_000})
	var mu sync.Mutex
	got := make(map[ids.ProcID]map[ids.ProcID]int)
	s.SpawnAll(func(e *Env) {
		e.Broadcast(Intern("hello"), int(e.ID()))
		seen := map[ids.ProcID]int{}
		for len(seen) < n {
			m, ok := e.Step()
			if !ok {
				continue
			}
			v, okv := m.Payload.(int)
			if !okv {
				t.Errorf("payload type %T", m.Payload)
				return
			}
			seen[m.From] = v
		}
		mu.Lock()
		got[e.ID()] = seen
		mu.Unlock()
	})
	rep := s.Run(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n
	})
	if !rep.StoppedEarly {
		t.Fatalf("run hit MaxSteps; got %d collectors", len(got))
	}
	for p, seen := range got {
		for q, v := range seen {
			if v != int(q) {
				t.Errorf("process %v saw %d from %v", p, v, q)
			}
		}
		if len(seen) != n {
			t.Errorf("process %v saw %d senders", p, len(seen))
		}
	}
	if rep.Messages.Sent["hello"] != n*n {
		t.Errorf("sent = %d, want %d", rep.Messages.Sent["hello"], n*n)
	}
}

// TestCrashStopsSends: every message accepted from a process crashed at
// tick c carries SentAt < c (the network refuses later sends).
func TestCrashStopsSends(t *testing.T) {
	const n = 3
	s := MustNew(Config{
		N: n, T: 1, Seed: 7, MaxSteps: 5_000,
		Crashes: map[ids.ProcID]Time{2: 100},
	})
	var lastSentAt atomic.Int64
	s.Spawn(2, func(e *Env) {
		for {
			e.Send(1, Intern("tick"), nil)
			// Yield to the scheduler between sends.
			e.Step()
		}
	})
	s.Spawn(1, func(e *Env) {
		for {
			m, ok := e.Step()
			if ok && m.Tag == Intern("tick") && int64(m.SentAt) > lastSentAt.Load() {
				lastSentAt.Store(int64(m.SentAt))
			}
		}
	})
	s.Spawn(3, func(e *Env) { e.Step() })
	s.Run(nil)
	if got := lastSentAt.Load(); got >= 100 {
		t.Errorf("crashed process message stamped SentAt=%d, want < 100", got)
	}
}

// TestInitialCrashNeverActs: crash at time 0 means no observable action.
func TestInitialCrashNeverActs(t *testing.T) {
	s := MustNew(Config{
		N: 2, T: 1, Seed: 3, MaxSteps: 1_000,
		Crashes: map[ids.ProcID]Time{1: 0},
	})
	ran := atomic.Bool{}
	s.Spawn(1, func(e *Env) {
		ran.Store(true)
		e.Broadcast(Intern("x"), nil)
	})
	s.Spawn(2, func(e *Env) {
		for {
			e.Step()
		}
	})
	rep := s.Run(nil)
	if ran.Load() {
		t.Error("initially-crashed process ran its main")
	}
	if rep.Messages.Sent["x"] != 0 {
		t.Error("initially-crashed process sent messages")
	}
}

// TestMessagesToCrashedAreDropped.
func TestMessagesToCrashedAreDropped(t *testing.T) {
	s := MustNew(Config{
		N: 2, T: 1, Seed: 11, MaxSteps: 2_000,
		Crashes: map[ids.ProcID]Time{2: 0},
	})
	s.Spawn(1, func(e *Env) {
		e.Send(2, Intern("gone"), nil)
		for {
			e.Step()
		}
	})
	rep := s.Run(func() bool { return s.Metrics().Sent(Intern("gone")) == 1 && s.InFlight() == 0 })
	if rep.Messages.Dropped["gone"] != 1 {
		t.Errorf("dropped = %d, want 1", rep.Messages.Dropped["gone"])
	}
}

// TestHoldDelaysDelivery: a held message is not delivered before Until.
func TestHoldDelaysDelivery(t *testing.T) {
	s := MustNew(Config{
		N: 2, T: 0, Seed: 5, MaxSteps: 10_000,
		Holds: []Hold{{From: ids.NewSet(1), To: ids.NewSet(2), Until: 500}},
	})
	var deliveredAt atomic.Int64
	deliveredAt.Store(-1)
	s.Spawn(1, func(e *Env) {
		e.Send(2, Intern("held"), nil)
		for {
			e.Step()
		}
	})
	s.Spawn(2, func(e *Env) {
		for {
			m, ok := e.Step()
			if ok && m.Tag == Intern("held") {
				deliveredAt.Store(int64(m.DeliveredAt))
				return
			}
		}
	})
	s.Run(func() bool { return deliveredAt.Load() >= 0 })
	if got := deliveredAt.Load(); got < 500 {
		t.Errorf("held message delivered at %d, want ≥ 500", got)
	}
}

// TestWaitUntilWakesOnTicks: a predicate that depends only on time
// eventually fires even with no message traffic.
func TestWaitUntilWakesOnTicks(t *testing.T) {
	s := MustNew(Config{N: 1, T: 0, Seed: 2, MaxSteps: 10_000})
	reached := atomic.Bool{}
	s.Spawn(1, func(e *Env) {
		e.WaitUntil(func() bool { return e.Now() >= 200 }, nil)
		reached.Store(true)
	})
	s.Run(func() bool { return reached.Load() })
	if !reached.Load() {
		t.Fatal("WaitUntil never fired on tick-driven predicate")
	}
}

// TestRunStopsAtMaxSteps even with processes blocked forever.
func TestRunStopsAtMaxSteps(t *testing.T) {
	s := MustNew(Config{N: 2, T: 0, Seed: 9, MaxSteps: 300})
	s.SpawnAll(func(e *Env) {
		for {
			e.Step() // nothing ever arrives
		}
	})
	rep := s.Run(nil)
	if rep.StoppedEarly {
		t.Error("StoppedEarly = true, want false")
	}
	if rep.Steps < 300 {
		t.Errorf("Steps = %d, want ≥ 300", rep.Steps)
	}
}

// TestSendToUnknownPanics.
func TestSendToUnknownPanics(t *testing.T) {
	s := MustNew(Config{N: 2, T: 0, Seed: 1, MaxSteps: 100})
	var recovered atomic.Bool
	s.Spawn(1, func(e *Env) {
		defer func() {
			if recover() != nil {
				recovered.Store(true)
			}
		}()
		e.Send(9, Intern("bad"), nil)
	})
	s.Run(func() bool { return recovered.Load() })
	if !recovered.Load() {
		t.Error("Send to unknown process did not panic")
	}
}

// TestRunTwicePanics.
func TestRunTwicePanics(t *testing.T) {
	s := MustNew(Config{N: 1, T: 0, Seed: 1, MaxSteps: 10})
	s.Run(nil)
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	s.Run(nil)
}

// TestSpawnTwicePanics and unknown id.
func TestSpawnValidation(t *testing.T) {
	s := MustNew(Config{N: 2, T: 0, Seed: 1, MaxSteps: 10})
	s.Spawn(1, func(*Env) {})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Spawn did not panic")
			}
		}()
		s.Spawn(1, func(*Env) {})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Spawn(3) did not panic")
			}
		}()
		s.Spawn(3, func(*Env) {})
	}()
	s.Run(nil)
}

func TestMetricsSnapshotTags(t *testing.T) {
	s := MustNew(Config{N: 2, T: 0, Seed: 4, MaxSteps: 5_000})
	s.Spawn(1, func(e *Env) {
		e.Send(2, Intern("b"), nil)
		e.Send(2, Intern("a"), nil)
		for {
			e.Step()
		}
	})
	s.Spawn(2, func(e *Env) {
		for {
			e.Step()
		}
	})
	rep := s.Run(func() bool { return s.Metrics().TotalSent() == 2 && s.InFlight() == 0 })
	tags := rep.Messages.Tags()
	if len(tags) != 2 || tags[0] != "a" || tags[1] != "b" {
		t.Errorf("Tags() = %v", tags)
	}
	if rep.Messages.TotalSent != 2 {
		t.Errorf("TotalSent = %d", rep.Messages.TotalSent)
	}
}

// TestEnvAccessors sanity-checks the trivial getters.
func TestEnvAccessors(t *testing.T) {
	s := MustNew(Config{N: 3, T: 1, Seed: 1, MaxSteps: 1_000, GST: 50})
	var ok atomic.Bool
	s.Spawn(2, func(e *Env) {
		if e.ID() == 2 && e.N() == 3 && e.T() == 1 && e.All().Equal(ids.FullSet(3)) {
			ok.Store(true)
		}
	})
	s.Run(func() bool { return ok.Load() })
	if !ok.Load() {
		t.Error("Env accessors returned unexpected values")
	}
	if s.GST() != 50 {
		t.Errorf("GST() = %d", s.GST())
	}
	if s.Config().N != 3 {
		t.Error("Config() wrong")
	}
}
