package sim

import (
	"sync/atomic"
	"testing"

	"fdgrid/internal/ids"
)

// TestStepUntilWakesAtDeadline: a process parked with a declared wake
// time is woken exactly there (and the idle stretch is skipped — the run
// schedules far fewer ticks than it spans).
func TestStepUntilWakesAtDeadline(t *testing.T) {
	s := MustNew(Config{N: 1, T: 0, Seed: 1, MaxSteps: 100_000})
	var wokenAt atomic.Int64
	scheduled := 0
	s.OnAdvance(func(Time) { scheduled++ })
	s.Spawn(1, func(e *Env) {
		e.StepUntil(40_000)
		wokenAt.Store(int64(e.Now()))
	})
	s.Run(func() bool { return wokenAt.Load() > 0 })
	if got := wokenAt.Load(); got != 40_000 {
		t.Errorf("woken at %d, want 40000", got)
	}
	if scheduled > 10 {
		t.Errorf("%d ticks scheduled for an idle 40k-tick wait; want a handful", scheduled)
	}
}

// TestStepUntilReturnsEarlyOnMessage: a message interrupts the time wait.
func TestStepUntilReturnsEarlyOnMessage(t *testing.T) {
	s := MustNew(Config{N: 2, T: 0, Seed: 2, MaxSteps: 50_000})
	var got atomic.Int64
	got.Store(-1)
	s.Spawn(1, func(e *Env) {
		m, ok := e.StepUntil(40_000)
		if ok && m.Tag == Intern("poke") {
			got.Store(int64(e.Now()))
		}
	})
	s.Spawn(2, func(e *Env) {
		e.StepUntil(100) // let some time pass first
		e.Send(1, Intern("poke"), nil)
		for {
			e.StepUntil(Never)
		}
	})
	s.Run(func() bool { return got.Load() >= 0 })
	if at := got.Load(); at < 0 || at > 1_000 {
		t.Errorf("message received at %d, want shortly after 100", at)
	}
}

// TestClockJumpRespectsHolds: with every process message-parked, the
// clock jumps to the hold release, not past it.
func TestClockJumpRespectsHolds(t *testing.T) {
	s := MustNew(Config{
		N: 2, T: 0, Seed: 3, MaxSteps: 500_000,
		Holds: []Hold{{From: ids.NewSet(1), To: ids.NewSet(2), Until: 12_345}},
	})
	var deliveredAt atomic.Int64
	deliveredAt.Store(-1)
	s.Spawn(1, func(e *Env) {
		e.Send(2, Intern("held"), nil)
		for {
			e.StepUntil(Never)
		}
	})
	s.Spawn(2, func(e *Env) {
		for {
			if m, ok := e.StepUntil(Never); ok && m.Tag == Intern("held") {
				deliveredAt.Store(int64(m.DeliveredAt))
			}
		}
	})
	s.Run(func() bool { return deliveredAt.Load() >= 0 })
	if at := deliveredAt.Load(); at != 12_345 {
		t.Errorf("held message delivered at %d, want exactly the release tick 12345", at)
	}
}

// TestClockJumpRespectsCrashes: crashes land on their exact tick even
// when everything is idle, and OnAdvance observes that tick.
func TestClockJumpRespectsCrashes(t *testing.T) {
	s := MustNew(Config{
		N: 2, T: 1, Seed: 4, MaxSteps: 300_000,
		Crashes: map[ids.ProcID]Time{2: 77_000},
	})
	s.SpawnAll(func(e *Env) {
		for {
			e.StepUntil(Never)
		}
	})
	var sawCrashTick atomic.Bool
	s.OnAdvance(func(now Time) {
		if now == 77_000 {
			sawCrashTick.Store(true)
		}
	})
	env := s.Env(2)
	s.Run(func() bool { return env.Crashed() && s.Now() > 77_000 })
	if !sawCrashTick.Load() {
		t.Error("the crash tick was skipped")
	}
}

// TestWakeAtSchedulesTick: an external hint forces a scheduled tick so
// time-dependent stop predicates fire on time.
func TestWakeAtSchedulesTick(t *testing.T) {
	s := MustNew(Config{N: 1, T: 0, Seed: 5, MaxSteps: 1_000_000})
	s.Spawn(1, func(e *Env) {
		for {
			e.StepUntil(Never)
		}
	})
	s.WakeAt(33_000)
	rep := s.Run(func() bool { return s.Now() >= 33_000 })
	if !rep.StoppedEarly {
		t.Fatal("stop predicate never fired")
	}
	if rep.Steps != 33_000 {
		t.Errorf("stopped at %d, want exactly the hinted tick 33000", rep.Steps)
	}
}

// TestOnTickForcesDenseClock: registering a dense sampler disables
// skipping entirely.
func TestOnTickForcesDenseClock(t *testing.T) {
	s := MustNew(Config{N: 1, T: 0, Seed: 6, MaxSteps: 2_000})
	ticks := 0
	s.OnTick(func(Time) { ticks++ })
	s.Spawn(1, func(e *Env) {
		for {
			e.StepUntil(Never)
		}
	})
	s.Run(nil)
	if ticks != 2_000 {
		t.Errorf("dense run scheduled %d ticks, want 2000", ticks)
	}
}

// TestDeterministicDeliveryOrder: two identical systems deliver the same
// messages in the same order at the same virtual times — the foundation
// of the sweep engine's reproducible reports.
func TestDeterministicDeliveryOrder(t *testing.T) {
	trace := func() []Message {
		s := MustNew(Config{N: 4, T: 0, Seed: 42, MaxSteps: 20_000})
		var mu atomic.Int64
		var log []Message
		done := make(chan struct{})
		_ = done
		s.SpawnAll(func(e *Env) {
			e.Broadcast(Intern("m"), int(e.ID()))
			for {
				m, ok := e.Step()
				if ok && e.ID() == 1 {
					log = append(log, m)
					mu.Add(1)
				}
			}
		})
		s.Run(func() bool { return mu.Load() >= 4 })
		return log
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].From != b[i].From || a[i].SentAt != b[i].SentAt || a[i].DeliveredAt != b[i].DeliveredAt {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestLockstepSequencing: processes take steps one at a time — a shared
// unsynchronized counter incremented in every step never races (run with
// -race) and every process observes a consistent clock.
func TestLockstepSequencing(t *testing.T) {
	s := MustNew(Config{N: 6, T: 0, Seed: 7, MaxSteps: 500})
	counter := 0 // deliberately unsynchronized: lockstep must serialize access
	s.SpawnAll(func(e *Env) {
		for {
			counter++
			if now := e.Now(); Time(s.now.Load()) != now {
				t.Error("clock moved while a process was running")
				return
			}
			e.Step()
		}
	})
	s.Run(nil)
	if counter < 6*499 {
		t.Errorf("counter = %d, want about 6*500 steps", counter)
	}
}
