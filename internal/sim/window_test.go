package sim

import (
	"testing"

	"fdgrid/internal/ids"
)

// TestHoldWindowDelaysOnlyWindowSends: a windowed hold [Since, Until)
// applies at send time — a message sent before the window opens or
// after it closes passes unhindered; one sent inside the window is not
// deliverable before Until.
func TestHoldWindowDelaysOnlyWindowSends(t *testing.T) {
	cfg := Config{
		N: 2, T: 0, Seed: 1, MaxSteps: 400, Bandwidth: 4,
		Holds: []Hold{{From: ids.NewSet(1), To: ids.NewSet(2), Since: 50, Until: 200}},
	}
	sys := MustNew(cfg)
	tag := Intern("test.window")
	type rec struct{ sent, delivered Time }
	var got []rec
	sys.Spawn(1, func(env *Env) {
		for _, at := range []Time{10, 60, 210} {
			for env.Now() < at {
				env.StepUntil(at)
			}
			env.Send(2, tag, nil)
		}
		for {
			env.StepUntil(Never)
		}
	})
	sys.Spawn(2, func(env *Env) {
		for {
			if m, ok := env.StepUntil(Never); ok {
				got = append(got, rec{m.SentAt, m.DeliveredAt})
			}
		}
	})
	sys.Run(nil)

	if len(got) != 3 {
		t.Fatalf("delivered %d messages, want 3: %+v", len(got), got)
	}
	for _, r := range got {
		switch r.sent {
		case 10, 210: // outside the window: prompt delivery
			if r.delivered >= r.sent+40 {
				t.Errorf("message sent at %d outside the window delivered only at %d", r.sent, r.delivered)
			}
		case 60: // inside the window: held to the release tick
			if r.delivered < 200 {
				t.Errorf("message sent at %d inside [50,200) delivered early at %d", r.sent, r.delivered)
			}
		default:
			t.Errorf("unexpected send time %d", r.sent)
		}
	}
}

// TestHoldWindowAndRunFromStartCompose: a Since=0 hold and a windowed
// hold on the same pair compose — each send gets the latest release
// among the holds covering its send time.
func TestHoldWindowAndRunFromStartCompose(t *testing.T) {
	cfg := Config{
		N: 2, T: 0, Seed: 1, MaxSteps: 400, Bandwidth: 4,
		Holds: []Hold{
			{From: ids.NewSet(1), To: ids.NewSet(2), Until: 100},
			{From: ids.NewSet(1), To: ids.NewSet(2), Since: 5, Until: 150},
		},
	}
	sys := MustNew(cfg)
	tag := Intern("test.compose")
	var delivered Time
	sys.Spawn(1, func(env *Env) {
		for env.Now() < 10 {
			env.StepUntil(10)
		}
		env.Send(2, tag, nil)
		for {
			env.StepUntil(Never)
		}
	})
	sys.Spawn(2, func(env *Env) {
		for {
			if m, ok := env.StepUntil(Never); ok {
				delivered = m.DeliveredAt
			}
		}
	})
	sys.Run(nil)
	if delivered < 150 {
		t.Fatalf("composed holds released at %d, want ≥ 150 (the later window)", delivered)
	}
}

// TestRunAtLargeN exercises the scheduler's multi-word process masks: a
// relay chain across every id up to ids.MaxProcs, so parking, waking,
// delivery and due-set selection all cross the 64-, 128- and 192-bit
// word boundaries.
func TestRunAtLargeN(t *testing.T) {
	const n = ids.MaxProcs
	cfg := Config{N: n, T: 0, Seed: 3, MaxSteps: 100_000}
	sys := MustNew(cfg)
	tag := Intern("test.relay")
	var reached ids.ProcID
	for p := 1; p <= n; p++ {
		sys.Spawn(ids.ProcID(p), func(env *Env) {
			if env.ID() == 1 {
				env.Send(2, tag, nil)
				return
			}
			for {
				if _, ok := env.StepUntil(Never); ok {
					reached = env.ID()
					if next := env.ID() + 1; int(next) <= n {
						env.Send(next, tag, nil)
					}
					return
				}
			}
		})
	}
	sys.Run(func() bool { return int(reached) == n })
	if int(reached) != n {
		t.Fatalf("relay reached only p%d of p%d", reached, n)
	}
}

// TestCrashBeyondWord64: an in-run crash of a high-id process is applied
// and observed exactly as for low ids.
func TestCrashBeyondWord64(t *testing.T) {
	const n = 130
	cfg := Config{
		N: n, T: 1, Seed: 7, MaxSteps: 2_000,
		Crashes: map[ids.ProcID]Time{129: 100},
	}
	sys := MustNew(cfg)
	tag := Intern("test.ping")
	var after int
	sys.Spawn(129, func(env *Env) {
		for {
			env.Step()
			env.Send(1, tag, nil)
		}
	})
	sys.Spawn(1, func(env *Env) {
		for {
			if m, ok := env.StepUntil(Never); ok && m.SentAt >= 100 {
				after++
			}
		}
	})
	sys.Run(nil)
	if !sys.Pattern().Crashed(129, 100) {
		t.Fatal("pattern does not record the crash")
	}
	if after != 0 {
		t.Fatalf("%d messages accepted from p129 at or after its crash tick", after)
	}
}
