package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"fdgrid/internal/ids"
)

// TestIntnMatchesMathRand pins the delivery phase's draw source: every
// run's random choices must consume the seed exactly as
// math/rand.Rand.Intn does, because the committed golden results encode
// that draw sequence. If intn ever diverges, every golden in the repo
// would silently shift — this test makes the divergence loud instead.
func TestIntnMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, 7, 20260807} {
		sys := MustNew(Config{N: 2, T: 0, Seed: seed, MaxSteps: 10})
		ref := rand.New(rand.NewSource(seed))
		// Mixed bounds: powers of two (mask path), odd bounds
		// (rejection path), 1 (degenerate), and large values near the
		// int32 rejection threshold.
		bounds := []int{1, 2, 3, 7, 8, 64, 100, 1000, 65536, 1 << 30, 1<<30 + 1}
		for round := 0; round < 2000; round++ {
			n := bounds[round%len(bounds)]
			if got, want := sys.intn(n), ref.Intn(n); got != want {
				t.Fatalf("seed %d draw %d (bound %d): intn = %d, rand.Intn = %d",
					seed, round, n, got, want)
			}
		}
	}
}

// TestBatchedDeliveryMetricsExact checks that the batched delivery path
// keeps the per-tag counters per-message-exact: a run whose messages
// land through the coalesced broadcast/flush path reports the same
// MetricsSnapshot as an equivalent run sending every copy individually
// — including drops at a crashed receiver.
func TestBatchedDeliveryMetricsExact(t *testing.T) {
	const (
		n     = 8
		ticks = 40
	)
	tagA := Intern("batch.a")
	tagB := Intern("batch.b")
	cfg := Config{
		N: n, T: 1, Seed: 3, MaxSteps: ticks,
		Bandwidth: 2 * n * n,
		Crashes:   map[ids.ProcID]Time{4: 10},
	}

	run := func(broadcast bool) MetricsSnapshot {
		sys := MustNew(cfg)
		sys.SpawnAll(func(env *Env) {
			for {
				next := env.Now() + 1
				if broadcast {
					env.Broadcast(tagA, nil)
					env.Broadcast(tagB, nil)
				} else {
					for q := 1; q <= env.N(); q++ {
						env.Send(ids.ProcID(q), tagA, nil)
					}
					for q := 1; q <= env.N(); q++ {
						env.Send(ids.ProcID(q), tagB, nil)
					}
				}
				for {
					if _, ok := env.StepUntil(next); !ok {
						break
					}
				}
			}
		})
		sys.Run(nil)
		return sys.Metrics().Snapshot()
	}

	batched, unbatched := run(true), run(false)
	if !reflect.DeepEqual(batched, unbatched) {
		t.Fatalf("metrics diverge between broadcast and per-copy sends:\nbatched:   %+v\nunbatched: %+v",
			batched, unbatched)
	}
	if batched.Dropped[tagA.String()] == 0 || batched.Dropped[tagB.String()] == 0 {
		t.Fatalf("expected drops at the crashed receiver, got %+v", batched.Dropped)
	}
	wantSent := int64(ticks-1) * n * n // every live tick: n procs × n copies per tag
	if batched.Sent[tagA.String()] >= wantSent {
		// Crash at tick 10 removes one sender: strictly fewer sends.
		t.Fatalf("crash did not reduce sends: %d", batched.Sent[tagA.String()])
	}
	for _, snap := range []MetricsSnapshot{batched, unbatched} {
		for _, tag := range []string{tagA.String(), tagB.String()} {
			if snap.Delivered[tag]+snap.Dropped[tag] > snap.Sent[tag] {
				t.Fatalf("tag %s: delivered %d + dropped %d exceeds sent %d",
					tag, snap.Delivered[tag], snap.Dropped[tag], snap.Sent[tag])
			}
		}
	}
}

// TestFullDeliveryPathsAgree pins the two full-delivery forms against
// each other: the direct-append form (small ticks) and the three-pass
// scatter form (large ticks) must produce bit-identical runs, because
// which one executes depends only on per-tick load (fullScatterMin).
// The test runs the same crash-bearing workload once with each form
// forced and compares every process's full delivery trace and the
// metrics. This is the invariant that lets the goldens stay valid as
// the threshold moves.
func TestFullDeliveryPathsAgree(t *testing.T) {
	const (
		n     = 16
		ticks = 20
	)
	tag := Intern("batch.flood")
	trace := func() (map[ids.ProcID][]Message, MetricsSnapshot) {
		got := make(map[ids.ProcID][]Message)
		sys := MustNew(Config{
			N: n, T: 2, Seed: 9, MaxSteps: ticks,
			Bandwidth: n * n,
			Crashes:   map[ids.ProcID]Time{2: 5, 11: 12},
		})
		sys.SpawnAll(func(env *Env) {
			id := env.ID()
			for {
				next := env.Now() + 1
				env.Broadcast(tag, nil)
				for {
					m, ok := env.StepUntil(next)
					if !ok {
						break
					}
					m.Payload = nil // payloads are compared by the maps below
					got[id] = append(got[id], m)
				}
			}
		})
		sys.Run(nil)
		return got, sys.Metrics().Snapshot()
	}

	defer func(saved int) { fullScatterMin = saved }(fullScatterMin)
	fullScatterMin = 1 << 30 // every tick takes the direct-append form
	direct, directMetrics := trace()
	fullScatterMin = 1 // every tick takes the three-pass scatter form
	scatter, scatterMetrics := trace()

	if !reflect.DeepEqual(directMetrics, scatterMetrics) {
		t.Fatalf("metrics diverge:\ndirect:  %+v\nscatter: %+v", directMetrics, scatterMetrics)
	}
	for p := ids.ProcID(1); p <= n; p++ {
		if !reflect.DeepEqual(direct[p], scatter[p]) {
			t.Fatalf("delivery trace of process %d diverges between the two forms", p)
		}
	}
	if len(direct[1]) == 0 {
		t.Fatal("workload delivered nothing; the comparison is vacuous")
	}
}
