// Package sim implements the asynchronous message-passing system model
// AS[n,t] of the paper: n processes that communicate over reliable but
// arbitrarily slow channels, of which at most t may crash.
//
// Processes run as goroutines, but execution is lockstep and sequential:
// a central scheduler (the "adversary") advances a virtual clock; on each
// tick it applies scheduled crashes, delivers up to Bandwidth in-flight
// messages chosen uniformly at random (seeded), and then wakes — one at a
// time, in identity order — exactly the processes whose wait condition is
// due (a new message, or a declared wake time reached; see Env.StepUntil).
// The scheduler only proceeds once the woken process has parked again, so
// a run is a deterministic function of its Config: same seed, same
// delivery order, same process steps, same result. Arbitrary-but-finite
// message delays and arbitrary crash patterns — exactly the adversary the
// asynchronous model quantifies over — are thus sampled reproducibly.
//
// Undeliverable stretches of virtual time are skipped: when no message is
// eligible, no process wake is due and no crash or hold release falls in
// between, the clock jumps directly to the next relevant tick. Dense
// per-tick samplers (OnTick) disable skipping; sparse samplers
// (OnAdvance) observe every scheduled tick, which is every tick at which
// anything can happen.
//
// Crash semantics: once a process is crashed, its next interaction with
// the environment unwinds its goroutine (an internal sentinel panic that
// never escapes the package). A crashed process therefore takes no
// further observable step, as in the model.
package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"fdgrid/internal/ids"
)

// Time is the virtual clock, counted in scheduler ticks.
type Time int64

// Never is a crash time meaning "the process is correct".
const Never Time = 1<<62 - 1

// Hold delays matching messages: a message sent from a process in From to
// a process in To is not deliverable before Until. Holds are the scripted
// half of the adversary, used by the irreducibility experiments
// (e.g. "delay every message from E between τ0 and τ1").
type Hold struct {
	From  ids.Set
	To    ids.Set
	Until Time
}

// Config parameterizes a run of the system.
type Config struct {
	// N is the number of processes (ids 1..N); T the resilience bound.
	N, T int
	// Seed drives the scheduler's random choices.
	Seed int64
	// MaxSteps bounds the run; the run stops when the clock reaches it.
	MaxSteps Time
	// Crashes maps a process to its crash time. Absent means correct.
	// A crash time of 0 is an initial crash.
	Crashes map[ids.ProcID]Time
	// GST is the global stabilization time: eventual failure detector
	// classes may misbehave before it and must behave after it.
	GST Time
	// Holds optionally script message delays (see Hold).
	Holds []Hold
	// Bandwidth is how many messages the scheduler delivers per tick
	// (default 1). Higher values speed up message-heavy transformations
	// without changing the adversary's power: delivery order stays
	// random and delays stay arbitrary.
	Bandwidth int
}

func (c Config) validate() error {
	if c.N < 1 || c.N > ids.MaxProcs {
		return fmt.Errorf("sim: N=%d out of range 1..%d", c.N, ids.MaxProcs)
	}
	if c.T < 0 || c.T >= c.N {
		return fmt.Errorf("sim: T=%d out of range 0..%d", c.T, c.N-1)
	}
	if len(c.Crashes) > c.T {
		return fmt.Errorf("sim: %d crashes scheduled but T=%d", len(c.Crashes), c.T)
	}
	for p, at := range c.Crashes {
		if p < 1 || int(p) > c.N {
			return fmt.Errorf("sim: crash scheduled for unknown process %d", p)
		}
		if at < 0 {
			return fmt.Errorf("sim: negative crash time for %v", p)
		}
	}
	if c.MaxSteps <= 0 {
		return fmt.Errorf("sim: MaxSteps=%d must be positive", c.MaxSteps)
	}
	if c.Bandwidth < 0 {
		return fmt.Errorf("sim: Bandwidth=%d must be non-negative", c.Bandwidth)
	}
	return nil
}

func (c Config) bandwidth() int {
	if c.Bandwidth == 0 {
		return 1
	}
	return c.Bandwidth
}

// Pattern is the failure pattern of a run: which processes crash and when.
// It is derived from Config.Crashes and is the ground truth failure
// detector oracles consult.
type Pattern struct {
	n       int
	crashAt []Time // index 1..n; Never for correct processes
}

func newPattern(cfg Config) *Pattern {
	fp := &Pattern{n: cfg.N, crashAt: make([]Time, cfg.N+1)}
	for i := range fp.crashAt {
		fp.crashAt[i] = Never
	}
	for p, at := range cfg.Crashes {
		fp.crashAt[p] = at
	}
	return fp
}

// N returns the number of processes.
func (fp *Pattern) N() int { return fp.n }

// CrashTime returns when p crashes (Never if correct).
func (fp *Pattern) CrashTime(p ids.ProcID) Time { return fp.crashAt[p] }

// Crashed reports whether p has crashed at or before time at.
func (fp *Pattern) Crashed(p ids.ProcID, at Time) bool { return fp.crashAt[p] <= at }

// AllCrashed reports whether every process of s has crashed by time at.
// The empty set is vacuously all-crashed.
func (fp *Pattern) AllCrashed(s ids.Set, at Time) bool {
	all := true
	s.ForEach(func(p ids.ProcID) bool {
		if !fp.Crashed(p, at) {
			all = false
			return false
		}
		return true
	})
	return all
}

// Correct returns the set of processes that never crash in the run.
func (fp *Pattern) Correct() ids.Set {
	var s ids.Set
	for p := 1; p <= fp.n; p++ {
		if fp.crashAt[p] == Never {
			s = s.Add(ids.ProcID(p))
		}
	}
	return s
}

// Faulty returns the complement of Correct within {1..n}.
func (fp *Pattern) Faulty() ids.Set {
	return ids.FullSet(fp.n).Minus(fp.Correct())
}

// System is one simulated asynchronous system instance. Create it with
// New, register process mains with Spawn, then call Run exactly once.
type System struct {
	cfg     Config
	pattern *Pattern
	rng     *rand.Rand
	now     atomic.Int64
	procs   []*Proc // index 1..N
	metrics *Metrics

	// Network state: messages accepted but not yet routed (arrivals),
	// deliverable messages (eligible) and messages bucketed by the tick
	// their scripted hold releases them (held, keys sorted in heldTimes).
	mu        sync.Mutex
	arrivals  []envelope
	eligible  []envelope
	held      map[Time][]envelope
	heldTimes []Time
	batch     []Message // delivery scratch, reused across ticks

	// Quiescence accounting: active counts process goroutines currently
	// running (launched or woken, not yet parked or exited). The
	// scheduler blocks on qcond until active returns to zero. parkedSet
	// and deadlines mirror each parked process's wake condition
	// (maintained by the parking process under qmu), and inboxDue marks
	// parked processes the delivery phase enqueued messages for — so the
	// per-tick scans touch one lock instead of every process's.
	qmu       sync.Mutex
	qcond     *sync.Cond
	active    int
	parkedSet uint64
	inboxDue  uint64
	deadlines []Time // index 1..N; valid while the proc's parkedSet bit is set

	// External wake hints (WakeAt), kept sorted ascending.
	hintMu sync.Mutex
	hints  []Time

	crashTimes []Time // sorted crash ticks, for clock jumps

	stopFlag  atomic.Bool
	wg        sync.WaitGroup
	ran       bool
	onTick    []func(Time)
	onAdvance []func(Time)

	panicMu  sync.Mutex
	panicVal any
	panicked atomic.Bool
}

// recordPanic stores the first protocol panic; Run re-raises it on the
// caller's goroutine once every process goroutine has been joined.
func (s *System) recordPanic(v any) {
	s.panicMu.Lock()
	if !s.panicked.Load() {
		s.panicVal = v
		s.panicked.Store(true)
	}
	s.panicMu.Unlock()
}

func (s *System) hasPanicked() bool {
	return s.panicked.Load()
}

// OnTick registers fn to run on the scheduler goroutine once per tick,
// after deliveries, before processes observe the tick. Registering any
// OnTick callback makes the clock dense: no tick is ever skipped, so
// samplers may match exact tick values. Must be called before Run.
func (s *System) OnTick(fn func(Time)) {
	if s.ran {
		panic("sim: OnTick after Run")
	}
	s.onTick = append(s.onTick, fn)
}

// OnAdvance registers fn to run once per *scheduled* tick — every tick at
// which a delivery, crash, hold release or process wake can happen.
// Unlike OnTick it does not force the clock dense: provably idle
// stretches may still be skipped. Since processes only take steps at
// scheduled ticks, an OnAdvance sampler still observes every state
// change. Must be called before Run.
func (s *System) OnAdvance(fn func(Time)) {
	if s.ran {
		panic("sim: OnAdvance after Run")
	}
	s.onAdvance = append(s.onAdvance, fn)
}

// WakeAt asks the scheduler to schedule a tick at time t even if nothing
// else is due then. Stop predicates whose truth flips at a known future
// time (e.g. "stable for d ticks") register it here so clock jumps do not
// overshoot the earliest stopping point. Safe to call from stop
// predicates and OnTick/OnAdvance callbacks; stale times are ignored.
func (s *System) WakeAt(t Time) {
	s.hintMu.Lock()
	defer s.hintMu.Unlock()
	i := sort.Search(len(s.hints), func(i int) bool { return s.hints[i] >= t })
	if i < len(s.hints) && s.hints[i] == t {
		return
	}
	s.hints = append(s.hints, 0)
	copy(s.hints[i+1:], s.hints[i:])
	s.hints[i] = t
}

// New builds a system from cfg. It returns an error if cfg is invalid.
func New(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:     cfg,
		pattern: newPattern(cfg),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		metrics: newMetrics(),
		held:    make(map[Time][]envelope),
	}
	s.qcond = sync.NewCond(&s.qmu)
	s.deadlines = make([]Time, cfg.N+1)
	for _, at := range cfg.Crashes {
		s.crashTimes = append(s.crashTimes, at)
	}
	sort.Slice(s.crashTimes, func(i, j int) bool { return s.crashTimes[i] < s.crashTimes[j] })
	s.procs = make([]*Proc, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		s.procs[i] = newProc(ids.ProcID(i), s)
	}
	return s, nil
}

// MustNew is New for configurations known statically valid (tests, benches).
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the run configuration.
func (s *System) Config() Config { return s.cfg }

// Pattern returns the run's failure pattern (oracle ground truth).
func (s *System) Pattern() *Pattern { return s.pattern }

// Now returns the current virtual time.
func (s *System) Now() Time { return Time(s.now.Load()) }

// GST returns the configured global stabilization time.
func (s *System) GST() Time { return s.cfg.GST }

// Metrics returns the live metrics collector.
func (s *System) Metrics() *Metrics { return s.metrics }

// Env returns the environment handle of process p (for oracle adapters
// and tests; protocol mains receive theirs via Spawn).
func (s *System) Env(p ids.ProcID) *Env { return &Env{p: s.procs[p]} }

// Spawn registers main as the protocol code of process p. It must be
// called before Run. The main runs on its own goroutine; it is unwound
// when p crashes or the run stops, and may also return on its own.
//
// Mains must block through Env (Step, StepUntil, WaitUntil) to let the
// scheduler advance: the system is lockstep, so a main that spins without
// an Env call stalls virtual time.
func (s *System) Spawn(p ids.ProcID, main func(*Env)) {
	if p < 1 || int(p) > s.cfg.N {
		panic(fmt.Sprintf("sim: Spawn(%d) unknown process", p))
	}
	if s.procs[p].main != nil {
		panic(fmt.Sprintf("sim: Spawn(%d) called twice", p))
	}
	s.procs[p].main = main
}

// SpawnAll registers the same main on every process.
func (s *System) SpawnAll(main func(*Env)) {
	for i := 1; i <= s.cfg.N; i++ {
		s.Spawn(ids.ProcID(i), main)
	}
}

// Report summarizes a finished run.
type Report struct {
	// Steps is the virtual time at which the run ended.
	Steps Time
	// StoppedEarly is true if the stop predicate fired before MaxSteps.
	StoppedEarly bool
	// Messages is a snapshot of the message metrics.
	Messages MetricsSnapshot
}

// waitQuiescent blocks the scheduler until every process goroutine has
// parked or exited.
func (s *System) waitQuiescent() {
	s.qmu.Lock()
	for s.active > 0 {
		s.qcond.Wait()
	}
	s.qmu.Unlock()
}

// launch starts process p's goroutine and waits until it parks or exits.
func (s *System) launch(p *Proc) {
	s.wg.Add(1)
	s.qmu.Lock()
	s.active++
	s.qmu.Unlock()
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); !ok {
					// A protocol bug: remember it and re-raise from Run.
					s.recordPanic(r)
				}
			}
			p.mu.Lock()
			p.exited = true
			p.parked = false
			p.mu.Unlock()
			s.qmu.Lock()
			s.active--
			if s.active <= 0 {
				s.qcond.Broadcast()
			}
			s.qmu.Unlock()
			s.wg.Done()
		}()
		p.main(&Env{p: p})
	}()
	s.waitQuiescent()
}

// wake resumes a parked process and waits until it parks again or exits.
func (s *System) wake(p *Proc) {
	bit := uint64(1) << uint(p.id-1)
	s.qmu.Lock()
	s.active++
	s.parkedSet &^= bit
	s.inboxDue &^= bit
	s.qmu.Unlock()
	p.mu.Lock()
	p.parked = false
	p.cond.Broadcast()
	p.mu.Unlock()
	s.waitQuiescent()
}

// killAt applies an in-run crash: the process is marked dead and, if it
// was parked, woken so its goroutine unwinds before the tick proceeds.
func (s *System) killAt(p *Proc) {
	p.mu.Lock()
	if p.dead || p.exited {
		p.dead = true
		p.deadFlag.Store(true)
		p.mu.Unlock()
		return
	}
	wasParked := p.parked
	p.dead = true
	p.deadFlag.Store(true)
	p.mu.Unlock()
	if wasParked {
		s.wake(p)
	}
}

// Run executes the system: it starts every registered main, then drives
// the scheduler until stop() returns true or MaxSteps elapse, and finally
// tears everything down, joining all process goroutines. stop may be nil
// (run to MaxSteps) and must be safe to call from the scheduler goroutine.
func (s *System) Run(stop func() bool) Report {
	if s.ran {
		panic("sim: Run called twice")
	}
	s.ran = true

	for i := 1; i <= s.cfg.N; i++ {
		p := s.procs[i]
		if s.pattern.CrashTime(p.id) <= 0 {
			p.markDead() // initial crash: never takes a step
			continue
		}
		if p.main == nil {
			continue
		}
		s.launch(p)
	}

	stoppedEarly := s.schedule(stop)

	// Tear down: mark everything stopped so blocked processes unwind,
	// then join them.
	s.stopFlag.Store(true)
	for i := 1; i <= s.cfg.N; i++ {
		s.procs[i].kill()
	}
	s.wg.Wait()

	s.panicMu.Lock()
	panicked, panicVal := s.panicked.Load(), s.panicVal
	s.panicMu.Unlock()
	if panicked {
		panic(panicVal)
	}

	return Report{
		Steps:        s.Now(),
		StoppedEarly: stoppedEarly,
		Messages:     s.metrics.Snapshot(),
	}
}

// schedule is the adversary loop: one scheduled tick per iteration.
func (s *System) schedule(stop func() bool) bool {
	for {
		now := s.Now()
		if now >= s.cfg.MaxSteps {
			return false
		}
		if stop != nil && stop() {
			return true
		}
		if s.hasPanicked() {
			return false
		}

		// Apply crashes scheduled at this tick.
		for i := 1; i <= s.cfg.N; i++ {
			p := s.procs[i]
			if s.pattern.CrashTime(p.id) == now {
				s.killAt(p)
			}
		}

		s.deliverPhase(now)

		// Samplers observe the system at time `now` (the clock has not
		// advanced yet, so oracles read the same instant).
		for _, fn := range s.onTick {
			fn(now)
		}
		for _, fn := range s.onAdvance {
			fn(now)
		}

		// Advance the clock — by one tick, or past a provably idle
		// stretch — then wake, sequentially and in identity order, every
		// process whose wait condition is due.
		next := s.nextTime(now)
		s.now.Store(int64(next))
		s.qmu.Lock()
		due := s.parkedSet & s.inboxDue
		for mask := s.parkedSet; mask != 0; mask &= mask - 1 {
			id := bits.TrailingZeros64(mask) + 1
			if s.deadlines[id] <= next {
				due |= 1 << uint(id-1)
			}
		}
		s.qmu.Unlock()
		for ; due != 0; due &= due - 1 {
			s.wake(s.procs[bits.TrailingZeros64(due)+1])
			if s.hasPanicked() {
				return false
			}
		}
	}
}

// deliverPhase routes accepted messages into the eligibility structures
// and delivers up to Bandwidth eligible messages, chosen uniformly at
// random among all eligible ones. Deliveries land in inboxes silently;
// recipients are woken by the subsequent wake phase.
func (s *System) deliverPhase(now Time) {
	s.mu.Lock()
	s.routeLocked(now)
	batch := s.batch[:0]
	k := s.cfg.bandwidth()
	for i := 0; i < k && len(s.eligible) > 0; i++ {
		j := s.rng.Intn(len(s.eligible))
		env := s.eligible[j]
		last := len(s.eligible) - 1
		s.eligible[j] = s.eligible[last]
		s.eligible[last] = envelope{}
		s.eligible = s.eligible[:last]
		batch = append(batch, env.msg)
	}
	s.batch = batch
	s.mu.Unlock()

	var dsts uint64
	for _, m := range batch {
		if s.pattern.Crashed(m.To, now) {
			s.metrics.dropped(m.Tag)
			continue
		}
		m.DeliveredAt = now
		s.procs[m.To].enqueue(m)
		s.metrics.delivered(m.Tag)
		dsts |= 1 << uint(m.To-1)
	}
	if dsts != 0 {
		s.qmu.Lock()
		s.inboxDue |= dsts
		s.qmu.Unlock()
	}
}

// routeLocked moves arrivals into eligible or the held buckets, then
// promotes every bucket whose release time has come. Must be called with
// s.mu held. Arrival order is deterministic: processes execute
// sequentially, so sends are appended in process-step order.
func (s *System) routeLocked(now Time) {
	for _, e := range s.arrivals {
		if e.notBefore <= now {
			s.eligible = append(s.eligible, e)
			continue
		}
		if _, ok := s.held[e.notBefore]; !ok {
			i := sort.Search(len(s.heldTimes), func(i int) bool { return s.heldTimes[i] >= e.notBefore })
			s.heldTimes = append(s.heldTimes, 0)
			copy(s.heldTimes[i+1:], s.heldTimes[i:])
			s.heldTimes[i] = e.notBefore
		}
		s.held[e.notBefore] = append(s.held[e.notBefore], e)
	}
	s.arrivals = s.arrivals[:0]
	for len(s.heldTimes) > 0 && s.heldTimes[0] <= now {
		t := s.heldTimes[0]
		s.heldTimes = s.heldTimes[1:]
		s.eligible = append(s.eligible, s.held[t]...)
		delete(s.held, t)
	}
}

// nextTime picks the next scheduled tick: now+1 when anything is pending
// for it, otherwise the earliest future tick at which something can
// happen (a hold release, a crash, a declared process wake, an external
// hint) — capping at MaxSteps. Dense mode (OnTick) never skips.
func (s *System) nextTime(now Time) Time {
	if len(s.onTick) > 0 {
		return now + 1
	}
	s.mu.Lock()
	backlog := len(s.eligible) > 0 || len(s.arrivals) > 0
	nextHeld := Never
	if len(s.heldTimes) > 0 {
		nextHeld = s.heldTimes[0]
	}
	s.mu.Unlock()
	if backlog {
		return now + 1
	}

	next := s.cfg.MaxSteps
	if nextHeld < next {
		next = nextHeld
	}
	for _, ct := range s.crashTimes {
		if ct > now {
			if ct < next {
				next = ct
			}
			break
		}
	}
	s.qmu.Lock()
	inboxed := s.parkedSet & s.inboxDue
	for mask := s.parkedSet; mask != 0; mask &= mask - 1 {
		if d := s.deadlines[bits.TrailingZeros64(mask)+1]; d < next {
			next = d
		}
	}
	s.qmu.Unlock()
	if inboxed != 0 {
		return now + 1
	}
	s.hintMu.Lock()
	for len(s.hints) > 0 && s.hints[0] <= now {
		s.hints = s.hints[1:]
	}
	if len(s.hints) > 0 && s.hints[0] < next {
		next = s.hints[0]
	}
	s.hintMu.Unlock()
	if next <= now {
		return now + 1
	}
	return next
}

// send enqueues a message into the network. Called from process goroutines.
// SentAt is stamped at acceptance time under the network lock, and sends
// from an already-crashed process are refused, so every accepted message
// satisfies SentAt < crash time of its sender.
func (s *System) send(m Message) {
	nb := Time(0)
	for _, h := range s.cfg.Holds {
		if h.From.Contains(m.From) && h.To.Contains(m.To) && h.Until > nb {
			nb = h.Until
		}
	}
	s.mu.Lock()
	now := s.Now()
	if s.pattern.Crashed(m.From, now) {
		s.mu.Unlock()
		return
	}
	m.SentAt = now
	s.arrivals = append(s.arrivals, envelope{msg: m, notBefore: nb})
	s.mu.Unlock()
	s.metrics.sent(m.Tag)
}

// InFlight returns the number of undelivered messages (diagnostics).
func (s *System) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.arrivals) + len(s.eligible)
	for _, b := range s.held {
		n += len(b)
	}
	return n
}
