// Package sim implements the asynchronous message-passing system model
// AS[n,t] of the paper: n processes that communicate over reliable but
// arbitrarily slow channels, of which at most t may crash.
//
// Processes run as goroutines, but execution is lockstep and sequential:
// a central scheduler (the "adversary") advances a virtual clock; on each
// tick it applies scheduled crashes, delivers up to Bandwidth in-flight
// messages chosen uniformly at random (seeded), and then wakes — one at a
// time, in identity order — exactly the processes whose wait condition is
// due (a new message, or a declared wake time reached; see Env.StepUntil).
// The scheduler only proceeds once the woken process has parked again, so
// a run is a deterministic function of its Config: same seed, same
// delivery order, same process steps, same result. Arbitrary-but-finite
// message delays and arbitrary crash patterns — exactly the adversary the
// asynchronous model quantifies over — are thus sampled reproducibly.
//
// # Concurrency contract
//
// Exactly one goroutine runs at any instant: whoever holds the run
// token. The token moves over unbuffered channels, and it moves
// directly — a parking process dispatches the next due process itself
// (one goroutine switch per wake, zero when it dispatches itself), and
// when the due set is empty the parking process runs the next tick's
// scheduler phases (crashes, deliveries, samplers, clock advance) on
// its own stack. There is no scheduler goroutine in the steady-state
// loop: Run's goroutine launches the processes, hands the token into
// the system and blocks until the run ends. No mutexes, no
// condition-variable broadcasts, no lock convoys, no middleman hop.
// All simulation state (network queues, inboxes, park bits, deadlines,
// metrics counters) is owned by the run token and accessed without
// locks; the channel handoffs provide the happens-before edges, and
// -race verifies the claim.
//
// The thin surface that IS safe to touch from other goroutines while a
// run is in progress: Now (atomic), WakeAt (locked), InFlight (atomic).
// Everything else — including Metrics reads and Env.Crashed — must be
// called with the run token (process mains, stop predicates, OnTick /
// OnAdvance samplers) or after Run has returned, which joins every
// process goroutine and so publishes all state. Stop predicates and
// samplers execute on whatever goroutine holds the token at that tick;
// they must not assume a fixed goroutine identity.
//
// Undeliverable stretches of virtual time are skipped: when no message is
// eligible, no process wake is due and no crash or hold release falls in
// between, the clock jumps directly to the next relevant tick. Dense
// per-tick samplers (OnTick) disable skipping; sparse samplers
// (OnAdvance) observe every scheduled tick, which is every tick at which
// anything can happen.
//
// Crash semantics: once a process is crashed, its next interaction with
// the environment unwinds its goroutine (an internal sentinel panic that
// never escapes the package). A crashed process therefore takes no
// further observable step, as in the model.
package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"fdgrid/internal/ids"
	"fdgrid/internal/trace"
)

// Time is the virtual clock, counted in scheduler ticks.
type Time int64

// Never is a crash time meaning "the process is correct".
const Never Time = 1<<62 - 1

// Hold delays matching messages: a message sent from a process in From to
// a process in To at or after Since is not deliverable before Until.
// Since is the window start (zero means "from the beginning of the
// run"); the window closes at Until, so a message sent at Until or later
// passes unhindered, and a message already in flight when the window
// opens is not retroactively held. Holds are the scripted half of the
// adversary, used by the irreducibility experiments ("delay every
// message from E until the horizon") and the generated partition-style
// adversaries (per-(from,to) windows).
type Hold struct {
	From  ids.Set
	To    ids.Set
	Since Time `json:"Since,omitempty"`
	Until Time
}

// Config parameterizes a run of the system.
type Config struct {
	// N is the number of processes (ids 1..N); T the resilience bound.
	N, T int
	// Seed drives the scheduler's random choices.
	Seed int64
	// MaxSteps bounds the run; the run stops when the clock reaches it.
	MaxSteps Time
	// Crashes maps a process to its crash time. Absent means correct.
	// A crash time of 0 is an initial crash.
	Crashes map[ids.ProcID]Time
	// GST is the global stabilization time: eventual failure detector
	// classes may misbehave before it and must behave after it.
	GST Time
	// Holds optionally script message delays (see Hold).
	Holds []Hold
	// Bandwidth is how many messages the scheduler delivers per tick
	// (default 1). Higher values speed up message-heavy transformations
	// without changing the adversary's power: delivery order stays
	// random and delays stay arbitrary.
	Bandwidth int
}

func (c Config) validate() error {
	if c.N < 1 || c.N > ids.MaxProcs {
		return fmt.Errorf("sim: N=%d out of range 1..%d", c.N, ids.MaxProcs)
	}
	if c.T < 0 || c.T >= c.N {
		return fmt.Errorf("sim: T=%d out of range 0..%d", c.T, c.N-1)
	}
	if len(c.Crashes) > c.T {
		return fmt.Errorf("sim: %d crashes scheduled but T=%d", len(c.Crashes), c.T)
	}
	for p, at := range c.Crashes {
		if p < 1 || int(p) > c.N {
			return fmt.Errorf("sim: crash scheduled for unknown process %d", p)
		}
		if at < 0 {
			return fmt.Errorf("sim: negative crash time for %v", p)
		}
	}
	if c.MaxSteps <= 0 {
		return fmt.Errorf("sim: MaxSteps=%d must be positive", c.MaxSteps)
	}
	if c.Bandwidth < 0 {
		return fmt.Errorf("sim: Bandwidth=%d must be non-negative", c.Bandwidth)
	}
	for _, h := range c.Holds {
		if h.Since < 0 {
			return fmt.Errorf("sim: hold window starts at negative time %d", h.Since)
		}
		if h.Since > 0 && h.Since >= h.Until {
			return fmt.Errorf("sim: hold window [%d,%d) is empty", h.Since, h.Until)
		}
	}
	return nil
}

func (c Config) bandwidth() int {
	if c.Bandwidth == 0 {
		return 1
	}
	return c.Bandwidth
}

// Pattern is the failure pattern of a run: which processes crash and when.
// It is derived from Config.Crashes and is the ground truth failure
// detector oracles consult. The crashed-by set is a step function of
// time with at most t steps, so the pattern precomputes one (time, set)
// window per distinct crash tick at construction; every query after that
// is a binary search over immutable data — one shared ground truth for
// all oracles and samplers instead of a per-oracle O(n) pattern scan,
// and safe from any goroutine.
type Pattern struct {
	n       int
	crashAt []Time // index 1..n; Never for correct processes

	// winTimes holds the sorted distinct crash ticks; winSets[i] is the
	// set of processes crashed at or before any t in
	// [winTimes[i], winTimes[i+1]). Before winTimes[0] nothing has
	// crashed; the last set is the pattern's faulty set.
	winTimes []Time
	winSets  []ids.Set
}

func newPattern(cfg Config) *Pattern {
	fp := &Pattern{n: cfg.N, crashAt: make([]Time, cfg.N+1)}
	for i := range fp.crashAt {
		fp.crashAt[i] = Never
	}
	for p, at := range cfg.Crashes {
		fp.crashAt[p] = at
	}
	for p := 1; p <= fp.n; p++ {
		if fp.crashAt[p] != Never {
			fp.winTimes = append(fp.winTimes, fp.crashAt[p])
		}
	}
	sort.Slice(fp.winTimes, func(i, j int) bool { return fp.winTimes[i] < fp.winTimes[j] })
	fp.winTimes = dedupTimes(fp.winTimes)
	fp.winSets = make([]ids.Set, len(fp.winTimes))
	var acc ids.Set
	for i, t := range fp.winTimes {
		for p := 1; p <= fp.n; p++ {
			if fp.crashAt[p] == t {
				acc = acc.Add(ids.ProcID(p))
			}
		}
		fp.winSets[i] = acc
	}
	return fp
}

// dedupTimes collapses equal neighbours of a sorted time slice in place.
func dedupTimes(ts []Time) []Time {
	out := ts[:0]
	for _, t := range ts {
		if len(out) == 0 || out[len(out)-1] != t {
			out = append(out, t)
		}
	}
	return out
}

// N returns the number of processes.
func (fp *Pattern) N() int { return fp.n }

// CrashTime returns when p crashes (Never if correct).
func (fp *Pattern) CrashTime(p ids.ProcID) Time { return fp.crashAt[p] }

// Crashed reports whether p has crashed at or before time at.
func (fp *Pattern) Crashed(p ids.ProcID, at Time) bool { return fp.crashAt[p] <= at }

// CrashedSet returns the set of processes crashed at or before time at:
// a binary search over the precomputed crash windows.
func (fp *Pattern) CrashedSet(at Time) ids.Set {
	i := sort.Search(len(fp.winTimes), func(i int) bool { return fp.winTimes[i] > at })
	if i == 0 {
		return ids.Set{}
	}
	return fp.winSets[i-1]
}

// CrashedWindow returns the crashed-by set at time at together with the
// half-open window [from, till) of times sharing it, for callers that
// memoize across queries. from underflows to a far-negative sentinel
// before the first crash (lag-shifted queries probe negative times);
// till is Never after the last one.
func (fp *Pattern) CrashedWindow(at Time) (set ids.Set, from, till Time) {
	i := sort.Search(len(fp.winTimes), func(i int) bool { return fp.winTimes[i] > at })
	from, till = Time(-1<<62), Never
	if i < len(fp.winTimes) {
		till = fp.winTimes[i]
	}
	if i == 0 {
		return ids.Set{}, from, till
	}
	return fp.winSets[i-1], fp.winTimes[i-1], till
}

// NextCrashAfter returns the earliest crash tick strictly after t, or
// Never when no further crash is scheduled.
func (fp *Pattern) NextCrashAfter(t Time) Time {
	i := sort.Search(len(fp.winTimes), func(i int) bool { return fp.winTimes[i] > t })
	if i == len(fp.winTimes) {
		return Never
	}
	return fp.winTimes[i]
}

// AllCrashed reports whether every process of s has crashed by time at.
// The empty set is vacuously all-crashed.
func (fp *Pattern) AllCrashed(s ids.Set, at Time) bool {
	return s.SubsetOf(fp.CrashedSet(at))
}

// Correct returns the set of processes that never crash in the run.
func (fp *Pattern) Correct() ids.Set {
	return ids.FullSet(fp.n).Minus(fp.Faulty())
}

// Faulty returns the complement of Correct within {1..n}.
func (fp *Pattern) Faulty() ids.Set {
	if len(fp.winSets) == 0 {
		return ids.Set{}
	}
	return fp.winSets[len(fp.winSets)-1]
}

// System is one simulated asynchronous system instance. Create it with
// New, register process mains with Spawn, then call Run exactly once.
//
// Field ownership follows the package's concurrency contract: unless a
// field is explicitly marked atomic or locked below, it is run-token
// state — accessed only by the scheduler goroutine or by the single
// running process, which the yield/resume handoff serializes.
type System struct {
	cfg     Config
	pattern *Pattern
	src     rand.Source64 // the delivery draw stream (see System.intn)
	//detlint:allow runtoken -- System.Now is documented cross-thread surface: any goroutine may sample the clock
	now     atomic.Int64
	procs   []*Proc // index 1..N
	metrics *Metrics

	// rec, when non-nil, records the run's decision trace (crashes here
	// in the scheduler; oracle flips and protocol events at their
	// sources). Owned by the run token like the rest of the simulation
	// state; nil is the common no-tracing case and costs one predictable
	// branch per instrumented site.
	rec *trace.Recorder

	// yield returns the run token to Run's goroutine: during the launch
	// phase after each process's first park, and once at the end of the
	// run. Run is its only receiver. reapAck is the separate return path
	// of the kill handshake: an unwinding process sends one token, the
	// killAt or teardown caller that resumed it receives it (a shared
	// channel would let the two rendezvous cross).
	yield   chan struct{}
	reapAck chan struct{}

	// Token-protocol state. running is false during launch (parks yield
	// to Run) and true while the token circulates; reaping marks a kill
	// handshake in flight (the unwinding process acks on reapAck instead
	// of dispatching). due is the set of processes selected to wake this
	// tick and not yet dispatched; stoppedEarly / ended record how the
	// run finished.
	running      bool
	reaping      bool
	due          pset
	stop         func() bool
	stoppedEarly bool
	ended        bool

	// Network state: messages accepted but not yet routed (arrivals),
	// deliverable messages (eligible) and messages bucketed by the tick
	// their scripted hold releases them (held, keys sorted in heldTimes).
	// bucketPool recycles drained hold buckets across a run. eligible
	// drops the envelope wrapper: a message's notBefore is spent the
	// moment it becomes eligible, so the list moves bare 56-byte
	// Messages, not 64-byte envelopes.
	arrivals   []envelope
	eligible   []Message
	held       map[Time][]envelope
	heldTimes  []Time
	bucketPool [][]envelope

	// Delivery batching state: the delivery phase appends this tick's
	// selected messages straight onto their destination inboxes (the
	// inbox tail IS the batch buffer — no intermediate copy), marking the
	// touched destinations in batched and each destination's pre-tick
	// inbox length in batchStart. The flush pass then pays the
	// per-destination costs once per batch: the crash check (dropping the
	// whole tail, zeroed so no payload outlives the drop), the
	// DeliveredAt stamps, the wake-hint and the per-(destination, tag)
	// counter bumps. Owned by the run token like the rest of the network
	// state.
	batched    pset
	batchStart []int
	// selPairs / selSlot / selNext are the reusable buffers of the
	// full-delivery fast path: when bandwidth covers the whole eligible
	// set, selection swap-removes run over compact (index, dest) pairs,
	// consuming the identical draw sequence while assigning each message
	// its final inbox slot (selSlot); selNext tracks the next free slot
	// per destination (doubling as the per-destination count while the
	// pairs are built), length N+1.
	selPairs []selPair
	selSlot  []int32
	selNext  []int32
	// eligDirty is the high-water mark of stale entries in eligible's
	// recycled capacity after full-delivery truncations. The wipe that
	// keeps payload references from outliving their delivery is deferred
	// to the first tick with no eligible traffic: a busy network
	// overwrites the recycled capacity every tick anyway, so the
	// sequential clear runs when traffic pauses, not per tick.
	eligDirty int

	// holdUntil is the per-(from,to) release matrix precomputed from the
	// Since=0 entries of Config.Holds at New time, flattened to
	// (N+1)*(N+1); nil when the run scripts no such holds, which is the
	// send fast path. holdWins carries the windowed (Since>0) holds per
	// (from,to) pair, consulted against the send time; nil when no hold
	// is windowed.
	holdUntil []Time
	holdWins  [][]holdWin

	// Wake accounting: parkedSet marks parked processes (bit id-1), set
	// by the parking process and cleared by the scheduler on wake;
	// deadlines mirrors each parked process's declared wake time; and
	// inboxDue marks parked processes the delivery phase enqueued
	// messages for.
	parkedSet pset
	inboxDue  pset
	pw        int    // live pset words for this run's N (scan bound)
	deadlines []Time // index 1..N; valid while the proc's parkedSet bit is set

	// inflight counts accepted-but-undelivered messages. Atomic: it is
	// the one network figure exposed to other goroutines (InFlight).
	//detlint:allow runtoken -- System.InFlight is documented cross-thread surface
	inflight atomic.Int64

	// External wake hints (WakeAt), kept sorted ascending. Locked: the
	// one mutable input other goroutines may feed a running scheduler.
	//detlint:allow runtoken -- System.WakeAt is documented cross-thread surface; the hint list is its locked inbox
	hintMu sync.Mutex
	hints  []Time

	crashTimes []Time // sorted crash ticks, for clock jumps
	crashIdx   int    // first entry of crashTimes not yet applied

	// hintLen mirrors len(hints) so the per-tick nextTime can skip the
	// hint lock entirely when no hints exist (the common case).
	//detlint:allow runtoken -- mirrors the WakeAt hint list's length across threads
	hintLen atomic.Int32

	//detlint:allow runtoken -- Run joins the process goroutines at teardown, publishing all run state
	wg        sync.WaitGroup
	ran       bool
	onTick    []func(Time)
	onAdvance []func(Time)

	// First protocol panic, recorded by the unwinding process goroutine
	// (which holds the run token) and re-raised from Run.
	panicVal any
	panicked bool
}

// OnTick registers fn to run on the scheduler goroutine once per tick,
// after deliveries, before processes observe the tick. Registering any
// OnTick callback makes the clock dense: no tick is ever skipped, so
// samplers may match exact tick values. Must be called before Run.
func (s *System) OnTick(fn func(Time)) {
	if s.ran {
		panic("sim: OnTick after Run")
	}
	s.onTick = append(s.onTick, fn)
}

// OnAdvance registers fn to run once per *scheduled* tick — every tick at
// which a delivery, crash, hold release or process wake can happen.
// Unlike OnTick it does not force the clock dense: provably idle
// stretches may still be skipped. Since processes only take steps at
// scheduled ticks, an OnAdvance sampler still observes every state
// change. Must be called before Run.
func (s *System) OnAdvance(fn func(Time)) {
	if s.ran {
		panic("sim: OnAdvance after Run")
	}
	s.onAdvance = append(s.onAdvance, fn)
}

// TraceTo attaches a decision-trace recorder: the scheduler records
// crash events (and, at trace.Full, delivery and hold-release volume)
// into it, and instrumented components reach it via Recorder /
// Env.Trace. Tracing never alters the run: recording consumes no
// random draws and schedules no ticks, so a traced run is
// byte-identical to an untraced one in every report field. Must be
// called before Run.
func (s *System) TraceTo(rec *trace.Recorder) {
	if s.ran {
		panic("sim: TraceTo after Run")
	}
	s.rec = rec
}

// Recorder returns the attached decision-trace recorder, nil when the
// run is untraced. All recorder methods are nil-safe, so callers may
// record unconditionally.
func (s *System) Recorder() *trace.Recorder { return s.rec }

// WakeAt asks the scheduler to schedule a tick at time t even if nothing
// else is due then. Stop predicates whose truth flips at a known future
// time (e.g. "stable for d ticks") register it here so clock jumps do not
// overshoot the earliest stopping point. Safe to call from stop
// predicates and OnTick/OnAdvance callbacks — and, alone among the
// scheduler's inputs, from other goroutines; stale times are ignored.
func (s *System) WakeAt(t Time) {
	s.hintMu.Lock()
	defer s.hintMu.Unlock()
	i := sort.Search(len(s.hints), func(i int) bool { return s.hints[i] >= t })
	if i < len(s.hints) && s.hints[i] == t {
		return
	}
	s.hints = append(s.hints, 0)
	copy(s.hints[i+1:], s.hints[i:])
	s.hints[i] = t
	s.hintLen.Store(int32(len(s.hints)))
}

// New builds a system from cfg. It returns an error if cfg is invalid.
func New(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:     cfg,
		pattern: newPattern(cfg),
		src:     rand.NewSource(cfg.Seed).(rand.Source64),
		metrics: newMetrics(),
		held:    make(map[Time][]envelope),
		yield:   make(chan struct{}),
		reapAck: make(chan struct{}),
	}
	s.pw = pwords(cfg.N)
	s.deadlines = make([]Time, cfg.N+1)
	s.batchStart = make([]int, cfg.N+1)
	s.selNext = make([]int32, cfg.N+1)
	for _, at := range cfg.Crashes {
		s.crashTimes = append(s.crashTimes, at)
	}
	sort.Slice(s.crashTimes, func(i, j int) bool { return s.crashTimes[i] < s.crashTimes[j] })
	s.procs = make([]*Proc, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		s.procs[i] = newProc(ids.ProcID(i), s)
	}
	if len(cfg.Holds) > 0 {
		// Precompute the release structures so the send path is one
		// array index (run-from-start holds) plus, only when windows are
		// scripted, a short per-pair window scan — instead of an
		// O(|Holds|) set scan per message.
		windowed := false
		for _, h := range cfg.Holds {
			if h.Since > 0 {
				windowed = true
				break
			}
		}
		s.holdUntil = make([]Time, (cfg.N+1)*(cfg.N+1))
		if windowed {
			s.holdWins = make([][]holdWin, (cfg.N+1)*(cfg.N+1))
		}
		for from := 1; from <= cfg.N; from++ {
			for to := 1; to <= cfg.N; to++ {
				idx := from*(cfg.N+1) + to
				var nb Time
				for _, h := range cfg.Holds {
					if !h.From.Contains(ids.ProcID(from)) || !h.To.Contains(ids.ProcID(to)) {
						continue
					}
					if h.Since == 0 {
						if h.Until > nb {
							nb = h.Until
						}
					} else {
						s.holdWins[idx] = append(s.holdWins[idx], holdWin{since: h.Since, until: h.Until})
					}
				}
				s.holdUntil[idx] = nb
			}
		}
	}
	return s, nil
}

// holdWin is one precompiled windowed hold for a (from,to) pair: a
// message sent at τ ∈ [since, until) is not deliverable before until.
type holdWin struct {
	since, until Time
}

// MustNew is New for configurations known statically valid (tests, benches).
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the run configuration.
func (s *System) Config() Config { return s.cfg }

// Pattern returns the run's failure pattern (oracle ground truth).
func (s *System) Pattern() *Pattern { return s.pattern }

// Now returns the current virtual time.
func (s *System) Now() Time { return Time(s.now.Load()) }

// GST returns the configured global stabilization time.
func (s *System) GST() Time { return s.cfg.GST }

// Metrics returns the live metrics collector (see Metrics for the
// ownership contract on its readers).
func (s *System) Metrics() *Metrics { return s.metrics }

// Env returns the environment handle of process p (for oracle adapters
// and tests; protocol mains receive theirs via Spawn).
func (s *System) Env(p ids.ProcID) *Env { return &Env{p: s.procs[p]} }

// Spawn registers main as the protocol code of process p. It must be
// called before Run. The main runs on its own goroutine; it is unwound
// when p crashes or the run stops, and may also return on its own.
//
// Mains must block through Env (Step, StepUntil, WaitUntil) to let the
// scheduler advance: the system is lockstep, so a main that spins without
// an Env call stalls virtual time.
func (s *System) Spawn(p ids.ProcID, main func(*Env)) {
	if p < 1 || int(p) > s.cfg.N {
		panic(fmt.Sprintf("sim: Spawn(%d) unknown process", p))
	}
	if s.procs[p].main != nil {
		panic(fmt.Sprintf("sim: Spawn(%d) called twice", p))
	}
	s.procs[p].main = main
}

// SpawnAll registers the same main on every process.
func (s *System) SpawnAll(main func(*Env)) {
	for i := 1; i <= s.cfg.N; i++ {
		s.Spawn(ids.ProcID(i), main)
	}
}

// Report summarizes a finished run.
type Report struct {
	// Steps is the virtual time at which the run ended.
	Steps Time
	// StoppedEarly is true if the stop predicate fired before MaxSteps.
	StoppedEarly bool
	// Messages is a snapshot of the message metrics.
	Messages MetricsSnapshot
}

// launch starts process p's goroutine and blocks until it hands the run
// token back (first park, or exit). Only used before running is set, so
// the park and exit paths yield straight to Run's goroutine.
func (s *System) launch(p *Proc) {
	s.wg.Add(1)
	//detlint:allow runtoken -- the one sanctioned goroutine spawn: each process main runs on its own goroutine, serialized by the run token
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); !ok && !s.panicked {
					// A protocol bug: remember it and re-raise from Run.
					s.panicked = true
					s.panicVal = r
				}
			}
			p.exited = true
			// A panic can unwind out of StepUntil after the process
			// published its park bit (e.g. a stop predicate or sampler
			// panicking inside the tick phases this process was running):
			// clear it, or teardown would try to resume a goroutine that
			// no longer exists.
			s.parkedSet.clear(p.id)
			s.releaseToken()
			s.wg.Done()
		}()
		p.main(&Env{p: p})
	}()
	<-s.yield
}

// releaseToken passes the run token onward from a process goroutine that
// is done running — it parked inside dispatch instead; this is the exit
// path (main returned, crash unwind, protocol panic).
func (s *System) releaseToken() {
	switch {
	case s.reaping:
		// A killAt or teardown handshake: ack the caller that resumed us.
		s.reapAck <- struct{}{}
	case !s.running:
		// Launch phase: the token goes straight back to Run.
		s.yield <- struct{}{}
	default:
		s.dispatch(nil)
	}
}

// dispatch passes the run token to the next due process — running the
// tick phases right here, on the caller's stack, whenever the due set
// is empty. self is the calling (parking) process, nil on the exit
// path. It returns true when the caller itself is the next due process:
// the caller keeps the token and keeps running, zero switches. When it
// returns false the token is gone and the caller must block on its
// resume channel (or exit).
func (s *System) dispatch(self *Proc) bool {
	for {
		if s.panicked || s.ended {
			s.ended = true
			s.yield <- struct{}{} // the run is over: token home to Run
			return false
		}
		if id := s.due.first(s.pw); id != ids.None {
			s.due.clear(id)
			s.parkedSet.clear(id)
			s.inboxDue.clear(id)
			p := s.procs[id]
			if p == self {
				return true
			}
			p.resume <- struct{}{}
			return false
		}
		if s.tick(self) {
			s.ended = true
		}
	}
}

// killAt applies an in-run crash: the process is marked dead and, if it
// was parked, resumed so its goroutine unwinds — and acks on reapAck —
// before the tick proceeds. A process crashing at the very tick it is
// running the phases for (p == self) is only marked: it unwinds at its
// next Env call, before taking any protocol step.
func (s *System) killAt(p, self *Proc) {
	p.dead = true
	if p == self {
		return
	}
	if s.parkedSet.has(p.id) {
		s.reap(p)
	}
}

// reap unwinds one parked process synchronously: resume it, let its
// goroutine run the crash unwind, receive the reapAck token back.
func (s *System) reap(p *Proc) {
	if p.exited {
		return // its goroutine is gone; nothing to unwind
	}
	s.parkedSet.clear(p.id)
	s.inboxDue.clear(p.id)
	s.reaping = true
	p.resume <- struct{}{}
	<-s.reapAck
	s.reaping = false
}

// Run executes the system: it starts every registered main, then drives
// the scheduler until stop() returns true or MaxSteps elapse, and finally
// tears everything down, joining all process goroutines. stop may be nil
// (run to MaxSteps) and must be safe to call from the scheduler goroutine.
func (s *System) Run(stop func() bool) Report {
	if s.ran {
		panic("sim: Run called twice")
	}
	s.ran = true

	for i := 1; i <= s.cfg.N; i++ {
		p := s.procs[i]
		if s.pattern.CrashTime(p.id) <= 0 {
			p.dead = true // initial crash: never takes a step
			continue
		}
		if p.main == nil {
			continue
		}
		s.launch(p)
	}

	stoppedEarly := s.schedule(stop)

	// Tear down: unwind every parked process goroutine, then join them.
	for i := 1; i <= s.cfg.N; i++ {
		p := s.procs[i]
		p.dead = true
		if s.parkedSet.has(p.id) {
			s.reap(p)
		}
	}
	s.wg.Wait()

	if s.panicked {
		panic(s.panicVal)
	}

	return Report{
		Steps:        s.Now(),
		StoppedEarly: stoppedEarly,
		Messages:     s.metrics.Snapshot(),
	}
}

// schedule hands the run token into the system from Run's goroutine and
// takes it back when the run is over. Run's goroutine only runs ticks
// itself while no process is due (e.g. a run with no spawned mains);
// as soon as a process is dispatched, the token circulates process to
// process and Run just waits for it to come home.
func (s *System) schedule(stop func() bool) bool {
	s.stop = stop
	s.running = true
	for {
		if s.panicked || s.ended {
			return s.stoppedEarly
		}
		if id := s.due.first(s.pw); id != ids.None {
			s.due.clear(id)
			s.parkedSet.clear(id)
			s.inboxDue.clear(id)
			s.procs[id].resume <- struct{}{}
			<-s.yield // token comes home only when the run ends
			return s.stoppedEarly
		}
		if s.tick(nil) {
			return s.stoppedEarly
		}
	}
}

// tick runs one scheduled tick's phases — stop checks, crashes,
// deliveries, samplers, clock advance, due-set computation — on the
// token holder's stack (self is the calling process, nil from Run's
// goroutine). It returns true when the run is over.
func (s *System) tick(self *Proc) bool {
	now := s.Now()
	if now >= s.cfg.MaxSteps {
		return true
	}
	if s.stop != nil && s.stop() {
		s.stoppedEarly = true
		return true
	}
	if s.panicked {
		return true
	}

	// Apply crashes scheduled at this tick (skipped in O(1) while no
	// crash is pending — crashTimes is sorted and crashIdx tracks how
	// far the run has come).
	if s.crashIdx < len(s.crashTimes) && s.crashTimes[s.crashIdx] <= now {
		for s.crashIdx < len(s.crashTimes) && s.crashTimes[s.crashIdx] <= now {
			s.crashIdx++
		}
		for i := 1; i <= s.cfg.N; i++ {
			p := s.procs[i]
			if s.pattern.CrashTime(p.id) == now {
				s.killAt(p, self)
				if s.rec != nil {
					s.rec.Crash(int64(now), i)
				}
			}
		}
	}

	if len(s.arrivals) > 0 || len(s.eligible) > 0 || len(s.heldTimes) > 0 {
		s.deliverPhase(now)
	}

	// Samplers observe the system at time `now` (the clock has not
	// advanced yet, so oracles read the same instant).
	for _, fn := range s.onTick {
		fn(now)
	}
	for _, fn := range s.onAdvance {
		fn(now)
	}

	// Advance the clock — by one tick, or past a provably idle stretch —
	// and select, in identity order, every process whose wait condition
	// is due. The dispatch chain wakes them one after another.
	next := s.nextTime(now)
	s.now.Store(int64(next))
	var due pset
	for w := 0; w < s.pw; w++ {
		due[w] = s.parkedSet[w] & s.inboxDue[w]
		base := w << 6
		for word := s.parkedSet[w]; word != 0; word &= word - 1 {
			if s.deadlines[base+bits.TrailingZeros64(word)+1] <= next {
				due[w] |= word & -word
			}
		}
	}
	s.due = due
	return false
}

// intn returns a uniform draw in [0, n), consuming the source exactly as
// rand.New(source).Intn(n) would: the same power-of-two mask and
// rejection-sampling steps over the same Int63 stream (math/rand's
// generator and Int31n algorithm are frozen by the Go 1 compatibility
// promise, and the 265-cell suite golden pins the claim byte-for-byte).
// Inlining the draw skips three nested method calls per delivered
// message — the irreducible floor of the delivery loop.
func (s *System) intn(n int) int {
	if n&(n-1) == 0 { // n is a power of two, including n == 1
		return int(int32(s.src.Int63()>>32) & int32(n-1))
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := int32(s.src.Int63() >> 32)
	for v > max {
		v = int32(s.src.Int63() >> 32)
	}
	return int(v % int32(n))
}

// deliverPhase routes accepted messages into the eligibility structures
// and delivers up to Bandwidth eligible messages, chosen uniformly at
// random among all eligible ones. Deliveries land in inboxes silently;
// recipients are woken by the subsequent wake phase.
//
// Delivery is batched: the selection loop (whose draw sequence defines
// the run and is bit-for-bit unchanged) appends each chosen message,
// stamped, straight onto its destination inbox — selection order is
// inbox order, exactly as per-message delivery appended them — and
// flushBatches then pays the per-destination costs (crash check,
// wake-hint, counter bumps) once per (destination, tag) batch instead
// of once per message.
// selPair is one entry of the full-delivery selection: the message's
// index in eligible and its destination, compact enough (8 bytes) that
// the selection loop's random swaps stay cache-resident at sizes where
// the eligible array itself does not.
type selPair struct{ i, to int32 }

// fullScatterMin is the eligible size (in messages, ~1 MB of Message
// data) above which the full-delivery path switches from direct inbox
// appends to the three-pass scatter form: below it the random reads of
// eligible hit cache and the extra passes only add overhead, above it
// the dependent random reads dominate and sequential passes win. A var
// only so tests can force either form over the same workload and pin
// their equivalence; nothing else may write it.
var fullScatterMin = 16384

func (s *System) deliverPhase(now Time) {
	s.route(now)
	k := s.cfg.bandwidth()
	if len(s.eligible) == 0 {
		if s.eligDirty > 0 {
			// Traffic paused: wipe the stale recycled capacity left by
			// full-delivery truncations in one sequential clear, so no
			// payload reference outlives its delivery past the pause.
			clear(s.eligible[:s.eligDirty])
			s.eligDirty = 0
		}
		return
	}
	if n := len(s.eligible); k >= n {
		// Full delivery: every eligible message lands this tick, so the
		// draws only decide per-destination arrival order.
		//
		// Small ticks (eligible comfortably cache-resident) run the
		// swap-remove selection over an index permutation and append
		// each chosen message straight onto its destination inbox.
		if n < fullScatterMin {
			for q := 1; q <= s.cfg.N; q++ {
				s.batchStart[q] = len(s.procs[ids.ProcID(q)].inbox)
			}
			if cap(s.selSlot) < n {
				s.selSlot = make([]int32, n)
			}
			idx := s.selSlot[:n]
			for i := range idx {
				idx[i] = int32(i)
			}
			for sz := n; sz > 0; sz-- {
				j := s.intn(sz)
				m := &s.eligible[idx[j]]
				idx[j] = idx[sz-1]
				m.DeliveredAt = now
				p := s.procs[m.To]
				p.inbox = append(p.inbox, *m)
			}
			if n > s.eligDirty {
				s.eligDirty = n
			}
			s.eligible = s.eligible[:0]
			s.inflight.Add(-int64(n))
			s.flushAll(now)
			if s.rec != nil {
				s.rec.Deliver(int64(now), n)
			}
			return
		}
		// Large ticks: the selection loop above would spend its time on
		// dependent random reads of the (now cache-breaking) eligible
		// array, so restructure it into three passes that touch the big
		// array only sequentially:
		//
		//  1. one sequential scan builds compact (index, dest) pairs and
		//     per-destination counts, and the inboxes are extended once
		//     per destination to their final lengths;
		//  2. the unchanged swap-remove selection runs over the 8-byte
		//     pairs (cache-resident even at n², where eligible is not),
		//     assigning each message its final inbox slot in draw order;
		//  3. one sequential scan moves the messages, stamped, into
		//     their slots — independent scattered writes instead of
		//     dependent scattered reads.
		//
		// Draw consumption (Intn(n), Intn(n−1), …) and each inbox's
		// resulting content and order are bit-identical to the general
		// loop below: slots are handed out in draw order per
		// destination, exactly where per-message appends would land.
		// Eligible is truncated without a wipe (eligDirty defers that
		// to the next idle tick); every extended inbox slot is written
		// exactly once in pass 3 before anything reads it.
		if cap(s.selPairs) < n {
			s.selPairs = make([]selPair, n)
			s.selSlot = make([]int32, n)
		}
		sel := s.selPairs[:n]
		slot := s.selSlot[:n]
		next := s.selNext
		for i := range sel {
			to := s.eligible[i].To
			sel[i] = selPair{i: int32(i), to: int32(to)}
			next[to]++
		}
		for q := 1; q <= s.cfg.N; q++ {
			p := s.procs[ids.ProcID(q)]
			s.batchStart[q] = len(p.inbox)
			if c := next[q]; c > 0 {
				p.inbox = growInbox(p.inbox, int(c))
				next[q] = int32(s.batchStart[q])
			}
		}
		for sz := n; sz > 0; sz-- {
			j := s.intn(sz)
			e := sel[j]
			sel[j] = sel[sz-1]
			slot[e.i] = next[e.to]
			next[e.to]++
		}
		for i := range s.eligible {
			m := &s.eligible[i]
			m.DeliveredAt = now
			s.procs[m.To].inbox[slot[i]] = *m
		}
		clear(next)
		if n > s.eligDirty {
			s.eligDirty = n
		}
		s.eligible = s.eligible[:0]
		s.inflight.Add(-int64(n))
		s.flushAll(now)
		if s.rec != nil {
			s.rec.Deliver(int64(now), n)
		}
		return
	}
	delivered := 0
	for i := 0; i < k && len(s.eligible) > 0; i++ {
		j := s.intn(len(s.eligible))
		m := s.eligible[j]
		last := len(s.eligible) - 1
		s.eligible[j] = s.eligible[last]
		s.eligible[last] = Message{}
		s.eligible = s.eligible[:last]
		m.DeliveredAt = now
		to := m.To
		if !s.batched.has(to) {
			s.batched.set(to)
			s.batchStart[to] = len(s.procs[to].inbox)
		}
		p := s.procs[to]
		p.inbox = append(p.inbox, m)
		delivered++
	}
	if delivered == 0 {
		return
	}
	s.inflight.Add(-int64(delivered))
	s.flushBatches(now)
	if s.rec != nil {
		s.rec.Deliver(int64(now), delivered)
	}
}

// flushBatches lands the inbox tails the selection loop appended this
// tick. Batches to crashed destinations are dropped whole: the tail is
// cut back off the inbox and zeroed, so no payload reference outlives
// the drop and the inbox state matches per-message delivery exactly
// (which never appended to a crashed destination at all). Counters stay
// per-message-exact — equal-tag runs are counted with one bump of the
// run's length.
func (s *System) flushBatches(now Time) {
	for w := 0; w < s.pw; w++ {
		base := w << 6
		for word := s.batched[w]; word != 0; word &= word - 1 {
			to := ids.ProcID(base + bits.TrailingZeros64(word) + 1)
			p := s.procs[to]
			batch := p.inbox[s.batchStart[to]:]
			if s.pattern.Crashed(to, now) {
				s.countByTag(batch, s.metrics.countDroppedN)
				p.inbox = p.inbox[:s.batchStart[to]]
				clear(batch)
				continue
			}
			s.countByTag(batch, s.metrics.countDeliveredN)
			s.inboxDue.set(to)
		}
		s.batched[w] = 0
	}
}

// flushAll is flushBatches for the full-delivery path, where every
// destination's batchStart was recorded up front: it scans the procs
// directly (skipping untouched inboxes) instead of walking the batched
// set, which the selection loop then never has to maintain.
func (s *System) flushAll(now Time) {
	for q := 1; q <= s.cfg.N; q++ {
		to := ids.ProcID(q)
		p := s.procs[to]
		batch := p.inbox[s.batchStart[to]:]
		if len(batch) == 0 {
			continue
		}
		if s.pattern.Crashed(to, now) {
			s.countByTag(batch, s.metrics.countDroppedN)
			p.inbox = p.inbox[:s.batchStart[to]]
			clear(batch)
			continue
		}
		s.countByTag(batch, s.metrics.countDeliveredN)
		s.inboxDue.set(to)
	}
}

// countByTag bumps a per-tag counter for every message of the batch,
// coalescing runs of equal tags (the common case: a protocol round
// lands as one same-tag batch per destination) into one bump.
func (s *System) countByTag(batch []Message, count func(Tag, int64)) {
	for i := 0; i < len(batch); {
		tag := batch[i].Tag
		j := i + 1
		for j < len(batch) && batch[j].Tag == tag {
			j++
		}
		count(tag, int64(j-i))
		i = j
	}
}

// route moves arrivals into eligible or the held buckets, then promotes
// every bucket whose release time has come. Arrival order is
// deterministic: processes execute sequentially, so sends are appended
// in process-step order.
func (s *System) route(now Time) {
	if s.holdUntil == nil {
		// No scripted holds: sends append straight to eligible, so there
		// is nothing to route and no bucket can exist.
		return
	}
	for _, e := range s.arrivals {
		if e.notBefore <= now {
			s.eligible = append(s.eligible, e.msg)
			continue
		}
		if _, ok := s.held[e.notBefore]; !ok {
			i := sort.Search(len(s.heldTimes), func(i int) bool { return s.heldTimes[i] >= e.notBefore })
			s.heldTimes = append(s.heldTimes, 0)
			copy(s.heldTimes[i+1:], s.heldTimes[i:])
			s.heldTimes[i] = e.notBefore
			if n := len(s.bucketPool); n > 0 {
				s.held[e.notBefore] = s.bucketPool[n-1]
				s.bucketPool = s.bucketPool[:n-1]
			}
		}
		s.held[e.notBefore] = append(s.held[e.notBefore], e)
	}
	s.arrivals = s.arrivals[:0]
	released := 0
	for len(s.heldTimes) > 0 && s.heldTimes[0] <= now {
		t := s.heldTimes[0]
		s.heldTimes = s.heldTimes[1:]
		b := s.held[t]
		for i := range b {
			s.eligible = append(s.eligible, b[i].msg)
		}
		released += len(b)
		delete(s.held, t)
		s.bucketPool = append(s.bucketPool, b[:0])
	}
	if s.rec != nil {
		s.rec.HoldRelease(int64(now), released)
	}
}

// nextTime picks the next scheduled tick: now+1 when anything is pending
// for it, otherwise the earliest future tick at which something can
// happen (a hold release, a crash, a declared process wake, an external
// hint) — capping at MaxSteps. Dense mode (OnTick) never skips.
func (s *System) nextTime(now Time) Time {
	if len(s.onTick) > 0 {
		return now + 1
	}
	if len(s.eligible) > 0 || len(s.arrivals) > 0 {
		return now + 1
	}

	next := s.cfg.MaxSteps
	if len(s.heldTimes) > 0 && s.heldTimes[0] < next {
		next = s.heldTimes[0]
	}
	if s.crashIdx < len(s.crashTimes) {
		if ct := s.crashTimes[s.crashIdx]; ct > now && ct < next {
			next = ct
		}
	}
	if s.parkedSet.intersects(&s.inboxDue, s.pw) {
		return now + 1
	}
	for w := 0; w < s.pw; w++ {
		base := w << 6
		for word := s.parkedSet[w]; word != 0; word &= word - 1 {
			if d := s.deadlines[base+bits.TrailingZeros64(word)+1]; d < next {
				next = d
			}
		}
	}
	if s.hintLen.Load() > 0 {
		s.hintMu.Lock()
		for len(s.hints) > 0 && s.hints[0] <= now {
			s.hints = s.hints[1:]
		}
		if len(s.hints) > 0 && s.hints[0] < next {
			next = s.hints[0]
		}
		s.hintLen.Store(int32(len(s.hints)))
		s.hintMu.Unlock()
	}
	if next <= now {
		return now + 1
	}
	return next
}

// send enqueues a message into the network. Called from process
// goroutines, which hold the run token — so the queues need no lock.
// send owns the SentAt stamp: it is set here, at acceptance time, and
// nowhere else; sends from an already-crashed process are refused, so
// every accepted message satisfies SentAt < crash time of its sender.
func (s *System) send(m Message) {
	now := s.Now()
	if s.pattern.Crashed(m.From, now) {
		return
	}
	m.SentAt = now
	if s.holdUntil == nil {
		// No scripted holds: the message would be routed to the eligible
		// tail, unconditionally, by the next delivery phase — append it
		// there directly and skip the arrivals staging. Selection (which
		// permutes eligible) never runs between this send and that
		// routing point, so the list is exactly what routing would build.
		s.eligible = append(s.eligible, m)
	} else {
		s.arrivals = append(s.arrivals, envelope{msg: m, notBefore: s.holdFor(m.From, m.To, now)})
	}
	s.inflight.Add(1)
	s.metrics.countSent(m.Tag)
}

// broadcast is the fan-out fast path behind Env.Broadcast: the sender
// liveness check, clock read, and SentAt stamp are paid once for the
// whole destination set instead of once per copy. The caller holds the
// run token for the entire fan-out, so the clock and the crash
// predicate cannot change mid-loop — destination order (1..N) and every
// per-copy hold window match N individual sends exactly.
func (s *System) broadcast(from ids.ProcID, tag Tag, payload any) {
	now := s.Now()
	if s.pattern.Crashed(from, now) {
		return
	}
	m := Message{From: from, Tag: tag, Payload: payload, SentAt: now}
	n := s.cfg.N
	if s.holdUntil == nil {
		// Grow once, then write the copies by index: the per-copy cost is
		// one message store, with no per-append bounds/grow bookkeeping.
		base := len(s.eligible)
		s.eligible = growEligible(s.eligible, n)
		dst := s.eligible[base : base+n]
		for q := range dst {
			m.To = ids.ProcID(q + 1)
			dst[q] = m
		}
	} else {
		for q := 1; q <= n; q++ {
			m.To = ids.ProcID(q)
			s.arrivals = append(s.arrivals, envelope{msg: m, notBefore: s.holdFor(from, m.To, now)})
		}
	}
	s.inflight.Add(int64(n))
	s.metrics.countSentN(tag, int64(n))
}

// multicast fans one payload out to every member of dests (ascending),
// with the same single-stamp fast path as broadcast.
func (s *System) multicast(from ids.ProcID, dests ids.Set, tag Tag, payload any) {
	count := dests.CountIn(s.cfg.N)
	if count == 0 {
		return
	}
	now := s.Now()
	if s.pattern.Crashed(from, now) {
		return
	}
	m := Message{From: from, Tag: tag, Payload: payload, SentAt: now}
	if s.holdUntil == nil {
		dests.ForEachIn(s.cfg.N, func(q ids.ProcID) bool {
			m.To = q
			s.eligible = append(s.eligible, m)
			return true
		})
	} else {
		dests.ForEachIn(s.cfg.N, func(q ids.ProcID) bool {
			m.To = q
			s.arrivals = append(s.arrivals, envelope{msg: m, notBefore: s.holdFor(from, q, now)})
			return true
		})
	}
	s.inflight.Add(int64(count))
	s.metrics.countSentN(tag, int64(count))
}

// growEligible extends e by n elements, reallocating like append would.
// The caller must overwrite all n new elements: recycled capacity is
// exposed as-is.
func growEligible(e []Message, n int) []Message {
	if len(e)+n > cap(e) {
		grown := make([]Message, len(e), max(2*cap(e), len(e)+n))
		copy(grown, e)
		e = grown
	}
	return e[:len(e)+n]
}

// growInbox is growEligible for inboxes: it extends b by n elements,
// reallocating like append would, and the caller must overwrite all n
// new elements.
func growInbox(b []Message, n int) []Message {
	if len(b)+n > cap(b) {
		grown := make([]Message, len(b), max(2*cap(b), len(b)+n))
		copy(grown, b)
		b = grown
	}
	return b[:len(b)+n]
}

// holdFor computes the release time for a (from, to) copy accepted at
// now: the static hold matrix entry, raised by any active hold window.
func (s *System) holdFor(from, to ids.ProcID, now Time) Time {
	idx := int(from)*(s.cfg.N+1) + int(to)
	nb := s.holdUntil[idx]
	if s.holdWins != nil {
		for _, w := range s.holdWins[idx] {
			if w.since <= now && now < w.until && w.until > nb {
				nb = w.until
			}
		}
	}
	return nb
}

// InFlight returns the number of undelivered messages (diagnostics).
// Safe from any goroutine.
func (s *System) InFlight() int {
	return int(s.inflight.Load())
}
