// Package sim implements the asynchronous message-passing system model
// AS[n,t] of the paper: n processes that communicate over reliable but
// arbitrarily slow channels, of which at most t may crash.
//
// Processes run as goroutines. A central scheduler (the "adversary")
// advances a virtual clock one tick at a time; on each tick it delivers
// one in-flight message chosen uniformly at random (seeded), applies
// scheduled crashes, and wakes every process so that waits re-evaluate
// their conditions. Arbitrary-but-finite message delays and arbitrary
// crash patterns — exactly the adversary the asynchronous model
// quantifies over — are thus sampled reproducibly.
//
// Crash semantics: once a process is crashed, its next interaction with
// the environment unwinds its goroutine (an internal sentinel panic that
// never escapes the package). A crashed process therefore takes no
// further observable step, as in the model.
package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fdgrid/internal/ids"
)

// Time is the virtual clock, counted in scheduler ticks.
type Time int64

// Never is a crash time meaning "the process is correct".
const Never Time = 1<<62 - 1

// Hold delays matching messages: a message sent from a process in From to
// a process in To is not deliverable before Until. Holds are the scripted
// half of the adversary, used by the irreducibility experiments
// (e.g. "delay every message from E between τ0 and τ1").
type Hold struct {
	From  ids.Set
	To    ids.Set
	Until Time
}

// Config parameterizes a run of the system.
type Config struct {
	// N is the number of processes (ids 1..N); T the resilience bound.
	N, T int
	// Seed drives the scheduler's random choices.
	Seed int64
	// MaxSteps bounds the run; the run stops when the clock reaches it.
	MaxSteps Time
	// Crashes maps a process to its crash time. Absent means correct.
	// A crash time of 0 is an initial crash.
	Crashes map[ids.ProcID]Time
	// GST is the global stabilization time: eventual failure detector
	// classes may misbehave before it and must behave after it.
	GST Time
	// Holds optionally script message delays (see Hold).
	Holds []Hold
	// Bandwidth is how many messages the scheduler delivers per tick
	// (default 1). Higher values speed up message-heavy transformations
	// without changing the adversary's power: delivery order stays
	// random and delays stay arbitrary.
	Bandwidth int
}

func (c Config) validate() error {
	if c.N < 1 || c.N > ids.MaxProcs {
		return fmt.Errorf("sim: N=%d out of range 1..%d", c.N, ids.MaxProcs)
	}
	if c.T < 0 || c.T >= c.N {
		return fmt.Errorf("sim: T=%d out of range 0..%d", c.T, c.N-1)
	}
	if len(c.Crashes) > c.T {
		return fmt.Errorf("sim: %d crashes scheduled but T=%d", len(c.Crashes), c.T)
	}
	for p, at := range c.Crashes {
		if p < 1 || int(p) > c.N {
			return fmt.Errorf("sim: crash scheduled for unknown process %d", p)
		}
		if at < 0 {
			return fmt.Errorf("sim: negative crash time for %v", p)
		}
	}
	if c.MaxSteps <= 0 {
		return fmt.Errorf("sim: MaxSteps=%d must be positive", c.MaxSteps)
	}
	if c.Bandwidth < 0 {
		return fmt.Errorf("sim: Bandwidth=%d must be non-negative", c.Bandwidth)
	}
	return nil
}

func (c Config) bandwidth() int {
	if c.Bandwidth == 0 {
		return 1
	}
	return c.Bandwidth
}

// Pattern is the failure pattern of a run: which processes crash and when.
// It is derived from Config.Crashes and is the ground truth failure
// detector oracles consult.
type Pattern struct {
	n       int
	crashAt []Time // index 1..n; Never for correct processes
}

func newPattern(cfg Config) *Pattern {
	fp := &Pattern{n: cfg.N, crashAt: make([]Time, cfg.N+1)}
	for i := range fp.crashAt {
		fp.crashAt[i] = Never
	}
	for p, at := range cfg.Crashes {
		fp.crashAt[p] = at
	}
	return fp
}

// N returns the number of processes.
func (fp *Pattern) N() int { return fp.n }

// CrashTime returns when p crashes (Never if correct).
func (fp *Pattern) CrashTime(p ids.ProcID) Time { return fp.crashAt[p] }

// Crashed reports whether p has crashed at or before time at.
func (fp *Pattern) Crashed(p ids.ProcID, at Time) bool { return fp.crashAt[p] <= at }

// AllCrashed reports whether every process of s has crashed by time at.
// The empty set is vacuously all-crashed.
func (fp *Pattern) AllCrashed(s ids.Set, at Time) bool {
	all := true
	s.ForEach(func(p ids.ProcID) bool {
		if !fp.Crashed(p, at) {
			all = false
			return false
		}
		return true
	})
	return all
}

// Correct returns the set of processes that never crash in the run.
func (fp *Pattern) Correct() ids.Set {
	var s ids.Set
	for p := 1; p <= fp.n; p++ {
		if fp.crashAt[p] == Never {
			s = s.Add(ids.ProcID(p))
		}
	}
	return s
}

// Faulty returns the complement of Correct within {1..n}.
func (fp *Pattern) Faulty() ids.Set {
	return ids.FullSet(fp.n).Minus(fp.Correct())
}

// System is one simulated asynchronous system instance. Create it with
// New, register process mains with Spawn, then call Run exactly once.
type System struct {
	cfg     Config
	pattern *Pattern
	rng     *rand.Rand
	now     atomic.Int64
	procs   []*Proc // index 1..N
	metrics *Metrics

	mu      sync.Mutex
	pending []envelope

	stopFlag atomic.Bool
	wg       sync.WaitGroup
	ran      bool
	onTick   []func(Time)

	panicMu  sync.Mutex
	panicVal any
	panicked bool
}

// recordPanic stores the first protocol panic; Run re-raises it on the
// caller's goroutine once every process goroutine has been joined.
func (s *System) recordPanic(v any) {
	s.panicMu.Lock()
	if !s.panicked {
		s.panicked = true
		s.panicVal = v
	}
	s.panicMu.Unlock()
}

func (s *System) hasPanicked() bool {
	s.panicMu.Lock()
	defer s.panicMu.Unlock()
	return s.panicked
}

// OnTick registers fn to run on the scheduler goroutine once per tick,
// after deliveries and wake-ups. Trace recorders use it to sample failure
// detector outputs. Must be called before Run.
func (s *System) OnTick(fn func(Time)) {
	if s.ran {
		panic("sim: OnTick after Run")
	}
	s.onTick = append(s.onTick, fn)
}

// New builds a system from cfg. It returns an error if cfg is invalid.
func New(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:     cfg,
		pattern: newPattern(cfg),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		metrics: newMetrics(),
	}
	s.procs = make([]*Proc, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		s.procs[i] = newProc(ids.ProcID(i), s)
	}
	return s, nil
}

// MustNew is New for configurations known statically valid (tests, benches).
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the run configuration.
func (s *System) Config() Config { return s.cfg }

// Pattern returns the run's failure pattern (oracle ground truth).
func (s *System) Pattern() *Pattern { return s.pattern }

// Now returns the current virtual time.
func (s *System) Now() Time { return Time(s.now.Load()) }

// GST returns the configured global stabilization time.
func (s *System) GST() Time { return s.cfg.GST }

// Metrics returns the live metrics collector.
func (s *System) Metrics() *Metrics { return s.metrics }

// Env returns the environment handle of process p (for oracle adapters
// and tests; protocol mains receive theirs via Spawn).
func (s *System) Env(p ids.ProcID) *Env { return &Env{p: s.procs[p]} }

// Spawn registers main as the protocol code of process p. It must be
// called before Run. The main runs on its own goroutine; it is unwound
// when p crashes or the run stops, and may also return on its own.
func (s *System) Spawn(p ids.ProcID, main func(*Env)) {
	if p < 1 || int(p) > s.cfg.N {
		panic(fmt.Sprintf("sim: Spawn(%d) unknown process", p))
	}
	if s.procs[p].main != nil {
		panic(fmt.Sprintf("sim: Spawn(%d) called twice", p))
	}
	s.procs[p].main = main
}

// SpawnAll registers the same main on every process.
func (s *System) SpawnAll(main func(*Env)) {
	for i := 1; i <= s.cfg.N; i++ {
		s.Spawn(ids.ProcID(i), main)
	}
}

// Report summarizes a finished run.
type Report struct {
	// Steps is the virtual time at which the run ended.
	Steps Time
	// StoppedEarly is true if the stop predicate fired before MaxSteps.
	StoppedEarly bool
	// Messages is a snapshot of the message metrics.
	Messages MetricsSnapshot
}

// Run executes the system: it starts every registered main, then drives
// the scheduler until stop() returns true or MaxSteps elapse, and finally
// tears everything down, joining all process goroutines. stop may be nil
// (run to MaxSteps) and must be safe to call from the scheduler goroutine.
func (s *System) Run(stop func() bool) Report {
	if s.ran {
		panic("sim: Run called twice")
	}
	s.ran = true

	for i := 1; i <= s.cfg.N; i++ {
		p := s.procs[i]
		if s.pattern.CrashTime(p.id) <= 0 {
			p.kill() // initial crash: never takes a step
			continue
		}
		if p.main == nil {
			continue
		}
		s.wg.Add(1)
		go func(p *Proc) {
			defer s.wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(procKilled); ok {
						return
					}
					// A protocol bug: remember it and re-raise from Run.
					s.recordPanic(r)
				}
			}()
			p.main(&Env{p: p})
		}(p)
	}

	stoppedEarly := s.schedule(stop)

	// Tear down: mark everything stopped so blocked processes unwind,
	// then join them.
	s.stopFlag.Store(true)
	for i := 1; i <= s.cfg.N; i++ {
		s.procs[i].kill()
	}
	s.wg.Wait()

	s.panicMu.Lock()
	panicked, panicVal := s.panicked, s.panicVal
	s.panicMu.Unlock()
	if panicked {
		panic(panicVal)
	}

	return Report{
		Steps:        s.Now(),
		StoppedEarly: stoppedEarly,
		Messages:     s.metrics.Snapshot(),
	}
}

// schedule is the adversary loop: one tick per iteration.
func (s *System) schedule(stop func() bool) bool {
	idle := 0
	for {
		now := s.Now()
		if now >= s.cfg.MaxSteps {
			return false
		}
		if stop != nil && stop() {
			return true
		}
		if s.hasPanicked() {
			return false
		}

		// Apply crashes scheduled at this tick.
		for i := 1; i <= s.cfg.N; i++ {
			p := s.procs[i]
			if s.pattern.CrashTime(p.id) == now {
				p.kill()
			}
		}

		delivered := false
		for i := 0; i < s.cfg.bandwidth(); i++ {
			if !s.deliverOne(now) {
				break
			}
			delivered = true
		}

		// Samplers observe the system at time `now` (the clock has not
		// advanced yet, so oracles read the same instant).
		for _, fn := range s.onTick {
			fn(now)
		}

		s.now.Add(1)
		// Wake every process: time moved, oracles may have changed.
		for i := 1; i <= s.cfg.N; i++ {
			s.procs[i].wake()
		}

		if delivered {
			idle = 0
			continue
		}
		idle++
		runtime.Gosched()
		if idle%4096 == 0 {
			// The network is quiet and processes are not producing
			// messages; yield for real so compute-bound mains progress.
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// deliverOne picks one eligible in-flight message at random and delivers
// it. It reports whether a delivery happened.
func (s *System) deliverOne(now Time) bool {
	s.mu.Lock()
	eligible := eligibleIndices(s.pending, now)
	if len(eligible) == 0 {
		s.mu.Unlock()
		return false
	}
	k := eligible[s.rng.Intn(len(eligible))]
	env := s.pending[k]
	s.pending[k] = s.pending[len(s.pending)-1]
	s.pending = s.pending[:len(s.pending)-1]
	s.mu.Unlock()

	dst := s.procs[env.msg.To]
	if s.pattern.Crashed(env.msg.To, now) {
		s.metrics.dropped(env.msg.Tag)
		return true
	}
	m := env.msg
	m.DeliveredAt = now
	dst.deliver(m)
	s.metrics.delivered(m.Tag)
	return true
}

func eligibleIndices(pending []envelope, now Time) []int {
	out := make([]int, 0, len(pending))
	for i, e := range pending {
		if e.notBefore <= now {
			out = append(out, i)
		}
	}
	return out
}

// send enqueues a message into the network. Called from process goroutines.
// SentAt is stamped at acceptance time under the network lock, and sends
// from an already-crashed process are refused, so every accepted message
// satisfies SentAt < crash time of its sender.
func (s *System) send(m Message) {
	nb := Time(0)
	for _, h := range s.cfg.Holds {
		if h.From.Contains(m.From) && h.To.Contains(m.To) && h.Until > nb {
			nb = h.Until
		}
	}
	s.mu.Lock()
	now := s.Now()
	if s.pattern.Crashed(m.From, now) {
		s.mu.Unlock()
		return
	}
	m.SentAt = now
	s.pending = append(s.pending, envelope{msg: m, notBefore: nb})
	s.mu.Unlock()
	s.metrics.sent(m.Tag)
}

// InFlight returns the number of undelivered messages (diagnostics).
func (s *System) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}
