package sim

import (
	"fmt"

	"fdgrid/internal/ids"
	"fdgrid/internal/trace"
)

// Message is a point-to-point message. Payloads must be immutable values:
// they are shared between sender and receiver without copying.
type Message struct {
	From, To    ids.ProcID
	Tag         Tag
	Payload     any
	SentAt      Time
	DeliveredAt Time
}

type envelope struct {
	msg       Message
	notBefore Time // scripted holds: earliest deliverable tick
}

// procKilled is the sentinel used to unwind a crashed or stopped process
// goroutine. It never escapes the package: System.Run recovers it.
type procKilled struct{}

// Proc is the runtime state of one simulated process.
//
// Ownership: execution is strictly sequential — at any instant exactly
// one goroutine holds the run token (the scheduler, or one process
// goroutine). Every field below is accessed only by the token holder:
// the process while it runs, the scheduler while the process is parked
// or exited. The resume/yield channel handoff orders all of it, so none
// of these fields need locks or atomics (the race detector checks this
// claim on every -race run).
type Proc struct {
	id   ids.ProcID
	sys  *System
	main func(*Env)

	// resume carries the run token scheduler → process: receiving on it
	// is the only way this goroutine starts running, and sending on
	// sys.yield is the only way it stops. One wake is exactly two
	// goroutine switches.
	resume chan struct{}

	inbox    []Message // appended by the scheduler (delivery), drained by the process
	nextRead int
	dead     bool // set by the scheduler; the process unwinds at its next Env call
	exited   bool // set by the process goroutine as it returns
}

func newProc(id ids.ProcID, sys *System) *Proc {
	return &Proc{id: id, sys: sys, resume: make(chan struct{})}
}

// Env is the interface protocol code uses to interact with the system.
// All methods must be called from the owning process's goroutine (the
// main passed to Spawn); they unwind the goroutine once the process has
// crashed or the run has stopped.
type Env struct {
	p *Proc
}

// ID returns the identity of this process.
func (e *Env) ID() ids.ProcID { return e.p.id }

// N returns the number of processes in the system.
func (e *Env) N() int { return e.p.sys.cfg.N }

// T returns the resilience bound t.
func (e *Env) T() int { return e.p.sys.cfg.T }

// All returns the set {1..n} of all process identities (paper's Π).
func (e *Env) All() ids.Set { return ids.FullSet(e.N()) }

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.p.sys.Now() }

// Trace returns the run's decision-trace recorder, nil when the run is
// untraced. Recorder methods are nil-safe and level-gated, so protocol
// code records unconditionally:
//
//	env.Trace().Decide(int64(env.Now()), int(env.ID()), r, v)
func (e *Env) Trace() *trace.Recorder { return e.p.sys.rec }

// checkAlive unwinds the goroutine if the process crashed or the run
// stopped (protocol code that swallowed a procKilled panic re-unwinds
// at its next Env call).
func (e *Env) checkAlive() {
	if e.p.dead {
		panic(procKilled{})
	}
}

// Send transmits a message to process "to" over the reliable channel.
// SentAt is stamped by the network at acceptance time (System.send owns
// the stamp); sends from an already-crashed process are refused there.
func (e *Env) Send(to ids.ProcID, tag Tag, payload any) {
	e.checkAlive()
	if to < 1 || int(to) > e.N() {
		panic(fmt.Sprintf("sim: Send to unknown process %d", to))
	}
	e.p.sys.send(Message{
		From:    e.p.id,
		To:      to,
		Tag:     tag,
		Payload: payload,
	})
}

// Broadcast sends the message to every process, itself included
// (the paper's Broadcast(m) macro). It is not reliable: a process that
// crashes mid-broadcast in the model may reach only a subset; here the
// whole call either happens before the crash tick or unwinds, which is
// one of the legal behaviours.
func (e *Env) Broadcast(tag Tag, payload any) {
	e.checkAlive()
	e.p.sys.broadcast(e.p.id, tag, payload)
}

// Multicast sends the message to every member of dests (ascending
// identity order, the same order a Send loop over dests.Members would
// use), sharing Broadcast's single-stamp fan-out fast path. Members
// above N are rejected like Send's unknown-process check.
func (e *Env) Multicast(dests ids.Set, tag Tag, payload any) {
	e.checkAlive()
	if int(dests.Max()) > e.N() {
		panic(fmt.Sprintf("sim: Multicast to unknown process %d", dests.Max()))
	}
	e.p.sys.multicast(e.p.id, dests, tag, payload)
}

// Step blocks until something happens, then returns. If a new message is
// available it returns (msg, true); if the process was merely woken by a
// clock tick (time advanced, oracle outputs may have changed) it returns
// (Message{}, false). Protocol event loops call Step repeatedly and
// re-evaluate their wait conditions after each return.
//
// Step is StepUntil with the next tick as the wake condition: a process
// using it is woken on every tick, which is always correct but prevents
// the scheduler from skipping idle stretches of virtual time.
func (e *Env) Step() (Message, bool) {
	return e.StepUntil(0)
}

// StepUntil is Step with a declared wake condition: it blocks until a new
// message is available (returning it with true) or the virtual clock has
// reached wake (returning (Message{}, false)). A process whose waits are
// purely message-driven passes Never; one pacing itself ("act again at
// time τ") passes τ. The declared deadline is what lets the scheduler
// wake only the processes that need the current tick — and skip ticks
// nobody needs at all.
//
// A wake time at or before the current tick behaves like Step: the call
// always blocks until at least the next tick, so loops around StepUntil
// cannot spin without yielding to the scheduler.
func (e *Env) StepUntil(wake Time) (Message, bool) {
	p := e.p
	s := p.sys
	if now := s.Now(); wake <= now {
		wake = now + 1
	}
	for {
		if p.dead {
			panic(procKilled{})
		}
		if p.nextRead < len(p.inbox) {
			m := p.inbox[p.nextRead]
			p.nextRead++
			return m, true
		}
		if p.nextRead > 0 {
			// Inbox fully drained: zero the consumed prefix in one bulk
			// clear (cheaper than a per-message wipe at read time, same
			// payload-retention hygiene) and reset, so long runs reuse
			// the same backing array instead of growing it forever.
			clear(p.inbox)
			p.inbox = p.inbox[:0]
			p.nextRead = 0
		}
		if s.Now() >= wake {
			return Message{}, false
		}
		// Park: publish the wake condition, then pass the run token on —
		// directly to the next due process, or through the tick phases
		// when nothing else is due. If this process turns out to be the
		// next one due, dispatch says so and the loop continues without
		// any goroutine switch at all. The dispatcher clears the parked
		// bit before resuming a process.
		s.parkedSet.set(p.id)
		s.deadlines[p.id] = wake
		if s.running {
			if s.dispatch(p) {
				continue
			}
		} else {
			s.yield <- struct{}{} // launch phase: token back to Run
		}
		<-p.resume
	}
}

// WaitUntil runs the event loop until pred() is true: each delivered
// message is passed to onMsg (which may be nil), and pred is re-evaluated
// after every message and every clock tick. pred is evaluated first, so a
// condition that already holds returns immediately.
func (e *Env) WaitUntil(pred func() bool, onMsg func(Message)) {
	for !pred() {
		m, ok := e.Step()
		if ok && onMsg != nil {
			onMsg(m)
		}
	}
}

// Crashed reports whether this process has been crashed or stopped.
// Like all run state it is owned by the run token: call it from
// scheduler-side code (OnTick/OnAdvance samplers, stop predicates) or
// after Run returns — protocol code never observes true, its next Env
// call unwinds instead.
func (e *Env) Crashed() bool {
	return e.p.dead
}
