package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fdgrid/internal/ids"
)

// Message is a point-to-point message. Payloads must be immutable values:
// they are shared between sender and receiver without copying.
type Message struct {
	From, To    ids.ProcID
	Tag         string
	Payload     any
	SentAt      Time
	DeliveredAt Time
}

type envelope struct {
	msg       Message
	notBefore Time // scripted holds: earliest deliverable tick
}

// procKilled is the sentinel used to unwind a crashed or stopped process
// goroutine. It never escapes the package: System.Run recovers it.
type procKilled struct{}

// Proc is the runtime state of one simulated process.
type Proc struct {
	id   ids.ProcID
	sys  *System
	main func(*Env)

	mu       sync.Mutex
	cond     *sync.Cond
	inbox    []Message
	nextRead int
	dead     bool
	exited   bool
	parked   bool // blocked in StepUntil, waiting on the scheduler

	// deadFlag mirrors dead for lock-free reads on the hot Send path.
	deadFlag atomic.Bool
}

func newProc(id ids.ProcID, sys *System) *Proc {
	p := &Proc{id: id, sys: sys}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// enqueue appends a delivered message to the inbox. The scheduler calls
// it during the delivery phase, while the process is parked; the process
// is woken afterwards by the wake phase, so no broadcast happens here.
func (p *Proc) enqueue(m Message) {
	p.mu.Lock()
	p.inbox = append(p.inbox, m)
	p.mu.Unlock()
}

// kill marks the process dead and wakes it so a parked goroutine unwinds.
// Used by Run's teardown; in-run crashes go through System.killAt, which
// also maintains the quiescence accounting.
func (p *Proc) kill() {
	p.mu.Lock()
	p.dead = true
	p.deadFlag.Store(true)
	p.parked = false
	p.mu.Unlock()
	p.cond.Broadcast()
}

// markDead flags an initially-crashed process that never gets a goroutine.
func (p *Proc) markDead() {
	p.mu.Lock()
	p.dead = true
	p.deadFlag.Store(true)
	p.mu.Unlock()
}

// Env is the interface protocol code uses to interact with the system.
// All methods must be called from the owning process's goroutine (the
// main passed to Spawn); they unwind the goroutine once the process has
// crashed or the run has stopped.
type Env struct {
	p *Proc
}

// ID returns the identity of this process.
func (e *Env) ID() ids.ProcID { return e.p.id }

// N returns the number of processes in the system.
func (e *Env) N() int { return e.p.sys.cfg.N }

// T returns the resilience bound t.
func (e *Env) T() int { return e.p.sys.cfg.T }

// All returns the set {1..n} of all process identities (paper's Π).
func (e *Env) All() ids.Set { return ids.FullSet(e.N()) }

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.p.sys.Now() }

// checkAlive unwinds the goroutine if the process crashed or the run
// stopped.
func (e *Env) checkAlive() {
	if e.p.deadFlag.Load() {
		panic(procKilled{})
	}
}

// Send transmits a message to process "to" over the reliable channel.
func (e *Env) Send(to ids.ProcID, tag string, payload any) {
	e.checkAlive()
	if to < 1 || int(to) > e.N() {
		panic(fmt.Sprintf("sim: Send to unknown process %d", to))
	}
	e.p.sys.send(Message{
		From:    e.p.id,
		To:      to,
		Tag:     tag,
		Payload: payload,
		SentAt:  e.Now(),
	})
}

// Broadcast sends the message to every process, itself included
// (the paper's Broadcast(m) macro). It is not reliable: a process that
// crashes mid-broadcast in the model may reach only a subset; here the
// whole call either happens before the crash tick or unwinds, which is
// one of the legal behaviours.
func (e *Env) Broadcast(tag string, payload any) {
	for q := 1; q <= e.N(); q++ {
		e.Send(ids.ProcID(q), tag, payload)
	}
}

// Step blocks until something happens, then returns. If a new message is
// available it returns (msg, true); if the process was merely woken by a
// clock tick (time advanced, oracle outputs may have changed) it returns
// (Message{}, false). Protocol event loops call Step repeatedly and
// re-evaluate their wait conditions after each return.
//
// Step is StepUntil with the next tick as the wake condition: a process
// using it is woken on every tick, which is always correct but prevents
// the scheduler from skipping idle stretches of virtual time.
func (e *Env) Step() (Message, bool) {
	return e.StepUntil(0)
}

// StepUntil is Step with a declared wake condition: it blocks until a new
// message is available (returning it with true) or the virtual clock has
// reached wake (returning (Message{}, false)). A process whose waits are
// purely message-driven passes Never; one pacing itself ("act again at
// time τ") passes τ. The declared deadline is what lets the scheduler
// wake only the processes that need the current tick — and skip ticks
// nobody needs at all.
//
// A wake time at or before the current tick behaves like Step: the call
// always blocks until at least the next tick, so loops around StepUntil
// cannot spin without yielding to the scheduler.
func (e *Env) StepUntil(wake Time) (Message, bool) {
	p := e.p
	s := p.sys
	if now := s.Now(); wake <= now {
		wake = now + 1
	}
	p.mu.Lock()
	for {
		if p.dead {
			p.mu.Unlock()
			panic(procKilled{})
		}
		if p.nextRead < len(p.inbox) {
			m := p.inbox[p.nextRead]
			p.inbox[p.nextRead] = Message{}
			p.nextRead++
			p.mu.Unlock()
			return m, true
		}
		if p.nextRead > 0 {
			// Inbox fully drained: reset it so long runs reuse the same
			// backing array instead of growing it forever.
			p.inbox = p.inbox[:0]
			p.nextRead = 0
		}
		if s.Now() >= wake {
			p.mu.Unlock()
			return Message{}, false
		}
		// Park: declare the wake condition and hand control back to the
		// scheduler. The scheduler clears parked before broadcasting.
		p.parked = true
		s.qmu.Lock()
		s.parkedSet |= 1 << uint(p.id-1)
		s.deadlines[p.id] = wake
		s.active--
		if s.active == 0 {
			s.qcond.Broadcast()
		}
		s.qmu.Unlock()
		for p.parked && !p.dead {
			p.cond.Wait()
		}
	}
}

// WaitUntil runs the event loop until pred() is true: each delivered
// message is passed to onMsg (which may be nil), and pred is re-evaluated
// after every message and every clock tick. pred is evaluated first, so a
// condition that already holds returns immediately.
func (e *Env) WaitUntil(pred func() bool, onMsg func(Message)) {
	for !pred() {
		m, ok := e.Step()
		if ok && onMsg != nil {
			onMsg(m)
		}
	}
}

// Crashed reports whether this process has been crashed or stopped; it is
// intended for tests. Protocol code never observes true: its next Env
// call unwinds instead.
func (e *Env) Crashed() bool {
	e.p.mu.Lock()
	defer e.p.mu.Unlock()
	return e.p.dead
}
