package sim

import (
	"sync/atomic"
	"testing"

	"fdgrid/internal/ids"
)

// TestBandwidthDeliversFaster: with Bandwidth k, a burst of k messages
// can be drained in one tick; with Bandwidth 1 it takes k ticks.
func TestBandwidthDeliversFaster(t *testing.T) {
	drainTime := func(bandwidth int) Time {
		s := MustNew(Config{N: 2, T: 0, Seed: 1, MaxSteps: 10_000, Bandwidth: bandwidth})
		const burst = 10
		var done atomic.Int64
		done.Store(-1)
		s.Spawn(1, func(e *Env) {
			for i := 0; i < burst; i++ {
				e.Send(2, Intern("burst"), i)
			}
			for {
				e.Step()
			}
		})
		s.Spawn(2, func(e *Env) {
			seen := 0
			for {
				if _, ok := e.Step(); ok {
					seen++
					if seen == burst {
						done.Store(int64(e.Now()))
					}
				}
			}
		})
		s.Run(func() bool { return done.Load() >= 0 })
		return Time(done.Load())
	}
	slow := drainTime(1)
	fast := drainTime(10)
	if fast >= slow {
		t.Errorf("bandwidth 10 drained at %d, bandwidth 1 at %d; want faster", fast, slow)
	}
}

// TestMultipleHoldsMaxWins: overlapping holds delay to the latest Until.
func TestMultipleHoldsMaxWins(t *testing.T) {
	s := MustNew(Config{
		N: 2, T: 0, Seed: 2, MaxSteps: 10_000,
		Holds: []Hold{
			{From: ids.NewSet(1), To: ids.NewSet(2), Until: 300},
			{From: ids.NewSet(1), To: ids.FullSet(2), Until: 900},
		},
	})
	var deliveredAt atomic.Int64
	deliveredAt.Store(-1)
	s.Spawn(1, func(e *Env) {
		e.Send(2, Intern("held"), nil)
		for {
			e.Step()
		}
	})
	s.Spawn(2, func(e *Env) {
		for {
			if m, ok := e.Step(); ok && m.Tag == Intern("held") {
				deliveredAt.Store(int64(m.DeliveredAt))
			}
		}
	})
	s.Run(func() bool { return deliveredAt.Load() >= 0 })
	if got := deliveredAt.Load(); got < 900 {
		t.Errorf("delivered at %d, want ≥ 900 (max of overlapping holds)", got)
	}
}

// TestOnTickAfterRunPanics.
func TestOnTickAfterRunPanics(t *testing.T) {
	s := MustNew(Config{N: 1, T: 0, Seed: 3, MaxSteps: 10})
	s.Run(nil)
	defer func() {
		if recover() == nil {
			t.Error("OnTick after Run did not panic")
		}
	}()
	s.OnTick(func(Time) {})
}

// TestProcessPanicSurfacesFromRun: a protocol bug inside a process
// goroutine is re-raised by Run after all goroutines are joined.
func TestProcessPanicSurfacesFromRun(t *testing.T) {
	s := MustNew(Config{N: 2, T: 0, Seed: 4, MaxSteps: 100_000})
	s.Spawn(1, func(e *Env) {
		e.Step() // wait one event, then blow up
		panic("protocol bug")
	})
	s.Spawn(2, func(e *Env) {
		e.Send(1, Intern("poke"), nil)
		for {
			e.Step()
		}
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not re-raise the protocol panic")
		}
		if r != "protocol bug" {
			t.Fatalf("re-raised %v", r)
		}
	}()
	s.Run(nil)
}

// TestNegativeBandwidthRejected.
func TestNegativeBandwidthRejected(t *testing.T) {
	if _, err := New(Config{N: 2, T: 0, MaxSteps: 10, Bandwidth: -1}); err == nil {
		t.Error("negative bandwidth accepted")
	}
}

// TestInFlightCount: counts pending messages.
func TestInFlightCount(t *testing.T) {
	s := MustNew(Config{
		N: 2, T: 0, Seed: 5, MaxSteps: 5_000,
		Holds: []Hold{{From: ids.NewSet(1), To: ids.NewSet(2), Until: 4_000}},
	})
	var sent atomic.Bool
	s.Spawn(1, func(e *Env) {
		e.Send(2, Intern("held"), nil)
		sent.Store(true)
		for {
			e.Step()
		}
	})
	var observed atomic.Int64
	observed.Store(-1)
	s.OnTick(func(now Time) {
		if now == 1_000 && sent.Load() {
			observed.Store(int64(s.InFlight()))
		}
	})
	s.Run(nil)
	if got := observed.Load(); got != 1 {
		t.Errorf("InFlight at tick 1000 = %d, want 1", got)
	}
}

// TestEnvCrashedVisibility: Env.Crashed is observable from tests.
func TestEnvCrashedVisibility(t *testing.T) {
	s := MustNew(Config{N: 2, T: 1, Seed: 6, MaxSteps: 2_000,
		Crashes: map[ids.ProcID]Time{2: 100}})
	var sawCrashed atomic.Bool
	env := s.Env(2)
	s.OnTick(func(now Time) {
		if now > 150 && env.Crashed() {
			sawCrashed.Store(true)
		}
	})
	s.Run(nil)
	if !sawCrashed.Load() {
		t.Error("Env.Crashed never became true")
	}
}

// TestSamplerPanicSurfaces: a panic in an OnTick sampler — which runs
// on whatever goroutine holds the run token, possibly a process that
// was parking — is re-raised from Run after a clean teardown rather
// than deadlocking it (the unwinding process must clear its park bit).
func TestSamplerPanicSurfaces(t *testing.T) {
	s := MustNew(Config{N: 2, T: 0, Seed: 1, MaxSteps: 1_000})
	s.OnTick(func(now Time) {
		if now == 5 {
			panic("sampler bug")
		}
	})
	s.SpawnAll(func(e *Env) {
		for {
			e.Step()
		}
	})
	defer func() {
		if r := recover(); r != "sampler bug" {
			t.Fatalf("recovered %v, want the sampler panic", r)
		}
	}()
	s.Run(nil)
	t.Fatal("Run returned without panicking")
}
