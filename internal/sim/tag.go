package sim

import (
	"fmt"
	"sync"
)

// Tag identifies a message kind. Tags are interned strings: the first
// Intern of a name allocates a small integer id and every later Intern
// of the same name returns the same id, so the send path indexes plain
// per-tag counter slices instead of hashing strings. The external
// metrics format (MetricsSnapshot) stays string-keyed; Tag.String
// recovers the name.
//
// The zero Tag is "no tag" — the Tag of a zero Message, as returned by
// Step on a pure clock tick. Intern never returns it.
type Tag int32

// The interner is process-global so protocol packages intern their tags
// once, in package-level var declarations, and share them across every
// System — a sweep runs many systems concurrently, and a tag like
// "kset.phase1" means the same thing in all of them.
var tagTable = struct {
	//detlint:allow runtoken -- the interner is the one deliberately global, lock-guarded table; append-only, shared by concurrent runs
	mu    sync.RWMutex
	ids   map[string]Tag
	names []string // index Tag; names[0] is the zero Tag's ""
}{ids: make(map[string]Tag), names: []string{""}}

// Intern returns the Tag for name, allocating it on first use. It is
// idempotent and safe for concurrent use. Intended for package-level
// var declarations or protocol setup — not per send, although even
// that costs only a read-locked map hit once the name exists.
func Intern(name string) Tag {
	tagTable.mu.RLock()
	t, ok := tagTable.ids[name]
	tagTable.mu.RUnlock()
	if ok {
		return t
	}
	tagTable.mu.Lock()
	defer tagTable.mu.Unlock()
	if t, ok = tagTable.ids[name]; ok {
		return t
	}
	t = Tag(len(tagTable.names))
	tagTable.names = append(tagTable.names, name)
	tagTable.ids[name] = t
	return t
}

// String returns the interned name ("" for the zero Tag).
func (t Tag) String() string {
	tagTable.mu.RLock()
	defer tagTable.mu.RUnlock()
	if t < 0 || int(t) >= len(tagTable.names) {
		return fmt.Sprintf("sim.Tag(%d)", int32(t))
	}
	return tagTable.names[t]
}

// internedTags returns the current interner size — a sizing hint for
// per-run counter slices (tags interned later grow them on demand).
func internedTags() int {
	tagTable.mu.RLock()
	defer tagTable.mu.RUnlock()
	return len(tagTable.names)
}
