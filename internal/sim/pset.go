package sim

import (
	"math/bits"

	"fdgrid/internal/ids"
)

// pset is the scheduler's process bit mask (process id p occupies bit
// (p−1)&63 of word (p−1)>>6), sized to ids.MaxProcs so the scheduler
// scales with the identity space. It is run-token state like everything
// else in the scheduler: plain words, no atomics.
//
// The methods mirror the handful of operations the token protocol
// needs; the per-word loops compile to a few instructions and keep the
// tick path free of allocations whatever n is.
type pset [ids.SetWords]uint64

// set marks process id.
func (m *pset) set(id ids.ProcID) { m[(id-1)>>6] |= 1 << (uint(id-1) & 63) }

// clear unmarks process id.
func (m *pset) clear(id ids.ProcID) { m[(id-1)>>6] &^= 1 << (uint(id-1) & 63) }

// has reports whether process id is marked.
func (m *pset) has(id ids.ProcID) bool { return m[(id-1)>>6]&(1<<(uint(id-1)&63)) != 0 }

// first returns the smallest marked id, or ids.None when the mask is
// empty — the scheduler wakes due processes in identity order. width is
// the live word count (pwords): ids above it cannot be marked, so the
// scan stops there; at n ≤ 64 this is the single-word fast path the
// tick benchmarks measure.
func (m *pset) first(width int) ids.ProcID {
	for i := 0; i < width; i++ {
		if w := m[i]; w != 0 {
			return ids.ProcID(i<<6 + bits.TrailingZeros64(w) + 1)
		}
	}
	return ids.None
}

// intersects reports whether the two masks share a marked process
// within the first width words.
func (m *pset) intersects(o *pset, width int) bool {
	var u uint64
	for i := 0; i < width; i++ {
		u |= m[i] & o[i]
	}
	return u != 0
}

// pwords returns the number of pset words live for n processes.
func pwords(n int) int { return (n + 63) >> 6 }
