package sim

import "sort"

// Metrics counts message traffic per tag. Counters are plain int64
// slices indexed by Tag and owned by the run in lockstep: they are
// bumped from process goroutines (sends) and the scheduler goroutine
// (deliveries, drops), and the run-token handoff serializes all of
// those, so the bump path is a bare array index — no locks, no atomics,
// no string hashing.
//
// Ownership contract (this replaces the old "all methods are safe for
// concurrent use" claim): call the live readers — Sent, TotalSent,
// Snapshot — from code holding the run token, i.e. from process mains,
// stop predicates, OnTick/OnAdvance samplers, or any time after Run has
// returned. Do not call them from an unrelated goroutine while the run
// is in progress. Run's return joins every process goroutine, so
// post-run reads from any goroutine are race-clean.
type Metrics struct {
	sent      []int64 // indexed by Tag; grown on demand
	delivered []int64
	dropped   []int64
	totalSent int64
}

func newMetrics() *Metrics {
	// Size to the tags interned so far: protocol packages intern theirs
	// in var declarations, so by the time a System exists the slices
	// almost always have their final size and the grow path never runs.
	n := internedTags() + 8
	return &Metrics{
		sent:      make([]int64, n),
		delivered: make([]int64, n),
		dropped:   make([]int64, n),
	}
}

// grown returns s with at least tag+1 entries.
func grown(s []int64, tag Tag) []int64 {
	if int(tag) < len(s) {
		return s
	}
	out := make([]int64, int(tag)+8)
	copy(out, s)
	return out
}

func (m *Metrics) countSent(tag Tag) {
	m.sent = grown(m.sent, tag)
	m.sent[tag]++
	m.totalSent++
}

func (m *Metrics) countDelivered(tag Tag) {
	m.delivered = grown(m.delivered, tag)
	m.delivered[tag]++
}

func (m *Metrics) countDropped(tag Tag) {
	m.dropped = grown(m.dropped, tag)
	m.dropped[tag]++
}

// The N variants bump a counter by a whole batch's worth at once.
// Counters stay per-message-exact: callers pass the number of messages
// in the batch, so a batched run and a message-at-a-time run of the
// same schedule produce identical snapshots.

func (m *Metrics) countSentN(tag Tag, n int64) {
	m.sent = grown(m.sent, tag)
	m.sent[tag] += n
	m.totalSent += n
}

func (m *Metrics) countDeliveredN(tag Tag, n int64) {
	m.delivered = grown(m.delivered, tag)
	m.delivered[tag] += n
}

func (m *Metrics) countDroppedN(tag Tag, n int64) {
	m.dropped = grown(m.dropped, tag)
	m.dropped[tag] += n
}

// Sent returns how many messages with the given tag have been sent.
func (m *Metrics) Sent(tag Tag) int64 {
	if int(tag) >= len(m.sent) {
		return 0
	}
	return m.sent[tag]
}

// TotalSent returns the total number of messages sent so far.
func (m *Metrics) TotalSent() int64 { return m.totalSent }

// MetricsSnapshot is an immutable copy of the counters, keyed by tag
// name — the external format consumed by sweep reports and tests. It is
// unchanged by the interning of tags on the wire: reports built from it
// are byte-identical to those of the string-tagged scheduler.
type MetricsSnapshot struct {
	Sent      map[string]int64
	Delivered map[string]int64
	Dropped   map[string]int64
	TotalSent int64
}

// Snapshot copies the current counters. Tags with a zero count are
// omitted from the respective map, as before. Same ownership contract
// as the other readers: call it with the run token or after Run.
func (m *Metrics) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Sent:      make(map[string]int64),
		Delivered: make(map[string]int64),
		Dropped:   make(map[string]int64),
		TotalSent: m.totalSent,
	}
	for tag, v := range m.sent {
		if v != 0 {
			snap.Sent[Tag(tag).String()] = v
		}
	}
	for tag, v := range m.delivered {
		if v != 0 {
			snap.Delivered[Tag(tag).String()] = v
		}
	}
	for tag, v := range m.dropped {
		if v != 0 {
			snap.Dropped[Tag(tag).String()] = v
		}
	}
	return snap
}

// Tags returns the message tags seen so far, sorted.
func (s MetricsSnapshot) Tags() []string {
	seen := make(map[string]bool, len(s.Sent))
	for tag := range s.Sent {
		seen[tag] = true
	}
	for tag := range s.Delivered {
		seen[tag] = true
	}
	tags := make([]string, 0, len(seen))
	for tag := range seen {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	return tags
}
