package sim

import (
	"sort"
	"sync"
)

// Metrics counts message traffic per tag. All methods are safe for
// concurrent use.
type Metrics struct {
	mu        sync.Mutex
	sentN     map[string]int64
	deliverN  map[string]int64
	droppedN  map[string]int64
	totalSent int64
}

func newMetrics() *Metrics {
	return &Metrics{
		sentN:    make(map[string]int64),
		deliverN: make(map[string]int64),
		droppedN: make(map[string]int64),
	}
}

func (m *Metrics) sent(tag string) {
	m.mu.Lock()
	m.sentN[tag]++
	m.totalSent++
	m.mu.Unlock()
}

func (m *Metrics) delivered(tag string) {
	m.mu.Lock()
	m.deliverN[tag]++
	m.mu.Unlock()
}

func (m *Metrics) dropped(tag string) {
	m.mu.Lock()
	m.droppedN[tag]++
	m.mu.Unlock()
}

// Sent returns how many messages with the given tag have been sent.
func (m *Metrics) Sent(tag string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sentN[tag]
}

// TotalSent returns the total number of messages sent so far.
func (m *Metrics) TotalSent() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalSent
}

// MetricsSnapshot is an immutable copy of the counters.
type MetricsSnapshot struct {
	Sent      map[string]int64
	Delivered map[string]int64
	Dropped   map[string]int64
	TotalSent int64
}

// Snapshot copies the current counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MetricsSnapshot{
		Sent:      copyCounts(m.sentN),
		Delivered: copyCounts(m.deliverN),
		Dropped:   copyCounts(m.droppedN),
		TotalSent: m.totalSent,
	}
}

// Tags returns the message tags seen so far, sorted.
func (s MetricsSnapshot) Tags() []string {
	seen := make(map[string]bool, len(s.Sent))
	for tag := range s.Sent {
		seen[tag] = true
	}
	for tag := range s.Delivered {
		seen[tag] = true
	}
	tags := make([]string, 0, len(seen))
	for tag := range seen {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	return tags
}

func copyCounts(in map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
