package sim

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics counts message traffic per tag. All methods are safe for
// concurrent use. Counters are atomic; the map of tags is read-mostly
// (the tag set of a protocol is small and fixed), so the hot bump path
// takes only a read lock.
type Metrics struct {
	mu        sync.RWMutex
	counters  map[string]*tagCounts
	totalSent atomic.Int64
}

type tagCounts struct {
	sent, delivered, dropped atomic.Int64
}

func newMetrics() *Metrics {
	return &Metrics{counters: make(map[string]*tagCounts)}
}

func (m *Metrics) tag(tag string) *tagCounts {
	m.mu.RLock()
	c := m.counters[tag]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[tag]; c == nil {
		c = &tagCounts{}
		m.counters[tag] = c
	}
	return c
}

func (m *Metrics) sent(tag string) {
	m.tag(tag).sent.Add(1)
	m.totalSent.Add(1)
}

func (m *Metrics) delivered(tag string) {
	m.tag(tag).delivered.Add(1)
}

func (m *Metrics) dropped(tag string) {
	m.tag(tag).dropped.Add(1)
}

// Sent returns how many messages with the given tag have been sent.
func (m *Metrics) Sent(tag string) int64 {
	m.mu.RLock()
	c := m.counters[tag]
	m.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.sent.Load()
}

// TotalSent returns the total number of messages sent so far.
func (m *Metrics) TotalSent() int64 {
	return m.totalSent.Load()
}

// MetricsSnapshot is an immutable copy of the counters.
type MetricsSnapshot struct {
	Sent      map[string]int64
	Delivered map[string]int64
	Dropped   map[string]int64
	TotalSent int64
}

// Snapshot copies the current counters. Tags with a zero count are
// omitted from the respective map, as before.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	snap := MetricsSnapshot{
		Sent:      make(map[string]int64, len(m.counters)),
		Delivered: make(map[string]int64, len(m.counters)),
		Dropped:   make(map[string]int64, len(m.counters)),
		TotalSent: m.totalSent.Load(),
	}
	for tag, c := range m.counters {
		if v := c.sent.Load(); v != 0 {
			snap.Sent[tag] = v
		}
		if v := c.delivered.Load(); v != 0 {
			snap.Delivered[tag] = v
		}
		if v := c.dropped.Load(); v != 0 {
			snap.Dropped[tag] = v
		}
	}
	return snap
}

// Tags returns the message tags seen so far, sorted.
func (s MetricsSnapshot) Tags() []string {
	seen := make(map[string]bool, len(s.Sent))
	for tag := range s.Sent {
		seen[tag] = true
	}
	for tag := range s.Delivered {
		seen[tag] = true
	}
	tags := make([]string, 0, len(seen))
	for tag := range seen {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	return tags
}
