package core

import (
	"testing"
	"testing/quick"
)

func TestParseClass(t *testing.T) {
	good := map[string]Class{
		"S_2":      {FamS, 2},
		"<>S_3":    {FamEvtS, 3},
		"Omega_1":  {FamOmega, 1},
		"phi_0":    {FamPhi, 0},
		"<>phi_2":  {FamEvtPhi, 2},
		"Psi_4":    {FamPsi, 4},
		"Omega_12": {FamOmega, 12},
	}
	for s, want := range good {
		got, err := ParseClass(s)
		if err != nil {
			t.Errorf("ParseClass(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseClass(%q) = %v, want %v", s, got, want)
		}
	}
	bad := []string{"", "S", "S_", "S_x", "Bogus_1", "omega_1", "_3"}
	for _, s := range bad {
		if _, err := ParseClass(s); err == nil {
			t.Errorf("ParseClass(%q) accepted", s)
		}
	}
}

// TestParseClassRoundTrip: String and ParseClass are inverses.
func TestParseClassRoundTrip(t *testing.T) {
	fams := []Family{FamS, FamEvtS, FamOmega, FamPhi, FamEvtPhi, FamPsi}
	law := func(famIdx, param uint8) bool {
		c := Class{Fam: fams[int(famIdx)%len(fams)], Param: int(param % 60)}
		got, err := ParseClass(c.String())
		return err == nil && got == c
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
