package core

import (
	"testing"

	"fdgrid/internal/agreement"
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// TestGridLargerSystem spot-checks representative grid cells at
// (n, t) = (7, 3) — one class per line, rotating families — with two
// crashes straddling the GST.
func TestGridLargerSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("larger-grid verification is slow; run without -short")
	}
	const (
		n  = 7
		tt = 3
	)
	picks := []Class{
		{Fam: FamEvtS, Param: tt + 1},   // line 1
		{Fam: FamEvtPhi, Param: tt - 1}, // line 2
		{Fam: FamPsi, Param: tt - 2},    // line 3
		{Fam: FamOmega, Param: tt + 1},  // line 4
	}
	for _, c := range picks {
		z := KSetPower(c, tt)
		t.Run(c.String(), func(t *testing.T) {
			cfg := sim.Config{
				N: n, T: tt, Seed: 12, MaxSteps: 3_000_000, GST: 800,
				Crashes:   map[ids.ProcID]sim.Time{3: 400, 6: 1_200},
				Bandwidth: n,
			}
			sys := sim.MustNew(cfg)
			out, err := SpawnKSetWith(sys, c, nil)
			if err != nil {
				t.Fatal(err)
			}
			rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
			if !rep.StoppedEarly {
				t.Fatalf("timed out; decisions %v", out.Decisions())
			}
			if err := out.Check(sys.Pattern(), z); err != nil {
				t.Errorf("z=%d: %v", z, err)
			}
		})
	}
}

// TestSpawnKSetWithPerpetualStack: the perpetual classes route through
// the same stacks; perpetual accuracy means decisions can come before
// any stabilization.
func TestSpawnKSetWithPerpetualStack(t *testing.T) {
	cfg := sim.Config{
		N: 5, T: 2, Seed: 9, MaxSteps: 1_000_000, GST: 50_000, // GST far away
		Bandwidth: 5,
	}
	sys := sim.MustNew(cfg)
	out, err := SpawnKSetWith(sys, Class{Fam: FamS, Param: 3}, map[ids.ProcID]agreement.Value{
		1: 7, 2: 7, 3: 7, 4: 7, 5: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
	if !rep.StoppedEarly {
		t.Fatal("timed out")
	}
	if rep.Steps >= cfg.GST {
		t.Errorf("perpetual class needed %d ticks, should decide well before the (irrelevant) GST", rep.Steps)
	}
	if err := out.Check(sys.Pattern(), 1); err != nil {
		t.Fatal(err)
	}
	for _, d := range out.Decisions() {
		if d.Value != 7 {
			t.Errorf("decided %d, want 7", d.Value)
		}
	}
}
