// Package core is the repository's top-level model of the paper's
// contribution: the grid of failure detector classes (paper Fig. 1), the
// reducibility / irreducibility / additivity relations among them
// (Theorems 5–14), and executable constructions wiring any grid class to
// the k-set agreement algorithm through the transformations of
// internal/reduction.
package core

import (
	"fmt"

	"fdgrid/internal/agreement"
	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/node"
	"fdgrid/internal/rbcast"
	"fdgrid/internal/reduction"
	"fdgrid/internal/sim"
)

// Family enumerates the failure detector families the paper studies.
type Family int

// The families. Perpetual classes (S_x, φ_y, Ψ_y) constrain behaviour
// from the start; eventual classes (◇S_x, Ω_z, ◇φ_y) only after an
// unknown finite time.
const (
	FamS      Family = iota + 1 // S_x: perpetual limited-scope accuracy
	FamEvtS                     // ◇S_x
	FamOmega                    // Ω_z: eventual multiple leadership
	FamPhi                      // φ_y: perpetual-safety crash queries
	FamEvtPhi                   // ◇φ_y
	FamPsi                      // Ψ_y: φ_y under the containment contract
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case FamS:
		return "S"
	case FamEvtS:
		return "<>S"
	case FamOmega:
		return "Omega"
	case FamPhi:
		return "phi"
	case FamEvtPhi:
		return "<>phi"
	case FamPsi:
		return "Psi"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Class is one failure detector class: a family and its scope parameter
// (x for S-families, y for φ-families, z for Ω).
type Class struct {
	Fam   Family
	Param int
}

// String renders the class in the paper's notation, ASCII-ized.
func (c Class) String() string {
	return fmt.Sprintf("%s_%d", c.Fam, c.Param)
}

// KSetPower returns the smallest k for which the class solves k-set
// agreement in AS[n,t] with t < n/2 — the class's line in the paper's
// Fig. 1 grid (clamped at 1 = consensus, and at t+1, which asynchronous
// systems reach with no oracle at all).
func KSetPower(c Class, t int) int {
	var k int
	switch c.Fam {
	case FamS, FamEvtS:
		k = t - c.Param + 2 // line z holds S_{t−z+2} (Herlihy & Penso bound)
	case FamOmega:
		k = c.Param // Theorem 5: z ≤ k necessary and sufficient
	case FamPhi, FamEvtPhi, FamPsi:
		k = t - c.Param + 1 // line z holds φ_{t−z+1}
	default:
		panic(fmt.Sprintf("core: unknown family %v", c.Fam))
	}
	if k < 1 {
		k = 1
	}
	if k > t+1 {
		k = t + 1
	}
	return k
}

// GridLine returns the classes on line z of the paper's Fig. 1 grid for
// resilience t: {S_{t−z+2}, ◇S_{t−z+2}, Ω_z, φ_{t−z+1}, ◇φ_{t−z+1},
// Ψ_{t−z+1}}, all of which solve z-set agreement; Ω_z is the weakest.
func GridLine(z, t int) []Class {
	if z < 1 || z > t+1 {
		panic(fmt.Sprintf("core: grid line z=%d out of range 1..%d", z, t+1))
	}
	return []Class{
		{Fam: FamS, Param: t - z + 2},
		{Fam: FamEvtS, Param: t - z + 2},
		{Fam: FamOmega, Param: z},
		{Fam: FamPhi, Param: t - z + 1},
		{Fam: FamEvtPhi, Param: t - z + 1},
		{Fam: FamPsi, Param: t - z + 1},
	}
}

// Verdict is the answer of CanTransform: whether a transformation
// algorithm exists, and which result of the paper decides it.
type Verdict struct {
	OK     bool
	Reason string
}

// CanTransform reports whether a failure detector of class `to` can be
// built in AS[n,t] from failure detectors of the classes `from`
// (one or two sources), per the paper's results. Combinations outside
// the paper's coverage return OK=false with an explanatory reason.
func CanTransform(from []Class, to Class, t int) Verdict {
	switch len(from) {
	case 1:
		return canTransform1(from[0], to, t)
	case 2:
		return canAdd(from[0], from[1], to, t)
	default:
		return Verdict{false, "only 1- and 2-source transformations are modeled"}
	}
}

func canTransform1(a, to Class, t int) Verdict {
	// Intra-family weakenings.
	if a.Fam == to.Fam {
		switch a.Fam {
		case FamOmega:
			if to.Param >= a.Param {
				return Verdict{true, "Omega_z implies Omega_z' for z' >= z"}
			}
			return Verdict{false, "cannot shrink an Omega leader set"}
		default:
			if to.Param <= a.Param {
				return Verdict{true, "scope weakening within a family"}
			}
			return Verdict{false, "cannot enlarge a scope parameter"}
		}
	}
	// Perpetual → eventual counterpart, and the Ψ/φ relations.
	if a.Fam == FamS && to.Fam == FamEvtS && to.Param <= a.Param {
		return Verdict{true, "S_x is a subclass of <>S_x"}
	}
	if a.Fam == FamPhi && to.Fam == FamEvtPhi && to.Param <= a.Param {
		return Verdict{true, "phi_y is a subclass of <>phi_y"}
	}
	if a.Fam == FamPhi && to.Fam == FamPsi && to.Param <= a.Param {
		return Verdict{true, "restricting queries to a chain uses phi_y as Psi_y"}
	}

	switch {
	case to.Fam == FamOmega && (a.Fam == FamS || a.Fam == FamEvtS):
		// Corollary 7: possible iff x+z > t+1.
		if a.Param+to.Param > t+1 {
			return Verdict{true, "Corollary 7: x+z > t+1 (two wheels, y=0)"}
		}
		return Verdict{false, "Corollary 7: requires x+z > t+1"}
	case to.Fam == FamOmega && (a.Fam == FamPhi || a.Fam == FamEvtPhi || a.Fam == FamPsi):
		// Corollary 6 / Theorem 13: possible iff y+z > t.
		if a.Param+to.Param > t {
			return Verdict{true, "Corollary 6: y+z > t (two wheels x=1, or Fig. 8 for Psi)"}
		}
		return Verdict{false, "Corollary 6: requires y+z > t"}
	case (to.Fam == FamPhi || to.Fam == FamEvtPhi || to.Fam == FamPsi) && (a.Fam == FamS || a.Fam == FamEvtS):
		if to.Param == 0 {
			return Verdict{true, "phi_0 carries no information"}
		}
		return Verdict{false, "Theorem 9: no S_x/<>S_x yields (even eventual) region safety"}
	case (to.Fam == FamS || to.Fam == FamEvtS) && (a.Fam == FamPhi || a.Fam == FamEvtPhi || a.Fam == FamPsi):
		if to.Param <= 1 {
			return Verdict{true, "S_1/<>S_1 carries no information"}
		}
		return Verdict{false, "Theorem 10: query oracles cannot provide scoped accuracy"}
	case (to.Fam == FamPhi || to.Fam == FamEvtPhi || to.Fam == FamPsi) && a.Fam == FamOmega:
		if to.Param == 0 {
			return Verdict{true, "phi_0 carries no information"}
		}
		return Verdict{false, "Theorem 11: Omega_z gives no (eventual) region safety"}
	case (to.Fam == FamS || to.Fam == FamEvtS) && a.Fam == FamOmega:
		if to.Param <= 1 {
			return Verdict{true, "S_1/<>S_1 carries no information"}
		}
		return Verdict{false, "Theorem 12: Omega_z gives no scoped accuracy"}
	}
	return Verdict{false, "combination not covered by the paper"}
}

// canAdd decides two-source additions.
func canAdd(a, b, to Class, t int) Verdict {
	// Normalize: suspector first, querier second.
	if a.Fam == FamPhi || a.Fam == FamEvtPhi || a.Fam == FamPsi {
		a, b = b, a
	}
	sIsS := a.Fam == FamS || a.Fam == FamEvtS
	qIsPhi := b.Fam == FamPhi || b.Fam == FamEvtPhi || b.Fam == FamPsi
	if !sIsS || !qIsPhi {
		// Not the paper's addition shape: either source alone may do.
		if v := canTransform1(a, to, t); v.OK {
			return v
		}
		return canTransform1(b, to, t)
	}
	x, y := a.Param, b.Param
	switch to.Fam {
	case FamOmega:
		// Theorem 8: ◇S_x + ◇φ_y ⇝ Ω_z iff x+y+z > t+1.
		if x+y+to.Param > t+1 {
			return Verdict{true, "Theorem 8: x+y+z >= t+2 (the two-wheels addition)"}
		}
		return Verdict{false, "Theorem 8: requires x+y+z >= t+2"}
	case FamS, FamEvtS:
		// Appendix B: S_x + φ_y → S_n iff x+y > t; the perpetual output
		// needs perpetual inputs.
		perpetualIn := a.Fam == FamS && (b.Fam == FamPhi || b.Fam == FamPsi)
		if to.Fam == FamS && !perpetualIn {
			return Verdict{false, "perpetual S_n cannot come from eventual inputs"}
		}
		if x+y > t {
			return Verdict{true, "Appendix B: x+y > t (Fig. 9 addition)"}
		}
		return Verdict{false, "Appendix B: requires x+y > t"}
	}
	return Verdict{false, "combination not covered by the paper"}
}

// SpawnKSetWith wires a complete k-set agreement run in which every
// process consults a ground-truth oracle of class c, routed through the
// transformations the paper prescribes for c's grid line:
//
//	Ω_z        → the Fig. 3 algorithm directly;
//	S_x, ◇S_x  → two wheels with y=0 (Corollary 7), then Fig. 3;
//	φ_y, ◇φ_y  → two wheels with x=1 (Corollary 6), then Fig. 3;
//	Ψ_y        → the Fig. 8 chain construction, then Fig. 3.
//
// proposals[p] is process p's proposal (default: p's id). The returned
// Outcome collects decisions; drive sys.Run(out.AllDecided(...)) and
// Check against k = KSetPower(c, t).
func SpawnKSetWith(sys *sim.System, c Class, proposals map[ids.ProcID]agreement.Value) (*agreement.Outcome, error) {
	n, t := sys.Config().N, sys.Config().T
	if 2*t >= n {
		return nil, fmt.Errorf("core: k-set agreement requires t < n/2, got n=%d t=%d", n, t)
	}
	out := agreement.NewOutcome()
	valueOf := func(p ids.ProcID) agreement.Value {
		if v, ok := proposals[p]; ok {
			return v
		}
		return agreement.Value(int(p))
	}

	switch c.Fam {
	case FamOmega:
		if c.Param < 1 || c.Param > n {
			return nil, fmt.Errorf("core: %v parameter out of range", c)
		}
		oracle := fd.NewOmega(sys, c.Param)
		for p := 1; p <= n; p++ {
			id := ids.ProcID(p)
			sys.Spawn(id, agreement.KSetMain(oracle, valueOf(id), out))
		}
	case FamS, FamEvtS:
		if c.Param < 1 || c.Param > n {
			return nil, fmt.Errorf("core: %v parameter out of range", c)
		}
		// Effective scope: x > t+1 adds nothing over x = t+1 (z stays 1).
		x := c.Param
		if x > t+1 {
			x = t + 1
		}
		var susp fd.Suspector
		if c.Fam == FamS {
			susp = fd.NewS(sys, c.Param)
		} else {
			susp = fd.NewEvtS(sys, c.Param)
		}
		quer := fd.NewPhi(sys, 0) // φ_0: no information, trivial answers
		spawnStacked(sys, susp, quer, x, 0, valueOf, out)
	case FamPhi, FamEvtPhi:
		if c.Param < 0 || c.Param > t {
			return nil, fmt.Errorf("core: %v parameter out of range 0..t for stacking", c)
		}
		var quer fd.Querier
		if c.Fam == FamPhi {
			quer = fd.NewPhi(sys, c.Param)
		} else {
			quer = fd.NewEvtPhi(sys, c.Param)
		}
		susp := fd.NewEvtS(sys, 1) // ◇S_1: no information
		spawnStacked(sys, susp, quer, 1, c.Param, valueOf, out)
	case FamPsi:
		if c.Param < 0 || c.Param > t {
			return nil, fmt.Errorf("core: %v parameter out of range 0..t", c)
		}
		z := t + 1 - c.Param
		if z < 1 {
			z = 1
		}
		psi := fd.WrapPsi(fd.NewPhi(sys, c.Param))
		leader := reduction.NewPsiOmega(n, t, c.Param, z, psi)
		for p := 1; p <= n; p++ {
			id := ids.ProcID(p)
			sys.Spawn(id, agreement.KSetMain(leader, valueOf(id), out))
		}
	default:
		return nil, fmt.Errorf("core: unknown family %v", c.Fam)
	}
	return out, nil
}

// spawnStacked wires the two-wheels transformation under the k-set
// algorithm on every process.
func spawnStacked(sys *sim.System, susp fd.Suspector, quer fd.Querier, x, y int,
	valueOf func(ids.ProcID) agreement.Value, out *agreement.Outcome) {
	emu := reduction.NewOmegaEmulation()
	n := sys.Config().N
	for p := 1; p <= n; p++ {
		id := ids.ProcID(p)
		sys.Spawn(id, func(env *sim.Env) {
			rb := rbcast.New(env)
			lower, upper := reduction.InstallTwoWheels(env, rb, susp, quer, x, y, emu, nil)
			nd := node.New(env, rb, lower, upper)
			agreement.KSet(nd, rb, emu, valueOf(env.ID()), out)
			nd.RunForever()
		})
	}
}
