package core

import (
	"testing"

	"fdgrid/internal/agreement"
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

func TestFamilyAndClassStrings(t *testing.T) {
	cases := map[Class]string{
		{FamS, 2}:      "S_2",
		{FamEvtS, 3}:   "<>S_3",
		{FamOmega, 1}:  "Omega_1",
		{FamPhi, 0}:    "phi_0",
		{FamEvtPhi, 2}: "<>phi_2",
		{FamPsi, 1}:    "Psi_1",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", c, got, want)
		}
	}
	if got := Family(99).String(); got != "Family(99)" {
		t.Errorf("unknown family = %q", got)
	}
}

func TestKSetPower(t *testing.T) {
	const tt = 3 // resilience
	cases := []struct {
		c    Class
		want int
	}{
		{Class{FamS, tt + 1}, 1},    // S_{t+1}: consensus line
		{Class{FamEvtS, tt + 1}, 1}, //
		{Class{FamEvtS, tt}, 2},     // line 2
		{Class{FamEvtS, 1}, tt + 1}, // no information
		{Class{FamOmega, 1}, 1},     //
		{Class{FamOmega, tt + 1}, tt + 1},
		{Class{FamPhi, tt}, 1},     // φ_t ≡ P: consensus line
		{Class{FamEvtPhi, tt}, 1},  //
		{Class{FamPhi, 0}, tt + 1}, // no information
		{Class{FamPsi, 1}, tt},     //
		{Class{FamEvtS, 60}, 1},    // clamped below 1
	}
	for _, c := range cases {
		if got := KSetPower(c.c, tt); got != c.want {
			t.Errorf("KSetPower(%v, t=%d) = %d, want %d", c.c, tt, got, c.want)
		}
	}
}

func TestGridLineShape(t *testing.T) {
	const tt = 3
	for z := 1; z <= tt+1; z++ {
		line := GridLine(z, tt)
		if len(line) != 6 {
			t.Fatalf("line %d has %d classes", z, len(line))
		}
		for _, c := range line {
			if got := KSetPower(c, tt); got != z {
				t.Errorf("line %d: %v has power %d", z, c, got)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("GridLine(0) did not panic")
		}
	}()
	GridLine(0, tt)
}

func TestCanTransformTheoremTable(t *testing.T) {
	const tt = 3
	cases := []struct {
		name string
		from []Class
		to   Class
		want bool
	}{
		// Intra-family.
		{"S weaken", []Class{{FamS, 3}}, Class{FamS, 2}, true},
		{"S strengthen", []Class{{FamS, 2}}, Class{FamS, 3}, false},
		{"Omega widen", []Class{{FamOmega, 1}}, Class{FamOmega, 2}, true},
		{"Omega narrow", []Class{{FamOmega, 2}}, Class{FamOmega, 1}, false},
		{"phi weaken", []Class{{FamPhi, 2}}, Class{FamPhi, 1}, true},
		// Perpetual → eventual.
		{"S to evtS", []Class{{FamS, 2}}, Class{FamEvtS, 2}, true},
		{"phi to evtphi", []Class{{FamPhi, 2}}, Class{FamEvtPhi, 1}, true},
		{"phi to Psi", []Class{{FamPhi, 2}}, Class{FamPsi, 2}, true},
		// Corollary 7: ◇S_x → Ω_z iff x+z > t+1.
		{"EvtS to Omega ok", []Class{{FamEvtS, 3}}, Class{FamOmega, 2}, true},
		{"EvtS to Omega tight", []Class{{FamEvtS, 2}}, Class{FamOmega, 2}, false},
		{"S to Omega ok", []Class{{FamS, 4}}, Class{FamOmega, 1}, true},
		// Corollary 6: ◇φ_y → Ω_z iff y+z > t.
		{"EvtPhi to Omega ok", []Class{{FamEvtPhi, 2}}, Class{FamOmega, 2}, true},
		{"EvtPhi to Omega tight", []Class{{FamEvtPhi, 1}}, Class{FamOmega, 2}, false},
		{"Psi to Omega ok", []Class{{FamPsi, 3}}, Class{FamOmega, 1}, true},
		// Theorem 9: S_x ⇏ φ_y-family.
		{"S to phi no", []Class{{FamS, 3}}, Class{FamPhi, 1}, false},
		{"S to evtphi no", []Class{{FamS, 3}}, Class{FamEvtPhi, 1}, false},
		{"S to phi0 trivial", []Class{{FamS, 1}}, Class{FamPhi, 0}, true},
		// Theorem 10: φ_y ⇏ S_x-family (x > 1).
		{"phi to S no", []Class{{FamPhi, 3}}, Class{FamS, 2}, false},
		{"phi to S1 trivial", []Class{{FamPhi, 1}}, Class{FamS, 1}, true},
		// Theorems 11, 12: Ω_z ⇏ φ/S.
		{"Omega to phi no", []Class{{FamOmega, 1}}, Class{FamEvtPhi, 1}, false},
		{"Omega to S no", []Class{{FamOmega, 1}}, Class{FamEvtS, 2}, false},
		// Theorem 8: additions.
		{"add to Omega ok", []Class{{FamEvtS, 2}, {FamEvtPhi, 2}}, Class{FamOmega, 1}, true},
		{"add to Omega tight", []Class{{FamEvtS, 2}, {FamEvtPhi, 1}}, Class{FamOmega, 1}, false},
		{"add motivating", []Class{{FamEvtS, tt}, {FamEvtPhi, 1}}, Class{FamOmega, 1}, true},
		// Appendix B.
		{"add to S ok", []Class{{FamS, 2}, {FamPhi, 2}}, Class{FamS, 5}, true},
		{"add to S tight", []Class{{FamS, 1}, {FamPhi, 2}}, Class{FamS, 5}, false},
		{"add evt to evtS", []Class{{FamEvtS, 2}, {FamEvtPhi, 2}}, Class{FamEvtS, 5}, true},
		{"add evt to S no", []Class{{FamEvtS, 2}, {FamEvtPhi, 2}}, Class{FamS, 5}, false},
		// Order of sources must not matter.
		{"add swapped", []Class{{FamEvtPhi, 2}, {FamEvtS, 2}}, Class{FamOmega, 1}, true},
		// A second source that adds nothing.
		{"two omegas", []Class{{FamOmega, 1}, {FamOmega, 2}}, Class{FamOmega, 2}, true},
	}
	for _, c := range cases {
		got := CanTransform(c.from, c.to, tt)
		if got.OK != c.want {
			t.Errorf("%s: CanTransform(%v → %v) = %v (%s), want %v",
				c.name, c.from, c.to, got.OK, got.Reason, c.want)
		}
		if got.Reason == "" {
			t.Errorf("%s: empty reason", c.name)
		}
	}
}

// TestCanTransformConsistentWithGrid: every class on line z can be
// transformed into Ω_z (the weakest of the line), and none can reach the
// stronger Ω_{z−1}.
func TestCanTransformConsistentWithGrid(t *testing.T) {
	const tt = 4
	for z := 1; z <= tt+1; z++ {
		for _, c := range GridLine(z, tt) {
			if c.Fam == FamOmega {
				continue
			}
			if v := CanTransform([]Class{c}, Class{FamOmega, z}, tt); !v.OK {
				t.Errorf("line %d: %v cannot reach Omega_%d: %s", z, c, z, v.Reason)
			}
			if z > 1 {
				if v := CanTransform([]Class{c}, Class{FamOmega, z - 1}, tt); v.OK {
					t.Errorf("line %d: %v reaches the stronger Omega_%d: %s", z, c, z-1, v.Reason)
				}
			}
		}
	}
}

// TestGridLineSolvesKSet runs the actual protocols: every class of every
// grid line decides, with at most z distinct values (paper Fig. 1,
// EXP-F1). This is the repository's flagship integration test.
func TestGridLineSolvesKSet(t *testing.T) {
	if testing.Short() {
		t.Skip("grid verification is slow; run without -short")
	}
	const (
		n  = 5
		tt = 2
	)
	crashes := map[ids.ProcID]sim.Time{4: 900}
	for z := 1; z <= tt+1; z++ {
		for _, c := range GridLine(z, tt) {
			t.Run(c.String(), func(t *testing.T) {
				cfg := sim.Config{
					N: n, T: tt, Seed: 17, MaxSteps: 600_000,
					GST: 700, Crashes: crashes, Bandwidth: n,
				}
				sys := sim.MustNew(cfg)
				out, err := SpawnKSetWith(sys, c, nil)
				if err != nil {
					t.Fatal(err)
				}
				rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
				if !rep.StoppedEarly {
					t.Fatalf("timed out; decisions: %v", out.Decisions())
				}
				if err := out.Check(sys.Pattern(), z); err != nil {
					t.Errorf("z=%d: %v", z, err)
				}
			})
		}
	}
}

func TestSpawnKSetWithValidation(t *testing.T) {
	sys := sim.MustNew(sim.Config{N: 4, T: 2, Seed: 1, MaxSteps: 100})
	if _, err := SpawnKSetWith(sys, Class{FamOmega, 1}, nil); err == nil {
		t.Error("t ≥ n/2 accepted")
	}
	sys2 := sim.MustNew(sim.Config{N: 5, T: 2, Seed: 1, MaxSteps: 100})
	if _, err := SpawnKSetWith(sys2, Class{FamOmega, 9}, nil); err == nil {
		t.Error("Omega_9 on 5 processes accepted")
	}
	sys3 := sim.MustNew(sim.Config{N: 5, T: 2, Seed: 1, MaxSteps: 100})
	if _, err := SpawnKSetWith(sys3, Class{FamPhi, 5}, nil); err == nil {
		t.Error("phi_5 with t=2 accepted")
	}
	sys4 := sim.MustNew(sim.Config{N: 5, T: 2, Seed: 1, MaxSteps: 100})
	if _, err := SpawnKSetWith(sys4, Class{Fam: Family(42), Param: 1}, nil); err == nil {
		t.Error("unknown family accepted")
	}
}

// TestSpawnKSetWithProposals: explicit proposals are honoured.
func TestSpawnKSetWithProposals(t *testing.T) {
	cfg := sim.Config{N: 5, T: 2, Seed: 23, MaxSteps: 300_000, GST: 0, Bandwidth: 5}
	sys := sim.MustNew(cfg)
	props := map[ids.ProcID]agreement.Value{1: 100, 2: 100, 3: 100, 4: 100, 5: 100}
	out, err := SpawnKSetWith(sys, Class{FamOmega, 2}, props)
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
	if !rep.StoppedEarly {
		t.Fatal("timed out")
	}
	for p, d := range out.Decisions() {
		if d.Value != 100 {
			t.Errorf("%v decided %d, want 100", p, d.Value)
		}
	}
}
