package core

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseClass parses a class in the repository's ASCII notation:
// "S_x", "<>S_x", "Omega_z", "phi_y", "<>phi_y", "Psi_y" — e.g.
// "<>S_3" or "phi_1". It is the inverse of Class.String.
func ParseClass(s string) (Class, error) {
	i := strings.LastIndex(s, "_")
	if i < 0 {
		return Class{}, fmt.Errorf("core: class %q not of the form Family_param", s)
	}
	param, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return Class{}, fmt.Errorf("core: bad class parameter in %q", s)
	}
	var fam Family
	switch s[:i] {
	case "S":
		fam = FamS
	case "<>S":
		fam = FamEvtS
	case "Omega":
		fam = FamOmega
	case "phi":
		fam = FamPhi
	case "<>phi":
		fam = FamEvtPhi
	case "Psi":
		fam = FamPsi
	default:
		return Class{}, fmt.Errorf("core: unknown family %q", s[:i])
	}
	return Class{Fam: fam, Param: param}, nil
}
