package agreement

import (
	"fmt"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/node"
	"fdgrid/internal/rbcast"
	"fdgrid/internal/sim"
)

// Message tags of the Ω_z-based k-set agreement protocol, interned once
// at package load.
var (
	tagPhase1   = sim.Intern("kset.phase1")
	tagPhase2   = sim.Intern("kset.phase2")
	tagDecision = sim.Intern("kset.decision")
)

// ksetTags parameterizes the wire tags so independent instances can
// coexist (see RunSequence).
type ksetTags struct {
	phase1, phase2, decision sim.Tag
}

var defaultKSetTags = ksetTags{phase1: tagPhase1, phase2: tagPhase2, decision: tagDecision}

type phase1Msg struct {
	R   int
	L   ids.Set // the sender's leader set at the start of round R
	Est Value
}

type phase2Msg struct {
	R   int
	Aux Value
	Bot bool // true means aux = ⊥
}

type decisionMsg struct {
	Val Value
}

// KSet runs the paper's Ω_z-based k-set agreement algorithm (Fig. 3) on
// one process, proposing v. It requires t < n/2; decisions are recorded
// in out. The function returns after deciding (or unwinds on crash).
//
// Structure, following the paper's task T1 (round loop with two phases)
// and T2 (decision dissemination via reliable broadcast):
//
//	r++; L_i ← trusted_i; broadcast PHASE1(r, L_i, est_i)
//	wait ≥ n−t PHASE1(r); wait PHASE1(r) from some p ∈ L_i or L_i ≠ trusted_i
//	aux_i ← v_L if one set L was announced by a majority and a PHASE1(r)
//	        estimate arrived from a member of L, else ⊥
//	broadcast PHASE2(r, aux_i); wait ≥ n−t PHASE2(r)
//	adopt any non-⊥ value; if no ⊥ received, R-broadcast DECISION(est_i)
//	decide upon R-delivering a DECISION (task T2) — which also prevents
//	blocking: as soon as any process decides, all correct processes do.
func KSet(nd *node.Node, rb *rbcast.Layer, oracle fd.Leader, v Value, out *Outcome) Value {
	return ksetRun(nd, rb, oracle, v, out, defaultKSetTags, nil, nil)
}

// ksetRun is the Fig. 3 body with injectable wire tags, a replay queue of
// messages that arrived before this instance started, and a stash hook
// that may consume messages belonging to other instances.
func ksetRun(nd *node.Node, rb *rbcast.Layer, oracle fd.Leader, v Value, out *Outcome,
	tags ksetTags, replay []sim.Message, stash func(sim.Message) bool) Value {
	env := nd.Env()
	n, t, me := env.N(), env.T(), env.ID()
	if 2*t >= n {
		panic(fmt.Sprintf("agreement: KSet requires t < n/2, got n=%d t=%d", n, t))
	}
	out.Propose(me, v)

	est := v
	r := 0
	phase1 := make(map[int]map[ids.ProcID]phase1Msg)
	phase2 := make(map[int]map[ids.ProcID]phase2Msg)
	var decided *Value

	handle := func(m sim.Message) {
		if stash != nil && stash(m) {
			return
		}
		switch m.Tag {
		case tags.phase1:
			p, ok := m.Payload.(phase1Msg)
			if !ok {
				panic(fmt.Sprintf("agreement: phase1 payload %T", m.Payload))
			}
			if phase1[p.R] == nil {
				phase1[p.R] = make(map[ids.ProcID]phase1Msg, n)
			}
			phase1[p.R][m.From] = p
		case tags.phase2:
			p, ok := m.Payload.(phase2Msg)
			if !ok {
				panic(fmt.Sprintf("agreement: phase2 payload %T", m.Payload))
			}
			if phase2[p.R] == nil {
				phase2[p.R] = make(map[ids.ProcID]phase2Msg, n)
			}
			phase2[p.R][m.From] = p
		case tags.decision:
			p, ok := m.Payload.(decisionMsg)
			if !ok {
				panic(fmt.Sprintf("agreement: decision payload %T", m.Payload))
			}
			if decided == nil {
				val := p.Val
				decided = &val
			}
		}
	}

	for _, m := range replay {
		handle(m)
	}

	rec := env.Trace()
	for decided == nil {
		r++
		// Phase 1.
		l := oracle.Trusted(me)
		rec.Round(int64(env.Now()), int(me), r, l)
		env.Broadcast(tags.phase1, phase1Msg{R: r, L: l, Est: est})
		nd.WaitOn(func() bool {
			return decided != nil || len(phase1[r]) >= n-t
		}, handle)
		if decided != nil {
			break
		}
		nd.WaitUntil(func() bool {
			if decided != nil || anySenderIn(phase1[r], l) {
				return true
			}
			return !oracle.Trusted(me).Equal(l)
		}, handle)
		if decided != nil {
			break
		}
		aux, bot := phase1Aux(phase1[r], n)

		// Phase 2.
		env.Broadcast(tags.phase2, phase2Msg{R: r, Aux: aux, Bot: bot})
		nd.WaitOn(func() bool {
			return decided != nil || len(phase2[r]) >= n-t
		}, handle)
		if decided != nil {
			break
		}
		sawBot := false
		adopted := false
		// The paper adopts any received non-⊥ value ("takes one
		// arbitrarily"); this implementation prefers its own echo when
		// present, else the smallest-id sender's value — a legal choice
		// that maximizes decision diversity (making the z ≤ k tightness
		// observable) while keeping runs replayable: senders are scanned
		// in identity order, never in map order.
		for q := 1; q <= n; q++ {
			from := ids.ProcID(q)
			pm, ok := phase2[r][from]
			if !ok {
				continue
			}
			if pm.Bot {
				sawBot = true
				continue
			}
			if from == me || !adopted {
				est = pm.Aux
				adopted = true
			}
		}
		if !adopted {
			continue
		}
		if !sawBot {
			rb.Broadcast(tags.decision, decisionMsg{Val: est})
			nd.WaitOn(func() bool { return decided != nil }, handle)
		}
	}

	rec.Decide(int64(env.Now()), int(me), r, int64(*decided))
	out.Decide(me, Decision{Value: *decided, Round: r, At: env.Now()})
	return *decided
}

// anySenderIn reports whether some message in msgs came from a member of l.
func anySenderIn(msgs map[ids.ProcID]phase1Msg, l ids.Set) bool {
	for from := range msgs {
		if l.Contains(from) {
			return true
		}
	}
	return false
}

// phase1Aux computes aux_i at the end of phase 1: if one leader set L was
// announced by a strict majority of the senders heard so far, and some
// heard sender belongs to L, aux is that sender's estimate (the estimate
// of the smallest-id such leader, deterministically); otherwise aux = ⊥.
func phase1Aux(msgs map[ids.ProcID]phase1Msg, n int) (aux Value, bot bool) {
	counts := make(map[ids.Set]int, len(msgs))
	var major ids.Set
	found := false
	for _, pm := range msgs {
		counts[pm.L]++
		if 2*counts[pm.L] > n {
			major = pm.L
			found = true
		}
	}
	if !found {
		return 0, true
	}
	var bestFrom ids.ProcID
	for from, pm := range msgs {
		if !major.Contains(from) {
			continue
		}
		if bestFrom == ids.None || from < bestFrom {
			bestFrom = from
			aux = pm.Est
		}
	}
	if bestFrom == ids.None {
		return 0, true
	}
	return aux, false
}

// KSetMain returns a process main running KSet over a fresh rbcast layer,
// for runs without a transformation stack underneath.
func KSetMain(oracle fd.Leader, v Value, out *Outcome) func(*sim.Env) {
	return func(env *sim.Env) {
		rb := rbcast.New(env)
		nd := node.New(env, rb)
		KSet(nd, rb, oracle, v, out)
		// Keep serving the event loop so reliable broadcast frames keep
		// being relayed to slower processes.
		nd.RunForever()
	}
}
