// Package agreement implements the paper's Ω_z-based k-set agreement
// algorithm (Fig. 3), its ◇S-based consensus ancestor [18] as a
// baseline, and checkers for the agreement problem's three properties:
//
//   - Validity: every decided value was proposed.
//   - k-Agreement: at most k distinct values are decided.
//   - Termination: every correct process decides.
package agreement

import (
	"fmt"
	"sort"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// Value is a proposal / decision value.
type Value int

// Decision records one process's decision.
type Decision struct {
	Value Value
	Round int // the round the process was in when it learned the decision
	At    sim.Time
}

// Outcome collects proposals and decisions of one agreement run. It is
// run-token state, like everything a run touches: processes decide on
// their own goroutines but only while holding the run token, stop
// predicates read it inside tick phases, and checkers run after
// sim.Run has joined every goroutine — so the channel handoffs provide
// every needed happens-before edge and no lock is involved (verified,
// like the rest of the ownership contract, by the -race CI job).
type Outcome struct {
	proposals map[ids.ProcID]Value
	decisions map[ids.ProcID]Decision
}

// NewOutcome returns an empty outcome recorder.
func NewOutcome() *Outcome {
	return &Outcome{
		proposals: make(map[ids.ProcID]Value),
		decisions: make(map[ids.ProcID]Decision),
	}
}

// Propose records p's proposal. Each process proposes exactly once.
func (o *Outcome) Propose(p ids.ProcID, v Value) {
	if old, dup := o.proposals[p]; dup {
		panic(fmt.Sprintf("agreement: %v proposed twice (%d then %d)", p, old, v))
	}
	o.proposals[p] = v
}

// Decide records p's decision. A second, different decision by the same
// process panics: it would be an integrity bug in the protocol.
func (o *Outcome) Decide(p ids.ProcID, d Decision) {
	if old, dup := o.decisions[p]; dup {
		if old.Value != d.Value {
			panic(fmt.Sprintf("agreement: %v decided twice with different values (%d then %d)", p, old.Value, d.Value))
		}
		return
	}
	o.decisions[p] = d
}

// Decisions returns a copy of the recorded decisions.
func (o *Outcome) Decisions() map[ids.ProcID]Decision {
	out := make(map[ids.ProcID]Decision, len(o.decisions))
	for k, v := range o.decisions {
		out[k] = v
	}
	return out
}

// DistinctValues returns the set of distinct decided values, sorted.
func (o *Outcome) DistinctValues() []Value {
	seen := make(map[Value]bool)
	for _, d := range o.decisions {
		seen[d.Value] = true
	}
	vals := make([]Value, 0, len(seen))
	for v := range seen {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// MaxRound returns the largest decision round (0 if none).
func (o *Outcome) MaxRound() int {
	max := 0
	for _, d := range o.decisions {
		if d.Round > max {
			max = d.Round
		}
	}
	return max
}

// AllDecided returns a stop predicate that fires once every process of
// correct has decided.
func (o *Outcome) AllDecided(correct ids.Set) func() bool {
	return func() bool {
		done := true
		correct.ForEach(func(p ids.ProcID) bool {
			if _, ok := o.decisions[p]; !ok {
				done = false
				return false
			}
			return true
		})
		return done
	}
}

// Check verifies Validity, k-Agreement and Termination against the run's
// failure pattern.
func (o *Outcome) Check(pat *sim.Pattern, k int) error {
	proposed := make(map[Value]bool, len(o.proposals))
	for _, v := range o.proposals {
		proposed[v] = true
	}
	distinct := make(map[Value]bool)
	for p, d := range o.decisions {
		if !proposed[d.Value] {
			return fmt.Errorf("agreement: validity violated: %v decided %d, never proposed", p, d.Value)
		}
		distinct[d.Value] = true
	}
	if len(distinct) > k {
		return fmt.Errorf("agreement: %d distinct values decided, k=%d", len(distinct), k)
	}
	var missing []ids.ProcID
	pat.Correct().ForEach(func(p ids.ProcID) bool {
		if _, ok := o.decisions[p]; !ok {
			missing = append(missing, p)
		}
		return true
	})
	if len(missing) > 0 {
		return fmt.Errorf("agreement: termination violated: correct processes %v never decided", missing)
	}
	return nil
}
