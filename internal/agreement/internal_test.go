package agreement

import (
	"testing"

	"fdgrid/internal/ids"
)

// TestPhase1Aux covers the phase-1 aux computation (paper Fig. 3
// lines 07-08) in isolation.
func TestPhase1Aux(t *testing.T) {
	l12 := ids.NewSet(1, 2)
	l34 := ids.NewSet(3, 4)
	const n = 5

	t.Run("no majority", func(t *testing.T) {
		msgs := map[ids.ProcID]phase1Msg{
			1: {R: 1, L: l12, Est: 10},
			2: {R: 1, L: l34, Est: 20},
		}
		if _, bot := phase1Aux(msgs, n); !bot {
			t.Error("aux without a majority leader set must be ⊥")
		}
	})

	t.Run("majority without member estimate", func(t *testing.T) {
		// Three senders announce {1,2} but none of them *is* 1 or 2.
		msgs := map[ids.ProcID]phase1Msg{
			3: {R: 1, L: l12, Est: 30},
			4: {R: 1, L: l12, Est: 40},
			5: {R: 1, L: l12, Est: 50},
		}
		if _, bot := phase1Aux(msgs, n); !bot {
			t.Error("aux must be ⊥ when no member of the majority set was heard")
		}
	})

	t.Run("majority with member estimates", func(t *testing.T) {
		msgs := map[ids.ProcID]phase1Msg{
			1: {R: 1, L: l12, Est: 10},
			2: {R: 1, L: l12, Est: 20},
			5: {R: 1, L: l12, Est: 50},
		}
		aux, bot := phase1Aux(msgs, n)
		if bot {
			t.Fatal("aux = ⊥ with members heard")
		}
		if aux != 10 {
			t.Errorf("aux = %d, want the smallest-id member's estimate 10", aux)
		}
	})

	t.Run("majority counts senders not sets", func(t *testing.T) {
		// Two senders of {1,2} is not a majority of n=5.
		msgs := map[ids.ProcID]phase1Msg{
			1: {R: 1, L: l12, Est: 10},
			2: {R: 1, L: l12, Est: 20},
		}
		if _, bot := phase1Aux(msgs, n); !bot {
			t.Error("2 of 5 announcing the same set is not a majority")
		}
	})
}

func TestAnySenderIn(t *testing.T) {
	msgs := map[ids.ProcID]phase1Msg{
		2: {R: 1},
		5: {R: 1},
	}
	if !anySenderIn(msgs, ids.NewSet(5, 6)) {
		t.Error("sender 5 not found")
	}
	if anySenderIn(msgs, ids.NewSet(1, 3)) {
		t.Error("phantom sender found")
	}
	if anySenderIn(nil, ids.NewSet(1)) {
		t.Error("empty message set matched")
	}
}

func TestDistinctValuesSorted(t *testing.T) {
	o := NewOutcome()
	o.Propose(1, 30)
	o.Propose(2, 10)
	o.Propose(3, 20)
	o.Decide(1, Decision{Value: 30})
	o.Decide(2, Decision{Value: 10})
	o.Decide(3, Decision{Value: 20})
	got := o.DistinctValues()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Errorf("DistinctValues = %v, want sorted [10 20 30]", got)
	}
}

func TestAllDecidedEmptyCorrectSet(t *testing.T) {
	o := NewOutcome()
	if !o.AllDecided(ids.EmptySet())() {
		t.Error("vacuously true predicate returned false")
	}
}
