package agreement

import (
	"fmt"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/node"
	"fdgrid/internal/rbcast"
	"fdgrid/internal/sim"
)

// Message tags of the ◇S-based consensus protocol, interned once at
// package load.
var (
	tagDSEst      = sim.Intern("dsc.est")
	tagDSEcho     = sim.Intern("dsc.echo")
	tagDSDecision = sim.Intern("dsc.decision")
)

type dsEstMsg struct {
	R   int
	Est Value
}

type dsEchoMsg struct {
	R   int
	Aux Value
	Bot bool
}

// ConsensusDS runs a rotating-coordinator ◇S-based consensus on one
// process — the quorum-based protocol of Mostefaoui & Raynal (paper
// ref. [18]) that the paper cites as the ancestor of its Fig. 3
// algorithm. It requires t < n/2 and a suspector of class ◇S (= ◇S_n,
// whose accuracy scope covers every process).
//
// Round r (coordinator c = ((r−1) mod n) + 1):
//
//	phase 1: c broadcasts EST(r, est_c); everyone waits for it or for
//	         c ∈ suspected_i, setting aux to est_c or ⊥;
//	phase 2: broadcast ECHO(r, aux); wait for n−t echoes. All non-⊥
//	         echoes of a round carry c's value v: if no ⊥ was received,
//	         R-broadcast DECISION(v); if some non-⊥ arrived, adopt v.
//
// Safety comes from quorum intersection (two sets of n−t senders share a
// process when t < n/2); termination from the round where c is the
// eventually-never-suspected correct process.
func ConsensusDS(nd *node.Node, rb *rbcast.Layer, susp fd.Suspector, v Value, out *Outcome) Value {
	env := nd.Env()
	n, t, me := env.N(), env.T(), env.ID()
	if 2*t >= n {
		panic(fmt.Sprintf("agreement: ConsensusDS requires t < n/2, got n=%d t=%d", n, t))
	}
	out.Propose(me, v)

	est := v
	r := 0
	coordEst := make(map[int]Value)
	echoes := make(map[int]map[ids.ProcID]dsEchoMsg)
	var decided *Value

	handle := func(m sim.Message) {
		switch m.Tag {
		case tagDSEst:
			p, ok := m.Payload.(dsEstMsg)
			if !ok {
				panic(fmt.Sprintf("agreement: est payload %T", m.Payload))
			}
			coordOf := ids.ProcID((p.R-1)%n + 1)
			if m.From == coordOf {
				coordEst[p.R] = p.Est
			}
		case tagDSEcho:
			p, ok := m.Payload.(dsEchoMsg)
			if !ok {
				panic(fmt.Sprintf("agreement: echo payload %T", m.Payload))
			}
			if echoes[p.R] == nil {
				echoes[p.R] = make(map[ids.ProcID]dsEchoMsg, n)
			}
			echoes[p.R][m.From] = p
		case tagDSDecision:
			p, ok := m.Payload.(decisionMsg)
			if !ok {
				panic(fmt.Sprintf("agreement: decision payload %T", m.Payload))
			}
			if decided == nil {
				val := p.Val
				decided = &val
			}
		}
	}

	rec := env.Trace()
	for decided == nil {
		r++
		c := ids.ProcID((r-1)%n + 1)
		rec.Round(int64(env.Now()), int(me), r, ids.NewSet(c))

		// Phase 1: learn the coordinator's estimate or suspect it.
		if me == c {
			env.Broadcast(tagDSEst, dsEstMsg{R: r, Est: est})
		}
		nd.WaitUntil(func() bool {
			if decided != nil {
				return true
			}
			if _, ok := coordEst[r]; ok {
				return true
			}
			return susp.Suspected(me).Contains(c)
		}, handle)
		if decided != nil {
			break
		}
		aux, bot := Value(0), true
		if v, ok := coordEst[r]; ok {
			aux, bot = v, false
		}

		// Phase 2: exchange echoes.
		env.Broadcast(tagDSEcho, dsEchoMsg{R: r, Aux: aux, Bot: bot})
		nd.WaitUntil(func() bool {
			return decided != nil || len(echoes[r]) >= n-t
		}, handle)
		if decided != nil {
			break
		}
		sawBot, sawVal := false, false
		var val Value
		// Scan in identity order (not map order) so runs are replayable;
		// all non-⊥ echoes of a round carry the coordinator's estimate,
		// but a deterministic pick keeps that a non-assumption.
		for q := 1; q <= n; q++ {
			e, ok := echoes[r][ids.ProcID(q)]
			if !ok {
				continue
			}
			if e.Bot {
				sawBot = true
			} else {
				val, sawVal = e.Aux, true
			}
		}
		if sawVal {
			est = val
		}
		if sawVal && !sawBot {
			rb.Broadcast(tagDSDecision, decisionMsg{Val: est})
			nd.WaitUntil(func() bool { return decided != nil }, handle)
		}
	}

	rec.Decide(int64(env.Now()), int(me), r, int64(*decided))
	out.Decide(me, Decision{Value: *decided, Round: r, At: env.Now()})
	return *decided
}

// ConsensusDSMain returns a process main running ConsensusDS over a fresh
// rbcast layer.
func ConsensusDSMain(susp fd.Suspector, v Value, out *Outcome) func(*sim.Env) {
	return func(env *sim.Env) {
		rb := rbcast.New(env)
		nd := node.New(env, rb)
		ConsensusDS(nd, rb, susp, v, out)
		nd.RunForever()
	}
}

// Consensus runs the Ω-based (leader-based) consensus of paper ref. [20]:
// it is exactly the Fig. 3 algorithm instantiated with z = k = 1, as the
// paper notes. Provided as a named entry point for the baselines.
func Consensus(nd *node.Node, rb *rbcast.Layer, leader fd.Leader, v Value, out *Outcome) Value {
	return KSet(nd, rb, leader, v, out)
}
