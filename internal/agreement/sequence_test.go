package agreement

import (
	"testing"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

func TestSeqInstanceOf(t *testing.T) {
	tags := seqTags(7)
	for _, tag := range []sim.Tag{tags.phase1, tags.phase2, tags.decision} {
		inst, ok := seqInstanceOf(tag)
		if !ok || inst != 7 {
			t.Errorf("seqInstanceOf(%q) = %d, %v", tag, inst, ok)
		}
	}
	for _, tag := range []string{"kset.phase1", "kseq.x.phase1", "kseq.3", "other"} {
		tag := sim.Intern(tag)
		if _, ok := seqInstanceOf(tag); ok {
			t.Errorf("seqInstanceOf(%q) accepted", tag)
		}
	}
}

// TestSequenceRunsManyInstances: R consecutive instances, every instance
// independently satisfies the agreement properties.
func TestSequenceRunsManyInstances(t *testing.T) {
	const (
		n = 5
		r = 5 // instances
	)
	for seed := int64(0); seed < 3; seed++ {
		cfg := sim.Config{
			N: n, T: 2, Seed: seed, MaxSteps: 4_000_000, GST: 500, Bandwidth: n,
			Crashes: map[ids.ProcID]sim.Time{4: 900},
		}
		sys := sim.MustNew(cfg)
		oracle := fd.NewOmega(sys, 2)
		outs := make([]*Outcome, r)
		for i := range outs {
			outs[i] = NewOutcome()
		}
		for p := 1; p <= n; p++ {
			id := ids.ProcID(p)
			vals := make([]Value, r)
			for i := range vals {
				vals[i] = Value(100*(i+1) + p)
			}
			sys.Spawn(id, SequenceMain(oracle, vals, outs))
		}
		rep := sys.Run(AllInstancesDecided(outs, sys.Pattern().Correct()))
		if !rep.StoppedEarly {
			for i, o := range outs {
				t.Logf("instance %d decisions: %v", i, o.Decisions())
			}
			t.Fatalf("seed %d: timed out", seed)
		}
		for i, o := range outs {
			if err := o.Check(sys.Pattern(), 2); err != nil {
				t.Errorf("seed %d instance %d: %v", seed, i, err)
			}
		}
	}
}

// TestSequenceZeroDegradation is the paper's §3.2 point made executable:
// with a perfect detector and only initial crashes, *every* instance of
// a repeated sequence decides in one round — past failures cost nothing.
func TestSequenceZeroDegradation(t *testing.T) {
	const (
		n = 7
		r = 4
	)
	for seed := int64(0); seed < 3; seed++ {
		cfg := sim.Config{
			N: n, T: 3, Seed: seed, MaxSteps: 4_000_000, GST: 0, Bandwidth: n,
			Crashes: map[ids.ProcID]sim.Time{2: 0, 6: 0},
		}
		sys := sim.MustNew(cfg)
		oracle := fd.NewOmega(sys, 2, fd.WithStabilizeAt(0), fd.WithTrusted(ids.NewSet(1, 4)))
		outs := make([]*Outcome, r)
		for i := range outs {
			outs[i] = NewOutcome()
		}
		for p := 1; p <= n; p++ {
			id := ids.ProcID(p)
			vals := make([]Value, r)
			for i := range vals {
				vals[i] = Value(100*(i+1) + p)
			}
			sys.Spawn(id, SequenceMain(oracle, vals, outs))
		}
		rep := sys.Run(AllInstancesDecided(outs, sys.Pattern().Correct()))
		if !rep.StoppedEarly {
			t.Fatalf("seed %d: timed out", seed)
		}
		for i, o := range outs {
			if err := o.Check(sys.Pattern(), 2); err != nil {
				t.Fatalf("seed %d instance %d: %v", seed, i, err)
			}
			for p, d := range o.Decisions() {
				if d.Round != 1 {
					t.Errorf("seed %d instance %d: %v decided in round %d (degradation!)",
						seed, i, p, d.Round)
				}
			}
		}
	}
}

func TestRunSequenceValidatesLengths(t *testing.T) {
	cfg := sim.Config{N: 3, T: 1, Seed: 1, MaxSteps: 10_000}
	sys := sim.MustNew(cfg)
	oracle := fd.NewOmega(sys, 1)
	caught := make(chan bool, 1)
	sys.Spawn(1, func(env *sim.Env) {
		defer func() { caught <- recover() != nil }()
		SequenceMain(oracle, make([]Value, 2), make([]*Outcome, 3))(env)
	})
	func() {
		defer func() { recover() }() // sim re-raises the main's panic
		sys.Run(func() bool { return len(caught) > 0 })
	}()
	if !<-caught {
		t.Error("mismatched lengths did not panic")
	}
}
