package agreement

import (
	"fmt"
	"strconv"
	"strings"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/node"
	"fdgrid/internal/rbcast"
	"fdgrid/internal/sim"
)

// The paper motivates zero-degradation by repeated use: "it means that
// future executions do not suffer from past process failures as soon as
// the failure detector behaves perfectly" (§3.2). RunSequence makes that
// executable: it runs consecutive, independent instances of the Fig. 3
// algorithm on one process, with instance-tagged messages, buffering
// messages that arrive from instances this process has not reached yet.

// seqPrefix namespaces instance-tagged messages: "kseq.<i>.<tag>".
const seqPrefix = "kseq."

func seqTags(inst int) ksetTags {
	p := fmt.Sprintf("%s%d.", seqPrefix, inst)
	return ksetTags{
		phase1:   sim.Intern(p + "phase1"),
		phase2:   sim.Intern(p + "phase2"),
		decision: sim.Intern(p + "decision"),
	}
}

// seqInstanceOf extracts the instance number of an instance-tagged
// message; ok is false for foreign tags. Parsing goes through the
// interned name — only the stash path of a sequence run pays it.
func seqInstanceOf(t sim.Tag) (int, bool) {
	tag := t.String()
	if !strings.HasPrefix(tag, seqPrefix) {
		return 0, false
	}
	rest := tag[len(seqPrefix):]
	dot := strings.IndexByte(rest, '.')
	if dot < 0 {
		return 0, false
	}
	inst, err := strconv.Atoi(rest[:dot])
	if err != nil {
		return 0, false
	}
	return inst, true
}

// RunSequence runs len(vals) consecutive k-set agreement instances,
// proposing vals[i] in instance i and recording its decisions in
// outs[i]. It returns this process's decisions. All processes of the
// run must use the same number of instances.
func RunSequence(nd *node.Node, rb *rbcast.Layer, oracle fd.Leader, vals []Value, outs []*Outcome) []Value {
	if len(vals) != len(outs) {
		panic(fmt.Sprintf("agreement: %d values but %d outcomes", len(vals), len(outs)))
	}
	future := make(map[int][]sim.Message)
	results := make([]Value, len(vals))
	for i := range vals {
		replay := future[i]
		delete(future, i)
		stash := func(m sim.Message) bool {
			inst, ok := seqInstanceOf(m.Tag)
			if !ok || inst == i {
				return false // the instance's own (or foreign) traffic
			}
			if inst > i {
				future[inst] = append(future[inst], m)
			}
			return true // consumed: stale instances are simply dropped
		}
		results[i] = ksetRun(nd, rb, oracle, vals[i], outs[i], seqTags(i), replay, stash)
	}
	return results
}

// SequenceMain returns a process main running RunSequence over a fresh
// stack.
func SequenceMain(oracle fd.Leader, vals []Value, outs []*Outcome) func(*sim.Env) {
	return func(env *sim.Env) {
		rb := rbcast.New(env)
		nd := node.New(env, rb)
		RunSequence(nd, rb, oracle, vals, outs)
		nd.RunForever()
	}
}

// AllInstancesDecided returns a stop predicate over a whole sequence.
func AllInstancesDecided(outs []*Outcome, correct ids.Set) func() bool {
	preds := make([]func() bool, len(outs))
	for i, o := range outs {
		preds[i] = o.AllDecided(correct)
	}
	return func() bool {
		for _, p := range preds {
			if !p() {
				return false
			}
		}
		return true
	}
}
