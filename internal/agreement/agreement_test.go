package agreement

import (
	"testing"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/node"
	"fdgrid/internal/rbcast"
	"fdgrid/internal/sim"
)

// Local aliases keep test bodies compact.
var (
	rbcastNew = rbcast.New
	nodeNew   = func(env *sim.Env, rb *rbcast.Layer) *node.Node { return node.New(env, rb) }
)

// runKSet wires n processes with a ground-truth Ω_z oracle and runs the
// Fig. 3 algorithm until all correct processes decide (or MaxSteps).
func runKSet(t *testing.T, cfg sim.Config, z int, opts ...fd.Option) (*Outcome, sim.Report) {
	t.Helper()
	sys := sim.MustNew(cfg)
	oracle := fd.NewOmega(sys, z, opts...)
	out := NewOutcome()
	for p := 1; p <= cfg.N; p++ {
		id := ids.ProcID(p)
		sys.Spawn(id, KSetMain(oracle, Value(100+p), out))
	}
	rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
	return out, rep
}

func TestKSetSolvesKSetAgreement(t *testing.T) {
	cases := []struct {
		name    string
		n, tt   int
		z, k    int
		crashes map[ids.ProcID]sim.Time
		gst     sim.Time
	}{
		{"consensus-no-crash", 5, 2, 1, 1, nil, 0},
		{"consensus-crashes", 5, 2, 1, 1, map[ids.ProcID]sim.Time{2: 0, 4: 700}, 1500},
		{"2set", 7, 3, 2, 2, map[ids.ProcID]sim.Time{1: 300}, 1000},
		{"3set-heavy-crash", 7, 3, 3, 3, map[ids.ProcID]sim.Time{1: 0, 2: 200, 3: 900}, 1200},
		{"z-less-than-k", 9, 4, 2, 4, map[ids.ProcID]sim.Time{5: 100}, 800},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				cfg := sim.Config{
					N: tc.n, T: tc.tt, Seed: seed, MaxSteps: 400_000,
					GST: tc.gst, Crashes: tc.crashes,
				}
				out, rep := runKSet(t, cfg, tc.z)
				if !rep.StoppedEarly {
					t.Fatalf("seed %d: run timed out; decisions: %v", seed, out.Decisions())
				}
				if err := out.Check(sys2pattern(cfg), tc.k); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// sys2pattern rebuilds the pattern of a config (cheap helper: patterns
// are pure functions of the config).
func sys2pattern(cfg sim.Config) *sim.Pattern {
	return sim.MustNew(cfg).Pattern()
}

// TestKSetOracleEfficiency: with a perfect oracle and no crashes, every
// process decides in round 1 (two communication steps), §3.2.
func TestKSetOracleEfficiency(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cfg := sim.Config{N: 7, T: 3, Seed: seed, MaxSteps: 200_000, GST: 0}
		out, rep := runKSet(t, cfg, 2, fd.WithStabilizeAt(0))
		if !rep.StoppedEarly {
			t.Fatalf("seed %d: timed out", seed)
		}
		for p, d := range out.Decisions() {
			if d.Round != 1 {
				t.Errorf("seed %d: %v decided in round %d, want 1", seed, p, d.Round)
			}
		}
	}
}

// TestKSetZeroDegradation: perfect oracle, crashes only at time 0 —
// still one round (§3.2). The perfect oracle's trusted set must exclude
// the initially crashed processes for the detector to be "perfect".
func TestKSetZeroDegradation(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cfg := sim.Config{
			N: 7, T: 3, Seed: seed, MaxSteps: 200_000, GST: 0,
			Crashes: map[ids.ProcID]sim.Time{1: 0, 4: 0},
		}
		out, rep := runKSet(t, cfg, 2, fd.WithStabilizeAt(0), fd.WithTrusted(ids.NewSet(2, 5)))
		if !rep.StoppedEarly {
			t.Fatalf("seed %d: timed out", seed)
		}
		for p, d := range out.Decisions() {
			if d.Round != 1 {
				t.Errorf("seed %d: %v decided in round %d, want 1", seed, p, d.Round)
			}
		}
	}
}

// TestKSetWithLateCrashesAndAnarchy is the stress case: late GST, late
// crashes, hostile oracle.
func TestKSetStress(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		cfg := sim.Config{
			N: 9, T: 4, Seed: seed, MaxSteps: 1_000_000, GST: 3_000,
			Crashes: map[ids.ProcID]sim.Time{2: 1500, 7: 2500, 9: 50, 3: 0},
		}
		out, rep := runKSet(t, cfg, 3)
		if !rep.StoppedEarly {
			t.Fatalf("seed %d: timed out", seed)
		}
		if err := out.Check(sys2pattern(cfg), 3); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestKSetRequiresMajority(t *testing.T) {
	sys := sim.MustNew(sim.Config{N: 4, T: 2, Seed: 1, MaxSteps: 1000})
	oracle := fd.NewOmega(sys, 1)
	out := NewOutcome()
	caught := make(chan bool, 1)
	sys.Spawn(1, func(env *sim.Env) {
		defer func() {
			caught <- recover() != nil
		}()
		KSetMain(oracle, 1, out)(env)
	})
	sys.Run(func() bool { return len(caught) > 0 })
	if !<-caught {
		t.Error("KSet with t ≥ n/2 did not panic")
	}
}

func TestConsensusDS(t *testing.T) {
	cases := []struct {
		name    string
		n, tt   int
		crashes map[ids.ProcID]sim.Time
		gst     sim.Time
	}{
		{"no-crash", 5, 2, nil, 0},
		{"initial-crash", 5, 2, map[ids.ProcID]sim.Time{1: 0}, 500},
		{"late-crashes", 7, 3, map[ids.ProcID]sim.Time{2: 400, 5: 900, 7: 0}, 2000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				cfg := sim.Config{
					N: tc.n, T: tc.tt, Seed: seed, MaxSteps: 600_000,
					GST: tc.gst, Crashes: tc.crashes,
				}
				sys := sim.MustNew(cfg)
				// ◇S = ◇S_n: accuracy scope covers all processes.
				susp := fd.NewEvtS(sys, tc.n)
				out := NewOutcome()
				for p := 1; p <= tc.n; p++ {
					sys.Spawn(ids.ProcID(p), ConsensusDSMain(susp, Value(10*p), out))
				}
				rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
				if !rep.StoppedEarly {
					t.Fatalf("seed %d: timed out; decisions %v", seed, out.Decisions())
				}
				if err := out.Check(sys.Pattern(), 1); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestConsensusAliasMatchesKSet(t *testing.T) {
	cfg := sim.Config{N: 5, T: 2, Seed: 3, MaxSteps: 300_000, GST: 200}
	sys := sim.MustNew(cfg)
	oracle := fd.NewOmega(sys, 1)
	out := NewOutcome()
	for p := 1; p <= cfg.N; p++ {
		id := ids.ProcID(p)
		sys.Spawn(id, func(env *sim.Env) {
			rb := rbcastNew(env)
			nd := nodeNew(env, rb)
			Consensus(nd, rb, oracle, Value(int(id)), out)
			nd.RunForever()
		})
	}
	rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
	if !rep.StoppedEarly {
		t.Fatal("timed out")
	}
	if err := out.Check(sys.Pattern(), 1); err != nil {
		t.Error(err)
	}
}

func TestOutcomeBookkeeping(t *testing.T) {
	o := NewOutcome()
	o.Propose(1, 10)
	o.Propose(2, 20)
	o.Decide(1, Decision{Value: 10, Round: 2})
	o.Decide(1, Decision{Value: 10, Round: 3}) // same value: fine
	if got := len(o.Decisions()); got != 1 {
		t.Errorf("Decisions() has %d entries", got)
	}
	if got := o.MaxRound(); got != 2 {
		t.Errorf("MaxRound() = %d", got)
	}
	if got := o.DistinctValues(); len(got) != 1 || got[0] != 10 {
		t.Errorf("DistinctValues() = %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double propose did not panic")
			}
		}()
		o.Propose(1, 99)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("conflicting decide did not panic")
			}
		}()
		o.Decide(1, Decision{Value: 11})
	}()
}

func TestOutcomeCheckFailures(t *testing.T) {
	pat := sys2pattern(sim.Config{N: 3, T: 1, MaxSteps: 10})
	// Validity violation.
	o := NewOutcome()
	o.Propose(1, 1)
	o.Propose(2, 2)
	o.Propose(3, 3)
	o.Decide(1, Decision{Value: 99})
	if err := o.Check(pat, 1); err == nil {
		t.Error("validity violation accepted")
	}
	// k-agreement violation.
	o2 := NewOutcome()
	for p := 1; p <= 3; p++ {
		o2.Propose(ids.ProcID(p), Value(p))
		o2.Decide(ids.ProcID(p), Decision{Value: Value(p)})
	}
	if err := o2.Check(pat, 2); err == nil {
		t.Error("3 distinct decisions accepted at k=2")
	}
	if err := o2.Check(pat, 3); err != nil {
		t.Errorf("3-set agreement rejected: %v", err)
	}
	// Termination violation.
	o3 := NewOutcome()
	o3.Propose(1, 1)
	o3.Decide(1, Decision{Value: 1})
	if err := o3.Check(pat, 1); err == nil {
		t.Error("missing decisions accepted")
	}
}

// TestKSetDecisionsAtMostZ: with a hostile Ω_z whose final set holds z
// distinct correct processes and distinct proposals, decisions stay ≤ z
// (the agreement bound is governed by z, not luck).
func TestKSetDecisionsBound(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		cfg := sim.Config{N: 7, T: 3, Seed: seed, MaxSteps: 400_000, GST: 2_000}
		out, rep := runKSet(t, cfg, 3)
		if !rep.StoppedEarly {
			t.Fatalf("seed %d: timed out", seed)
		}
		if got := len(out.DistinctValues()); got > 3 {
			t.Errorf("seed %d: %d distinct values decided, z=3", seed, got)
		}
	}
}
