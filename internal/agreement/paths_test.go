package agreement

import (
	"testing"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// TestKSetLeaderChangeUnblocks drives the Fig. 3 wait
// "phase1 from p ∈ L_i OR L_i ≠ trusted_i" down its second branch
// deterministically: the scripted Ω first points at an initially-crashed
// process (no phase1 will ever arrive from it), then switches to a
// correct leader. The protocol must ride the oracle change out of the
// wait, finish round 1 with aux = ⊥, and decide in a later round.
func TestKSetLeaderChangeUnblocks(t *testing.T) {
	const n = 5
	cfg := sim.Config{
		N: n, T: 2, Seed: 31, MaxSteps: 2_000_000, GST: 0, Bandwidth: n,
		Crashes: map[ids.ProcID]sim.Time{4: 0},
	}
	sys := sim.MustNew(cfg)
	oracle := fd.NewScriptedLeader(sys, []fd.LeaderStep{
		{At: 0, Common: ids.NewSet(4)},     // dead leader: wait must stall
		{At: 3_000, Common: ids.NewSet(1)}, // switch: wait unblocks on L_i ≠ trusted_i
	})
	out := NewOutcome()
	for p := 1; p <= n; p++ {
		sys.Spawn(ids.ProcID(p), KSetMain(oracle, Value(p), out))
	}
	rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
	if !rep.StoppedEarly {
		t.Fatalf("timed out; decisions %v", out.Decisions())
	}
	if err := out.Check(sys.Pattern(), 1); err != nil {
		t.Fatal(err)
	}
	for p, d := range out.Decisions() {
		if d.Round < 2 {
			t.Errorf("%v decided in round %d; the dead-leader round should not decide", p, d.Round)
		}
		if d.At <= 3_000 {
			t.Errorf("%v decided at vtick %d, before the oracle switched", p, d.At)
		}
	}
}

// TestKSetNoMajorityLeaderSetGivesBot: when processes report distinct
// leader sets (no majority), phase 1 yields ⊥ and no decision happens in
// that round; once the script converges, a decision follows.
func TestKSetNoMajorityLeaderSetGivesBot(t *testing.T) {
	const n = 5
	cfg := sim.Config{
		N: n, T: 2, Seed: 33, MaxSteps: 2_000_000, GST: 0, Bandwidth: n,
	}
	sys := sim.MustNew(cfg)
	perProc := map[ids.ProcID]ids.Set{
		1: ids.NewSet(1), 2: ids.NewSet(2), 3: ids.NewSet(3),
		4: ids.NewSet(4), 5: ids.NewSet(5),
	}
	oracle := fd.NewScriptedLeader(sys, []fd.LeaderStep{
		{At: 0, PerProc: perProc, Common: ids.NewSet(1)},
		{At: 4_000, Common: ids.NewSet(2)},
	})
	out := NewOutcome()
	for p := 1; p <= n; p++ {
		sys.Spawn(ids.ProcID(p), KSetMain(oracle, Value(10*p), out))
	}
	rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
	if !rep.StoppedEarly {
		t.Fatal("timed out")
	}
	if err := out.Check(sys.Pattern(), 1); err != nil {
		t.Fatal(err)
	}
	for p, d := range out.Decisions() {
		if d.Value != 20 {
			t.Errorf("%v decided %d, want the converged leader's estimate 20", p, d.Value)
		}
	}
}

// TestConsensusDSCoordinatorCrash: the rotating-coordinator baseline
// survives its coordinator crashing mid-round (suspicion unblocks the
// wait) — the classic unreliable-failure-detector scenario.
func TestConsensusDSCoordinatorCrash(t *testing.T) {
	const n = 5
	for seed := int64(0); seed < 4; seed++ {
		cfg := sim.Config{
			N: n, T: 2, Seed: seed, MaxSteps: 2_000_000, GST: 800, Bandwidth: n,
			// Process 1 coordinates round 1; crash it immediately.
			Crashes: map[ids.ProcID]sim.Time{1: 0},
		}
		sys := sim.MustNew(cfg)
		susp := fd.NewEvtS(sys, n)
		out := NewOutcome()
		for p := 1; p <= n; p++ {
			sys.Spawn(ids.ProcID(p), ConsensusDSMain(susp, Value(p), out))
		}
		rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
		if !rep.StoppedEarly {
			t.Fatalf("seed %d: timed out", seed)
		}
		if err := out.Check(sys.Pattern(), 1); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		// The decided value must come from a live proposer (validity is
		// checked against all proposals; with p1 dead its value can
		// only be decided if some round-1 echo carried it — possible
		// only if p1's EST escaped before the crash, which the initial
		// crash precludes).
		for p, d := range out.Decisions() {
			if d.Value == 1 {
				t.Errorf("seed %d: %v decided the initially-crashed proposer's value", seed, p)
			}
		}
	}
}
