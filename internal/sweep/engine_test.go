package sweep

import (
	"bytes"
	"fmt"
	"testing"
)

// smokeMatrix is a small but real workload: the two-wheels addition over
// two class combos, two seeds, with an early-stop predicate — it
// exercises the simulator's wake hints, clock jumps, sparse tracing and
// the trace checkers.
func smokeMatrix() Matrix {
	return Matrix{
		Name: "smoke", Protocol: "two-wheels",
		Seeds: []int64{0, 1}, Sizes: []Size{{N: 5, T: 2}},
		Patterns: []CrashPattern{{Name: "late-crash", Crashes: []CrashSpec{{Proc: 4, At: 700}}}},
		Combos:   []Combo{{X: 2, Y: 1}, {X: 1, Y: 1}},
		GST:      500, MaxSteps: 100_000,
		Params: map[string]int64{"stable_for": 8_000, "margin": 5_000},
	}
}

// TestDeterministicReport is the regression guard for the scheduler
// refactor: running the same Matrix twice — with different worker counts
// — must produce byte-identical canonical reports. Any nondeterminism in
// the lockstep engine (delivery order, proc interleaving, map iteration
// in a protocol) shows up here.
func TestDeterministicReport(t *testing.T) {
	m := smokeMatrix()
	r1, err := Run(m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(m, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.OK() {
		for _, c := range r1.Cells {
			t.Logf("cell %d: %s %s", c.Index, c.Verdict, c.Detail)
		}
		t.Fatal("smoke matrix failed")
	}
	j1, err := r1.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r2.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("reports differ between runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", j1, j2)
	}
}

// TestDeterministicAgreement repeats the determinism check on an
// agreement workload (decided values, rounds and message counts are all
// part of the canonical bytes).
func TestDeterministicAgreement(t *testing.T) {
	m := Matrix{
		Name: "kset-smoke", Protocol: "kset-omega",
		Seeds: []int64{0, 1, 2}, Sizes: []Size{{N: 5, T: 2}},
		Patterns: []CrashPattern{{Name: "late-crash", Crashes: []CrashSpec{{Proc: 0, At: 400}}}},
		Combos:   []Combo{{Z: 2}},
		GST:      300, MaxSteps: 500_000,
	}
	r1, err := Run(m, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.OK() {
		t.Fatalf("kset smoke failed: %s", r1.Summary())
	}
	j1, _ := r1.CanonicalJSON()
	j2, _ := r2.CanonicalJSON()
	if !bytes.Equal(j1, j2) {
		t.Fatal("agreement reports differ between runs")
	}
}

// TestSmokeN256 runs one kset-omega cell at the simulator's size cap:
// n = 256 is a first-class size for the batched delivery path, and this
// single-cell smoke keeps it exercised in every `go test` run (the big
// EXP-SCALE cells only run in the experiments suite).
func TestSmokeN256(t *testing.T) {
	m := Matrix{
		Name: "kset-smoke-256", Protocol: "kset-omega",
		Seeds: []int64{0}, Sizes: []Size{{N: 256, T: 127}},
		Patterns: []CrashPattern{{Name: "late-crash", Crashes: []CrashSpec{{Proc: 0, At: 400}}}},
		Combos:   []Combo{{Z: 2}},
		GST:      300, MaxSteps: 4_000_000,
	}
	r, err := Run(m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 1 {
		t.Fatalf("expected 1 cell, got %d", len(r.Cells))
	}
	if !r.OK() {
		t.Fatalf("n=256 smoke failed: %s", r.Summary())
	}
}

// TestResultsOrderedByIndex: the report lists cells in matrix order no
// matter which worker finished first.
func TestResultsOrderedByIndex(t *testing.T) {
	m := smokeMatrix()
	r, err := Run(m, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range r.Cells {
		if c.Index != i {
			t.Fatalf("cell at position %d has index %d", i, c.Index)
		}
	}
}

// TestPanickingCellIsContained: a protocol bug in one cell yields one
// errored cell, not a crashed sweep.
func TestPanickingCellIsContained(t *testing.T) {
	m := Matrix{Name: "boom", Protocol: "p", Seeds: []int64{0, 1},
		Sizes: []Size{{N: 3, T: 1}}, MaxSteps: 100}
	r, err := Run(m, Options{Runner: func(c *Cell, res *CellResult) {
		if c.Seed == 1 {
			panic(fmt.Sprintf("bug in seed %d", c.Seed))
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Passed != 1 || r.Errored != 1 {
		t.Fatalf("passed=%d errored=%d, want 1/1", r.Passed, r.Errored)
	}
	if r.Cells[1].Verdict != Errored || r.Cells[1].Detail == "" {
		t.Fatalf("panicking cell reported as %+v", r.Cells[1])
	}
	if r.OK() {
		t.Fatal("report with an errored cell claims OK")
	}
}

// TestWallClockExcludedFromCanonicalBytes: WallNS varies run to run and
// must not leak into the canonical report.
func TestWallClockExcludedFromCanonicalBytes(t *testing.T) {
	m := smokeMatrix()
	r, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := r.CanonicalJSON()
	if bytes.Contains(j, []byte("wall")) || bytes.Contains(j, []byte("Wall")) {
		t.Fatal("canonical JSON mentions wall-clock fields")
	}
	if r.WallNS <= 0 {
		t.Fatal("report did not record wall-clock cost")
	}
	for _, c := range r.Cells {
		if c.WallNS <= 0 {
			t.Fatalf("cell %d did not record wall-clock cost", c.Index)
		}
	}
}
