// Package sweep is the parallel scenario-sweep engine: it expands a
// declarative Matrix — dimensions: seeds × system sizes × crash patterns
// × failure-detector class combinations — into concrete cells, fans the
// cells out across a worker pool (each cell runs its own isolated
// sim.System), and aggregates the per-cell results into a reproducible
// JSON report.
//
// Because the simulator is lockstep-deterministic, a cell's result is a
// pure function of the cell: running the same Matrix twice yields
// byte-identical canonical reports, regardless of worker count or
// scheduling. That is what makes a sweep a reproducible experiment
// rather than a load test.
package sweep

import (
	"fmt"

	"fdgrid/internal/adversary"
	"fdgrid/internal/core"
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
	"fdgrid/internal/trace"
)

// Size is one system-size point: n processes, resilience bound t.
type Size struct {
	N int `json:"n"`
	T int `json:"t"`
}

// CrashSpec schedules one crash. Proc > 0 names the process absolutely;
// Proc <= 0 is relative to the cell's size (0 = p_n, -1 = p_{n-1}, …),
// so one pattern can say "crash the last process at 400" across sizes.
type CrashSpec struct {
	Proc int      `json:"proc"`
	At   sim.Time `json:"at"`
}

// CrashPattern is one adversary dimension point: scheduled crashes plus
// optional scripted message holds.
type CrashPattern struct {
	Name    string      `json:"name"`
	Crashes []CrashSpec `json:"crashes,omitempty"`
	Holds   []sim.Hold  `json:"holds,omitempty"`
}

// Combo is one failure-detector dimension point. Which fields matter
// depends on the protocol under test: grid cells use Family/Param (a
// single grid class), addition cells use the X and Y scopes, Z overrides
// the target set size / agreement degree (0 = derive from the paper's
// formulas). Trusted optionally pins an Ω oracle's final set; Name
// selects protocol variants (e.g. the register substrate of add-s).
type Combo struct {
	Name    string      `json:"name,omitempty"`
	Family  core.Family `json:"family,omitempty"`
	Param   int         `json:"param,omitempty"`
	X       int         `json:"x,omitempty"`
	Y       int         `json:"y,omitempty"`
	Z       int         `json:"z,omitempty"`
	Trusted []int       `json:"trusted,omitempty"`
	Region  []int       `json:"region,omitempty"` // adversary region E (irreducibility cells)
}

// set converts an []int field to a process set.
func set(ps []int) ids.Set {
	var s ids.Set
	for _, p := range ps {
		s = s.Add(ids.ProcID(p))
	}
	return s
}

// Class returns the grid class a Family/Param combo denotes.
func (c Combo) Class() core.Class { return core.Class{Fam: c.Family, Param: c.Param} }

// String renders a short label for tables.
func (c Combo) String() string {
	if c.Name != "" {
		return c.Name
	}
	if c.Family != 0 {
		return c.Class().String()
	}
	return fmt.Sprintf("x=%d,y=%d,z=%d", c.X, c.Y, c.Z)
}

// Matrix declares a scenario sweep: the protocol under test and the
// dimensions whose cross product forms the cells. Patterns and Combos
// may be left empty (one zero-value point each); Seeds and Sizes must be
// explicit.
type Matrix struct {
	// Name identifies the sweep in reports.
	Name string `json:"name"`
	// Protocol selects the registered cell runner (see runners.go).
	Protocol string `json:"protocol"`
	// Claim is the paper claim the sweep checks (report prose).
	Claim string `json:"claim,omitempty"`

	Seeds    []int64        `json:"seeds"`
	Sizes    []Size         `json:"sizes"`
	Patterns []CrashPattern `json:"patterns,omitempty"`
	Combos   []Combo        `json:"combos,omitempty"`

	// AdversaryFamilies declares generated adversary dimension points:
	// each family expands, per size, into concrete crash patterns via
	// adversary.ScheduleGen (deterministically — the same matrix always
	// sweeps the same schedules). Generated patterns follow the explicit
	// Patterns in the pattern dimension.
	AdversaryFamilies []adversary.Family `json:"adversary_families,omitempty"`

	// OracleFamilies declares generated oracle dimension points: each
	// family expands, per size, into concrete oracle scripts via
	// adversary.OracleGen (same deterministic-expansion contract as
	// AdversaryFamilies). A matrix without oracle families sweeps a
	// single "no generated oracle" point, leaving cell expansion
	// unchanged. Runners resolve a script into a scripted fd driver
	// (leader/suspector timelines) or ground-truth oracle parameters,
	// and tag every cell with the script's conformance verdict.
	OracleFamilies []adversary.OracleFamily `json:"oracle_families,omitempty"`

	// OraclePairFamilies declares generated paired-oracle dimension
	// points for the addition protocols (two-wheels, add-s), which read
	// two oracles at once. Each pair family expands per size into joint
	// scripts carrying one script per role (adversary.ExpandPair),
	// appended after the single-script expansions in the oracle
	// dimension — same deterministic-expansion and zero-point-when-
	// absent contract as OracleFamilies.
	OraclePairFamilies []adversary.OraclePairFamily `json:"oracle_pair_families,omitempty"`

	// GST and MaxSteps apply to every cell; Bandwidth 0 means "n".
	GST       sim.Time `json:"gst"`
	MaxSteps  sim.Time `json:"max_steps"`
	Bandwidth int      `json:"bandwidth,omitempty"`

	// Params carries protocol-specific knobs (margins, pacing marks,
	// instance counts, …), passed to every cell.
	Params map[string]int64 `json:"params,omitempty"`

	// TraceLevel selects decision tracing for every cell: "" or "off"
	// (the default — no recorder is attached and reports are
	// byte-identical to pre-tracing goldens), "decisions" (crashes,
	// oracle output changes, round commits, decides, wheel moves) or
	// "full" (adds per-tick delivery and hold-release volume). Traced
	// cells report trace_digest/trace_events; tracing never changes a
	// verdict or any other report field (see internal/trace).
	TraceLevel string `json:"trace_level,omitempty"`
}

// Cell is one concrete point of the matrix cross product.
type Cell struct {
	Index    int          `json:"index"`
	Matrix   string       `json:"matrix"`
	Protocol string       `json:"protocol"`
	Seed     int64        `json:"seed"`
	Size     Size         `json:"size"`
	Pattern  CrashPattern `json:"pattern"`
	Combo    Combo        `json:"combo"`

	// Oracle is the cell's generated oracle dimension point (the zero
	// value when the matrix declares no OracleFamilies).
	Oracle adversary.OracleScript `json:"oracle,omitempty"`

	GST       sim.Time         `json:"gst"`
	MaxSteps  sim.Time         `json:"max_steps"`
	Bandwidth int              `json:"bandwidth,omitempty"`
	Params    map[string]int64 `json:"params,omitempty"`

	// TraceLevel is the matrix's TraceLevel, copied per cell so a single
	// cell can be re-run traced (see Replay).
	TraceLevel string `json:"trace_level,omitempty"`

	// rec is the cell's decision-trace recorder, created by runCell when
	// TraceLevel asks for one and attached to the cell's System.
	rec *trace.Recorder
}

// Param returns a protocol knob with a default.
func (c *Cell) Param(name string, def int64) int64 {
	if v, ok := c.Params[name]; ok {
		return v
	}
	return def
}

// Config resolves the cell into a simulator configuration: relative
// crash specs are resolved against the cell's size, bandwidth 0 becomes
// n, and the result is validated by sim.New's rules.
func (c *Cell) Config() (sim.Config, error) {
	crashes := make(map[ids.ProcID]sim.Time, len(c.Pattern.Crashes))
	for _, cs := range c.Pattern.Crashes {
		p := cs.Proc
		if p <= 0 {
			p = c.Size.N + p
		}
		if p < 1 || p > c.Size.N {
			return sim.Config{}, fmt.Errorf("sweep: crash spec %+v resolves to process %d outside 1..%d", cs, p, c.Size.N)
		}
		if _, dup := crashes[ids.ProcID(p)]; dup {
			return sim.Config{}, fmt.Errorf("sweep: crash pattern %q schedules process %d twice", c.Pattern.Name, p)
		}
		crashes[ids.ProcID(p)] = cs.At
	}
	bw := c.Bandwidth
	if bw == 0 {
		bw = c.Size.N
	}
	return sim.Config{
		N:         c.Size.N,
		T:         c.Size.T,
		Seed:      c.Seed,
		MaxSteps:  c.MaxSteps,
		GST:       c.GST,
		Crashes:   crashes,
		Holds:     c.Pattern.Holds,
		Bandwidth: bw,
	}, nil
}

// System builds the cell's isolated simulator instance, with the
// cell's trace recorder (if any) attached.
func (c *Cell) System() (*sim.System, error) {
	cfg, err := c.Config()
	if err != nil {
		return nil, err
	}
	sys, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	if c.rec != nil {
		sys.TraceTo(c.rec)
	}
	return sys, nil
}

// patternsFor resolves the matrix's pattern dimension for one size: the
// explicit Patterns followed by the expansion of every adversary
// family. Sizes expand independently because generated victims and
// block splits depend on (n, t).
func (m *Matrix) patternsFor(size Size) ([]CrashPattern, error) {
	patterns := m.Patterns
	if len(m.AdversaryFamilies) > 0 {
		gen := adversary.NewScheduleGen(size.N, size.T)
		schedules, err := gen.ExpandAll(m.AdversaryFamilies)
		if err != nil {
			return nil, fmt.Errorf("sweep: matrix %q size n=%d: %w", m.Name, size.N, err)
		}
		// Clone before appending: the expansion must not scribble on the
		// caller's Patterns backing array across sizes.
		patterns = append(make([]CrashPattern, 0, len(m.Patterns)+len(schedules)), m.Patterns...)
		for _, s := range schedules {
			p := CrashPattern{Name: s.Name, Holds: s.Holds}
			for _, c := range s.Crashes {
				p.Crashes = append(p.Crashes, CrashSpec{Proc: int(c.P), At: c.At})
			}
			patterns = append(patterns, p)
		}
	}
	if len(patterns) == 0 {
		patterns = []CrashPattern{{Name: "none"}}
	}
	return patterns, nil
}

// oraclesFor resolves the matrix's generated-oracle dimension for one
// size: the expansion of every oracle family (singles, then pairs), or
// a single zero-value point when the matrix declares none of either.
// Sizes expand independently because drawn timelines and scopes depend
// on (n, t).
func (m *Matrix) oraclesFor(size Size) ([]adversary.OracleScript, error) {
	if len(m.OracleFamilies) == 0 && len(m.OraclePairFamilies) == 0 {
		return []adversary.OracleScript{{}}, nil
	}
	gen := adversary.NewOracleGen(size.N, size.T)
	scripts, err := gen.ExpandSuite(m.OracleFamilies, m.OraclePairFamilies)
	if err != nil {
		return nil, fmt.Errorf("sweep: matrix %q size n=%d: %w", m.Name, size.N, err)
	}
	return scripts, nil
}

// Cells expands the matrix into its cross product, in the documented
// deterministic order: sizes (outermost) × patterns (explicit, then
// generated) × combos × oracle scripts × seeds (innermost). Empty
// Patterns/Combos expand as a single zero-value point, as does an empty
// OracleFamilies list; empty Seeds or Sizes is an error — a sweep with
// no runs is almost always a bug in the matrix definition.
func (m *Matrix) Cells() ([]Cell, error) {
	if m.Protocol == "" {
		return nil, fmt.Errorf("sweep: matrix %q has no protocol", m.Name)
	}
	if len(m.Seeds) == 0 {
		return nil, fmt.Errorf("sweep: matrix %q has no seeds", m.Name)
	}
	if len(m.Sizes) == 0 {
		return nil, fmt.Errorf("sweep: matrix %q has no sizes", m.Name)
	}
	if m.MaxSteps <= 0 {
		return nil, fmt.Errorf("sweep: matrix %q has MaxSteps=%d", m.Name, m.MaxSteps)
	}
	if _, err := trace.ParseLevel(m.TraceLevel); err != nil {
		return nil, fmt.Errorf("sweep: matrix %q: %w", m.Name, err)
	}
	combos := m.Combos
	if len(combos) == 0 {
		combos = []Combo{{}}
	}
	cells := make([]Cell, 0, len(m.Sizes)*(len(m.Patterns)+1)*len(combos)*len(m.Seeds))
	for _, size := range m.Sizes {
		patterns, err := m.patternsFor(size)
		if err != nil {
			return nil, err
		}
		oracles, err := m.oraclesFor(size)
		if err != nil {
			return nil, err
		}
		for _, pat := range patterns {
			for _, combo := range combos {
				for _, oracle := range oracles {
					for _, seed := range m.Seeds {
						c := Cell{
							Index:      len(cells),
							Matrix:     m.Name,
							Protocol:   m.Protocol,
							Seed:       seed,
							Size:       size,
							Pattern:    pat,
							Combo:      combo,
							Oracle:     oracle,
							GST:        m.GST,
							MaxSteps:   m.MaxSteps,
							Bandwidth:  m.Bandwidth,
							Params:     m.Params,
							TraceLevel: m.TraceLevel,
						}
						if _, err := c.Config(); err != nil {
							return nil, err
						}
						cells = append(cells, c)
					}
				}
			}
		}
	}
	return cells, nil
}
