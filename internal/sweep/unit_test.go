package sweep

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestOwnedIndices pins the shard→cell-index mapping AssembleShardReport
// validates against.
func TestOwnedIndices(t *testing.T) {
	cases := []struct {
		shard Shard
		total int
		want  []int
	}{
		{Shard{}, 3, []int{0, 1, 2}},
		{Shard{Index: 0, Count: 2}, 5, []int{0, 2, 4}},
		{Shard{Index: 1, Count: 2}, 5, []int{1, 3}},
		{Shard{Index: 2, Count: 4}, 2, nil},
		{Shard{Index: 1, Count: 3}, 0, nil},
	}
	for _, c := range cases {
		got := c.shard.OwnedIndices(c.total)
		if len(got) != len(c.want) {
			t.Errorf("OwnedIndices(%+v, %d) = %v, want %v", c.shard, c.total, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("OwnedIndices(%+v, %d) = %v, want %v", c.shard, c.total, got, c.want)
				break
			}
		}
	}
}

// TestAssembleShardReport is the dispatcher's byte-identity foundation:
// reassembling a shard's streamed cells — in scrambled arrival order —
// must reproduce the canonical bytes of the locally sharded Run.
func TestAssembleShardReport(t *testing.T) {
	m := smokeMatrix()
	cells, err := m.Cells()
	if err != nil {
		t.Fatal(err)
	}
	total := len(cells)
	for _, s := range []Shard{{}, {Index: 0, Count: 2}, {Index: 1, Count: 2}, {Index: 2, Count: 3}} {
		ran, err := Run(m, Options{Shard: s})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ran.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		// Scramble arrival order: reverse.
		scrambled := make([]CellResult, 0, len(ran.Cells))
		for i := len(ran.Cells) - 1; i >= 0; i-- {
			scrambled = append(scrambled, ran.Cells[i])
		}
		asm, err := AssembleShardReport(m, s, total, scrambled)
		if err != nil {
			t.Fatalf("assemble shard %+v: %v", s, err)
		}
		got, err := asm.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("assembled shard %+v differs from locally run report:\n--- assembled ---\n%s\n--- run ---\n%s", s, got, want)
		}
	}
}

// TestAssembleShardReportRejects: wrong counts, duplicate indices and
// stray indices are errors, not silently wrong reports.
func TestAssembleShardReportRejects(t *testing.T) {
	m := smokeMatrix()
	r, err := Run(m, Options{Shard: Shard{Index: 0, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	cells, _ := m.Cells()
	total := len(cells)
	s := Shard{Index: 0, Count: 2}

	if _, err := AssembleShardReport(m, s, total, r.Cells[:len(r.Cells)-1]); err == nil {
		t.Error("short cell set accepted")
	}
	dup := append(append([]CellResult(nil), r.Cells...), r.Cells[0])
	if _, err := AssembleShardReport(m, s, total, dup); err == nil {
		t.Error("duplicate cell accepted")
	}
	stray := append([]CellResult(nil), r.Cells...)
	stray[0].Index = 1 // index owned by the other shard
	if _, err := AssembleShardReport(m, s, total, stray); err == nil {
		t.Error("stray cell index accepted")
	}
	if _, err := AssembleShardReport(m, Shard{Index: 5, Count: 2}, total, r.Cells); err == nil {
		t.Error("invalid shard accepted")
	}
}

// TestMergeRejectsOverlap: two parts covering the same cell index fail
// with an error that names the matrix and calls out the overlap.
func TestMergeRejectsOverlap(t *testing.T) {
	m := smokeMatrix()
	a, err := Run(m, Options{Shard: Shard{Index: 0, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, Options{Shard: Shard{Index: 1, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Overlap: part b carries a cell part a already owns.
	b.Cells = append(b.Cells, a.Cells[0])
	_, err = MergeReports([]*Report{a, b})
	if err == nil {
		t.Fatal("overlapping shards merged silently")
	}
	if !strings.Contains(err.Error(), "overlapping") || !strings.Contains(err.Error(), m.Name) {
		t.Errorf("overlap error not descriptive: %v", err)
	}
}

// TestMergeRejectsGap: parts that skip a cell index fail with an error
// that names the missing cell, whether or not shard metadata says how
// many cells to expect.
func TestMergeRejectsGap(t *testing.T) {
	m := smokeMatrix()
	a, err := Run(m, Options{Shard: Shard{Index: 0, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, Options{Shard: Shard{Index: 1, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Drop one of b's cells: total count (from shard metadata) no longer
	// matches.
	dropped := *b
	dropped.Cells = b.Cells[:len(b.Cells)-1]
	_, err = MergeReports([]*Report{a, &dropped})
	if err == nil {
		t.Fatal("merge with a missing cell accepted")
	}
	if !strings.Contains(err.Error(), m.Name) {
		t.Errorf("missing-cell error does not name the matrix: %v", err)
	}

	// Without shard metadata the count is trusted, so the gap must be
	// caught by the index walk instead: drop an interior cell (index 1).
	a2, b2 := *a, *b
	a2.Shard, b2.Shard = nil, nil
	b2.Cells = b.Cells[1:]
	_, err = MergeReports([]*Report{&a2, &b2})
	if err == nil {
		t.Fatal("gap in coverage merged silently")
	}
	if !strings.Contains(err.Error(), "gap") {
		t.Errorf("gap error not descriptive: %v", err)
	}
}

// TestOnResultStreamsEveryCell: the OnResult hook sees each completed
// cell exactly once, and the report is unaffected by the hook.
func TestOnResultStreamsEveryCell(t *testing.T) {
	m := smokeMatrix()
	var mu sync.Mutex
	seen := map[int]int{}
	r, err := Run(m, Options{Workers: 3, OnResult: func(c CellResult) {
		mu.Lock()
		seen[c.Index]++
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(r.Cells) {
		t.Fatalf("OnResult saw %d cells, report has %d", len(seen), len(r.Cells))
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("cell %d streamed %d times", i, n)
		}
	}
	plain, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := plain.CanonicalJSON()
	got, _ := r.CanonicalJSON()
	if !bytes.Equal(got, want) {
		t.Fatal("OnResult changed the canonical report")
	}
}

// TestRunCancellation: a context cancelled mid-run stops the pool,
// returns the completed cells as a consistent partial report alongside
// the context error, and leaks no worker goroutines.
func TestRunCancellation(t *testing.T) {
	m := Matrix{
		Name: "cancel", Protocol: "kset-omega",
		Seeds: []int64{0, 1, 2, 3, 4, 5, 6, 7}, Sizes: []Size{{N: 5, T: 2}},
		Combos: []Combo{{Z: 2}},
		GST:    300, MaxSteps: 500_000,
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var completedAtCancel atomic.Int64
	r, err := Run(m, Options{Workers: 2, Context: ctx, OnResult: func(CellResult) {
		if completedAtCancel.Add(1) == 1 {
			cancel() // cancel after the first cell lands
		}
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run returned err=%v, want context.Canceled", err)
	}
	if r == nil {
		t.Fatal("cancelled Run returned no partial report")
	}
	if len(r.Cells) == 0 || len(r.Cells) >= 8 {
		t.Fatalf("partial report has %d of 8 cells; want a strict, non-empty subset", len(r.Cells))
	}
	if got := r.Passed + r.Failed + r.Errored + r.ConfigErrors; got != len(r.Cells) {
		t.Fatalf("partial tallies cover %d cells, report has %d", got, len(r.Cells))
	}
	for i := 1; i < len(r.Cells); i++ {
		if r.Cells[i-1].Index >= r.Cells[i].Index {
			t.Fatal("partial cells not in ascending index order")
		}
	}

	// Worker-count assertion: Run joins its pool before returning, so
	// the goroutine count must settle back to the baseline (allow the
	// runtime a moment to retire exiting goroutines).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked by cancelled Run: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A cancelled context refuses new work outright but still returns
	// the (empty) report shape.
	already, cancelled := context.WithCancel(context.Background())
	cancelled()
	r2, err := Run(m, Options{Context: already})
	if !errors.Is(err, context.Canceled) || r2 == nil || len(r2.Cells) != 0 {
		t.Fatalf("pre-cancelled Run: report=%+v err=%v", r2, err)
	}
}
