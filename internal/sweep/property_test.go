package sweep

import (
	"math/rand"
	"testing"

	"fdgrid/internal/core"
	"fdgrid/internal/sim"
)

// randomKSetMatrix draws a random legal k-set sweep point: n ∈ 5..9 with
// t < n/2, a random grid line z, a random class on it, up to t crashes
// at random times, a random GST. The rng only builds the matrix; the
// runs themselves are deterministic per cell.
func randomKSetMatrix(rng *rand.Rand) Matrix {
	n := 5 + 2*rng.Intn(3) // 5, 7, 9
	t := (n - 1) / 2
	z := 1 + rng.Intn(t+1)
	line := core.GridLine(z, t)
	class := line[rng.Intn(len(line))]

	var crashes []CrashSpec
	used := map[int]bool{}
	for i := 0; i < rng.Intn(t+1); i++ {
		p := 1 + rng.Intn(n)
		if used[p] {
			continue
		}
		used[p] = true
		crashes = append(crashes, CrashSpec{Proc: p, At: sim.Time(rng.Intn(1_200))})
	}
	return Matrix{
		Name:     "prop",
		Protocol: "kset-grid",
		Seeds:    []int64{rng.Int63()},
		Sizes:    []Size{{N: n, T: t}},
		Patterns: []CrashPattern{{Name: "random", Crashes: crashes}},
		Combos:   []Combo{{Family: class.Fam, Param: class.Param, Z: z}},
		GST:      sim.Time(rng.Intn(800)),
		MaxSteps: 3_000_000,
	}
}

// TestKSetInvariantsOverRandomCells is the property test: for every cell
// of randomly drawn sweeps, the k-set agreement invariants must hold —
//
//   - termination: every correct process decides (the cell stops early
//     and records n−f decisions);
//   - k-agreement: at most z distinct values are decided;
//   - validity: every decided value was proposed (decided values are the
//     proposal ids, checked by the runner via Outcome.Check).
//
// The runner encodes the checks; this test asserts that no random point
// of the configuration space produces a failing or errored cell, and
// re-checks the structural invariants on the recorded results.
func TestKSetInvariantsOverRandomCells(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	rounds := 12
	if testing.Short() {
		rounds = 4
	}
	for i := 0; i < rounds; i++ {
		m := randomKSetMatrix(rng)
		r, err := Run(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range r.Cells {
			combo := c.Combo
			z := combo.Z
			if c.Verdict != Pass {
				t.Fatalf("round %d (%s z=%d, pattern %+v, seed %d): %s — %s",
					i, combo.Class(), z, m.Patterns[0].Crashes, c.Seed, c.Verdict, c.Detail)
			}
			if !c.StoppedEarly {
				t.Fatalf("round %d: cell did not terminate before its budget", i)
			}
			if len(c.Decided) == 0 || len(c.Decided) > z {
				t.Fatalf("round %d: %d distinct decided values, want 1..%d", i, len(c.Decided), z)
			}
			crashed := len(m.Patterns[0].Crashes)
			if c.Decisions < c.Size.N-crashed {
				t.Fatalf("round %d: only %d of ≥%d expected decisions", i, c.Decisions, c.Size.N-crashed)
			}
			// Validity: proposals are the process ids, so decided values
			// must name live proposal sources.
			for _, v := range c.Decided {
				if v < 1 || v > c.Size.N {
					t.Fatalf("round %d: decided value %d was never proposed", i, v)
				}
			}
		}
	}
}

// TestTwoWheelsInvariantsOverRandomCells drives random points of the
// addition frontier x+y ≤ t+1 and asserts the emulated Ω_z verdicts.
func TestTwoWheelsInvariantsOverRandomCells(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	rounds := 8
	if testing.Short() {
		rounds = 3
	}
	for i := 0; i < rounds; i++ {
		n := 4 + rng.Intn(3)
		tt := 1 + rng.Intn(2)
		if tt >= n {
			tt = n - 1
		}
		x := 1 + rng.Intn(tt+1)
		y := rng.Intn(tt + 2 - x) // x+y ≤ t+1
		m := Matrix{
			Name: "prop-wheels", Protocol: "two-wheels",
			Seeds: []int64{rng.Int63()}, Sizes: []Size{{N: n, T: tt}},
			Combos: []Combo{{X: x, Y: y}},
			GST:    sim.Time(rng.Intn(500)), MaxSteps: 200_000,
			Params: map[string]int64{"stable_for": 8_000, "margin": 5_000},
		}
		r, err := Run(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range r.Cells {
			if c.Verdict != Pass {
				t.Fatalf("round %d (n=%d t=%d x=%d y=%d seed %d): %s — %s",
					i, n, tt, x, y, c.Seed, c.Verdict, c.Detail)
			}
		}
	}
}
