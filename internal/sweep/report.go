package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"fdgrid/internal/sim"
)

// Cell verdicts.
const (
	// Pass: the run exhibited the property the cell checks.
	Pass = "pass"
	// Fail: the run completed but the property did not hold.
	Fail = "fail"
	// ConfigError: the cell's declaration is inconsistent — an oracle
	// script of the wrong role or scope for the combo, a protocol that
	// does not consume the declared dimension, conflicting pinning
	// params. A matrix-author mistake, reported distinctly so summaries
	// and goldens never conflate it with a paper-claim counterexample.
	ConfigError = "config_error"
	// Errored: the cell could not run (bad config, protocol panic).
	Errored = "error"
)

// CellResult is the structured outcome of one cell: the verdict, a
// metrics snapshot, the decided-value set (for agreement protocols) and
// virtual/wall durations. Every field except WallNS is a deterministic
// function of the cell; WallNS is excluded from the canonical JSON so
// reports stay byte-reproducible.
type CellResult struct {
	Index   int    `json:"index"`
	Seed    int64  `json:"seed"`
	Size    Size   `json:"size"`
	Pattern string `json:"pattern"`
	Combo   Combo  `json:"combo"`

	// Oracle keys the cell's generated-oracle dimension point (empty
	// for matrices without OracleFamilies); OracleClass is the class the
	// script declares and OracleConformance the fd/check.go verdict —
	// "conforms", or "violates: <reason>" when the script leaves its
	// declared class under this cell's failure pattern. Paired scripts
	// additionally carry per-role verdicts in OracleS and OraclePhi,
	// with OracleConformance the joint verdict.
	Oracle            string `json:"oracle,omitempty"`
	OracleClass       string `json:"oracle_class,omitempty"`
	OracleConformance string `json:"oracle_conformance,omitempty"`
	OracleS           string `json:"oracle_s,omitempty"`
	OraclePhi         string `json:"oracle_phi,omitempty"`

	Verdict string `json:"verdict"`
	Detail  string `json:"detail,omitempty"`

	Steps        sim.Time         `json:"steps"`
	StoppedEarly bool             `json:"stopped_early"`
	Messages     int64            `json:"messages_sent"`
	SentByTag    map[string]int64 `json:"sent_by_tag,omitempty"`

	// Agreement outcomes (empty for transformation-only cells).
	Decided   []int `json:"decided,omitempty"` // sorted distinct decided values
	Decisions int   `json:"decisions,omitempty"`
	MaxRound  int   `json:"max_round,omitempty"`

	// Measures carries runner-specific observations (stabilization
	// ticks, traffic at a time mark, probe times, …).
	Measures map[string]int64 `json:"measures,omitempty"`

	// TraceDigest fingerprints the cell's decision trace (first 128
	// bits of the SHA-256 of its canonical JSON) and TraceEvents counts
	// its events; both appear only when the matrix sets TraceLevel, so
	// untraced reports keep their pre-tracing bytes. Divergence is the
	// trace.Diff summary against a baseline run — set only on the
	// perturbed result of a counterfactual Replay, never by a sweep.
	TraceDigest string `json:"trace_digest,omitempty"`
	TraceEvents int    `json:"trace_events,omitempty"`
	Divergence  string `json:"divergence,omitempty"`

	// WallNS is the cell's wall-clock cost. Not part of the canonical
	// report: it varies run to run.
	WallNS int64 `json:"-"`
}

// measure records a named observation, allocating lazily.
func (r *CellResult) measure(name string, v int64) {
	if r.Measures == nil {
		r.Measures = make(map[string]int64)
	}
	r.Measures[name] = v
}

// fail marks the cell failed, appending the reason to Detail.
func (r *CellResult) fail(why string) {
	r.Verdict = Fail
	if r.Detail == "" {
		r.Detail = why
	} else {
		r.Detail += "; " + why
	}
}

// failConfig marks the cell as misconfigured (see ConfigError),
// appending the reason to Detail.
func (r *CellResult) failConfig(why string) {
	r.fail(why)
	r.Verdict = ConfigError
}

// ShardMeta records which slice of the matrix a sharded run covered.
type ShardMeta struct {
	Index      int `json:"index"`
	Count      int `json:"count"`
	TotalCells int `json:"total_cells"`
}

// Report aggregates a matrix run. A sharded run's report carries only
// its own cells plus Shard metadata; MergeReports recombines a full
// shard family into the unsharded report.
type Report struct {
	Matrix  Matrix       `json:"matrix"`
	Shard   *ShardMeta   `json:"shard,omitempty"`
	Cells   []CellResult `json:"cells"`
	Passed  int          `json:"passed"`
	Failed  int          `json:"failed"`
	Errored int          `json:"errored"`

	// ConfigErrors counts misconfigured cells (ConfigError verdicts);
	// omitted while zero so pre-existing reports keep their bytes.
	ConfigErrors int `json:"config_errors,omitempty"`

	// WallNS is the sweep's wall-clock cost (not canonical).
	WallNS int64 `json:"-"`
}

// OK reports whether every cell passed (a ConfigError cell is not
// passed, so it fails OK like any other non-pass verdict).
func (r *Report) OK() bool { return r.Failed == 0 && r.Errored == 0 && r.Passed == len(r.Cells) }

// CanonicalJSON renders the report as deterministic bytes: struct fields
// in declaration order, map keys sorted (encoding/json's contract), no
// wall-clock content. Same matrix, same binary → same bytes.
func (r *Report) CanonicalJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Summary is a one-line human rendering.
func (r *Report) Summary() string {
	shard := ""
	if r.Shard != nil {
		shard = fmt.Sprintf(" [shard %d/%d]", r.Shard.Index, r.Shard.Count)
	}
	cfg := ""
	if r.ConfigErrors > 0 {
		cfg = fmt.Sprintf(", %d config", r.ConfigErrors)
	}
	return fmt.Sprintf("%s%s: %d/%d pass (%d fail, %d error%s)",
		r.Matrix.Name, shard, r.Passed, len(r.Cells), r.Failed, r.Errored, cfg)
}

// MergeReports recombines the reports of a complete shard family into
// the report the unsharded run would have produced: same matrix, cells
// reassembled in index order, tallies recomputed, shard metadata
// dropped. Canonical JSON of the merged report is byte-identical to the
// unsharded run's — the property the sharded CI sweep verifies.
//
// Every part must cover the same matrix, and together the parts must
// cover each cell index exactly once. The same-matrix check compares
// the matrices' JSON forms — as strong as the report artifact itself:
// fields that serialize lossily (ids.Set renders as {}, so explicit
// Hold From/To sets are not in the bytes) cannot be distinguished here
// either. Shards of the same invocation, the intended use, always
// carry identical matrix bytes.
func MergeReports(parts []*Report) (*Report, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("sweep: merge of zero reports")
	}
	refMatrix, err := json.Marshal(parts[0].Matrix)
	if err != nil {
		return nil, err
	}
	total := -1
	if parts[0].Shard != nil {
		total = parts[0].Shard.TotalCells
	}
	seen := make(map[int]bool)
	merged := &Report{Matrix: parts[0].Matrix}
	for i, p := range parts {
		m, err := json.Marshal(p.Matrix)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(m, refMatrix) {
			return nil, fmt.Errorf("sweep: merge part %d covers matrix %q, part 0 covers %q", i, p.Matrix.Name, parts[0].Matrix.Name)
		}
		if p.Shard != nil {
			if total >= 0 && p.Shard.TotalCells != total {
				return nil, fmt.Errorf("sweep: merge part %d expects %d total cells, part 0 expects %d", i, p.Shard.TotalCells, total)
			}
			total = p.Shard.TotalCells
		}
		for _, c := range p.Cells {
			if seen[c.Index] {
				return nil, fmt.Errorf("sweep: merge of %q: cell %d appears in more than one part (overlapping shards — each cell must be covered exactly once)", merged.Matrix.Name, c.Index)
			}
			seen[c.Index] = true
			merged.Cells = append(merged.Cells, c)
			merged.WallNS += c.WallNS
		}
	}
	if total < 0 {
		total = len(merged.Cells) // no shard metadata: trust the parts
	}
	if len(merged.Cells) != total {
		return nil, fmt.Errorf("sweep: merge of %q covers %d of %d cells (missing shard or truncated part)", merged.Matrix.Name, len(merged.Cells), total)
	}
	sort.Slice(merged.Cells, func(i, j int) bool { return merged.Cells[i].Index < merged.Cells[j].Index })
	for i, c := range merged.Cells {
		if c.Index != i {
			return nil, fmt.Errorf("sweep: merge of %q has a gap in coverage: cell %d is missing (parts do not form a complete shard family)", merged.Matrix.Name, i)
		}
		switch c.Verdict {
		case Pass:
			merged.Passed++
		case Fail:
			merged.Failed++
		case ConfigError:
			merged.ConfigErrors++
		default:
			merged.Errored++
		}
	}
	return merged, nil
}
