package sweep

import (
	"encoding/json"
	"fmt"

	"fdgrid/internal/sim"
)

// Cell verdicts.
const (
	// Pass: the run exhibited the property the cell checks.
	Pass = "pass"
	// Fail: the run completed but the property did not hold.
	Fail = "fail"
	// Errored: the cell could not run (bad config, protocol panic).
	Errored = "error"
)

// CellResult is the structured outcome of one cell: the verdict, a
// metrics snapshot, the decided-value set (for agreement protocols) and
// virtual/wall durations. Every field except WallNS is a deterministic
// function of the cell; WallNS is excluded from the canonical JSON so
// reports stay byte-reproducible.
type CellResult struct {
	Index   int    `json:"index"`
	Seed    int64  `json:"seed"`
	Size    Size   `json:"size"`
	Pattern string `json:"pattern"`
	Combo   Combo  `json:"combo"`
	Verdict string `json:"verdict"`
	Detail  string `json:"detail,omitempty"`

	Steps        sim.Time         `json:"steps"`
	StoppedEarly bool             `json:"stopped_early"`
	Messages     int64            `json:"messages_sent"`
	SentByTag    map[string]int64 `json:"sent_by_tag,omitempty"`

	// Agreement outcomes (empty for transformation-only cells).
	Decided   []int `json:"decided,omitempty"` // sorted distinct decided values
	Decisions int   `json:"decisions,omitempty"`
	MaxRound  int   `json:"max_round,omitempty"`

	// Measures carries runner-specific observations (stabilization
	// ticks, traffic at a time mark, probe times, …).
	Measures map[string]int64 `json:"measures,omitempty"`

	// WallNS is the cell's wall-clock cost. Not part of the canonical
	// report: it varies run to run.
	WallNS int64 `json:"-"`
}

// measure records a named observation, allocating lazily.
func (r *CellResult) measure(name string, v int64) {
	if r.Measures == nil {
		r.Measures = make(map[string]int64)
	}
	r.Measures[name] = v
}

// fail marks the cell failed, appending the reason to Detail.
func (r *CellResult) fail(why string) {
	r.Verdict = Fail
	if r.Detail == "" {
		r.Detail = why
	} else {
		r.Detail += "; " + why
	}
}

// Report aggregates a matrix run.
type Report struct {
	Matrix  Matrix       `json:"matrix"`
	Cells   []CellResult `json:"cells"`
	Passed  int          `json:"passed"`
	Failed  int          `json:"failed"`
	Errored int          `json:"errored"`

	// WallNS is the sweep's wall-clock cost (not canonical).
	WallNS int64 `json:"-"`
}

// OK reports whether every cell passed.
func (r *Report) OK() bool { return r.Failed == 0 && r.Errored == 0 && r.Passed == len(r.Cells) }

// CanonicalJSON renders the report as deterministic bytes: struct fields
// in declaration order, map keys sorted (encoding/json's contract), no
// wall-clock content. Same matrix, same binary → same bytes.
func (r *Report) CanonicalJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Summary is a one-line human rendering.
func (r *Report) Summary() string {
	return fmt.Sprintf("%s: %d/%d pass (%d fail, %d error)",
		r.Matrix.Name, r.Passed, len(r.Cells), r.Failed, r.Errored)
}
