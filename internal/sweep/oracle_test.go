package sweep

import (
	"bytes"
	"strings"
	"testing"

	"fdgrid/internal/adversary"
)

// oracleMatrix is a small kset-omega sweep with a generated-oracle
// dimension: a flapping Ω_1 timeline family and a late-stabilization
// parameter family.
func oracleMatrix() Matrix {
	return Matrix{
		Name: "oracle-kset", Protocol: "kset-omega",
		Seeds: []int64{0, 1},
		Sizes: []Size{{N: 5, T: 2}},
		OracleFamilies: []adversary.OracleFamily{
			{Kind: adversary.OracleLeaderFlap, Z: 1, Variants: 2, Seed: 3, Settle: []int{1}},
			{Kind: adversary.OracleLateStab, Variants: 2, Seed: 4, Start: 200, Ramp: 200},
		},
		Combos: []Combo{{Z: 1}},
		GST:    200, MaxSteps: 2_000_000,
	}
}

// TestOracleDimensionExpansion: OracleFamilies is a real cell axis with
// the documented deterministic order and per-script cells.
func TestOracleDimensionExpansion(t *testing.T) {
	m := oracleMatrix()
	cells, err := m.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 { // 1 size × 1 pattern × 1 combo × 4 scripts × 2 seeds
		t.Fatalf("expanded %d cells, want 8", len(cells))
	}
	again, err := m.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i].Oracle.Name == "" {
			t.Fatalf("cell %d has no oracle script", i)
		}
		if cells[i].Oracle.Name != again[i].Oracle.Name {
			t.Fatalf("expansion not deterministic at cell %d", i)
		}
	}
	// Oracle is the inner dimension above seeds: consecutive seed pairs
	// share a script, adjacent pairs differ.
	if cells[0].Oracle.Name != cells[1].Oracle.Name || cells[1].Oracle.Name == cells[2].Oracle.Name {
		t.Fatalf("unexpected oracle ordering: %s %s %s",
			cells[0].Oracle.Name, cells[1].Oracle.Name, cells[2].Oracle.Name)
	}

	// A matrix without OracleFamilies keeps the zero point.
	m.OracleFamilies = nil
	cells, err = m.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("zero-oracle matrix expanded %d cells, want 2", len(cells))
	}
	if !cells[0].Oracle.None() {
		t.Fatal("zero-oracle cell carries a script")
	}
}

// TestOracleSweepReport: generated-oracle cells run, pass, and carry
// script identity plus a conformance verdict; the report is
// byte-reproducible across worker counts.
func TestOracleSweepReport(t *testing.T) {
	m := oracleMatrix()
	r1, err := Run(m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(m, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.OK() {
		for _, c := range r1.Cells {
			if c.Verdict != Pass {
				t.Errorf("cell %d (%s, oracle %s): %s — %s", c.Index, c.Pattern, c.Oracle, c.Verdict, c.Detail)
			}
		}
		t.Fatal("oracle sweep did not pass")
	}
	for _, c := range r1.Cells {
		if c.Oracle == "" || c.OracleClass == "" {
			t.Fatalf("cell %d missing oracle keys: %+v", c.Index, c)
		}
		if c.OracleConformance != "conforms" {
			t.Fatalf("cell %d conformance = %q", c.Index, c.OracleConformance)
		}
	}
	b1, err := r1.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b4, err := r4.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b4) {
		t.Fatal("oracle sweep reports differ across worker counts")
	}
}

// TestOracleScriptedSuspector: a scope-churn script drives the
// two-wheels reduction through the scripted-suspector driver.
func TestOracleScriptedSuspector(t *testing.T) {
	m := Matrix{
		Name: "oracle-wheels", Protocol: "two-wheels",
		Seeds: []int64{0},
		Sizes: []Size{{N: 5, T: 2}},
		OracleFamilies: []adversary.OracleFamily{
			{Kind: adversary.OracleScopeChurn, X: 2, Variants: 2, Seed: 5, Settle: []int{1, 2}},
		},
		Combos: []Combo{{X: 2, Y: 1}},
		GST:    400, MaxSteps: 60_000,
		Params: map[string]int64{"stable_for": 12_000, "margin": 10_000},
	}
	r, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Cells {
		if c.Verdict != Pass {
			t.Errorf("cell %d (oracle %s): %s — %s", c.Index, c.Oracle, c.Verdict, c.Detail)
		}
		if c.OracleClass != "evt-s-2" || c.OracleConformance != "conforms" {
			t.Errorf("cell %d: class %q conformance %q", c.Index, c.OracleClass, c.OracleConformance)
		}
	}
}

// TestOracleParamsReachBothWheels: a parameter script on two-wheels
// configures the querier as well as the suspector — a late-stabilizing
// dimension point must not be half-applied. Observable through the
// emulated output's stabilization time: the upper wheel consults the
// ◇φ_y live, so a querier still anarchic at the script's late
// stabilization keeps the output churning past it.
func TestOracleParamsReachBothWheels(t *testing.T) {
	const stab = 8_000
	m := Matrix{
		Name: "oracle-wheels-params", Protocol: "two-wheels",
		Seeds: []int64{0},
		Sizes: []Size{{N: 5, T: 2}},
		OracleFamilies: []adversary.OracleFamily{
			{Kind: adversary.OracleLateStab, Seed: 9, Start: stab, Ramp: 1},
		},
		Combos: []Combo{{X: 2, Y: 1}},
		GST:    400, MaxSteps: 80_000,
		Params: map[string]int64{"stable_for": 12_000, "margin": 10_000},
	}
	r, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Cells {
		if c.Verdict != Pass {
			t.Fatalf("cell %d (%s): %s — %s", c.Index, c.Oracle, c.Verdict, c.Detail)
		}
		if got := c.Measures["stabilization"]; got < stab {
			t.Errorf("output stabilized at %d, before the scripted oracle stabilization %d — the script was half-applied", got, stab)
		}
	}
}

// TestOracleNonconforming: a script whose settle set the pattern
// crashes is flagged by the conformance checker and fails the cell
// without running the protocol.
func TestOracleNonconforming(t *testing.T) {
	m := oracleMatrix()
	m.Patterns = []CrashPattern{{Name: "settle-crashes",
		Crashes: []CrashSpec{{Proc: 1, At: 50}}}}
	r, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sawViolation := false
	for _, c := range r.Cells {
		if !strings.HasPrefix(c.Oracle, adversary.OracleLeaderFlap) {
			continue // late-stab params stay in class: the ground-truth oracle is pattern-aware
		}
		sawViolation = true
		if c.Verdict != Fail {
			t.Errorf("cell %d (oracle %s): verdict %s, want fail", c.Index, c.Oracle, c.Verdict)
		}
		if !strings.HasPrefix(c.OracleConformance, "violates:") {
			t.Errorf("cell %d: conformance %q", c.Index, c.OracleConformance)
		}
		if c.Steps != 0 {
			t.Errorf("cell %d ran %d steps over an out-of-class oracle", c.Index, c.Steps)
		}
	}
	if !sawViolation {
		t.Fatal("no flap cells in the report")
	}
}

// TestOraclePinningInteraction: the default path's oracle pinning is
// not silently dropped — a pinned trusted set composes with parameter
// scripts, conflicts with timelines, and stab0 conflicts with both.
func TestOraclePinningInteraction(t *testing.T) {
	m := oracleMatrix()
	m.Combos = []Combo{{Z: 1, Trusted: []int{1}}}
	r, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Cells {
		flap := strings.HasPrefix(c.Oracle, adversary.OracleLeaderFlap)
		switch {
		case flap && c.Verdict != ConfigError:
			t.Errorf("cell %d (%s): timeline + pinned trusted set gave %s, want config_error", c.Index, c.Oracle, c.Verdict)
		case flap && !strings.Contains(c.Detail, "pins a trusted set"):
			t.Errorf("cell %d: detail %q", c.Index, c.Detail)
		case !flap && c.Verdict != Pass:
			t.Errorf("cell %d (%s): param script + pinned trusted set failed: %s", c.Index, c.Oracle, c.Detail)
		case !flap && len(c.Decided) != 1:
			// Param script + pinned trusted set: Ω_1 still forces
			// consensus (the decided value may predate stabilization —
			// anarchy rounds legally shuffle estimates).
			t.Errorf("cell %d decided %v, want one value", c.Index, c.Decided)
		}
	}
	if r.ConfigErrors == 0 {
		t.Error("report tallied no config errors")
	}

	m = oracleMatrix()
	m.Params = map[string]int64{"stab0": 1}
	if r, err = Run(m, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Cells {
		if c.Verdict != ConfigError || !strings.Contains(c.Detail, "stab0 conflicts") {
			t.Errorf("cell %d (%s): stab0 + script gave %s — %q", c.Index, c.Oracle, c.Verdict, c.Detail)
		}
	}
	if r.OK() {
		t.Error("config-error report claims OK")
	}
}

// TestOracleWrongProtocol: declaring the oracle dimension on a protocol
// that builds its own oracles fails loudly instead of being ignored.
func TestOracleWrongProtocol(t *testing.T) {
	m := Matrix{
		Name: "oracle-misuse", Protocol: "phi-o1",
		Seeds:          []int64{1},
		Sizes:          []Size{{N: 5, T: 2}},
		OracleFamilies: []adversary.OracleFamily{{Kind: adversary.OracleLateStab}},
		Combos:         []Combo{{Y: 1}},
		GST:            0, MaxSteps: 2_000,
	}
	r, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Cells {
		if c.Verdict != ConfigError || !strings.Contains(c.Detail, "does not consume") {
			t.Errorf("cell %d: verdict %s detail %q", c.Index, c.Verdict, c.Detail)
		}
	}
	if r.ConfigErrors != len(r.Cells) {
		t.Errorf("tallied %d config errors, want %d", r.ConfigErrors, len(r.Cells))
	}
}

// pairFamilies builds two hostile pair families matching a combo with
// x=2, y=1 on n=5, t=2: a scope-churn suspector timeline against a
// late-stabilizing querier, and a late-stabilizing ground-truth
// suspector against a bursty anarchic querier.
func pairFamilies() []adversary.OraclePairFamily {
	return []adversary.OraclePairFamily{
		{S: adversary.OracleFamily{Kind: adversary.OracleScopeChurn, X: 2, Seed: 11, Settle: []int{1, 2}},
			Phi: adversary.OracleFamily{Kind: adversary.OracleLateStab, Y: 1, Seed: 12, Start: 4_000, Ramp: 1}},
		{S: adversary.OracleFamily{Kind: adversary.OracleLateStab, X: 2, Seed: 13, Start: 2_000, Ramp: 1},
			Phi: adversary.OracleFamily{Kind: adversary.OracleAnarchyBurst, Y: 1, Seed: 14}},
	}
}

// pairMatrix is a small paired-oracle sweep over an addition protocol.
func pairMatrix(protocol string) Matrix {
	m := Matrix{
		Name: "oracle-pairs-" + protocol, Protocol: protocol,
		Seeds:              []int64{0},
		Sizes:              []Size{{N: 5, T: 2}},
		OraclePairFamilies: pairFamilies(),
		Combos:             []Combo{{X: 2, Y: 1}},
		GST:                400, MaxSteps: 160_000,
		Params: map[string]int64{"stable_for": 12_000, "margin": 10_000},
	}
	if protocol == "add-s" {
		m.Combos = []Combo{{Name: "memory", X: 2, Y: 1}}
		m.Params = map[string]int64{"perpetual": 0, "margin": 10_000}
	}
	return m
}

// TestOraclePairTwoWheels: paired scripts drive both roles of the
// two-wheels addition, every cell passes with per-role conformance
// verdicts, and the report stays byte-reproducible across worker
// counts.
func TestOraclePairTwoWheels(t *testing.T) {
	m := pairMatrix("two-wheels")
	r1, err := Run(m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(m, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Cells) != 2 {
		t.Fatalf("expanded %d cells, want 2", len(r1.Cells))
	}
	wantClass := []string{"evt-s-2+gt-phi-1", "gt-s-2+gt-phi-1"}
	for i, c := range r1.Cells {
		if c.Verdict != Pass {
			t.Errorf("cell %d (%s): %s — %s", c.Index, c.Oracle, c.Verdict, c.Detail)
		}
		if c.OracleClass != wantClass[i] {
			t.Errorf("cell %d class %q, want %q", c.Index, c.OracleClass, wantClass[i])
		}
		if c.OracleS != "conforms" || c.OraclePhi != "conforms" || c.OracleConformance != "conforms" {
			t.Errorf("cell %d role verdicts: s=%q phi=%q joint=%q", c.Index, c.OracleS, c.OraclePhi, c.OracleConformance)
		}
		if !strings.Contains(c.Oracle, "+") {
			t.Errorf("cell %d oracle name %q is not a joint name", c.Index, c.Oracle)
		}
	}
	b1, _ := r1.CanonicalJSON()
	b4, _ := r4.CanonicalJSON()
	if !bytes.Equal(b1, b4) {
		t.Fatal("pair sweep reports differ across worker counts")
	}
}

// TestOraclePairAddS: add-s consumes the paired dimension (previously
// rejected outright), emulating S_n from hostile per-role scripts.
func TestOraclePairAddS(t *testing.T) {
	r, err := Run(pairMatrix("add-s"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Cells {
		if c.Verdict != Pass {
			t.Errorf("cell %d (%s): %s — %s", c.Index, c.Oracle, c.Verdict, c.Detail)
		}
		if c.OracleS != "conforms" || c.OraclePhi != "conforms" {
			t.Errorf("cell %d role verdicts: s=%q phi=%q", c.Index, c.OracleS, c.OraclePhi)
		}
		if c.Steps == 0 {
			t.Errorf("cell %d did not run", c.Index)
		}
	}
}

// TestOraclePairRejections: every pair rejection path reports a config
// error, not a protocol failure.
func TestOraclePairRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Matrix)
		want   string
	}{
		{"pair-on-leader-protocol", func(m *Matrix) {
			m.Protocol = "kset-omega"
			m.Combos = []Combo{{Z: 1}}
		}, "reads a single leader"},
		{"pair-on-querier-protocol", func(m *Matrix) {
			m.Protocol = "psi-omega"
			m.Combos = []Combo{{Y: 1, Z: 2}}
		}, "reads a single querier"},
		{"pair-on-suspector-protocol", func(m *Matrix) {
			m.Protocol = "consensus-ds"
			m.Combos = []Combo{{}}
		}, "reads a single suspector"},
		{"s-role-scope-mismatch", func(m *Matrix) {
			m.Combos = []Combo{{X: 3, Y: 1}}
		}, "S-role x=2, combo wants x=3"},
		{"phi-role-scope-mismatch", func(m *Matrix) {
			m.Combos = []Combo{{X: 2, Y: 0}}
		}, "phi-role y=1, combo wants y=0"},
		{"stab0-conflict", func(m *Matrix) {
			m.Params = map[string]int64{"stab0": 1, "stable_for": 12_000, "margin": 10_000}
		}, "stab0 conflicts"},
		{"trusted-conflict", func(m *Matrix) {
			m.Combos = []Combo{{X: 2, Y: 1, Trusted: []int{1}}}
		}, "scripts the suspector role"},
		{"single-script-on-add-s", func(m *Matrix) {
			m.Protocol = "add-s"
			m.Combos = []Combo{{Name: "memory", X: 2, Y: 1}}
			m.OraclePairFamilies = nil
			m.OracleFamilies = []adversary.OracleFamily{{Kind: adversary.OracleLateStab, Seed: 15}}
		}, "does not consume"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := pairMatrix("two-wheels")
			tc.mutate(&m)
			r, err := Run(m, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Cells) == 0 {
				t.Fatal("no cells")
			}
			for _, c := range r.Cells {
				if c.Verdict != ConfigError {
					t.Errorf("cell %d (%s): verdict %s — %s", c.Index, c.Oracle, c.Verdict, c.Detail)
				}
				if !strings.Contains(c.Detail, tc.want) {
					t.Errorf("cell %d detail %q, want substring %q", c.Index, c.Detail, tc.want)
				}
				if c.Steps != 0 {
					t.Errorf("cell %d ran %d steps despite the config error", c.Index, c.Steps)
				}
			}
			if r.ConfigErrors != len(r.Cells) {
				t.Errorf("tallied %d config errors, want %d", r.ConfigErrors, len(r.Cells))
			}
		})
	}
}

// TestOraclePairNonconforming: a pair whose S-role settle set the
// pattern crashes fails the cell as a genuine violation (not a config
// error), with the blame on the S role and no protocol run.
func TestOraclePairNonconforming(t *testing.T) {
	m := pairMatrix("two-wheels")
	m.Patterns = []CrashPattern{{Name: "settle-crashes",
		Crashes: []CrashSpec{{Proc: 1, At: 50}}}}
	r, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	saw := false
	for _, c := range r.Cells {
		if !strings.HasPrefix(c.Oracle, adversary.OracleScopeChurn) {
			continue // the ground-truth S role is pattern-aware and stays in class
		}
		saw = true
		if c.Verdict != Fail {
			t.Errorf("cell %d (%s): verdict %s, want fail", c.Index, c.Oracle, c.Verdict)
		}
		if !strings.HasPrefix(c.OracleS, "violates:") {
			t.Errorf("cell %d OracleS %q", c.Index, c.OracleS)
		}
		if c.OraclePhi != "conforms" {
			t.Errorf("cell %d OraclePhi %q", c.Index, c.OraclePhi)
		}
		if !strings.HasPrefix(c.OracleConformance, "violates: S role:") {
			t.Errorf("cell %d joint verdict %q", c.Index, c.OracleConformance)
		}
		if c.Steps != 0 {
			t.Errorf("cell %d ran %d steps over an out-of-class pair", c.Index, c.Steps)
		}
	}
	if !saw {
		t.Fatal("no scope-churn pair cells in the report")
	}
}

// TestOraclePairPerpetualMismatch: on the perpetual add-s, a pair whose
// roles stabilize late (declaring a misbehaving prefix) violates the
// perpetual classes S_x and φ_y, and both role verdicts say so.
func TestOraclePairPerpetualMismatch(t *testing.T) {
	m := pairMatrix("add-s")
	m.OraclePairFamilies = pairFamilies()[1:] // both roles parameter scripts
	m.Params = map[string]int64{"perpetual": 1, "margin": 10_000}
	r, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Cells {
		if c.Verdict != Fail {
			t.Errorf("cell %d (%s): verdict %s — %s", c.Index, c.Oracle, c.Verdict, c.Detail)
		}
		if !strings.Contains(c.OracleS, "perpetual") {
			t.Errorf("cell %d OracleS %q, want a perpetual-class violation", c.Index, c.OracleS)
		}
		if !strings.Contains(c.OraclePhi, "perpetual") {
			t.Errorf("cell %d OraclePhi %q, want a perpetual-class violation", c.Index, c.OraclePhi)
		}
	}
}
