package sweep

import (
	"bytes"
	"encoding/json"
	"testing"

	"fdgrid/internal/adversary"
)

// TestShardMergeByteIdentical is the sharding contract: running every
// shard of m independently and merging the reports yields canonical
// bytes identical to the unsharded run — for several shard counts,
// including one larger than the cell count (some shards own nothing).
func TestShardMergeByteIdentical(t *testing.T) {
	m := smokeMatrix()
	full, err := Run(m, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{1, 2, 3, 4, 16} {
		parts := make([]*Report, count)
		for i := 0; i < count; i++ {
			parts[i], err = Run(m, Options{Workers: 2, Shard: Shard{Index: i, Count: count}})
			if err != nil {
				t.Fatal(err)
			}
			if parts[i].Shard == nil || parts[i].Shard.Count != count {
				t.Fatalf("shard %d/%d report missing shard metadata", i, count)
			}
		}
		merged, err := MergeReports(parts)
		if err != nil {
			t.Fatalf("merge %d shards: %v", count, err)
		}
		got, err := merged.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("merged %d-shard report differs from the unsharded run", count)
		}
	}
}

// TestShardMergeSurvivesJSONRoundTrip mirrors the CI pipeline: shard
// reports travel between jobs as JSON artifacts, so merging must work
// on unmarshaled reports and still reproduce the unsharded bytes.
func TestShardMergeSurvivesJSONRoundTrip(t *testing.T) {
	m := smokeMatrix()
	full, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := full.CanonicalJSON()
	const count = 3
	parts := make([]*Report, count)
	for i := 0; i < count; i++ {
		r, err := Run(m, Options{Shard: Shard{Index: i, Count: count}})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := r.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = new(Report)
		if err := json.Unmarshal(blob, parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := MergeReports(parts)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := merged.CanonicalJSON()
	if !bytes.Equal(got, want) {
		t.Fatal("merged round-tripped shards differ from the unsharded run")
	}
}

// TestShardPartition: each cell is owned by exactly one shard, and the
// shard dimension is deterministic.
func TestShardPartition(t *testing.T) {
	m := smokeMatrix()
	cells, err := m.Cells()
	if err != nil {
		t.Fatal(err)
	}
	const count = 3
	owned := make(map[int]int)
	for i := 0; i < count; i++ {
		r, err := Run(m, Options{Shard: Shard{Index: i, Count: count}})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range r.Cells {
			if prev, dup := owned[c.Index]; dup {
				t.Fatalf("cell %d owned by shards %d and %d", c.Index, prev, i)
			}
			owned[c.Index] = i
			if c.Index%count != i {
				t.Fatalf("cell %d landed in shard %d, want %d", c.Index, i, c.Index%count)
			}
		}
	}
	if len(owned) != len(cells) {
		t.Fatalf("shards covered %d of %d cells", len(owned), len(cells))
	}
}

// TestShardErrors: invalid shards and incomplete merges are rejected.
func TestShardErrors(t *testing.T) {
	m := smokeMatrix()
	if _, err := Run(m, Options{Shard: Shard{Index: 4, Count: 4}}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if _, err := Run(m, Options{Shard: Shard{Index: -1, Count: 2}}); err == nil {
		t.Error("negative shard accepted")
	}
	a, err := Run(m, Options{Shard: Shard{Index: 0, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeReports([]*Report{a}); err == nil {
		t.Error("merge of an incomplete shard family accepted")
	}
	if _, err := MergeReports([]*Report{a, a}); err == nil {
		t.Error("merge with duplicate cells accepted")
	}
	b, err := Run(m, Options{Shard: Shard{Index: 1, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	other := smokeMatrix()
	other.Name = "different"
	c, err := Run(other, Options{Shard: Shard{Index: 1, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeReports([]*Report{a, c}); err == nil {
		t.Error("merge across different matrices accepted")
	}
	if _, err := MergeReports(nil); err == nil {
		t.Error("merge of nothing accepted")
	}
	if _, err := MergeReports([]*Report{a, b}); err != nil {
		t.Errorf("complete merge rejected: %v", err)
	}
}

// TestAdversaryFamilyExpansion: a matrix with AdversaryFamilies sweeps
// the generated schedules — per size, appended after explicit patterns,
// deterministically.
func TestAdversaryFamilyExpansion(t *testing.T) {
	m := Matrix{
		Name: "fam", Protocol: "p",
		Seeds: []int64{0}, Sizes: []Size{{N: 6, T: 2}, {N: 10, T: 4}},
		Patterns: []CrashPattern{{Name: "hand-written"}},
		AdversaryFamilies: []adversary.Family{
			{Kind: adversary.KindStaggered, Count: 2, Variants: 2, Seed: 5},
			{Kind: adversary.KindPartition, Seed: 5},
		},
		MaxSteps: 100,
	}
	cells, err := m.Cells()
	if err != nil {
		t.Fatal(err)
	}
	// Per size: 1 explicit + 2 staggered + 1 partition = 4 patterns.
	if len(cells) != 2*4 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	if cells[0].Pattern.Name != "hand-written" {
		t.Fatalf("explicit pattern not first: %q", cells[0].Pattern.Name)
	}
	if cells[1].Pattern.Name != "staggered-c2-s5-v0" || cells[2].Pattern.Name != "staggered-c2-s5-v1" {
		t.Fatalf("generated patterns misnamed: %q, %q", cells[1].Pattern.Name, cells[2].Pattern.Name)
	}
	for _, c := range cells[1:3] {
		if len(c.Pattern.Crashes) != 2 {
			t.Fatalf("staggered pattern has %d crashes", len(c.Pattern.Crashes))
		}
		if _, err := c.Config(); err != nil {
			t.Fatalf("generated cell invalid: %v", err)
		}
	}
	if len(cells[3].Pattern.Holds) != 2 || len(cells[3].Pattern.Crashes) != 0 {
		t.Fatalf("partition pattern malformed: %+v", cells[3].Pattern)
	}
	// The n=10 expansion generates against its own size.
	if got := cells[7].Pattern.Holds[0].From.Size() + cells[7].Pattern.Holds[0].To.Size(); got != 10 {
		t.Fatalf("partition at n=10 covers %d processes", got)
	}
	// Determinism: a second expansion is identical.
	again, err := m.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i].Pattern.Name != again[i].Pattern.Name {
			t.Fatalf("expansion not deterministic at cell %d", i)
		}
	}
}

// TestAdversaryFamilyErrors: a family the size cannot satisfy fails at
// expansion with the matrix and size named.
func TestAdversaryFamilyErrors(t *testing.T) {
	m := Matrix{
		Name: "fam-bad", Protocol: "p",
		Seeds: []int64{0}, Sizes: []Size{{N: 6, T: 1}},
		AdversaryFamilies: []adversary.Family{{Kind: adversary.KindStaggered, Count: 3}},
		MaxSteps:          100,
	}
	if _, err := m.Cells(); err == nil {
		t.Fatal("family with count > t accepted")
	}
}

// TestShardedFamilySweepMerges: sharding composes with generated
// adversaries end to end (families expand identically in every shard).
func TestShardedFamilySweepMerges(t *testing.T) {
	m := Matrix{
		Name: "fam-sweep", Protocol: "kset-omega",
		Seeds: []int64{0, 1}, Sizes: []Size{{N: 5, T: 2}},
		AdversaryFamilies: []adversary.Family{
			{Kind: adversary.KindStaggered, Count: 2, Variants: 2, Seed: 9, Start: 200},
			{Kind: adversary.KindClustered, Count: 2, Seed: 9, Start: 300},
		},
		Combos: []Combo{{Z: 2}},
		GST:    400, MaxSteps: 1_000_000,
	}
	full, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !full.OK() {
		t.Fatalf("family sweep failed: %s", full.Summary())
	}
	want, _ := full.CanonicalJSON()
	var parts []*Report
	for i := 0; i < 3; i++ {
		p, err := Run(m, Options{Shard: Shard{Index: i, Count: 3}})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	merged, err := MergeReports(parts)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := merged.CanonicalJSON()
	if !bytes.Equal(got, want) {
		t.Fatal("sharded family sweep does not merge to the unsharded bytes")
	}
}
