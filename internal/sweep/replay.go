package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"fdgrid/internal/sim"
	"fdgrid/internal/trace"
)

// Perturbation is one declarative counterfactual edit to a cell,
// parsed from a -perturb spec. Exactly one edit per perturbation: the
// point of counterfactual replay is to attribute a divergence to a
// single cause.
//
// Spec grammar (K, P, T are integers; P may be <= 0 for a
// size-relative process, like CrashSpec.Proc):
//
//	gst+K   / gst-K     shift the cell's GST by K ticks
//	stab+K  / stab-K    shift the generated oracle's scripted
//	                    stabilization time by K ticks (parameter
//	                    scripts only; pairs shift both roles)
//	crash=P@T           schedule process P to crash at T (replacing
//	                    P's scheduled crash if the pattern has one)
//	hold[I]+K           extend the pattern's I-th hold window by K
type Perturbation struct {
	kind  string // "gst", "stab", "crash", "hold"
	delta sim.Time
	proc  int
	at    sim.Time
	hold  int
	spec  string
}

// String returns the spec the perturbation was parsed from.
func (p *Perturbation) String() string { return p.spec }

// ParsePerturbation parses a -perturb spec (see Perturbation).
func ParsePerturbation(spec string) (*Perturbation, error) {
	p := &Perturbation{spec: spec}
	fail := func() (*Perturbation, error) {
		return nil, fmt.Errorf(`sweep: bad perturbation %q (want "gst±K", "stab±K", "crash=P@T" or "hold[I]+K")`, spec)
	}
	switch {
	case strings.HasPrefix(spec, "gst+"), strings.HasPrefix(spec, "gst-"),
		strings.HasPrefix(spec, "stab+"), strings.HasPrefix(spec, "stab-"):
		i := strings.IndexAny(spec, "+-")
		p.kind = spec[:i]
		k, err := strconv.ParseInt(spec[i:], 10, 64)
		if err != nil || k == 0 {
			return fail()
		}
		p.delta = sim.Time(k)
	case strings.HasPrefix(spec, "crash="):
		rest := strings.SplitN(spec[len("crash="):], "@", 2)
		if len(rest) != 2 {
			return fail()
		}
		proc, err1 := strconv.Atoi(rest[0])
		at, err2 := strconv.ParseInt(rest[1], 10, 64)
		if err1 != nil || err2 != nil || at < 0 {
			return fail()
		}
		p.kind, p.proc, p.at = "crash", proc, sim.Time(at)
	case strings.HasPrefix(spec, "hold["):
		var i, k int
		var sign byte
		n, err := fmt.Sscanf(spec, "hold[%d]%c%d", &i, &sign, &k)
		if n != 3 || err != nil || (sign != '+' && sign != '-') || i < 0 || k <= 0 {
			return fail()
		}
		if sign == '-' {
			k = -k
		}
		p.kind, p.hold, p.delta = "hold", i, sim.Time(k)
	default:
		return fail()
	}
	return p, nil
}

// apply edits the cell in place. The cell must already own its mutable
// dimension state (see cloneCellDims); the edit never touches slices
// shared with a baseline cell.
func (p *Perturbation) apply(c *Cell) error {
	switch p.kind {
	case "gst":
		if c.GST+p.delta < 0 {
			return fmt.Errorf("sweep: perturbation %s drives GST below 0 (gst=%d)", p.spec, c.GST)
		}
		c.GST += p.delta
	case "stab":
		s := &c.Oracle
		switch {
		case s.None():
			return fmt.Errorf("sweep: perturbation %s needs a generated oracle; cell has none (use gst±K)", p.spec)
		case s.IsTimeline():
			return fmt.Errorf("sweep: perturbation %s cannot shift timeline script %s (it fixes every output; no stabilization parameter)", p.spec, s.Name)
		case s.IsPair():
			if s.Pair.S.StabilizeAt+p.delta < 0 || s.Pair.Phi.StabilizeAt+p.delta < 0 {
				return fmt.Errorf("sweep: perturbation %s drives a role's stabilization below 0", p.spec)
			}
			s.Pair.S.StabilizeAt += p.delta
			s.Pair.Phi.StabilizeAt += p.delta
		default:
			if s.StabilizeAt+p.delta < 0 {
				return fmt.Errorf("sweep: perturbation %s drives stabilization below 0 (stabilize_at=%d)", p.spec, s.StabilizeAt)
			}
			s.StabilizeAt += p.delta
		}
	case "crash":
		for i, cs := range c.Pattern.Crashes {
			if cs.Proc == p.proc {
				c.Pattern.Crashes[i].At = p.at
				return nil
			}
		}
		c.Pattern.Crashes = append(c.Pattern.Crashes, CrashSpec{Proc: p.proc, At: p.at})
	case "hold":
		if p.hold >= len(c.Pattern.Holds) {
			return fmt.Errorf("sweep: perturbation %s: pattern %q has %d holds", p.spec, c.Pattern.Name, len(c.Pattern.Holds))
		}
		h := &c.Pattern.Holds[p.hold]
		if h.Until+p.delta <= h.Since {
			return fmt.Errorf("sweep: perturbation %s empties hold %d (since=%d until=%d)", p.spec, p.hold, h.Since, h.Until)
		}
		h.Until += p.delta
	default:
		return fmt.Errorf("sweep: unparsed perturbation %q", p.spec)
	}
	return nil
}

// cloneCellDims deep-copies the cell state a perturbation may edit, so
// the perturbed cell never scribbles on slices shared with the
// baseline cell (or the matrix definition).
func cloneCellDims(c *Cell) {
	c.Pattern.Crashes = append([]CrashSpec(nil), c.Pattern.Crashes...)
	c.Pattern.Holds = append([]sim.Hold(nil), c.Pattern.Holds...)
	if c.Oracle.Pair != nil {
		pair := *c.Oracle.Pair
		c.Oracle.Pair = &pair
	}
}

// ReplayResult is the outcome of a counterfactual replay: the baseline
// cell re-run traced, the perturbed variant, and the minimal
// divergence point between their traces (nil when the perturbation
// changed nothing observable).
type ReplayResult struct {
	// Cell is the baseline cell (traced at Level).
	Cell Cell
	// Perturbation echoes the applied spec.
	Perturbation string
	// Level is the trace level both runs recorded at.
	Level trace.Level
	// Base and Perturbed are the two runs' results; Perturbed carries
	// the divergence summary in its Divergence key.
	Base, Perturbed CellResult
	// Div is the structured divergence, nil when the traces (and hence
	// the runs) are identical.
	Div *trace.Divergence
}

// Replay re-runs cell index of matrix m twice — as declared, and under
// a single declarative perturbation — with decision tracing forced on,
// and diffs the two traces. Because each run is deterministic, the
// diff's first differing event is the first observable consequence of
// the perturbation: the minimal divergence point. level Off defaults
// to Decisions.
func Replay(m Matrix, index int, pert *Perturbation, level trace.Level) (*ReplayResult, error) {
	if level == trace.Off {
		level = trace.Decisions
	}
	cells, err := m.Cells()
	if err != nil {
		return nil, err
	}
	if index < 0 || index >= len(cells) {
		return nil, fmt.Errorf("sweep: replay index %d outside matrix %q (%d cells)", index, m.Name, len(cells))
	}
	runner, ok := runnerFor(m.Protocol)
	if !ok {
		return nil, fmt.Errorf("sweep: no runner registered for protocol %q", m.Protocol)
	}

	base := cells[index]
	base.TraceLevel = level.String()
	perturbed := base
	cloneCellDims(&perturbed)
	if err := pert.apply(&perturbed); err != nil {
		return nil, err
	}
	if _, err := perturbed.Config(); err != nil {
		return nil, fmt.Errorf("sweep: perturbation %s makes the cell invalid: %w", pert, err)
	}

	rr := &ReplayResult{Cell: base, Perturbation: pert.String(), Level: level}
	rr.Base = runCell(runner, &base)
	rr.Perturbed = runCell(runner, &perturbed)
	rr.Div = trace.Diff(base.rec.Events(), perturbed.rec.Events())
	if rr.Div != nil {
		rr.Perturbed.Divergence = rr.Div.Summary
	}
	return rr, nil
}
