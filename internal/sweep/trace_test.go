package sweep

import (
	"bytes"
	"strings"
	"testing"

	"fdgrid/internal/adversary"
	"fdgrid/internal/trace"
)

// replayMatrix is a small kset-omega matrix with a generated late-stab
// parameter oracle — the shape the counterfactual stab±K perturbation
// applies to.
func replayMatrix() Matrix {
	return Matrix{
		Name: "replay-smoke", Protocol: "kset-omega",
		Seeds: []int64{0}, Sizes: []Size{{N: 5, T: 2}},
		Patterns: []CrashPattern{{Name: "late-crash", Crashes: []CrashSpec{{Proc: 4, At: 700}}}},
		Combos:   []Combo{{Z: 2}},
		OracleFamilies: []adversary.OracleFamily{
			{Kind: adversary.OracleLateStab, Seed: 9, Start: 200, Ramp: 200},
		},
		GST: 500, MaxSteps: 100_000,
	}
}

// TestTracedTwiceIdentical: tracing is as deterministic as the run it
// observes — the same traced matrix twice yields byte-identical
// reports, including the trace digests.
func TestTracedTwiceIdentical(t *testing.T) {
	m := smokeMatrix()
	m.TraceLevel = "decisions"
	r1, err := Run(m, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(m, Options{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := r1.CanonicalJSON()
	b2, _ := r2.CanonicalJSON()
	if !bytes.Equal(b1, b2) {
		t.Fatal("traced runs of the same matrix differ")
	}
	for _, c := range r1.Cells {
		if c.TraceDigest == "" || c.TraceEvents == 0 {
			t.Fatalf("cell %d: traced run reports no trace (digest=%q events=%d)", c.Index, c.TraceDigest, c.TraceEvents)
		}
	}
}

// TestTracedVsUntraced: attaching a recorder never changes the run —
// a traced report differs from the untraced one in the trace keys
// alone. Verified by clearing those keys and byte-comparing.
func TestTracedVsUntraced(t *testing.T) {
	for _, level := range []string{"decisions", "full"} {
		m := smokeMatrix()
		plain, err := Run(m, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		m.TraceLevel = level
		traced, err := Run(m, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := range traced.Cells {
			if traced.Cells[i].Verdict != plain.Cells[i].Verdict {
				t.Fatalf("level %s cell %d: traced verdict %q, untraced %q",
					level, i, traced.Cells[i].Verdict, plain.Cells[i].Verdict)
			}
			traced.Cells[i].TraceDigest = ""
			traced.Cells[i].TraceEvents = 0
		}
		traced.Matrix.TraceLevel = ""
		b1, _ := plain.CanonicalJSON()
		b2, _ := traced.CanonicalJSON()
		if !bytes.Equal(b1, b2) {
			t.Fatalf("level %s: traced report differs beyond the trace keys", level)
		}
	}
}

// TestFullLevelAddsVolume: the full level records everything decisions
// does, plus delivery volume.
func TestFullLevelAddsVolume(t *testing.T) {
	m := smokeMatrix()
	m.TraceLevel = "decisions"
	dec, err := Run(m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.TraceLevel = "full"
	full, err := Run(m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec.Cells {
		if full.Cells[i].TraceEvents <= dec.Cells[i].TraceEvents {
			t.Fatalf("cell %d: full level recorded %d events, decisions %d",
				i, full.Cells[i].TraceEvents, dec.Cells[i].TraceEvents)
		}
	}
}

// TestBadTraceLevelRejected: matrix expansion validates the level.
func TestBadTraceLevelRejected(t *testing.T) {
	m := smokeMatrix()
	m.TraceLevel = "verbose"
	if _, err := Run(m, Options{}); err == nil || !strings.Contains(err.Error(), "verbose") {
		t.Fatalf("want unknown-level error, got %v", err)
	}
}

func TestParsePerturbation(t *testing.T) {
	good := []string{"gst+100", "gst-50", "stab+2000", "stab-1", "crash=3@400", "crash=0@10", "hold[0]+500", "hold[2]-40"}
	for _, s := range good {
		p, err := ParsePerturbation(s)
		if err != nil {
			t.Errorf("ParsePerturbation(%q): %v", s, err)
			continue
		}
		if p.String() != s {
			t.Errorf("String() = %q, want %q", p.String(), s)
		}
	}
	bad := []string{"", "gst", "gst+", "gst+0", "stab100", "crash=3", "crash=3@-5", "hold[0]", "hold[-1]+5", "banana+1"}
	for _, s := range bad {
		if _, err := ParsePerturbation(s); err == nil {
			t.Errorf("ParsePerturbation(%q) accepted", s)
		}
	}
}

// TestReplayDivergence: a late-stab shift on a traced kset-omega cell
// reports a deterministic divergence — same perturbation, same minimal
// divergence point, run after run.
func TestReplayDivergence(t *testing.T) {
	m := replayMatrix()
	pert, err := ParsePerturbation("stab+2000")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Replay(m, 0, pert, trace.Off) // Off defaults to Decisions
	if err != nil {
		t.Fatal(err)
	}
	if r1.Level != trace.Decisions {
		t.Fatalf("level = %v, want decisions default", r1.Level)
	}
	if r1.Base.Verdict != Pass {
		t.Fatalf("baseline verdict %q: %s", r1.Base.Verdict, r1.Base.Detail)
	}
	if r1.Div == nil {
		t.Fatal("a 2000-tick stabilization shift diverged nothing")
	}
	if r1.Perturbed.Divergence != r1.Div.Summary || r1.Div.Summary == "" {
		t.Fatalf("divergence summary not reported: %+v", r1.Div)
	}
	if r1.Base.TraceDigest == r1.Perturbed.TraceDigest {
		t.Fatal("diverging traces share a digest")
	}
	r2, err := Replay(m, 0, pert, trace.Decisions)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Div.Summary != r1.Div.Summary || r2.Div.Prefix != r1.Div.Prefix ||
		r2.Base.TraceDigest != r1.Base.TraceDigest || r2.Perturbed.TraceDigest != r1.Perturbed.TraceDigest {
		t.Fatalf("replay not deterministic:\n  first: %s\n  second: %s", r1.Div.Summary, r2.Div.Summary)
	}
}

// TestReplayCrashPerturbation: an extra crash diverges the trace, and
// the baseline cell (whose pattern slices the perturbed cell cloned)
// is untouched.
func TestReplayCrashPerturbation(t *testing.T) {
	m := smokeMatrix()
	pert, err := ParsePerturbation("crash=2@600")
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Replay(m, 0, pert, trace.Decisions)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Div == nil {
		t.Fatal("an extra crash diverged nothing")
	}
	if len(rr.Cell.Pattern.Crashes) != 1 {
		t.Fatalf("baseline pattern mutated: %+v", rr.Cell.Pattern.Crashes)
	}
}

// TestReplayErrors: misapplicable perturbations are loud errors, not
// silent no-op replays.
func TestReplayErrors(t *testing.T) {
	stab, _ := ParsePerturbation("stab+100")
	if _, err := Replay(smokeMatrix(), 0, stab, trace.Decisions); err == nil ||
		!strings.Contains(err.Error(), "needs a generated oracle") {
		t.Errorf("stab on an oracle-less cell: %v", err)
	}
	hold, _ := ParsePerturbation("hold[3]+100")
	if _, err := Replay(smokeMatrix(), 0, hold, trace.Decisions); err == nil ||
		!strings.Contains(err.Error(), "holds") {
		t.Errorf("hold index out of range: %v", err)
	}
	crash, _ := ParsePerturbation("crash=99@5")
	if _, err := Replay(smokeMatrix(), 0, crash, trace.Decisions); err == nil {
		t.Error("crash of an unknown process accepted")
	}
	gst, _ := ParsePerturbation("gst+1")
	if _, err := Replay(smokeMatrix(), 99, gst, trace.Decisions); err == nil ||
		!strings.Contains(err.Error(), "index") {
		t.Errorf("out-of-range cell index: %v", err)
	}
}
