package sweep

import (
	"strings"
	"testing"

	"fdgrid/internal/core"
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// TestMatrixExpansion is the table-driven conformance suite for Cells():
// cell counts, cross-product order, defaulted dimensions, and the
// relative crash-spec / hold encodings.
func TestMatrixExpansion(t *testing.T) {
	base := Matrix{
		Name: "m", Protocol: "p",
		Seeds: []int64{0, 1}, Sizes: []Size{{N: 5, T: 2}},
		MaxSteps: 1000,
	}
	cases := []struct {
		name   string
		mutate func(*Matrix)
		cells  int
		check  func(t *testing.T, cells []Cell)
	}{
		{
			name:   "defaulted pattern and combo dimensions",
			mutate: func(*Matrix) {},
			cells:  2,
			check: func(t *testing.T, cells []Cell) {
				if cells[0].Pattern.Name != "none" {
					t.Errorf("default pattern name %q", cells[0].Pattern.Name)
				}
				if cells[0].Seed != 0 || cells[1].Seed != 1 {
					t.Errorf("seed order: %d, %d", cells[0].Seed, cells[1].Seed)
				}
			},
		},
		{
			name: "full cross product, seeds innermost",
			mutate: func(m *Matrix) {
				m.Sizes = []Size{{N: 4, T: 1}, {N: 6, T: 2}}
				m.Patterns = []CrashPattern{{Name: "a"}, {Name: "b"}, {Name: "c"}}
				m.Combos = []Combo{{X: 1}, {X: 2}}
			},
			cells: 2 * 3 * 2 * 2,
			check: func(t *testing.T, cells []Cell) {
				// sizes × patterns × combos × seeds, seeds innermost.
				if cells[0].Seed != 0 || cells[1].Seed != 1 {
					t.Error("seeds are not the innermost dimension")
				}
				if cells[0].Combo.X != 1 || cells[2].Combo.X != 2 {
					t.Error("combos are not the second-innermost dimension")
				}
				if cells[0].Pattern.Name != "a" || cells[4].Pattern.Name != "b" {
					t.Error("patterns do not vary above combos")
				}
				if cells[0].Size.N != 4 || cells[12].Size.N != 6 {
					t.Error("sizes are not the outermost dimension")
				}
				for i, c := range cells {
					if c.Index != i {
						t.Fatalf("cell %d has index %d", i, c.Index)
					}
				}
			},
		},
		{
			name: "relative crash specs resolve against each size",
			mutate: func(m *Matrix) {
				m.Sizes = []Size{{N: 4, T: 1}, {N: 7, T: 3}}
				m.Seeds = []int64{3}
				m.Patterns = []CrashPattern{{Name: "last-and-secondlast",
					Crashes: []CrashSpec{{Proc: 0, At: 100}}}}
			},
			cells: 2,
			check: func(t *testing.T, cells []Cell) {
				cfg0, err := cells[0].Config()
				if err != nil {
					t.Fatal(err)
				}
				if _, ok := cfg0.Crashes[ids.ProcID(4)]; !ok {
					t.Errorf("n=4: Proc 0 should resolve to p4, got %v", cfg0.Crashes)
				}
				cfg1, _ := cells[1].Config()
				if _, ok := cfg1.Crashes[ids.ProcID(7)]; !ok {
					t.Errorf("n=7: Proc 0 should resolve to p7, got %v", cfg1.Crashes)
				}
			},
		},
		{
			name: "holds pass through to the config",
			mutate: func(m *Matrix) {
				m.Seeds = []int64{0}
				m.Patterns = []CrashPattern{{Name: "held", Holds: []sim.Hold{
					{From: ids.NewSet(1), To: ids.NewSet(2), Until: 400}}}}
			},
			cells: 1,
			check: func(t *testing.T, cells []Cell) {
				cfg, err := cells[0].Config()
				if err != nil {
					t.Fatal(err)
				}
				if len(cfg.Holds) != 1 || cfg.Holds[0].Until != 400 {
					t.Errorf("holds not propagated: %+v", cfg.Holds)
				}
			},
		},
		{
			name: "bandwidth 0 becomes n",
			mutate: func(m *Matrix) {
				m.Seeds = []int64{0}
			},
			cells: 1,
			check: func(t *testing.T, cells []Cell) {
				cfg, _ := cells[0].Config()
				if cfg.Bandwidth != 5 {
					t.Errorf("bandwidth = %d, want n=5", cfg.Bandwidth)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := base
			tc.mutate(&m)
			cells, err := m.Cells()
			if err != nil {
				t.Fatal(err)
			}
			if len(cells) != tc.cells {
				t.Fatalf("got %d cells, want %d", len(cells), tc.cells)
			}
			tc.check(t, cells)
		})
	}
}

// TestMatrixExpansionErrors: invalid matrices are rejected at expansion,
// not at run time in a worker.
func TestMatrixExpansionErrors(t *testing.T) {
	valid := Matrix{Name: "m", Protocol: "p", Seeds: []int64{0},
		Sizes: []Size{{N: 3, T: 1}}, MaxSteps: 100}
	cases := []struct {
		name   string
		mutate func(*Matrix)
		want   string
	}{
		{"no protocol", func(m *Matrix) { m.Protocol = "" }, "no protocol"},
		{"no seeds", func(m *Matrix) { m.Seeds = nil }, "no seeds"},
		{"no sizes", func(m *Matrix) { m.Sizes = nil }, "no sizes"},
		{"no budget", func(m *Matrix) { m.MaxSteps = 0 }, "MaxSteps"},
		{"crash outside size", func(m *Matrix) {
			m.Patterns = []CrashPattern{{Name: "bad", Crashes: []CrashSpec{{Proc: 9, At: 1}}}}
		}, "outside"},
		{"relative crash underflows", func(m *Matrix) {
			m.Patterns = []CrashPattern{{Name: "bad", Crashes: []CrashSpec{{Proc: -5, At: 1}}}}
		}, "outside"},
		{"duplicate crash", func(m *Matrix) {
			m.Sizes = []Size{{N: 5, T: 2}}
			m.Patterns = []CrashPattern{{Name: "dup",
				Crashes: []CrashSpec{{Proc: 5, At: 1}, {Proc: 0, At: 2}}}}
		}, "twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := valid
			tc.mutate(&m)
			if _, err := m.Cells(); err == nil {
				t.Fatal("expansion accepted an invalid matrix")
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestComboString: labels used for grouping are stable and distinct.
func TestComboString(t *testing.T) {
	cases := []struct {
		combo Combo
		want  string
	}{
		{Combo{Name: "abd", X: 2}, "abd"},
		{Combo{Family: core.FamOmega, Param: 2}, "Omega_2"},
		{Combo{X: 1, Y: 2, Z: 3}, "x=1,y=2,z=3"},
	}
	for _, tc := range cases {
		if got := tc.combo.String(); got != tc.want {
			t.Errorf("Combo%+v.String() = %q, want %q", tc.combo, got, tc.want)
		}
	}
}

// TestRunUnknownProtocol: a matrix naming an unregistered protocol fails
// fast with the available names.
func TestRunUnknownProtocol(t *testing.T) {
	m := Matrix{Name: "m", Protocol: "no-such-protocol",
		Seeds: []int64{0}, Sizes: []Size{{N: 3, T: 1}}, MaxSteps: 100}
	if _, err := Run(m, Options{}); err == nil {
		t.Fatal("Run accepted an unknown protocol")
	}
}
