package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fdgrid/internal/trace"
)

// Runner executes one cell and fills in its result. Implementations must
// be pure: build the cell's own sim.System, run it, derive the verdict —
// no shared mutable state, so cells parallelize freely.
type Runner func(*Cell, *CellResult)

var (
	//detlint:allow runtoken -- the runner registry is host-side process-global state (package init + tests), not run state
	runnersMu sync.RWMutex
	runners   = make(map[string]Runner)
)

// Register installs a cell runner under a protocol name. Runners ship in
// runners.go; tests may register their own.
func Register(name string, r Runner) {
	runnersMu.Lock()
	defer runnersMu.Unlock()
	if _, dup := runners[name]; dup {
		panic(fmt.Sprintf("sweep: runner %q registered twice", name))
	}
	runners[name] = r
}

// Protocols lists the registered protocol names, sorted.
func Protocols() []string {
	runnersMu.RLock()
	defer runnersMu.RUnlock()
	out := make([]string, 0, len(runners))
	for name := range runners {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func runnerFor(name string) (Runner, bool) {
	runnersMu.RLock()
	defer runnersMu.RUnlock()
	r, ok := runners[name]
	return r, ok
}

// Shard selects a deterministic slice of a matrix's cells: shard i of m
// owns exactly the cells whose index ≡ i (mod m). The zero value means
// "run everything". m independent invocations with shards 0..m−1
// together cover the matrix exactly once, and MergeReports recombines
// their reports into the bytes the unsharded run would have produced —
// the mechanism behind CI fan-out and multi-machine sweeps.
type Shard struct {
	Index, Count int
}

// enabled reports whether the shard actually restricts the run.
func (s Shard) enabled() bool { return s.Count > 0 }

func (s Shard) validate() error {
	if !s.enabled() {
		return nil
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("sweep: shard %d/%d out of range", s.Index, s.Count)
	}
	return nil
}

// Options configures a sweep run.
type Options struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// Runner overrides the registry lookup (tests).
	Runner Runner
	// Shard restricts the run to one deterministic slice of the cells
	// (zero value: run all).
	Shard Shard
	// Context, when non-nil, bounds the run: once it is cancelled the
	// pool stops taking new cells (cells already running finish — a
	// cell is a deterministic unit and is never interrupted mid-run),
	// every worker goroutine exits, and Run returns the completed
	// cells plus the context's error. The partial report is internally
	// consistent (tallies cover exactly the returned cells) but which
	// cells completed is scheduling-dependent — a cancelled run is an
	// abort path, not a canonical artifact.
	Context context.Context
	// OnResult, when set, is called once per completed cell as it
	// finishes, before Run returns. Calls arrive concurrently from the
	// pool workers and in completion order (scheduling-dependent); the
	// callback must be safe for concurrent use. The report itself stays
	// index-ordered and deterministic regardless. This is the streaming
	// hook the distributed dispatcher's workers use to ship CellResults
	// over the wire as they land.
	OnResult func(CellResult)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run expands the matrix and executes every cell on a worker pool. Each
// worker runs cells to completion on isolated sim.System instances; the
// result slice is ordered by cell index, so the aggregated report is
// identical whatever the worker count. A panicking cell (a protocol bug)
// is contained and reported as an errored cell, not a crashed sweep.
// When opt.Context is cancelled mid-run, Run returns the partial report
// of the cells that completed together with the context's error — the
// one case where a non-nil error comes with a non-nil report.
func Run(m Matrix, opt Options) (*Report, error) {
	all, err := m.Cells()
	if err != nil {
		return nil, err
	}
	if err := opt.Shard.validate(); err != nil {
		return nil, err
	}
	cells := all
	var shardMeta *ShardMeta
	if opt.Shard.enabled() {
		owned := make([]Cell, 0, len(all)/opt.Shard.Count+1)
		for _, c := range all {
			if c.Index%opt.Shard.Count == opt.Shard.Index {
				owned = append(owned, c)
			}
		}
		cells = owned
		shardMeta = &ShardMeta{Index: opt.Shard.Index, Count: opt.Shard.Count, TotalCells: len(all)}
	}
	runner := opt.Runner
	if runner == nil {
		r, ok := runnerFor(m.Protocol)
		if !ok {
			return nil, fmt.Errorf("sweep: no runner registered for protocol %q (have %v)", m.Protocol, Protocols())
		}
		runner = r
	}

	//detlint:allow wallclock -- sweep report timing: WallNS is json:"-" and never reaches canonical bytes
	start := time.Now()
	results := make([]CellResult, len(cells))
	// completed[i] is written only by the worker that ran cell i and
	// read after wg.Wait (which publishes it); with no Context every
	// cell completes and the slice is all-true.
	completed := make([]bool, len(cells))
	// Lock-free work distribution: Add hands each worker a distinct
	// index. Which worker runs which cell stays scheduling-dependent —
	// but results[i] is written only by the worker that took i, and the
	// report is assembled in index order after wg.Wait, so the output is
	// deterministic regardless.
	//detlint:allow runtoken -- the worker pool's lock-free work counter; host-side, outside any run
	var next atomic.Int64
	take := func() int {
		if opt.Context != nil && opt.Context.Err() != nil {
			return -1
		}
		i := int(next.Add(1)) - 1
		if i >= len(cells) {
			return -1
		}
		return i
	}

	workers := opt.workers()
	if workers > len(cells) {
		workers = len(cells)
	}
	//detlint:allow runtoken -- joins the host-side worker pool before assembling the report
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//detlint:allow runtoken -- the documented host-side worker pool: each worker runs whole cells on isolated Systems
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				results[i] = runCell(runner, &cells[i])
				completed[i] = true
				if opt.OnResult != nil {
					opt.OnResult(results[i])
				}
			}
		}()
	}
	wg.Wait()

	var runErr error
	if opt.Context != nil && opt.Context.Err() != nil {
		// Cancelled: keep the completed prefix only, in index order.
		runErr = opt.Context.Err()
		kept := results[:0]
		for i := range results {
			if completed[i] {
				kept = append(kept, results[i])
			}
		}
		results = kept
	}

	//detlint:allow wallclock -- sweep report timing: WallNS is json:"-" and never reaches canonical bytes
	rep := &Report{Matrix: m, Cells: results, Shard: shardMeta, WallNS: time.Since(start).Nanoseconds()}
	for i := range results {
		switch results[i].Verdict {
		case Pass:
			rep.Passed++
		case Fail:
			rep.Failed++
		case ConfigError:
			rep.ConfigErrors++
		default:
			rep.Errored++
		}
	}
	return rep, runErr
}

// runCell executes one cell, containing panics as errored results.
// When the cell asks for tracing, the recorder is created here — owned
// by the cell for its whole run, so its digest lands in the result even
// if the runner panics mid-cell. The level was validated at Cells()
// expansion (Replay validates its own), so a bad level reads as Off.
func runCell(runner Runner, c *Cell) (res CellResult) {
	res = CellResult{
		Index:   c.Index,
		Seed:    c.Seed,
		Size:    c.Size,
		Pattern: c.Pattern.Name,
		Combo:   c.Combo,
		Oracle:  c.Oracle.Name,
		Verdict: Pass,
	}
	if lvl, err := trace.ParseLevel(c.TraceLevel); err == nil && lvl != trace.Off {
		c.rec = trace.New(lvl)
	}
	//detlint:allow wallclock -- per-cell report timing: WallNS is json:"-" and never reaches canonical bytes
	start := time.Now()
	defer func() {
		//detlint:allow wallclock -- per-cell report timing: WallNS is json:"-" and never reaches canonical bytes
		res.WallNS = time.Since(start).Nanoseconds()
		if r := recover(); r != nil {
			res.Verdict = Errored
			res.Detail = fmt.Sprintf("panic: %v", r)
		}
		if c.rec != nil {
			res.TraceDigest = c.rec.Digest()
			res.TraceEvents = c.rec.Len()
		}
	}()
	runner(c, &res)
	return res
}
