package sweep

import (
	"fmt"
	"sort"

	"fdgrid/internal/adversary"
	"fdgrid/internal/agreement"
	"fdgrid/internal/core"
	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/rbcast"
	"fdgrid/internal/reduction"
	"fdgrid/internal/sim"
)

// The built-in cell runners: every experiment family of DESIGN.md §5
// (the paper's figures and theorems) expressed as a protocol a Matrix
// can sweep. Registered under these names:
//
//	kset-grid      — grid class → prescribed transformation → Fig. 3 k-set
//	kset-omega     — Fig. 3 directly over a (possibly pinned) Ω_z oracle
//	kset-seq       — repeated Fig. 3 instances (zero-degradation)
//	consensus-ds   — the ◇S rotating-coordinator consensus ancestor
//	two-wheels     — ◇S_x + ◇φ_y → Ω_z (Figs. 5–6), trace-checked
//	single-wheel   — the companion quiescent ◇S → Ω transformation
//	lower-wheel    — Fig. 5 alone: representatives + quiescence
//	psi-omega      — Ψ_y → Ω_z (Fig. 8), message-free
//	add-s          — S_x + φ_y → S_n (Fig. 9) over a register substrate
//	phi-o1         — Observation O1: f ≤ t−y ⇒ informative queries false
//	irreducibility — Theorem 9 crash-vs-delay run pair, one claimed τ
func init() {
	Register("kset-grid", runKSetGrid)
	Register("kset-omega", runKSetOmega)
	Register("kset-seq", runKSetSeq)
	Register("consensus-ds", runConsensusDS)
	Register("two-wheels", runTwoWheels)
	Register("single-wheel", runSingleWheel)
	Register("lower-wheel", runLowerWheel)
	Register("psi-omega", runPsiOmega)
	Register("add-s", runAddS)
	Register("phi-o1", runPhiO1)
	Register("irreducibility", runIrreducibility)
}

// recordRun copies the run report into the result.
func recordRun(res *CellResult, rep sim.Report) {
	res.Steps = rep.Steps
	res.StoppedEarly = rep.StoppedEarly
	res.Messages = rep.Messages.TotalSent
	if len(rep.Messages.Sent) > 0 {
		res.SentByTag = rep.Messages.Sent
	}
}

// recordOutcome copies agreement results into the result.
func recordOutcome(res *CellResult, o *agreement.Outcome) {
	vals := o.DistinctValues()
	res.Decided = make([]int, len(vals))
	for i, v := range vals {
		res.Decided[i] = int(v)
	}
	res.Decisions = len(o.Decisions())
	res.MaxRound = o.MaxRound()
}

// checkRound1 fails the cell unless every decision happened in round 1.
func checkRound1(res *CellResult, o *agreement.Outcome) {
	for _, d := range o.Decisions() {
		if d.Round != 1 {
			res.fail(fmt.Sprintf("decision in round %d, want 1", d.Round))
			return
		}
	}
}

// runKSetGrid: one grid class solves its line's k-set agreement through
// the transformations the paper prescribes (EXP-F1, and EXP-F3 shapes).
func runKSetGrid(c *Cell, res *CellResult) {
	sys, err := c.System()
	if err != nil {
		panic(err)
	}
	if !requireNoOracle(c, res) {
		return
	}
	out, err := core.SpawnKSetWith(sys, c.Combo.Class(), nil)
	if err != nil {
		panic(err)
	}
	k := c.Combo.Z
	if k == 0 {
		k = core.KSetPower(c.Combo.Class(), c.Size.T)
	}
	rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
	recordRun(res, rep)
	recordOutcome(res, out)
	if !rep.StoppedEarly {
		res.fail("timed out before all correct processes decided")
	}
	if err := out.Check(sys.Pattern(), k); err != nil {
		res.fail(err.Error())
	}
}

// tagOracle records the cell's generated-oracle identity and its
// fd/check.go conformance verdict on the result. It returns false when
// the script leaves its declared class under this cell's failure
// pattern — the cell fails and the protocol run is skipped (running a
// protocol over an out-of-class oracle proves nothing and can block
// until the step cap).
func tagOracle(c *Cell, sys *sim.System, res *CellResult) bool {
	s := &c.Oracle
	if s.None() {
		return true
	}
	res.OracleClass = s.Class()
	if err := s.Conformance(sys.Pattern(), c.MaxSteps); err != nil {
		res.OracleConformance = "violates: " + err.Error()
		res.fail("generated oracle script leaves its declared class: " + err.Error())
		return false
	}
	res.OracleConformance = "conforms"
	return true
}

// failOracle marks a cell misconfigured over a script shape mismatch or
// a pinning conflict — matrix-author mistakes, reported as ConfigError
// rather than Fail so they never read as paper-claim counterexamples —
// recording the script's class first so every rejection path keeps the
// report row's class tag. Returns false for use in the resolvers'
// return statements.
func failOracle(res *CellResult, s *adversary.OracleScript, format string, args ...any) bool {
	res.OracleClass = s.Class()
	res.failConfig(fmt.Sprintf(format, args...))
	return false
}

// requireNoOracle fails cells that declare a generated oracle for a
// protocol that does not consume the oracle dimension — better a loud
// failure than a sweep silently ignoring one of its axes.
func requireNoOracle(c *Cell, res *CellResult) bool {
	if c.Oracle.None() {
		return true
	}
	return failOracle(res, &c.Oracle, "protocol %q does not consume the generated-oracle dimension (script %s)", c.Protocol, c.Oracle.Name)
}

// oracleLeader resolves the cell's oracle dimension for a leader-reading
// protocol: a leader timeline becomes a ScriptedLeader, a parameter
// script configures the ground-truth Ω_z, and the zero script falls back
// to the cell's default Ω oracle. ok=false means the cell already
// failed (nonconforming script or a script of the wrong shape).
func oracleLeader(c *Cell, sys *sim.System, res *CellResult, z int) (oracle fd.Leader, ok bool) {
	s := &c.Oracle
	if s.None() {
		return omegaOracle(c, sys, z), true
	}
	if s.IsPair() {
		return nil, failOracle(res, s, "oracle script %s is a pair; protocol %q reads a single leader oracle", s.Name, c.Protocol)
	}
	if len(s.Suspect) > 0 {
		return nil, failOracle(res, s, "oracle script %s is a suspector timeline; protocol %q reads a leader", s.Name, c.Protocol)
	}
	// The default path's oracle pinning must not be silently dropped:
	// stab0 contradicts any generated script (both fix the stabilization
	// time), and a pinned trusted set contradicts a timeline (the script
	// already fixes every output) but composes with a parameter script.
	if c.Param("stab0", 0) != 0 {
		return nil, failOracle(res, s, "param stab0 conflicts with generated oracle script %s (both pin the stabilization time)", s.Name)
	}
	if len(s.Leader) > 0 && len(c.Combo.Trusted) > 0 {
		return nil, failOracle(res, s, "combo pins a trusted set but oracle script %s already fixes the timeline", s.Name)
	}
	// Timelines always declare their bound; a parameter script declares
	// one optionally, and an undeclared bound composes with any combo.
	if s.Z != 0 && s.Z != z {
		return nil, failOracle(res, s, "oracle script %s declares z=%d, combo wants z=%d", s.Name, s.Z, z)
	}
	if !tagOracle(c, sys, res) {
		return nil, false
	}
	if len(s.Leader) > 0 {
		return fd.NewScriptedLeader(sys, s.Leader), true
	}
	opts := s.Options()
	if len(c.Combo.Trusted) > 0 {
		opts = append(opts, fd.WithTrusted(set(c.Combo.Trusted)))
	}
	return fd.NewOmega(sys, z, opts...), true
}

// oracleSuspector is oracleLeader for suspector-reading protocols: a
// suspect timeline becomes a ScriptedSuspector, a parameter script
// configures the ground-truth ◇S_x, and the zero script falls back to
// the plain ◇S_x.
func oracleSuspector(c *Cell, sys *sim.System, res *CellResult, x int) (susp fd.Suspector, ok bool) {
	s := &c.Oracle
	if s.None() {
		return fd.NewEvtS(sys, x), true
	}
	if s.IsPair() {
		return nil, failOracle(res, s, "oracle script %s is a pair; protocol %q reads a single suspector oracle", s.Name, c.Protocol)
	}
	if len(s.Leader) > 0 {
		return nil, failOracle(res, s, "oracle script %s is a leader timeline; protocol %q reads a suspector", s.Name, c.Protocol)
	}
	// Timelines always declare their scope; a parameter script declares
	// one optionally, and an undeclared scope composes with any combo.
	if s.X != 0 && s.X != x {
		return nil, failOracle(res, s, "oracle script %s declares x=%d, combo wants x=%d", s.Name, s.X, x)
	}
	if !tagOracle(c, sys, res) {
		return nil, false
	}
	if len(s.Suspect) > 0 {
		return fd.NewScriptedSuspector(sys, s.Suspect), true
	}
	return fd.NewEvtS(sys, x, s.Options()...), true
}

// oraclePhiOpts resolves the cell's oracle dimension for a
// querier-reading protocol, where only parameter scripts make sense:
// it returns the ground-truth options plus whether the oracle is the
// eventual flavor (a generated parameter script always is — its whole
// point is a misbehaving prefix).
func oraclePhiOpts(c *Cell, sys *sim.System, res *CellResult, y int) (opts []fd.Option, eventual, ok bool) {
	s := &c.Oracle
	if s.None() {
		return nil, false, true
	}
	if s.IsPair() {
		return nil, false, failOracle(res, s, "oracle script %s is a pair; protocol %q reads a single querier oracle", s.Name, c.Protocol)
	}
	if s.IsTimeline() {
		return nil, false, failOracle(res, s, "oracle script %s is a timeline; protocol %q reads a querier", s.Name, c.Protocol)
	}
	// A parameter script declares its querier scope optionally; an
	// undeclared scope composes with any combo.
	if s.Y != 0 && s.Y != y {
		return nil, false, failOracle(res, s, "oracle script %s declares y=%d, combo wants y=%d", s.Name, s.Y, y)
	}
	if !tagOracle(c, sys, res) {
		return nil, false, false
	}
	return s.Options(), true, true
}

// roleVerdict renders one role's conformance error as a report verdict.
func roleVerdict(err error) string {
	if err == nil {
		return "conforms"
	}
	return "violates: " + err.Error()
}

// jointViolation renders the combined reason of a pair's role failures.
func jointViolation(sErr, phiErr error) string {
	switch {
	case sErr != nil && phiErr != nil:
		return fmt.Sprintf("S role: %v; phi role: %v", sErr, phiErr)
	case sErr != nil:
		return fmt.Sprintf("S role: %v", sErr)
	default:
		return fmt.Sprintf("phi role: %v", phiErr)
	}
}

// tagOraclePair is tagOracle for paired scripts: each role is checked
// against its declared class — the perpetual flavors when the cell runs
// the perpetual addition — under this cell's failure pattern, the
// per-role verdicts land in OracleS/OraclePhi and the joint verdict in
// OracleConformance. false means the pair leaves its declared classes
// and the cell failed (the protocol run is skipped: running an addition
// over an out-of-class input pair proves nothing).
func tagOraclePair(c *Cell, sys *sim.System, res *CellResult, perpetual bool) bool {
	s := &c.Oracle
	res.OracleClass = s.Class()
	sErr := s.Pair.SConformance(sys.Pattern(), c.MaxSteps, perpetual)
	phiErr := s.Pair.PhiConformance(sys.Pattern(), c.MaxSteps, perpetual)
	res.OracleS = roleVerdict(sErr)
	res.OraclePhi = roleVerdict(phiErr)
	if sErr == nil && phiErr == nil {
		res.OracleConformance = "conforms"
		return true
	}
	why := jointViolation(sErr, phiErr)
	res.OracleConformance = "violates: " + why
	res.fail("generated oracle pair leaves its declared classes: " + why)
	return false
}

// oraclePair resolves a paired script into the two role oracles of an
// addition protocol: the S role becomes a scripted suspector (suspect
// timeline) or a parameterized ground-truth S_x/◇S_x, the φ role a
// parameterized ground-truth φ_y/◇φ_y. ok=false means the cell already
// failed — a role/scope mismatch (ConfigError) or a nonconforming pair
// (Fail).
func oraclePair(c *Cell, sys *sim.System, res *CellResult, x, y int, perpetual bool) (susp fd.Suspector, quer *fd.Phi, ok bool) {
	s := &c.Oracle
	p := s.Pair
	if p.S.X != x {
		failOracle(res, s, "oracle pair %s declares S-role x=%d, combo wants x=%d", s.Name, p.S.X, x)
		return nil, nil, false
	}
	if p.Phi.Y != y {
		failOracle(res, s, "oracle pair %s declares phi-role y=%d, combo wants y=%d", s.Name, p.Phi.Y, y)
		return nil, nil, false
	}
	if c.Param("stab0", 0) != 0 {
		failOracle(res, s, "param stab0 conflicts with generated oracle pair %s (both pin the stabilization time)", s.Name)
		return nil, nil, false
	}
	if len(c.Combo.Trusted) > 0 {
		failOracle(res, s, "combo pins a trusted set but oracle pair %s scripts the suspector role", s.Name)
		return nil, nil, false
	}
	if !tagOraclePair(c, sys, res, perpetual) {
		return nil, nil, false
	}
	switch {
	case len(p.S.Suspect) > 0:
		susp = fd.NewScriptedSuspector(sys, p.S.Suspect)
	case perpetual:
		susp = fd.NewS(sys, x, p.S.Options()...)
	default:
		susp = fd.NewEvtS(sys, x, p.S.Options()...)
	}
	if perpetual {
		quer = fd.NewPhi(sys, y, p.Phi.Options()...)
	} else {
		quer = fd.NewEvtPhi(sys, y, p.Phi.Options()...)
	}
	return susp, quer, true
}

// omegaOracle builds the cell's Ω oracle with optional pinning.
func omegaOracle(c *Cell, sys *sim.System, z int) *fd.Omega {
	var opts []fd.Option
	if c.Param("stab0", 0) != 0 {
		opts = append(opts, fd.WithStabilizeAt(0))
	}
	if len(c.Combo.Trusted) > 0 {
		opts = append(opts, fd.WithTrusted(set(c.Combo.Trusted)))
	}
	return fd.NewOmega(sys, z, opts...)
}

// runKSetOmega: the Fig. 3 algorithm over a ground-truth Ω_z oracle —
// covers EXP-F3 (scaling), EXP-F3a/b (oracle-efficiency and
// zero-degradation, via stab0/trusted pinning and require_round1) and
// the EXP-T5 z ≤ k tightness cells.
func runKSetOmega(c *Cell, res *CellResult) {
	sys, err := c.System()
	if err != nil {
		panic(err)
	}
	z := c.Combo.Z
	if z == 0 {
		z = 1
	}
	oracle, ok := oracleLeader(c, sys, res, z)
	if !ok {
		return
	}
	fd.TraceLeader(sys, oracle, "oracle")
	out := agreement.NewOutcome()
	for p := 1; p <= c.Size.N; p++ {
		id := ids.ProcID(p)
		sys.Spawn(id, agreement.KSetMain(oracle, agreement.Value(int(c.Param("value_base", 100))+p), out))
	}
	rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
	recordRun(res, rep)
	recordOutcome(res, out)
	if !rep.StoppedEarly {
		res.fail("timed out before all correct processes decided")
	}
	k := int(c.Param("k", int64(z)))
	if err := out.Check(sys.Pattern(), k); err != nil {
		res.fail(err.Error())
	}
	if c.Param("require_round1", 0) != 0 {
		checkRound1(res, out)
	}
}

// runKSetSeq: consecutive independent k-set instances under a perfect
// pinned oracle and initial crashes — zero-degradation in use (EXP-ZD).
func runKSetSeq(c *Cell, res *CellResult) {
	sys, err := c.System()
	if err != nil {
		panic(err)
	}
	z := c.Combo.Z
	if z == 0 {
		z = 1
	}
	oracle, ok := oracleLeader(c, sys, res, z)
	if !ok {
		return
	}
	fd.TraceLeader(sys, oracle, "oracle")
	instances := int(c.Param("instances", 4))
	outs := make([]*agreement.Outcome, instances)
	for j := range outs {
		outs[j] = agreement.NewOutcome()
	}
	for p := 1; p <= c.Size.N; p++ {
		id := ids.ProcID(p)
		vals := make([]agreement.Value, instances)
		for j := range vals {
			vals[j] = agreement.Value(100*(j+1) + p)
		}
		sys.Spawn(id, agreement.SequenceMain(oracle, vals, outs))
	}
	rep := sys.Run(agreement.AllInstancesDecided(outs, sys.Pattern().Correct()))
	recordRun(res, rep)
	res.measure("vticks_per_instance", int64(rep.Steps)/int64(instances))
	if !rep.StoppedEarly {
		res.fail("timed out before every instance decided")
	}
	for j, o := range outs {
		if err := o.Check(sys.Pattern(), z); err != nil {
			res.fail(fmt.Sprintf("instance %d: %v", j, err))
		}
		checkRound1(res, o)
	}
}

// runConsensusDS: the rotating-coordinator ◇S consensus of [18]
// (baseline for Fig. 3 at z = k = 1).
func runConsensusDS(c *Cell, res *CellResult) {
	sys, err := c.System()
	if err != nil {
		panic(err)
	}
	susp, ok := oracleSuspector(c, sys, res, c.Size.N)
	if !ok {
		return
	}
	fd.TraceSuspector(sys, susp, "oracle")
	out := agreement.NewOutcome()
	for p := 1; p <= c.Size.N; p++ {
		id := ids.ProcID(p)
		sys.Spawn(id, agreement.ConsensusDSMain(susp, agreement.Value(int(id)), out))
	}
	rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
	recordRun(res, rep)
	recordOutcome(res, out)
	if !rep.StoppedEarly {
		res.fail("timed out before all correct processes decided")
	}
	if err := out.Check(sys.Pattern(), 1); err != nil {
		res.fail(err.Error())
	}
}

// watchMark installs a sparse sampler recording the wire traffic of tag
// at the first scheduled tick at or after mark.
func watchMark(sys *sim.System, tag sim.Tag, mark sim.Time, res *CellResult, name string) {
	if mark <= 0 {
		return
	}
	sys.WakeAt(mark)
	done := false
	sys.OnAdvance(func(now sim.Time) {
		if done || now < mark {
			return
		}
		done = true
		res.measure(name, sys.Metrics().Sent(tag))
	})
}

// hintOracleChanges schedules a tick at every future time the oracle's
// output can change. Sparse traces of an emulated output that consults
// an oracle live at read time (the upper wheel's Trusted queries its
// ◇φ_y) need this: without it a clock jump could skip the tick at which
// the oracle flips the emulated output, and the trace would misstate
// the change timeline.
func hintOracleChanges(sys *sim.System, o any) {
	h, ok := o.(fd.ChangeHinted)
	if !ok {
		return
	}
	sys.OnAdvance(func(now sim.Time) {
		if t := h.NextChange(now); t < sim.Never {
			sys.WakeAt(t)
		}
	})
}

// stabilizationOf returns the latest output change among correct
// processes.
func stabilizationOf(trace *fd.SetTrace, correct ids.Set) sim.Time {
	var last sim.Time
	correct.ForEach(func(q ids.ProcID) bool {
		if lc := trace.LastChange(q); lc > last {
			last = lc
		}
		return true
	})
	return last
}

// runTwoWheels: the addition ◇S_x + ◇φ_y → Ω_z (EXP-F2, EXP-F6, EXP-T8).
// Params: stable_for (early stop once outputs rested that long), margin
// (Ω check stable suffix), mark (inquiry traffic sample point),
// require_nonquiescent (inquiries must continue past mark),
// expect_tight (the Ω_{z−1} check must fail: the resting set has full
// size z).
func runTwoWheels(c *Cell, res *CellResult) {
	sys, err := c.System()
	if err != nil {
		panic(err)
	}
	x, y := c.Combo.X, c.Combo.Y
	z := c.Combo.Z
	if z == 0 {
		z = c.Size.T + 2 - x - y
	}
	var susp fd.Suspector
	var quer *fd.Phi
	if c.Oracle.IsPair() {
		// A paired script drives both roles independently: its own ◇S_x
		// script for the suspector, its own ◇φ_y parameters for the
		// querier, each conformance-checked against its declared class.
		var ok bool
		susp, quer, ok = oraclePair(c, sys, res, x, y, false)
		if !ok {
			return
		}
	} else {
		var ok bool
		susp, ok = oracleSuspector(c, sys, res, x)
		if !ok {
			return
		}
		// A single parameter script configures the whole oracle
		// environment, and two-wheels reads two oracles: the ◇φ_y gets the
		// same stabilization/anarchy configuration as the ◇S_x, or the
		// swept dimension would be silently half-applied. (Timeline
		// scripts name a single role — the suspector — and leave the
		// querier default.)
		if s := &c.Oracle; !s.None() && !s.IsTimeline() {
			quer = fd.NewEvtPhi(sys, y, s.Options()...)
		} else {
			quer = fd.NewEvtPhi(sys, y)
		}
	}
	fd.TraceSuspector(sys, susp, "oracle-s")
	emu, _ := reduction.SpawnTwoWheels(sys, susp, quer, x, y)
	fd.TraceLeader(sys, emu, "emu")
	trace := fd.WatchLeaderSparse(sys, emu)
	// The emulated Trusted consults the querier live; make sure every
	// tick it can change at is scheduled, so the sparse trace is exact.
	hintOracleChanges(sys, quer)
	watchMark(sys, sim.Intern("wheel.inquiry"), sim.Time(c.Param("mark", 0)), res, "inquiries_at_mark")
	var stop func() bool
	if sf := sim.Time(c.Param("stable_for", 0)); sf > 0 {
		stop = trace.StableFor(sys.Pattern().Correct(), sf)
	}
	rep := sys.Run(stop)
	recordRun(res, rep)
	margin := sim.Time(c.Param("margin", 10_000))
	if err := trace.CheckOmega(sys.Pattern(), z, margin); err != nil {
		res.fail(err.Error())
	}
	res.measure("stabilization", int64(stabilizationOf(trace, sys.Pattern().Correct())))
	if z > 1 {
		tighter := trace.CheckOmega(sys.Pattern(), z-1, margin) == nil
		if tighter {
			res.measure("z_minus_1_passes", 1)
		} else {
			res.measure("z_minus_1_passes", 0)
		}
		if c.Param("expect_tight", 0) != 0 && tighter {
			res.fail(fmt.Sprintf("output rested on fewer than z=%d processes: x+y+z ≥ t+2 not tight here", z))
		}
	}
	if c.Param("mark", 0) > 0 {
		end := rep.Messages.Sent["wheel.inquiry"]
		res.measure("inquiries_end", end)
		if c.Param("require_nonquiescent", 0) != 0 {
			at := res.Measures["inquiries_at_mark"]
			if at <= 0 || end <= at {
				res.fail("inquiry traffic stopped: the upper wheel must keep inquiring forever")
			}
		}
	}
}

// runSingleWheel: the companion transformation [17] — quiescent, needs
// full-scope ◇S (the EXP-ABL counterpart of two-wheels with y=0).
func runSingleWheel(c *Cell, res *CellResult) {
	sys, err := c.System()
	if err != nil {
		panic(err)
	}
	susp, ok := oracleSuspector(c, sys, res, c.Size.N)
	if !ok {
		return
	}
	fd.TraceSuspector(sys, susp, "oracle")
	emu := reduction.SpawnSingleWheel(sys, susp)
	fd.TraceLeader(sys, emu, "emu")
	trace := fd.WatchLeaderSparse(sys, emu)
	var stop func() bool
	if sf := sim.Time(c.Param("stable_for", 0)); sf > 0 {
		stop = trace.StableFor(sys.Pattern().Correct(), sf)
	}
	rep := sys.Run(stop)
	recordRun(res, rep)
	if err := trace.CheckOmega(sys.Pattern(), 1, sim.Time(c.Param("margin", 10_000))); err != nil {
		res.fail(err.Error())
	}
	res.measure("stabilization", int64(stabilizationOf(trace, sys.Pattern().Correct())))
}

// runLowerWheel: Fig. 5 alone (EXP-F5) — every correct process rests on
// the same (ℓ, X) pair, and x_move traffic is quiescent: no sends after
// the mark.
func runLowerWheel(c *Cell, res *CellResult) {
	sys, err := c.System()
	if err != nil {
		panic(err)
	}
	x := c.Combo.X
	susp, ok := oracleSuspector(c, sys, res, x)
	if !ok {
		return
	}
	fd.TraceSuspector(sys, susp, "oracle")
	reprs := reduction.SpawnLowerWheel(sys, susp, x)
	wire := rbcast.WireTag(sim.Intern("wheel.xmove"))
	mark := sim.Time(c.Param("mark", 0))
	watchMark(sys, wire, mark, res, "xmove_at_mark")
	rep := sys.Run(nil)
	recordRun(res, rep)

	stable := true
	var pos ids.XPos
	first := true
	sys.Pattern().Correct().ForEach(func(p ids.ProcID) bool {
		pp, ok := reprs.Pos(p)
		if !ok {
			stable = false
			return false
		}
		if first {
			pos, first = pp, false
		} else if pp.Leader != pos.Leader || !pp.X.Equal(pos.X) {
			stable = false
		}
		return true
	})
	if !stable {
		res.fail("correct processes did not rest on a common (leader, X) pair")
	}
	end := rep.Messages.Sent[wire.String()]
	res.measure("xmove_end", end)
	if mark > 0 {
		at, ok := res.Measures["xmove_at_mark"]
		if !ok || end != at {
			res.fail(fmt.Sprintf("x_move traffic not quiescent: %d sends at mark, %d at end", at, end))
		}
	}
}

// runPsiOmega: Ψ_y → Ω_z for y+z > t (EXP-F8) — local chain queries,
// zero messages. The watched output is a pure oracle chain (it churns
// with the clock before stabilization), so the trace is dense.
func runPsiOmega(c *Cell, res *CellResult) {
	sys, err := c.System()
	if err != nil {
		panic(err)
	}
	y, z := c.Combo.Y, c.Combo.Z
	opts, eventual, ok := oraclePhiOpts(c, sys, res, y)
	if !ok {
		return
	}
	var phi *fd.Phi
	if eventual {
		phi = fd.NewEvtPhi(sys, y, opts...)
	} else {
		phi = fd.NewPhi(sys, y)
	}
	psi := fd.WrapPsi(phi)
	po := reduction.NewPsiOmega(c.Size.N, c.Size.T, y, z, psi)
	fd.TraceLeader(sys, po, "emu")
	trace := fd.WatchLeader(sys, po)
	rep := sys.Run(nil)
	recordRun(res, rep)
	if err := trace.CheckOmega(sys.Pattern(), z, sim.Time(c.Param("margin", 1_000))); err != nil {
		res.fail(err.Error())
	}
	if rep.Messages.TotalSent != 0 {
		res.fail(fmt.Sprintf("sent %d messages, want 0", rep.Messages.TotalSent))
	}
}

// runAddS: S_x + φ_y → S_n over a register substrate named by the combo
// (EXP-F9). Params: perpetual (inputs and output are the perpetual
// classes), margin (checker stable suffix), stop_slack (extra rest time
// past the margin before the early stop; default margin/5).
func runAddS(c *Cell, res *CellResult) {
	sys, err := c.System()
	if err != nil {
		panic(err)
	}
	x, y := c.Combo.X, c.Combo.Y
	perpetual := c.Param("perpetual", 1) != 0
	var susp fd.Suspector
	var quer fd.Querier
	if c.Oracle.IsPair() {
		// A paired script names one oracle per role — the only shape the
		// generated dimension can take here, since add-s consumes two
		// oracles and a single script would be ambiguous about which role
		// it drives.
		s, q, ok := oraclePair(c, sys, res, x, y, perpetual)
		if !ok {
			return
		}
		susp, quer = s, q
	} else {
		if !requireNoOracle(c, res) {
			return
		}
		if perpetual {
			susp, quer = fd.NewS(sys, x), fd.NewPhi(sys, y)
		} else {
			susp, quer = fd.NewEvtS(sys, x), fd.NewEvtPhi(sys, y)
		}
	}
	fd.TraceSuspector(sys, susp, "oracle-s")
	emu := reduction.SpawnAddS(sys, susp, quer, c.Combo.Name)
	fd.TraceSuspector(sys, emu, "emu")
	trace := fd.WatchSuspectorSparse(sys, emu)
	margin := sim.Time(c.Param("margin", 20_000))
	// Stop once every correct process's output has rested well past the
	// checker's stable-suffix margin: running further cannot change the
	// verdict, only burn virtual time. The rest slack scales with the
	// margin so large-margin cells don't stop inside the checker's
	// window.
	slack := sim.Time(c.Param("stop_slack", int64(margin/5)))
	rep := sys.Run(trace.StableFor(sys.Pattern().Correct(), margin+slack))
	recordRun(res, rep)
	if err := trace.CheckSuspector(sys.Pattern(), c.Size.N, perpetual, margin); err != nil {
		res.fail(err.Error())
	}
}

// runPhiO1: Observation O1 — with f ≤ t−y crashes, a φ_y answers every
// informative query false (it can only vouch by size). Sampled densely
// at the tick Params["at"].
func runPhiO1(c *Cell, res *CellResult) {
	sys, err := c.System()
	if err != nil {
		panic(err)
	}
	if !requireNoOracle(c, res) {
		return
	}
	y := c.Combo.Y
	phi := fd.NewPhi(sys, y)
	at := sim.Time(c.Param("at", 1_500))
	ringX := int(c.Param("ring_x", int64(c.Size.T)))
	informative := true
	sys.OnTick(func(now sim.Time) {
		if now != at {
			return
		}
		r := ids.NewRing(ids.FullSet(c.Size.N), ringX)
		for i := uint64(0); i < r.Len(); i++ {
			if phi.Query(ids.ProcID(1+int(i)%c.Size.N), r.Current()) {
				informative = false
			}
			r.Next()
		}
	})
	rep := sys.Run(nil)
	recordRun(res, rep)
	if !informative {
		res.fail("an informative region queried true with f ≤ t−y crashes")
	}
}

// runIrreducibility: one Theorem 9 crash-vs-delay cell — for the claimed
// stabilization time τ = Params["tau"], run R (region E crashes) makes
// the straw-man reducer S_x → φ_y answer true about E, and the
// indistinguishable run R′ (E alive, delayed past τ) makes the same
// reducer answer true about live processes after τ: a safety violation.
// The region E comes from Combo.Region; Params: crash_at, slack (extra
// horizon past τ).
func runIrreducibility(c *Cell, res *CellResult) {
	if !requireNoOracle(c, res) {
		return
	}
	tau := sim.Time(c.Param("tau", 500))
	slack := sim.Time(c.Param("slack", 2_000))
	e := set(c.Combo.Region)
	x, y := c.Combo.X, c.Combo.Y
	rp := adversary.RunPair{
		N: c.Size.N, T: c.Size.T, E: e,
		CrashAt: sim.Time(c.Param("crash_at", 100)),
		Horizon: tau + slack/2, Seed: c.Seed,
	}
	probe := func(cfg sim.Config, prime bool) sim.Time {
		sys := sim.MustNew(cfg)
		var susp fd.Suspector
		if prime {
			susp = rp.SuspectorForRPrime(sys, x, 1)
		} else {
			susp = rp.SuspectorForR(sys, x, 1)
		}
		red := adversary.NewPhiFromS(susp, c.Size.T, y)
		var at sim.Time = -1
		sys.OnTick(func(now sim.Time) {
			if at < 0 && now > tau && red.Query(1, e) {
				at = now
			}
		})
		sys.Run(func() bool { return at >= 0 })
		return at
	}
	atR := probe(rp.ConfigR(tau+slack), false)
	atP := probe(rp.ConfigRPrime(tau+slack), true)
	res.measure("query_true_in_r", int64(atR))
	res.measure("violation_in_r_prime", int64(atP))
	if atR < 0 {
		res.fail("run R: the reducer never answered true about the crashed region")
	}
	if atP <= tau {
		res.fail(fmt.Sprintf("run R′: no safety violation after τ=%d", tau))
	}
}

// MaxDistinct returns the largest decided-value count across cells — the
// EXP-T5 aggregate (Ω_z runs must reach, but never exceed, z values).
func MaxDistinct(cells []CellResult) int {
	max := 0
	for i := range cells {
		if d := len(cells[i].Decided); d > max {
			max = d
		}
	}
	return max
}

// SortedTags returns the union of wire tags across cells, sorted
// (report rendering helper).
func SortedTags(cells []CellResult) []string {
	seen := map[string]bool{}
	for i := range cells {
		for tag := range cells[i].SentByTag {
			seen[tag] = true
		}
	}
	tags := make([]string, 0, len(seen))
	for tag := range seen {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	return tags
}
