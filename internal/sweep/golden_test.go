package sweep

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fdgrid/internal/core"
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// The golden-report guard: two representative matrices whose canonical
// JSON is compared byte-for-byte against checked-in files. Together they
// exercise every scheduler surface whose behaviour must survive
// refactors unchanged — random delivery order, crash drops, scripted
// holds, reliable-broadcast relays, per-tag metrics, time-mark samplers
// and early-stop predicates. Any scheduler change that alters a verdict,
// a delivery order, a tick count or a message count shows up here as a
// byte diff.
//
// Regenerate (only when a behaviour change is intended and understood):
//
//	go test ./internal/sweep -run TestGoldenReports -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden sweep reports")

func goldenMatrices() []Matrix {
	return []Matrix{
		{
			// Agreement over the grid: kset + rbcast decision frames,
			// crashes both initial and late, several grid classes.
			Name: "golden-kset", Protocol: "kset-grid",
			Seeds: []int64{0, 1, 2},
			Sizes: []Size{{N: 5, T: 2}},
			Patterns: []CrashPattern{
				{Name: "late-crash", Crashes: []CrashSpec{{Proc: 4, At: 900}}},
				{Name: "initial-crash", Crashes: []CrashSpec{{Proc: 2, At: 0}}},
			},
			Combos: []Combo{
				{Family: core.FamOmega, Param: 1, Z: 1},
				{Family: core.FamEvtS, Param: 2, Z: 2},
			},
			GST: 600, MaxSteps: 2_000_000,
		},
		{
			// The two-wheels transformation: scripted holds, inquiry
			// traffic sampled at a time mark, sparse traces, early stop.
			Name: "golden-wheels", Protocol: "two-wheels",
			Seeds: []int64{0, 1},
			Sizes: []Size{{N: 5, T: 2}},
			Patterns: []CrashPattern{
				{Name: "late-crash", Crashes: []CrashSpec{{Proc: 4, At: 800}}},
				{Name: "held-region", Crashes: []CrashSpec{{Proc: 4, At: 800}},
					Holds: []sim.Hold{{From: ids.NewSet(5), To: ids.FullSet(5), Until: 1_500}}},
			},
			Combos:    []Combo{{X: 1, Y: 1}, {X: 2, Y: 0}},
			Bandwidth: 10,
			GST:       600, MaxSteps: 400_000,
			Params: map[string]int64{"stable_for": 12_000, "margin": 10_000, "mark": 20_000},
		},
	}
}

func TestGoldenReports(t *testing.T) {
	for _, m := range goldenMatrices() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			rep, err := Run(m, Options{Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			got, err := rep.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", m.Name+".golden.json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("canonical report differs from %s:\n%s", path, firstDiff(got, want))
			}
		})
	}
}

// firstDiff renders the first divergent region of two byte slices with a
// little context — enough to see which cell and field drifted.
func firstDiff(got, want []byte) string {
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	lo := i - 200
	if lo < 0 {
		lo = 0
	}
	snippet := func(b []byte) string {
		hi := i + 200
		if hi > len(b) {
			hi = len(b)
		}
		return string(b[lo:hi])
	}
	return fmt.Sprintf("first difference at byte %d\n--- got ---\n%s\n--- want ---\n%s", i, snippet(got), snippet(want))
}
