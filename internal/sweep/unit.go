package sweep

import (
	"encoding/json"
	"fmt"
	"sort"
)

// This file is the sweep side of distributed dispatch
// (internal/dispatch): a dispatcher splits a matrix into shard-shaped
// work units, collects each unit's CellResults as they stream back from
// remote workers (possibly out of order, possibly duplicated, possibly
// from a retried or speculatively re-dispatched attempt), and
// reassembles the exact report a local sharded Run would have produced.
// Byte-identity of the final merge rests on AssembleShardReport
// reproducing Run's report construction bit for bit.

// OwnedIndices lists the cell indices shard s owns out of total cells,
// ascending. The zero-value (disabled) shard owns everything.
func (s Shard) OwnedIndices(total int) []int {
	if !s.enabled() {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, total/s.Count+1)
	for i := s.Index; i < total; i += s.Count {
		out = append(out, i)
	}
	return out
}

// AssembleShardReport rebuilds the report Run(m, Options{Shard: s})
// would have produced from independently collected cell results: cells
// may arrive in any order, but together they must cover exactly the
// indices the shard owns out of total — a duplicate index, a stray
// index the shard does not own, or a gap is an error, not a silent
// partial report. Canonical JSON of the assembled report is
// byte-identical to the locally run one (TestAssembleShardReport pins
// this), which is what lets a dispatcher merge streamed results from a
// remote worker fleet as if one process had run the whole sweep.
func AssembleShardReport(m Matrix, s Shard, total int, cells []CellResult) (*Report, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	owned := s.OwnedIndices(total)
	if len(cells) != len(owned) {
		return nil, fmt.Errorf("sweep: assemble %q shard %d/%d: have %d cells, shard owns %d",
			m.Name, s.Index, s.Count, len(cells), len(owned))
	}
	sorted := append(make([]CellResult, 0, len(cells)), cells...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	for i, c := range sorted {
		if c.Index != owned[i] {
			return nil, fmt.Errorf("sweep: assemble %q shard %d/%d: cell index %d where %d belongs (duplicate or stray result)",
				m.Name, s.Index, s.Count, c.Index, owned[i])
		}
	}
	rep := &Report{Matrix: m, Cells: sorted}
	if s.enabled() {
		rep.Shard = &ShardMeta{Index: s.Index, Count: s.Count, TotalCells: total}
	}
	for _, c := range sorted {
		switch c.Verdict {
		case Pass:
			rep.Passed++
		case Fail:
			rep.Failed++
		case ConfigError:
			rep.ConfigErrors++
		default:
			rep.Errored++
		}
		rep.WallNS += c.WallNS
	}
	return rep, nil
}

// SuiteJSON renders a suite — one report per matrix, in suite order —
// as a JSON array of the canonical per-matrix reports. This is the
// byte format of cmd/experiments' -report artifact, the committed
// suite golden, and the dispatcher's merged output; all three must
// come from this one renderer so they stay byte-comparable.
func SuiteJSON(reports []*Report) ([]byte, error) {
	blobs := make([]json.RawMessage, 0, len(reports))
	for _, r := range reports {
		blob, err := r.CanonicalJSON()
		if err != nil {
			return nil, err
		}
		blobs = append(blobs, blob)
	}
	return json.MarshalIndent(blobs, "", "  ")
}
