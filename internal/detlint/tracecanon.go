package detlint

import (
	"go/ast"
	"strconv"
	"strings"
)

// tracecanonAnalyzer guards internal/trace's canonical renderers. A
// trace digest is a promise: same cell, same level, same bytes —
// whatever machine or Go version ran it. Reflection-driven formatting
// breaks that promise quietly: %v on a map renders in random order,
// %v on a struct renders whatever fields the struct has this PR, and
// encoding/json turns Go maps into key-sorted-today output coupled to
// the encoder's defaults. The renderers therefore spell out fixed
// per-kind fields with manual appends (Event.append); this rule keeps
// reflection-shaped formatting from creeping back in.
var tracecanonAnalyzer = &Analyzer{
	Name:  "tracecanon",
	Scope: ScopeTrace,
	Doc:   "no `%v`-family verbs, `fmt.Sprint`-style default formatting or `encoding/json` in trace's canonical renderers",
	Run:   runTracecanon,
}

// tracecanonDefaultFmt is the fmt API that formats every operand with
// default (%v) rules, with no format string to inspect.
var tracecanonDefaultFmt = map[string]bool{
	"Sprint": true, "Sprintln": true, "Print": true, "Println": true,
	"Fprint": true, "Fprintln": true, "Append": true, "Appendln": true,
}

func runTracecanon(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "encoding/json" {
				out = append(out, p.diag("tracecanon", imp,
					"encoding/json is map-backed encoding; canonical trace bytes are rendered with fixed per-kind appends"))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, name := p.funcUse(sel.Sel)
			if pkg != "fmt" {
				return true
			}
			if tracecanonDefaultFmt[name] {
				out = append(out, p.diag("tracecanon", call,
					"fmt.%s formats with default %%v rules; canonical renderers spell out fixed per-kind fields", name))
				return true
			}
			if lit := formatLiteral(call); lit != "" && hasVerbV(lit) {
				out = append(out, p.diag("tracecanon", call,
					"%%v renders via reflection (map order, struct layout); canonical renderers spell out fixed per-kind fields"))
			}
			return true
		})
	}
	return out
}

// formatLiteral returns the first string-literal argument of a fmt
// call — the format string for the *f family ("" when non-literal).
func formatLiteral(call *ast.CallExpr) string {
	for _, arg := range call.Args {
		if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind.String() == "STRING" {
			if s, err := strconv.Unquote(lit.Value); err == nil {
				return s
			}
		}
	}
	return ""
}

// hasVerbV reports whether the format string contains a %v-family
// verb (%v, %+v, %#v, with any flags or width).
func hasVerbV(format string) bool {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		j := i + 1
		for j < len(format) && strings.ContainsRune("+-# 0123456789.*", rune(format[j])) {
			j++
		}
		if j < len(format) && format[j] == 'v' {
			return true
		}
		i = j
	}
	return false
}
