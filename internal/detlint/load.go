package detlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	// PkgPath is the import path.
	PkgPath string
	// RelPath is the module-relative path ("internal/sim"; "" for the
	// module root package or packages outside the module).
	RelPath string
	// InModule reports whether the package belongs to this module.
	InModule bool
	// Dir is the package directory.
	Dir string
	// Fset is the position table (shared across a Load call).
	Fset *token.FileSet
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Info carries the type-checker's results for Files.
	Info *types.Info
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Incomplete bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists the patterns with the go tool, then parses and
// type-checks every matched (non-dependency) package. dir is the
// directory the patterns are resolved in — the module root for
// repo-wide runs, so relative fixture paths work from tests too.
//
// The loader leans on `go list -export -deps` for the two hard parts
// of building a zero-dependency analyzer: module-aware file listing
// and compiled export data for every import. Type-checking a target
// then needs no source-level dependency walk: imports resolve through
// the gc importer against the export files the list already built.
// Test files are excluded (GoFiles only) — the contracts govern
// runtime code; tests may read clocks and spawn goroutines freely.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Incomplete,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("detlint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("detlint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			if p.Error != nil {
				return nil, fmt.Errorf("detlint: %s: %s", p.ImportPath, p.Error.Err)
			}
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			af, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("detlint: %v", err)
			}
			files = append(files, af)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		if _, err := conf.Check(t.ImportPath, fset, files, info); err != nil {
			return nil, fmt.Errorf("detlint: type-checking %s: %v", t.ImportPath, err)
		}
		rel := ""
		inModule := false
		if t.Module != nil {
			inModule = true
			if t.ImportPath != t.Module.Path {
				rel = strings.TrimPrefix(t.ImportPath, t.Module.Path+"/")
			}
		}
		pkgs = append(pkgs, &Package{
			PkgPath:  t.ImportPath,
			RelPath:  rel,
			InModule: inModule,
			Dir:      t.Dir,
			Fset:     fset,
			Files:    files,
			Info:     info,
		})
	}
	return pkgs, nil
}
