package detlint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestArchitectureDocMatchesRegistry pins the "Enforced invariants"
// rule table in docs/ARCHITECTURE.md to the analyzer registry: every
// registered analyzer must appear as a table row with its exact scope
// and doc string, and the table must carry no rows for analyzers that
// do not exist. Same spirit as cmd/experiments' schema cross-check —
// the doc fails CI instead of rotting.
func TestArchitectureDocMatchesRegistry(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join(repoRoot(t), "docs", "ARCHITECTURE.md"))
	if err != nil {
		t.Fatalf("read ARCHITECTURE.md: %v", err)
	}
	doc := string(raw)

	_, section, ok := strings.Cut(doc, "## Enforced invariants (detlint)")
	if !ok {
		t.Fatal(`ARCHITECTURE.md has no "## Enforced invariants (detlint)" section`)
	}
	if next := strings.Index(section, "\n## "); next >= 0 {
		section = section[:next]
	}

	// Parse the markdown table: rows are "| `name` | scope | doc |".
	rows := map[string][2]string{} // name -> {scope, doc}
	for _, line := range strings.Split(section, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		cells := strings.Split(strings.Trim(line, "|"), " | ")
		if len(cells) != 3 {
			t.Fatalf("rule table row does not have 3 cells: %q", line)
		}
		name := strings.Trim(strings.TrimSpace(cells[0]), "`")
		rows[name] = [2]string{strings.TrimSpace(cells[1]), strings.TrimSpace(cells[2])}
	}
	if len(rows) == 0 {
		t.Fatal("found no rule table rows in the enforced-invariants section")
	}

	for _, a := range Registry {
		row, ok := rows[a.Name]
		if !ok {
			t.Errorf("analyzer %q is registered but missing from the ARCHITECTURE.md rule table", a.Name)
			continue
		}
		if row[0] != a.Scope {
			t.Errorf("analyzer %q: doc scope %q != registry scope %q", a.Name, row[0], a.Scope)
		}
		if row[1] != a.Doc {
			t.Errorf("analyzer %q: doc contract %q != registry doc %q", a.Name, row[1], a.Doc)
		}
		delete(rows, a.Name)
	}
	for name := range rows {
		t.Errorf("ARCHITECTURE.md rule table row %q names an unregistered analyzer", name)
	}

	// The escape-hatch syntax must be documented verbatim.
	if !strings.Contains(section, allowPrefix+" <rule> -- <reason>") {
		t.Errorf("enforced-invariants section does not document the %q comment syntax", allowPrefix)
	}

	// The package lists in prose must cover both scope maps: each
	// package's last path element has to be mentioned, deterministic
	// and host-side alike, so the doc names every classification the
	// registry enforces.
	for pkg := range deterministicPkgs {
		base := pkg[strings.LastIndex(pkg, "/")+1:]
		if !strings.Contains(section, "`"+base+"`") && !strings.Contains(section, "`internal/"+base+"`") {
			t.Errorf("deterministic package %q is not named in the enforced-invariants section", pkg)
		}
	}
	for pkg := range hostSidePkgs {
		base := pkg[strings.LastIndex(pkg, "/")+1:]
		if !strings.Contains(section, "`"+base+"`") && !strings.Contains(section, "`internal/"+base+"`") {
			t.Errorf("host-side package %q is not named in the enforced-invariants section", pkg)
		}
	}
}
