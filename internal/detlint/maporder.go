package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// maporderAnalyzer hunts the canonical-bytes killer: a `range` over a
// map whose iteration order leaks into ordered output. Go randomizes
// map order per iteration, so a loop that appends to a slice, writes
// a buffer, prints, encodes JSON or records trace events in map order
// produces different bytes on every run — the exact failure the
// golden suite would otherwise surface three PRs later as a mystery
// diff. The blessed pattern — collect the keys, sort them, iterate
// the sorted slice — is recognized and not flagged: an append-only
// loop whose slice is subsequently passed to a sort.*/slices.Sort*
// call in the same function is the collect half of that idiom.
// Order-independent bodies (counting, set membership, map-to-map
// copies, min/max reduction) are not flagged at all.
var maporderAnalyzer = &Analyzer{
	Name:  "maporder",
	Scope: ScopeModule,
	Doc:   "no `range` over a map feeding ordered output (slice append without a sort, buffer writes, printing, JSON, trace events)",
	Run:   runMaporder,
}

func runMaporder(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				out = append(out, p.maporderFunc(body)...)
			}
			return true
		})
	}
	return out
}

// maporderFunc checks one function body. Nested function literals are
// skipped here — the file walk visits them as functions of their own,
// with their own body as the sort-search scope.
func (p *Package) maporderFunc(body *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	inspectShallow(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !p.isMapType(rng.X) {
			return true
		}
		if d, bad := p.checkMapRange(rng, body); bad {
			out = append(out, d)
		}
		return true // nested map ranges inside the body are checked too
	})
	return out
}

// inspectShallow walks n without descending into nested *ast.FuncLit.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return fn(n)
	})
}

// isMapType reports whether the expression has map type (through
// pointers).
func (p *Package) isMapType(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type.Underlying()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem().Underlying()
	}
	_, isMap := t.(*types.Map)
	return isMap
}

// checkMapRange inspects one map-range body for order-sensitive sinks
// and reports the first one found. Collect-append sinks are excused
// when the appended slice is sorted later in the enclosing function.
func (p *Package) checkMapRange(rng *ast.RangeStmt, fnBody *ast.BlockStmt) (Diagnostic, bool) {
	var sink string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if s := p.assignSink(n, rng, fnBody); s != "" {
				sink = s
			}
		case *ast.CallExpr:
			if s := p.callSink(n); s != "" {
				sink = s
			}
		}
		return true
	})
	if sink == "" {
		return Diagnostic{}, false
	}
	return p.diag("maporder", rng,
		"range over map has nondeterministic order and %s; iterate sorted keys (or justify order-independence with an allow)", sink), true
}

// assignSink classifies an assignment inside a map-range body:
// unsorted collect-appends and string accumulation are sinks.
func (p *Package) assignSink(as *ast.AssignStmt, rng *ast.RangeStmt, fnBody *ast.BlockStmt) string {
	if as.Tok == token.ADD_ASSIGN {
		if tv, ok := p.Info.Types[as.Lhs[0]]; ok && tv.Type != nil {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				return "accumulates a string"
			}
		}
		return ""
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !p.isBuiltinAppend(call.Fun) || i >= len(as.Lhs) {
			continue
		}
		obj := p.rootObj(as.Lhs[i])
		if obj == nil || !p.sortedAfter(obj, rng, fnBody) {
			return "appends to a slice that is never sorted afterwards"
		}
	}
	return ""
}

// callSink classifies a call inside a map-range body: buffer/writer
// writes, printing, JSON encoding and trace recording are sinks.
func (p *Package) callSink(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, isMethod := p.methodSink(sel); isMethod {
			return s
		}
		pkg, name := p.funcUse(sel.Sel)
		switch {
		case pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Append")):
			return "emits formatted output"
		case pkg == "encoding/json":
			return "encodes JSON"
		}
	}
	return ""
}

// methodSink classifies method calls; the bool reports whether sel
// resolved to a method at all.
func (p *Package) methodSink(sel *ast.SelectorExpr) (string, bool) {
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return "writes to a buffer/writer", true
	case "Encode":
		if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/json" {
			return "encodes JSON", true
		}
	}
	if recv := sig.Recv().Type(); recvNamed(recv) == "fdgrid/internal/trace.Recorder" {
		return "records trace events", true
	}
	return "", true
}

// recvNamed renders a receiver type as "pkgpath.Name" through
// pointers ("" for unnamed receivers).
func recvNamed(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// isBuiltinAppend reports whether the call target is the append
// builtin.
func (p *Package) isBuiltinAppend(fun ast.Expr) bool {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// rootObj resolves the variable (or field) an lvalue ultimately
// names: x, x.f and x[i] all resolve; anything fancier returns nil
// and the caller stays conservative.
func (p *Package) rootObj(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[e]; obj != nil {
			return obj
		}
		return p.Info.Defs[e]
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	case *ast.IndexExpr:
		return p.rootObj(e.X)
	case *ast.ParenExpr:
		return p.rootObj(e.X)
	}
	return nil
}

// sortedAfter reports whether obj is passed to a sort call after the
// range statement, anywhere in the enclosing function body — the
// second half of the collect-then-sort idiom.
func (p *Package) sortedAfter(obj types.Object, rng *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, name := p.funcUse(sel.Sel)
		isSort := (pkg == "sort" && (name == "Strings" || name == "Ints" || name == "Float64s" ||
			name == "Slice" || name == "SliceStable" || name == "Sort" || name == "Stable")) ||
			(pkg == "slices" && strings.HasPrefix(name, "Sort"))
		if isSort && p.rootObj(call.Args[0]) == obj {
			found = true
		}
		return true
	})
	return found
}
