// Package detlint machine-checks the determinism and run-token
// ownership contracts documented in docs/ARCHITECTURE.md. The whole
// repo rests on runs being pure functions of their Config — sharded
// sweeps merge byte-identically, traced runs schedule the same ticks
// as untraced ones, golden suites stay stable across PRs — and the
// ways that property breaks are depressingly few and lintable: a
// wall-clock read, a draw from the global math/rand source, a map
// iteration leaking its order into canonical bytes, a lock or
// goroutine smuggled into run-token-owned state.
//
// Each contract is one Analyzer (see registry.go for the set). An
// analyzer inspects one type-checked package at a time and reports
// Diagnostics; the Check pipeline applies package scoping, collects
// the diagnostics of every in-scope analyzer, and filters them
// through the explicit escape hatch:
//
//	//detlint:allow <rule> -- <reason>
//
// placed on the offending line or the line above. Allows are
// themselves checked — an unknown rule or an empty reason is a
// diagnostic, so every suppression in the tree names a real rule and
// carries a written-down justification.
//
// The package is deliberately stdlib-only (go/parser, go/ast,
// go/types); the one external ingredient is the go toolchain itself,
// which the loader shells out to for package file lists and export
// data (see load.go).
package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one reported contract violation.
type Diagnostic struct {
	// Pos locates the violation (file, line, column).
	Pos token.Position
	// Rule names the analyzer that produced the diagnostic.
	Rule string
	// Message states the violation.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one determinism rule. Run inspects a loaded package and
// reports raw diagnostics; the Check pipeline owns scoping and allow
// filtering, so Run implementations stay pure syntax/type walks.
type Analyzer struct {
	// Name is the rule name used in diagnostics and allow comments.
	Name string
	// Doc is the one-line contract statement, mirrored row for row by
	// the "Enforced invariants" table in docs/ARCHITECTURE.md
	// (TestArchitectureDocMatchesRegistry pins the correspondence).
	Doc string
	// Scope labels where the rule applies: ScopeDeterministic,
	// ScopeModule or ScopeTrace.
	Scope string
	// Run reports the rule's violations in one package.
	Run func(*Package) []Diagnostic
}

// Scope labels. The deterministic scope is the set of packages whose
// state is owned by the run token and whose behavior must be a pure
// function of the run Config (deterministicPkgs in registry.go); the
// module scope is every package of this module including cmd and
// examples; the trace scope is internal/trace's canonical renderers.
const (
	ScopeDeterministic = "deterministic packages"
	ScopeModule        = "all module packages"
	ScopeTrace         = "internal/trace"
)

// applies reports whether the analyzer runs on a package with the
// given module-relative path ("" for packages outside the module).
func (a *Analyzer) applies(rel string, inModule bool) bool {
	switch a.Scope {
	case ScopeDeterministic:
		return deterministicPkgs[rel]
	case ScopeModule:
		return inModule
	case ScopeTrace:
		return rel == "internal/trace"
	}
	return false
}

// Check runs every registered in-scope analyzer over the packages and
// returns the surviving diagnostics: allow-comment suppressions are
// applied, malformed allow comments are reported, and the result is
// sorted by position. This is the cmd/detlint entry point.
func Check(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		var raw []Diagnostic
		for _, a := range Registry {
			if a.applies(p.RelPath, p.InModule) {
				raw = append(raw, a.Run(p)...)
			}
		}
		out = append(out, filterAllowed(p, raw)...)
	}
	sortDiagnostics(out)
	return out
}

// CheckWith runs exactly the given analyzers on one package,
// bypassing scope (fixture packages live under testdata and match no
// scope) but still applying allow filtering. Test harness entry point.
func CheckWith(p *Package, analyzers ...*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		raw = append(raw, a.Run(p)...)
	}
	out := filterAllowed(p, raw)
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// diag builds a Diagnostic at a node's position.
func (p *Package) diag(rule string, at ast.Node, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:     p.Fset.Position(at.Pos()),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	}
}

// funcUse resolves an identifier use to a package-level function and
// returns its defining package path and name ("", "" otherwise).
// Methods do not qualify: the rules ban package-level entry points
// (time.Now, rand.Intn, atomic.AddInt64), not methods that happen to
// share a defining package.
func (p *Package) funcUse(id *ast.Ident) (pkg, name string) {
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// typeUse resolves an identifier use to a named type and returns its
// defining package path and name ("", "" otherwise).
func (p *Package) typeUse(id *ast.Ident) (pkg, name string) {
	tn, ok := p.Info.Uses[id].(*types.TypeName)
	if !ok || tn.Pkg() == nil {
		return "", ""
	}
	return tn.Pkg().Path(), tn.Name()
}
