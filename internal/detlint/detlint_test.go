package detlint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// repoRoot is the module root, where package patterns resolve.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// fixtures loads every package under testdata/src in one go list
// invocation and indexes them by directory base name. Loaded once and
// shared: the go list round trip dominates the cost.
var fixtures struct {
	once sync.Once
	pkgs map[string]*Package
	err  error
}

func fixture(t *testing.T, name string) *Package {
	t.Helper()
	fixtures.once.Do(func() {
		root, err := filepath.Abs("../..")
		if err != nil {
			fixtures.err = err
			return
		}
		entries, err := os.ReadDir(filepath.Join(root, "internal/detlint/testdata/src"))
		if err != nil {
			fixtures.err = err
			return
		}
		var patterns []string
		for _, e := range entries {
			if e.IsDir() {
				patterns = append(patterns, "./internal/detlint/testdata/src/"+e.Name())
			}
		}
		pkgs, err := Load(root, patterns...)
		if err != nil {
			fixtures.err = err
			return
		}
		fixtures.pkgs = make(map[string]*Package, len(pkgs))
		for _, p := range pkgs {
			fixtures.pkgs[filepath.Base(p.Dir)] = p
		}
	})
	if fixtures.err != nil {
		t.Fatalf("loading fixtures: %v", fixtures.err)
	}
	p, ok := fixtures.pkgs[name]
	if !ok {
		t.Fatalf("no fixture package %q under testdata/src", name)
	}
	return p
}

// wantRe matches the expected-diagnostic markers in fixture sources:
// a trailing "// want rule [rule...]" names the rules that must fire
// on that line.
var wantRe = regexp.MustCompile(`// want ([a-z ]+)$`)

// wants parses a fixture package's expected diagnostics as a multiset
// of "file:line:rule" keys.
func wants(t *testing.T, p *Package) map[string]int {
	t.Helper()
	out := make(map[string]int)
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, rule := range strings.Fields(m[1]) {
				out[fmt.Sprintf("%s:%d:%s", filepath.Base(name), i+1, rule)]++
			}
		}
	}
	return out
}

// got renders actual diagnostics in the same multiset form.
func got(diags []Diagnostic) map[string]int {
	out := make(map[string]int)
	for _, d := range diags {
		out[fmt.Sprintf("%s:%d:%s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule)]++
	}
	return out
}

func diffMultisets(t *testing.T, want, have map[string]int, diags []Diagnostic) {
	t.Helper()
	keys := make(map[string]bool)
	for k := range want {
		keys[k] = true
	}
	for k := range have {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		if want[k] != have[k] {
			t.Errorf("%s: want %d diagnostic(s), got %d", k, want[k], have[k])
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}

// TestFixtures pins every analyzer against its positive (seeded-bug)
// and negative fixture packages: each // want marker must produce
// exactly one diagnostic of that rule on that line, and the negative
// package must be silent.
func TestFixtures(t *testing.T) {
	for _, a := range Registry {
		t.Run(a.Name+"_pos", func(t *testing.T) {
			p := fixture(t, a.Name+"_pos")
			diags := CheckWith(p, a)
			if len(diags) == 0 {
				t.Fatalf("analyzer %s caught nothing in its seeded-bug fixture", a.Name)
			}
			diffMultisets(t, wants(t, p), got(diags), diags)
		})
		t.Run(a.Name+"_neg", func(t *testing.T) {
			p := fixture(t, a.Name+"_neg")
			if diags := CheckWith(p, a); len(diags) != 0 {
				t.Errorf("analyzer %s flagged the clean fixture:", a.Name)
				for _, d := range diags {
					t.Logf("  %s", d)
				}
			}
		})
	}
}

// TestRegistryFixtureCoverage is the registry gate: every registered
// rule must ship a positive fixture with at least one expected
// diagnostic (the seeded bug it provably catches) and a negative
// fixture proving it stays quiet on the legal pattern. A new analyzer
// cannot land without its fixtures.
func TestRegistryFixtureCoverage(t *testing.T) {
	for _, a := range Registry {
		pos := fixture(t, a.Name+"_pos")
		if len(wants(t, pos)) == 0 {
			t.Errorf("rule %s: positive fixture has no // want markers", a.Name)
		}
		fixture(t, a.Name+"_neg") // must exist; TestFixtures asserts silence
	}
	if len(Registry) == 0 {
		t.Fatal("empty analyzer registry")
	}
}

// TestAllowFixtures pins the escape hatch: well-formed allows
// suppress in both placements; malformed allows are diagnostics
// themselves and suppress nothing.
func TestAllowFixtures(t *testing.T) {
	if diags := CheckWith(fixture(t, "allow_ok"), registered("wallclock")); len(diags) != 0 {
		t.Errorf("allow_ok: want no diagnostics, got:")
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
	p := fixture(t, "allow_bad")
	diags := CheckWith(p, registered("wallclock"))
	diffMultisets(t, wants(t, p), got(diags), diags)
}

// TestRepoClean is the self-hosting gate inside the test suite: the
// repository carries zero unannotated diagnostics. The same check
// runs as `go run ./cmd/detlint ./...` from make vet; here it fails
// `go test ./...` too, so a violation cannot hide behind a skipped
// make target.
func TestRepoClean(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags := Check(pkgs)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestScopes pins the package scoping: deterministic rules skip
// cmd/* and host-side utility packages, maporder covers the whole
// module, tracecanon covers exactly internal/trace.
func TestScopes(t *testing.T) {
	cases := []struct {
		rule     string
		rel      string
		inModule bool
		want     bool
	}{
		{"wallclock", "internal/sim", true, true},
		{"wallclock", "cmd/experiments", true, false},
		{"wallclock", "internal/benchrec", true, false},
		{"wallclock", "internal/dispatch", true, false},
		{"wallclock", "cmd/sweepd", true, false},
		{"globalrand", "internal/sweep", true, true},
		{"globalrand", "internal/dispatch", true, false},
		{"runtoken", "internal/fd", true, true},
		{"runtoken", "cmd/detlint", true, false},
		{"runtoken", "internal/dispatch", true, false},
		{"maporder", "cmd/experiments", true, true},
		{"maporder", "internal/dispatch", true, true},
		{"maporder", "cmd/sweepd", true, true},
		{"maporder", "examples/quickstart", true, true},
		{"maporder", "", true, true}, // the module root package
		{"tracecanon", "internal/trace", true, true},
		{"tracecanon", "internal/sim", true, false},
	}
	for _, c := range cases {
		a := registered(c.rule)
		if a == nil {
			t.Fatalf("unknown rule %q", c.rule)
		}
		if got := a.applies(c.rel, c.inModule); got != c.want {
			t.Errorf("%s.applies(%q) = %v, want %v", c.rule, c.rel, got, c.want)
		}
	}
}

// TestInternalPackagesClassified enforces the scope partition: every
// package under internal/ is either deterministic (run-token-owned,
// full rule set) or host-side (wall clock, goroutines and I/O legal) —
// listed in exactly one of the two registry maps. A new internal
// package cannot land without someone deciding which side of the
// determinism boundary it lives on, and stale entries for deleted
// packages fail too.
func TestInternalPackagesClassified(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join(repoRoot(t), "internal"))
	if err != nil {
		t.Fatal(err)
	}
	onDisk := make(map[string]bool)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rel := "internal/" + e.Name()
		onDisk[rel] = true
		det, host := deterministicPkgs[rel], hostSidePkgs[rel]
		switch {
		case det && host:
			t.Errorf("%s is in both deterministicPkgs and hostSidePkgs; pick one", rel)
		case !det && !host:
			t.Errorf("%s is unclassified: add it to deterministicPkgs (run-token-owned) or hostSidePkgs (wall clock/goroutines/I-O legal) in registry.go", rel)
		}
	}
	for rel := range deterministicPkgs {
		if !onDisk[rel] {
			t.Errorf("deterministicPkgs lists %s, which does not exist", rel)
		}
	}
	for rel := range hostSidePkgs {
		if !onDisk[rel] {
			t.Errorf("hostSidePkgs lists %s, which does not exist", rel)
		}
	}
}

func TestHasVerbV(t *testing.T) {
	cases := []struct {
		format string
		want   bool
	}{
		{"%v", true},
		{"x=%+v", true},
		{"%#v", true},
		{"%-10v", true},
		{"%d %s %q", false},
		{"100%% vanilla", false},
		{"verbatim", false},
		{"", false},
	}
	for _, c := range cases {
		if got := hasVerbV(c.format); got != c.want {
			t.Errorf("hasVerbV(%q) = %v, want %v", c.format, got, c.want)
		}
	}
}
