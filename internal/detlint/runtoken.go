package detlint

import "go/ast"

// runtokenAnalyzer polices the run-token ownership contract
// (docs/ARCHITECTURE.md): simulation state is owned by whoever holds
// the run token, handoffs happen over channels, and therefore locks,
// atomics and extra goroutines inside the deterministic packages are
// either dead weight or — far worse — a second scheduler smuggled in
// beside the deterministic one. The documented cross-thread surface
// is small and carries explicit allows: System.Now / InFlight
// (atomic), WakeAt's hint list (locked), process launch/teardown
// (sim.go), the interner (tag.go), and the sweep engine's host-side
// worker pool (engine.go).
var runtokenAnalyzer = &Analyzer{
	Name:  "runtoken",
	Scope: ScopeDeterministic,
	Doc:   "no `sync` locks, `sync/atomic` or `go` statements in run-token-owned state; the documented cross-thread surface carries allows",
	Run:   runRuntoken,
}

func runRuntoken(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				out = append(out, p.diag("runtoken", n,
					"go statement spawns a goroutine beside the run token; only the simulator launches goroutines"))
			case *ast.Ident:
				if pkg, name := p.typeUse(n); pkg == "sync" || pkg == "sync/atomic" {
					out = append(out, p.diag("runtoken", n,
						"%s.%s synchronizes state the run token already owns; if this is a real cross-thread site, document it with an allow", pkgBase(pkg), name))
				} else if pkg, name := p.funcUse(n); pkg == "sync/atomic" {
					out = append(out, p.diag("runtoken", n,
						"atomic.%s synchronizes state the run token already owns; if this is a real cross-thread site, document it with an allow", name))
				}
			}
			return true
		})
	}
	return out
}

// pkgBase maps an import path to its conventional package name.
func pkgBase(path string) string {
	if path == "sync/atomic" {
		return "atomic"
	}
	return "sync"
}
