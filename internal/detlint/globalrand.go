package detlint

import "go/ast"

// globalrandAnalyzer bans the process-global math/rand source in
// deterministic packages. The global source is shared across every
// concurrently running cell and (since Go 1.20) auto-seeded, so a
// single rand.Intn makes a cell's outcome depend on what else the
// worker pool happened to run first. All simulation randomness flows
// through per-run seeded streams: sim.System.intn for delivery draws,
// splitmix64 (adversary.draw, fd/rand.go) for generators and oracles.
// Constructing explicitly seeded sources (rand.NewSource(cfg.Seed))
// stays legal; seeding one from the clock is caught by wallclock.
var globalrandAnalyzer = &Analyzer{
	Name:  "globalrand",
	Scope: ScopeDeterministic,
	Doc:   "no global `math/rand` draws; randomness comes from per-run seeded streams (`sim.System.intn`, splitmix64)",
	Run:   runGlobalrand,
}

// globalrandBanned lists math/rand's (and v2's) package-level
// functions that draw from or reseed the shared global source.
var globalrandBanned = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true,
}

func runGlobalrand(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, name := p.funcUse(id)
			if (pkg == "math/rand" || pkg == "math/rand/v2") && globalrandBanned[name] {
				out = append(out, p.diag("globalrand", id,
					"rand.%s draws from the process-global source; use a per-run seeded stream", name))
			}
			return true
		})
	}
	return out
}
