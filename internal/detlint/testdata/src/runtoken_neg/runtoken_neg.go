// Package runtoken_neg holds plain run-token-owned state: no locks,
// no atomics, no goroutines. Channels are how the token itself moves,
// so channel operations are legal.
package runtoken_neg

// Sched is run-token state accessed without synchronization.
type Sched struct {
	queue []int
	yield chan struct{}
}

// Push appends under token ownership.
func (s *Sched) Push(v int) {
	s.queue = append(s.queue, v)
}

// Handoff passes the token over a channel.
func (s *Sched) Handoff() {
	s.yield <- struct{}{}
}
