// Package globalrand_pos draws from the process-global math/rand
// source: the seeded bug. The global source is shared across every
// concurrently running cell, so these draws couple a cell's outcome
// to whatever else the worker pool ran first.
package globalrand_pos

import "math/rand"

// Draw uses the global source directly.
func Draw(n int) int {
	return rand.Intn(n) // want globalrand
}

// Scramble shuffles and permutes via the global source.
func Scramble(xs []int) []int {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want globalrand
	return rand.Perm(len(xs))                                             // want globalrand
}
