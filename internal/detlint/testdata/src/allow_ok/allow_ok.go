// Package allow_ok exercises the escape hatch's two placements: a
// well-formed allow on the offending line or the line above
// suppresses exactly that rule's diagnostic there.
package allow_ok

import "time"

// Above is suppressed by a comment-above allow.
func Above() int64 {
	//detlint:allow wallclock -- fixture: documents the comment-above placement
	return time.Now().UnixNano()
}

// Trailing is suppressed by a same-line allow.
func Trailing() int64 {
	return time.Now().UnixNano() //detlint:allow wallclock -- fixture: documents the same-line placement
}
