// Package maporder_neg iterates maps the legal ways: collect-then-
// sort before anything ordered, or bodies whose outcome is
// order-independent (counting, membership, map-to-map copies,
// min/max reduction).
package maporder_neg

import (
	"bytes"
	"fmt"
	"sort"
)

// Render is the blessed pattern: collect the keys, sort, iterate the
// sorted slice.
func Render(m map[string]int) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.Bytes()
}

// SortedInts works with sort.Slice too.
func SortedInts(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Total is an order-independent reduction.
func Total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Copy is an order-independent map-to-map copy.
func Copy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
