// Package tracecanon_pos renders "canonical" bytes with
// reflection-shaped formatting: %v picks up map order and struct
// layout, fmt.Sprint formats everything with %v rules, and
// encoding/json couples the bytes to the encoder's defaults.
package tracecanon_pos

import (
	"encoding/json" // want tracecanon
	"fmt"
)

// Render formats an arbitrary value with %v.
func Render(ev any) string {
	return fmt.Sprintf("event=%v", ev) // want tracecanon
}

// RenderPlus uses the flagged-verb variants.
func RenderPlus(ev any) string {
	return fmt.Sprintf("%+v %#v", ev, ev) // want tracecanon
}

// Join formats with default rules, no format string at all.
func Join(parts []string) string {
	return fmt.Sprint(parts) // want tracecanon
}

// Encode goes through map-backed JSON encoding.
func Encode(m map[string]int64) ([]byte, error) {
	return json.Marshal(m)
}
