// Package tracecanon_neg renders canonical bytes the legal way:
// fixed fields, manual appends, explicit verbs that cannot pick up
// reflection-shaped output.
package tracecanon_neg

import (
	"fmt"
	"strconv"
)

// Append renders an event with fixed fields and manual appends, the
// Event.append idiom.
func Append(b []byte, at int64, kind string) []byte {
	b = append(b, `{"at":`...)
	b = strconv.AppendInt(b, at, 10)
	b = append(b, `,"kind":"`...)
	b = append(b, kind...)
	return append(b, '"', '}')
}

// Explain uses explicit, non-reflective verbs.
func Explain(kind string, n int) error {
	return fmt.Errorf("trace: unknown kind %q (%d events)", kind, n)
}
