// Package runtoken_pos smuggles synchronization into what run-token
// ownership already serializes: locks and atomics hide ordering bugs
// from -race, and stray goroutines are a second scheduler beside the
// deterministic one.
package runtoken_pos

import (
	"sync"
	"sync/atomic"
)

// counter guards run-token state with a lock it must not need.
type counter struct {
	mu sync.Mutex // want runtoken
	n  int64
}

// hits is atomic state outside the documented cross-thread surface.
var hits atomic.Int64 // want runtoken

// Bump takes the redundant lock.
func (c *counter) Bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Record uses a package-level atomic operation.
func Record(p *int64) {
	atomic.AddInt64(p, 1) // want runtoken
}

// Spawn launches a goroutine beside the run token.
func Spawn(f func()) {
	go f() // want runtoken
	hits.Add(1)
}
