// Package allow_bad exercises the escape hatch's own checks: an
// allow without a reason, or naming an unknown rule, is itself a
// diagnostic — and suppresses nothing.
package allow_bad

import "time"

// NoReason carries an allow with no reason: rejected, and the
// wallclock diagnostic it hoped to cover survives.
func NoReason() int64 {
	//detlint:allow wallclock // want allow
	return time.Now().UnixNano() // want wallclock
}

// UnknownRule names a rule that does not exist.
func UnknownRule() int64 {
	//detlint:allow warpclock -- the rule name has a typo // want allow
	return time.Now().UnixNano() // want wallclock
}

// WrongRule is well-formed but names the wrong rule for the line, so
// the wallclock diagnostic still fires.
func WrongRule() int64 {
	//detlint:allow maporder -- fixture: a reasoned allow for a rule this line does not violate
	return time.Now().UnixNano() // want wallclock
}
