// Package wallclock_pos seeds wall-clock reads the wallclock analyzer
// must catch: each flagged line would make a "deterministic" run a
// function of the host clock.
package wallclock_pos

import "time"

// Stamp reads the host clock two different ways.
func Stamp() int64 {
	t := time.Now()          // want wallclock
	elapsed := time.Since(t) // want wallclock
	return t.UnixNano() + int64(elapsed)
}

// Nap schedules against the host clock.
func Nap() {
	time.Sleep(time.Millisecond)   // want wallclock
	<-time.After(time.Millisecond) // want wallclock
}

// Timer builds host-clock timers; passing the function as a value
// counts too.
func Timer() func(time.Duration) *time.Timer {
	_ = time.NewTicker(time.Second) // want wallclock
	return time.NewTimer            // want wallclock
}
