// Package globalrand_neg draws from explicitly seeded per-run
// streams — the legal pattern: same seed, same draws, whatever else
// runs concurrently.
package globalrand_neg

import "math/rand"

// Draw replays a deterministic stream from its seed.
func Draw(seed int64, n int) int {
	return rand.New(rand.NewSource(seed)).Intn(n)
}

// Splitmix is the dependency-free alternative used by the generators.
func Splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
