// Package wallclock_neg uses the legal, pure-value part of package
// time: Duration arithmetic and constants never read the host clock.
package wallclock_neg

import "time"

// Budget does Duration arithmetic only.
func Budget(ticks int64) time.Duration {
	return time.Duration(ticks) * time.Millisecond
}

// Render formats a duration value.
func Render(d time.Duration) string {
	return d.String()
}
