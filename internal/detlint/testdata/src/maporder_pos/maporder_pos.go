// Package maporder_pos seeds the canonical-bytes killer in its common
// shapes: map iteration order leaking into ordered output. Every
// flagged loop produces different bytes on different runs.
package maporder_pos

import (
	"bytes"
	"fmt"
)

// Render feeds a buffer in map order — the textbook seeded bug: two
// renders of the same map yield different bytes.
func Render(m map[string]int) []byte {
	var b bytes.Buffer
	for k, v := range m { // want maporder
		fmt.Fprintf(&b, "%s=%d\n", k, v)
	}
	return b.Bytes()
}

// Keys collects keys but never sorts them: callers see a
// different order every run.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want maporder
		keys = append(keys, k)
	}
	return keys
}

// Print emits directly in map order.
func Print(m map[string]int) {
	for k := range m { // want maporder
		fmt.Println(k)
	}
}

// Concat accumulates a string in map order.
func Concat(m map[string]bool) string {
	s := ""
	for k := range m { // want maporder
		s += k
	}
	return s
}
