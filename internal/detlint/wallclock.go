package detlint

import "go/ast"

// wallclockAnalyzer bans wall-clock reads and timers in deterministic
// packages. A run is a pure function of its Config; one time.Now in a
// runner and two sweeps of the same matrix stop agreeing — or worse,
// agree on the machine that built the golden and diverge in CI.
// Wall-clock timing is legal in cmd/* (not in this scope) and at the
// sweep engine's report-timing sites, which carry explicit allows
// (their WallNS fields are json:"-" and never reach canonical bytes).
var wallclockAnalyzer = &Analyzer{
	Name:  "wallclock",
	Scope: ScopeDeterministic,
	Doc:   "no `time.Now`/`Since`/`Sleep`/timers in deterministic packages; virtual time comes from the simulator clock",
	Run:   runWallclock,
}

// wallclockBanned is the banned subset of package time: everything
// that reads the host clock or schedules against it. Pure-value API
// (Duration arithmetic, constants) stays legal.
var wallclockBanned = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func runWallclock(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if pkg, name := p.funcUse(id); pkg == "time" && wallclockBanned[name] {
				out = append(out, p.diag("wallclock", id,
					"time.%s reads the wall clock; deterministic code must use the simulator's virtual clock", name))
			}
			return true
		})
	}
	return out
}
