package detlint

import (
	"strings"
)

// allowPrefix introduces an escape-hatch comment:
//
//	//detlint:allow <rule> -- <reason>
//
// An allow suppresses diagnostics of <rule> on its own line (trailing
// comment) or on the line directly below (comment-above style). The
// reason is mandatory and the rule must be registered — a suppression
// that cannot say what it suppresses or why is itself a diagnostic,
// so every escape in the tree stays auditable.
const allowPrefix = "//detlint:allow"

type allow struct {
	rule string
	line int
}

// collectAllows parses every allow comment in the package and returns
// the well-formed ones plus diagnostics for the malformed ones.
func collectAllows(p *Package) (allows []allow, bad []Diagnostic) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				body := strings.TrimPrefix(c.Text, allowPrefix)
				rule, reason, ok := strings.Cut(body, "--")
				rule = strings.TrimSpace(rule)
				switch {
				case !ok || strings.TrimSpace(reason) == "":
					bad = append(bad, p.diag("allow", c,
						"allow comment needs a reason: //detlint:allow <rule> -- <reason>"))
					continue
				case registered(rule) == nil:
					bad = append(bad, p.diag("allow", c,
						"allow comment names unknown rule %q (have %s)", rule, ruleNames()))
					continue
				}
				allows = append(allows, allow{rule: rule, line: p.Fset.Position(c.Pos()).Line})
			}
		}
	}
	return allows, bad
}

// filterAllowed drops diagnostics covered by a well-formed allow
// comment and appends the diagnostics for malformed allows (which are
// not themselves suppressible — an escape hatch that could wave
// through its own misuse would not be worth auditing).
func filterAllowed(p *Package, raw []Diagnostic) []Diagnostic {
	allows, bad := collectAllows(p)
	var out []Diagnostic
	for _, d := range raw {
		suppressed := false
		for _, a := range allows {
			if a.rule == d.Rule && (a.line == d.Pos.Line || a.line == d.Pos.Line-1) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return append(out, bad...)
}
