package detlint

import "strings"

// Registry is the full rule set, in the order diagnostics cite them.
// The "Enforced invariants" table in docs/ARCHITECTURE.md mirrors
// this slice row for row; TestArchitectureDocMatchesRegistry keeps
// the two from drifting apart.
var Registry = []*Analyzer{
	wallclockAnalyzer,
	globalrandAnalyzer,
	maporderAnalyzer,
	runtokenAnalyzer,
	tracecanonAnalyzer,
}

// deterministicPkgs is the deterministic scope: every package whose
// state participates in a simulated run and must stay a pure function
// of the run Config. internal/sweep is included — its engine is the
// host-side boundary, and exactly the documented worker-pool and
// report-timing sites carry allows. Host-side utilities that never
// touch a run (benchrec's benchmark parsing, cliutil's tables) and
// cmd/* are out of scope for these rules; maporder still covers them
// through ScopeModule.
var deterministicPkgs = map[string]bool{
	"internal/sim":       true,
	"internal/fd":        true,
	"internal/agreement": true,
	"internal/reduction": true,
	"internal/adversary": true,
	"internal/trace":     true,
	"internal/ids":       true,
	"internal/rbcast":    true,
	"internal/register":  true,
	"internal/node":      true,
	"internal/core":      true,
	"internal/sweep":     true,
}

// hostSidePkgs is the explicit complement of the deterministic scope
// under internal/: packages that run on the host side of the
// determinism boundary, where wall-clock timeouts, goroutines and real
// I/O are the point (dispatch's suspector literally measures silence
// in wall time) and the deterministic-scope rules do not apply.
// maporder still covers them via ScopeModule — canonical bytes must
// not leak map order no matter which side produced them.
//
// Every internal/* package must appear in exactly one of these two
// maps; TestInternalPackagesClassified enforces the partition, so a
// new package cannot land without a deliberate classification.
var hostSidePkgs = map[string]bool{
	"internal/benchrec": true, // benchmark-record parsing, never inside a run
	"internal/cliutil":  true, // terminal table rendering
	"internal/detlint":  true, // this linter: shells out to the go toolchain
	"internal/dispatch": true, // distributed dispatcher: heartbeats, suspicion timeouts, worker I/O
}

// registered returns the analyzer with the given rule name, nil if
// unknown.
func registered(name string) *Analyzer {
	for _, a := range Registry {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ruleNames renders the registered rule names for error messages.
func ruleNames() string {
	names := make([]string, len(Registry))
	for i, a := range Registry {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}
