package trace

import "strconv"

// Divergence locates the minimal difference between two traces: the
// length of the shared prefix and the first event (on each side, when
// present) that breaks it.
type Divergence struct {
	// Prefix is the number of leading events the traces share.
	Prefix int
	// ALen and BLen are the full trace lengths.
	ALen, BLen int
	// A and B point at the first differing event of each trace; nil
	// when that trace ended at the shared prefix.
	A, B *Event
	// Summary is a one-line human-readable account of the divergence.
	Summary string
}

// Diff compares two traces and returns the minimal divergence point,
// or nil when they are identical. Events compare with ==, so two
// traces diverge exactly where their first recorded difference lies —
// which, for a deterministic replay under a single perturbation, is
// the first observable consequence of that perturbation.
func Diff(a, b []Event) *Divergence {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	p := 0
	for p < n && a[p] == b[p] {
		p++
	}
	if p == len(a) && p == len(b) {
		return nil
	}
	d := &Divergence{Prefix: p, ALen: len(a), BLen: len(b)}
	if p < len(a) {
		d.A = &a[p]
	}
	if p < len(b) {
		d.B = &b[p]
	}
	d.Summary = d.summarize()
	return d
}

// summarize renders the one-line account stored in Summary.
func (d *Divergence) summarize() string {
	shared := "after " + strconv.Itoa(d.Prefix) + " shared events"
	switch {
	case d.A != nil && d.B != nil:
		return "diverge " + shared + ": a=(" + d.A.String() + ") vs b=(" + d.B.String() + ")"
	case d.B != nil:
		return "a ends " + shared + "; b continues with (" + d.B.String() + ") +" +
			strconv.Itoa(d.BLen-d.Prefix-1) + " more"
	default:
		return "b ends " + shared + "; a continues with (" + d.A.String() + ") +" +
			strconv.Itoa(d.ALen-d.Prefix-1) + " more"
	}
}
