// Package trace records the decision path of one simulated cell —
// crashes, oracle output changes, protocol round commits, decide
// events, wheel movements and (at full level) delivery volumes — as a
// flat, append-only event log with a canonical byte representation.
//
// The recorder exists to spend the simulator's determinism on
// explanations: because a cell replays byte-identically from its
// seed, two traces of the same cell are byte-identical, and a trace
// of a minimally perturbed cell diverges at exactly the first event
// the perturbation caused. Diff finds that event. The sweep engine
// surfaces traces per cell behind sweep.Matrix.TraceLevel; with
// tracing off (the default) no recorder is attached and reports stay
// byte-identical to the untraced goldens.
//
// Recording levels nest: Off records nothing, Decisions records the
// protocol-meaningful events (crash, leader, suspect, round, decide,
// wheel), Full adds per-tick delivery and hold-release volume. Every
// Recorder method is safe on a nil receiver and gates on its level
// internally, so instrumentation sites stay one unconditional line.
//
// The package depends only on internal/ids and the standard library;
// simulated times cross the boundary as plain int64 ticks so sim can
// depend on trace without a cycle.
package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"fdgrid/internal/ids"
)

// Level selects how much of a run the recorder keeps.
type Level uint8

const (
	// Off records nothing; a nil recorder behaves as Off.
	Off Level = iota
	// Decisions records protocol-meaningful events: crashes, oracle
	// output changes, round commits, decide events, wheel movements.
	Decisions
	// Full adds per-tick delivery counts and hold releases on top of
	// Decisions.
	Full
)

// ParseLevel maps a matrix-level string to a Level. The empty string
// and "off" both mean Off, matching the TraceLevel zero value.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "", "off":
		return Off, nil
	case "decisions":
		return Decisions, nil
	case "full":
		return Full, nil
	}
	return Off, fmt.Errorf("trace: unknown level %q (want off, decisions or full)", s)
}

// String returns the canonical spelling accepted by ParseLevel.
func (l Level) String() string {
	switch l {
	case Decisions:
		return "decisions"
	case Full:
		return "full"
	default:
		return "off"
	}
}

// Kind discriminates trace events.
type Kind uint8

const (
	// KindCrash marks a process crashing at its scheduled tick.
	KindCrash Kind = iota
	// KindLeader marks a change in an oracle's trusted set as seen by
	// one process (leader oracles report singleton sets).
	KindLeader
	// KindSuspect marks a change in a suspector oracle's suspect set
	// as seen by one process.
	KindSuspect
	// KindRound marks a process committing to a protocol round; Set
	// carries the candidate set the round starts from.
	KindRound
	// KindDecide marks a process deciding; Value carries the decided
	// value and Round the deciding round.
	KindDecide
	// KindWheel marks a wheel protocol consuming moves; Src names the
	// wheel ("lower"/"upper"), Round counts cumulative moves, Set and
	// Value carry the resulting position.
	KindWheel
	// KindDeliver records how many messages a tick delivered (Full
	// level only); Value carries the count.
	KindDeliver
	// KindHoldRelease records how many held messages a tick released
	// back into the network (Full level only); Value carries the count.
	KindHoldRelease
)

// kindInfo drives canonical rendering: the event name plus which
// fields that kind renders (a fixed mask, not presence-based, so the
// byte form of an event is a function of its kind alone).
var kindInfo = [...]struct {
	name   string
	fields uint8
}{
	KindCrash:       {"crash", fProc},
	KindLeader:      {"leader", fProc | fSrc | fSet},
	KindSuspect:     {"suspect", fProc | fSrc | fSet},
	KindRound:       {"round", fProc | fRound | fSet},
	KindDecide:      {"decide", fProc | fRound | fValue},
	KindWheel:       {"wheel", fProc | fRound | fValue | fSrc | fSet},
	KindDeliver:     {"deliver", fValue},
	KindHoldRelease: {"hold_release", fValue},
}

const (
	fProc uint8 = 1 << iota
	fRound
	fValue
	fSrc
	fSet
)

// String returns the event name used in the canonical JSON form.
func (k Kind) String() string {
	if int(k) < len(kindInfo) {
		return kindInfo[k].name
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded step of a cell's decision path. Which fields
// are meaningful depends on Kind (see the Kind constants); the
// canonical rendering includes exactly the fields the kind declares,
// so events compare with ==.
type Event struct {
	// At is the simulated tick the event happened on.
	At int64
	// Kind discriminates the event.
	Kind Kind
	// Proc is the process the event belongs to (0 when global).
	Proc int32
	// Round is a round number or cumulative move count.
	Round int32
	// Value is a decided value, position leader, or volume count.
	Value int64
	// Src labels the producing component ("oracle", "emu", "lower", …).
	Src string
	// Set is the candidate/trusted/suspect set the event observed.
	Set ids.Set
}

// append writes the event's canonical JSON object to b.
func (e *Event) append(b []byte) []byte {
	info := kindInfo[e.Kind]
	b = append(b, `{"at":`...)
	b = strconv.AppendInt(b, e.At, 10)
	b = append(b, `,"kind":"`...)
	b = append(b, info.name...)
	b = append(b, '"')
	if info.fields&fProc != 0 {
		b = append(b, `,"proc":`...)
		b = strconv.AppendInt(b, int64(e.Proc), 10)
	}
	if info.fields&fRound != 0 {
		b = append(b, `,"round":`...)
		b = strconv.AppendInt(b, int64(e.Round), 10)
	}
	if info.fields&fValue != 0 {
		b = append(b, `,"value":`...)
		b = strconv.AppendInt(b, e.Value, 10)
	}
	if info.fields&fSrc != 0 {
		b = append(b, `,"src":"`...)
		b = append(b, e.Src...)
		b = append(b, '"')
	}
	if info.fields&fSet != 0 {
		b = append(b, `,"set":[`...)
		first := true
		e.Set.ForEach(func(p ids.ProcID) bool {
			if !first {
				b = append(b, ',')
			}
			first = false
			b = strconv.AppendInt(b, int64(p), 10)
			return true
		})
		b = append(b, ']')
	}
	return append(b, '}')
}

// String renders the event compactly for divergence summaries, e.g.
// "t=812 decide p3 r2 v=103" or "t=40 leader[oracle] p1 {2}".
func (e *Event) String() string {
	info := kindInfo[e.Kind]
	s := "t=" + strconv.FormatInt(e.At, 10) + " " + info.name
	if info.fields&fSrc != 0 && e.Src != "" {
		s += "[" + e.Src + "]"
	}
	if info.fields&fProc != 0 {
		s += " p" + strconv.FormatInt(int64(e.Proc), 10)
	}
	if info.fields&fRound != 0 {
		s += " r" + strconv.FormatInt(int64(e.Round), 10)
	}
	if info.fields&fValue != 0 {
		s += " v=" + strconv.FormatInt(e.Value, 10)
	}
	if info.fields&fSet != 0 {
		s += " " + e.Set.String()
	}
	return s
}

// Recorder accumulates the events of one run. The zero value and the
// nil pointer both record nothing; every method is run-token-owned
// like the simulation state it observes (no locking).
type Recorder struct {
	level  Level
	events []Event
}

// New returns a recorder keeping events at the given level. New(Off)
// returns nil, the canonical "not tracing" recorder.
func New(level Level) *Recorder {
	if level == Off {
		return nil
	}
	return &Recorder{level: level, events: make([]Event, 0, 256)}
}

// On reports whether the recorder keeps events at the given level;
// false on a nil recorder. Samplers that cost setup work (per-process
// snapshot arrays) gate on it before installing themselves.
func (r *Recorder) On(level Level) bool {
	return r != nil && r.level >= level
}

// Level returns the recording level (Off for a nil recorder).
func (r *Recorder) Level() Level {
	if r == nil {
		return Off
	}
	return r.level
}

// Crash records process p crashing at tick at.
func (r *Recorder) Crash(at int64, p int) {
	if !r.On(Decisions) {
		return
	}
	r.events = append(r.events, Event{At: at, Kind: KindCrash, Proc: int32(p)})
}

// SetChange records an oracle output change: kind is KindLeader or
// KindSuspect, src labels the oracle role, set is the new output seen
// by process p.
func (r *Recorder) SetChange(kind Kind, at int64, p int, src string, set ids.Set) {
	if !r.On(Decisions) {
		return
	}
	r.events = append(r.events, Event{At: at, Kind: kind, Proc: int32(p), Src: src, Set: set})
}

// Round records process p committing to round round with candidate
// set set.
func (r *Recorder) Round(at int64, p, round int, set ids.Set) {
	if !r.On(Decisions) {
		return
	}
	r.events = append(r.events, Event{At: at, Kind: KindRound, Proc: int32(p), Round: int32(round), Set: set})
}

// Decide records process p deciding value v in round round.
func (r *Recorder) Decide(at int64, p, round int, v int64) {
	if !r.On(Decisions) {
		return
	}
	r.events = append(r.events, Event{At: at, Kind: KindDecide, Proc: int32(p), Round: int32(round), Value: v})
}

// Wheel records wheel src at process p having consumed moves moves in
// total, now positioned at (set, leader).
func (r *Recorder) Wheel(at int64, p int, src string, leader int64, set ids.Set, moves int) {
	if !r.On(Decisions) {
		return
	}
	r.events = append(r.events, Event{At: at, Kind: KindWheel, Proc: int32(p), Round: int32(moves), Value: leader, Src: src, Set: set})
}

// Deliver records a tick delivering count messages (Full level only).
func (r *Recorder) Deliver(at int64, count int) {
	if !r.On(Full) || count == 0 {
		return
	}
	r.events = append(r.events, Event{At: at, Kind: KindDeliver, Value: int64(count)})
}

// HoldRelease records a tick releasing count held messages back into
// the network (Full level only).
func (r *Recorder) HoldRelease(at int64, count int) {
	if !r.On(Full) || count == 0 {
		return
	}
	r.events = append(r.events, Event{At: at, Kind: KindHoldRelease, Value: int64(count)})
}

// Len returns the number of recorded events (0 on nil).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Events returns the recorded event log. The slice is the recorder's
// own backing store: read it, don't mutate it. Nil recorders return
// nil.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// CanonicalJSON renders the event log in its canonical byte form: a
// JSON array with one fixed-field-order object per line. The bytes
// are a pure function of the recorded events, so equal traces render
// equal bytes. Nil recorders render an empty array.
func (r *Recorder) CanonicalJSON() []byte {
	if r == nil || len(r.events) == 0 {
		return []byte("[]\n")
	}
	// Estimate ~48 bytes/event to keep growth amortized.
	b := make([]byte, 0, 16+48*len(r.events))
	b = append(b, '[', '\n')
	for i := range r.events {
		b = append(b, ' ', ' ')
		b = r.events[i].append(b)
		if i < len(r.events)-1 {
			b = append(b, ',')
		}
		b = append(b, '\n')
	}
	return append(b, ']', '\n')
}

// Digest fingerprints the canonical JSON form: the first 128 bits of
// its SHA-256, hex-encoded. Two cells with equal digests ran the same
// decision path; a perturbed replay that changes anything traced
// changes the digest.
func (r *Recorder) Digest() string {
	sum := sha256.Sum256(r.CanonicalJSON())
	return hex.EncodeToString(sum[:16])
}
