package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fdgrid/internal/ids"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want Level
		ok   bool
	}{
		{"", Off, true},
		{"off", Off, true},
		{"decisions", Decisions, true},
		{"full", Full, true},
		{"Full", Off, false},
		{"verbose", Off, false},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	for _, l := range []Level{Off, Decisions, Full} {
		back, err := ParseLevel(l.String())
		if err != nil || back != l {
			t.Errorf("round trip %v -> %q -> %v, %v", l, l.String(), back, err)
		}
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r := New(Off); r != nil {
		t.Fatalf("New(Off) = %v, want nil", r)
	}
	r.Crash(1, 2)
	r.SetChange(KindLeader, 1, 2, "oracle", ids.NewSet(3))
	r.Round(1, 2, 3, ids.NewSet(1))
	r.Decide(1, 2, 3, 4)
	r.Wheel(1, 2, "lower", 3, ids.NewSet(1), 4)
	r.Deliver(1, 5)
	r.HoldRelease(1, 5)
	if r.Len() != 0 || r.Events() != nil || r.On(Decisions) || r.Level() != Off {
		t.Fatal("nil recorder must observe nothing")
	}
	if got := string(r.CanonicalJSON()); got != "[]\n" {
		t.Fatalf("nil CanonicalJSON = %q", got)
	}
	if r.Digest() == "" {
		t.Fatal("nil recorder must still digest its (empty) canonical form")
	}
}

func TestLevelGating(t *testing.T) {
	r := New(Decisions)
	r.Decide(10, 1, 2, 103)
	r.Deliver(10, 7)     // Full-only: dropped
	r.HoldRelease(11, 3) // Full-only: dropped
	if r.Len() != 1 {
		t.Fatalf("Decisions recorder kept %d events, want 1", r.Len())
	}
	f := New(Full)
	f.Decide(10, 1, 2, 103)
	f.Deliver(10, 7)
	f.Deliver(11, 0) // zero-volume ticks are not events
	f.HoldRelease(11, 3)
	if f.Len() != 3 {
		t.Fatalf("Full recorder kept %d events, want 3", f.Len())
	}
}

func TestCanonicalJSONIsValidAndStable(t *testing.T) {
	build := func() *Recorder {
		r := New(Full)
		r.Crash(5, 4)
		r.SetChange(KindLeader, 6, 1, "oracle", ids.NewSet(2))
		r.SetChange(KindSuspect, 6, 2, "oracle-s", ids.NewSet(3, 4))
		r.Round(7, 1, 1, ids.NewSet(1, 2))
		r.Wheel(8, 2, "lower", 3, ids.NewSet(3, 5), 2)
		r.Deliver(8, 12)
		r.HoldRelease(9, 2)
		r.Decide(9, 1, 1, 101)
		return r
	}
	a, b := build().CanonicalJSON(), build().CanonicalJSON()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical recordings rendered different bytes")
	}
	var parsed []map[string]any
	if err := json.Unmarshal(a, &parsed); err != nil {
		t.Fatalf("canonical form is not valid JSON: %v\n%s", err, a)
	}
	if len(parsed) != 8 {
		t.Fatalf("parsed %d events, want 8", len(parsed))
	}
	if parsed[0]["kind"] != "crash" || parsed[0]["proc"] != float64(4) {
		t.Errorf("event 0 = %v", parsed[0])
	}
	if parsed[7]["kind"] != "decide" || parsed[7]["value"] != float64(101) {
		t.Errorf("event 7 = %v", parsed[7])
	}
	if build().Digest() != build().Digest() {
		t.Fatal("digest not stable")
	}
	if len(build().Digest()) != 32 {
		t.Fatalf("digest length %d, want 32 hex chars", len(build().Digest()))
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 812, Kind: KindDecide, Proc: 3, Round: 2, Value: 103}
	if got := e.String(); got != "t=812 decide p3 r2 v=103" {
		t.Errorf("decide String() = %q", got)
	}
	l := Event{At: 40, Kind: KindLeader, Proc: 1, Src: "oracle", Set: ids.NewSet(2)}
	if got := l.String(); got != "t=40 leader[oracle] p1 {2}" {
		t.Errorf("leader String() = %q", got)
	}
}

func TestDiffIdentical(t *testing.T) {
	a := []Event{{At: 1, Kind: KindCrash, Proc: 2}, {At: 3, Kind: KindDecide, Proc: 1, Round: 1, Value: 7}}
	b := append([]Event(nil), a...)
	if d := Diff(a, b); d != nil {
		t.Fatalf("identical traces diverged: %+v", d)
	}
	if d := Diff(nil, nil); d != nil {
		t.Fatalf("empty traces diverged: %+v", d)
	}
}

func TestDiffPrefixDivergent(t *testing.T) {
	a := []Event{
		{At: 1, Kind: KindCrash, Proc: 2},
		{At: 5, Kind: KindDecide, Proc: 1, Round: 1, Value: 7},
	}
	b := []Event{
		{At: 1, Kind: KindCrash, Proc: 2},
		{At: 9, Kind: KindDecide, Proc: 1, Round: 2, Value: 8},
		{At: 9, Kind: KindDecide, Proc: 3, Round: 2, Value: 8},
	}
	d := Diff(a, b)
	if d == nil || d.Prefix != 1 || d.ALen != 2 || d.BLen != 3 {
		t.Fatalf("Diff = %+v", d)
	}
	if d.A == nil || d.B == nil || d.A.At != 5 || d.B.At != 9 {
		t.Fatalf("divergence events = %v / %v", d.A, d.B)
	}
	if !strings.Contains(d.Summary, "after 1 shared events") ||
		!strings.Contains(d.Summary, "t=5 decide p1 r1 v=7") {
		t.Errorf("Summary = %q", d.Summary)
	}
}

func TestDiffLengthDivergent(t *testing.T) {
	a := []Event{{At: 1, Kind: KindCrash, Proc: 2}}
	b := []Event{
		{At: 1, Kind: KindCrash, Proc: 2},
		{At: 4, Kind: KindRound, Proc: 1, Round: 1, Set: ids.NewSet(1, 3)},
		{At: 6, Kind: KindDecide, Proc: 1, Round: 1, Value: 3},
	}
	d := Diff(a, b)
	if d == nil || d.Prefix != 1 || d.A != nil || d.B == nil {
		t.Fatalf("Diff = %+v", d)
	}
	if !strings.Contains(d.Summary, "a ends after 1 shared events") ||
		!strings.Contains(d.Summary, "+1 more") {
		t.Errorf("Summary = %q", d.Summary)
	}
	// Symmetric case: a continues past b.
	d = Diff(b, a)
	if d == nil || d.B != nil || d.A == nil || !strings.Contains(d.Summary, "b ends") {
		t.Fatalf("reverse Diff = %+v", d)
	}
}
