// Package reduction implements the paper's transformation algorithms:
//
//   - the two-wheels addition ◇S_x + ◇φ_y → Ω_z with z = t+2−x−y
//     (paper §4, Figs. 5–6): LowerWheel and UpperWheel;
//   - the direct Ψ_y → Ω_z construction for y+z > t (Appendix A,
//     Fig. 8): PsiOmega;
//   - the addition S_x + φ_y → S_n (and ◇S_x + ◇φ_y → ◇S_n) for
//     x+y > t (Appendix B, Fig. 9): AddS, over shared registers.
//
// Each transformation's output is exposed through the fd interfaces, so
// constructions stack exactly as in the paper (e.g. its Theorem 5 proof
// composes ◇S_x → Ω_z with the Ω_z-based k-set agreement algorithm).
package reduction

import (
	"fmt"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/node"
	"fdgrid/internal/rbcast"
	"fdgrid/internal/sim"
)

// tagXMove is the lower wheel's R-broadcast move message.
var tagXMove = sim.Intern("wheel.xmove")

type xMoveMsg struct {
	Pos ids.XPos
}

// LowerWheel is the paper's Fig. 5 component, run by every process. Using
// a ◇S_x suspector, all processes scan the common ring of (leader, X)
// pairs over x-subsets until they stabilize on a pair (ℓ, X) such that
// either every process of X has crashed, or ℓ is a correct process of X
// that the live members of X stop suspecting. Each process continuously
// exposes a representative Repr: the pair's leader if the process belongs
// to X, its own identity otherwise (Theorem 6).
//
// Faithfulness notes. Task T1's unconditional re-broadcast is throttled
// to once per visit of a ring position (a legal scheduling of the
// paper's loop: one broadcast per position suffices for every process to
// consume a move and advance). Task T2's deferred matching rule — a move
// message is consumed only when the local pair equals the message's pair
// — is implemented by buffering per-position counts.
type LowerWheel struct {
	env  *sim.Env
	rb   *rbcast.Layer
	susp fd.Suspector

	ring          *ids.XRing
	buffered      map[ids.XPos]int
	sentThisVisit bool
	moves         int // consumed moves (diagnostics)

	pos  ids.XPos
	repr ids.ProcID
}

var _ node.Layer = (*LowerWheel)(nil)

// NewLowerWheel builds the lower-wheel layer of one process. x must be
// in 1..n.
func NewLowerWheel(env *sim.Env, rb *rbcast.Layer, susp fd.Suspector, x int) *LowerWheel {
	if x < 1 || x > env.N() {
		panic(fmt.Sprintf("reduction: lower wheel x=%d out of range 1..%d", x, env.N()))
	}
	w := &LowerWheel{
		env:      env,
		rb:       rb,
		susp:     susp,
		ring:     ids.NewXRing(env.N(), x),
		buffered: make(map[ids.XPos]int),
		repr:     env.ID(),
	}
	w.pos = w.ring.Current()
	return w
}

// Repr returns this process's current representative repr_i. Like all
// protocol state it is run-token owned (see the internal/sim
// concurrency contract): read it from protocol code, samplers or stop
// predicates, or after Run returns.
func (w *LowerWheel) Repr() ids.ProcID {
	return w.repr
}

// Pos returns the current ring position (diagnostics, tests).
func (w *LowerWheel) Pos() ids.XPos {
	return w.pos
}

// Moves returns how many x_move messages this process has consumed.
func (w *LowerWheel) Moves() int {
	return w.moves
}

// NextWake implements node.WakeHinter: with no message in play, the
// wheel only needs to act when the suspector's output can change (the
// suspicious-poll in task T1); buffered moves are consumed on the message
// wake that delivered them.
func (w *LowerWheel) NextWake(now sim.Time) sim.Time {
	return fd.NextChangeOf(w.susp, now)
}

// Handle implements node.Layer: it buffers x_move messages (already
// R-delivered by the rbcast layer below) for deferred consumption.
func (w *LowerWheel) Handle(m sim.Message) (sim.Message, bool) {
	if m.Tag != tagXMove {
		return m, true
	}
	mv, ok := m.Payload.(xMoveMsg)
	if !ok {
		panic(fmt.Sprintf("reduction: x_move payload %T", m.Payload))
	}
	w.buffered[mv.Pos]++
	return sim.Message{}, false
}

// Poll implements node.Layer: consume matching buffered moves (task T2),
// then run one iteration of task T1.
func (w *LowerWheel) Poll() {
	moved := false
	for len(w.buffered) > 0 && w.buffered[w.pos] > 0 {
		w.buffered[w.pos]--
		w.ring.Next()
		w.pos = w.ring.Current()
		w.sentThisVisit = false
		w.moves++
		moved = true
	}
	if moved {
		w.env.Trace().Wheel(int64(w.env.Now()), int(w.env.ID()), "lower",
			int64(w.pos.Leader), w.pos.X, w.moves)
	}
	pos := w.pos
	me := w.env.ID()
	if pos.X.Contains(me) {
		w.repr = pos.Leader
	} else {
		w.repr = me
	}
	shouldSend := pos.X.Contains(me) && !w.sentThisVisit &&
		w.susp.Suspected(me).Contains(pos.Leader)
	if shouldSend {
		w.sentThisVisit = true
	}

	if shouldSend {
		w.rb.Broadcast(tagXMove, xMoveMsg{Pos: pos})
	}
}
