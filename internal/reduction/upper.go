package reduction

import (
	"fmt"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/node"
	"fdgrid/internal/rbcast"
	"fdgrid/internal/sim"
)

// Message tags of the upper wheel, interned once at package load.
var (
	tagInquiry  = sim.Intern("wheel.inquiry")
	tagResponse = sim.Intern("wheel.response")
	tagLMove    = sim.Intern("wheel.lmove")
)

type inquiryMsg struct {
	Seq int
}

type responseMsg struct {
	Seq  int
	Repr ids.ProcID
}

type lMoveMsg struct {
	Pos ids.LYPos
}

// UpperWheel is the paper's Fig. 6 component. Combined with the lower
// wheel's representatives and a ◇φ_y querier, all processes scan the
// common ring of (L, Y) pairs — Y over the (t−y+1)-subsets of Π, L over
// the z-subsets of Y, z = t+2−x−y — until they rest on a pair where
// every response from a live member of Y carries an identity inside L
// (Fig. 7), or where query(Y) establishes that Y has entirely crashed.
// The exposed trusted set then satisfies Ω_z (Theorem 7).
//
// Task T1's forever loop (inquire → wait → maybe l_move) runs as a state
// machine inside Poll; inquiry rounds are paced so the network keeps up
// (a legal scheduling choice — inquiries still happen infinitely often).
type UpperWheel struct {
	env   *sim.Env
	rb    *rbcast.Layer
	q     fd.Querier
	lower *LowerWheel

	ring        *ids.LYRing
	buffered    map[ids.LYPos]int
	seq         int
	responses   []ids.ProcID // index by responder; ids.None = none this round
	waiting     bool
	lastInquiry sim.Time
	gap         sim.Time
	lmoves      int

	pos ids.LYPos
}

var _ node.Layer = (*UpperWheel)(nil)

// NewUpperWheel builds the upper-wheel layer of one process. x, y are
// the scope parameters of the underlying ◇S_x and ◇φ_y oracles; the
// produced leader-set size is z = t+2−x−y. Constraints (paper §4):
// 1 ≤ x, 0 ≤ y ≤ t, x+y ≤ t+1.
func NewUpperWheel(env *sim.Env, rb *rbcast.Layer, q fd.Querier, lower *LowerWheel, x, y int) *UpperWheel {
	n, t := env.N(), env.T()
	z := t + 2 - x - y
	if x < 1 || x > n || y < 0 || y > t || z < 1 {
		panic(fmt.Sprintf("reduction: upper wheel invalid parameters n=%d t=%d x=%d y=%d (z=%d)", n, t, x, y, z))
	}
	ySize := t - y + 1
	w := &UpperWheel{
		env:         env,
		rb:          rb,
		q:           q,
		lower:       lower,
		ring:        ids.NewLYRing(n, ySize, z),
		buffered:    make(map[ids.LYPos]int),
		responses:   make([]ids.ProcID, n+1),
		gap:         sim.Time(4 * n),
		lastInquiry: -1 << 30,
	}
	for i := range w.responses {
		w.responses[i] = ids.None
	}
	w.pos = w.ring.Current()
	return w
}

// Z returns the produced leader-set size z = t+2−x−y.
func (w *UpperWheel) Z() int { return w.ring.Current().L.Size() }

// Pos returns the current ring position (diagnostics, tests).
func (w *UpperWheel) Pos() ids.LYPos {
	return w.pos
}

// LMoves returns how many l_move messages this process has consumed.
func (w *UpperWheel) LMoves() int {
	return w.lmoves
}

// Trusted computes the Ω_z output (task T4): if query(Y_i) says the whole
// candidate region crashed, the smallest provably-live process outside
// Y_i; otherwise the current leader-set candidate L_i. Run-token
// owned, like all emulated outputs.
func (w *UpperWheel) Trusted() ids.Set {
	pos := w.pos
	me := w.env.ID()
	if !w.q.Query(me, pos.Y) {
		return pos.L
	}
	// All of Y_i crashed: at most t−y+1 of the ≤ t crashes are inside
	// Y_i, so querying Y_i ∪ {j} stays within the informative region and
	// returns false exactly when j is alive.
	for j := 1; j <= w.env.N(); j++ {
		id := ids.ProcID(j)
		if pos.Y.Contains(id) {
			continue
		}
		if !w.q.Query(me, pos.Y.Add(id)) {
			return ids.NewSet(id)
		}
	}
	return ids.EmptySet() // unreachable while crashes ≤ t
}

// NextWake implements node.WakeHinter: between inquiry rounds the wheel
// sleeps until the pacing gap elapses; while waiting for responses it
// only needs a pure time wake when the querier's answer to query(Y_i)
// can change (responses themselves arrive as messages).
func (w *UpperWheel) NextWake(now sim.Time) sim.Time {
	if !w.waiting {
		return w.lastInquiry + w.gap
	}
	return fd.NextChangeOf(w.q, now)
}

// Handle implements node.Layer.
func (w *UpperWheel) Handle(m sim.Message) (sim.Message, bool) {
	switch m.Tag {
	case tagInquiry:
		iq, ok := m.Payload.(inquiryMsg)
		if !ok {
			panic(fmt.Sprintf("reduction: inquiry payload %T", m.Payload))
		}
		// Task T3: answer with the lower wheel's current representative.
		w.env.Send(m.From, tagResponse, responseMsg{Seq: iq.Seq, Repr: w.lower.Repr()})
		return sim.Message{}, false
	case tagResponse:
		rp, ok := m.Payload.(responseMsg)
		if !ok {
			panic(fmt.Sprintf("reduction: response payload %T", m.Payload))
		}
		if rp.Seq == w.seq {
			w.responses[m.From] = rp.Repr
		}
		return sim.Message{}, false
	case tagLMove:
		mv, ok := m.Payload.(lMoveMsg)
		if !ok {
			panic(fmt.Sprintf("reduction: l_move payload %T", m.Payload))
		}
		w.buffered[mv.Pos]++
		return sim.Message{}, false
	default:
		return m, true
	}
}

// Poll implements node.Layer: consume matching l_moves (task T2), then
// advance task T1's inquire/wait state machine.
func (w *UpperWheel) Poll() {
	moved := false
	for len(w.buffered) > 0 && w.buffered[w.pos] > 0 {
		w.buffered[w.pos]--
		w.ring.Next()
		w.pos = w.ring.Current()
		w.lmoves++
		moved = true
	}
	if moved {
		// The upper wheel's position has no single leader; trace the
		// candidate leader set L and leave the leader slot 0.
		w.env.Trace().Wheel(int64(w.env.Now()), int(w.env.ID()), "upper",
			0, w.pos.L, w.lmoves)
	}
	pos := w.pos

	me := w.env.ID()
	if !w.waiting {
		now := w.env.Now()
		if now-w.lastInquiry < w.gap {
			return
		}
		w.seq++
		for i := range w.responses {
			w.responses[i] = ids.None
		}
		w.waiting = true
		w.lastInquiry = now
		w.env.Broadcast(tagInquiry, inquiryMsg{Seq: w.seq})
		return
	}

	// Waiting (line 03): exit on a response from a member of the current
	// Y_i, or on query(Y_i) = true. Y_i may have changed during the wait.
	var recFrom ids.Set
	gotResponder := false
	for from := 1; from < len(w.responses); from++ {
		repr := w.responses[from]
		if repr != ids.None && pos.Y.Contains(ids.ProcID(from)) {
			gotResponder = true
			recFrom = recFrom.Add(repr)
		}
	}
	if !gotResponder && !w.q.Query(me, pos.Y) {
		return // keep waiting
	}
	// Lines 04-06: move on if responses arrived and none exhibits a
	// representative inside L_i.
	if !recFrom.IsEmpty() && !recFrom.Intersects(pos.L) {
		w.rb.Broadcast(tagLMove, lMoveMsg{Pos: pos})
	}
	w.waiting = false
}
