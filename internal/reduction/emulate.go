package reduction

import (
	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/node"
	"fdgrid/internal/rbcast"
	"fdgrid/internal/sim"
)

// OmegaEmulation aggregates per-process upper wheels into a failure
// detector of class Ω_z readable through the fd.Leader interface — the
// "output" of the two-wheels transformation. Wheels register as their
// processes start; an unregistered process reads the empty set (it has
// taken no step yet).
type OmegaEmulation struct {
	wheels map[ids.ProcID]*UpperWheel
}

var _ fd.Leader = (*OmegaEmulation)(nil)

// NewOmegaEmulation returns an empty aggregator.
func NewOmegaEmulation() *OmegaEmulation {
	return &OmegaEmulation{wheels: make(map[ids.ProcID]*UpperWheel)}
}

// Register binds process p's upper wheel.
func (e *OmegaEmulation) Register(p ids.ProcID, w *UpperWheel) {
	e.wheels[p] = w
}

// NextChange implements fd.ChangeHinted: wheel positions change only when
// a host process takes a step. (The exposed Trusted value also consults
// the underlying querier live; consumers that poll it across time should
// hint off that querier instead.)
func (e *OmegaEmulation) NextChange(sim.Time) sim.Time { return sim.Never }

// Trusted implements fd.Leader.
func (e *OmegaEmulation) Trusted(p ids.ProcID) ids.Set {
	w := e.wheels[p]
	if w == nil {
		return ids.EmptySet()
	}
	return w.Trusted()
}

// ReprView aggregates per-process lower wheels, exposing the emulated
// representatives of Theorem 6 (diagnostics and tests).
type ReprView struct {
	wheels map[ids.ProcID]*LowerWheel
}

// NewReprView returns an empty aggregator.
func NewReprView() *ReprView {
	return &ReprView{wheels: make(map[ids.ProcID]*LowerWheel)}
}

// Register binds process p's lower wheel.
func (v *ReprView) Register(p ids.ProcID, w *LowerWheel) {
	v.wheels[p] = w
}

// Repr returns process p's current representative (p itself before the
// process registered).
func (v *ReprView) Repr(p ids.ProcID) ids.ProcID {
	w := v.wheels[p]
	if w == nil {
		return p
	}
	return w.Repr()
}

// Pos returns process p's current lower-ring position and whether p has
// registered.
func (v *ReprView) Pos(p ids.ProcID) (ids.XPos, bool) {
	w := v.wheels[p]
	if w == nil {
		return ids.XPos{}, false
	}
	return w.Pos(), true
}

// InstallTwoWheels builds the full ◇S_x + ◇φ_y → Ω_z stack for one
// process on top of an existing rbcast layer, registering the outputs
// with the given aggregators (either may be nil). It returns the layers
// to be pushed onto the process's node, bottom-up.
func InstallTwoWheels(env *sim.Env, rb *rbcast.Layer, susp fd.Suspector, q fd.Querier,
	x, y int, emu *OmegaEmulation, reprs *ReprView) (*LowerWheel, *UpperWheel) {
	lower := NewLowerWheel(env, rb, susp, x)
	upper := NewUpperWheel(env, rb, q, lower, x, y)
	if reprs != nil {
		reprs.Register(env.ID(), lower)
	}
	if emu != nil {
		emu.Register(env.ID(), upper)
	}
	return lower, upper
}

// SpawnTwoWheels registers transformation-only mains (no upper-layer
// protocol) on every process of sys, returning the emulated Ω_z and the
// representatives view. Call before sys.Run.
func SpawnTwoWheels(sys *sim.System, susp fd.Suspector, q fd.Querier, x, y int) (*OmegaEmulation, *ReprView) {
	emu := NewOmegaEmulation()
	reprs := NewReprView()
	sys.SpawnAll(func(env *sim.Env) {
		rb := rbcast.New(env)
		lower, upper := InstallTwoWheels(env, rb, susp, q, x, y, emu, reprs)
		node.New(env, rb, lower, upper).RunForever()
	})
	return emu, reprs
}

// SpawnLowerWheel registers lower-wheel-only mains on every process
// (for the Fig. 5 experiments), returning the representatives view.
func SpawnLowerWheel(sys *sim.System, susp fd.Suspector, x int) *ReprView {
	reprs := NewReprView()
	sys.SpawnAll(func(env *sim.Env) {
		rb := rbcast.New(env)
		lower := NewLowerWheel(env, rb, susp, x)
		reprs.Register(env.ID(), lower)
		node.New(env, rb, lower).RunForever()
	})
	return reprs
}
