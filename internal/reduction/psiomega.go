package reduction

import (
	"fmt"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
)

// PsiOmega is the paper's Appendix A construction (Fig. 8): a failure
// detector of class Ω_z built from one of class Ψ_y, provided y+z > t.
//
// All processes share a fixed chain Y[1] ⊂ Y[2] ⊂ … with |Y[1]| = z and
// |Y[m+1]| = |Y[m]|+1 up to Π, so all queries satisfy Ψ's containment
// contract. trusted is Y[k] ∖ Y[k−1] for the first k whose query returns
// false: the sets below k have entirely crashed, and the first surviving
// difference — eventually a single live process, or Y[1] itself —
// stabilizes to a set of at most z processes containing a correct one
// (Theorem 13).
//
// No messages are exchanged: the transformation is local to each process.
type PsiOmega struct {
	q     fd.Querier
	chain []ids.Set
	z     int
}

var _ fd.Leader = (*PsiOmega)(nil)

// NewPsiOmega builds the transformation for a system of n processes with
// resilience t. It panics unless 1 ≤ z ≤ n and y+z > t (the paper's
// requirement: the first chain set must already be informative).
func NewPsiOmega(n, t, y, z int, q fd.Querier) *PsiOmega {
	if z < 1 || z > n {
		panic(fmt.Sprintf("reduction: PsiOmega z=%d out of range 1..%d", z, n))
	}
	if y+z <= t {
		panic(fmt.Sprintf("reduction: PsiOmega requires y+z > t, got y=%d z=%d t=%d", y, z, t))
	}
	chain := make([]ids.Set, 0, n-z+1)
	for m := z; m <= n; m++ {
		chain = append(chain, ids.FullSet(m))
	}
	return &PsiOmega{q: q, chain: chain, z: z}
}

// Z returns the produced leader-set size bound.
func (po *PsiOmega) Z() int { return po.z }

// Trusted implements fd.Leader.
func (po *PsiOmega) Trusted(p ids.ProcID) ids.Set {
	for m, y := range po.chain {
		if po.q.Query(p, y) {
			continue
		}
		if m == 0 {
			return y
		}
		return y.Minus(po.chain[m-1])
	}
	// Unreachable in a legal run: the last chain set is Π with |Π| = n > t,
	// whose query is trivially false.
	return ids.EmptySet()
}
