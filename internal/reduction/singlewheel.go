package reduction

import (
	"fmt"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/node"
	"fdgrid/internal/rbcast"
	"fdgrid/internal/sim"
)

// SingleWheelOmega is the quiescent, reliable-broadcast-based ◇S → Ω
// transformation the paper cites as its companion report [17]
// ("From ◇W to Ω: a simple bounded quiescent reliable-broadcast-based
// transformation"). It is the degenerate lower wheel with X = Π fixed:
// the ring reduces to the candidate sequence 1, 2, …, n, 1, …, and all
// processes advance together past suspected candidates until they rest
// on the eventually-never-suspected correct process — whose singleton is
// exactly an Ω (= Ω_1) output.
//
// It requires the full accuracy scope (◇S = ◇S_n): with a smaller
// scope, processes outside the protected set may push the wheel past
// the good candidate forever. Compare with the two-wheels construction,
// which buys Ω_1 from ◇S_{t+1} at the cost of a second, non-quiescent
// component — an ablation the benchmarks measure.
type SingleWheelOmega struct {
	env  *sim.Env
	rb   *rbcast.Layer
	susp fd.Suspector

	buffered      map[ids.ProcID]int
	sentThisVisit bool

	candidate ids.ProcID
	moves     int
}

var _ node.Layer = (*SingleWheelOmega)(nil)

// tagCMove is the single wheel's R-broadcast move message.
var tagCMove = sim.Intern("wheel.cmove")

type cMoveMsg struct {
	Candidate ids.ProcID
}

// NewSingleWheelOmega builds the layer for one process.
func NewSingleWheelOmega(env *sim.Env, rb *rbcast.Layer, susp fd.Suspector) *SingleWheelOmega {
	return &SingleWheelOmega{
		env:       env,
		rb:        rb,
		susp:      susp,
		buffered:  make(map[ids.ProcID]int),
		candidate: 1,
	}
}

// Trusted returns the emulated Ω output: the current candidate leader
// as a singleton. Run-token owned, like all emulated outputs.
func (w *SingleWheelOmega) Trusted() ids.Set {
	return ids.NewSet(w.candidate)
}

// Moves returns how many c_move messages this process consumed.
func (w *SingleWheelOmega) Moves() int {
	return w.moves
}

// Handle implements node.Layer.
func (w *SingleWheelOmega) Handle(m sim.Message) (sim.Message, bool) {
	if m.Tag != tagCMove {
		return m, true
	}
	mv, ok := m.Payload.(cMoveMsg)
	if !ok {
		panic(fmt.Sprintf("reduction: c_move payload %T", m.Payload))
	}
	w.buffered[mv.Candidate]++
	return sim.Message{}, false
}

// Poll implements node.Layer: consume matching moves, then suspect-check
// the current candidate (one broadcast per visit).
func (w *SingleWheelOmega) Poll() {
	n := ids.ProcID(w.env.N())
	for len(w.buffered) > 0 && w.buffered[w.candidate] > 0 {
		w.buffered[w.candidate]--
		w.candidate++
		if w.candidate > n {
			w.candidate = 1
		}
		w.sentThisVisit = false
		w.moves++
	}
	cand := w.candidate
	shouldSend := !w.sentThisVisit && w.susp.Suspected(w.env.ID()).Contains(cand)
	if shouldSend {
		w.sentThisVisit = true
	}

	if shouldSend {
		w.rb.Broadcast(tagCMove, cMoveMsg{Candidate: cand})
	}
}

// SingleWheelEmulation aggregates per-process single wheels into an
// fd.Leader of class Ω (= Ω_1).
type SingleWheelEmulation struct {
	wheels map[ids.ProcID]*SingleWheelOmega
}

var _ fd.Leader = (*SingleWheelEmulation)(nil)

// NewSingleWheelEmulation returns an empty aggregator.
func NewSingleWheelEmulation() *SingleWheelEmulation {
	return &SingleWheelEmulation{wheels: make(map[ids.ProcID]*SingleWheelOmega)}
}

// Register binds process p's wheel.
func (e *SingleWheelEmulation) Register(p ids.ProcID, w *SingleWheelOmega) {
	e.wheels[p] = w
}

// Trusted implements fd.Leader.
func (e *SingleWheelEmulation) Trusted(p ids.ProcID) ids.Set {
	w := e.wheels[p]
	if w == nil {
		return ids.EmptySet()
	}
	return w.Trusted()
}

// SpawnSingleWheel runs the transformation alone on every process,
// returning the emulated Ω.
func SpawnSingleWheel(sys *sim.System, susp fd.Suspector) *SingleWheelEmulation {
	emu := NewSingleWheelEmulation()
	sys.SpawnAll(func(env *sim.Env) {
		rb := rbcast.New(env)
		w := NewSingleWheelOmega(env, rb, susp)
		emu.Register(env.ID(), w)
		node.New(env, rb, w).RunForever()
	})
	return emu
}
