package reduction

import (
	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/node"
	"fdgrid/internal/register"
	"fdgrid/internal/sim"
)

// Register names used by the Fig. 9 algorithm.
const (
	regAlive   = "alive"
	regSuspect = "suspect"
)

// SEmulation aggregates the per-process SUSPECTED_i sets produced by the
// Fig. 9 addition into a failure detector of class S (x+y > t, perpetual
// inputs) or ◇S (eventual inputs), readable through fd.Suspector.
type SEmulation struct {
	sets map[ids.ProcID]ids.Set
}

var _ fd.Suspector = (*SEmulation)(nil)

// NewSEmulation returns an empty aggregator.
func NewSEmulation() *SEmulation {
	return &SEmulation{sets: make(map[ids.ProcID]ids.Set)}
}

func (e *SEmulation) set(p ids.ProcID, s ids.Set) {
	e.sets[p] = s
}

// Suspected implements fd.Suspector. A process that has not yet computed
// an output suspects nobody.
func (e *SEmulation) Suspected(p ids.ProcID) ids.Set {
	return e.sets[p]
}

// NextChange implements fd.ChangeHinted: the emulation changes only when
// a host process takes a step, never from time passing alone.
func (e *SEmulation) NextChange(sim.Time) sim.Time { return sim.Never }

// RunAddS runs the paper's Appendix B algorithm (Fig. 9) forever on one
// process: the addition S_x + φ_y → S_n (◇S_x + ◇φ_y → ◇S_n), legal
// when x+y > t.
//
// Task T1 publishes a heartbeat counter alive[i] and the local suspected
// set suspect[i] through single-writer registers. Task T2 repeatedly
// scans alive[1..n] to split Π into live (progress observed) and X (no
// progress), retrying until query(X) confirms the split — φ_y's
// triviality accepts |X| ≤ t−y outright, its safety vouches that an
// informative X has entirely crashed. The output is
// SUSPECTED_i = (∩_{j∈live} suspect[j]) ∖ live.
//
// The two forever-tasks are interleaved one iteration each per event-loop
// step — one of the schedules the asynchronous model admits. Iterations
// are paced (gap ticks) so message-backed register substrates keep up.
func RunAddS(nd *node.Node, store register.Store, susp fd.Suspector, quer fd.Querier, emu *SEmulation, gap sim.Time) {
	env := nd.Env()
	n, me := env.N(), env.ID()
	var aliveC int64
	prev := make([]int64, n+1)
	cur := make([]int64, n+1)
	last := sim.Time(-1 << 30)

	for {
		if env.Now()-last < gap {
			// Declared wake condition: nothing to do before last+gap
			// unless a message (register traffic) arrives.
			nd.StepUntil(last + gap)
			continue
		}
		last = env.Now()

		// T1: heartbeat and publish suspicions.
		aliveC++
		store.Write(regAlive, aliveC)
		store.Write(regSuspect, susp.Suspected(me))

		// T2, one inner iteration: scan and split.
		var live ids.Set
		for j := 1; j <= n; j++ {
			cur[j] = 0
			if v, ok := store.Read(ids.ProcID(j), regAlive).(int64); ok {
				cur[j] = v
			}
			if cur[j] > prev[j] {
				live = live.Add(ids.ProcID(j))
			}
		}
		x := env.All().Minus(live)
		if quer.Query(me, x) {
			copy(prev, cur)
			inter := env.All()
			live.ForEach(func(j ids.ProcID) bool {
				if s, ok := store.Read(j, regSuspect).(ids.Set); ok {
					inter = inter.Intersect(s)
				} else {
					inter = ids.EmptySet() // j has not published yet
				}
				return true
			})
			emu.set(me, inter.Minus(live))
		}

		nd.StepUntil(last + gap)
	}
}

// SpawnAddS wires the Fig. 9 addition on every process of sys over the
// chosen register substrate and returns the emulated S/◇S output.
// substrate selects the register implementation:
//
//	"memory"    — shared-memory model (the paper's own setting),
//	"heartbeat" — message-passing translation, any t,
//	"abd"       — ABD atomic registers, t < n/2.
func SpawnAddS(sys *sim.System, susp fd.Suspector, quer fd.Querier, substrate string) *SEmulation {
	emu := NewSEmulation()
	gap := sim.Time(4 * sys.Config().N)
	var mem *register.Memory
	if substrate == "memory" {
		mem = register.NewMemory()
	}
	sys.SpawnAll(func(env *sim.Env) {
		var store register.Store
		var layers []node.Layer
		switch substrate {
		case "memory":
			store = mem.View(env.ID())
		case "heartbeat":
			hb := register.NewHeartbeat(env)
			store = hb
			layers = append(layers, hb)
		case "abd":
			abd := register.NewABD(env)
			store = abd
			layers = append(layers, abd)
		default:
			panic("reduction: unknown register substrate " + substrate)
		}
		nd := node.New(env, layers...)
		if abd, ok := store.(*register.ABD); ok {
			abd.Bind(nd)
		}
		RunAddS(nd, store, susp, quer, emu, gap)
	})
	return emu
}
