package reduction

import (
	"testing"

	"fdgrid/internal/agreement"
	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/node"
	"fdgrid/internal/rbcast"
	"fdgrid/internal/sim"
)

// TestSingleWheelBuildsOmega: ◇S (full scope) → Ω via the quiescent
// single wheel, across seeds and crash patterns.
func TestSingleWheelBuildsOmega(t *testing.T) {
	cases := []struct {
		name    string
		crashes map[ids.ProcID]sim.Time
	}{
		{"no-crash", nil},
		{"initial-crash", map[ids.ProcID]sim.Time{1: 0}},
		{"late-crashes", map[ids.ProcID]sim.Time{1: 500, 3: 1_200}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				cfg := sim.Config{
					N: 5, T: 2, Seed: seed, MaxSteps: 200_000, GST: 800,
					Crashes: tc.crashes, Bandwidth: 5,
				}
				sys := sim.MustNew(cfg)
				susp := fd.NewEvtS(sys, 5) // ◇S = ◇S_n required
				emu := SpawnSingleWheel(sys, susp)
				trace := fd.WatchLeader(sys, emu)
				sys.Run(trace.StableFor(sys.Pattern().Correct(), 15_000))
				if err := trace.CheckOmega(sys.Pattern(), 1, 10_000); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestSingleWheelQuiescent: c_move traffic stops once the wheel rests.
func TestSingleWheelQuiescent(t *testing.T) {
	cfg := sim.Config{
		N: 5, T: 2, Seed: 4, MaxSteps: 120_000, GST: 500,
		Crashes: map[ids.ProcID]sim.Time{2: 600}, Bandwidth: 5,
	}
	sys := sim.MustNew(cfg)
	susp := fd.NewEvtS(sys, 5)
	_ = SpawnSingleWheel(sys, susp)
	wire := rbcast.WireTag(tagCMove)
	var at80 int64 = -1
	sys.OnTick(func(now sim.Time) {
		if now == 100_000 {
			at80 = sys.Metrics().Sent(wire)
		}
	})
	rep := sys.Run(nil)
	if at80 < 0 {
		t.Fatal("sampling tick missed")
	}
	if final := rep.Messages.Sent[wire.String()]; final != at80 {
		t.Errorf("c_move traffic still flowing: %d → %d", at80, final)
	}
}

// TestSingleWheelFeedsConsensus: the emulated Ω drives the Fig. 3
// algorithm at k = 1 — the classic ◇S → Ω → consensus pipeline.
func TestSingleWheelFeedsConsensus(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		cfg := sim.Config{
			N: 5, T: 2, Seed: seed, MaxSteps: 1_000_000, GST: 600,
			Crashes: map[ids.ProcID]sim.Time{5: 400}, Bandwidth: 5,
		}
		sys := sim.MustNew(cfg)
		susp := fd.NewEvtS(sys, 5)
		emu := NewSingleWheelEmulation()
		out := agreement.NewOutcome()
		for p := 1; p <= 5; p++ {
			id := ids.ProcID(p)
			sys.Spawn(id, func(env *sim.Env) {
				rb := rbcast.New(env)
				w := NewSingleWheelOmega(env, rb, susp)
				emu.Register(env.ID(), w)
				nd := node.New(env, rb, w)
				agreement.KSet(nd, rb, emu, agreement.Value(10*int(env.ID())), out)
				nd.RunForever()
			})
		}
		rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
		if !rep.StoppedEarly {
			t.Fatalf("seed %d: timed out", seed)
		}
		if err := out.Check(sys.Pattern(), 1); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
