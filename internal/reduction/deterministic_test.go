package reduction

import (
	"testing"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// TestLowerWheelDeferredMatching pins down the paper's task T2
// consumption rule with a deterministic script: n=3, x=3, so the ring is
// (1,Π), (2,Π), (3,Π). Every process suspects p1 forever and nobody
// else. Between one and three processes R-broadcast x_move((1,Π))
// (a process that consumes a delivered move before its first suspicious
// poll advances without broadcasting); every process consumes exactly
// one copy at the matching position and rests at (2,Π) — leftover
// copies stay buffered forever because the position never wraps back.
func TestLowerWheelDeferredMatching(t *testing.T) {
	cfg := sim.Config{N: 3, T: 1, Seed: 5, MaxSteps: 30_000, GST: 0, Bandwidth: 3}
	sys := sim.MustNew(cfg)
	susp := fd.NewScriptedSuspector(sys, []fd.SuspectStep{
		{At: 0, Common: ids.NewSet(1)},
	})
	reprs := SpawnLowerWheel(sys, susp, 3)
	sys.Run(nil)

	want := ids.XPos{Leader: 2, X: ids.FullSet(3)}
	for p := 1; p <= 3; p++ {
		id := ids.ProcID(p)
		pos, ok := reprs.Pos(id)
		if !ok {
			t.Fatalf("process %v never registered", id)
		}
		if pos.Leader != want.Leader || !pos.X.Equal(want.X) {
			t.Errorf("process %v at %s, want %s", id, pos, want)
		}
		if got := reprs.Repr(id); got != 2 {
			t.Errorf("repr of %v = %v, want 2", id, got)
		}
	}
	// Each R-broadcast costs 9 wire messages at n=3 (3 origin sends +
	// 3×2 first-receipt relays); between 1 and 3 origins broadcast.
	sent := sys.Metrics().Sent(sim.Intern("rbcast:wheel.xmove"))
	if sent%9 != 0 || sent < 9 || sent > 27 {
		t.Errorf("x_move wire messages = %d, want a multiple of 9 in [9, 27]", sent)
	}
}

// TestLowerWheelStaggeredScript walks the wheel through two moves: p1's
// leadership is rejected by everyone from the start, p2's from tick
// 2000. The wheel must rest at (3, Π).
func TestLowerWheelStaggeredScript(t *testing.T) {
	cfg := sim.Config{N: 3, T: 1, Seed: 6, MaxSteps: 40_000, GST: 0, Bandwidth: 3}
	sys := sim.MustNew(cfg)
	susp := fd.NewScriptedSuspector(sys, []fd.SuspectStep{
		{At: 0, Common: ids.NewSet(1)},
		{At: 2_000, Common: ids.NewSet(1, 2)},
	})
	reprs := SpawnLowerWheel(sys, susp, 3)
	sys.Run(nil)
	for p := 1; p <= 3; p++ {
		if got := reprs.Repr(ids.ProcID(p)); got != 3 {
			t.Errorf("repr of p%d = %v, want 3", p, got)
		}
	}
}

// TestUpperWheelAllCrashedBranch unit-tests the task T4 fallback: when
// query(Y) confirms the whole candidate region crashed, trusted is the
// smallest provably-live process outside Y.
func TestUpperWheelAllCrashedBranch(t *testing.T) {
	// n=5, t=2, y=1 → |Y|=2; crash {1,2} (= the first ring Y).
	cfg := sim.Config{
		N: 5, T: 2, Seed: 7, MaxSteps: 50_000, GST: 0, Bandwidth: 5,
		Crashes: map[ids.ProcID]sim.Time{1: 0, 2: 0},
	}
	sys := sim.MustNew(cfg)
	quer := fd.NewPhi(sys, 1) // perpetual: exact answers
	// A suspector that never suspects: the lower wheel never moves, and
	// with nobody in Y alive to respond, the upper wheel rests at its
	// first position via the query exit.
	susp := fd.NewScriptedSuspector(sys, []fd.SuspectStep{{At: 0}})
	emu, _ := SpawnTwoWheels(sys, susp, quer, 1, 1)
	trace := fd.WatchLeader(sys, emu)
	sys.Run(trace.StableFor(sys.Pattern().Correct(), 10_000))
	for p := 3; p <= 5; p++ {
		got := emu.Trusted(ids.ProcID(p))
		if !got.Equal(ids.NewSet(3)) {
			t.Errorf("trusted of p%d = %s, want {3} (smallest live outside Y)", p, got)
		}
	}
	if err := trace.CheckOmega(sys.Pattern(), 2, 5_000); err != nil {
		t.Fatal(err)
	}
}
