package reduction

import (
	"fmt"
	"sync"
	"testing"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/rbcast"
	"fdgrid/internal/sim"
)

// posTracker samples per-process lower-wheel positions each tick and
// remembers when they last changed.
type posTracker struct {
	mu         sync.Mutex
	last       map[ids.ProcID]ids.XPos
	lastChange sim.Time
	horizon    sim.Time
}

func trackPositions(sys *sim.System, reprs *ReprView) *posTracker {
	tr := &posTracker{last: make(map[ids.ProcID]ids.XPos)}
	sys.OnTick(func(now sim.Time) {
		tr.mu.Lock()
		defer tr.mu.Unlock()
		tr.horizon = now
		for p := 1; p <= sys.Config().N; p++ {
			id := ids.ProcID(p)
			if sys.Pattern().Crashed(id, now) {
				continue
			}
			pos, ok := reprs.Pos(id)
			if !ok {
				continue
			}
			if old, seen := tr.last[id]; !seen || old.Leader != pos.Leader || !old.X.Equal(pos.X) {
				tr.last[id] = pos
				tr.lastChange = now
			}
		}
	})
	return tr
}

func (tr *posTracker) stableFor() sim.Time {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.horizon - tr.lastChange
}

// checkLowerStable asserts the Theorem 6 post-state.
func checkLowerStable(t *testing.T, sys *sim.System, reprs *ReprView, x int) {
	t.Helper()
	correct := sys.Pattern().Correct()
	var pos ids.XPos
	first := true
	ok := true
	correct.ForEach(func(p ids.ProcID) bool {
		pp, registered := reprs.Pos(p)
		if !registered {
			t.Errorf("correct process %v never registered", p)
			ok = false
			return false
		}
		if first {
			pos, first = pp, false
		} else if pp.Leader != pos.Leader || !pp.X.Equal(pos.X) {
			t.Errorf("positions diverge: %v at %s vs %s", p, pp, pos)
			ok = false
			return false
		}
		return true
	})
	if !ok {
		return
	}
	if pos.X.Size() != x {
		t.Fatalf("stable X %s has size %d, want %d", pos.X, pos.X.Size(), x)
	}
	if pos.X.Intersects(correct) {
		// Live X: leader must be a correct member, adopted by all live
		// members; outsiders represent themselves.
		if !correct.Contains(pos.Leader) {
			t.Errorf("stable leader %v is faulty though X=%s has correct members", pos.Leader, pos.X)
		}
		correct.ForEach(func(p ids.ProcID) bool {
			want := p
			if pos.X.Contains(p) {
				want = pos.Leader
			}
			if got := reprs.Repr(p); got != want {
				t.Errorf("repr of %v = %v, want %v", p, got, want)
			}
			return true
		})
	} else {
		// Dead X: every live process represents itself.
		correct.ForEach(func(p ids.ProcID) bool {
			if got := reprs.Repr(p); got != p {
				t.Errorf("repr of %v = %v, want itself (X fully crashed)", p, got)
			}
			return true
		})
	}
}

func TestLowerWheelStabilizes(t *testing.T) {
	cases := []struct {
		name    string
		n, tt   int
		x       int
		crashes map[ids.ProcID]sim.Time
	}{
		{"no-crash-x2", 5, 2, 2, nil},
		{"late-crash-x2", 5, 2, 2, map[ids.ProcID]sim.Time{3: 900}},
		{"x1", 5, 2, 1, map[ids.ProcID]sim.Time{1: 0}},
		{"x-equals-n", 5, 2, 5, map[ids.ProcID]sim.Time{2: 500}},
		{"crashes-ge-x", 6, 3, 2, map[ids.ProcID]sim.Time{1: 0, 2: 0, 3: 400}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				cfg := sim.Config{
					N: tc.n, T: tc.tt, Seed: seed, MaxSteps: 60_000,
					GST: 800, Crashes: tc.crashes, Bandwidth: tc.n,
				}
				sys := sim.MustNew(cfg)
				susp := fd.NewEvtS(sys, tc.x)
				reprs := SpawnLowerWheel(sys, susp, tc.x)
				tracker := trackPositions(sys, reprs)
				sys.Run(nil)
				if stable := tracker.stableFor(); stable < 10_000 {
					t.Fatalf("seed %d: wheel still moving (stable only %d ticks)", seed, stable)
				}
				checkLowerStable(t, sys, reprs, tc.x)
			}
		})
	}
}

// TestLowerWheelQuiescent: eventually no more x_move messages are sent
// (Corollary 1). We assert no x_move traffic in the final fifth of a
// long run.
func TestLowerWheelQuiescent(t *testing.T) {
	cfg := sim.Config{
		N: 5, T: 2, Seed: 7, MaxSteps: 100_000, GST: 500,
		Crashes: map[ids.ProcID]sim.Time{4: 700}, Bandwidth: 5,
	}
	sys := sim.MustNew(cfg)
	susp := fd.NewEvtS(sys, 2)
	_ = SpawnLowerWheel(sys, susp, 2)
	wire := rbcast.WireTag(tagXMove)
	var at80 int64 = -1
	sys.OnTick(func(now sim.Time) {
		if now == 80_000 {
			at80 = sys.Metrics().Sent(wire)
		}
	})
	rep := sys.Run(nil)
	if at80 < 0 {
		t.Fatal("sampling tick never hit")
	}
	if final := rep.Messages.Sent[wire.String()]; final != at80 {
		t.Errorf("x_move traffic after tick 80k: %d → %d (not quiescent)", at80, final)
	}
	if rep.Messages.Sent[wire.String()] == 0 {
		t.Error("no x_move was ever sent; anarchy did not exercise the wheel")
	}
}

func TestTwoWheelsBuildOmega(t *testing.T) {
	type xy struct{ x, y int }
	cases := []struct {
		name    string
		n, tt   int
		params  []xy
		crashes map[ids.ProcID]sim.Time
	}{
		{"n5t2-no-crash", 5, 2, []xy{{1, 0}, {2, 0}, {3, 0}, {1, 1}, {2, 1}, {1, 2}}, nil},
		{"n5t2-crashes", 5, 2, []xy{{2, 0}, {1, 1}, {2, 1}}, map[ids.ProcID]sim.Time{2: 0, 4: 600}},
		{"n6t3-mixed", 6, 3, []xy{{2, 1}, {3, 1}, {1, 3}}, map[ids.ProcID]sim.Time{1: 300, 5: 900}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, p := range tc.params {
				z := tc.tt + 2 - p.x - p.y
				for seed := int64(0); seed < 2; seed++ {
					cfg := sim.Config{
						N: tc.n, T: tc.tt, Seed: seed, MaxSteps: 150_000,
						GST: 800, Crashes: tc.crashes, Bandwidth: tc.n,
					}
					sys := sim.MustNew(cfg)
					susp := fd.NewEvtS(sys, p.x)
					quer := fd.NewEvtPhi(sys, p.y)
					emu, _ := SpawnTwoWheels(sys, susp, quer, p.x, p.y)
					trace := fd.WatchLeader(sys, emu)
					sys.Run(trace.StableFor(sys.Pattern().Correct(), 15_000))
					if err := trace.CheckOmega(sys.Pattern(), z, 10_000); err != nil {
						t.Errorf("x=%d y=%d z=%d seed=%d: %v", p.x, p.y, z, seed, err)
					}
				}
			}
		})
	}
}

// TestTwoWheelsAllOfYCrashed drives the upper wheel into its "case A":
// the final candidate region Y can be entirely crashed, making trusted
// fall back to the query-probed smallest live process.
func TestTwoWheelsYCrashed(t *testing.T) {
	// n=5, t=2, x=1, y=1 → |Y| = 2, z = 2. Crash {1,2}: the first ring
	// position Y={1,2} is fully dead, so the wheel may rest there.
	cfg := sim.Config{
		N: 5, T: 2, Seed: 3, MaxSteps: 150_000, GST: 600,
		Crashes: map[ids.ProcID]sim.Time{1: 0, 2: 100}, Bandwidth: 5,
	}
	sys := sim.MustNew(cfg)
	susp := fd.NewEvtS(sys, 1)
	quer := fd.NewEvtPhi(sys, 1)
	emu, _ := SpawnTwoWheels(sys, susp, quer, 1, 1)
	trace := fd.WatchLeader(sys, emu)
	sys.Run(trace.StableFor(sys.Pattern().Correct(), 15_000))
	if err := trace.CheckOmega(sys.Pattern(), 2, 10_000); err != nil {
		t.Fatal(err)
	}
}

func TestUpperWheelParameterValidation(t *testing.T) {
	sys := sim.MustNew(sim.Config{N: 5, T: 2, Seed: 1, MaxSteps: 100})
	env := sys.Env(1)
	rb := rbcast.New(env)
	susp := fd.NewEvtS(sys, 2)
	lower := NewLowerWheel(env, rb, susp, 2)
	quer := fd.NewEvtPhi(sys, 0)
	bad := []struct{ x, y int }{
		{0, 0},  // x too small
		{6, 0},  // x too big
		{2, -1}, // y negative
		{2, 3},  // y > t
		{3, 1},  // z = 0
	}
	for _, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("x=%d y=%d: no panic", c.x, c.y)
				}
			}()
			NewUpperWheel(env, rb, quer, lower, c.x, c.y)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("lower wheel x=0: no panic")
			}
		}()
		NewLowerWheel(env, rb, susp, 0)
	}()
}

func TestPsiOmega(t *testing.T) {
	cases := []struct {
		name    string
		y, z    int
		crashes map[ids.ProcID]sim.Time
	}{
		{"z1-perfectish", 2, 1, map[ids.ProcID]sim.Time{1: 200, 2: 500}},
		{"z2", 1, 2, map[ids.ProcID]sim.Time{1: 300}},
		{"z3-no-crash", 0, 3, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := sim.Config{
				N: 6, T: 2, Seed: 5, MaxSteps: 5_000, GST: 0,
				Crashes: tc.crashes,
			}
			sys := sim.MustNew(cfg)
			psi := fd.WrapPsi(fd.NewPhi(sys, tc.y))
			po := NewPsiOmega(6, 2, tc.y, tc.z, psi)
			if po.Z() != tc.z {
				t.Errorf("Z() = %d", po.Z())
			}
			trace := fd.WatchLeader(sys, po)
			sys.Run(nil)
			if err := trace.CheckOmega(sys.Pattern(), tc.z, 1_000); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPsiOmegaValidation(t *testing.T) {
	sys := sim.MustNew(sim.Config{N: 5, T: 2, Seed: 1, MaxSteps: 100})
	psi := fd.WrapPsi(fd.NewPhi(sys, 1))
	for _, c := range []struct{ y, z int }{{1, 1}, {0, 2}, {1, 0}, {1, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("y=%d z=%d: no panic", c.y, c.z)
				}
			}()
			NewPsiOmega(5, 2, c.y, c.z, psi)
		}()
	}
}

// TestPsiOmegaHonoursContainment: the construction only ever queries
// chain sets, so the Ψ contract holds by design (no panic).
func TestPsiOmegaHonoursContainment(t *testing.T) {
	cfg := sim.Config{N: 6, T: 3, Seed: 9, MaxSteps: 3_000, GST: 0,
		Crashes: map[ids.ProcID]sim.Time{1: 100, 2: 100, 3: 100}}
	sys := sim.MustNew(cfg)
	psi := fd.WrapPsi(fd.NewPhi(sys, 2))
	po := NewPsiOmega(6, 3, 2, 2, psi)
	sys.OnTick(func(now sim.Time) {
		for p := 4; p <= 6; p++ {
			po.Trusted(ids.ProcID(p))
		}
	})
	sys.Run(nil)
	if psi.ChainLen() == 0 {
		t.Error("no queries recorded")
	}
}

func TestSpawnTwoWheelsMessageMix(t *testing.T) {
	// Sanity on the protocol's traffic: inquiries and responses flow
	// forever (non-quiescent upper wheel, paper remark in §4.2.2).
	cfg := sim.Config{N: 5, T: 2, Seed: 11, MaxSteps: 40_000, GST: 300, Bandwidth: 5}
	sys := sim.MustNew(cfg)
	emu, _ := SpawnTwoWheels(sys, fd.NewEvtS(sys, 2), fd.NewEvtPhi(sys, 1), 2, 1)
	var inquiriesAt30k int64 = -1
	sys.OnTick(func(now sim.Time) {
		if now == 30_000 {
			inquiriesAt30k = sys.Metrics().Sent(tagInquiry)
		}
	})
	rep := sys.Run(nil)
	_ = emu
	if inquiriesAt30k <= 0 {
		t.Fatal("no inquiries sent")
	}
	if final := rep.Messages.Sent[tagInquiry.String()]; final <= inquiriesAt30k {
		t.Errorf("inquiry traffic stopped (%d → %d); upper wheel should not be quiescent", inquiriesAt30k, final)
	}
}

func ExampleNewPsiOmega() {
	cfg := sim.Config{N: 4, T: 1, Seed: 1, MaxSteps: 1_000, GST: 0,
		Crashes: map[ids.ProcID]sim.Time{1: 0}}
	sys := sim.MustNew(cfg)
	psi := fd.WrapPsi(fd.NewPhi(sys, 1))
	po := NewPsiOmega(4, 1, 1, 1, psi)
	var out ids.Set
	sys.OnTick(func(now sim.Time) {
		if now == 500 {
			out = po.Trusted(2)
		}
	})
	sys.Run(nil)
	fmt.Println(out)
	// Output: {2}
}
