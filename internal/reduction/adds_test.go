package reduction

import (
	"testing"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// TestAddSPerpetual: S_x + φ_y → S_n when x+y > t (Appendix B,
// Theorem 14), over every register substrate.
func TestAddSPerpetual(t *testing.T) {
	for _, substrate := range []string{"memory", "heartbeat", "abd"} {
		t.Run(substrate, func(t *testing.T) {
			cases := []struct {
				name    string
				x, y    int
				crashes map[ids.ProcID]sim.Time
			}{
				{"x2y1", 2, 1, map[ids.ProcID]sim.Time{3: 800}},
				{"x1y2", 1, 2, map[ids.ProcID]sim.Time{1: 0, 4: 1200}},
				{"x3y0-trivial-phi", 3, 0, nil},
			}
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					// n=5, t=2: x+y > 2 in every case.
					cfg := sim.Config{
						N: 5, T: 2, Seed: 21, MaxSteps: 120_000, GST: 0,
						Crashes: tc.crashes, Bandwidth: 5,
					}
					sys := sim.MustNew(cfg)
					susp := fd.NewS(sys, tc.x)
					quer := fd.NewPhi(sys, tc.y)
					emu := SpawnAddS(sys, susp, quer, substrate)
					trace := fd.WatchSuspector(sys, emu)
					sys.Run(nil)
					// Output must be of class S = S_n: perpetual accuracy
					// with scope n.
					if err := trace.CheckSuspector(sys.Pattern(), 5, true, 20_000); err != nil {
						t.Errorf("x=%d y=%d: %v", tc.x, tc.y, err)
					}
				})
			}
		})
	}
}

// TestAddSEventual: ◇S_x + ◇φ_y → ◇S_n with anarchy before GST.
func TestAddSEventual(t *testing.T) {
	for _, substrate := range []string{"memory", "heartbeat"} {
		t.Run(substrate, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				cfg := sim.Config{
					N: 5, T: 2, Seed: seed, MaxSteps: 150_000, GST: 2_000,
					Crashes: map[ids.ProcID]sim.Time{2: 500}, Bandwidth: 5,
				}
				sys := sim.MustNew(cfg)
				susp := fd.NewEvtS(sys, 2)
				quer := fd.NewEvtPhi(sys, 1)
				emu := SpawnAddS(sys, susp, quer, substrate)
				trace := fd.WatchSuspector(sys, emu)
				sys.Run(nil)
				if err := trace.CheckSuspector(sys.Pattern(), 5, false, 20_000); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestAddSCompleteness: the emulated output eventually suspects exactly
// the crashed processes when the underlying detectors are honest.
func TestAddSCompleteness(t *testing.T) {
	cfg := sim.Config{
		N: 5, T: 2, Seed: 9, MaxSteps: 120_000, GST: 0,
		Crashes: map[ids.ProcID]sim.Time{1: 300, 5: 600}, Bandwidth: 5,
	}
	sys := sim.MustNew(cfg)
	susp := fd.NewS(sys, 3, fd.WithHostile(false))
	quer := fd.NewPhi(sys, 0)
	emu := SpawnAddS(sys, susp, quer, "memory")
	trace := fd.WatchSuspector(sys, emu)
	sys.Run(nil)
	faulty := sys.Pattern().Faulty()
	sys.Pattern().Correct().ForEach(func(p ids.ProcID) bool {
		final, ok := trace.FinalValue(p)
		if !ok {
			t.Errorf("%v never sampled", p)
			return true
		}
		if !final.Equal(faulty) {
			t.Errorf("final SUSPECTED of %v = %s, want %s", p, final, faulty)
		}
		return true
	})
}

func TestSpawnAddSUnknownSubstrate(t *testing.T) {
	cfg := sim.Config{N: 3, T: 1, Seed: 1, MaxSteps: 2_000}
	sys := sim.MustNew(cfg)
	susp := fd.NewS(sys, 2)
	quer := fd.NewPhi(sys, 1)
	emu := SpawnAddS(sys, susp, quer, "bogus")
	// The panic fires inside process mains; it must surface, not hang.
	defer func() {
		if recover() == nil {
			t.Error("unknown substrate did not panic")
		}
	}()
	sys.Run(nil)
	_ = emu
}
