// Package fd implements the paper's failure detector classes as
// executable oracles, plus trace recorders and property checkers.
//
// # Oracles
//
// A failure detector class is defined by properties relating oracle
// outputs to the run's failure pattern. Ground-truth oracles here consult
// the pattern (they are omniscient about crashes) and a stabilization
// time: before it, oracles of the eventual classes (◇S_x, Ω_z, ◇φ_y)
// misbehave pseudo-randomly ("anarchy"); from it on, they obey their
// class's accuracy/leadership/safety properties. Because the classes only
// constrain behaviour *eventually*, such an oracle generates exactly the
// runs the definitions admit — including hostile ones, where processes
// outside the protected scope keep suspecting correct processes forever.
//
// # Reading oracles
//
// Each oracle serves all processes: the process id is an argument. This
// lets transformation layers expose their *emulated* outputs through the
// same interfaces, so constructions stack (◇S_x + ◇φ_y → Ω_z → k-set
// agreement) exactly as in the paper.
package fd

import (
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// Suspector is the output interface of the classes S_x and ◇S_x: each
// process p_i reads a set suspected_i of processes it currently suspects
// to have crashed. A crashed process suspects no process.
type Suspector interface {
	Suspected(p ids.ProcID) ids.Set
}

// Leader is the output interface of the class Ω_z: each process p_i reads
// a set trusted_i of at most z processes. Eventually all correct
// processes read the same set, which contains at least one correct
// process.
type Leader interface {
	Trusted(p ids.ProcID) ids.Set
}

// Querier is the output interface of the classes φ_y, ◇φ_y and Ψ_y:
// process p invokes query(X) to ask whether the whole region X has
// crashed.
type Querier interface {
	Query(p ids.ProcID, x ids.Set) bool
}

// Option configures an oracle.
type Option func(*options)

type options struct {
	stabilizeAt sim.Time // anarchy before this tick; -1 = use system GST
	epoch       sim.Time // anarchy values change every epoch ticks
	anarchyRate float64  // probability of a spurious suspicion/answer
	hostile     bool     // keep unprotected misbehaviour after stabilization
	lag         sim.Time // crash-detection lag for φ liveness
	leaderHint  ids.ProcID
	scopeHint   ids.Set
	trustedHint ids.Set
	leaderSalt  uint64
}

func defaultOptions(sys *sim.System) options {
	return options{
		stabilizeAt: -1,
		epoch:       16,
		anarchyRate: 0.25,
		hostile:     true,
		lag:         0,
	}
}

func (o options) stab(sys *sim.System) sim.Time {
	if o.stabilizeAt >= 0 {
		return o.stabilizeAt
	}
	return sys.GST()
}

// WithStabilizeAt overrides the oracle's stabilization time (default: the
// system's GST). 0 yields a "perfect" oracle that behaves from the start.
func WithStabilizeAt(t sim.Time) Option {
	return func(o *options) { o.stabilizeAt = t }
}

// WithEpoch sets how many ticks an anarchy drawing stays stable.
func WithEpoch(e sim.Time) Option {
	return func(o *options) {
		if e < 1 {
			e = 1
		}
		o.epoch = e
	}
}

// WithAnarchyRate sets the per-epoch probability of a spurious suspicion
// (suspectors) or arbitrary answer (queriers) during anarchy.
func WithAnarchyRate(r float64) Option {
	return func(o *options) { o.anarchyRate = r }
}

// WithHostile controls whether misbehaviour outside the protected scope
// continues after stabilization (default true: the strongest adversary
// the class admits).
func WithHostile(h bool) Option {
	return func(o *options) { o.hostile = h }
}

// WithLag makes query answers (and crash suspicions) reflect crashes only
// after the given detection delay. Legal: liveness/completeness are
// eventual properties.
func WithLag(lag sim.Time) Option {
	return func(o *options) { o.lag = lag }
}

// WithLeader pins the correct process the accuracy/leadership property
// protects (it must be correct in the run's pattern; validated at
// construction).
func WithLeader(p ids.ProcID) Option {
	return func(o *options) { o.leaderHint = p }
}

// WithScope pins the protected set Q of an S_x/◇S_x oracle. Must have
// exactly x members and contain the protected leader.
func WithScope(q ids.Set) Option {
	return func(o *options) { o.scopeHint = q }
}

// WithTrusted pins the final trusted set of an Ω_z oracle. Must have at
// most z members and contain at least one correct process.
func WithTrusted(s ids.Set) Option {
	return func(o *options) { o.trustedHint = s }
}

// WithLeaderSalt varies the deterministic leader/scope drawing without
// pinning it, so distinct oracles in one run protect different processes.
func WithLeaderSalt(salt uint64) Option {
	return func(o *options) { o.leaderSalt = salt }
}
