package fd

import (
	"math/rand"
	"testing"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// randomPattern draws a random legal configuration: n ∈ 4..8, t < n,
// up to t crashes at random times.
func randomPattern(rng *rand.Rand) sim.Config {
	n := 4 + rng.Intn(5)
	t := 1 + rng.Intn(n-1)
	crashes := make(map[ids.ProcID]sim.Time)
	for _, p := range rng.Perm(n)[:rng.Intn(t+1)] {
		crashes[ids.ProcID(p+1)] = sim.Time(rng.Intn(1_200))
	}
	return sim.Config{
		N: n, T: t, Seed: rng.Int63(), MaxSteps: 3_000,
		GST: sim.Time(rng.Intn(1_500)), Crashes: crashes,
	}
}

// TestQuickSuspectorConformance: across random configurations, scopes
// and anarchy rates, ◇S_x and S_x oracles always satisfy their class.
func TestQuickSuspectorConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 40; i++ {
		cfg := randomPattern(rng)
		x := 1 + rng.Intn(cfg.N)
		perpetual := rng.Intn(2) == 0
		rate := rng.Float64()

		sys := sim.MustNew(cfg)
		var s *Suspect
		if perpetual {
			s = NewS(sys, x, WithAnarchyRate(rate))
		} else {
			s = NewEvtS(sys, x, WithAnarchyRate(rate))
		}
		tr := WatchSuspector(sys, s)
		sys.Run(nil)
		if err := tr.CheckSuspector(sys.Pattern(), x, perpetual, 500); err != nil {
			t.Errorf("iter %d (n=%d t=%d x=%d perpetual=%v crashes=%v): %v",
				i, cfg.N, cfg.T, x, perpetual, cfg.Crashes, err)
		}
	}
}

// TestQuickOmegaConformance: Ω_z conformance across random configs.
func TestQuickOmegaConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for i := 0; i < 40; i++ {
		cfg := randomPattern(rng)
		z := 1 + rng.Intn(cfg.N)
		sys := sim.MustNew(cfg)
		w := NewOmega(sys, z, WithEpoch(sim.Time(1+rng.Intn(64))))
		tr := WatchLeader(sys, w)
		sys.Run(nil)
		if err := tr.CheckOmega(sys.Pattern(), z, 500); err != nil {
			t.Errorf("iter %d (n=%d t=%d z=%d crashes=%v): %v",
				i, cfg.N, cfg.T, z, cfg.Crashes, err)
		}
	}
}

// TestQuickPhiConformance: φ_y triviality, safety and liveness over all
// subsets in random configurations (post-GST for the eventual flavor).
func TestQuickPhiConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 30; i++ {
		cfg := randomPattern(rng)
		y := rng.Intn(cfg.T + 1)
		perpetual := rng.Intn(2) == 0
		sys := sim.MustNew(cfg)
		var f *Phi
		if perpetual {
			f = NewPhi(sys, y)
		} else {
			f = NewEvtPhi(sys, y)
		}
		pat := sys.Pattern()
		tt := cfg.T
		sys.OnTick(func(now sim.Time) {
			if now != cfg.MaxSteps-1 && now != cfg.GST+600 {
				return
			}
			if !perpetual && now < sys.GST() {
				return
			}
			// Sweep subset sizes 0..n via sampled subsets.
			for trial := 0; trial < 20; trial++ {
				var x ids.Set
				for p := 1; p <= cfg.N; p++ {
					if rng.Intn(2) == 0 {
						x = x.Add(ids.ProcID(p))
					}
				}
				got := f.Query(1, x)
				switch {
				case x.Size() <= tt-y:
					if !got {
						t.Errorf("iter %d t=%d: trivial-true region answered false for %s", i, now, x)
					}
				case x.Size() > tt:
					if got {
						t.Errorf("iter %d t=%d: trivial-false region answered true for %s", i, now, x)
					}
				default:
					want := pat.AllCrashed(x, now)
					if got != want {
						t.Errorf("iter %d t=%d: query(%s) = %v, want %v", i, now, x, got, want)
					}
				}
			}
		})
		sys.Run(nil)
	}
}
