package fd

import (
	"strings"
	"testing"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// probeRun builds a system with no protocol processes, lets setup install
// oracles and an OnTick sampler, and runs the scheduler to MaxSteps.
func probeRun(t *testing.T, cfg sim.Config, setup func(sys *sim.System)) {
	t.Helper()
	sys := sim.MustNew(cfg)
	setup(sys)
	sys.Run(nil)
}

func baseCfg(seed int64) sim.Config {
	return sim.Config{
		N: 6, T: 3, Seed: seed, MaxSteps: 3_000, GST: 1_000,
		Crashes: map[ids.ProcID]sim.Time{2: 0, 5: 400},
	}
}

func TestEvtSSatisfiesClass(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		for _, x := range []int{1, 3, 6} {
			cfg := baseCfg(seed)
			sys := sim.MustNew(cfg)
			s := NewEvtS(sys, x)
			tr := WatchSuspector(sys, s)
			sys.Run(nil)
			if err := tr.CheckSuspector(sys.Pattern(), x, false, 500); err != nil {
				t.Errorf("seed=%d x=%d: %v", seed, x, err)
			}
		}
	}
}

func TestSPerpetualSatisfiesClass(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		for _, x := range []int{2, 4} {
			cfg := baseCfg(seed)
			sys := sim.MustNew(cfg)
			s := NewS(sys, x)
			tr := WatchSuspector(sys, s)
			sys.Run(nil)
			// Perpetual accuracy must hold over the whole trace.
			if err := tr.CheckSuspector(sys.Pattern(), x, true, 500); err != nil {
				t.Errorf("seed=%d x=%d: %v", seed, x, err)
			}
		}
	}
}

func TestSuspectorScopeAndLeader(t *testing.T) {
	cfg := baseCfg(1)
	sys := sim.MustNew(cfg)
	s := NewEvtS(sys, 3, WithLeader(4), WithScope(ids.NewSet(1, 4, 6)))
	if s.Leader() != 4 {
		t.Errorf("Leader() = %v", s.Leader())
	}
	if !s.Scope().Equal(ids.NewSet(1, 4, 6)) {
		t.Errorf("Scope() = %s", s.Scope())
	}
	if s.X() != 3 {
		t.Errorf("X() = %d", s.X())
	}
}

func TestSuspectorCrashedSuspectsNothing(t *testing.T) {
	cfg := baseCfg(2)
	probeRun(t, cfg, func(sys *sim.System) {
		s := NewEvtS(sys, 2)
		sys.OnTick(func(now sim.Time) {
			if now > 500 { // p5 crashed at 400, p2 initially
				if !s.Suspected(2).IsEmpty() || !s.Suspected(5).IsEmpty() {
					t.Errorf("crashed process has non-empty suspected set at %d", now)
				}
			}
		})
	})
}

func TestSuspectorAnarchyBeforeGST(t *testing.T) {
	// Before GST, some scope member must at some point suspect the
	// protected leader (that is the point of ◇: anarchy first).
	cfg := baseCfg(3)
	sawAnarchy := false
	probeRun(t, cfg, func(sys *sim.System) {
		s := NewEvtS(sys, 6, WithAnarchyRate(0.5)) // scope = everyone
		l := s.Leader()
		sys.OnTick(func(now sim.Time) {
			if now >= cfg.GST {
				return
			}
			for p := 1; p <= cfg.N; p++ {
				id := ids.ProcID(p)
				if !sys.Pattern().Crashed(id, now) && s.Suspected(id).Contains(l) {
					sawAnarchy = true
				}
			}
		})
	})
	if !sawAnarchy {
		t.Error("no pre-GST suspicion of the protected leader; anarchy not exercised")
	}
}

func TestSuspectorPanics(t *testing.T) {
	cfg := baseCfg(4)
	sys := sim.MustNew(cfg)
	cases := []struct {
		name string
		fn   func()
	}{
		{"x too small", func() { NewEvtS(sys, 0) }},
		{"x too big", func() { NewEvtS(sys, 7) }},
		{"faulty leader", func() { NewEvtS(sys, 2, WithLeader(2)) }},
		{"scope size", func() { NewEvtS(sys, 2, WithLeader(1), WithScope(ids.NewSet(1, 3, 4))) }},
		{"leader not in scope", func() { NewEvtS(sys, 2, WithLeader(1), WithScope(ids.NewSet(3, 4))) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestOmegaSatisfiesClass(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		for _, z := range []int{1, 2, 4} {
			cfg := baseCfg(seed)
			sys := sim.MustNew(cfg)
			w := NewOmega(sys, z)
			tr := WatchLeader(sys, w)
			sys.Run(nil)
			if err := tr.CheckOmega(sys.Pattern(), z, 500); err != nil {
				t.Errorf("seed=%d z=%d: %v", seed, z, err)
			}
			if w.Z() != z {
				t.Errorf("Z() = %d", w.Z())
			}
			if !w.Final().Intersects(sys.Pattern().Correct()) {
				t.Errorf("Final() = %s has no correct process", w.Final())
			}
		}
	}
}

func TestOmegaPerfectFromStart(t *testing.T) {
	cfg := baseCfg(6)
	sys := sim.MustNew(cfg)
	w := NewOmega(sys, 2, WithStabilizeAt(0))
	tr := WatchLeader(sys, w)
	sys.Run(nil)
	// With stabilization at 0 the output never changes: exactly one
	// sample per correct process.
	sys.Pattern().Correct().ForEach(func(p ids.ProcID) bool {
		if got := len(tr.Samples(p)); got != 1 {
			t.Errorf("process %v has %d samples, want 1 (perfect oracle)", p, got)
		}
		return true
	})
}

func TestOmegaPinnedTrusted(t *testing.T) {
	cfg := baseCfg(7)
	sys := sim.MustNew(cfg)
	w := NewOmega(sys, 3, WithTrusted(ids.NewSet(2, 3))) // 3 is correct
	if !w.Final().Equal(ids.NewSet(2, 3)) {
		t.Errorf("Final() = %s", w.Final())
	}
	for _, fn := range []func(){
		func() { NewOmega(sys, 1, WithTrusted(ids.NewSet(1, 3))) }, // too big
		func() { NewOmega(sys, 2, WithTrusted(ids.NewSet(2, 5))) }, // no correct
		func() { NewOmega(sys, 0) },                                // z range
		func() { NewOmega(sys, 2, WithLeader(5)) },                 // faulty leader
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPhiTriviality(t *testing.T) {
	cfg := baseCfg(8)
	sys := sim.MustNew(cfg) // t = 3
	for _, y := range []int{0, 1, 3} {
		f := NewPhi(sys, y)
		small := ids.FullSet(3 - y) // |X| = t−y ⇒ trivially true
		if !small.IsEmpty() && !f.Query(1, small) {
			t.Errorf("y=%d: query(%s) = false, want trivially true", y, small)
		}
		big := ids.FullSet(4) // |X| = t+1 ⇒ trivially false
		if f.Query(1, big) {
			t.Errorf("y=%d: query(%s) = true, want trivially false", y, big)
		}
		if f.Y() != y {
			t.Errorf("Y() = %d", f.Y())
		}
	}
}

func TestPhiSafetyAndLiveness(t *testing.T) {
	// t=3, y=2: informative region 1 < |X| ≤ 3.
	cfg := sim.Config{
		N: 6, T: 3, Seed: 9, MaxSteps: 2_000, GST: 0,
		Crashes: map[ids.ProcID]sim.Time{2: 100, 5: 300},
	}
	probeRun(t, cfg, func(sys *sim.System) {
		f := NewPhi(sys, 2)
		region := ids.NewSet(2, 5)   // crashes fully at 300
		withLive := ids.NewSet(2, 3) // 3 is correct
		sys.OnTick(func(now sim.Time) {
			if f.Query(1, withLive) {
				t.Errorf("t=%d: query over live region returned true (safety)", now)
			}
			got := f.Query(4, region)
			want := now >= 300
			if got != want {
				t.Errorf("t=%d: query(%s) = %v, want %v", now, region, got, want)
			}
		})
	})
}

func TestPhiLag(t *testing.T) {
	cfg := sim.Config{
		N: 4, T: 2, Seed: 10, MaxSteps: 1_000, GST: 0,
		Crashes: map[ids.ProcID]sim.Time{1: 100, 2: 100},
	}
	probeRun(t, cfg, func(sys *sim.System) {
		f := NewPhi(sys, 1, WithLag(50))
		region := ids.NewSet(1, 2)
		sys.OnTick(func(now sim.Time) {
			got := f.Query(3, region)
			want := now >= 150
			if got != want {
				t.Errorf("t=%d: lagged query = %v, want %v", now, got, want)
			}
		})
	})
}

func TestEvtPhiAnarchyThenSafety(t *testing.T) {
	cfg := sim.Config{N: 6, T: 3, Seed: 11, MaxSteps: 4_000, GST: 2_000}
	liveRegion := ids.NewSet(1, 2, 3)
	sawLie := false
	probeRun(t, cfg, func(sys *sim.System) {
		f := NewEvtPhi(sys, 3)
		sys.OnTick(func(now sim.Time) {
			got := f.Query(4, liveRegion)
			if now < cfg.GST && got {
				sawLie = true // eventual safety violated early: allowed
			}
			if now >= cfg.GST && got {
				t.Errorf("t=%d: post-GST query over live region returned true", now)
			}
		})
	})
	if !sawLie {
		t.Error("◇φ never lied before GST; anarchy not exercised")
	}
}

func TestPerfectDetectors(t *testing.T) {
	cfg := sim.Config{
		N: 5, T: 2, Seed: 12, MaxSteps: 1_000, GST: 500,
		Crashes: map[ids.ProcID]sim.Time{4: 200},
	}
	probeRun(t, cfg, func(sys *sim.System) {
		p := NewP(sys)
		if p.Y() != 2 {
			t.Errorf("P ≡ φ_t: Y() = %d, want %d", p.Y(), 2)
		}
		ep := NewEvtP(sys)
		sys.OnTick(func(now sim.Time) {
			// P: exact crash knowledge at every time for singleton sets.
			got := p.Query(1, ids.NewSet(4))
			if want := now >= 200; got != want {
				t.Errorf("t=%d: P.query({4}) = %v, want %v", now, got, want)
			}
			if now >= cfg.GST {
				if ep.Query(1, ids.NewSet(5)) {
					t.Errorf("t=%d: ◇P claims correct process crashed post-GST", now)
				}
			}
		})
	})
}

func TestPhiYRangePanics(t *testing.T) {
	sys := sim.MustNew(sim.Config{N: 4, T: 2, Seed: 1, MaxSteps: 10})
	for _, y := range []int{-1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("y=%d: no panic", y)
				}
			}()
			NewPhi(sys, y)
		}()
	}
}

func TestPsiContainmentContract(t *testing.T) {
	sys := sim.MustNew(sim.Config{N: 5, T: 3, Seed: 13, MaxSteps: 10})
	psi := WrapPsi(NewPhi(sys, 2))
	// A chain is fine, queried out of size order and by several callers.
	psi.Query(1, ids.NewSet(1, 2))
	psi.Query(2, ids.NewSet(1))
	psi.Query(3, ids.NewSet(1, 2, 3))
	psi.Query(1, ids.NewSet(1, 2)) // repeat is fine
	if got := psi.ChainLen(); got != 3 {
		t.Errorf("ChainLen() = %d, want 3", got)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("incomparable query did not panic")
		}
		if !strings.Contains(r.(string), "containment") {
			t.Errorf("panic message %q", r)
		}
	}()
	psi.Query(2, ids.NewSet(2, 3)) // incomparable with {1}
}

func TestCheckOmegaRejectsViolations(t *testing.T) {
	cfg := sim.Config{N: 3, T: 1, Seed: 14, MaxSteps: 500, GST: 0,
		Crashes: map[ids.ProcID]sim.Time{3: 0}}
	// A "leader" oracle that never agrees across processes.
	bad := leaderFunc(func(p ids.ProcID) ids.Set { return ids.NewSet(p) })
	sys := sim.MustNew(cfg)
	tr := WatchLeader(sys, bad)
	sys.Run(nil)
	if err := tr.CheckOmega(sys.Pattern(), 1, 100); err == nil {
		t.Error("CheckOmega accepted diverging trusted sets")
	}

	// An oracle trusting only the crashed process.
	sys2 := sim.MustNew(cfg)
	bad2 := leaderFunc(func(p ids.ProcID) ids.Set { return ids.NewSet(3) })
	tr2 := WatchLeader(sys2, bad2)
	sys2.Run(nil)
	if err := tr2.CheckOmega(sys2.Pattern(), 1, 100); err == nil {
		t.Error("CheckOmega accepted an all-faulty trusted set")
	}

	// Oversized set.
	sys3 := sim.MustNew(cfg)
	bad3 := leaderFunc(func(p ids.ProcID) ids.Set { return ids.NewSet(1, 2) })
	tr3 := WatchLeader(sys3, bad3)
	sys3.Run(nil)
	if err := tr3.CheckOmega(sys3.Pattern(), 1, 100); err == nil {
		t.Error("CheckOmega accepted |trusted| > z")
	}
	if err := tr3.CheckOmega(sys3.Pattern(), 2, 100); err != nil {
		t.Errorf("CheckOmega rejected a legal Ω_2 trace: %v", err)
	}
}

func TestCheckSuspectorRejectsViolations(t *testing.T) {
	cfg := sim.Config{N: 3, T: 1, Seed: 15, MaxSteps: 500, GST: 0,
		Crashes: map[ids.ProcID]sim.Time{3: 100}}
	// Suspects every other process, always: completeness OK; accuracy
	// fails at x=3 (some correct process would have to stop suspecting
	// ℓ). At x=2 the trace is legal: Q = {ℓ, crashed p3} works, since a
	// crashed process suspects nobody.
	sys := sim.MustNew(cfg)
	bad := suspectorFunc(func(p ids.ProcID) ids.Set { return ids.FullSet(3).Remove(p) })
	tr := WatchSuspector(sys, bad)
	sys.Run(nil)
	if err := tr.CheckSuspector(sys.Pattern(), 3, false, 100); err == nil {
		t.Error("CheckSuspector accepted an accuracy-free trace at x=3")
	}
	if err := tr.CheckSuspector(sys.Pattern(), 2, false, 100); err != nil {
		t.Errorf("CheckSuspector rejected legal ◇S_2 trace: %v", err)
	}
	if err := tr.CheckSuspector(sys.Pattern(), 1, false, 100); err != nil {
		t.Errorf("CheckSuspector rejected x=1: %v", err)
	}

	// Never suspects anyone: completeness violated.
	sys2 := sim.MustNew(cfg)
	bad2 := suspectorFunc(func(p ids.ProcID) ids.Set { return ids.EmptySet() })
	tr2 := WatchSuspector(sys2, bad2)
	sys2.Run(nil)
	if err := tr2.CheckSuspector(sys2.Pattern(), 2, false, 100); err == nil {
		t.Error("CheckSuspector accepted a completeness-free trace")
	}
}

// leaderFunc/suspectorFunc adapt plain functions for checker tests.
type leaderFunc func(ids.ProcID) ids.Set

func (f leaderFunc) Trusted(p ids.ProcID) ids.Set { return f(p) }

type suspectorFunc func(ids.ProcID) ids.Set

func (f suspectorFunc) Suspected(p ids.ProcID) ids.Set { return f(p) }

func TestStatelessRandHelpers(t *testing.T) {
	if mix(1, 2) == mix(2, 1) {
		t.Error("mix is order-insensitive; collisions likely")
	}
	if chance(0, 1) || !chance(1, 1) {
		t.Error("chance boundary behaviour wrong")
	}
	a, b := setKey(ids.NewSet(1, 2)), setKey(ids.NewSet(1, 3))
	if a == b {
		t.Error("setKey collision on small sets")
	}
	if epochOf(-5, 16) != 0 {
		t.Error("negative time epoch")
	}
	if epochOf(31, 16) != 1 || epochOf(32, 16) != 2 {
		t.Error("epoch boundaries wrong")
	}
	got := pickDistinct(ids.NewSet(1), ids.FullSet(5), 2, 42)
	if got.Size() != 3 || !got.Contains(1) {
		t.Errorf("pickDistinct = %s", got)
	}
	// Requesting more than available saturates.
	all := pickDistinct(ids.EmptySet(), ids.FullSet(3), 10, 7)
	if all.Size() != 3 {
		t.Errorf("pickDistinct saturation = %s", all)
	}
}
