package fd

import (
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// splitmix64 is the finalizer of the SplitMix64 generator; it is used to
// derive stateless, deterministic pseudo-random values from run seed,
// process ids, epochs and set contents, so oracle outputs are pure
// functions of (time, arguments) and need no locking.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix folds the keys into one 64-bit hash.
func mix(keys ...uint64) uint64 {
	h := uint64(0x243f6a8885a308d3)
	for _, k := range keys {
		h = splitmix64(h ^ k)
	}
	return h
}

// chance reports a pseudo-random event of probability rate, deterministic
// in the keys.
func chance(rate float64, keys ...uint64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	const scale = 1 << 53
	v := mix(keys...) >> 11 // top 53 bits
	return float64(v) < rate*scale
}

// epochOf buckets time into anarchy epochs.
func epochOf(now, epoch sim.Time) uint64 {
	if now < 0 {
		return 0
	}
	return uint64(now / epoch)
}

// setKey folds a Set into a hash key.
func setKey(s ids.Set) uint64 {
	var k uint64
	s.ForEach(func(p ids.ProcID) bool {
		k = splitmix64(k ^ uint64(p))
		return true
	})
	return k
}

// boundedDraw returns an unbiased deterministic value in [0, n): 64-bit
// draws from the keyed splitmix stream are rejected while they fall in
// the 2^64 mod n remainder zone, so no residue is over-represented. A
// plain `mix(...) % n` favours the low residues by up to n/2^64 per
// value — negligible alone, but a systematic skew once n grows toward
// MaxProcs = 256 and the draw feeds every generated scope and trusted
// set of a sweep.
func boundedDraw(n int, keys ...uint64) int {
	if n <= 1 {
		return 0
	}
	un := uint64(n)
	reject := -un % un // 2^64 mod n: the short final bucket
	for attempt := uint64(0); ; attempt++ {
		v := mix(append(keys, attempt)...)
		if v >= reject {
			return int(v % un)
		}
	}
}

// pickDistinct deterministically selects count members from pool
// (excluding those already in chosen), returning chosen ∪ picks.
func pickDistinct(chosen, pool ids.Set, count int, salt uint64) ids.Set {
	members := pool.Minus(chosen).Members()
	for i := 0; i < count && len(members) > 0; i++ {
		j := boundedDraw(len(members), salt, uint64(i))
		chosen = chosen.Add(members[j])
		members = append(members[:j], members[j+1:]...)
	}
	return chosen
}
