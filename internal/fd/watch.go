package fd

import (
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// SetSample is one change point of a process's set-valued oracle output:
// the output equals Value from At until the next sample's At.
type SetSample struct {
	At    sim.Time
	Value ids.Set
}

// SetTrace records the set-valued outputs (suspected_i or trusted_i) of
// an oracle over a run, change-compressed per process. Build one with
// WatchLeader or WatchSuspector before System.Run; inspect it afterwards
// with the Check* methods in check.go.
type SetTrace struct {
	sys     *sim.System
	n       int
	byProc  [][]SetSample // index 1..n
	last    []ids.Set
	started []bool
	horizon sim.Time
}

func newSetTrace(sys *sim.System) *SetTrace {
	n := sys.Config().N
	return &SetTrace{
		sys:     sys,
		n:       n,
		byProc:  make([][]SetSample, n+1),
		last:    make([]ids.Set, n+1),
		started: make([]bool, n+1),
	}
}

// watchSets installs a sampler for a per-process set-valued output.
// Dense samplers observe every tick (and force the clock dense); sparse
// ones observe every scheduled tick, which suffices for emulated outputs
// because those change only when a process takes a step.
func watchSets(sys *sim.System, dense bool, read func(ids.ProcID) ids.Set) *SetTrace {
	tr := newSetTrace(sys)
	sample := func(now sim.Time) {
		// One crashed-set lookup per tick, then a masked sweep over the
		// alive processes — membership and ascending order are exactly
		// those of a 1..n loop with a per-process Crashed check.
		alive := ids.FullSet(tr.n).Minus(sys.Pattern().CrashedSet(now))
		alive.ForEachIn(tr.n, func(id ids.ProcID) bool {
			tr.observe(id, now, read(id))
			return true
		})
		tr.tick(now)
	}
	if dense {
		sys.OnTick(sample)
	} else {
		sys.OnAdvance(sample)
	}
	return tr
}

// WatchLeader samples l.Trusted(p) for every process on every tick
// (dense: the run never skips a tick, so time-driven oracle churn is
// captured exactly).
func WatchLeader(sys *sim.System, l Leader) *SetTrace {
	return watchSets(sys, true, l.Trusted)
}

// WatchSuspector samples s.Suspected(p) for every process on every tick.
func WatchSuspector(sys *sim.System, s Suspector) *SetTrace {
	return watchSets(sys, true, s.Suspected)
}

// WatchLeaderSparse samples l.Trusted(p) at every scheduled tick, letting
// the scheduler skip idle virtual time. Use it for emulated outputs
// (whose value changes only when a process takes a step); for
// ground-truth oracles, whose anarchy churns with the clock itself, the
// dense WatchLeader records the exact timeline.
func WatchLeaderSparse(sys *sim.System, l Leader) *SetTrace {
	return watchSets(sys, false, l.Trusted)
}

// WatchSuspectorSparse is WatchLeaderSparse for suspectors.
func WatchSuspectorSparse(sys *sim.System, s Suspector) *SetTrace {
	return watchSets(sys, false, s.Suspected)
}

func (tr *SetTrace) observe(p ids.ProcID, now sim.Time, v ids.Set) {
	if tr.started[p] && tr.last[p].Equal(v) {
		return
	}
	tr.started[p] = true
	tr.last[p] = v
	tr.byProc[p] = append(tr.byProc[p], SetSample{At: now, Value: v})
}

func (tr *SetTrace) tick(now sim.Time) {
	tr.horizon = now
}

// StableFor returns a stop predicate for System.Run: it fires once every
// process of procs has been sampled at least once and no sampled output
// has changed during the last margin ticks. Pick margin larger than the
// run's GST and last crash time so the observed stability covers a
// genuinely post-stabilization window.
func (tr *SetTrace) StableFor(procs ids.Set, margin sim.Time) func() bool {
	return func() bool {
		stable := true
		var lastChange sim.Time = -1
		procs.ForEach(func(p ids.ProcID) bool {
			if !tr.started[p] {
				stable = false
				return false
			}
			ss := tr.byProc[p]
			if len(ss) > 0 {
				at := ss[len(ss)-1].At
				if at > lastChange {
					lastChange = at
				}
				if tr.horizon-at < margin {
					stable = false
				}
			}
			return true
		})
		if !stable && lastChange >= 0 {
			// Tell the scheduler when this predicate can next flip, so
			// clock jumps land on (not past) the earliest stopping tick.
			tr.sys.WakeAt(lastChange + margin)
		}
		return stable
	}
}

// Horizon returns the last sampled tick.
func (tr *SetTrace) Horizon() sim.Time {
	return tr.horizon
}

// inRange reports whether p is a process of the watched system (the
// accessors tolerate unknown ids, reporting "never sampled").
func (tr *SetTrace) inRange(p ids.ProcID) bool {
	return p >= 1 && int(p) <= tr.n
}

// Samples returns the recorded change points of process p.
func (tr *SetTrace) Samples(p ids.ProcID) []SetSample {
	if !tr.inRange(p) {
		return nil
	}
	return append([]SetSample(nil), tr.byProc[p]...)
}

// FinalValue returns the last recorded output of p and whether p was ever
// sampled.
func (tr *SetTrace) FinalValue(p ids.ProcID) (ids.Set, bool) {
	if !tr.inRange(p) {
		return ids.EmptySet(), false
	}
	return tr.last[p], tr.started[p]
}

// LastChange returns the time of p's last output change (0 if never
// sampled).
func (tr *SetTrace) LastChange(p ids.ProcID) sim.Time {
	if !tr.inRange(p) {
		return 0
	}
	ss := tr.byProc[p]
	if len(ss) == 0 {
		return 0
	}
	return ss[len(ss)-1].At
}

// lastTimeContaining returns the last tick at which p's output contained
// q, or -1 if it never did. If the final output contains q it returns the
// horizon.
func (tr *SetTrace) lastTimeContaining(p, q ids.ProcID) sim.Time {
	if !tr.inRange(p) {
		return -1
	}
	ss := tr.byProc[p]
	last := sim.Time(-1)
	for i, s := range ss {
		if !s.Value.Contains(q) {
			continue
		}
		if i+1 < len(ss) {
			last = ss[i+1].At
		} else {
			last = tr.horizon
		}
	}
	return last
}

// everContained reports whether p's output ever contained q.
func (tr *SetTrace) everContained(p, q ids.ProcID) bool {
	return tr.lastTimeContaining(p, q) >= 0
}

// stableSuffixStart returns the earliest time τ such that for every
// process in procs, all samples at or after τ satisfy pred... kept
// simple: it returns the latest "last violation end" over procs for the
// given per-sample predicate.
func (tr *SetTrace) lastViolation(procs ids.Set, ok func(p ids.ProcID, v ids.Set) bool) sim.Time {
	worst := sim.Time(-1)
	procs.ForEach(func(p ids.ProcID) bool {
		ss := tr.byProc[p]
		for i, s := range ss {
			if ok(p, s.Value) {
				continue
			}
			end := tr.horizon
			if i+1 < len(ss) {
				end = ss[i+1].At
			}
			if end > worst {
				worst = end
			}
		}
		return true
	})
	return worst
}
