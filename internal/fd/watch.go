package fd

import (
	"sync"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// SetSample is one change point of a process's set-valued oracle output:
// the output equals Value from At until the next sample's At.
type SetSample struct {
	At    sim.Time
	Value ids.Set
}

// SetTrace records the set-valued outputs (suspected_i or trusted_i) of
// an oracle over a run, change-compressed per process. Build one with
// WatchLeader or WatchSuspector before System.Run; inspect it afterwards
// with the Check* methods in check.go.
type SetTrace struct {
	mu      sync.Mutex
	n       int
	byProc  map[ids.ProcID][]SetSample
	last    map[ids.ProcID]ids.Set
	started map[ids.ProcID]bool
	horizon sim.Time
}

func newSetTrace(n int) *SetTrace {
	return &SetTrace{
		n:       n,
		byProc:  make(map[ids.ProcID][]SetSample, n),
		last:    make(map[ids.ProcID]ids.Set, n),
		started: make(map[ids.ProcID]bool, n),
	}
}

// WatchLeader samples l.Trusted(p) for every process on every tick.
func WatchLeader(sys *sim.System, l Leader) *SetTrace {
	tr := newSetTrace(sys.Config().N)
	sys.OnTick(func(now sim.Time) {
		for p := 1; p <= tr.n; p++ {
			id := ids.ProcID(p)
			if sys.Pattern().Crashed(id, now) {
				continue
			}
			tr.observe(id, now, l.Trusted(id))
		}
		tr.tick(now)
	})
	return tr
}

// WatchSuspector samples s.Suspected(p) for every process on every tick.
func WatchSuspector(sys *sim.System, s Suspector) *SetTrace {
	tr := newSetTrace(sys.Config().N)
	sys.OnTick(func(now sim.Time) {
		for p := 1; p <= tr.n; p++ {
			id := ids.ProcID(p)
			if sys.Pattern().Crashed(id, now) {
				continue
			}
			tr.observe(id, now, s.Suspected(id))
		}
		tr.tick(now)
	})
	return tr
}

func (tr *SetTrace) observe(p ids.ProcID, now sim.Time, v ids.Set) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.started[p] && tr.last[p].Equal(v) {
		return
	}
	tr.started[p] = true
	tr.last[p] = v
	tr.byProc[p] = append(tr.byProc[p], SetSample{At: now, Value: v})
}

func (tr *SetTrace) tick(now sim.Time) {
	tr.mu.Lock()
	tr.horizon = now
	tr.mu.Unlock()
}

// StableFor returns a stop predicate for System.Run: it fires once every
// process of procs has been sampled at least once and no sampled output
// has changed during the last margin ticks. Pick margin larger than the
// run's GST and last crash time so the observed stability covers a
// genuinely post-stabilization window.
func (tr *SetTrace) StableFor(procs ids.Set, margin sim.Time) func() bool {
	return func() bool {
		tr.mu.Lock()
		defer tr.mu.Unlock()
		stable := true
		procs.ForEach(func(p ids.ProcID) bool {
			if !tr.started[p] {
				stable = false
				return false
			}
			ss := tr.byProc[p]
			if len(ss) > 0 && tr.horizon-ss[len(ss)-1].At < margin {
				stable = false
				return false
			}
			return true
		})
		return stable
	}
}

// Horizon returns the last sampled tick.
func (tr *SetTrace) Horizon() sim.Time {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.horizon
}

// Samples returns the recorded change points of process p.
func (tr *SetTrace) Samples(p ids.ProcID) []SetSample {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]SetSample(nil), tr.byProc[p]...)
}

// FinalValue returns the last recorded output of p and whether p was ever
// sampled.
func (tr *SetTrace) FinalValue(p ids.ProcID) (ids.Set, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	s, ok := tr.last[p]
	return s, ok && tr.started[p]
}

// LastChange returns the time of p's last output change (0 if never
// sampled).
func (tr *SetTrace) LastChange(p ids.ProcID) sim.Time {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	ss := tr.byProc[p]
	if len(ss) == 0 {
		return 0
	}
	return ss[len(ss)-1].At
}

// lastTimeContaining returns the last tick at which p's output contained
// q, or -1 if it never did. If the final output contains q it returns the
// horizon.
func (tr *SetTrace) lastTimeContaining(p, q ids.ProcID) sim.Time {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	ss := tr.byProc[p]
	last := sim.Time(-1)
	for i, s := range ss {
		if !s.Value.Contains(q) {
			continue
		}
		if i+1 < len(ss) {
			last = ss[i+1].At
		} else {
			last = tr.horizon
		}
	}
	return last
}

// everContained reports whether p's output ever contained q.
func (tr *SetTrace) everContained(p, q ids.ProcID) bool {
	return tr.lastTimeContaining(p, q) >= 0
}

// stableSuffixStart returns the earliest time τ such that for every
// process in procs, all samples at or after τ satisfy pred... kept
// simple: it returns the latest "last violation end" over procs for the
// given per-sample predicate.
func (tr *SetTrace) lastViolation(procs ids.Set, ok func(p ids.ProcID, v ids.Set) bool) sim.Time {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	worst := sim.Time(-1)
	procs.ForEach(func(p ids.ProcID) bool {
		ss := tr.byProc[p]
		for i, s := range ss {
			if ok(p, s.Value) {
				continue
			}
			end := tr.horizon
			if i+1 < len(ss) {
				end = ss[i+1].At
			}
			if end > worst {
				worst = end
			}
		}
		return true
	})
	return worst
}
