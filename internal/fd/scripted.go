package fd

import (
	"sort"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// LeaderStep is one segment of a scripted Ω timeline: from At onwards
// (until the next step), every process reads Common unless PerProc
// overrides it.
type LeaderStep struct {
	At      sim.Time
	Common  ids.Set
	PerProc map[ids.ProcID]ids.Set
}

// leaderStepAt returns the index of the step in effect at now, or -1
// before the first step. Steps must be sorted by At (the constructors
// guarantee it), so the lookup is a binary search, not a scan.
func leaderStepAt(steps []LeaderStep, now sim.Time) int {
	return sort.Search(len(steps), func(i int) bool { return steps[i].At > now }) - 1
}

// leaderValueAt evaluates a sorted timeline for reader p at time now.
func leaderValueAt(steps []LeaderStep, p ids.ProcID, now sim.Time) ids.Set {
	i := leaderStepAt(steps, now)
	if i < 0 {
		return ids.EmptySet()
	}
	if v, ok := steps[i].PerProc[p]; ok {
		return v
	}
	return steps[i].Common
}

// ScriptedLeader is a deterministic fd.Leader driven by an explicit
// timeline — the tool for steering a protocol into a specific execution
// path (e.g. the Fig. 3 wait "L_i ≠ trusted_i"). Whether a given script
// belongs to Ω_z is the test author's responsibility; the class checkers
// can verify it (CheckLeaderScript).
type ScriptedLeader struct {
	sys   *sim.System
	steps []LeaderStep
}

var _ Leader = (*ScriptedLeader)(nil)

// NewScriptedLeader builds a scripted oracle; steps are sorted by At.
// The sort is stable, so equal-At steps keep their authored order (the
// later-listed one wins, as it would if its At were one tick larger).
// There must be a step at time 0 (or earlier outputs read the empty set).
func NewScriptedLeader(sys *sim.System, steps []LeaderStep) *ScriptedLeader {
	sorted := append([]LeaderStep(nil), steps...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	return &ScriptedLeader{sys: sys, steps: sorted}
}

// Trusted implements Leader.
func (s *ScriptedLeader) Trusted(p ids.ProcID) ids.Set {
	return leaderValueAt(s.steps, p, s.sys.Now())
}

// SuspectStep is one segment of a scripted suspector timeline.
type SuspectStep struct {
	At      sim.Time
	Common  ids.Set
	PerProc map[ids.ProcID]ids.Set
}

// suspectStepAt is leaderStepAt for suspector timelines.
func suspectStepAt(steps []SuspectStep, now sim.Time) int {
	return sort.Search(len(steps), func(i int) bool { return steps[i].At > now }) - 1
}

// suspectValueAt evaluates a sorted timeline for reader p at time now
// (ignoring the crashed-reader rule, which depends on the pattern).
func suspectValueAt(steps []SuspectStep, p ids.ProcID, now sim.Time) ids.Set {
	i := suspectStepAt(steps, now)
	if i < 0 {
		return ids.EmptySet()
	}
	if v, ok := steps[i].PerProc[p]; ok {
		return v
	}
	return steps[i].Common
}

// ScriptedSuspector is the Suspector twin of ScriptedLeader: a
// deterministic ◇S_x/S_x driver fed by an explicit SUSPECTED timeline.
// CheckSuspectScript verifies whether a script stays inside a declared
// class for a given failure pattern.
type ScriptedSuspector struct {
	sys   *sim.System
	steps []SuspectStep
}

var _ Suspector = (*ScriptedSuspector)(nil)

// NewScriptedSuspector builds a scripted suspector; steps are stably
// sorted by At (equal-At steps keep their authored order).
func NewScriptedSuspector(sys *sim.System, steps []SuspectStep) *ScriptedSuspector {
	sorted := append([]SuspectStep(nil), steps...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	return &ScriptedSuspector{sys: sys, steps: sorted}
}

// Suspected implements Suspector. Crashed processes suspect nobody.
func (s *ScriptedSuspector) Suspected(p ids.ProcID) ids.Set {
	now := s.sys.Now()
	if s.sys.Pattern().Crashed(p, now) {
		return ids.EmptySet()
	}
	return suspectValueAt(s.steps, p, now)
}
