package fd

import (
	"sort"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// LeaderStep is one segment of a scripted Ω timeline: from At onwards
// (until the next step), every process reads Common unless PerProc
// overrides it.
type LeaderStep struct {
	At      sim.Time
	Common  ids.Set
	PerProc map[ids.ProcID]ids.Set
}

// ScriptedLeader is a deterministic fd.Leader driven by an explicit
// timeline — the tool for steering a protocol into a specific execution
// path (e.g. the Fig. 3 wait "L_i ≠ trusted_i"). Whether a given script
// belongs to Ω_z is the test author's responsibility; the class checkers
// can verify it.
type ScriptedLeader struct {
	sys   *sim.System
	steps []LeaderStep
}

var _ Leader = (*ScriptedLeader)(nil)

// NewScriptedLeader builds a scripted oracle; steps are sorted by At.
// There must be a step at time 0 (or earlier outputs read the empty set).
func NewScriptedLeader(sys *sim.System, steps []LeaderStep) *ScriptedLeader {
	sorted := append([]LeaderStep(nil), steps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	return &ScriptedLeader{sys: sys, steps: sorted}
}

// Trusted implements Leader.
func (s *ScriptedLeader) Trusted(p ids.ProcID) ids.Set {
	now := s.sys.Now()
	var cur *LeaderStep
	for i := range s.steps {
		if s.steps[i].At > now {
			break
		}
		cur = &s.steps[i]
	}
	if cur == nil {
		return ids.EmptySet()
	}
	if v, ok := cur.PerProc[p]; ok {
		return v
	}
	return cur.Common
}

// SuspectStep is one segment of a scripted suspector timeline.
type SuspectStep struct {
	At      sim.Time
	Common  ids.Set
	PerProc map[ids.ProcID]ids.Set
}

// ScriptedSuspector is the Suspector twin of ScriptedLeader.
type ScriptedSuspector struct {
	sys   *sim.System
	steps []SuspectStep
}

var _ Suspector = (*ScriptedSuspector)(nil)

// NewScriptedSuspector builds a scripted suspector; steps are sorted by At.
func NewScriptedSuspector(sys *sim.System, steps []SuspectStep) *ScriptedSuspector {
	sorted := append([]SuspectStep(nil), steps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	return &ScriptedSuspector{sys: sys, steps: sorted}
}

// Suspected implements Suspector. Crashed processes suspect nobody.
func (s *ScriptedSuspector) Suspected(p ids.ProcID) ids.Set {
	now := s.sys.Now()
	if s.sys.Pattern().Crashed(p, now) {
		return ids.EmptySet()
	}
	var cur *SuspectStep
	for i := range s.steps {
		if s.steps[i].At > now {
			break
		}
		cur = &s.steps[i]
	}
	if cur == nil {
		return ids.EmptySet()
	}
	if v, ok := cur.PerProc[p]; ok {
		return v
	}
	return cur.Common
}
