package fd

import (
	"fmt"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// Suspect is a ground-truth oracle of class S_x (perpetual limited-scope
// weak accuracy) or ◇S_x (eventual limited-scope weak accuracy), both
// with strong completeness.
//
// The oracle draws a protected pair (leader ℓ, scope Q): ℓ is a correct
// process, |Q| = x, ℓ ∈ Q, and the members of Q never suspect ℓ — from
// the start for S_x, from the stabilization time for ◇S_x. Everything
// else is adversarial: crashed processes are suspected (strong
// completeness), and spurious suspicions of correct processes are drawn
// pseudo-randomly, forever if the oracle is hostile.
type Suspect struct {
	sys       *sim.System
	x         int
	perpetual bool
	opt       options
	leader    ids.ProcID
	scope     ids.Set

	// Memoization of the pure per-epoch draws (run-token owned, like all
	// oracle reads — see the internal/sim concurrency contract). Outputs
	// are unchanged: the anarchy set is a pure function of (reader,
	// epoch) and the crashed set a step function of time, so caching
	// only skips recomputation.
	anarchy []anarchyEpoch // index by reader id
	crashed crashWindow
}

// anarchyEpoch caches one reader's spurious-suspicion draw for an epoch.
type anarchyEpoch struct {
	epoch uint64
	ok    bool
	set   ids.Set
}

// crashWindow caches the crashed-by set over the half-open time window
// [from, till) within which it cannot change.
type crashWindow struct {
	ok         bool
	from, till sim.Time
	set        ids.Set
}

var _ Suspector = (*Suspect)(nil)

// NewEvtS returns a ◇S_x oracle. It panics if x ∉ 1..n or if pinned
// hints are inconsistent; oracle parameters are test/bench inputs.
func NewEvtS(sys *sim.System, x int, opts ...Option) *Suspect {
	return newSuspect(sys, x, false, opts)
}

// NewS returns an S_x oracle (perpetual accuracy).
func NewS(sys *sim.System, x int, opts ...Option) *Suspect {
	return newSuspect(sys, x, true, opts)
}

func newSuspect(sys *sim.System, x int, perpetual bool, opts []Option) *Suspect {
	n := sys.Config().N
	if x < 1 || x > n {
		panic(fmt.Sprintf("fd: S_x with x=%d out of range 1..%d", x, n))
	}
	o := defaultOptions(sys)
	for _, fn := range opts {
		fn(&o)
	}
	s := &Suspect{sys: sys, x: x, perpetual: perpetual, opt: o,
		anarchy: make([]anarchyEpoch, n+1)}
	s.leader, s.scope = drawScope(sys, x, o)
	return s
}

// drawScope picks the protected leader and scope from hints or seed.
func drawScope(sys *sim.System, x int, o options) (ids.ProcID, ids.Set) {
	correct := sys.Pattern().Correct()
	if correct.IsEmpty() {
		panic("fd: no correct process in the failure pattern")
	}
	leader := o.leaderHint
	if leader == ids.None {
		members := correct.Members()
		leader = members[boundedDraw(len(members), uint64(sys.Config().Seed), o.leaderSalt, 0x51)]
	} else if sys.Pattern().CrashTime(leader) != sim.Never {
		panic(fmt.Sprintf("fd: pinned leader %v is faulty in this pattern", leader))
	}
	scope := o.scopeHint
	if scope.IsEmpty() {
		salt := mix(uint64(sys.Config().Seed), o.leaderSalt, 0x52)
		scope = pickDistinct(ids.NewSet(leader), ids.FullSet(sys.Config().N), x-1, salt)
	} else {
		if scope.Size() != x {
			panic(fmt.Sprintf("fd: pinned scope %v has size %d, want x=%d", scope, scope.Size(), x))
		}
		if !scope.Contains(leader) {
			panic(fmt.Sprintf("fd: pinned scope %v does not contain leader %v", scope, leader))
		}
	}
	return leader, scope
}

// Leader returns the correct process the accuracy property protects.
func (s *Suspect) Leader() ids.ProcID { return s.leader }

// Scope returns the protected set Q (|Q| = x, Leader ∈ Q).
func (s *Suspect) Scope() ids.Set { return s.scope }

// X returns the accuracy scope parameter x.
func (s *Suspect) X() int { return s.x }

// Suspected returns suspected_p at the current time: the crashed
// processes (strong completeness, shifted by the detection lag) plus
// the reader's per-epoch spurious draw while anarchy is active, minus
// the reader itself (this oracle never self-suspects — a legal choice)
// and, under the accuracy scope, the protected leader.
func (s *Suspect) Suspected(p ids.ProcID) ids.Set {
	now := s.sys.Now()
	pat := s.sys.Pattern()
	if pat.Crashed(p, now) {
		return ids.EmptySet() // a crashed process suspects no process
	}
	stab := s.opt.stab(s.sys)
	out := s.crashedBy(now - s.opt.lag)
	if now < stab || s.opt.hostile {
		out = out.Union(s.anarchyDraw(p, epochOf(now, s.opt.epoch)))
	}
	out = out.Remove(p)
	// Limited-scope accuracy: members of Q do not suspect the leader —
	// always for S_x, after stabilization for ◇S_x.
	if s.scope.Contains(p) && (s.perpetual || now >= stab) {
		out = out.Remove(s.leader)
	}
	return out
}

// anarchyDraw returns reader p's spurious-suspicion set for an epoch,
// memoized: one splitmix chain per process pair per epoch instead of
// per read.
func (s *Suspect) anarchyDraw(p ids.ProcID, epoch uint64) ids.Set {
	if c := &s.anarchy[p]; c.ok && c.epoch == epoch {
		return c.set
	}
	n := s.sys.Config().N
	seed := uint64(s.sys.Config().Seed)
	var set ids.Set
	for q := 1; q <= n; q++ {
		if ids.ProcID(q) == p {
			continue
		}
		if chance(s.opt.anarchyRate, seed, 0xa1, uint64(p), uint64(q), epoch, s.opt.leaderSalt) {
			set = set.Add(ids.ProcID(q))
		}
	}
	s.anarchy[p] = anarchyEpoch{epoch: epoch, ok: true, set: set}
	return set
}

// crashedBy returns the set of processes crashed at or before t,
// memoized over the window between crash events.
func (s *Suspect) crashedBy(t sim.Time) ids.Set {
	if !s.crashed.covers(t) {
		s.crashed = crashedWindowAt(s.sys.Pattern(), t)
	}
	return s.crashed.set
}

// covers reports whether the cached window is valid at t.
func (w crashWindow) covers(t sim.Time) bool {
	return w.ok && t >= w.from && t < w.till
}

// crashedWindowAt computes the crashed-by set at t and the window
// [from, till) of times sharing it — a binary search over the pattern's
// precomputed crash windows, not a per-process scan.
func crashedWindowAt(pat *sim.Pattern, t sim.Time) crashWindow {
	set, from, till := pat.CrashedWindow(t)
	return crashWindow{ok: true, from: from, till: till, set: set}
}
