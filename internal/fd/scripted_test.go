package fd

import (
	"testing"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

func TestScriptedLeaderTimeline(t *testing.T) {
	cfg := sim.Config{N: 3, T: 1, Seed: 1, MaxSteps: 3_000, GST: 0}
	sys := sim.MustNew(cfg)
	l := NewScriptedLeader(sys, []LeaderStep{
		{At: 1_000, Common: ids.NewSet(2)},
		{At: 0, Common: ids.NewSet(1), PerProc: map[ids.ProcID]ids.Set{3: ids.NewSet(3)}},
	})
	type probe struct {
		at   sim.Time
		p    ids.ProcID
		want ids.Set
	}
	probes := []probe{
		{10, 1, ids.NewSet(1)},
		{10, 3, ids.NewSet(3)}, // per-process override
		{999, 2, ids.NewSet(1)},
		{1_000, 1, ids.NewSet(2)},
		{2_500, 3, ids.NewSet(2)}, // override gone after switch
	}
	sys.OnTick(func(now sim.Time) {
		for _, pr := range probes {
			if pr.at == now {
				if got := l.Trusted(pr.p); !got.Equal(pr.want) {
					t.Errorf("t=%d p=%v: Trusted = %s, want %s", now, pr.p, got, pr.want)
				}
			}
		}
	})
	sys.Run(nil)
}

func TestScriptedSuspectorCrashedSilent(t *testing.T) {
	cfg := sim.Config{N: 3, T: 1, Seed: 2, MaxSteps: 2_000, GST: 0,
		Crashes: map[ids.ProcID]sim.Time{2: 500}}
	sys := sim.MustNew(cfg)
	s := NewScriptedSuspector(sys, []SuspectStep{{At: 0, Common: ids.NewSet(1)}})
	sys.OnTick(func(now sim.Time) {
		switch now {
		case 400:
			if got := s.Suspected(2); !got.Equal(ids.NewSet(1)) {
				t.Errorf("pre-crash Suspected(2) = %s", got)
			}
		case 600:
			if got := s.Suspected(2); !got.IsEmpty() {
				t.Errorf("crashed process suspects %s", got)
			}
			if got := s.Suspected(3); !got.Equal(ids.NewSet(1)) {
				t.Errorf("Suspected(3) = %s", got)
			}
		}
	})
	sys.Run(nil)
}

func TestScriptedEmptyTimelines(t *testing.T) {
	cfg := sim.Config{N: 2, T: 0, Seed: 3, MaxSteps: 100, GST: 0}
	sys := sim.MustNew(cfg)
	l := NewScriptedLeader(sys, nil)
	s := NewScriptedSuspector(sys, nil)
	if !l.Trusted(1).IsEmpty() || !s.Suspected(1).IsEmpty() {
		t.Error("empty scripts must read empty sets")
	}
	sys.Run(nil)
}

// TestSetTraceAccessors exercises the SetTrace inspection helpers the
// checkers build on.
func TestSetTraceAccessors(t *testing.T) {
	cfg := sim.Config{N: 2, T: 0, Seed: 4, MaxSteps: 3_000, GST: 0}
	sys := sim.MustNew(cfg)
	l := NewScriptedLeader(sys, []LeaderStep{
		{At: 0, Common: ids.NewSet(1)},
		{At: 1_000, Common: ids.NewSet(2)},
	})
	tr := WatchLeader(sys, l)
	sys.Run(nil)

	if got := len(tr.Samples(1)); got != 2 {
		t.Fatalf("Samples(1) has %d entries, want 2", got)
	}
	if lc := tr.LastChange(1); lc != 1_000 {
		t.Errorf("LastChange = %d, want 1000", lc)
	}
	final, ok := tr.FinalValue(1)
	if !ok || !final.Equal(ids.NewSet(2)) {
		t.Errorf("FinalValue = %s, %v", final, ok)
	}
	if got := tr.lastTimeContaining(1, 1); got != 1_000 {
		t.Errorf("lastTimeContaining(1,1) = %d, want 1000 (end of its interval)", got)
	}
	if got := tr.lastTimeContaining(1, 2); got != tr.Horizon() {
		t.Errorf("lastTimeContaining(1,2) = %d, want horizon %d", got, tr.Horizon())
	}
	if tr.lastTimeContaining(1, 9) != -1 {
		t.Error("never-contained id reported")
	}
	if !tr.everContained(1, 1) || tr.everContained(1, 9) {
		t.Error("everContained wrong")
	}
	if tr.LastChange(9) != 0 {
		t.Error("unknown process LastChange != 0")
	}
	if _, ok := tr.FinalValue(9); ok {
		t.Error("unknown process has FinalValue")
	}
}

// TestStableForPredicate: fires only after the margin elapses unchanged.
func TestStableForPredicate(t *testing.T) {
	cfg := sim.Config{N: 2, T: 0, Seed: 5, MaxSteps: 5_000, GST: 0}
	sys := sim.MustNew(cfg)
	l := NewScriptedLeader(sys, []LeaderStep{
		{At: 0, Common: ids.NewSet(1)},
		{At: 500, Common: ids.NewSet(2)},
	})
	tr := WatchLeader(sys, l)
	rep := sys.Run(tr.StableFor(ids.NewSet(1, 2), 1_000))
	if !rep.StoppedEarly {
		t.Fatal("StableFor never fired")
	}
	if rep.Steps < 1_500 || rep.Steps > 1_700 {
		t.Errorf("stopped at %d, want ≈ 1500 (change at 500 + margin 1000)", rep.Steps)
	}
}

// TestSuspectorLag: with a detection lag, a crashed process is suspected
// only after crash + lag.
func TestSuspectorLag(t *testing.T) {
	cfg := sim.Config{N: 3, T: 1, Seed: 6, MaxSteps: 2_000, GST: 0,
		Crashes: map[ids.ProcID]sim.Time{3: 500}}
	sys := sim.MustNew(cfg)
	s := NewEvtS(sys, 3, WithLag(300), WithHostile(false), WithStabilizeAt(0))
	sys.OnTick(func(now sim.Time) {
		got := s.Suspected(1).Contains(3)
		want := now >= 800
		if got != want {
			t.Errorf("t=%d: suspected(3) = %v, want %v", now, got, want)
		}
	})
	sys.Run(nil)
}
