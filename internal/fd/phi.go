package fd

import (
	"fmt"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// Phi is a ground-truth oracle of class φ_y (perpetual safety) or ◇φ_y
// (eventual safety). query(X) asks whether the whole region X has
// crashed:
//
//   - Triviality (perpetual in both classes): |X| ≤ t−y ⇒ true,
//     |X| > t ⇒ false.
//   - Safety: in the informative region t−y < |X| ≤ t, true only if every
//     process of X has crashed — from the start for φ_y, eventually for
//     ◇φ_y (before stabilization a ◇φ_y answers arbitrarily).
//   - Liveness: once all of X crashed, queries eventually return true
//     forever (after the configured detection lag).
type Phi struct {
	sys       *sim.System
	y         int
	perpetual bool
	opt       options

	// crashed memoizes the crashed-by set between crash events, turning
	// the post-stabilization AllCrashed scan into one subset test
	// (run-token owned; answers unchanged).
	crashed crashWindow
}

var _ Querier = (*Phi)(nil)

// NewEvtPhi returns a ◇φ_y oracle. It panics if y ∉ 0..n; oracle
// parameters are test/bench inputs.
func NewEvtPhi(sys *sim.System, y int, opts ...Option) *Phi {
	return newPhi(sys, y, false, opts)
}

// NewPhi returns a φ_y oracle (perpetual safety).
func NewPhi(sys *sim.System, y int, opts ...Option) *Phi {
	return newPhi(sys, y, true, opts)
}

// NewP returns a perfect failure detector: the paper notes φ_t ≡ P in
// any system where at most t processes crash.
func NewP(sys *sim.System, opts ...Option) *Phi {
	return NewPhi(sys, sys.Config().T, opts...)
}

// NewEvtP returns an eventually perfect failure detector (◇φ_t ≡ ◇P).
func NewEvtP(sys *sim.System, opts ...Option) *Phi {
	return NewEvtPhi(sys, sys.Config().T, opts...)
}

func newPhi(sys *sim.System, y int, perpetual bool, opts []Option) *Phi {
	n := sys.Config().N
	if y < 0 || y > n {
		panic(fmt.Sprintf("fd: φ_y with y=%d out of range 0..%d", y, n))
	}
	o := defaultOptions(sys)
	for _, fn := range opts {
		fn(&o)
	}
	return &Phi{sys: sys, y: y, perpetual: perpetual, opt: o}
}

// Y returns the scope parameter y.
func (f *Phi) Y() int { return f.y }

// Query implements Querier.
func (f *Phi) Query(p ids.ProcID, x ids.Set) bool {
	t := f.sys.Config().T
	size := x.Size()
	// Triviality holds at all times in both classes.
	if size <= t-f.y {
		return true
	}
	if size > t {
		return false
	}
	now := f.sys.Now()
	if !f.perpetual && now < f.opt.stab(f.sys) {
		// Anarchy: arbitrary answer, stable within an epoch.
		return chance(0.5, uint64(f.sys.Config().Seed), 0x71, uint64(p),
			setKey(x), epochOf(now, f.opt.epoch))
	}
	at := now - f.opt.lag
	if !f.crashed.covers(at) {
		f.crashed = crashedWindowAt(f.sys.Pattern(), at)
	}
	return x.SubsetOf(f.crashed.set)
}
