package fd

import (
	"fmt"

	"fdgrid/internal/ids"
)

// Psi is an oracle of class Ψ_y: a φ_y (or ◇φ_y) whose users must keep
// all query arguments ⊆-comparable — for any two queried sets X and X',
// X ⊆ X' or X' ⊆ X, across all processes.
//
// The containment requirement is a contract on the *user* of the oracle,
// not extra power of the oracle, so Psi wraps a Phi and enforces the
// contract: a violating query panics with a diagnostic. The paper's
// Appendix A transformation honours the contract; tests assert that a
// violating caller is caught.
type Psi struct {
	*Phi

	chain []ids.Set // distinct queried sets, ordered by size
}

var _ Querier = (*Psi)(nil)

// WrapPsi wraps a φ_y/◇φ_y oracle with the Ψ_y containment contract.
func WrapPsi(inner *Phi) *Psi {
	return &Psi{Phi: inner}
}

// Query implements Querier, enforcing the containment contract.
func (f *Psi) Query(p ids.ProcID, x ids.Set) bool {
	f.record(p, x)
	return f.Phi.Query(p, x)
}

func (f *Psi) record(p ids.ProcID, x ids.Set) {
	for _, prev := range f.chain {
		if prev.Equal(x) {
			return
		}
		if !prev.SubsetOf(x) && !x.SubsetOf(prev) {
			panic(fmt.Sprintf(
				"fd: Ψ containment contract violated by %v: query %s incomparable with earlier query %s",
				p, x, prev))
		}
	}
	// Insert keeping the chain ordered by size.
	at := len(f.chain)
	for i, prev := range f.chain {
		if x.Size() < prev.Size() {
			at = i
			break
		}
	}
	f.chain = append(f.chain, ids.Set{})
	copy(f.chain[at+1:], f.chain[at:])
	f.chain[at] = x
}

// ChainLen reports how many distinct sets have been queried (tests).
func (f *Psi) ChainLen() int {
	return len(f.chain)
}
