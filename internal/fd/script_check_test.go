package fd

import (
	"strings"
	"testing"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

func mustPattern(t *testing.T, cfg sim.Config) *sim.Pattern {
	t.Helper()
	return sim.MustNew(cfg).Pattern()
}

// A flapping-then-settling Ω_2 timeline used by several cases below.
func flapScript() []LeaderStep {
	return []LeaderStep{
		{At: 0, Common: ids.NewSet(3)},
		{At: 100, Common: ids.NewSet(4, 5), PerProc: map[ids.ProcID]ids.Set{2: ids.NewSet(1)}},
		{At: 200, Common: ids.NewSet(2)},
		{At: 300, Common: ids.NewSet(1, 2)},
	}
}

func TestCheckLeaderScript(t *testing.T) {
	noCrash := mustPattern(t, sim.Config{N: 5, T: 2, Seed: 1, MaxSteps: 10})
	lateCrash := mustPattern(t, sim.Config{N: 5, T: 2, Seed: 1, MaxSteps: 10,
		Crashes: map[ids.ProcID]sim.Time{5: 600}})

	if err := CheckLeaderScript(flapScript(), noCrash, 2, 2_000, 100); err != nil {
		t.Errorf("conforming script rejected: %v", err)
	}
	if err := CheckLeaderScript(flapScript(), lateCrash, 2, 2_000, 100); err != nil {
		t.Errorf("settle {1,2} under crash of 5 rejected: %v", err)
	}

	// Range constraint: a pre-stabilization step may not exceed z either.
	if err := CheckLeaderScript(flapScript(), noCrash, 1, 2_000, 100); err == nil ||
		!strings.Contains(err.Error(), "z=1") {
		t.Errorf("oversize step accepted for z=1: %v", err)
	}

	// The settled set must contain a correct process.
	crashed12 := mustPattern(t, sim.Config{N: 5, T: 2, Seed: 1, MaxSteps: 10,
		Crashes: map[ids.ProcID]sim.Time{1: 50, 2: 80}})
	if err := CheckLeaderScript(flapScript(), crashed12, 2, 2_000, 100); err == nil {
		t.Error("settle {1,2} accepted though both crashed")
	}

	// A per-process override that never goes away breaks eventual
	// agreement among correct processes.
	diverging := append(flapScript(), LeaderStep{
		At: 400, Common: ids.NewSet(1), PerProc: map[ids.ProcID]ids.Set{3: ids.NewSet(2)}})
	if err := CheckLeaderScript(diverging, noCrash, 2, 2_000, 100); err == nil {
		t.Error("permanently divergent per-process override accepted")
	}

	// Settling too close to the horizon leaves no stable suffix.
	if err := CheckLeaderScript(flapScript(), noCrash, 2, 350, 100); err == nil {
		t.Error("script with no stable suffix accepted")
	}

	if err := CheckLeaderScript(nil, noCrash, 2, 2_000, 100); err == nil {
		t.Error("empty timeline accepted")
	}
	if err := CheckLeaderScript(flapScript(), noCrash, 9, 2_000, 100); err == nil {
		t.Error("z out of range accepted")
	}
}

func TestCheckSuspectScript(t *testing.T) {
	churn := []SuspectStep{
		{At: 0, Common: ids.NewSet(1, 4)},
		{At: 150, Common: ids.NewSet(2), PerProc: map[ids.ProcID]ids.Set{1: ids.NewSet(3)}},
		{At: 400, Common: ids.NewSet(5)},
	}
	noCrash := mustPattern(t, sim.Config{N: 5, T: 2, Seed: 1, MaxSteps: 10})
	// No faulty process: completeness is trivial, and every process
	// eventually spares (say) ℓ=1, so Q = Π ⊇ any scope.
	if err := CheckSuspectScript(churn, noCrash, 3, false, 2_000, 100); err != nil {
		t.Errorf("conforming ◇S script rejected: %v", err)
	}
	// The same script is NOT a perpetual S_3: process 1 suspected ℓ=2
	// before 150... pick ℓ=3: suspected by 1 during [150,400). Every
	// candidate ℓ is suspected by someone at some point, except ℓ ∈ {} —
	// actually ℓ=2 is spared by all except during [150,400) where Common
	// contains 2. So no perpetual scope of size 3 exists.
	if err := CheckSuspectScript(churn, noCrash, 5, true, 2_000, 100); err == nil {
		t.Error("churn accepted as perpetual S_5")
	}

	// Completeness: a crashed process must eventually be suspected.
	crash3 := mustPattern(t, sim.Config{N: 5, T: 2, Seed: 1, MaxSteps: 10,
		Crashes: map[ids.ProcID]sim.Time{3: 200}})
	if err := CheckSuspectScript(churn, crash3, 3, false, 2_000, 100); err == nil {
		t.Error("script that never suspects crashed 3 accepted")
	}
	complete := append(churn[:len(churn):len(churn)], SuspectStep{At: 400, Common: ids.NewSet(3, 5)})
	if err := CheckSuspectScript(complete, crash3, 3, false, 2_000, 100); err != nil {
		t.Errorf("completeness-satisfying script rejected: %v", err)
	}

	if err := CheckSuspectScript(nil, noCrash, 3, false, 2_000, 100); err == nil {
		t.Error("empty timeline accepted")
	}
	if err := CheckSuspectScript(churn, noCrash, 0, false, 2_000, 100); err == nil {
		t.Error("x out of range accepted")
	}
}

func TestCheckOracleParams(t *testing.T) {
	if err := CheckOracleParams(500, 400, 16, 6_000, 1_000); err != nil {
		t.Errorf("legal params rejected: %v", err)
	}
	for _, bad := range []struct {
		name                   string
		stab, epoch, hor, marg sim.Time
		rate                   int
	}{
		{"negative stab", -1, 16, 6_000, 100, 400},
		{"no suffix", 5_500, 16, 6_000, 1_000, 400},
		{"rate over", 100, 16, 6_000, 100, 1_001},
		{"rate under", 100, 16, 6_000, 100, -1},
		{"negative epoch", 100, -2, 6_000, 100, 400},
	} {
		if err := CheckOracleParams(bad.stab, bad.rate, bad.epoch, bad.hor, bad.marg); err == nil {
			t.Errorf("%s accepted", bad.name)
		}
	}
}

// TestCheckRoleParams: the role-aware parameter checkers enforce the
// scope ranges and the perpetual-class rules — no misbehaving prefix
// for either role, no anarchy at all for a perpetual querier (which
// stays legal for a perpetual suspector: hostile out-of-scope suspicion
// is perpetually admitted) — on top of the shared parameter legality.
func TestCheckRoleParams(t *testing.T) {
	const n, hor, marg = 5, 6_000, 1_000
	if err := CheckSuspectorParams(2, n, false, 500, 400, 16, hor, marg); err != nil {
		t.Errorf("legal eventual S-role params rejected: %v", err)
	}
	if err := CheckSuspectorParams(2, n, true, 0, 400, 0, hor, marg); err != nil {
		t.Errorf("perpetual S-role with anarchy rejected (hostile anarchy is legal for S_x): %v", err)
	}
	if err := CheckQuerierParams(1, n, false, 500, 400, 16, hor, marg); err != nil {
		t.Errorf("legal eventual phi-role params rejected: %v", err)
	}
	if err := CheckQuerierParams(0, n, true, 0, 0, 0, hor, marg); err != nil {
		t.Errorf("legal perpetual phi-role params rejected: %v", err)
	}
	bad := []struct {
		name string
		err  error
	}{
		{"S scope under", CheckSuspectorParams(0, n, false, 0, 0, 0, hor, marg)},
		{"S scope over", CheckSuspectorParams(n+1, n, false, 0, 0, 0, hor, marg)},
		{"perpetual S with stab", CheckSuspectorParams(2, n, true, 500, 0, 0, hor, marg)},
		{"S no suffix", CheckSuspectorParams(2, n, false, hor-marg+1, 0, 0, hor, marg)},
		{"phi scope under", CheckQuerierParams(-1, n, false, 0, 0, 0, hor, marg)},
		{"phi scope over", CheckQuerierParams(n+1, n, false, 0, 0, 0, hor, marg)},
		{"perpetual phi with stab", CheckQuerierParams(1, n, true, 500, 0, 0, hor, marg)},
		{"perpetual phi with anarchy", CheckQuerierParams(1, n, true, 0, 400, 0, hor, marg)},
		{"phi rate over", CheckQuerierParams(1, n, false, 0, 1_001, 0, hor, marg)},
	}
	for _, b := range bad {
		if b.err == nil {
			t.Errorf("%s accepted", b.name)
		}
	}
}

// TestScriptedEqualAtStable: with sort.SliceStable, equal-At steps keep
// their authored order and the later-listed one is the step in effect.
func TestScriptedEqualAtStable(t *testing.T) {
	cfg := sim.Config{N: 3, T: 1, Seed: 7, MaxSteps: 2_000, GST: 0}
	sys := sim.MustNew(cfg)
	l := NewScriptedLeader(sys, []LeaderStep{
		{At: 0, Common: ids.NewSet(3)},
		{At: 500, Common: ids.NewSet(1)},
		{At: 500, Common: ids.NewSet(2)}, // same tick: this one wins
	})
	s := NewScriptedSuspector(sys, []SuspectStep{
		{At: 0, Common: ids.NewSet(3)},
		{At: 500, Common: ids.NewSet(1)},
		{At: 500, Common: ids.NewSet(2)},
	})
	sys.OnTick(func(now sim.Time) {
		if now != 600 {
			return
		}
		if got := l.Trusted(1); !got.Equal(ids.NewSet(2)) {
			t.Errorf("Trusted after equal-At steps = %s, want {2}", got)
		}
		if got := s.Suspected(1); !got.Equal(ids.NewSet(2)) {
			t.Errorf("Suspected after equal-At steps = %s, want {2}", got)
		}
	})
	sys.Run(nil)
}

// TestBoundedDraw: determinism, range, and no gross modulo skew.
func TestBoundedDraw(t *testing.T) {
	if boundedDraw(1, 42) != 0 || boundedDraw(0, 42) != 0 {
		t.Fatal("degenerate bounds must return 0")
	}
	if boundedDraw(200, 1, 2) != boundedDraw(200, 1, 2) {
		t.Fatal("boundedDraw is not deterministic")
	}
	const n, draws = 7, 70_000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := boundedDraw(n, 0xfeed, uint64(i))
		if v < 0 || v >= n {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	want := draws / n
	for v, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("residue %d drawn %d times, want ≈%d", v, c, want)
		}
	}
}
