package fd

import (
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
	"fdgrid/internal/trace"
)

// TraceLeader feeds changes of l.Trusted(p) into the system's decision
// trace, one event per (process, change), labeled src ("oracle",
// "emu", …). A no-op when the run is untraced or the trace level is
// below Decisions. Like the Watch* samplers it observes every alive
// process; unlike them it installs sparsely (OnAdvance), so it never
// forces the clock dense — a traced run schedules exactly the ticks an
// untraced one does, which is what keeps traced and untraced reports
// byte-identical. The cost is that time-driven churn between scheduled
// ticks is invisible; it is also unobservable by any process, so the
// decision trace loses nothing decision-relevant. Must be called
// before System.Run.
func TraceLeader(sys *sim.System, l Leader, src string) {
	traceSets(sys, trace.KindLeader, src, l.Trusted)
}

// TraceSuspector is TraceLeader for suspect-set outputs.
func TraceSuspector(sys *sim.System, s Suspector, src string) {
	traceSets(sys, trace.KindSuspect, src, s.Suspected)
}

// traceSets installs a change-compressed sparse sampler (the watchSets
// shape) that records into the trace recorder instead of a SetTrace.
func traceSets(sys *sim.System, kind trace.Kind, src string, read func(ids.ProcID) ids.Set) {
	rec := sys.Recorder()
	if !rec.On(trace.Decisions) {
		return
	}
	n := sys.Config().N
	last := make([]ids.Set, n+1)
	started := make([]bool, n+1)
	sys.OnAdvance(func(now sim.Time) {
		alive := ids.FullSet(n).Minus(sys.Pattern().CrashedSet(now))
		alive.ForEachIn(n, func(p ids.ProcID) bool {
			v := read(p)
			if !started[p] || !last[p].Equal(v) {
				started[p] = true
				last[p] = v
				rec.SetChange(kind, int64(now), int(p), src, v)
			}
			return true
		})
	})
}
