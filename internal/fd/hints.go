package fd

import (
	"fdgrid/internal/sim"
)

// ChangeHinted is an optional oracle extension: NextChange returns the
// earliest future tick at which the oracle's outputs may differ from
// their value at now (sim.Never if they are settled). Ground-truth
// oracles change at epoch boundaries (anarchy drawings), at their
// stabilization time and at crash times (plus detection lag); emulated
// oracles change only when their host processes take steps, so they
// return sim.Never — a consumer woken by the triggering message re-reads
// them anyway.
//
// Hints feed the scheduler's wake conditions (sim.Env.StepUntil): a layer
// polling an oracle sleeps until the oracle can change instead of waking
// every tick. A conservative consumer treats a missing hint as "may
// change next tick".
type ChangeHinted interface {
	NextChange(now sim.Time) sim.Time
}

// NextChangeOf returns o's change hint, or now+1 when o does not provide
// one (the conservative per-tick wake).
func NextChangeOf(o any, now sim.Time) sim.Time {
	if h, ok := o.(ChangeHinted); ok {
		return h.NextChange(now)
	}
	return now + 1
}

// nextEpoch returns the first epoch boundary after now.
func nextEpoch(now, epoch sim.Time) sim.Time {
	if now < 0 {
		return 0
	}
	return (now/epoch + 1) * epoch
}

// nextCrashEvent returns the earliest tick after now at which a crash
// (shifted by lag) changes pattern-derived outputs: the first crash tick
// after now, or the first lag-shifted one — two O(log) window lookups on
// the pattern's precomputed crash times instead of a process scan.
func nextCrashEvent(pat *sim.Pattern, now, lag sim.Time) sim.Time {
	next := pat.NextCrashAfter(now)
	if ct := pat.NextCrashAfter(now - lag); ct != sim.Never && ct+lag > now && ct+lag < next {
		next = ct + lag
	}
	return next
}

// NextChange implements ChangeHinted: a suspector's output can change at
// anarchy epoch boundaries (before stabilization, or forever when
// hostile), at the stabilization time, and when a crash (or its detection
// after the configured lag) occurs.
func (s *Suspect) NextChange(now sim.Time) sim.Time {
	stab := s.opt.stab(s.sys)
	next := nextCrashEvent(s.sys.Pattern(), now, s.opt.lag)
	if now < stab {
		// Outputs flip at stab when accuracy kicks in there (eventual
		// class) or when a non-hostile oracle's anarchy dies there —
		// i.e. always, except for a hostile perpetual oracle, whose
		// pre- and post-stab behaviour is identical.
		if (!s.perpetual || !s.opt.hostile) && stab < next {
			next = stab
		}
		if b := nextEpoch(now, s.opt.epoch); b < next {
			next = b
		}
	} else if s.opt.hostile {
		if b := nextEpoch(now, s.opt.epoch); b < next {
			next = b
		}
	}
	return next
}

// NextChange implements ChangeHinted: query answers can change at anarchy
// epoch boundaries before a ◇φ's stabilization, at the stabilization time
// itself, and when a crash completes a queried region (after lag).
func (f *Phi) NextChange(now sim.Time) sim.Time {
	stab := f.opt.stab(f.sys)
	next := nextCrashEvent(f.sys.Pattern(), now, f.opt.lag)
	if !f.perpetual && now < stab {
		if stab < next {
			next = stab
		}
		if b := nextEpoch(now, f.opt.epoch); b < next {
			next = b
		}
	}
	return next
}

// NextChange implements ChangeHinted: trusted sets can change at anarchy
// epoch boundaries before stabilization, at the stabilization time, and
// at crash times (a crashed reader's output becomes empty).
func (w *Omega) NextChange(now sim.Time) sim.Time {
	stab := w.opt.stab(w.sys)
	next := nextCrashEvent(w.sys.Pattern(), now, 0)
	if now < stab {
		if stab < next {
			next = stab
		}
		if b := nextEpoch(now, w.opt.epoch); b < next {
			next = b
		}
	}
	return next
}

// NextChange implements ChangeHinted for scripted leaders: the next
// scripted step boundary.
func (s *ScriptedLeader) NextChange(now sim.Time) sim.Time {
	if i := leaderStepAt(s.steps, now) + 1; i < len(s.steps) {
		return s.steps[i].At
	}
	return sim.Never
}

// NextChange implements ChangeHinted for scripted suspectors: the next
// scripted step boundary, or the next crash (a crashed reader's output
// becomes empty regardless of the script).
func (s *ScriptedSuspector) NextChange(now sim.Time) sim.Time {
	next := nextCrashEvent(s.sys.Pattern(), now, 0)
	if i := suspectStepAt(s.steps, now) + 1; i < len(s.steps) && s.steps[i].At < next {
		next = s.steps[i].At
	}
	return next
}
