package fd

import (
	"fmt"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// CheckOmega verifies the Ω_z property on a recorded trace: there is a
// time after which all correct processes output the same set, of size at
// most z, containing at least one correct process — and that the
// stabilized suffix lasted at least minStable ticks (so "eventually" is
// observed with margin, not just at the last sample).
func (tr *SetTrace) CheckOmega(pat *sim.Pattern, z int, minStable sim.Time) error {
	correct := pat.Correct()
	if correct.IsEmpty() {
		return fmt.Errorf("fd: pattern has no correct process")
	}
	var common ids.Set
	first := true
	var stabilizedAt sim.Time
	var err error
	correct.ForEach(func(p ids.ProcID) bool {
		v, ok := tr.FinalValue(p)
		if !ok {
			err = fmt.Errorf("fd: Ω check: process %v was never sampled", p)
			return false
		}
		if first {
			common, first = v, false
		} else if !v.Equal(common) {
			err = fmt.Errorf("fd: Ω check: final trusted sets differ: %v has %s, earlier process has %s", p, v, common)
			return false
		}
		if lc := tr.LastChange(p); lc > stabilizedAt {
			stabilizedAt = lc
		}
		return true
	})
	if err != nil {
		return err
	}
	if common.Size() > z {
		return fmt.Errorf("fd: Ω check: trusted set %s has size %d > z=%d", common, common.Size(), z)
	}
	if common.IsEmpty() {
		return fmt.Errorf("fd: Ω check: trusted set is empty")
	}
	if !common.Intersects(correct) {
		return fmt.Errorf("fd: Ω check: trusted set %s contains no correct process (correct=%s)", common, correct)
	}
	if got := tr.Horizon() - stabilizedAt; got < minStable {
		return fmt.Errorf("fd: Ω check: stable suffix only %d ticks (< %d): not confidently stabilized", got, minStable)
	}
	return nil
}

// CheckSuspector verifies the S_x (perpetual=true) or ◇S_x
// (perpetual=false) properties on a recorded trace:
//
//   - Strong completeness: eventually every faulty process is permanently
//     suspected by every correct process; "eventually" is checked with a
//     stable suffix of at least minStable ticks.
//   - Limited-scope weak accuracy: there is a correct process ℓ and a set
//     Q ∋ ℓ with |Q| ≥ x whose members never suspect ℓ — over the whole
//     trace for S_x, over a suffix of at least minStable ticks for ◇S_x.
//     Faulty processes qualify for Q once crashed (a crashed process
//     suspects nobody); for the perpetual class they must also not have
//     suspected ℓ before crashing.
func (tr *SetTrace) CheckSuspector(pat *sim.Pattern, x int, perpetual bool, minStable sim.Time) error {
	correct := pat.Correct()
	faulty := pat.Faulty()
	horizon := tr.Horizon()

	// Completeness.
	lastIncomplete := tr.lastViolation(correct, func(_ ids.ProcID, v ids.Set) bool {
		return faulty.SubsetOf(v)
	})
	if horizon-lastIncomplete < minStable {
		return fmt.Errorf("fd: S check: completeness not stable: last sample missing a faulty process ends at %d (horizon %d)", lastIncomplete, horizon)
	}

	// Accuracy: search over candidate leaders.
	var best string
	okAccuracy := false
	correct.ForEach(func(l ids.ProcID) bool {
		q := faulty // crashed processes suspect nobody
		if perpetual {
			q = ids.EmptySet()
			faulty.ForEach(func(p ids.ProcID) bool {
				if !tr.everContained(p, l) {
					q = q.Add(p)
				}
				return true
			})
		}
		correct.ForEach(func(p ids.ProcID) bool {
			last := tr.lastTimeContaining(p, l)
			if perpetual {
				if last < 0 {
					q = q.Add(p)
				}
			} else if horizon-last >= minStable {
				q = q.Add(p)
			}
			return true
		})
		if q.Contains(l) && q.Size() >= x {
			okAccuracy = true
			return false
		}
		if q.Size() > 0 {
			best = fmt.Sprintf("best candidate ℓ=%v had Q=%s (size %d, need %d, ℓ∈Q=%v)", l, q, q.Size(), x, q.Contains(l))
		}
		return true
	})
	if !okAccuracy {
		return fmt.Errorf("fd: S check: no correct ℓ with a non-suspecting scope of size ≥ %d; %s", x, best)
	}
	return nil
}
