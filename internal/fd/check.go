package fd

import (
	"fmt"
	"sort"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// CheckOmega verifies the Ω_z property on a recorded trace: there is a
// time after which all correct processes output the same set, of size at
// most z, containing at least one correct process — and that the
// stabilized suffix lasted at least minStable ticks (so "eventually" is
// observed with margin, not just at the last sample).
func (tr *SetTrace) CheckOmega(pat *sim.Pattern, z int, minStable sim.Time) error {
	correct := pat.Correct()
	if correct.IsEmpty() {
		return fmt.Errorf("fd: pattern has no correct process")
	}
	var common ids.Set
	first := true
	var stabilizedAt sim.Time
	var err error
	correct.ForEach(func(p ids.ProcID) bool {
		v, ok := tr.FinalValue(p)
		if !ok {
			err = fmt.Errorf("fd: Ω check: process %v was never sampled", p)
			return false
		}
		if first {
			common, first = v, false
		} else if !v.Equal(common) {
			err = fmt.Errorf("fd: Ω check: final trusted sets differ: %v has %s, earlier process has %s", p, v, common)
			return false
		}
		if lc := tr.LastChange(p); lc > stabilizedAt {
			stabilizedAt = lc
		}
		return true
	})
	if err != nil {
		return err
	}
	if common.Size() > z {
		return fmt.Errorf("fd: Ω check: trusted set %s has size %d > z=%d", common, common.Size(), z)
	}
	if common.IsEmpty() {
		return fmt.Errorf("fd: Ω check: trusted set is empty")
	}
	if !common.Intersects(correct) {
		return fmt.Errorf("fd: Ω check: trusted set %s contains no correct process (correct=%s)", common, correct)
	}
	if got := tr.Horizon() - stabilizedAt; got < minStable {
		return fmt.Errorf("fd: Ω check: stable suffix only %d ticks (< %d): not confidently stabilized", got, minStable)
	}
	return nil
}

// CheckSuspector verifies the S_x (perpetual=true) or ◇S_x
// (perpetual=false) properties on a recorded trace:
//
//   - Strong completeness: eventually every faulty process is permanently
//     suspected by every correct process; "eventually" is checked with a
//     stable suffix of at least minStable ticks.
//   - Limited-scope weak accuracy: there is a correct process ℓ and a set
//     Q ∋ ℓ with |Q| ≥ x whose members never suspect ℓ — over the whole
//     trace for S_x, over a suffix of at least minStable ticks for ◇S_x.
//     Faulty processes qualify for Q once crashed (a crashed process
//     suspects nobody); for the perpetual class they must also not have
//     suspected ℓ before crashing.
func (tr *SetTrace) CheckSuspector(pat *sim.Pattern, x int, perpetual bool, minStable sim.Time) error {
	correct := pat.Correct()
	faulty := pat.Faulty()
	horizon := tr.Horizon()

	// Completeness.
	lastIncomplete := tr.lastViolation(correct, func(_ ids.ProcID, v ids.Set) bool {
		return faulty.SubsetOf(v)
	})
	if horizon-lastIncomplete < minStable {
		return fmt.Errorf("fd: S check: completeness not stable: last sample missing a faulty process ends at %d (horizon %d)", lastIncomplete, horizon)
	}

	// Accuracy: search over candidate leaders.
	var best string
	okAccuracy := false
	correct.ForEach(func(l ids.ProcID) bool {
		q := faulty // crashed processes suspect nobody
		if perpetual {
			q = ids.EmptySet()
			faulty.ForEach(func(p ids.ProcID) bool {
				if !tr.everContained(p, l) {
					q = q.Add(p)
				}
				return true
			})
		}
		correct.ForEach(func(p ids.ProcID) bool {
			last := tr.lastTimeContaining(p, l)
			if perpetual {
				if last < 0 {
					q = q.Add(p)
				}
			} else if horizon-last >= minStable {
				q = q.Add(p)
			}
			return true
		})
		if q.Contains(l) && q.Size() >= x {
			okAccuracy = true
			return false
		}
		if q.Size() > 0 {
			best = fmt.Sprintf("best candidate ℓ=%v had Q=%s (size %d, need %d, ℓ∈Q=%v)", l, q, q.Size(), x, q.Contains(l))
		}
		return true
	})
	if !okAccuracy {
		return fmt.Errorf("fd: S check: no correct ℓ with a non-suspecting scope of size ≥ %d; %s", x, best)
	}
	return nil
}

// --- Scripted-oracle conformance -------------------------------------
//
// A generated oracle script (see adversary.OracleGen) is pattern-blind:
// it fixes a full output timeline before knowing which processes the
// cell's adversary crashes. Whether the script stays inside its declared
// class therefore depends on the failure pattern, and the checkers below
// decide it statically — scripts are piecewise-constant in time, so
// evaluating them at every step boundary and crash time yields the exact
// trace the run would record, without running anything.

// scriptEventTimes returns the sorted, distinct times in [0, horizon] at
// which a script's evaluation can change: time 0, every step boundary,
// every crash time, and the horizon itself.
func scriptEventTimes(pat *sim.Pattern, horizon sim.Time, stepTimes []sim.Time) []sim.Time {
	times := append([]sim.Time{0, horizon}, stepTimes...)
	for p := 1; p <= pat.N(); p++ {
		if ct := pat.CrashTime(ids.ProcID(p)); ct != sim.Never {
			times = append(times, ct)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	out := times[:0]
	for _, t := range times {
		if t < 0 || t > horizon {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == t {
			continue
		}
		out = append(out, t)
	}
	return out
}

// scriptTrace evaluates a piecewise-constant per-process output over the
// event grid into the SetTrace the class checkers consume. Crashed
// processes are not sampled, mirroring the live watchers.
func scriptTrace(pat *sim.Pattern, horizon sim.Time, stepTimes []sim.Time,
	eval func(ids.ProcID, sim.Time) ids.Set) *SetTrace {
	n := pat.N()
	tr := &SetTrace{
		n:       n,
		byProc:  make([][]SetSample, n+1),
		last:    make([]ids.Set, n+1),
		started: make([]bool, n+1),
	}
	for _, now := range scriptEventTimes(pat, horizon, stepTimes) {
		alive := ids.FullSet(n).Minus(pat.CrashedSet(now))
		alive.ForEachIn(n, func(id ids.ProcID) bool {
			tr.observe(id, now, eval(id, now))
			return true
		})
		tr.tick(now)
	}
	return tr
}

// sortedOverrides returns a PerProc override map's keys in id order, so
// verdict strings stay deterministic.
func sortedOverrides(m map[ids.ProcID]ids.Set) []ids.ProcID {
	ps := make([]ids.ProcID, 0, len(m))
	for p := range m {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}

// CheckLeaderScript verifies that a scripted Ω timeline stays inside
// class Ω_z under the given failure pattern over [0, horizon]: every
// value the script can serve has size at most z (the perpetual range
// constraint of Ω_z), and the evaluated outputs satisfy the eventual
// leadership property with a stable suffix of at least minStable (via
// CheckOmega on the script's synthetic trace). Steps need not be sorted.
func CheckLeaderScript(steps []LeaderStep, pat *sim.Pattern, z int, horizon, minStable sim.Time) error {
	if z < 1 || z > pat.N() {
		return fmt.Errorf("fd: leader script: declared z=%d out of range 1..%d", z, pat.N())
	}
	if len(steps) == 0 {
		return fmt.Errorf("fd: leader script: empty timeline")
	}
	sorted := append([]LeaderStep(nil), steps...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	times := make([]sim.Time, 0, len(sorted))
	for _, s := range sorted {
		times = append(times, s.At)
		if s.Common.Size() > z {
			return fmt.Errorf("fd: leader script: step at %d serves %s (size %d > z=%d)", s.At, s.Common, s.Common.Size(), z)
		}
		for _, p := range sortedOverrides(s.PerProc) {
			if v := s.PerProc[p]; v.Size() > z {
				return fmt.Errorf("fd: leader script: step at %d serves %v the set %s (size %d > z=%d)", s.At, p, v, v.Size(), z)
			}
		}
	}
	tr := scriptTrace(pat, horizon, times, func(p ids.ProcID, now sim.Time) ids.Set {
		return leaderValueAt(sorted, p, now)
	})
	return tr.CheckOmega(pat, z, minStable)
}

// CheckSuspectScript verifies that a scripted suspector timeline stays
// inside class S_x (perpetual=true) or ◇S_x (perpetual=false) under the
// given failure pattern over [0, horizon], with a stable suffix of at
// least minStable — strong completeness and limited-scope weak accuracy,
// via CheckSuspector on the script's synthetic trace. A pattern-blind
// script conforms only for patterns whose faulty processes its settled
// suffix suspects. Steps need not be sorted.
func CheckSuspectScript(steps []SuspectStep, pat *sim.Pattern, x int, perpetual bool, horizon, minStable sim.Time) error {
	if x < 1 || x > pat.N() {
		return fmt.Errorf("fd: suspect script: declared x=%d out of range 1..%d", x, pat.N())
	}
	if len(steps) == 0 {
		return fmt.Errorf("fd: suspect script: empty timeline")
	}
	sorted := append([]SuspectStep(nil), steps...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	times := make([]sim.Time, 0, len(sorted))
	for _, s := range sorted {
		times = append(times, s.At)
	}
	tr := scriptTrace(pat, horizon, times, func(p ids.ProcID, now sim.Time) ids.Set {
		return suspectValueAt(sorted, p, now)
	})
	return tr.CheckSuspector(pat, x, perpetual, minStable)
}

// CheckOracleParams validates a generated ground-truth oracle
// configuration (a parameter script: stabilization time, anarchy rate in
// permille, epoch length): the oracle construction guarantees the class
// properties for any legal parameters, so conformance reduces to the
// parameters being legal and the stabilization landing early enough that
// the eventual property is observable within the horizon.
func CheckOracleParams(stabilizeAt sim.Time, ratePermille int, epoch, horizon, minStable sim.Time) error {
	if stabilizeAt < 0 {
		return fmt.Errorf("fd: oracle params: stabilization time %d is negative", stabilizeAt)
	}
	if stabilizeAt+minStable > horizon {
		return fmt.Errorf("fd: oracle params: stabilization at %d leaves no stable suffix (horizon %d, margin %d)", stabilizeAt, horizon, minStable)
	}
	if ratePermille < 0 || ratePermille > 1000 {
		return fmt.Errorf("fd: oracle params: anarchy rate %d‰ outside 0..1000", ratePermille)
	}
	if epoch < 0 {
		return fmt.Errorf("fd: oracle params: epoch %d is negative", epoch)
	}
	return nil
}

// CheckSuspectorParams validates a generated parameter script for the
// suspector role of an addition protocol against its declared class —
// S_x when perpetual, ◇S_x otherwise. The ground-truth construction
// keeps any legal parameterization inside the eventual class, so the
// role-specific constraints are the scope range and the perpetual
// flavor admitting no misbehaving prefix: a stabilization time declares
// exactly such a prefix, while an anarchy rate stays legal even for S_x
// because hostile out-of-scope suspicion is perpetually admitted (only
// the scope's members must spare the leader, which anarchy never
// touches).
func CheckSuspectorParams(x, n int, perpetual bool, stabilizeAt sim.Time, ratePermille int, epoch, horizon, minStable sim.Time) error {
	if x < 1 || x > n {
		return fmt.Errorf("fd: S-role params: declared x=%d out of range 1..%d", x, n)
	}
	if perpetual && stabilizeAt > 0 {
		return fmt.Errorf("fd: S-role params: stabilization at %d declares a misbehaving prefix, but S_%d is a perpetual class", stabilizeAt, x)
	}
	return CheckOracleParams(stabilizeAt, ratePermille, epoch, horizon, minStable)
}

// CheckQuerierParams is the querier-role counterpart: φ_y when
// perpetual, ◇φ_y otherwise. Unlike the suspector role, an anarchy rate
// is a violation for the perpetual flavor — a querier's anarchy makes
// it answer queries arbitrarily, which φ_y never may, not even outside
// any scope.
func CheckQuerierParams(y, n int, perpetual bool, stabilizeAt sim.Time, ratePermille int, epoch, horizon, minStable sim.Time) error {
	if y < 0 || y > n {
		return fmt.Errorf("fd: phi-role params: declared y=%d out of range 0..%d", y, n)
	}
	if perpetual && stabilizeAt > 0 {
		return fmt.Errorf("fd: phi-role params: stabilization at %d declares a misbehaving prefix, but phi_%d is a perpetual class", stabilizeAt, y)
	}
	if perpetual && ratePermille > 0 {
		return fmt.Errorf("fd: phi-role params: anarchy rate %d‰ makes queries arbitrary, which perpetual phi_%d never admits", ratePermille, y)
	}
	return CheckOracleParams(stabilizeAt, ratePermille, epoch, horizon, minStable)
}
