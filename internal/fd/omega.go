package fd

import (
	"fmt"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// Omega is a ground-truth oracle of class Ω_z (eventual multiple
// leadership): after stabilization every correct process reads the same
// trusted set of at most z processes, containing at least one correct
// process. Before stabilization each process reads an arbitrary
// pseudo-random set of at most z processes, changing every epoch.
//
// Hostile detail: the final set may contain up to z−1 crashed processes —
// the class allows it, and the k-set agreement algorithm must cope.
type Omega struct {
	sys   *sim.System
	z     int
	opt   options
	final ids.Set

	// anarchy memoizes the pure per-(reader, epoch) pre-stabilization
	// draw (run-token owned; outputs unchanged by the cache).
	anarchy []anarchyEpoch // index by reader id
}

var _ Leader = (*Omega)(nil)

// NewOmega returns an Ω_z oracle. It panics if z ∉ 1..n or a pinned
// trusted set is inconsistent; oracle parameters are test/bench inputs.
func NewOmega(sys *sim.System, z int, opts ...Option) *Omega {
	n := sys.Config().N
	if z < 1 || z > n {
		panic(fmt.Sprintf("fd: Ω_z with z=%d out of range 1..%d", z, n))
	}
	o := defaultOptions(sys)
	for _, fn := range opts {
		fn(&o)
	}
	w := &Omega{sys: sys, z: z, opt: o, anarchy: make([]anarchyEpoch, n+1)}
	w.final = drawTrusted(sys, z, o)
	return w
}

func drawTrusted(sys *sim.System, z int, o options) ids.Set {
	correct := sys.Pattern().Correct()
	if correct.IsEmpty() {
		panic("fd: no correct process in the failure pattern")
	}
	if !o.trustedHint.IsEmpty() {
		if o.trustedHint.Size() > z {
			panic(fmt.Sprintf("fd: pinned trusted set %v exceeds z=%d", o.trustedHint, z))
		}
		if !o.trustedHint.Intersects(correct) {
			panic(fmt.Sprintf("fd: pinned trusted set %v has no correct process", o.trustedHint))
		}
		return o.trustedHint
	}
	leader := o.leaderHint
	if leader == ids.None {
		members := correct.Members()
		leader = members[boundedDraw(len(members), uint64(sys.Config().Seed), o.leaderSalt, 0x61)]
	} else if sys.Pattern().CrashTime(leader) != sim.Never {
		panic(fmt.Sprintf("fd: pinned leader %v is faulty in this pattern", leader))
	}
	salt := mix(uint64(sys.Config().Seed), o.leaderSalt, 0x62)
	return pickDistinct(ids.NewSet(leader), ids.FullSet(sys.Config().N), z-1, salt)
}

// Z returns the size bound z.
func (w *Omega) Z() int { return w.z }

// Final returns the post-stabilization trusted set.
func (w *Omega) Final() ids.Set { return w.final }

// Trusted returns trusted_p at the current time.
func (w *Omega) Trusted(p ids.ProcID) ids.Set {
	now := w.sys.Now()
	pat := w.sys.Pattern()
	if pat.Crashed(p, now) {
		return ids.EmptySet()
	}
	if now >= w.opt.stab(w.sys) {
		return w.final
	}
	// Anarchy: an arbitrary set of at most z processes, per process and
	// per epoch — memoized, the draw is a pure function of both.
	epoch := epochOf(now, w.opt.epoch)
	if c := &w.anarchy[p]; c.ok && c.epoch == epoch {
		return c.set
	}
	n := w.sys.Config().N
	seed := uint64(w.sys.Config().Seed)
	size := boundedDraw(w.z+1, seed, 0x63, uint64(p), epoch, w.opt.leaderSalt)
	set := pickDistinct(ids.EmptySet(), ids.FullSet(n), size,
		mix(seed, 0x64, uint64(p), epoch, w.opt.leaderSalt))
	w.anarchy[p] = anarchyEpoch{epoch: epoch, ok: true, set: set}
	return set
}
