package register

import (
	"fmt"

	"fdgrid/internal/ids"
	"fdgrid/internal/node"
	"fdgrid/internal/sim"
)

// tagHBUpdate carries heartbeat register updates.
var tagHBUpdate = sim.Intern("reg.hb")

type hbUpdate struct {
	Name string
	Seq  int64
	Val  any
}

// Heartbeat is the message-passing translation of single-writer
// registers: Write broadcasts the new value with a sequence number;
// readers keep the freshest value received per (owner, register). Reads
// are local and may be stale, which Fig. 9 tolerates (its counters are
// monotone and its safety argument does not depend on read freshness).
// Works for any t.
//
// Heartbeat is a node.Layer: push it onto the process's stack so updates
// are absorbed.
type Heartbeat struct {
	env *sim.Env
	seq int64

	cache map[key]hbEntry
}

type hbEntry struct {
	seq int64
	val any
}

var (
	_ Store      = (*Heartbeat)(nil)
	_ node.Layer = (*Heartbeat)(nil)
)

// NewHeartbeat returns the heartbeat register layer for one process.
func NewHeartbeat(env *sim.Env) *Heartbeat {
	return &Heartbeat{env: env, cache: make(map[key]hbEntry)}
}

// Write implements Store: broadcast the update (own registers only by
// construction; the layer stores its own copy immediately so local
// read-own-write is never stale).
func (h *Heartbeat) Write(name string, v any) {
	h.seq++
	k := key{owner: h.env.ID(), name: name}
	h.cache[k] = hbEntry{seq: h.seq, val: v}
	h.env.Broadcast(tagHBUpdate, hbUpdate{Name: name, Seq: h.seq, Val: v})
}

// Read implements Store.
func (h *Heartbeat) Read(owner ids.ProcID, name string) any {
	return h.cache[key{owner: owner, name: name}].val
}

// Handle implements node.Layer: absorb updates, newest per register wins.
func (h *Heartbeat) Handle(m sim.Message) (sim.Message, bool) {
	if m.Tag != tagHBUpdate {
		return m, true
	}
	up, ok := m.Payload.(hbUpdate)
	if !ok {
		panic(fmt.Sprintf("register: heartbeat payload %T", m.Payload))
	}
	k := key{owner: m.From, name: up.Name}
	if h.cache[k].seq < up.Seq {
		h.cache[k] = hbEntry{seq: up.Seq, val: up.Val}
	}
	return sim.Message{}, false
}

// Poll implements node.Layer.
func (h *Heartbeat) Poll() {}

// NextWake implements node.WakeHinter: the substrate is purely
// message-driven.
func (h *Heartbeat) NextWake(sim.Time) sim.Time { return sim.Never }
