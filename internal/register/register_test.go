package register

import (
	"sync"
	"testing"

	"fdgrid/internal/ids"
	"fdgrid/internal/node"
	"fdgrid/internal/sim"
)

func TestMemoryStore(t *testing.T) {
	mem := NewMemory()
	v1, v2 := mem.View(1), mem.View(2)
	if got := v1.Read(2, "x"); got != nil {
		t.Errorf("unwritten register = %v", got)
	}
	v1.Write("x", int64(7))
	v2.Write("x", int64(9))
	if got := v2.Read(1, "x"); got != int64(7) {
		t.Errorf("Read(1,x) = %v", got)
	}
	if got := v1.Read(2, "x"); got != int64(9) {
		t.Errorf("Read(2,x) = %v", got)
	}
	v1.Write("x", ids.NewSet(3))
	if got := v2.Read(1, "x"); !got.(ids.Set).Equal(ids.NewSet(3)) {
		t.Errorf("overwrite = %v", got)
	}
}

// TestMemoryStoreInterleaved: a Memory is run-token state — processes
// access it from their own goroutines, serialized only by the token
// handoffs, with no lock in the substrate. Eight simulated processes
// interleave writes and reads tick by tick; the -race CI job is what
// makes this test meaningful.
func TestMemoryStoreInterleaved(t *testing.T) {
	const n, iters = 8, 1000
	mem := NewMemory()
	sys := sim.MustNew(sim.Config{N: n, T: 0, Seed: 1, MaxSteps: 100_000})
	done := 0 // token-owned, like the registers themselves
	sys.SpawnAll(func(env *sim.Env) {
		v := mem.View(env.ID())
		for i := int64(0); i < iters; i++ {
			v.Write("c", i)
			for q := 1; q <= n; q++ {
				v.Read(ids.ProcID(q), "c")
			}
			env.Step() // yield the token so the writes interleave
		}
		done++
	})
	rep := sys.Run(func() bool { return done == n })
	if !rep.StoppedEarly {
		t.Fatalf("run hit MaxSteps; %d/%d processes finished", done, n)
	}
	for p := 1; p <= n; p++ {
		if got := mem.View(1).Read(ids.ProcID(p), "c"); got != int64(iters-1) {
			t.Errorf("final counter of %d = %v", p, got)
		}
	}
}

// TestHeartbeatPropagates: values written by one process become readable
// at the others.
func TestHeartbeatPropagates(t *testing.T) {
	cfg := sim.Config{N: 3, T: 1, Seed: 2, MaxSteps: 50_000, Bandwidth: 3}
	sys := sim.MustNew(cfg)
	type result struct {
		val any
	}
	var mu sync.Mutex
	got := map[ids.ProcID]result{}
	sys.SpawnAll(func(env *sim.Env) {
		hb := NewHeartbeat(env)
		nd := node.New(env, hb)
		if env.ID() == 1 {
			hb.Write("x", int64(1))
			hb.Write("x", int64(42)) // newer overwrites
			if v := hb.Read(1, "x"); v != int64(42) {
				t.Errorf("own read = %v", v)
			}
			nd.RunForever()
		}
		nd.WaitUntil(func() bool { return hb.Read(1, "x") == int64(42) }, nil)
		mu.Lock()
		got[env.ID()] = result{val: hb.Read(1, "x")}
		mu.Unlock()
		nd.RunForever()
	})
	sys.Run(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 2
	})
	mu.Lock()
	defer mu.Unlock()
	for p, r := range got {
		if r.val != int64(42) {
			t.Errorf("process %v read %v", p, r.val)
		}
	}
}

// TestHeartbeatStaleOrderIgnored: an older sequence number never
// overwrites a newer value, whatever the delivery order.
func TestHeartbeatStaleOrderIgnored(t *testing.T) {
	cfg := sim.Config{N: 2, T: 0, Seed: 3, MaxSteps: 50_000}
	sys := sim.MustNew(cfg)
	var final any
	var mu sync.Mutex
	sys.Spawn(1, func(env *sim.Env) {
		hb := NewHeartbeat(env)
		nd := node.New(env, hb)
		for i := int64(1); i <= 20; i++ {
			hb.Write("x", i)
		}
		nd.RunForever()
	})
	sys.Spawn(2, func(env *sim.Env) {
		hb := NewHeartbeat(env)
		nd := node.New(env, hb)
		nd.WaitUntil(func() bool { return hb.Read(1, "x") == int64(20) }, nil)
		// All 20 updates were sent before we saw the last one; whatever
		// arrives late must not regress the cache.
		for i := 0; i < 50; i++ {
			nd.Step()
		}
		mu.Lock()
		final = hb.Read(1, "x")
		mu.Unlock()
		nd.RunForever()
	})
	sys.Run(func() bool { mu.Lock(); defer mu.Unlock(); return final != nil })
	mu.Lock()
	defer mu.Unlock()
	if final != int64(20) {
		t.Errorf("final = %v, want 20", final)
	}
}

// TestABDReadsLatestWrite: basic write→read across processes.
func TestABDReadsLatestWrite(t *testing.T) {
	cfg := sim.Config{N: 5, T: 2, Seed: 4, MaxSteps: 200_000, Bandwidth: 5}
	sys := sim.MustNew(cfg)
	var mu sync.Mutex
	reads := map[ids.ProcID]any{}
	sys.SpawnAll(func(env *sim.Env) {
		abd := NewABD(env)
		nd := node.New(env, abd)
		abd.Bind(nd)
		if env.ID() == 1 {
			abd.Write("reg", int64(5))
			abd.Write("reg", int64(6))
			mu.Lock()
			reads[1] = int64(6)
			mu.Unlock()
			nd.RunForever()
		}
		// Readers poll until the writer's value is visible.
		for {
			v := abd.Read(1, "reg")
			if v == int64(6) {
				mu.Lock()
				reads[env.ID()] = v
				mu.Unlock()
				nd.RunForever()
			}
			nd.Step()
		}
	})
	sys.Run(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(reads) == 5
	})
	mu.Lock()
	defer mu.Unlock()
	if len(reads) != 5 {
		t.Fatalf("only %d processes read the value", len(reads))
	}
}

// TestABDUnwrittenReadsNil.
func TestABDUnwrittenReadsNil(t *testing.T) {
	cfg := sim.Config{N: 3, T: 1, Seed: 5, MaxSteps: 100_000, Bandwidth: 3}
	sys := sim.MustNew(cfg)
	var mu sync.Mutex
	var done bool
	sys.SpawnAll(func(env *sim.Env) {
		abd := NewABD(env)
		nd := node.New(env, abd)
		abd.Bind(nd)
		if env.ID() == 2 {
			if v := abd.Read(3, "never"); v != nil {
				t.Errorf("unwritten read = %v", v)
			}
			mu.Lock()
			done = true
			mu.Unlock()
		}
		nd.RunForever()
	})
	sys.Run(func() bool { mu.Lock(); defer mu.Unlock(); return done })
	mu.Lock()
	defer mu.Unlock()
	if !done {
		t.Fatal("read never completed")
	}
}

// TestABDToleratesCrashMinority: operations complete despite t crashed
// replicas.
func TestABDToleratesCrashMinority(t *testing.T) {
	cfg := sim.Config{
		N: 5, T: 2, Seed: 6, MaxSteps: 300_000, Bandwidth: 5,
		Crashes: map[ids.ProcID]sim.Time{4: 0, 5: 0},
	}
	sys := sim.MustNew(cfg)
	var mu sync.Mutex
	var got any
	sys.SpawnAll(func(env *sim.Env) {
		abd := NewABD(env)
		nd := node.New(env, abd)
		abd.Bind(nd)
		switch env.ID() {
		case 1:
			abd.Write("r", int64(11))
		case 2:
			for {
				if v := abd.Read(1, "r"); v == int64(11) {
					mu.Lock()
					got = v
					mu.Unlock()
					break
				}
				nd.Step()
			}
		}
		nd.RunForever()
	})
	sys.Run(func() bool { mu.Lock(); defer mu.Unlock(); return got != nil })
	mu.Lock()
	defer mu.Unlock()
	if got != int64(11) {
		t.Fatalf("got %v", got)
	}
}

func TestABDRequiresMajority(t *testing.T) {
	sys := sim.MustNew(sim.Config{N: 4, T: 2, Seed: 1, MaxSteps: 100})
	defer func() {
		if recover() == nil {
			t.Error("NewABD with t ≥ n/2 did not panic")
		}
	}()
	NewABD(sys.Env(1))
}
