// Package register provides the single-writer multi-reader registers the
// paper's Appendix B algorithm (Fig. 9) is written against, with three
// substrates:
//
//   - Memory: the shared-memory model itself (atomic registers in one
//     address space);
//   - Heartbeat: the paper's remark that the algorithm "can be easily
//     translated into the message-passing model without adding any
//     requirement on t" — writers broadcast updates, readers use the
//     freshest value received (a regular register with eventual
//     propagation, which is all Fig. 9's proof needs);
//   - ABD: the classic majority-quorum atomic register emulation
//     (requires t < n/2), for runs that want atomic semantics over
//     messages.
//
// Each process interacts with its substrate through the Store interface:
// Write writes one of the calling process's own registers, Read reads any
// process's register.
package register

import (
	"fdgrid/internal/ids"
)

// Store is one process's handle on the register space. Register values
// must be immutable (ints, ids.Set, …): they are shared across processes
// without copying.
type Store interface {
	// Write updates this process's register name.
	Write(name string, v any)
	// Read returns owner's register name, or nil if never written.
	Read(owner ids.ProcID, name string) any
}

// key identifies a register: single-writer by construction.
type key struct {
	owner ids.ProcID
	name  string
}

// Memory is a shared-memory register space: the substrate of the paper's
// shared-memory model. Create one Memory per run and a view per process.
//
// Like every register substrate, a Memory is run-token state: processes
// read and write it from their own goroutines, but only while holding
// the run token, so the scheduler's channel handoffs serialize every
// access and no lock is involved (the -race CI job verifies this along
// with the rest of the ownership contract). The atomicity the paper's
// model asks of a register is exactly what token serialization gives.
type Memory struct {
	regs map[key]any
}

// NewMemory returns an empty shared register space.
func NewMemory() *Memory {
	return &Memory{regs: make(map[key]any)}
}

// View returns process p's Store handle.
func (m *Memory) View(p ids.ProcID) Store {
	return &memView{mem: m, me: p}
}

func (m *Memory) write(k key, v any) {
	m.regs[k] = v
}

func (m *Memory) read(k key) any {
	return m.regs[k]
}

type memView struct {
	mem *Memory
	me  ids.ProcID
}

var _ Store = (*memView)(nil)

func (v *memView) Write(name string, val any) {
	v.mem.write(key{owner: v.me, name: name}, val)
}

func (v *memView) Read(owner ids.ProcID, name string) any {
	return v.mem.read(key{owner: owner, name: name})
}
