package register

import (
	"fmt"

	"fdgrid/internal/ids"
	"fdgrid/internal/node"
	"fdgrid/internal/sim"
)

// Message tags of the ABD register emulation, interned once at package
// load.
var (
	tagABDWrite     = sim.Intern("abd.w")
	tagABDWriteAck  = sim.Intern("abd.wack")
	tagABDRead      = sim.Intern("abd.r")
	tagABDReadVal   = sim.Intern("abd.rval")
	tagABDWriteBack = sim.Intern("abd.wb")
	tagABDWBAck     = sim.Intern("abd.wback")
)

type abdWrite struct {
	Op   int64
	Name string
	TS   int64
	Val  any
}

type abdAck struct {
	Op int64
}

type abdRead struct {
	Op    int64
	Owner ids.ProcID
	Name  string
}

type abdReadVal struct {
	Op  int64
	TS  int64
	Val any
}

type abdWriteBack struct {
	Op    int64
	Owner ids.ProcID
	Name  string
	TS    int64
	Val   any
}

type tsVal struct {
	ts  int64
	val any
}

// ABD emulates single-writer multi-reader *atomic* registers over
// messages using majority quorums (Attiya, Bar-Noy, Dolev). Requires
// t < n/2. Write and Read block on quorum round-trips, pumping the
// process's event loop; the replica server side runs as a node.Layer, so
// a process keeps serving others even while blocked in its own
// operation.
//
// Usage: abd := NewABD(env); nd := node.New(env, abd, …); abd.Bind(nd).
type ABD struct {
	env *sim.Env
	nd  *node.Node

	replicas map[key]tsVal
	wts      int64
	nextOp   int64
	// acks collects the responders per operation as an identity set —
	// each replica acks an op at most once, so the quorum test is a
	// word-level popcount (Set.CountIn) instead of a tally.
	acks    map[int64]ids.Set
	replies map[int64][]tsVal
}

var (
	_ Store      = (*ABD)(nil)
	_ node.Layer = (*ABD)(nil)
)

// NewABD returns the ABD layer for one process. It panics unless t < n/2.
func NewABD(env *sim.Env) *ABD {
	if 2*env.T() >= env.N() {
		panic(fmt.Sprintf("register: ABD requires t < n/2, got n=%d t=%d", env.N(), env.T()))
	}
	return &ABD{
		env:      env,
		replicas: make(map[key]tsVal),
		acks:     make(map[int64]ids.Set),
		replies:  make(map[int64][]tsVal),
	}
}

// Bind attaches the node whose event loop blocking operations pump. Must
// be called once, before the first Write or Read.
func (a *ABD) Bind(nd *node.Node) { a.nd = nd }

func (a *ABD) quorum() int { return a.env.N()/2 + 1 }

// Write implements Store: it completes once a majority acknowledged.
func (a *ABD) Write(name string, v any) {
	a.wts++
	a.nextOp++
	op := a.nextOp
	a.env.Broadcast(tagABDWrite, abdWrite{Op: op, Name: name, TS: a.wts, Val: v})
	a.nd.WaitOn(func() bool { return a.acks[op].CountIn(a.env.N()) >= a.quorum() }, nil)
	delete(a.acks, op)
}

// Read implements Store: a quorum read phase picks the freshest replica,
// then a write-back phase secures atomicity before returning.
func (a *ABD) Read(owner ids.ProcID, name string) any {
	a.nextOp++
	op := a.nextOp
	a.env.Broadcast(tagABDRead, abdRead{Op: op, Owner: owner, Name: name})
	a.nd.WaitOn(func() bool { return len(a.replies[op]) >= a.quorum() }, nil)
	best := tsVal{}
	for _, r := range a.replies[op] {
		if r.ts > best.ts {
			best = r
		}
	}
	delete(a.replies, op)
	if best.ts == 0 {
		return nil // never written
	}

	a.nextOp++
	wb := a.nextOp
	a.env.Broadcast(tagABDWriteBack, abdWriteBack{Op: wb, Owner: owner, Name: name, TS: best.ts, Val: best.val})
	a.nd.WaitOn(func() bool { return a.acks[wb].CountIn(a.env.N()) >= a.quorum() }, nil)
	delete(a.acks, wb)
	return best.val
}

// Handle implements node.Layer: the replica/server side.
func (a *ABD) Handle(m sim.Message) (sim.Message, bool) {
	switch m.Tag {
	case tagABDWrite:
		w, ok := m.Payload.(abdWrite)
		if !ok {
			panic(fmt.Sprintf("register: abd write payload %T", m.Payload))
		}
		a.apply(key{owner: m.From, name: w.Name}, w.TS, w.Val)
		a.env.Send(m.From, tagABDWriteAck, abdAck{Op: w.Op})
	case tagABDWriteAck:
		ack, ok := m.Payload.(abdAck)
		if !ok {
			panic(fmt.Sprintf("register: abd ack payload %T", m.Payload))
		}
		a.acks[ack.Op] = a.acks[ack.Op].Add(m.From)
	case tagABDRead:
		r, ok := m.Payload.(abdRead)
		if !ok {
			panic(fmt.Sprintf("register: abd read payload %T", m.Payload))
		}
		rep := a.replicas[key{owner: r.Owner, name: r.Name}]
		a.env.Send(m.From, tagABDReadVal, abdReadVal{Op: r.Op, TS: rep.ts, Val: rep.val})
	case tagABDReadVal:
		rv, ok := m.Payload.(abdReadVal)
		if !ok {
			panic(fmt.Sprintf("register: abd readval payload %T", m.Payload))
		}
		a.replies[rv.Op] = append(a.replies[rv.Op], tsVal{ts: rv.TS, val: rv.Val})
	case tagABDWriteBack:
		wb, ok := m.Payload.(abdWriteBack)
		if !ok {
			panic(fmt.Sprintf("register: abd writeback payload %T", m.Payload))
		}
		a.apply(key{owner: wb.Owner, name: wb.Name}, wb.TS, wb.Val)
		a.env.Send(m.From, tagABDWBAck, abdAck{Op: wb.Op})
	case tagABDWBAck:
		ack, ok := m.Payload.(abdAck)
		if !ok {
			panic(fmt.Sprintf("register: abd wback payload %T", m.Payload))
		}
		a.acks[ack.Op] = a.acks[ack.Op].Add(m.From)
	default:
		return m, true
	}
	return sim.Message{}, false
}

func (a *ABD) apply(k key, ts int64, val any) {
	if a.replicas[k].ts < ts {
		a.replicas[k] = tsVal{ts: ts, val: val}
	}
}

// Poll implements node.Layer.
func (a *ABD) Poll() {}

// NextWake implements node.WakeHinter: the substrate is purely
// message-driven.
func (a *ABD) NextWake(sim.Time) sim.Time { return sim.Never }
