package dispatch

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"fdgrid/internal/sim"
	"fdgrid/internal/sweep"
)

// TestMain doubles as the subprocess worker entry point: when
// DISPATCH_TEST_WORKER=1 the test binary re-execs into ServeWorker on
// stdio instead of running tests, which is how the subprocess tests get
// a real worker process without building anything.
func TestMain(m *testing.M) {
	if os.Getenv("DISPATCH_TEST_WORKER") == "1" {
		var fault Fault
		if spec := os.Getenv("DISPATCH_TEST_FAULT"); spec != "" {
			f, err := ParseFault(spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fault = f
		}
		err := ServeWorker(Stdio{}, WorkerOptions{
			Name:      os.Getenv("DISPATCH_TEST_NAME"),
			Pool:      2,
			Heartbeat: 50 * time.Millisecond,
			Fault:     fault,
		})
		if err != nil && err != errWorkerCrash {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testSuite is a small two-matrix suite: quick cells, enough of them
// (12) that faults keyed on cell counts fire mid-run.
func testSuite() []sweep.Matrix {
	base := sweep.Matrix{
		Protocol: "kset-omega",
		Seeds:    []int64{0, 1, 2},
		Sizes:    []sweep.Size{{N: 5, T: 2}},
		Combos:   []sweep.Combo{{Z: 2}, {Z: 3}},
		GST:      400,
		MaxSteps: 500_000,
	}
	a, b := base, base
	a.Name, b.Name = "dispatch-a", "dispatch-b"
	b.Patterns = []sweep.CrashPattern{{Name: "late-crash", Crashes: []sweep.CrashSpec{{Proc: 0, At: 450}}}}
	return []sweep.Matrix{a, b}
}

// baselineSuite runs the suite unsharded in-process — the byte-identity
// reference every dispatched run is diffed against.
func baselineSuite(t *testing.T, matrices []sweep.Matrix) []byte {
	t.Helper()
	var reports []*sweep.Report
	for _, m := range matrices {
		r, err := sweep.Run(m, sweep.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, r)
	}
	blob, err := sweep.SuiteJSON(reports)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// pipeFleet starts n in-process workers over net.Pipe, arming the given
// per-worker faults.
func pipeFleet(n int, faults map[int]Fault) []Transport {
	fleet := make([]Transport, n)
	for i := 0; i < n; i++ {
		host, worker := net.Pipe()
		opt := WorkerOptions{
			Name:      fmt.Sprintf("pipe%d", i),
			Pool:      2,
			Heartbeat: 40 * time.Millisecond,
			Fault:     faults[i],
		}
		go ServeWorker(worker, opt)
		w := worker
		fleet[i] = Transport{Name: opt.Name, RW: host, Kill: func() { w.Close() }}
	}
	return fleet
}

func testConfig(matrices []sweep.Matrix) Config {
	return Config{
		Matrices:       matrices,
		UnitsPerMatrix: 3,
		MaxRetries:     3,
		SuspectAfter:   150 * time.Millisecond,
		SuspectMax:     600 * time.Millisecond,
		Speculate:      true,
		LocalFallback:  true,
		LocalPool:      2,
	}
}

// TestDispatchFaultMatrix is the tentpole's acceptance test: under
// every fault schedule in the injection matrix, the dispatched suite's
// merged reports are byte-identical to the unsharded run.
func TestDispatchFaultMatrix(t *testing.T) {
	matrices := testSuite()
	want := baselineSuite(t, matrices)

	cases := []struct {
		name    string
		workers int
		faults  map[int]Fault
		check   func(t *testing.T, s *Stats)
	}{
		{name: "clean", workers: 3, check: func(t *testing.T, s *Stats) {
			if s.WorkersLost != 0 || s.Retries != 0 || s.LocalUnits != 0 {
				t.Errorf("clean run reported churn: %+v", s)
			}
			if s.Cells != 12 || s.Units != 6 {
				t.Errorf("clean run: %d cells in %d units, want 12 in 6", s.Cells, s.Units)
			}
		}},
		{name: "crash", workers: 3, faults: map[int]Fault{0: {Kind: FaultCrash, After: 2}},
			check: func(t *testing.T, s *Stats) {
				if s.WorkersLost == 0 {
					t.Error("crashed worker not counted as lost")
				}
			}},
		{name: "hang", workers: 3, faults: map[int]Fault{0: {Kind: FaultHang, After: 1}}},
		{name: "corrupt-frame", workers: 3, faults: map[int]Fault{0: {Kind: FaultCorrupt, After: 2}},
			check: func(t *testing.T, s *Stats) {
				if s.WorkersLost == 0 {
					t.Error("corrupting worker not dismissed")
				}
			}},
		{name: "duplicate-delivery", workers: 3, faults: map[int]Fault{1: {Kind: FaultDup, After: 1}},
			check: func(t *testing.T, s *Stats) {
				if s.Duplicates == 0 {
					t.Error("duplicate delivery not observed")
				}
			}},
		{name: "straggler", workers: 3, faults: map[int]Fault{0: {Kind: FaultSlow, Delay: 400 * time.Millisecond}}},
		{name: "two-faults", workers: 3, faults: map[int]Fault{
			0: {Kind: FaultCrash, After: 1},
			1: {Kind: FaultDup, After: 0},
		}},
		{name: "total-fleet-loss", workers: 3, faults: map[int]Fault{
			0: {Kind: FaultCrash, After: 0},
			1: {Kind: FaultCrash, After: 0},
			2: {Kind: FaultCrash, After: 0},
		}, check: func(t *testing.T, s *Stats) {
			if s.WorkersLost != 3 {
				t.Errorf("lost %d workers, want 3", s.WorkersLost)
			}
			if s.LocalUnits == 0 {
				t.Error("no units fell back to local execution")
			}
		}},
		{name: "zero-workers", workers: 0, check: func(t *testing.T, s *Stats) {
			if s.LocalUnits != s.Units {
				t.Errorf("%d of %d units ran locally, want all", s.LocalUnits, s.Units)
			}
		}},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fleet := pipeFleet(c.workers, c.faults)
			cfg := testConfig(matrices)
			if testing.Verbose() {
				cfg.Logf = t.Logf
			}
			reports, stats, err := Run(cfg, fleet)
			if err != nil {
				t.Fatalf("dispatch failed: %v (stats %+v)", err, stats)
			}
			got, err := sweep.SuiteJSON(reports)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("dispatched suite differs from unsharded run (stats %+v)", stats)
			}
			if c.check != nil {
				c.check(t, stats)
			}
		})
	}
}

// TestDispatchNoFallbackFails: with the fleet gone and local fallback
// disabled, the run fails loudly instead of silently shrinking.
func TestDispatchNoFallbackFails(t *testing.T) {
	matrices := testSuite()
	fleet := pipeFleet(2, map[int]Fault{
		0: {Kind: FaultCrash, After: 0},
		1: {Kind: FaultCrash, After: 0},
	})
	cfg := testConfig(matrices)
	cfg.LocalFallback = false
	_, _, err := Run(cfg, fleet)
	if err == nil {
		t.Fatal("fleet loss without fallback did not fail the run")
	}
	if !strings.Contains(err.Error(), "workers lost") && !strings.Contains(err.Error(), "local fallback") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// TestDispatchRejectsBadSuites: duplicate matrix names and matrices
// with explicit holds (lossy over JSON) are rejected up front.
func TestDispatchRejectsBadSuites(t *testing.T) {
	m := testSuite()[0]
	if _, _, err := Run(Config{Matrices: []sweep.Matrix{m, m}}, nil); err == nil || !strings.Contains(err.Error(), "duplicate matrix name") {
		t.Errorf("duplicate names: err=%v", err)
	}

	held := m
	held.Name = "held"
	held.Patterns = []sweep.CrashPattern{{Name: "h", Holds: make([]sim.Hold, 1)}}
	if _, _, err := Run(Config{Matrices: []sweep.Matrix{held}}, nil); err == nil || !strings.Contains(err.Error(), "holds") {
		t.Errorf("explicit holds: err=%v", err)
	}

	bad := m
	bad.Name = "bad"
	bad.Seeds = nil // Cells() rejects seedless matrices
	if _, _, err := Run(Config{Matrices: []sweep.Matrix{bad}}, nil); err == nil {
		t.Error("invalid matrix accepted")
	}
}

// TestDispatchSubprocessWorkers runs the suite through real stdio
// subprocess workers (this test binary re-exec'd via TestMain), one of
// them crashing mid-run — the cmd/sweepd topology in miniature.
func TestDispatchSubprocessWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess fleet in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	matrices := testSuite()
	want := baselineSuite(t, matrices)

	var fleet []Transport
	for i := 0; i < 3; i++ {
		cmd := exec.Command(exe)
		cmd.Stderr = os.Stderr
		cmd.Env = append(os.Environ(),
			"DISPATCH_TEST_WORKER=1",
			fmt.Sprintf("DISPATCH_TEST_NAME=sub%d", i),
		)
		if i == 0 {
			cmd.Env = append(cmd.Env, "DISPATCH_TEST_FAULT=crash@3")
		}
		tr, err := SpawnWorker(fmt.Sprintf("sub%d", i), cmd)
		if err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, tr)
	}

	cfg := testConfig(matrices)
	if testing.Verbose() {
		cfg.Logf = t.Logf
	}
	reports, stats, err := Run(cfg, fleet)
	if err != nil {
		t.Fatalf("dispatch failed: %v (stats %+v)", err, stats)
	}
	got, err := sweep.SuiteJSON(reports)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("subprocess-dispatched suite differs from unsharded run (stats %+v)", stats)
	}
	if stats.WorkersLost == 0 {
		t.Errorf("injected subprocess crash not observed: %+v", stats)
	}
}
