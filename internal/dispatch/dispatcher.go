package dispatch

import (
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"time"

	"fdgrid/internal/sweep"
)

// Transport is one worker connection the dispatcher drives: a framed
// read/write stream plus a Kill that tears down the underlying process
// or socket (unblocking any pending I/O). Name labels the worker in
// logs and stats.
type Transport struct {
	Name string
	RW   io.ReadWriteCloser
	Kill func()
}

// SpawnWorker starts cmd as a stdio worker subprocess: the returned
// Transport frames over the child's stdin/stdout, and Kill terminates
// the process. The caller configures cmd's argv to run the worker loop
// (e.g. sweepd -worker).
func SpawnWorker(name string, cmd *exec.Cmd) (Transport, error) {
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return Transport{}, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return Transport{}, err
	}
	if err := cmd.Start(); err != nil {
		return Transport{}, err
	}
	rw := &pipeRW{Reader: stdout, Writer: stdin}
	kill := func() {
		stdin.Close()
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		// Reap: Kill is only called once, on dismissal or shutdown.
		go cmd.Wait()
	}
	return Transport{Name: name, RW: rw, Kill: kill}, nil
}

// pipeRW glues a subprocess's stdout (read) and stdin (write) into one
// ReadWriteCloser.
type pipeRW struct {
	io.Reader
	io.Writer
}

func (p *pipeRW) Close() error {
	if c, ok := p.Writer.(io.Closer); ok {
		c.Close()
	}
	if c, ok := p.Reader.(io.Closer); ok {
		c.Close()
	}
	return nil
}

// Config tunes a dispatcher run.
type Config struct {
	// Matrices is the suite, in report order. Matrix names must be
	// unique (unit IDs embed them) and no matrix may carry explicit
	// pattern Holds: process sets do not survive JSON (they serialize
	// as {}), so such a matrix cannot be shipped to a worker faithfully
	// and is rejected up front rather than silently run wrong.
	Matrices []sweep.Matrix
	// UnitsPerMatrix is how many shard units each matrix splits into
	// (0: 4), capped at the matrix's cell count.
	UnitsPerMatrix int
	// MaxRetries bounds how many times a failed unit is re-dispatched
	// before falling back to local execution (or failing the run).
	// 0 means 2.
	MaxRetries int
	// SuspectAfter is the suspectors' base timeout (0: 1s): how long a
	// worker may go without a heartbeat before the liveness suspector
	// flags it, and without a cell result (while holding a unit) before
	// the progress suspector flags it as a straggler.
	SuspectAfter time.Duration
	// SuspectMax is how long a worker may stay silent before suspicion
	// hardens into dismissal — the worker is killed and its unit
	// re-shared across the survivors (0: 10× SuspectAfter).
	SuspectMax time.Duration
	// Speculate enables straggler re-dispatch: a unit whose worker
	// stops making progress is additionally queued for a trusted peer;
	// the first complete result wins and duplicates are discarded.
	Speculate bool
	// LocalFallback makes the dispatcher run a unit in-process when its
	// retries are exhausted or the fleet is gone, degrading gracefully
	// down to a single local worker instead of failing the run.
	LocalFallback bool
	// LocalPool is the sweep pool size for fallback units (0:
	// GOMAXPROCS).
	LocalPool int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c Config) unitsPerMatrix() int {
	if c.UnitsPerMatrix > 0 {
		return c.UnitsPerMatrix
	}
	return 4
}

func (c Config) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 2
}

func (c Config) suspectAfter() time.Duration {
	if c.SuspectAfter > 0 {
		return c.SuspectAfter
	}
	return time.Second
}

func (c Config) suspectMax() time.Duration {
	if c.SuspectMax > 0 {
		return c.SuspectMax
	}
	return 10 * c.suspectAfter()
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Stats is the dispatcher's operational summary — deliberately a
// separate artifact from the canonical reports, which must stay
// byte-identical to the unsharded run and therefore never carry
// scheduling detail.
type Stats struct {
	Units         int            `json:"units"`
	Cells         int            `json:"cells"`
	Retries       int            `json:"retries"`
	Speculated    int            `json:"speculated"`
	Duplicates    int            `json:"duplicate_results"`
	WorkersLost   int            `json:"workers_lost"`
	LocalUnits    int            `json:"local_units"`
	CellsByWorker map[string]int `json:"cells_by_worker"`
}

// unitState tracks one unit through dispatch, retry, speculation and
// completion.
type unitState struct {
	unit     Unit
	matrix   int            // index into Config.Matrices
	owned    []int          // cell indices the unit's shard owns
	got      map[int][]byte // cell index → canonical cell JSON (first delivery)
	cells    map[int]sweep.CellResult
	attempts int  // dispatch attempts (speculation not counted)
	done     bool // report assembled
	local    bool // deferred to local fallback
	report   *sweep.Report
}

func (u *unitState) complete() bool { return len(u.got) == len(u.owned) }

// workerState tracks one transport in the fleet.
type workerState struct {
	t         Transport
	name      string // unique dispatcher-side name
	outbound  chan *Msg
	alive     bool
	current   string // unit ID in flight ("" when idle)
	specFired bool   // speculation already triggered for the current assignment
}

// event is what reader and writer goroutines post to the loop.
type event struct {
	wi  int
	msg *Msg
	err error
}

// Run dispatches cfg.Matrices across the worker fleet and returns the
// merged per-matrix reports (suite order, byte-identical to a local
// unsharded run), the scheduling stats, and the first fatal error.
func Run(cfg Config, workers []Transport) ([]*sweep.Report, *Stats, error) {
	units, err := buildUnits(cfg)
	if err != nil {
		return nil, nil, err
	}
	stats := &Stats{Units: len(units), CellsByWorker: make(map[string]int)}

	d := &dispatcher{
		cfg:      cfg,
		units:    units,
		stats:    stats,
		byID:     make(map[string]*unitState, len(units)),
		events:   make(chan event, 4*len(workers)+4),
		loopDone: make(chan struct{}),
		live:     NewSuspector(cfg.suspectAfter(), cfg.suspectMax()),
		progress: NewSuspector(cfg.suspectAfter(), cfg.suspectMax()),
	}
	for _, u := range units {
		d.byID[u.unit.ID] = u
		d.pending = append(d.pending, u.unit.ID)
	}
	for i, t := range workers {
		w := &workerState{t: t, name: fmt.Sprintf("w%d:%s", i, t.Name), alive: true,
			outbound: make(chan *Msg, 8)}
		d.workers = append(d.workers, w)
	}

	if err := d.loop(); err != nil {
		d.shutdown()
		return nil, stats, err
	}
	d.shutdown()

	if err := d.runLocalUnits(); err != nil {
		return nil, stats, err
	}

	reports, err := d.mergeSuite()
	if err != nil {
		return nil, stats, err
	}
	return reports, stats, nil
}

// buildUnits validates the suite and splits each matrix into shard
// units.
func buildUnits(cfg Config) ([]*unitState, error) {
	names := make(map[string]bool, len(cfg.Matrices))
	var units []*unitState
	for mi := range cfg.Matrices {
		m := cfg.Matrices[mi]
		if names[m.Name] {
			return nil, fmt.Errorf("dispatch: duplicate matrix name %q (unit IDs embed the name, so names must be unique)", m.Name)
		}
		names[m.Name] = true
		for _, p := range m.Patterns {
			if len(p.Holds) > 0 {
				return nil, fmt.Errorf("dispatch: matrix %q pattern %q has explicit holds: process sets do not survive the JSON wire (they serialize empty), so this matrix cannot be dispatched faithfully — run it locally", m.Name, p.Name)
			}
		}
		cells, err := m.Cells()
		if err != nil {
			return nil, fmt.Errorf("dispatch: matrix %q: %w", m.Name, err)
		}
		total := len(cells)
		k := cfg.unitsPerMatrix()
		if k > total {
			k = total
		}
		if k < 1 {
			k = 1
		}
		for s := 0; s < k; s++ {
			shard := sweep.Shard{Index: s, Count: k}
			u := &unitState{
				unit: Unit{
					ID:         fmt.Sprintf("%s#%d/%d", m.Name, s, k),
					Matrix:     m,
					Shard:      shard,
					TotalCells: total,
				},
				matrix: mi,
				owned:  shard.OwnedIndices(total),
				got:    make(map[int][]byte),
				cells:  make(map[int]sweep.CellResult),
			}
			units = append(units, u)
		}
	}
	return units, nil
}

type dispatcher struct {
	cfg      Config
	units    []*unitState
	byID     map[string]*unitState
	pending  []string // unit IDs awaiting (re-)assignment
	workers  []*workerState
	stats    *Stats
	events   chan event
	loopDone chan struct{}
	live     *Suspector // fed by every frame: is the worker alive?
	progress *Suspector // fed by cell frames: is the unit moving?
}

// post delivers an event to the loop unless the loop has exited.
func (d *dispatcher) post(e event) {
	select {
	case d.events <- e:
	case <-d.loopDone:
	}
}

// startWorker launches the reader and writer goroutines for worker wi.
func (d *dispatcher) startWorker(wi int) {
	w := d.workers[wi]
	go func() {
		for {
			m, err := ReadFrame(w.t.RW)
			if err != nil {
				d.post(event{wi: wi, err: err})
				return
			}
			d.post(event{wi: wi, msg: m})
		}
	}()
	go func() {
		for m := range w.outbound {
			if err := WriteFrame(w.t.RW, m); err != nil {
				d.post(event{wi: wi, err: fmt.Errorf("dispatch: write to %s: %w", w.name, err)})
				return
			}
		}
	}()
}

// loop is the dispatcher's single-threaded brain: every scheduling
// decision happens here, reacting to worker frames and suspector
// ticks. It returns when every unit is done or deferred to local
// execution, or with a fatal error.
func (d *dispatcher) loop() error {
	defer close(d.loopDone)
	//detlint:allow wallclock -- host-side dispatcher: suspicion timeouts are real-time by nature
	now := time.Now()
	for wi, w := range d.workers {
		d.live.Register(w.name, now)
		d.startWorker(wi)
		d.assign(wi)
	}

	tick := time.NewTicker(d.cfg.suspectAfter() / 4)
	defer tick.Stop()

	for {
		if done, err := d.checkProgress(); done || err != nil {
			return err
		}
		select {
		case e := <-d.events:
			//detlint:allow wallclock -- host-side dispatcher: suspicion timeouts are real-time by nature
			d.handle(e, time.Now())
		case <-tick.C:
			//detlint:allow wallclock -- host-side dispatcher: suspicion timeouts are real-time by nature
			d.tickSuspectors(time.Now())
		}
	}
}

// checkProgress decides whether the loop can exit (all units settled)
// or must fail (work left, fleet gone, no fallback). When the fleet is
// gone but fallback is allowed, every unsettled unit is deferred to
// local execution.
func (d *dispatcher) checkProgress() (bool, error) {
	settled := 0
	for _, u := range d.units {
		if u.done || u.local {
			settled++
		}
	}
	if settled == len(d.units) {
		return true, nil
	}
	for _, w := range d.workers {
		if w.alive {
			return false, nil
		}
	}
	// Fleet is gone with work outstanding.
	if !d.cfg.LocalFallback {
		return false, fmt.Errorf("dispatch: all %d workers lost with %d units outstanding (local fallback disabled)", len(d.workers), len(d.units)-settled)
	}
	for _, u := range d.units {
		if !u.done && !u.local {
			u.local = true
			d.cfg.logf("dispatch: deferring %s to local execution (fleet gone)", u.unit.ID)
		}
	}
	return true, nil
}

// handle processes one worker event inside the loop.
func (d *dispatcher) handle(e event, now time.Time) {
	w := d.workers[e.wi]
	if !w.alive {
		return // late frames from a dismissed worker
	}
	if e.err != nil {
		why := "connection lost"
		if _, ok := e.err.(*ErrCorruptFrame); ok {
			why = "corrupt frame"
		} else if e.err != io.EOF {
			why = e.err.Error()
		}
		d.dismiss(e.wi, why)
		return
	}
	d.live.Heartbeat(w.name, now)
	switch e.msg.Kind {
	case KindHello:
		d.cfg.logf("dispatch: %s says hello (%s)", w.name, e.msg.Worker)
	case KindHeartbeat:
		// live.Heartbeat above covered it.
	case KindCell:
		d.handleCell(e.wi, e.msg, now)
	case KindDone:
		d.handleDone(e.wi, e.msg)
	case KindError:
		u := d.byID[e.msg.UnitID]
		d.cfg.logf("dispatch: %s failed %s: %s", w.name, e.msg.UnitID, e.msg.Detail)
		if u != nil && !u.done && !u.local {
			d.requeue(u, "worker reported failure")
		}
		if w.current == e.msg.UnitID {
			w.current = ""
			w.specFired = false
		}
		d.assign(e.wi)
	}
}

// handleCell records one streamed cell result, discarding duplicates by
// (unit, cell index) identity and treating content mismatches as
// corruption.
func (d *dispatcher) handleCell(wi int, m *Msg, now time.Time) {
	w := d.workers[wi]
	if m.Cell == nil {
		d.dismiss(wi, "cell frame without a cell")
		return
	}
	d.progress.Heartbeat(w.name, now)
	u := d.byID[m.UnitID]
	if u == nil {
		d.dismiss(wi, fmt.Sprintf("cell for unknown unit %q", m.UnitID))
		return
	}
	if u.done {
		d.stats.Duplicates++ // late result from a speculated or slow attempt
		return
	}
	blob, err := json.Marshal(m.Cell)
	if err != nil {
		d.dismiss(wi, fmt.Sprintf("unmarshalable cell: %v", err))
		return
	}
	if prev, dup := u.got[m.Cell.Index]; dup {
		if string(prev) != string(blob) {
			// Same deterministic cell, different bytes: one of the two
			// deliveries is corrupt. Kill the later messenger; the unit
			// keeps the first delivery and a retry will arbitrate.
			d.dismiss(wi, fmt.Sprintf("cell %d of %s diverges from earlier delivery", m.Cell.Index, m.UnitID))
			return
		}
		d.stats.Duplicates++
		return
	}
	u.got[m.Cell.Index] = blob
	u.cells[m.Cell.Index] = *m.Cell
	d.stats.Cells++
	d.stats.CellsByWorker[w.name]++
}

// handleDone finalizes a unit when its coverage is complete.
func (d *dispatcher) handleDone(wi int, m *Msg) {
	w := d.workers[wi]
	u := d.byID[m.UnitID]
	if u == nil {
		d.dismiss(wi, fmt.Sprintf("done for unknown unit %q", m.UnitID))
		return
	}
	if w.current == m.UnitID {
		w.current = ""
		w.specFired = false
	}
	if !u.done && !u.local {
		if u.complete() {
			if err := d.finish(u); err != nil {
				// Assembly rejected the collected cells (should be
				// impossible given the identity checks) — re-run from
				// scratch.
				u.got = make(map[int][]byte)
				u.cells = make(map[int]sweep.CellResult)
				d.requeue(u, err.Error())
			}
		} else {
			// Done without full coverage: frames were lost (e.g. the
			// corrupt-frame injector swallowed one). Retry.
			d.requeue(u, fmt.Sprintf("done with %d/%d cells", len(u.got), len(u.owned)))
		}
	}
	d.assign(wi)
}

// finish assembles a completed unit's report.
func (d *dispatcher) finish(u *unitState) error {
	cells := make([]sweep.CellResult, 0, len(u.owned))
	for _, idx := range u.owned {
		cells = append(cells, u.cells[idx])
	}
	// Assemble against the dispatcher's own matrix, not the wire copy:
	// the local struct is the byte-identity reference.
	rep, err := sweep.AssembleShardReport(d.cfg.Matrices[u.matrix], u.unit.Shard, u.unit.TotalCells, cells)
	if err != nil {
		return err
	}
	u.report = rep
	u.done = true
	// A speculated twin may still be queued: drop it.
	d.dropPending(u.unit.ID)
	d.cfg.logf("dispatch: %s complete (%d cells)", u.unit.ID, len(cells))
	return nil
}

// requeue schedules a unit for another dispatch attempt, deferring to
// local execution once retries are exhausted.
func (d *dispatcher) requeue(u *unitState, why string) {
	if u.done || u.local {
		return
	}
	d.stats.Retries++
	if u.attempts > d.cfg.maxRetries() {
		// Retries exhausted: settle the unit as local. With fallback
		// enabled runLocalUnits executes it in-process; with fallback
		// disabled runLocalUnits turns it into the run's error.
		u.local = true
		d.dropPending(u.unit.ID)
		d.cfg.logf("dispatch: %s exhausted %d retries (%s), deferring to local execution", u.unit.ID, d.cfg.maxRetries(), why)
		return
	}
	d.cfg.logf("dispatch: requeueing %s (%s)", u.unit.ID, why)
	d.enqueue(u.unit.ID)
	d.assignAll()
}

// enqueue adds a unit ID to pending unless already queued.
func (d *dispatcher) enqueue(id string) {
	for _, p := range d.pending {
		if p == id {
			return
		}
	}
	d.pending = append(d.pending, id)
}

func (d *dispatcher) dropPending(id string) {
	kept := d.pending[:0]
	for _, p := range d.pending {
		if p != id {
			kept = append(kept, p)
		}
	}
	d.pending = kept
}

// assign hands worker wi the next assignable pending unit, if it is
// idle, trusted and alive.
func (d *dispatcher) assign(wi int) {
	w := d.workers[wi]
	if !w.alive || w.current != "" {
		return
	}
	//detlint:allow wallclock -- host-side dispatcher: suspicion timeouts are real-time by nature
	if d.live.Suspected(w.name, time.Now()) {
		return // no new work for a suspected worker
	}
	for qi, id := range d.pending {
		u := d.byID[id]
		if u == nil || u.done || u.local {
			continue
		}
		if d.runningOn(id, wi) {
			continue // don't hand a worker the unit it already runs
		}
		d.pending = append(d.pending[:qi], d.pending[qi+1:]...)
		u.attempts++
		w.current = id
		w.specFired = false
		//detlint:allow wallclock -- host-side dispatcher: suspicion timeouts are real-time by nature
		d.progress.Register(w.name, time.Now())
		unit := u.unit
		w.outbound <- &Msg{Kind: KindUnit, Unit: &unit}
		d.cfg.logf("dispatch: assigned %s to %s (attempt %d)", id, w.name, u.attempts)
		return
	}
	d.progress.Forget(w.name) // idle workers aren't stragglers
}

// assignAll offers pending work to every idle worker.
func (d *dispatcher) assignAll() {
	for wi := range d.workers {
		d.assign(wi)
	}
}

// runningOn reports whether unit id is currently assigned to worker wi.
func (d *dispatcher) runningOn(id string, wi int) bool {
	return d.workers[wi].current == id
}

// dismiss hard-kills a worker and re-shares its in-flight unit across
// the survivors.
func (d *dispatcher) dismiss(wi int, why string) {
	w := d.workers[wi]
	if !w.alive {
		return
	}
	w.alive = false
	d.stats.WorkersLost++
	d.live.Forget(w.name)
	d.progress.Forget(w.name)
	d.cfg.logf("dispatch: dismissing %s: %s", w.name, why)
	close(w.outbound)
	w.t.RW.Close()
	if w.t.Kill != nil {
		w.t.Kill()
	}
	if w.current != "" {
		u := d.byID[w.current]
		w.current = ""
		if u != nil {
			d.requeue(u, "worker "+why)
		}
	}
}

// tickSuspectors advances suspicion: silent workers are speculated
// around, then dismissed when silence outlasts SuspectMax.
func (d *dispatcher) tickSuspectors(now time.Time) {
	for wi, w := range d.workers {
		if !w.alive {
			continue
		}
		if d.live.Suspected(w.name, now) && d.live.SilentFor(w.name, now) > d.cfg.suspectMax() {
			d.dismiss(wi, fmt.Sprintf("silent for %s (suspicion hardened)", d.live.SilentFor(w.name, now).Round(time.Millisecond)))
			continue
		}
		if w.current == "" || !d.cfg.Speculate || w.specFired {
			continue
		}
		// Straggler detection: the worker holds a unit but cells have
		// stopped arriving. Speculatively queue the unit for a peer —
		// the attempt counter is untouched (nothing failed), and the
		// original may still win the race.
		if d.progress.Suspected(w.name, now) || d.live.Suspected(w.name, now) {
			u := d.byID[w.current]
			if u != nil && !u.done && !u.local {
				w.specFired = true
				d.stats.Speculated++
				d.cfg.logf("dispatch: %s is straggling on %s, speculating", w.name, u.unit.ID)
				d.enqueue(u.unit.ID)
				d.assignAll()
			}
		}
	}
}

// shutdown tells every surviving worker to exit and tears the fleet
// down.
func (d *dispatcher) shutdown() {
	for _, w := range d.workers {
		if !w.alive {
			continue
		}
		w.alive = false
		select {
		case w.outbound <- &Msg{Kind: KindShutdown}:
		default:
		}
		close(w.outbound)
		// Give the writer a beat to flush the shutdown frame, then cut
		// the transport; workers also exit on EOF, so this is belt and
		// braces, not a protocol step.
		rw, kill := w.t.RW, w.t.Kill
		go func() {
			time.Sleep(100 * time.Millisecond)
			rw.Close()
			if kill != nil {
				kill()
			}
		}()
	}
}

// runLocalUnits executes every unit deferred to local fallback,
// in-process, via the same sweep entry points the workers use.
func (d *dispatcher) runLocalUnits() error {
	for _, u := range d.units {
		if u.done || !u.local {
			continue
		}
		if !d.cfg.LocalFallback {
			return fmt.Errorf("dispatch: unit %s undispatchable and local fallback disabled", u.unit.ID)
		}
		d.cfg.logf("dispatch: running %s locally", u.unit.ID)
		rep, err := sweep.Run(d.cfg.Matrices[u.matrix], sweep.Options{
			Workers: d.cfg.LocalPool,
			Shard:   u.unit.Shard,
		})
		if err != nil {
			return fmt.Errorf("dispatch: local run of %s: %w", u.unit.ID, err)
		}
		u.report = rep
		u.done = true
		d.stats.LocalUnits++
		d.stats.Cells += len(rep.Cells)
		d.stats.CellsByWorker["local"] += len(rep.Cells)
	}
	return nil
}

// mergeSuite recombines unit reports into per-matrix reports, suite
// order, using the same MergeReports path the sharded CI sweep trusts.
func (d *dispatcher) mergeSuite() ([]*sweep.Report, error) {
	reports := make([]*sweep.Report, 0, len(d.cfg.Matrices))
	for mi := range d.cfg.Matrices {
		var parts []*sweep.Report
		for _, u := range d.units {
			if u.matrix != mi {
				continue
			}
			if u.report == nil {
				return nil, fmt.Errorf("dispatch: unit %s never completed", u.unit.ID)
			}
			parts = append(parts, u.report)
		}
		merged, err := sweep.MergeReports(parts)
		if err != nil {
			return nil, err
		}
		reports = append(reports, merged)
	}
	return reports, nil
}
