package dispatch

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"fdgrid/internal/sweep"
)

func TestFrameRoundTrip(t *testing.T) {
	msgs := []*Msg{
		{Kind: KindHello, Worker: "w0"},
		{Kind: KindHeartbeat, Worker: "w0"},
		{Kind: KindUnit, Unit: &Unit{
			ID:         "m#0/2",
			Matrix:     sweep.Matrix{Name: "m", Protocol: "kset-omega", Seeds: []int64{0}, Sizes: []sweep.Size{{N: 5, T: 2}}},
			Shard:      sweep.Shard{Index: 0, Count: 2},
			TotalCells: 4,
		}},
		{Kind: KindCell, UnitID: "m#0/2", Cell: &sweep.CellResult{Index: 2, Verdict: sweep.Pass, Steps: 123}},
		{Kind: KindDone, UnitID: "m#0/2"},
		{Kind: KindError, UnitID: "m#0/2", Detail: "no runner"},
		{Kind: KindShutdown},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || got.UnitID != want.UnitID || got.Worker != want.Worker {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
		if want.Cell != nil && (got.Cell == nil || got.Cell.Index != want.Cell.Index || got.Cell.Steps != want.Cell.Steps) {
			t.Fatalf("cell did not survive the wire: %+v", got.Cell)
		}
		if want.Unit != nil && (got.Unit == nil || got.Unit.ID != want.Unit.ID || got.Unit.Matrix.Name != want.Unit.Matrix.Name) {
			t.Fatalf("unit did not survive the wire: %+v", got.Unit)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("empty stream: err=%v, want io.EOF", err)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Msg{Kind: KindHeartbeat}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF // flip a payload byte
	var ce *ErrCorruptFrame
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.As(err, &ce) {
		t.Fatalf("corrupted frame read as %v, want ErrCorruptFrame", err)
	}
}

func TestFrameTruncationAndOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Msg{Kind: KindHeartbeat}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload read cleanly")
	}
	if _, err := ReadFrame(bytes.NewReader(trunc[:5])); err == nil {
		t.Fatal("truncated header read cleanly")
	}

	var huge [frameHeader]byte
	binary.BigEndian.PutUint32(huge[0:4], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(huge[:])); err == nil || !strings.Contains(err.Error(), "exceeds cap") {
		t.Fatalf("oversize frame: err=%v", err)
	}
}

func TestParseFault(t *testing.T) {
	cases := []struct {
		spec string
		want Fault
		bad  bool
	}{
		{spec: "crash@5", want: Fault{Kind: FaultCrash, After: 5}},
		{spec: "hang@0", want: Fault{Kind: FaultHang}},
		{spec: "corrupt@2", want: Fault{Kind: FaultCorrupt, After: 2}},
		{spec: "dup@1", want: Fault{Kind: FaultDup, After: 1}},
		{spec: "slow=50ms", want: Fault{Kind: FaultSlow, Delay: 50 * time.Millisecond}},
		{spec: "crash", bad: true},
		{spec: "crash@", bad: true},
		{spec: "crash@-1", bad: true},
		{spec: "crash@2x", bad: true},
		{spec: "explode@3", bad: true},
		{spec: "slow=0s", bad: true},
		{spec: "slow=banana", bad: true},
		{spec: "crash=5s", bad: true},
		{spec: "", bad: true},
	}
	for _, c := range cases {
		got, err := ParseFault(c.spec)
		if c.bad {
			if err == nil {
				t.Errorf("ParseFault(%q) accepted, want error", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseFault(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseFault(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestParseFaults(t *testing.T) {
	m, err := ParseFaults("0:crash@5; 2:slow=50ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[0].Kind != FaultCrash || m[0].After != 5 || m[2].Kind != FaultSlow {
		t.Fatalf("schedule parsed wrong: %+v", m)
	}
	if m2, err := ParseFaults("  "); err != nil || len(m2) != 0 {
		t.Fatalf("blank schedule: %v %v", m2, err)
	}
	for _, bad := range []string{"crash@5", "x:crash@5", "-1:crash@5", "0:crash@5;0:hang@2"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted, want error", bad)
		}
	}
}

// TestSuspectorBackoff drives the ◇S shape with a synthetic clock: a
// silent worker is suspected (completeness); a heartbeat refutes the
// suspicion and doubles the timeout, so a steadily-slow worker is
// eventually never suspected again (eventual accuracy).
func TestSuspectorBackoff(t *testing.T) {
	t0 := time.Unix(1000, 0)
	s := NewSuspector(100*time.Millisecond, time.Second)
	s.Register("w", t0)

	if s.Suspected("w", t0.Add(50*time.Millisecond)) {
		t.Fatal("suspected within the base timeout")
	}
	if !s.Suspected("w", t0.Add(150*time.Millisecond)) {
		t.Fatal("not suspected after the base timeout (completeness)")
	}
	// The worker was merely slow: its heartbeat lands at +200ms.
	if !s.Heartbeat("w", t0.Add(200*time.Millisecond)) {
		t.Fatal("heartbeat did not report a refuted suspicion")
	}
	if got := s.Timeout("w"); got != 200*time.Millisecond {
		t.Fatalf("timeout after one wrong suspicion = %v, want 200ms", got)
	}
	// The same 150ms of silence no longer triggers suspicion.
	if s.Suspected("w", t0.Add(350*time.Millisecond)) {
		t.Fatal("suspected again at the old timeout after backoff")
	}
	// Push the timeout to the cap: it must not grow past max.
	now := t0.Add(400 * time.Millisecond)
	for i := 0; i < 10; i++ {
		now = now.Add(s.Timeout("w") + time.Millisecond)
		if !s.Suspected("w", now) {
			t.Fatalf("iteration %d: silence past the timeout not suspected", i)
		}
		s.Heartbeat("w", now)
	}
	if got := s.Timeout("w"); got != time.Second {
		t.Fatalf("timeout grew past the cap: %v", got)
	}

	// Unknown and forgotten workers are never suspected.
	if s.Suspected("ghost", now) {
		t.Fatal("unknown worker suspected")
	}
	s.Forget("w")
	if s.Suspected("w", now.Add(time.Hour)) {
		t.Fatal("forgotten worker suspected")
	}
	if s.SilentFor("w", now) != 0 || s.Timeout("w") != 0 {
		t.Fatal("forgotten worker retains state")
	}
}

func TestFaultString(t *testing.T) {
	for spec, want := range map[string]string{
		"crash@5":   "crash@5",
		"slow=50ms": "slow=50ms",
	} {
		f, err := ParseFault(spec)
		if err != nil {
			t.Fatal(err)
		}
		if f.String() != want {
			t.Errorf("String() = %q, want %q", f.String(), want)
		}
	}
	if (Fault{}).String() != "none" {
		t.Errorf("zero fault String() = %q", Fault{}.String())
	}
}
