package dispatch

import "time"

// Suspector is the dispatcher's eventually-accurate failure detector
// over its worker fleet — the ◇S shape from the failure-detector
// literature, implemented the way practical systems do: a per-worker
// heartbeat deadline whose timeout backs off exponentially every time a
// suspicion proves wrong. Completeness: a worker that really stops
// heartbeating is eventually (within its current timeout) suspected
// forever. Eventual accuracy: a live-but-slow worker that keeps being
// wrongly suspected has its timeout doubled on each mistake until the
// timeout exceeds its real heartbeat interval, after which it is never
// suspected again — exactly the eventually-accurate property the
// paper's oracle classes package up, recovered here by adaptation
// rather than assumption.
//
// The suspector only forms opinions; the dispatcher decides what they
// mean (speculate, stop assigning, eventually kill). All times are
// passed in by the caller, so unit tests drive it with synthetic clocks
// and stay deterministic.
type Suspector struct {
	base, max time.Duration
	workers   map[string]*suspectState
}

type suspectState struct {
	timeout   time.Duration
	last      time.Time // last heartbeat (or registration)
	suspected bool
}

// NewSuspector builds a suspector with the given initial per-worker
// timeout and the cap the backoff may grow it to. A zero or negative
// max means "base, never grown".
func NewSuspector(base, max time.Duration) *Suspector {
	if base <= 0 {
		base = time.Second
	}
	if max < base {
		max = base
	}
	return &Suspector{base: base, max: max, workers: make(map[string]*suspectState)}
}

// Register starts tracking a worker as of now, trusted, at the base
// timeout. Registering an existing worker resets it.
func (s *Suspector) Register(w string, now time.Time) {
	s.workers[w] = &suspectState{timeout: s.base, last: now}
}

// Forget stops tracking a worker (it died or was dismissed).
func (s *Suspector) Forget(w string) { delete(s.workers, w) }

// Heartbeat records life from a worker. If the worker was under
// suspicion, the suspicion was wrong: the worker is trusted again and
// its timeout doubles (capped) so the same mistake needs twice the
// silence next time. Returns true when this heartbeat refuted a
// suspicion — the dispatcher uses that edge to restore the worker to
// the schedulable pool.
func (s *Suspector) Heartbeat(w string, now time.Time) bool {
	st, ok := s.workers[w]
	if !ok {
		return false
	}
	st.last = now
	if !st.suspected {
		return false
	}
	st.suspected = false
	st.timeout *= 2
	if st.timeout > s.max {
		st.timeout = s.max
	}
	return true
}

// Suspected reports whether worker w is currently suspected as of now,
// flipping it into the suspected state when its heartbeat deadline has
// passed. Unknown workers are not suspected.
func (s *Suspector) Suspected(w string, now time.Time) bool {
	st, ok := s.workers[w]
	if !ok {
		return false
	}
	if !st.suspected && now.Sub(st.last) > st.timeout {
		st.suspected = true
	}
	return st.suspected
}

// SilentFor reports how long worker w has gone without a heartbeat as
// of now (zero for unknown workers). The dispatcher compares this
// against SuspectMax to decide when suspicion hardens into dismissal.
func (s *Suspector) SilentFor(w string, now time.Time) time.Duration {
	st, ok := s.workers[w]
	if !ok {
		return 0
	}
	return now.Sub(st.last)
}

// Timeout exposes worker w's current timeout (zero for unknown
// workers) — observability for logs and tests.
func (s *Suspector) Timeout(w string) time.Duration {
	st, ok := s.workers[w]
	if !ok {
		return 0
	}
	return st.timeout
}
