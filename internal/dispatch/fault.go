package dispatch

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Fault kinds the injection harness can arm on a worker. Faults fire
// deterministically, keyed by the count of cell results the worker has
// sent — never by wall time — so a fault schedule reproduces exactly.
const (
	// FaultCrash: after After cells, close the connection and exit —
	// a hard worker death mid-unit.
	FaultCrash = "crash"
	// FaultHang: after After cells, go silent — stop sending cells AND
	// heartbeats, but keep the connection open and keep reading. The
	// shape a wedged process presents: alive at the TCP layer, dead
	// above it. Only the suspector can recover from this one.
	FaultHang = "hang"
	// FaultCorrupt: after After cells, send one frame with a wrong
	// checksum. The dispatcher must detect it and fail the worker
	// rather than misparse.
	FaultCorrupt = "corrupt"
	// FaultDup: after After cells, send the next cell result twice.
	// The dispatcher must discard the duplicate by unit/cell identity.
	FaultDup = "dup"
	// FaultSlow: sleep Delay before every cell result — a straggler.
	// The only fault that involves real time; the dispatcher's
	// speculative re-dispatch races it.
	FaultSlow = "slow"
)

// Fault is one injected misbehaviour, armed on a worker via
// WorkerOptions.Fault. The zero value is "no fault".
type Fault struct {
	// Kind is one of the Fault* constants; empty means no fault.
	Kind string
	// After is the number of cell results to send normally before the
	// fault fires (crash/hang/corrupt/dup).
	After int
	// Delay is the per-cell delay for FaultSlow.
	Delay time.Duration
}

// ParseFault parses one fault spec:
//
//	crash@K    crash after K cells
//	hang@K     hang after K cells
//	corrupt@K  corrupt frame after K cells
//	dup@K      duplicate a cell result after K cells
//	slow=DUR   sleep DUR before every cell (e.g. slow=50ms)
func ParseFault(spec string) (Fault, error) {
	if kind, dur, ok := strings.Cut(spec, "="); ok {
		if kind != FaultSlow {
			return Fault{}, fmt.Errorf("dispatch: fault %q: only %s takes =DURATION", spec, FaultSlow)
		}
		d, err := time.ParseDuration(dur)
		if err != nil || d <= 0 {
			return Fault{}, fmt.Errorf("dispatch: fault %q: want slow=DURATION with a positive duration", spec)
		}
		return Fault{Kind: FaultSlow, Delay: d}, nil
	}
	kind, at, ok := strings.Cut(spec, "@")
	if !ok {
		return Fault{}, fmt.Errorf("dispatch: fault %q: want KIND@K or slow=DURATION", spec)
	}
	switch kind {
	case FaultCrash, FaultHang, FaultCorrupt, FaultDup:
	default:
		return Fault{}, fmt.Errorf("dispatch: fault %q: unknown kind %q (want crash, hang, corrupt, dup or slow)", spec, kind)
	}
	k, err := strconv.Atoi(at)
	if err != nil || k < 0 {
		return Fault{}, fmt.Errorf("dispatch: fault %q: want a non-negative cell count after @", spec)
	}
	return Fault{Kind: kind, After: k}, nil
}

// ParseFaults parses a per-worker fault schedule: semicolon-separated
// WORKER:SPEC entries, where WORKER is a 0-based worker index, e.g.
//
//	"0:crash@5;2:slow=50ms"
//
// arms a crash-after-5-cells on worker 0 and a straggler delay on
// worker 2. An empty string is an empty schedule.
func ParseFaults(s string) (map[int]Fault, error) {
	out := make(map[int]Fault)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		idx, spec, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("dispatch: fault entry %q: want WORKER:SPEC", entry)
		}
		w, err := strconv.Atoi(strings.TrimSpace(idx))
		if err != nil || w < 0 {
			return nil, fmt.Errorf("dispatch: fault entry %q: want a non-negative worker index before the colon", entry)
		}
		if _, dup := out[w]; dup {
			return nil, fmt.Errorf("dispatch: fault entry %q: worker %d already has a fault", entry, w)
		}
		f, err := ParseFault(strings.TrimSpace(spec))
		if err != nil {
			return nil, err
		}
		out[w] = f
	}
	return out, nil
}

// String renders the fault in the spec grammar ParseFault accepts.
func (f Fault) String() string {
	switch f.Kind {
	case "":
		return "none"
	case FaultSlow:
		return fmt.Sprintf("slow=%s", f.Delay)
	default:
		return fmt.Sprintf("%s@%d", f.Kind, f.After)
	}
}
