package dispatch

import (
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"fdgrid/internal/sweep"
)

// Stdio is the transport of a stdio subprocess worker: frames arrive on
// stdin and leave on stdout (which therefore must carry nothing else —
// logs go to stderr).
type Stdio struct{}

func (Stdio) Read(p []byte) (int, error)  { return os.Stdin.Read(p) }
func (Stdio) Write(p []byte) (int, error) { return os.Stdout.Write(p) }
func (Stdio) Close() error {
	os.Stdin.Close()
	return os.Stdout.Close()
}

// WorkerOptions configures ServeWorker.
type WorkerOptions struct {
	// Name is the worker's self-reported identity, sent in the hello
	// frame and echoed in logs.
	Name string
	// Pool is the sweep worker-pool size per unit (0: GOMAXPROCS).
	Pool int
	// Heartbeat is the liveness interval (0: 500ms).
	Heartbeat time.Duration
	// Fault, when non-zero, arms the deterministic fault injector: the
	// worker misbehaves exactly as specified (see the Fault kinds).
	Fault Fault
}

func (o WorkerOptions) heartbeat() time.Duration {
	if o.Heartbeat > 0 {
		return o.Heartbeat
	}
	return 500 * time.Millisecond
}

// workerConn serializes frame writes and centralizes the fault
// injector's send-side state.
type workerConn struct {
	mu    sync.Mutex
	rw    io.ReadWriteCloser
	fault Fault
	sent  int  // cell results sent (the fault trigger counter)
	hung  bool // FaultHang fired: all sends are silently dropped
	fired bool // one-shot faults (corrupt/dup) already fired
}

// send writes one frame unless the hang fault has silenced the worker.
func (c *workerConn) send(m *Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hung {
		return nil
	}
	return WriteFrame(c.rw, m)
}

// sendCell writes one cell-result frame, firing any armed fault whose
// trigger count has been reached. Returns errWorkerCrash when the
// crash fault fires (the caller exits the process loop).
func (c *workerConn) sendCell(m *Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hung {
		return nil
	}
	switch c.fault.Kind {
	case FaultSlow:
		c.mu.Unlock()
		time.Sleep(c.fault.Delay)
		c.mu.Lock()
	case FaultCrash:
		if c.sent >= c.fault.After {
			c.rw.Close()
			return errWorkerCrash
		}
	case FaultHang:
		if c.sent >= c.fault.After {
			c.hung = true
			return nil
		}
	case FaultCorrupt:
		if !c.fired && c.sent >= c.fault.After {
			c.fired = true
			payload := []byte(`{"kind":"cell"}`)
			// Deliberately wrong checksum: the dispatcher must detect
			// this frame as corrupt, not parse it.
			return writeRawFrame(c.rw, payload, crc32.ChecksumIEEE(payload)+1)
		}
	}
	if err := WriteFrame(c.rw, m); err != nil {
		return err
	}
	c.sent++
	if c.fault.Kind == FaultDup && !c.fired && c.sent > c.fault.After {
		c.fired = true
		return WriteFrame(c.rw, m) // duplicate delivery
	}
	return nil
}

var errWorkerCrash = fmt.Errorf("dispatch: injected crash")

// ServeWorker runs the worker side of the protocol on rw until the
// dispatcher sends a shutdown, the connection closes, or an injected
// crash fires. It sends hello, heartbeats on a ticker, accepts unit
// assignments one at a time, runs each via sweep.Run streaming every
// CellResult as it lands, and reports done or error per unit.
//
// The worker process imports the sweep runner registry, so any
// protocol the dispatcher's matrices name is runnable here; a matrix
// naming an unknown protocol fails its unit with an error frame rather
// than killing the worker.
func ServeWorker(rw io.ReadWriteCloser, opt WorkerOptions) error {
	conn := &workerConn{rw: rw, fault: opt.Fault}
	if err := conn.send(&Msg{Kind: KindHello, Worker: opt.Name}); err != nil {
		return err
	}

	// Heartbeats tick independently of unit execution so a long cell
	// does not read as death. The hang fault silences these too — that
	// is what makes it a hang and not a straggle.
	stopBeats := make(chan struct{})
	var beatsDone sync.WaitGroup
	beatsDone.Add(1)
	go func() {
		defer beatsDone.Done()
		t := time.NewTicker(opt.heartbeat())
		defer t.Stop()
		for {
			select {
			case <-stopBeats:
				return
			case <-t.C:
				if conn.send(&Msg{Kind: KindHeartbeat, Worker: opt.Name}) != nil {
					return
				}
			}
		}
	}()
	defer func() {
		close(stopBeats)
		beatsDone.Wait()
	}()

	for {
		m, err := ReadFrame(rw)
		if err != nil {
			if err == io.EOF {
				return nil // dispatcher went away cleanly
			}
			return err
		}
		switch m.Kind {
		case KindShutdown:
			return nil
		case KindUnit:
			if m.Unit == nil {
				return fmt.Errorf("dispatch: unit frame without a unit")
			}
			if err := runUnit(conn, opt, m.Unit); err != nil {
				if err == errWorkerCrash {
					return err
				}
				if ferr := conn.send(&Msg{Kind: KindError, Worker: opt.Name, UnitID: m.Unit.ID, Detail: err.Error()}); ferr != nil {
					return ferr
				}
				continue
			}
			if err := conn.send(&Msg{Kind: KindDone, Worker: opt.Name, UnitID: m.Unit.ID}); err != nil {
				return err
			}
		default:
			// Unknown dispatcher frames are ignored for forward
			// compatibility.
		}
	}
}

// runUnit executes one unit via sweep.Run, streaming each CellResult
// over the wire as it completes. A crash fault fired mid-unit cancels
// the rest of the run and surfaces errWorkerCrash.
func runUnit(conn *workerConn, opt WorkerOptions, u *Unit) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sendErr error
	var sendMu sync.Mutex
	_, err := sweep.Run(u.Matrix, sweep.Options{
		Workers: opt.Pool,
		Shard:   u.Shard,
		Context: ctx,
		OnResult: func(c sweep.CellResult) {
			sendMu.Lock()
			defer sendMu.Unlock()
			if sendErr != nil {
				return
			}
			if err := conn.sendCell(&Msg{Kind: KindCell, Worker: opt.Name, UnitID: u.ID, Cell: &c}); err != nil {
				sendErr = err
				cancel()
			}
		},
	})
	sendMu.Lock()
	defer sendMu.Unlock()
	if sendErr != nil {
		return sendErr
	}
	return err
}
