// Package dispatch is the distributed sweep dispatcher behind cmd/sweepd:
// it splits a suite of matrices into shard-shaped work units, schedules
// them across a fleet of worker processes over a length-prefixed JSON
// wire protocol, streams CellResults back, and merges the collected
// shards into the exact bytes the single-process run would have
// produced.
//
// Robustness is the point. The dispatcher runs an eventually-accurate
// suspector over its workers — per-worker heartbeats against a timeout
// that backs off exponentially whenever a suspicion proves wrong, the
// same ◇S/φ shape the failure-detector literature formalizes and the
// repo's own fd package simulates. Suspicion drives scheduling, not
// termination: a suspected worker's unit is speculatively re-dispatched
// to a trusted peer (first complete result wins, duplicates are
// discarded by unit ID) and the worker is only hard-killed when the
// suspicion persists past SuspectMax or its connection errors outright.
// Failed units are retried a bounded number of times, a dead worker's
// outstanding units are re-shared across the survivors, and when the
// whole fleet is gone the dispatcher degrades to running units locally
// in-process.
//
// This package is host-side infrastructure: wall-clock timeouts,
// goroutines, and real I/O are legal here (detlint scopes it out of the
// deterministic set). Determinism is preserved where it matters — in
// the artifact: the merged report is byte-identical to the unsharded
// golden under every fault schedule the injection harness can produce,
// which is exactly what the package's tests assert.
package dispatch

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"fdgrid/internal/sweep"
)

// Frame format: 4-byte big-endian payload length, 4-byte IEEE CRC32 of
// the payload, then the JSON payload. The CRC turns a corrupted or
// truncated frame into a detected transport error instead of a
// misparsed message; the length cap bounds what a broken peer can make
// us allocate.
const (
	frameHeader = 8
	// MaxFrame bounds a single frame's payload. 64 MiB comfortably holds
	// the largest unit assignment (a full Matrix plus cell indices) and
	// any CellResult.
	MaxFrame = 64 << 20
)

// Message kinds, in the Kind field of every frame.
const (
	// KindHello: worker → dispatcher, first frame on a connection.
	// Carries the worker's self-reported name in Worker.
	KindHello = "hello"
	// KindUnit: dispatcher → worker, assigns a work unit. Carries Unit.
	KindUnit = "unit"
	// KindCell: worker → dispatcher, one completed cell of the unit in
	// Cell, tagged with the unit's ID.
	KindCell = "cell"
	// KindDone: worker → dispatcher, the unit named by UnitID completed;
	// every owned cell was streamed.
	KindDone = "done"
	// KindHeartbeat: worker → dispatcher, liveness signal, sent
	// periodically and between cells.
	KindHeartbeat = "heartbeat"
	// KindError: worker → dispatcher, the unit named by UnitID failed
	// (Detail says why). The worker stays alive and schedulable.
	KindError = "error"
	// KindShutdown: dispatcher → worker, finish nothing further and
	// exit.
	KindShutdown = "shutdown"
)

// Unit is one schedulable slice of the suite: shard Shard.Index of
// Shard.Count over matrix Matrix, whose expansion has TotalCells cells.
// ID is the dispatcher-assigned identity ("matrix#i/m") that tags every
// result frame, so late or duplicated deliveries from retried and
// speculated attempts are recognized and discarded.
type Unit struct {
	ID         string       `json:"id"`
	Matrix     sweep.Matrix `json:"matrix"`
	Shard      sweep.Shard  `json:"shard"`
	TotalCells int          `json:"total_cells"`
}

// Msg is the wire envelope. Kind selects which other fields are
// meaningful (see the Kind constants).
type Msg struct {
	Kind   string            `json:"kind"`
	Worker string            `json:"worker,omitempty"`
	Unit   *Unit             `json:"unit,omitempty"`
	UnitID string            `json:"unit_id,omitempty"`
	Cell   *sweep.CellResult `json:"cell,omitempty"`
	Detail string            `json:"detail,omitempty"`
}

// WriteFrame encodes m and writes one length+CRC+payload frame.
func WriteFrame(w io.Writer, m *Msg) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return writeRawFrame(w, payload, crc32.ChecksumIEEE(payload))
}

// writeRawFrame writes a frame with an explicit CRC — the fault
// injector uses a wrong CRC to simulate line corruption.
func writeRawFrame(w io.Writer, payload []byte, sum uint32) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("dispatch: frame payload %d bytes exceeds cap %d", len(payload), MaxFrame)
	}
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], sum)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ErrCorruptFrame reports a frame whose payload failed its checksum.
// The connection is unusable after it: framing may be out of sync.
type ErrCorruptFrame struct {
	Want, Got uint32
}

func (e *ErrCorruptFrame) Error() string {
	return fmt.Sprintf("dispatch: corrupt frame (crc %08x, want %08x)", e.Got, e.Want)
}

// ReadFrame reads and decodes one frame. io.EOF at a frame boundary is
// returned as-is (clean close); a checksum mismatch returns
// *ErrCorruptFrame and the stream must be abandoned.
func ReadFrame(r io.Reader) (*Msg, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("dispatch: truncated frame header: %w", err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	want := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxFrame {
		return nil, fmt.Errorf("dispatch: frame payload %d bytes exceeds cap %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("dispatch: truncated frame payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, &ErrCorruptFrame{Want: want, Got: got}
	}
	var m Msg
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("dispatch: bad frame payload: %w", err)
	}
	return &m, nil
}
