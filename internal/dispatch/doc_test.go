package dispatch

import (
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// TestStatsKeysDocumented pins docs/REPORT_SCHEMA.md's "Dispatch stats
// keys" table to the Stats struct: every JSON key the struct emits
// must have a table row, and every row must name a real key — the
// same contract TestReportSchemaDocumented enforces for the report
// artifact. The section must also state the invariant that canonical
// reports gain no dispatch keys.
func TestStatsKeysDocumented(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "REPORT_SCHEMA.md"))
	if err != nil {
		t.Fatalf("read REPORT_SCHEMA.md: %v", err)
	}
	_, section, ok := strings.Cut(string(raw), "## Dispatch stats keys")
	if !ok {
		t.Fatal(`REPORT_SCHEMA.md has no "## Dispatch stats keys" section`)
	}
	if next := strings.Index(section, "\n## "); next >= 0 {
		section = section[:next]
	}
	if !strings.Contains(section, "no keys") {
		t.Error("the dispatch section must state that canonical reports gain no dispatch keys")
	}

	keyRe := regexp.MustCompile("(?m)^\\| `([a-z_]+)` \\|")
	documented := make(map[string]bool)
	for _, m := range keyRe.FindAllStringSubmatch(section, -1) {
		documented[m[1]] = true
	}

	structKeys := make(map[string]bool)
	st := reflect.TypeOf(Stats{})
	for i := 0; i < st.NumField(); i++ {
		tag := st.Field(i).Tag.Get("json")
		name, _, _ := strings.Cut(tag, ",")
		if name == "" || name == "-" {
			t.Errorf("Stats.%s has no JSON key; every stats field is part of the artifact", st.Field(i).Name)
			continue
		}
		structKeys[name] = true
		if !documented[name] {
			t.Errorf("Stats key %q is not documented in REPORT_SCHEMA.md's dispatch table", name)
		}
	}
	for key := range documented {
		if !structKeys[key] {
			t.Errorf("REPORT_SCHEMA.md documents dispatch stats key %q, which Stats does not emit", key)
		}
	}
}
