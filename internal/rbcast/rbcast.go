// Package rbcast implements the reliable broadcast abstraction the paper
// assumes (Hadzilacos & Toueg [10]): primitives R-broadcast and R-deliver
// with Validity (no spurious messages), Integrity (no duplicates) and
// Termination (if a correct process R-broadcasts or R-delivers m, every
// correct process R-delivers m).
//
// The construction is the classic echo relay: the origin sends a uniquely
// identified frame to everyone; on first receipt of a frame, a process
// relays it to everyone and only then R-delivers it. If the origin crashes
// mid-broadcast but the frame reaches one correct process, that process's
// relay completes the broadcast.
package rbcast

import (
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// framePrefix marks wire messages carrying reliable-broadcast frames; the
// original protocol tag is appended so per-protocol message metrics stay
// observable (e.g. "rbcast:wheel.xmove").
const framePrefix = "rbcast:"

// msgID uniquely identifies an R-broadcast message.
type msgID struct {
	Origin ids.ProcID
	Seq    int
}

// frame is the wire payload of a relayed R-broadcast message. Frames are
// what identifies rbcast traffic on the wire: only this package creates
// them, so a message whose payload is a frame is an R-broadcast.
type frame struct {
	ID      msgID
	Tag     sim.Tag
	Payload any
}

// Layer adds reliable broadcast to one process's environment. It is not
// safe for concurrent use: like all protocol state, it lives on the
// owning process's goroutine.
type Layer struct {
	env     *sim.Env
	nextSeq int
	seen    map[msgID]bool
	wire    map[sim.Tag]sim.Tag // protocol tag → interned wire tag
}

// New returns a reliable-broadcast layer for env.
func New(env *sim.Env) *Layer {
	return &Layer{env: env, seen: make(map[msgID]bool), wire: make(map[sim.Tag]sim.Tag)}
}

// Broadcast R-broadcasts a protocol message (tag, payload) to all
// processes, the sender included.
func (l *Layer) Broadcast(tag sim.Tag, payload any) {
	l.nextSeq++
	f := frame{
		ID:      msgID{Origin: l.env.ID(), Seq: l.nextSeq},
		Tag:     tag,
		Payload: payload,
	}
	l.env.Broadcast(l.wireTag(tag), f)
}

// wireTag returns the wire tag for a protocol tag, interning on first
// use and caching per layer so repeated broadcasts cost one map hit.
func (l *Layer) wireTag(tag sim.Tag) sim.Tag {
	if w, ok := l.wire[tag]; ok {
		return w
	}
	w := WireTag(tag)
	l.wire[tag] = w
	return w
}

// WireTag returns the network-level tag under which R-broadcasts of the
// given protocol tag travel (for metrics queries).
func WireTag(tag sim.Tag) sim.Tag { return sim.Intern(framePrefix + tag.String()) }

// Poll implements node.Layer; the relay logic is purely message-driven.
func (l *Layer) Poll() {}

// NextWake implements node.WakeHinter: the relay never needs a pure time
// wake.
func (l *Layer) NextWake(sim.Time) sim.Time { return sim.Never }

// Handle implements node.Layer. It filters one raw message from the
// event loop.
//
// Plain (non-rbcast) messages pass through unchanged with deliver=true.
// For rbcast frames (identified by their frame payload): the first copy
// is relayed to everyone and returned as the R-delivered protocol
// message, with From rewritten to the origin; duplicate copies return
// deliver=false and must be ignored.
func (l *Layer) Handle(m sim.Message) (sim.Message, bool) {
	f, ok := m.Payload.(frame)
	if !ok {
		return m, true
	}
	if l.seen[f.ID] {
		return sim.Message{}, false
	}
	l.seen[f.ID] = true
	// Relay before delivering: if this process crashes mid-relay it has
	// not R-delivered, preserving Termination's contrapositive. Multicast
	// fans the frame out to everyone else in one stamped pass — same
	// ascending destination order as the old per-process Send loop.
	l.env.Multicast(l.env.All().Remove(l.env.ID()), m.Tag, f)
	return sim.Message{
		From:        f.ID.Origin,
		To:          m.To,
		Tag:         f.Tag,
		Payload:     f.Payload,
		SentAt:      m.SentAt,
		DeliveredAt: m.DeliveredAt,
	}, true
}
