package rbcast

import (
	"sync"
	"testing"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// collector runs an event loop R-delivering everything it sees.
type record struct {
	from ids.ProcID
	tag  sim.Tag
	val  any
}

func runCollectors(t *testing.T, s *sim.System, senders map[ids.ProcID]func(*sim.Env, *Layer), want int) map[ids.ProcID][]record {
	t.Helper()
	var mu sync.Mutex
	got := make(map[ids.ProcID][]record)
	done := func() bool {
		mu.Lock()
		defer mu.Unlock()
		for p := 1; p <= s.Config().N; p++ {
			id := ids.ProcID(p)
			if !s.Pattern().Crashed(id, 0) && len(got[id]) < want {
				return false
			}
		}
		return true
	}
	for p := 1; p <= s.Config().N; p++ {
		id := ids.ProcID(p)
		send := senders[id]
		s.Spawn(id, func(e *sim.Env) {
			l := New(e)
			if send != nil {
				send(e, l)
			}
			for {
				m, ok := e.Step()
				if !ok {
					continue
				}
				inner, deliver := l.Handle(m)
				if !deliver {
					continue
				}
				mu.Lock()
				got[e.ID()] = append(got[e.ID()], record{inner.From, inner.Tag, inner.Payload})
				mu.Unlock()
			}
		})
	}
	s.Run(done)
	mu.Lock()
	defer mu.Unlock()
	out := make(map[ids.ProcID][]record, len(got))
	for k, v := range got {
		out[k] = append([]record(nil), v...)
	}
	return out
}

// TestAllCorrectDeliverOnce: every correct process R-delivers each
// broadcast exactly once, with From = origin.
func TestAllCorrectDeliverOnce(t *testing.T) {
	const n = 4
	s := sim.MustNew(sim.Config{N: n, T: 0, Seed: 42, MaxSteps: 200_000})
	senders := map[ids.ProcID]func(*sim.Env, *Layer){
		1: func(e *sim.Env, l *Layer) { l.Broadcast(sim.Intern("a"), "va") },
		3: func(e *sim.Env, l *Layer) { l.Broadcast(sim.Intern("b"), "vb"); l.Broadcast(sim.Intern("c"), "vc") },
	}
	got := runCollectors(t, s, senders, 3)
	for p := 1; p <= n; p++ {
		recs := got[ids.ProcID(p)]
		if len(recs) != 3 {
			t.Fatalf("process %d delivered %d messages, want 3: %v", p, len(recs), recs)
		}
		count := map[string]int{}
		for _, r := range recs {
			count[r.tag.String()]++
			switch r.tag.String() {
			case "a":
				if r.from != 1 || r.val != "va" {
					t.Errorf("process %d: bad record %v", p, r)
				}
			case "b", "c":
				if r.from != 3 {
					t.Errorf("process %d: bad origin %v", p, r)
				}
			default:
				t.Errorf("process %d: unexpected tag %q", p, r.tag)
			}
		}
		for tag, c := range count {
			if c != 1 {
				t.Errorf("process %d delivered %q %d times (integrity violation)", p, tag, c)
			}
		}
	}
}

// TestTerminationDespiteOriginCrash: the origin crashes early; if any
// correct process delivered, all correct processes must deliver.
func TestTerminationDespiteOriginCrash(t *testing.T) {
	const n = 5
	for seed := int64(0); seed < 10; seed++ {
		s := sim.MustNew(sim.Config{
			N: n, T: 1, Seed: seed, MaxSteps: 100_000,
			Crashes: map[ids.ProcID]sim.Time{1: 3},
		})
		var mu sync.Mutex
		delivered := map[ids.ProcID]bool{}
		for p := 1; p <= n; p++ {
			id := ids.ProcID(p)
			s.Spawn(id, func(e *sim.Env) {
				l := New(e)
				if e.ID() == 1 {
					l.Broadcast(sim.Intern("m"), 99)
				}
				for {
					m, ok := e.Step()
					if !ok {
						continue
					}
					if inner, del := l.Handle(m); del && inner.Tag == sim.Intern("m") {
						mu.Lock()
						delivered[e.ID()] = true
						mu.Unlock()
					}
				}
			})
		}
		s.Run(nil)
		mu.Lock()
		anyCorrect := false
		for p := 2; p <= n; p++ {
			if delivered[ids.ProcID(p)] {
				anyCorrect = true
			}
		}
		if anyCorrect {
			for p := 2; p <= n; p++ {
				if !delivered[ids.ProcID(p)] {
					t.Errorf("seed %d: process %d missed a message another correct process delivered", seed, p)
				}
			}
		}
		mu.Unlock()
	}
}

// TestPlainMessagesPassThrough.
func TestPlainMessagesPassThrough(t *testing.T) {
	s := sim.MustNew(sim.Config{N: 2, T: 0, Seed: 8, MaxSteps: 50_000})
	senders := map[ids.ProcID]func(*sim.Env, *Layer){
		1: func(e *sim.Env, l *Layer) { e.Send(2, sim.Intern("plain"), 7) },
	}
	var mu sync.Mutex
	var got []record
	s.Spawn(1, func(e *sim.Env) {
		l := New(e)
		senders[1](e, l)
		for {
			e.Step()
		}
	})
	s.Spawn(2, func(e *sim.Env) {
		l := New(e)
		for {
			m, ok := e.Step()
			if !ok {
				continue
			}
			if inner, del := l.Handle(m); del {
				mu.Lock()
				got = append(got, record{inner.From, inner.Tag, inner.Payload})
				mu.Unlock()
			}
		}
	})
	s.Run(func() bool { mu.Lock(); defer mu.Unlock(); return len(got) > 0 })
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].tag != sim.Intern("plain") || got[0].val != 7 || got[0].from != 1 {
		t.Fatalf("got %v", got)
	}
}
