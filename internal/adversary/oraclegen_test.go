package adversary

import (
	"reflect"
	"testing"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

func patternOf(t *testing.T, cfg sim.Config) *sim.Pattern {
	t.Helper()
	return sim.MustNew(cfg).Pattern()
}

// TestOracleGenDeterministic: expansion is a pure function of
// (family, n, t) — two expansions agree structurally, and variants
// differ from one another.
func TestOracleGenDeterministic(t *testing.T) {
	fams := []OracleFamily{
		{Kind: OracleLeaderFlap, Z: 2, Variants: 3, Seed: 7},
		{Kind: OracleScopeChurn, X: 3, Variants: 2, Seed: 8},
		{Kind: OracleAnarchyBurst, Variants: 3, Seed: 9},
		{Kind: OracleLateStab, Variants: 2, Seed: 10, Start: 100, Ramp: 250},
	}
	g := NewOracleGen(16, 7)
	a, err := g.ExpandAll(fams)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.ExpandAll(fams)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("expansion is not deterministic")
	}
	if len(a) != 10 {
		t.Fatalf("expanded %d scripts, want 10", len(a))
	}
	seen := map[string]bool{}
	for _, s := range a {
		if s.None() {
			t.Fatalf("script %+v is the zero point", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate script name %q", s.Name)
		}
		seen[s.Name] = true
	}
	// Variants of one family must actually differ.
	if reflect.DeepEqual(a[0].Leader, a[1].Leader) {
		t.Error("leader-flap variants drew identical timelines")
	}
}

// TestLeaderFlapConformance: pinned-settle flap scripts conform exactly
// when the pattern spares the settle set.
func TestLeaderFlapConformance(t *testing.T) {
	g := NewOracleGen(8, 3)
	scripts, err := g.Expand(OracleFamily{
		Kind: OracleLeaderFlap, Z: 2, Variants: 2, Seed: 3, Settle: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	horizon := sim.Time(4_000)
	ok := patternOf(t, sim.Config{N: 8, T: 3, Seed: 1, MaxSteps: 10,
		Crashes: map[ids.ProcID]sim.Time{8: 700}})
	bad := patternOf(t, sim.Config{N: 8, T: 3, Seed: 1, MaxSteps: 10,
		Crashes: map[ids.ProcID]sim.Time{1: 50, 2: 60}})
	for _, s := range scripts {
		if s.Class() != "omega-2" {
			t.Errorf("class label %q, want omega-2", s.Class())
		}
		if len(s.Leader) == 0 || !s.IsTimeline() {
			t.Fatalf("script %s has no leader timeline", s.Name)
		}
		final := s.Leader[len(s.Leader)-1]
		if !final.Common.Equal(ids.NewSet(1, 2)) {
			t.Errorf("script %s settles on %s, want pinned {1,2}", s.Name, final.Common)
		}
		if err := s.Conformance(ok, horizon); err != nil {
			t.Errorf("script %s nonconforming under sparing pattern: %v", s.Name, err)
		}
		if err := s.Conformance(bad, horizon); err == nil {
			t.Errorf("script %s conforms though its settle set crashed", s.Name)
		}
	}
}

// TestScopeChurnConformance: the hostile settle keeps exactly the scope
// sparing the leader; crashes outside the scope conform, a crash inside
// the scope breaks completeness.
func TestScopeChurnConformance(t *testing.T) {
	g := NewOracleGen(8, 3)
	scripts, err := g.Expand(OracleFamily{
		Kind: OracleScopeChurn, X: 3, Variants: 2, Seed: 4, Settle: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	horizon := sim.Time(4_000)
	outside := patternOf(t, sim.Config{N: 8, T: 3, Seed: 1, MaxSteps: 10,
		Crashes: map[ids.ProcID]sim.Time{7: 300}})
	inside := patternOf(t, sim.Config{N: 8, T: 3, Seed: 1, MaxSteps: 10,
		Crashes: map[ids.ProcID]sim.Time{2: 300}})
	for _, s := range scripts {
		if s.Class() != "evt-s-3" {
			t.Errorf("class label %q, want evt-s-3", s.Class())
		}
		if err := s.Conformance(outside, horizon); err != nil {
			t.Errorf("script %s nonconforming with crash outside scope: %v", s.Name, err)
		}
		if err := s.Conformance(inside, horizon); err == nil {
			t.Errorf("script %s conforms though a scope member crashed unsuspected", s.Name)
		}
	}
}

// TestParamScripts: anarchy bursts ramp intensity, late-stab ramps the
// stabilization time, and both conform for any pattern with room before
// the horizon.
func TestParamScripts(t *testing.T) {
	g := NewOracleGen(32, 6)
	bursts, err := g.Expand(OracleFamily{Kind: OracleAnarchyBurst, Variants: 3, Seed: 5, RatePermille: 900})
	if err != nil {
		t.Fatal(err)
	}
	pat := patternOf(t, sim.Config{N: 32, T: 6, Seed: 1, MaxSteps: 10})
	last := 0
	for _, s := range bursts {
		if s.IsTimeline() {
			t.Fatalf("%s: burst scripts are parameter scripts", s.Name)
		}
		if s.RatePermille <= 0 || s.RatePermille > 1000 {
			t.Errorf("%s: rate %d out of range", s.Name, s.RatePermille)
		}
		if s.RatePermille < last {
			t.Errorf("%s: intensity ramp not monotone (%d after %d)", s.Name, s.RatePermille, last)
		}
		last = s.RatePermille
		if s.Epoch < 1 {
			t.Errorf("%s: epoch %d", s.Name, s.Epoch)
		}
		if err := s.Conformance(pat, 6_000); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if err := s.Conformance(pat, s.StabilizeAt+1); err == nil {
			t.Errorf("%s: conforms with no stable suffix", s.Name)
		}
	}

	late, err := g.Expand(OracleFamily{Kind: OracleLateStab, Variants: 3, Seed: 6, Start: 400, Ramp: 300})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range late {
		if want := sim.Time(400 + v*300); s.StabilizeAt != want {
			t.Errorf("late-stab variant %d stabilizes at %d, want %d", v, s.StabilizeAt, want)
		}
		if err := s.Conformance(pat, 6_000); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

// TestExpandAllRejectsDuplicateNames: same-kind same-seed families
// differing only in timing knobs would collide on script (and schedule)
// names — report rows would merge distinct dimension points — so both
// generators refuse the expansion.
func TestExpandAllRejectsDuplicateNames(t *testing.T) {
	og := NewOracleGen(8, 3)
	if _, err := og.ExpandAll([]OracleFamily{
		{Kind: OracleLeaderFlap, Z: 2, Seed: 7, Period: 80},
		{Kind: OracleLeaderFlap, Z: 2, Seed: 7, Period: 40},
	}); err == nil {
		t.Error("duplicate oracle script names accepted")
	}
	sg := NewScheduleGen(8, 3)
	if _, err := sg.ExpandAll([]Family{
		{Kind: KindStaggered, Count: 2, Seed: 7, Spacing: 80},
		{Kind: KindStaggered, Count: 2, Seed: 7, Spacing: 40},
	}); err == nil {
		t.Error("duplicate schedule names accepted")
	}
	// Distinct seeds keep both legal.
	if _, err := og.ExpandAll([]OracleFamily{
		{Kind: OracleLeaderFlap, Z: 2, Seed: 7},
		{Kind: OracleLeaderFlap, Z: 2, Seed: 8},
	}); err != nil {
		t.Errorf("distinct-seed families rejected: %v", err)
	}
}

// TestOracleGenDegenerateSize: a legal single-process system expands
// timeline families without panicking (the disagreement draws clamp to
// the system size).
func TestOracleGenDegenerateSize(t *testing.T) {
	g := NewOracleGen(1, 0)
	for _, f := range []OracleFamily{
		{Kind: OracleLeaderFlap, Z: 1, Variants: 2, Seed: 1},
		{Kind: OracleScopeChurn, X: 1, Variants: 2, Seed: 2},
	} {
		if _, err := g.Expand(f); err != nil {
			t.Errorf("family %+v rejected at n=1: %v", f, err)
		}
	}
}

// TestOracleGenRejects: malformed families fail expansion loudly.
func TestOracleGenRejects(t *testing.T) {
	g := NewOracleGen(8, 3)
	for _, f := range []OracleFamily{
		{Kind: "no-such-kind"},
		{Kind: OracleLeaderFlap, Z: 9},
		{Kind: OracleScopeChurn, X: 9},
		{Kind: OracleLeaderFlap, Settle: []int{0}},
		{Kind: OracleLeaderFlap, Settle: []int{9}},
		{Kind: OracleLeaderFlap, Z: 1, Settle: []int{1, 2}},
		{Kind: OracleScopeChurn, X: 3, Settle: []int{1, 2}},
		{Kind: OracleLateStab, Y: 9},
		{Kind: OracleAnarchyBurst, X: -1},
	} {
		if _, err := g.Expand(f); err == nil {
			t.Errorf("family %+v accepted", f)
		}
	}
}

// TestParamScriptsDeclaredScopesOnly: parameter scripts carry class
// knobs only when the family declares them — the zero value composes
// with any combo — while timeline scripts always carry theirs.
func TestParamScriptsDeclaredScopesOnly(t *testing.T) {
	g := NewOracleGen(8, 3)
	undeclared, err := g.Expand(OracleFamily{Kind: OracleLateStab, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s := undeclared[0]; s.Z != 0 || s.X != 0 || s.Y != 0 {
		t.Errorf("undeclared param script carries scopes z=%d x=%d y=%d, want all 0", s.Z, s.X, s.Y)
	}
	declared, err := g.Expand(OracleFamily{Kind: OracleAnarchyBurst, Seed: 2, X: 2, Y: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s := declared[0]; s.X != 2 || s.Y != 1 {
		t.Errorf("declared param script carries x=%d y=%d, want 2, 1", s.X, s.Y)
	}
	timeline, err := g.Expand(OracleFamily{Kind: OracleScopeChurn, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s := timeline[0]; s.X != 4 { // t+1 default
		t.Errorf("scope-churn timeline carries x=%d, want defaulted 4", s.X)
	}
}

// TestExpandPair: pair expansion is deterministic, zips role variants,
// broadcasts a one-variant role, and defaults the role scopes.
func TestExpandPair(t *testing.T) {
	g := NewOracleGen(8, 3)
	f := OraclePairFamily{
		S:   OracleFamily{Kind: OracleScopeChurn, Seed: 1, Settle: []int{1, 2, 3, 4}},
		Phi: OracleFamily{Kind: OracleLateStab, Seed: 2, Variants: 3, Start: 400, Ramp: 100},
	}
	a, err := g.ExpandPair(f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.ExpandPair(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("pair expansion is not deterministic")
	}
	if len(a) != 3 {
		t.Fatalf("expanded %d joint scripts, want 3 (phi side broadcast)", len(a))
	}
	for v, s := range a {
		if !s.IsPair() || s.Kind != OraclePairKind {
			t.Fatalf("script %q is not a pair", s.Name)
		}
		if s.Pair.S.X != 4 { // defaulted to t+1
			t.Errorf("variant %d S-role x=%d, want defaulted 4", v, s.Pair.S.X)
		}
		if s.Pair.Phi.Y != 1 {
			t.Errorf("variant %d phi-role y=%d, want defaulted 1", v, s.Pair.Phi.Y)
		}
		if !reflect.DeepEqual(s.Pair.S, a[0].Pair.S) {
			t.Errorf("variant %d: one-variant S role not broadcast", v)
		}
		if want := sim.Time(400 + v*100); s.Pair.Phi.StabilizeAt != want {
			t.Errorf("variant %d phi role stabilizes at %d, want %d", v, s.Pair.Phi.StabilizeAt, want)
		}
		if want := s.Pair.S.Name + "+" + s.Pair.Phi.Name; s.Name != want {
			t.Errorf("joint name %q, want %q", s.Name, want)
		}
	}
	if a[0].Class() != "evt-s-4+gt-phi-1" {
		t.Errorf("joint class %q, want evt-s-4+gt-phi-1", a[0].Class())
	}

	// A ground-truth S role renders its own class label.
	gt, err := g.ExpandPair(OraclePairFamily{
		S:   OracleFamily{Kind: OracleLateStab, Seed: 3, X: 2},
		Phi: OracleFamily{Kind: OracleAnarchyBurst, Seed: 4, Y: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gt[0].Class() != "gt-s-2+gt-phi-2" {
		t.Errorf("joint class %q, want gt-s-2+gt-phi-2", gt[0].Class())
	}
}

// TestExpandPairRejects: wrong-role kinds and non-zippable variant
// counts fail expansion loudly.
func TestExpandPairRejects(t *testing.T) {
	g := NewOracleGen(8, 3)
	for _, f := range []OraclePairFamily{
		{S: OracleFamily{Kind: OracleLeaderFlap}, Phi: OracleFamily{Kind: OracleLateStab}},
		{S: OracleFamily{Kind: OracleScopeChurn}, Phi: OracleFamily{Kind: OracleScopeChurn}},
		{S: OracleFamily{Kind: OracleScopeChurn}, Phi: OracleFamily{Kind: OracleLeaderFlap}},
		{S: OracleFamily{Kind: "no-such-kind"}, Phi: OracleFamily{Kind: OracleLateStab}},
		{S: OracleFamily{Kind: OracleScopeChurn, Variants: 2}, Phi: OracleFamily{Kind: OracleLateStab, Variants: 3}},
		{S: OracleFamily{Kind: OracleScopeChurn, X: 9}, Phi: OracleFamily{Kind: OracleLateStab}},
		{S: OracleFamily{Kind: OracleScopeChurn}, Phi: OracleFamily{Kind: OracleLateStab, Y: 9}},
	} {
		if _, err := g.ExpandPair(f); err == nil {
			t.Errorf("pair family %+v accepted", f)
		}
	}
}

// TestExpandSuiteDedup: singles and pairs share one name space, and a
// pair family colliding with itself is rejected like a single would be.
func TestExpandSuiteDedup(t *testing.T) {
	g := NewOracleGen(8, 3)
	pair := OraclePairFamily{
		S:   OracleFamily{Kind: OracleScopeChurn, Seed: 5},
		Phi: OracleFamily{Kind: OracleLateStab, Seed: 6},
	}
	out, err := g.ExpandSuite(
		[]OracleFamily{{Kind: OracleLateStab, Seed: 7}},
		[]OraclePairFamily{pair},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("suite expanded %d scripts, want 2", len(out))
	}
	if out[0].IsPair() || !out[1].IsPair() {
		t.Fatal("suite order: singles must precede pairs")
	}
	if _, err := g.ExpandSuite(nil, []OraclePairFamily{pair, pair}); err == nil {
		t.Error("duplicate pair names accepted")
	}
}
