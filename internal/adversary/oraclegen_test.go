package adversary

import (
	"reflect"
	"testing"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

func patternOf(t *testing.T, cfg sim.Config) *sim.Pattern {
	t.Helper()
	return sim.MustNew(cfg).Pattern()
}

// TestOracleGenDeterministic: expansion is a pure function of
// (family, n, t) — two expansions agree structurally, and variants
// differ from one another.
func TestOracleGenDeterministic(t *testing.T) {
	fams := []OracleFamily{
		{Kind: OracleLeaderFlap, Z: 2, Variants: 3, Seed: 7},
		{Kind: OracleScopeChurn, X: 3, Variants: 2, Seed: 8},
		{Kind: OracleAnarchyBurst, Variants: 3, Seed: 9},
		{Kind: OracleLateStab, Variants: 2, Seed: 10, Start: 100, Ramp: 250},
	}
	g := NewOracleGen(16, 7)
	a, err := g.ExpandAll(fams)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.ExpandAll(fams)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("expansion is not deterministic")
	}
	if len(a) != 10 {
		t.Fatalf("expanded %d scripts, want 10", len(a))
	}
	seen := map[string]bool{}
	for _, s := range a {
		if s.None() {
			t.Fatalf("script %+v is the zero point", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate script name %q", s.Name)
		}
		seen[s.Name] = true
	}
	// Variants of one family must actually differ.
	if reflect.DeepEqual(a[0].Leader, a[1].Leader) {
		t.Error("leader-flap variants drew identical timelines")
	}
}

// TestLeaderFlapConformance: pinned-settle flap scripts conform exactly
// when the pattern spares the settle set.
func TestLeaderFlapConformance(t *testing.T) {
	g := NewOracleGen(8, 3)
	scripts, err := g.Expand(OracleFamily{
		Kind: OracleLeaderFlap, Z: 2, Variants: 2, Seed: 3, Settle: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	horizon := sim.Time(4_000)
	ok := patternOf(t, sim.Config{N: 8, T: 3, Seed: 1, MaxSteps: 10,
		Crashes: map[ids.ProcID]sim.Time{8: 700}})
	bad := patternOf(t, sim.Config{N: 8, T: 3, Seed: 1, MaxSteps: 10,
		Crashes: map[ids.ProcID]sim.Time{1: 50, 2: 60}})
	for _, s := range scripts {
		if s.Class() != "omega-2" {
			t.Errorf("class label %q, want omega-2", s.Class())
		}
		if len(s.Leader) == 0 || !s.IsTimeline() {
			t.Fatalf("script %s has no leader timeline", s.Name)
		}
		final := s.Leader[len(s.Leader)-1]
		if !final.Common.Equal(ids.NewSet(1, 2)) {
			t.Errorf("script %s settles on %s, want pinned {1,2}", s.Name, final.Common)
		}
		if err := s.Conformance(ok, horizon); err != nil {
			t.Errorf("script %s nonconforming under sparing pattern: %v", s.Name, err)
		}
		if err := s.Conformance(bad, horizon); err == nil {
			t.Errorf("script %s conforms though its settle set crashed", s.Name)
		}
	}
}

// TestScopeChurnConformance: the hostile settle keeps exactly the scope
// sparing the leader; crashes outside the scope conform, a crash inside
// the scope breaks completeness.
func TestScopeChurnConformance(t *testing.T) {
	g := NewOracleGen(8, 3)
	scripts, err := g.Expand(OracleFamily{
		Kind: OracleScopeChurn, X: 3, Variants: 2, Seed: 4, Settle: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	horizon := sim.Time(4_000)
	outside := patternOf(t, sim.Config{N: 8, T: 3, Seed: 1, MaxSteps: 10,
		Crashes: map[ids.ProcID]sim.Time{7: 300}})
	inside := patternOf(t, sim.Config{N: 8, T: 3, Seed: 1, MaxSteps: 10,
		Crashes: map[ids.ProcID]sim.Time{2: 300}})
	for _, s := range scripts {
		if s.Class() != "evt-s-3" {
			t.Errorf("class label %q, want evt-s-3", s.Class())
		}
		if err := s.Conformance(outside, horizon); err != nil {
			t.Errorf("script %s nonconforming with crash outside scope: %v", s.Name, err)
		}
		if err := s.Conformance(inside, horizon); err == nil {
			t.Errorf("script %s conforms though a scope member crashed unsuspected", s.Name)
		}
	}
}

// TestParamScripts: anarchy bursts ramp intensity, late-stab ramps the
// stabilization time, and both conform for any pattern with room before
// the horizon.
func TestParamScripts(t *testing.T) {
	g := NewOracleGen(32, 6)
	bursts, err := g.Expand(OracleFamily{Kind: OracleAnarchyBurst, Variants: 3, Seed: 5, RatePermille: 900})
	if err != nil {
		t.Fatal(err)
	}
	pat := patternOf(t, sim.Config{N: 32, T: 6, Seed: 1, MaxSteps: 10})
	last := 0
	for _, s := range bursts {
		if s.IsTimeline() {
			t.Fatalf("%s: burst scripts are parameter scripts", s.Name)
		}
		if s.RatePermille <= 0 || s.RatePermille > 1000 {
			t.Errorf("%s: rate %d out of range", s.Name, s.RatePermille)
		}
		if s.RatePermille < last {
			t.Errorf("%s: intensity ramp not monotone (%d after %d)", s.Name, s.RatePermille, last)
		}
		last = s.RatePermille
		if s.Epoch < 1 {
			t.Errorf("%s: epoch %d", s.Name, s.Epoch)
		}
		if err := s.Conformance(pat, 6_000); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if err := s.Conformance(pat, s.StabilizeAt+1); err == nil {
			t.Errorf("%s: conforms with no stable suffix", s.Name)
		}
	}

	late, err := g.Expand(OracleFamily{Kind: OracleLateStab, Variants: 3, Seed: 6, Start: 400, Ramp: 300})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range late {
		if want := sim.Time(400 + v*300); s.StabilizeAt != want {
			t.Errorf("late-stab variant %d stabilizes at %d, want %d", v, s.StabilizeAt, want)
		}
		if err := s.Conformance(pat, 6_000); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

// TestExpandAllRejectsDuplicateNames: same-kind same-seed families
// differing only in timing knobs would collide on script (and schedule)
// names — report rows would merge distinct dimension points — so both
// generators refuse the expansion.
func TestExpandAllRejectsDuplicateNames(t *testing.T) {
	og := NewOracleGen(8, 3)
	if _, err := og.ExpandAll([]OracleFamily{
		{Kind: OracleLeaderFlap, Z: 2, Seed: 7, Period: 80},
		{Kind: OracleLeaderFlap, Z: 2, Seed: 7, Period: 40},
	}); err == nil {
		t.Error("duplicate oracle script names accepted")
	}
	sg := NewScheduleGen(8, 3)
	if _, err := sg.ExpandAll([]Family{
		{Kind: KindStaggered, Count: 2, Seed: 7, Spacing: 80},
		{Kind: KindStaggered, Count: 2, Seed: 7, Spacing: 40},
	}); err == nil {
		t.Error("duplicate schedule names accepted")
	}
	// Distinct seeds keep both legal.
	if _, err := og.ExpandAll([]OracleFamily{
		{Kind: OracleLeaderFlap, Z: 2, Seed: 7},
		{Kind: OracleLeaderFlap, Z: 2, Seed: 8},
	}); err != nil {
		t.Errorf("distinct-seed families rejected: %v", err)
	}
}

// TestOracleGenDegenerateSize: a legal single-process system expands
// timeline families without panicking (the disagreement draws clamp to
// the system size).
func TestOracleGenDegenerateSize(t *testing.T) {
	g := NewOracleGen(1, 0)
	for _, f := range []OracleFamily{
		{Kind: OracleLeaderFlap, Z: 1, Variants: 2, Seed: 1},
		{Kind: OracleScopeChurn, X: 1, Variants: 2, Seed: 2},
	} {
		if _, err := g.Expand(f); err != nil {
			t.Errorf("family %+v rejected at n=1: %v", f, err)
		}
	}
}

// TestOracleGenRejects: malformed families fail expansion loudly.
func TestOracleGenRejects(t *testing.T) {
	g := NewOracleGen(8, 3)
	for _, f := range []OracleFamily{
		{Kind: "no-such-kind"},
		{Kind: OracleLeaderFlap, Z: 9},
		{Kind: OracleScopeChurn, X: 9},
		{Kind: OracleLeaderFlap, Settle: []int{0}},
		{Kind: OracleLeaderFlap, Settle: []int{9}},
		{Kind: OracleLeaderFlap, Z: 1, Settle: []int{1, 2}},
		{Kind: OracleScopeChurn, X: 3, Settle: []int{1, 2}},
	} {
		if _, err := g.Expand(f); err == nil {
			t.Errorf("family %+v accepted", f)
		}
	}
}
