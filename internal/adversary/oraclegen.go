package adversary

import (
	"fmt"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// This file makes the *oracle* generative, the way schedulegen.go made
// the crash schedule generative: a sweep declares an OracleFamily — a
// kind of oracle misbehaviour plus its knobs — and OracleGen expands it
// deterministically into concrete oracle scripts. The paper's classes
// (S_x, ◇S_x, Ω_z, the φ/Ψ families) are defined by what their oracles
// may do, so sweeping over generated oracle behaviours explores exactly
// the dimension the definitions quantify over: which hostile histories
// an algorithm must survive.
//
// Two script shapes come out of an expansion:
//
//   - Timeline scripts (leader-flap, scope-churn): explicit LeaderStep /
//     SuspectStep timelines for the scripted drivers in internal/fd. A
//     timeline is pattern-blind — it fixes every output before knowing
//     which processes the cell's adversary crashes — so whether it stays
//     inside its declared class depends on the failure pattern, and
//     Conformance decides it per cell with the fd/check.go checkers.
//   - Parameter scripts (anarchy-burst, late-stab): stabilization time,
//     anarchy intensity and epoch overrides for the ground-truth
//     oracles, which are pattern-aware and stay in class by
//     construction for any legal parameters.
//
// Expansion is a pure function of (family, n, t): the same declaration
// always yields the same scripts, so sweep reports over generated
// oracles stay byte-reproducible and shardable.

// OracleFamily kinds understood by OracleGen.Expand.
const (
	// OracleLeaderFlap generates Ω_z timelines that flap: every Period
	// ticks from Start the served leader set is redrawn (occasionally
	// with per-process disagreement), until the script settles at
	// StabilizeAt on the Settle set (drawn if empty).
	OracleLeaderFlap = "leader-flap"
	// OracleScopeChurn generates ◇S_x timelines whose protected scope
	// churns: spurious suspicion sets are redrawn every Period ticks,
	// then the script settles hostile — everyone outside the final scope
	// Q (|Q| = x) suspects the protected leader forever.
	OracleScopeChurn = "scope-churn"
	// OracleAnarchyBurst generates parameter scripts with a seeded
	// intensity ramp: variant v runs its anarchy at a rate ramping
	// toward RatePermille, over short epochs, stabilizing only after the
	// burst window Start + Flaps·Period.
	OracleAnarchyBurst = "anarchy-burst"
	// OracleLateStab generates parameter scripts whose stabilization
	// time ramps across variants: variant v stabilizes at
	// Start + v·Ramp — the "how late can the oracle behave badly"
	// sweep.
	OracleLateStab = "late-stab"
)

// OracleFamily declares one generated oracle dimension point: a script
// kind, the class it claims to stay inside (Z for Ω_z timelines, X for
// ◇S_x timelines), and its knobs. Zero knobs default per kind; Variants
// is how many concrete scripts the family expands into (default 1),
// each drawn deterministically from Seed.
type OracleFamily struct {
	Kind     string `json:"kind"`
	Z        int    `json:"z,omitempty"` // declared Ω_z bound (leader scripts); 0 = 1
	X        int    `json:"x,omitempty"` // declared ◇S_x scope (suspect scripts); 0 = t+1
	Variants int    `json:"variants,omitempty"`
	Seed     int64  `json:"seed,omitempty"`

	Start       sim.Time `json:"start,omitempty"`        // first misbehaviour event; 0 = 50
	Period      sim.Time `json:"period,omitempty"`       // flap / burst spacing; 0 = 80
	Flaps       int      `json:"flaps,omitempty"`        // timeline segments before settling; 0 = 6
	StabilizeAt sim.Time `json:"stabilize_at,omitempty"` // settle tick; 0 = Start + Flaps·Period
	Ramp        sim.Time `json:"ramp,omitempty"`         // late-stab increment per variant; 0 = 200

	// Settle pins the set the timeline settles on (the final trusted set
	// of a leader script, the protected scope of a suspect script).
	// Empty = drawn from the seed. Pin it when the matrix's crash
	// patterns must not intersect it.
	Settle []int `json:"settle,omitempty"`

	RatePermille int      `json:"rate_permille,omitempty"` // anarchy-burst peak intensity; 0 = 400
	Epoch        sim.Time `json:"epoch,omitempty"`         // anarchy epoch override; 0 = leave default
}

// OracleScript is one concrete generated oracle: either an explicit
// timeline (Leader or Suspect non-empty) or a parameter configuration
// for a ground-truth oracle. The zero value means "no generated oracle"
// — the cell runs whatever oracle its protocol builds by default.
type OracleScript struct {
	Name string `json:"name,omitempty"`
	Kind string `json:"kind,omitempty"`
	Z    int    `json:"z,omitempty"`
	X    int    `json:"x,omitempty"`

	Leader  []fd.LeaderStep  `json:"leader,omitempty"`
	Suspect []fd.SuspectStep `json:"suspect,omitempty"`

	StabilizeAt  sim.Time `json:"stabilize_at,omitempty"`
	RatePermille int      `json:"rate_permille,omitempty"`
	Epoch        sim.Time `json:"epoch,omitempty"`
}

// None reports whether the script is the zero "no generated oracle"
// point.
func (s *OracleScript) None() bool { return s.Name == "" }

// IsTimeline reports whether the script carries an explicit output
// timeline (as opposed to ground-truth oracle parameters).
func (s *OracleScript) IsTimeline() bool { return len(s.Leader) > 0 || len(s.Suspect) > 0 }

// Class renders the declared class label for reports.
func (s *OracleScript) Class() string {
	switch {
	case len(s.Leader) > 0:
		return fmt.Sprintf("omega-%d", s.Z)
	case len(s.Suspect) > 0:
		return fmt.Sprintf("evt-s-%d", s.X)
	default:
		return "ground-truth"
	}
}

// Options renders a parameter script as ground-truth oracle options.
func (s *OracleScript) Options() []fd.Option {
	opts := []fd.Option{fd.WithStabilizeAt(s.StabilizeAt)}
	if s.RatePermille > 0 {
		opts = append(opts, fd.WithAnarchyRate(float64(s.RatePermille)/1000))
	}
	if s.Epoch > 0 {
		opts = append(opts, fd.WithEpoch(s.Epoch))
	}
	return opts
}

// conformMargin is the stable suffix a script must leave between its
// settling and the cell horizon for the eventual property to count as
// observed.
const conformMargin sim.Time = 64

// Conformance checks the script against its declared class for one
// failure pattern and horizon, via the fd/check.go checkers. It returns
// nil for the zero script (no generated oracle, nothing to check).
func (s *OracleScript) Conformance(pat *sim.Pattern, horizon sim.Time) error {
	switch {
	case s.None():
		return nil
	case len(s.Leader) > 0:
		return fd.CheckLeaderScript(s.Leader, pat, s.Z, horizon, conformMargin)
	case len(s.Suspect) > 0:
		return fd.CheckSuspectScript(s.Suspect, pat, s.X, false, horizon, conformMargin)
	default:
		return fd.CheckOracleParams(s.StabilizeAt, s.RatePermille, s.Epoch, horizon, conformMargin)
	}
}

// OracleGen expands oracle families against one system size, carrying no
// hidden state (expansion order does not matter).
type OracleGen struct {
	N, T int
}

// NewOracleGen builds a generator for a system of n processes with
// resilience bound t.
func NewOracleGen(n, t int) OracleGen { return OracleGen{N: n, T: t} }

// Expand turns one family into its concrete scripts.
func (g OracleGen) Expand(f OracleFamily) ([]OracleScript, error) {
	variants := f.Variants
	if variants <= 0 {
		variants = 1
	}
	start := f.Start
	if start <= 0 {
		start = 50
	}
	period := f.Period
	if period <= 0 {
		period = 80
	}
	flaps := f.Flaps
	if flaps <= 0 {
		flaps = 6
	}
	stab := f.StabilizeAt
	if stab <= 0 {
		stab = start + sim.Time(flaps)*period
	}
	ramp := f.Ramp
	if ramp <= 0 {
		ramp = 200
	}
	rate := f.RatePermille
	if rate <= 0 {
		rate = 400
	}
	z := f.Z
	if z <= 0 {
		z = 1
	}
	x := f.X
	if x <= 0 {
		x = g.T + 1
	}
	switch f.Kind {
	case OracleLeaderFlap:
		if z > g.N {
			return nil, fmt.Errorf("adversary: oracle family %q declares z=%d > n=%d", f.Kind, z, g.N)
		}
	case OracleScopeChurn:
		if x > g.N {
			return nil, fmt.Errorf("adversary: oracle family %q declares x=%d > n=%d", f.Kind, x, g.N)
		}
	case OracleAnarchyBurst, OracleLateStab:
		// Parameter scripts: no size-dependent class knob to validate.
	default:
		return nil, fmt.Errorf("adversary: unknown oracle family kind %q", f.Kind)
	}
	settle, err := g.settleSet(f)
	if err != nil {
		return nil, err
	}
	// A pinned settle set inconsistent with the declared class knob is a
	// family-wide configuration error: reject it here, at the altitude
	// where z/x/member ranges are already validated, instead of failing
	// every cell's conformance check downstream.
	if f.Kind == OracleLeaderFlap && !settle.IsEmpty() && settle.Size() > z {
		return nil, fmt.Errorf("adversary: oracle family %q settle set has %d members > declared z=%d", f.Kind, settle.Size(), z)
	}
	if f.Kind == OracleScopeChurn && !settle.IsEmpty() && settle.Size() < x {
		return nil, fmt.Errorf("adversary: oracle family %q settle scope has %d members < declared x=%d", f.Kind, settle.Size(), x)
	}

	out := make([]OracleScript, 0, variants)
	for v := 0; v < variants; v++ {
		r := newDraw(f.Seed, int64(v), int64(g.N), int64(g.T), kindSalt(f.Kind))
		s := OracleScript{Kind: f.Kind, Z: z, X: x}
		switch f.Kind {
		case OracleLeaderFlap:
			s.Name = fmt.Sprintf("%s-z%d-s%d-v%d", f.Kind, z, f.Seed, v)
			s.StabilizeAt = stab
			s.Leader = g.leaderFlap(r, z, start, period, flaps, stab, settle)
		case OracleScopeChurn:
			s.Name = fmt.Sprintf("%s-x%d-s%d-v%d", f.Kind, x, f.Seed, v)
			s.StabilizeAt = stab
			s.Suspect = g.scopeChurn(r, x, start, period, flaps, stab, settle)
		case OracleAnarchyBurst:
			s.Name = fmt.Sprintf("%s-r%d-s%d-v%d", f.Kind, rate, f.Seed, v)
			s.StabilizeAt = stab
			// Seeded intensity ramp: variant v runs at a rate climbing
			// toward the declared peak, jittered so two variants never
			// share an anarchy stream.
			s.RatePermille = rate*(v+1)/variants + r.intn(50)
			if s.RatePermille > 1000 {
				s.RatePermille = 1000
			}
			s.Epoch = f.Epoch
			if s.Epoch <= 0 {
				s.Epoch = 4 + sim.Time(r.intn(8)) // short epochs: bursty churn
			}
		case OracleLateStab:
			s.Name = fmt.Sprintf("%s-s%d-v%d", f.Kind, f.Seed, v)
			s.StabilizeAt = start + sim.Time(v)*ramp
			s.RatePermille = f.RatePermille
			s.Epoch = f.Epoch
		}
		out = append(out, s)
	}
	return out, nil
}

// settleSet resolves the family's pinned settle set (nil when unpinned).
func (g OracleGen) settleSet(f OracleFamily) (ids.Set, error) {
	if len(f.Settle) == 0 {
		return ids.EmptySet(), nil
	}
	var s ids.Set
	for _, p := range f.Settle {
		if p < 1 || p > g.N {
			return ids.EmptySet(), fmt.Errorf("adversary: oracle family %q settle member %d outside 1..%d", f.Kind, p, g.N)
		}
		s = s.Add(ids.ProcID(p))
	}
	return s, nil
}

// drawSet draws a set of exactly size distinct members of 1..n.
func (g OracleGen) drawSet(r *draw, size int) ids.Set {
	var s ids.Set
	for _, p := range r.draw(size, g.N) {
		s = s.Add(p)
	}
	return s
}

// leaderFlap builds one flapping Ω_z timeline: flaps redrawn sets (every
// third flap disagreeing per process), then the settle step.
func (g OracleGen) leaderFlap(r *draw, z int, start, period sim.Time, flaps int, stab sim.Time, settle ids.Set) []fd.LeaderStep {
	steps := make([]fd.LeaderStep, 0, flaps+2)
	steps = append(steps, fd.LeaderStep{At: 0, Common: g.drawSet(r, 1+r.intn(z))})
	for i := 0; i < flaps; i++ {
		at := start + sim.Time(i)*period
		if at >= stab {
			break
		}
		step := fd.LeaderStep{At: at, Common: g.drawSet(r, 1+r.intn(z))}
		if i%3 == 2 {
			// Disagreement flap: a couple of drawn readers see their own
			// set (fewer when the system is smaller than the draw).
			step.PerProc = map[ids.ProcID]ids.Set{}
			for _, p := range r.draw(min(2, g.N), g.N) {
				step.PerProc[p] = g.drawSet(r, 1+r.intn(z))
			}
		}
		steps = append(steps, step)
	}
	final := settle
	if final.IsEmpty() {
		final = g.drawSet(r, z)
	}
	return append(steps, fd.LeaderStep{At: stab, Common: final})
}

// scopeChurn builds one ◇S_x timeline: churning spurious suspicions,
// then a hostile settle — the leader ℓ (the settle scope's lowest id)
// is suspected forever by everyone outside the scope Q, and Q's members
// read the same set with ℓ removed. Crash completeness must come from
// the settle set: the script suspects every non-scope process from
// StabilizeAt on, so any pattern whose faulty processes stay outside
// the scope conforms.
func (g OracleGen) scopeChurn(r *draw, x int, start, period sim.Time, flaps int, stab sim.Time, settle ids.Set) []fd.SuspectStep {
	steps := make([]fd.SuspectStep, 0, flaps+2)
	steps = append(steps, fd.SuspectStep{At: 0, Common: g.drawSet(r, r.intn(x+1))})
	for i := 0; i < flaps; i++ {
		at := start + sim.Time(i)*period
		if at >= stab {
			break
		}
		step := fd.SuspectStep{At: at, Common: g.drawSet(r, 1+r.intn(g.N-1))}
		if i%2 == 1 {
			step.PerProc = map[ids.ProcID]ids.Set{}
			for _, p := range r.draw(min(2, g.N), g.N) {
				step.PerProc[p] = g.drawSet(r, r.intn(g.N))
			}
		}
		steps = append(steps, step)
	}
	scope := settle
	if scope.IsEmpty() {
		scope = g.drawSet(r, x)
	}
	leader := scope.Members()[0]
	// Hostile settle: everyone suspects everything outside the scope,
	// plus the leader — except the scope's members, who spare ℓ.
	common := ids.FullSet(g.N).Minus(scope).Add(leader)
	spared := common.Remove(leader)
	over := make(map[ids.ProcID]ids.Set, scope.Size())
	scope.ForEach(func(p ids.ProcID) bool {
		over[p] = spared
		return true
	})
	return append(steps, fd.SuspectStep{At: stab, Common: common, PerProc: over})
}

// ExpandAll expands a family list in order into one script list. Script
// names key report rows (and only the class parameter, seed and variant
// are part of the name), so two families expanding to the same name —
// same kind, seed and class knob, differing only in timing — would make
// distinct dimension points indistinguishable; that is rejected here
// rather than silently merged downstream.
func (g OracleGen) ExpandAll(fams []OracleFamily) ([]OracleScript, error) {
	var out []OracleScript
	seen := make(map[string]bool)
	for _, f := range fams {
		ss, err := g.Expand(f)
		if err != nil {
			return nil, err
		}
		for _, s := range ss {
			if seen[s.Name] {
				return nil, fmt.Errorf("adversary: oracle families expand to duplicate script name %q — give same-kind families distinct seeds", s.Name)
			}
			seen[s.Name] = true
		}
		out = append(out, ss...)
	}
	return out, nil
}
