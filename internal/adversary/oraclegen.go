package adversary

import (
	"fmt"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// This file makes the *oracle* generative, the way schedulegen.go made
// the crash schedule generative: a sweep declares an OracleFamily — a
// kind of oracle misbehaviour plus its knobs — and OracleGen expands it
// deterministically into concrete oracle scripts. The paper's classes
// (S_x, ◇S_x, Ω_z, the φ/Ψ families) are defined by what their oracles
// may do, so sweeping over generated oracle behaviours explores exactly
// the dimension the definitions quantify over: which hostile histories
// an algorithm must survive.
//
// Two script shapes come out of an expansion:
//
//   - Timeline scripts (leader-flap, scope-churn): explicit LeaderStep /
//     SuspectStep timelines for the scripted drivers in internal/fd. A
//     timeline is pattern-blind — it fixes every output before knowing
//     which processes the cell's adversary crashes — so whether it stays
//     inside its declared class depends on the failure pattern, and
//     Conformance decides it per cell with the fd/check.go checkers.
//   - Parameter scripts (anarchy-burst, late-stab): stabilization time,
//     anarchy intensity and epoch overrides for the ground-truth
//     oracles, which are pattern-aware and stay in class by
//     construction for any legal parameters.
//
// Expansion is a pure function of (family, n, t): the same declaration
// always yields the same scripts, so sweep reports over generated
// oracles stay byte-reproducible and shardable.

// OracleFamily kinds understood by OracleGen.Expand.
const (
	// OracleLeaderFlap generates Ω_z timelines that flap: every Period
	// ticks from Start the served leader set is redrawn (occasionally
	// with per-process disagreement), until the script settles at
	// StabilizeAt on the Settle set (drawn if empty).
	OracleLeaderFlap = "leader-flap"
	// OracleScopeChurn generates ◇S_x timelines whose protected scope
	// churns: spurious suspicion sets are redrawn every Period ticks,
	// then the script settles hostile — everyone outside the final scope
	// Q (|Q| = x) suspects the protected leader forever.
	OracleScopeChurn = "scope-churn"
	// OracleAnarchyBurst generates parameter scripts with a seeded
	// intensity ramp: variant v runs its anarchy at a rate ramping
	// toward RatePermille, over short epochs, stabilizing only after the
	// burst window Start + Flaps·Period.
	OracleAnarchyBurst = "anarchy-burst"
	// OracleLateStab generates parameter scripts whose stabilization
	// time ramps across variants: variant v stabilizes at
	// Start + v·Ramp — the "how late can the oracle behave badly"
	// sweep.
	OracleLateStab = "late-stab"
)

// OracleFamily declares one generated oracle dimension point: a script
// kind, the class it claims to stay inside (Z for Ω_z timelines, X for
// ◇S_x timelines, Y for φ_y parameter scripts), and its knobs. Zero
// knobs default per kind; Variants is how many concrete scripts the
// family expands into (default 1), each drawn deterministically from
// Seed. Timeline kinds always carry their class knob; parameter kinds
// carry Z/X/Y only when declared here, so an undeclared scope composes
// with any combo while a declared one is validated against it.
type OracleFamily struct {
	Kind     string `json:"kind"`
	Z        int    `json:"z,omitempty"` // declared Ω_z bound (leader scripts); 0 = 1
	X        int    `json:"x,omitempty"` // declared ◇S_x scope (suspect scripts); 0 = t+1
	Y        int    `json:"y,omitempty"` // declared φ_y scope (parameter scripts); 0 = undeclared
	Variants int    `json:"variants,omitempty"`
	Seed     int64  `json:"seed,omitempty"`

	Start       sim.Time `json:"start,omitempty"`        // first misbehaviour event; 0 = 50
	Period      sim.Time `json:"period,omitempty"`       // flap / burst spacing; 0 = 80
	Flaps       int      `json:"flaps,omitempty"`        // timeline segments before settling; 0 = 6
	StabilizeAt sim.Time `json:"stabilize_at,omitempty"` // settle tick; 0 = Start + Flaps·Period
	Ramp        sim.Time `json:"ramp,omitempty"`         // late-stab increment per variant; 0 = 200

	// Settle pins the set the timeline settles on (the final trusted set
	// of a leader script, the protected scope of a suspect script).
	// Empty = drawn from the seed. Pin it when the matrix's crash
	// patterns must not intersect it.
	Settle []int `json:"settle,omitempty"`

	RatePermille int      `json:"rate_permille,omitempty"` // anarchy-burst peak intensity; 0 = 400
	Epoch        sim.Time `json:"epoch,omitempty"`         // anarchy epoch override; 0 = leave default
}

// OracleScript is one concrete generated oracle: an explicit timeline
// (Leader or Suspect non-empty), a parameter configuration for a
// ground-truth oracle, or a Pair of per-role scripts for the addition
// protocols. The zero value means "no generated oracle" — the cell runs
// whatever oracle its protocol builds by default.
type OracleScript struct {
	Name string `json:"name,omitempty"`
	Kind string `json:"kind,omitempty"`
	Z    int    `json:"z,omitempty"`
	X    int    `json:"x,omitempty"`
	Y    int    `json:"y,omitempty"`

	Leader  []fd.LeaderStep  `json:"leader,omitempty"`
	Suspect []fd.SuspectStep `json:"suspect,omitempty"`

	StabilizeAt  sim.Time `json:"stabilize_at,omitempty"`
	RatePermille int      `json:"rate_permille,omitempty"`
	Epoch        sim.Time `json:"epoch,omitempty"`

	// Pair carries the two role scripts of a paired oracle (see
	// OraclePairFamily). When set, the top-level timeline and parameter
	// fields above are unused; each role script is a complete single-role
	// OracleScript of its own.
	Pair *OraclePair `json:"pair,omitempty"`
}

// OraclePairKind is the Kind of scripts produced by ExpandPair.
const OraclePairKind = "pair"

// OraclePair is the payload of a paired script: one script per oracle
// role of an addition protocol. S feeds the suspector role (a suspect
// timeline or ground-truth S_x/◇S_x parameters, scope S.X), Phi feeds
// the querier role (ground-truth φ_y/◇φ_y parameters, scope Phi.Y).
type OraclePair struct {
	S   OracleScript `json:"s"`
	Phi OracleScript `json:"phi"`
}

// None reports whether the script is the zero "no generated oracle"
// point.
func (s *OracleScript) None() bool { return s.Name == "" }

// IsTimeline reports whether the script carries an explicit output
// timeline (as opposed to ground-truth oracle parameters or a pair).
func (s *OracleScript) IsTimeline() bool { return len(s.Leader) > 0 || len(s.Suspect) > 0 }

// IsPair reports whether the script carries per-role scripts for an
// addition protocol.
func (s *OracleScript) IsPair() bool { return s.Pair != nil }

// Class renders the declared class label for reports.
func (s *OracleScript) Class() string {
	switch {
	case s.Pair != nil:
		return s.Pair.Class()
	case len(s.Leader) > 0:
		return fmt.Sprintf("omega-%d", s.Z)
	case len(s.Suspect) > 0:
		return fmt.Sprintf("evt-s-%d", s.X)
	default:
		return "ground-truth"
	}
}

// Class renders the pair's joint class label: the S role's class, then
// the φ role's. Ground-truth roles are labelled by the scope they were
// generated for ("gt-s-2", "gt-phi-1"), scripted suspector roles keep
// the timeline label ("evt-s-2").
func (p *OraclePair) Class() string {
	s := fmt.Sprintf("gt-s-%d", p.S.X)
	if len(p.S.Suspect) > 0 {
		s = fmt.Sprintf("evt-s-%d", p.S.X)
	}
	return s + "+" + fmt.Sprintf("gt-phi-%d", p.Phi.Y)
}

// Options renders a parameter script as ground-truth oracle options.
func (s *OracleScript) Options() []fd.Option {
	opts := []fd.Option{fd.WithStabilizeAt(s.StabilizeAt)}
	if s.RatePermille > 0 {
		opts = append(opts, fd.WithAnarchyRate(float64(s.RatePermille)/1000))
	}
	if s.Epoch > 0 {
		opts = append(opts, fd.WithEpoch(s.Epoch))
	}
	return opts
}

// conformMargin is the stable suffix a script must leave between its
// settling and the cell horizon for the eventual property to count as
// observed.
const conformMargin sim.Time = 64

// Conformance checks the script against its declared class for one
// failure pattern and horizon, via the fd/check.go checkers. It returns
// nil for the zero script (no generated oracle, nothing to check).
// Paired scripts check both roles against their eventual classes;
// role-aware callers that know the cell's perpetual flag use the
// OraclePair methods directly.
func (s *OracleScript) Conformance(pat *sim.Pattern, horizon sim.Time) error {
	switch {
	case s.None():
		return nil
	case s.Pair != nil:
		if err := s.Pair.SConformance(pat, horizon, false); err != nil {
			return fmt.Errorf("S role: %w", err)
		}
		if err := s.Pair.PhiConformance(pat, horizon, false); err != nil {
			return fmt.Errorf("phi role: %w", err)
		}
		return nil
	case len(s.Leader) > 0:
		return fd.CheckLeaderScript(s.Leader, pat, s.Z, horizon, conformMargin)
	case len(s.Suspect) > 0:
		return fd.CheckSuspectScript(s.Suspect, pat, s.X, false, horizon, conformMargin)
	default:
		return fd.CheckOracleParams(s.StabilizeAt, s.RatePermille, s.Epoch, horizon, conformMargin)
	}
}

// SConformance checks the pair's suspector role against its declared
// class — S_x when perpetual, ◇S_x otherwise — for one failure pattern
// and horizon. Timeline roles go through the full per-pattern script
// checker; parameter roles through the role-aware parameter checker.
func (p *OraclePair) SConformance(pat *sim.Pattern, horizon sim.Time, perpetual bool) error {
	if len(p.S.Suspect) > 0 {
		return fd.CheckSuspectScript(p.S.Suspect, pat, p.S.X, perpetual, horizon, conformMargin)
	}
	return fd.CheckSuspectorParams(p.S.X, pat.N(), perpetual,
		p.S.StabilizeAt, p.S.RatePermille, p.S.Epoch, horizon, conformMargin)
}

// PhiConformance checks the pair's querier role against its declared
// class — φ_y when perpetual, ◇φ_y otherwise.
func (p *OraclePair) PhiConformance(pat *sim.Pattern, horizon sim.Time, perpetual bool) error {
	return fd.CheckQuerierParams(p.Phi.Y, pat.N(), perpetual,
		p.Phi.StabilizeAt, p.Phi.RatePermille, p.Phi.Epoch, horizon, conformMargin)
}

// OracleGen expands oracle families against one system size, carrying no
// hidden state (expansion order does not matter).
type OracleGen struct {
	N, T int
}

// NewOracleGen builds a generator for a system of n processes with
// resilience bound t.
func NewOracleGen(n, t int) OracleGen { return OracleGen{N: n, T: t} }

// Expand turns one family into its concrete scripts.
func (g OracleGen) Expand(f OracleFamily) ([]OracleScript, error) {
	variants := f.Variants
	if variants <= 0 {
		variants = 1
	}
	start := f.Start
	if start <= 0 {
		start = 50
	}
	period := f.Period
	if period <= 0 {
		period = 80
	}
	flaps := f.Flaps
	if flaps <= 0 {
		flaps = 6
	}
	stab := f.StabilizeAt
	if stab <= 0 {
		stab = start + sim.Time(flaps)*period
	}
	ramp := f.Ramp
	if ramp <= 0 {
		ramp = 200
	}
	rate := f.RatePermille
	if rate <= 0 {
		rate = 400
	}
	z := f.Z
	if z <= 0 {
		z = 1
	}
	x := f.X
	if x <= 0 {
		x = g.T + 1
	}
	switch f.Kind {
	case OracleLeaderFlap:
		if z > g.N {
			return nil, fmt.Errorf("adversary: oracle family %q declares z=%d > n=%d", f.Kind, z, g.N)
		}
	case OracleScopeChurn:
		if x > g.N {
			return nil, fmt.Errorf("adversary: oracle family %q declares x=%d > n=%d", f.Kind, x, g.N)
		}
	case OracleAnarchyBurst, OracleLateStab:
		// Parameter scripts validate class knobs only when declared: an
		// undeclared scope composes with any combo's oracle.
		if f.Z < 0 || f.Z > g.N || f.X < 0 || f.X > g.N || f.Y < 0 || f.Y > g.N {
			return nil, fmt.Errorf("adversary: oracle family %q declares scope z=%d/x=%d/y=%d outside 0..%d", f.Kind, f.Z, f.X, f.Y, g.N)
		}
	default:
		return nil, fmt.Errorf("adversary: unknown oracle family kind %q", f.Kind)
	}
	settle, err := g.settleSet(f)
	if err != nil {
		return nil, err
	}
	// A pinned settle set inconsistent with the declared class knob is a
	// family-wide configuration error: reject it here, at the altitude
	// where z/x/member ranges are already validated, instead of failing
	// every cell's conformance check downstream.
	if f.Kind == OracleLeaderFlap && !settle.IsEmpty() && settle.Size() > z {
		return nil, fmt.Errorf("adversary: oracle family %q settle set has %d members > declared z=%d", f.Kind, settle.Size(), z)
	}
	if f.Kind == OracleScopeChurn && !settle.IsEmpty() && settle.Size() < x {
		return nil, fmt.Errorf("adversary: oracle family %q settle scope has %d members < declared x=%d", f.Kind, settle.Size(), x)
	}

	out := make([]OracleScript, 0, variants)
	for v := 0; v < variants; v++ {
		r := newDraw(f.Seed, int64(v), int64(g.N), int64(g.T), kindSalt(f.Kind))
		// Timeline scripts always carry the class knob their timeline was
		// drawn for; parameter scripts carry only the scopes the family
		// declared (see OracleFamily), so the zero value keeps composing
		// with any combo while a declared scope is validated against it.
		s := OracleScript{Kind: f.Kind, Z: f.Z, X: f.X, Y: f.Y}
		switch f.Kind {
		case OracleLeaderFlap:
			s.Z, s.X, s.Y = z, x, 0
			s.Name = fmt.Sprintf("%s-z%d-s%d-v%d", f.Kind, z, f.Seed, v)
			s.StabilizeAt = stab
			s.Leader = g.leaderFlap(r, z, start, period, flaps, stab, settle)
		case OracleScopeChurn:
			s.Z, s.X, s.Y = z, x, 0
			s.Name = fmt.Sprintf("%s-x%d-s%d-v%d", f.Kind, x, f.Seed, v)
			s.StabilizeAt = stab
			s.Suspect = g.scopeChurn(r, x, start, period, flaps, stab, settle)
		case OracleAnarchyBurst:
			s.Name = fmt.Sprintf("%s-r%d-s%d-v%d", f.Kind, rate, f.Seed, v)
			s.StabilizeAt = stab
			// Seeded intensity ramp: variant v runs at a rate climbing
			// toward the declared peak, jittered so two variants never
			// share an anarchy stream.
			s.RatePermille = rate*(v+1)/variants + r.intn(50)
			if s.RatePermille > 1000 {
				s.RatePermille = 1000
			}
			s.Epoch = f.Epoch
			if s.Epoch <= 0 {
				s.Epoch = 4 + sim.Time(r.intn(8)) // short epochs: bursty churn
			}
		case OracleLateStab:
			s.Name = fmt.Sprintf("%s-s%d-v%d", f.Kind, f.Seed, v)
			s.StabilizeAt = start + sim.Time(v)*ramp
			s.RatePermille = f.RatePermille
			s.Epoch = f.Epoch
		}
		out = append(out, s)
	}
	return out, nil
}

// settleSet resolves the family's pinned settle set (nil when unpinned).
func (g OracleGen) settleSet(f OracleFamily) (ids.Set, error) {
	if len(f.Settle) == 0 {
		return ids.EmptySet(), nil
	}
	var s ids.Set
	for _, p := range f.Settle {
		if p < 1 || p > g.N {
			return ids.EmptySet(), fmt.Errorf("adversary: oracle family %q settle member %d outside 1..%d", f.Kind, p, g.N)
		}
		s = s.Add(ids.ProcID(p))
	}
	return s, nil
}

// drawSet draws a set of exactly size distinct members of 1..n.
func (g OracleGen) drawSet(r *draw, size int) ids.Set {
	var s ids.Set
	for _, p := range r.draw(size, g.N) {
		s = s.Add(p)
	}
	return s
}

// leaderFlap builds one flapping Ω_z timeline: flaps redrawn sets (every
// third flap disagreeing per process), then the settle step.
func (g OracleGen) leaderFlap(r *draw, z int, start, period sim.Time, flaps int, stab sim.Time, settle ids.Set) []fd.LeaderStep {
	steps := make([]fd.LeaderStep, 0, flaps+2)
	steps = append(steps, fd.LeaderStep{At: 0, Common: g.drawSet(r, 1+r.intn(z))})
	for i := 0; i < flaps; i++ {
		at := start + sim.Time(i)*period
		if at >= stab {
			break
		}
		step := fd.LeaderStep{At: at, Common: g.drawSet(r, 1+r.intn(z))}
		if i%3 == 2 {
			// Disagreement flap: a couple of drawn readers see their own
			// set (fewer when the system is smaller than the draw).
			step.PerProc = map[ids.ProcID]ids.Set{}
			for _, p := range r.draw(min(2, g.N), g.N) {
				step.PerProc[p] = g.drawSet(r, 1+r.intn(z))
			}
		}
		steps = append(steps, step)
	}
	final := settle
	if final.IsEmpty() {
		final = g.drawSet(r, z)
	}
	return append(steps, fd.LeaderStep{At: stab, Common: final})
}

// scopeChurn builds one ◇S_x timeline: churning spurious suspicions,
// then a hostile settle — the leader ℓ (the settle scope's lowest id)
// is suspected forever by everyone outside the scope Q, and Q's members
// read the same set with ℓ removed. Crash completeness must come from
// the settle set: the script suspects every non-scope process from
// StabilizeAt on, so any pattern whose faulty processes stay outside
// the scope conforms.
func (g OracleGen) scopeChurn(r *draw, x int, start, period sim.Time, flaps int, stab sim.Time, settle ids.Set) []fd.SuspectStep {
	steps := make([]fd.SuspectStep, 0, flaps+2)
	steps = append(steps, fd.SuspectStep{At: 0, Common: g.drawSet(r, r.intn(x+1))})
	for i := 0; i < flaps; i++ {
		at := start + sim.Time(i)*period
		if at >= stab {
			break
		}
		step := fd.SuspectStep{At: at, Common: g.drawSet(r, 1+r.intn(g.N-1))}
		if i%2 == 1 {
			step.PerProc = map[ids.ProcID]ids.Set{}
			for _, p := range r.draw(min(2, g.N), g.N) {
				step.PerProc[p] = g.drawSet(r, r.intn(g.N))
			}
		}
		steps = append(steps, step)
	}
	scope := settle
	if scope.IsEmpty() {
		scope = g.drawSet(r, x)
	}
	leader := scope.Members()[0]
	// Hostile settle: everyone suspects everything outside the scope,
	// plus the leader — except the scope's members, who spare ℓ.
	common := ids.FullSet(g.N).Minus(scope).Add(leader)
	spared := common.Remove(leader)
	over := make(map[ids.ProcID]ids.Set, scope.Size())
	scope.ForEach(func(p ids.ProcID) bool {
		over[p] = spared
		return true
	})
	return append(steps, fd.SuspectStep{At: stab, Common: common, PerProc: over})
}

// ExpandAll expands a family list in order into one script list. Script
// names key report rows (and only the class parameter, seed and variant
// are part of the name), so two families expanding to the same name —
// same kind, seed and class knob, differing only in timing — would make
// distinct dimension points indistinguishable; that is rejected here
// rather than silently merged downstream.
func (g OracleGen) ExpandAll(fams []OracleFamily) ([]OracleScript, error) {
	return g.ExpandSuite(fams, nil)
}

// OraclePairFamily declares one paired oracle dimension point for the
// addition protocols, which consume two oracles at once (two-wheels
// reads a ◇S_x and a ◇φ_y, add-s an S_x and a φ_y). Each role is its
// own OracleFamily: the S role may be a scope-churn timeline or a
// parameter family (its X declares the suspector scope, defaulting to
// t+1), the Phi role must be a parameter family — queriers have no
// timeline driver — with Y declaring the querier scope (default 1).
// The two role expansions are zipped variant by variant; a one-variant
// role broadcasts across the other's variants, so "one conforming ◇S_x
// against a ramp of ever-later ◇φ_y" is a single family with
// Phi.Variants = k.
type OraclePairFamily struct {
	S   OracleFamily `json:"s"`
	Phi OracleFamily `json:"phi"`
}

// ExpandPair turns one pair family into its concrete joint scripts.
func (g OracleGen) ExpandPair(f OraclePairFamily) ([]OracleScript, error) {
	sf, pf := f.S, f.Phi
	switch sf.Kind {
	case OracleScopeChurn, OracleAnarchyBurst, OracleLateStab:
	case OracleLeaderFlap:
		return nil, fmt.Errorf("adversary: oracle pair S role is a %q family — the role is read as a suspector", sf.Kind)
	default:
		return nil, fmt.Errorf("adversary: unknown oracle pair S role kind %q", sf.Kind)
	}
	switch pf.Kind {
	case OracleAnarchyBurst, OracleLateStab:
	default:
		return nil, fmt.Errorf("adversary: oracle pair phi role must be a parameter family (%s or %s), not %q — queriers have no timeline driver", OracleAnarchyBurst, OracleLateStab, pf.Kind)
	}
	// Pair roles always declare their scopes: the addition protocols read
	// both, so a silent "compose with anything" default would defeat the
	// per-role conformance verdicts.
	if sf.X <= 0 {
		sf.X = g.T + 1
	}
	if pf.Y <= 0 {
		pf.Y = 1
	}
	ss, err := g.Expand(sf)
	if err != nil {
		return nil, fmt.Errorf("oracle pair S role: %w", err)
	}
	ps, err := g.Expand(pf)
	if err != nil {
		return nil, fmt.Errorf("oracle pair phi role: %w", err)
	}
	if len(ss) != len(ps) && len(ss) != 1 && len(ps) != 1 {
		return nil, fmt.Errorf("adversary: oracle pair roles expand to %d and %d variants — they zip only when equal or one side is a single variant", len(ss), len(ps))
	}
	count := max(len(ss), len(ps))
	out := make([]OracleScript, 0, count)
	for v := 0; v < count; v++ {
		a := ss[min(v, len(ss)-1)]
		b := ps[min(v, len(ps)-1)]
		out = append(out, OracleScript{
			Name: a.Name + "+" + b.Name,
			Kind: OraclePairKind,
			Pair: &OraclePair{S: a, Phi: b},
		})
	}
	return out, nil
}

// ExpandSuite expands single-script families and pair families into one
// script list (singles first), sharing the duplicate-name rejection of
// ExpandAll across both dimensions.
func (g OracleGen) ExpandSuite(fams []OracleFamily, pairs []OraclePairFamily) ([]OracleScript, error) {
	var out []OracleScript
	seen := make(map[string]bool)
	add := func(ss []OracleScript) error {
		for _, s := range ss {
			if seen[s.Name] {
				return fmt.Errorf("adversary: oracle families expand to duplicate script name %q — give same-kind families distinct seeds", s.Name)
			}
			seen[s.Name] = true
		}
		out = append(out, ss...)
		return nil
	}
	for _, f := range fams {
		ss, err := g.Expand(f)
		if err != nil {
			return nil, err
		}
		if err := add(ss); err != nil {
			return nil, err
		}
	}
	for _, f := range pairs {
		ss, err := g.ExpandPair(f)
		if err != nil {
			return nil, err
		}
		if err := add(ss); err != nil {
			return nil, err
		}
	}
	return out, nil
}
