package adversary

import (
	"testing"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// TestObservationO1: with f ≤ t−y actual crashes, a φ_y's answers depend
// only on |X|, not on which processes form X — the information-theoretic
// core of Theorems 8 and 10. We iterate every subset of the informative
// region across two patterns with different crash sets of equal size.
func TestObservationO1(t *testing.T) {
	const (
		n  = 6
		tt = 3
		y  = 1 // informative region: 2 < |X| ≤ 3
	)
	cfgA := sim.Config{N: n, T: tt, Seed: 1, MaxSteps: 2_000, GST: 0,
		Crashes: map[ids.ProcID]sim.Time{1: 100, 2: 150}} // f = 2 = t−y
	cfgB := sim.Config{N: n, T: tt, Seed: 1, MaxSteps: 2_000, GST: 0,
		Crashes: map[ids.ProcID]sim.Time{5: 100, 6: 150}}

	answers := func(cfg sim.Config) map[int]bool {
		sys := sim.MustNew(cfg)
		phi := fd.NewPhi(sys, y)
		res := make(map[int]bool)
		sys.OnTick(func(now sim.Time) {
			if now != 1_000 {
				return
			}
			// Every 3-subset must answer identically (false: with only
			// t−y crashes no informative region is fully dead).
			r := ids.NewRing(ids.FullSet(n), 3)
			for i := uint64(0); i < r.Len(); i++ {
				got := phi.Query(3, r.Current())
				if prev, ok := res[3]; ok && prev != got {
					t.Errorf("cfg crash=%v: 3-subsets answer inconsistently", cfg.Crashes)
				}
				res[3] = got
				r.Next()
			}
		})
		sys.Run(nil)
		return res
	}

	ansA, ansB := answers(cfgA), answers(cfgB)
	if ansA[3] != ansB[3] {
		t.Errorf("answers differ across same-size crash patterns: %v vs %v", ansA, ansB)
	}
	if ansA[3] {
		t.Error("informative query answered true with f = t−y crashes")
	}
}

// TestTheorem9CrashVsDelay: the straw-man S_x → φ_y reducer must violate
// ◇φ_y's eventual safety. For each candidate stabilization time τ we
// build run R′ (E alive, delayed past τ) with the same oracle outputs as
// run R (E crashed): the reducer answers true about the live E after τ.
func TestTheorem9CrashVsDelay(t *testing.T) {
	const (
		n  = 5
		tt = 2
		y  = 1
		x  = 3 // x ≤ n−|E|: accuracy scope fits outside E
	)
	e := ids.NewSet(4, 5) // |E| = t−y+1 = 2: informative size
	for _, tau := range []sim.Time{500, 2_000, 5_000} {
		rp := RunPair{N: n, T: tt, E: e, CrashAt: 100, Horizon: tau + 1_000, Seed: 9}

		// Run R: E crashes; the reducer's liveness makes query(E) true.
		sysR := sim.MustNew(rp.ConfigR(tau + 2_000))
		suspR := rp.SuspectorForR(sysR, x, 1)
		reducerR := NewPhiFromS(suspR, tt, y)
		var trueAtR sim.Time = -1
		sysR.OnTick(func(now sim.Time) {
			if trueAtR < 0 && now > tau && reducerR.Query(1, e) {
				trueAtR = now
			}
		})
		sysR.Run(func() bool { return trueAtR >= 0 })
		if trueAtR < 0 {
			t.Fatalf("τ=%d: reducer never answered true in run R (liveness broken)", tau)
		}

		// Run R′: E is alive (correct), yet the oracle output — legal
		// for S_x — is identical, so the reducer answers true at the
		// same point: eventual safety violated after τ.
		sysP := sim.MustNew(rp.ConfigRPrime(tau + 2_000))
		suspP := rp.SuspectorForRPrime(sysP, x, 1)
		reducerP := NewPhiFromS(suspP, tt, y)
		var violatedAt sim.Time = -1
		sysP.OnTick(func(now sim.Time) {
			if violatedAt < 0 && now > tau && reducerP.Query(1, e) {
				violatedAt = now
			}
		})
		sysP.Run(func() bool { return violatedAt >= 0 })
		if violatedAt < 0 {
			t.Fatalf("τ=%d: no safety violation observed in run R′", tau)
		}
		if got := sysP.Pattern().Correct(); !e.SubsetOf(got) {
			t.Fatalf("τ=%d: E is not correct in run R′", tau)
		}
		if violatedAt <= tau {
			t.Fatalf("τ=%d: violation at %d not past the claimed stabilization", tau, violatedAt)
		}
	}
}

// TestScriptedSuspectorLegality: the scripted oracle used by the run pair
// really is of class S_x in both runs (checked by the class checker), so
// the contradiction cannot be blamed on an illegal oracle.
func TestScriptedSuspectorLegality(t *testing.T) {
	const (
		n  = 5
		tt = 2
		x  = 3
	)
	e := ids.NewSet(4, 5)
	rp := RunPair{N: n, T: tt, E: e, CrashAt: 100, Horizon: 3_000, Seed: 5}

	// Run R: E really crashes.
	sysR := sim.MustNew(rp.ConfigR(6_000))
	suspR := rp.SuspectorForR(sysR, x, 1)
	trR := fd.WatchSuspector(sysR, suspR)
	sysR.Run(nil)
	if err := trR.CheckSuspector(sysR.Pattern(), x, true, 1_000); err != nil {
		t.Errorf("run R oracle not S_%d: %v", x, err)
	}

	// Run R′: E correct; accuracy still holds (scope outside E), and
	// completeness is vacuous (nobody crashes).
	sysP := sim.MustNew(rp.ConfigRPrime(6_000))
	suspP := rp.SuspectorForRPrime(sysP, x, 1)
	trP := fd.WatchSuspector(sysP, suspP)
	sysP.Run(nil)
	if err := trP.CheckSuspector(sysP.Pattern(), x, true, 1_000); err != nil {
		t.Errorf("run R′ oracle not S_%d: %v", x, err)
	}
}

// TestTheorem10StrawMan: the φ_y → ◇S_x straw-man carries no accuracy
// information when f ≤ t−y: its output is identical across crash
// patterns, so in at least one pattern completeness or accuracy fails.
func TestTheorem10StrawMan(t *testing.T) {
	const (
		n  = 6
		tt = 3
		y  = 1
		x  = 2
	)
	outputs := func(crashes map[ids.ProcID]sim.Time) map[ids.ProcID]ids.Set {
		cfg := sim.Config{N: n, T: tt, Seed: 3, MaxSteps: 3_000, GST: 0, Crashes: crashes}
		sys := sim.MustNew(cfg)
		reducer := NewSFromPhi(fd.NewPhi(sys, y), n, tt, y)
		res := make(map[ids.ProcID]ids.Set)
		sys.OnTick(func(now sim.Time) {
			if now != 2_500 {
				return
			}
			for p := 1; p <= n; p++ {
				id := ids.ProcID(p)
				if !sys.Pattern().Crashed(id, now) {
					res[id] = reducer.Suspected(id)
				}
			}
		})
		sys.Run(nil)
		return res
	}

	a := outputs(map[ids.ProcID]sim.Time{1: 200, 2: 300}) // f = 2 = t−y
	b := outputs(map[ids.ProcID]sim.Time{3: 200, 4: 300})
	// Identical outputs at the common survivors — yet pattern A requires
	// {1,2} ⊆ suspected and pattern B requires {3,4} ⊆ suspected:
	// both cannot hold for the same (empty-ish) output.
	for p := 5; p <= n; p++ {
		id := ids.ProcID(p)
		if !a[id].Equal(b[id]) {
			t.Errorf("outputs of %v differ across indistinguishable patterns: %s vs %s", id, a[id], b[id])
		}
		if a[id].Contains(1) && a[id].Contains(3) {
			continue // would suspect everyone: then accuracy dies instead
		}
		if a[id].Contains(1) != b[id].Contains(3) {
			t.Errorf("asymmetric suspicion at %v", id)
		}
	}
	// Completeness fails in at least one pattern.
	completeA := a[5].Contains(1) && a[5].Contains(2)
	completeB := b[5].Contains(3) && b[5].Contains(4)
	if completeA && completeB {
		// Outputs are equal, so completeness in both means the reducer
		// suspects {1,2,3,4} unconditionally — check accuracy collapse.
		if a[5].Size() < 4 {
			t.Error("impossible: equal outputs complete in both patterns but small")
		}
	}
	if !completeA || !completeB {
		// Expected: strong completeness is violated in some pattern —
		// the theorem's conclusion, exhibited.
		return
	}
}

// TestRunPairConfigs: basic sanity of the generated configurations.
func TestRunPairConfigs(t *testing.T) {
	e := ids.NewSet(2, 3)
	rp := RunPair{N: 5, T: 2, E: e, CrashAt: 50, Horizon: 1_000, Seed: 1}
	cfgR := rp.ConfigR(2_000)
	if len(cfgR.Crashes) != 2 || cfgR.Crashes[2] != 50 {
		t.Errorf("ConfigR crashes = %v", cfgR.Crashes)
	}
	cfgP := rp.ConfigRPrime(2_000)
	if len(cfgP.Crashes) != 0 {
		t.Error("ConfigRPrime must not crash E")
	}
	if len(cfgP.Holds) != 1 || cfgP.Holds[0].Until != 1_000 {
		t.Errorf("ConfigRPrime holds = %v", cfgP.Holds)
	}
}
