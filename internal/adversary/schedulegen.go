package adversary

import (
	"fmt"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// This file makes the adversary generative: instead of hand-enumerating
// crash schedules, a sweep declares a Family — a *kind* of adversary
// behaviour plus its knobs — and the ScheduleGen expands it into
// concrete, named schedules. Expansion is a pure function of
// (family, n, t): the same declaration always yields the same
// schedules, on any machine, so sweep reports over generated
// adversaries stay byte-reproducible and shardable.
//
// The families are the recurring shapes of the paper's adversary
// arguments: staggered and clustered crashes (the failure patterns the
// grid classes are quantified over), cascades (worst-case sequential
// loss), and the message-hold scripts of the irreducibility proofs —
// partitions and silent regions, the "easy impossibility" executions in
// which a live region is indistinguishable from a crashed one.

// Family kinds understood by ScheduleGen.Expand.
const (
	// KindStaggered crashes Count processes one after another, spaced
	// roughly Spacing ticks apart from Start (times are jittered per
	// variant, victims drawn per variant).
	KindStaggered = "staggered"
	// KindClustered crashes a contiguous identity block of Count
	// processes simultaneously at Start.
	KindClustered = "clustered"
	// KindCascade crashes Count processes with geometrically growing
	// gaps: crash i falls at Start + Spacing·(2^i − 1).
	KindCascade = "cascade"
	// KindPartition splits Π into a drawn block of Count processes and
	// the rest, and holds every message crossing the cut (both
	// directions) sent during [Start, Start+Window) until the window
	// closes. No process crashes.
	KindPartition = "partition"
	// KindSilence draws a region E of Count processes and holds every
	// message E sends during [Start, Start+Window) until the window
	// closes — the run-R′ ingredient of the Theorem 9 construction,
	// as a reusable sweep dimension. No process crashes.
	KindSilence = "silence"
)

// Family declares one generated adversary dimension point: a schedule
// kind plus its knobs. The zero knobs default per kind; Variants is how
// many concrete schedules the family expands into (default 1), each
// drawn deterministically from Seed.
type Family struct {
	Kind     string   `json:"kind"`
	Count    int      `json:"count,omitempty"`    // crashes / block size; 0 = kind default
	Variants int      `json:"variants,omitempty"` // schedules generated; 0 = 1
	Seed     int64    `json:"seed,omitempty"`     // draw seed (victims, jitter)
	Start    sim.Time `json:"start,omitempty"`    // first event tick; 0 = 100
	Spacing  sim.Time `json:"spacing,omitempty"`  // staggered/cascade gap; 0 = 200
	Window   sim.Time `json:"window,omitempty"`   // partition/silence length; 0 = 1000
}

// Crash schedules one process crash.
type Crash struct {
	P  ids.ProcID
	At sim.Time
}

// Schedule is one concrete generated adversary: named crashes plus
// scripted holds, ready to be turned into a sweep crash pattern.
type Schedule struct {
	Name    string
	Crashes []Crash
	Holds   []sim.Hold
}

// ScheduleGen expands families against one system size. The generator
// carries no hidden state: every Expand draws only from the family's
// seed and the size, so expansion order does not matter.
type ScheduleGen struct {
	N, T int
}

// NewScheduleGen builds a generator for a system of n processes with
// resilience bound t.
func NewScheduleGen(n, t int) ScheduleGen { return ScheduleGen{N: n, T: t} }

// Expand turns one family into its concrete schedules.
func (g ScheduleGen) Expand(f Family) ([]Schedule, error) {
	variants := f.Variants
	if variants <= 0 {
		variants = 1
	}
	start := f.Start
	if start <= 0 {
		start = 100
	}
	spacing := f.Spacing
	if spacing <= 0 {
		spacing = 200
	}
	window := f.Window
	if window <= 0 {
		window = 1000
	}
	count := f.Count
	switch f.Kind {
	case KindStaggered, KindClustered, KindCascade:
		if count <= 0 {
			count = g.T
		}
		if count < 1 || count > g.T {
			return nil, fmt.Errorf("adversary: family %q crashes %d processes, allowed 1..t=%d", f.Kind, count, g.T)
		}
	case KindPartition:
		if count <= 0 {
			count = g.N / 2
		}
		if count < 1 || count >= g.N {
			return nil, fmt.Errorf("adversary: partition block of %d out of range 1..%d", count, g.N-1)
		}
	case KindSilence:
		if count <= 0 {
			count = g.T
		}
		if count < 1 || count >= g.N {
			return nil, fmt.Errorf("adversary: silent region of %d out of range 1..%d", count, g.N-1)
		}
	default:
		return nil, fmt.Errorf("adversary: unknown schedule family kind %q", f.Kind)
	}

	out := make([]Schedule, 0, variants)
	for v := 0; v < variants; v++ {
		r := newDraw(f.Seed, int64(v), int64(g.N), int64(g.T), kindSalt(f.Kind))
		// The seed is part of the name: two same-kind families in one
		// matrix must yield distinct pattern labels, or report consumers
		// grouping by pattern would silently merge their cells.
		s := Schedule{Name: fmt.Sprintf("%s-c%d-s%d-v%d", f.Kind, count, f.Seed, v)}
		switch f.Kind {
		case KindStaggered:
			for i, p := range r.draw(count, g.N) {
				jitter := sim.Time(r.intn(int(spacing)/2 + 1))
				s.Crashes = append(s.Crashes, Crash{P: p, At: start + sim.Time(i)*spacing + jitter})
			}
		case KindClustered:
			base := 1 + r.intn(g.N-count+1)
			for i := 0; i < count; i++ {
				s.Crashes = append(s.Crashes, Crash{P: ids.ProcID(base + i), At: start})
			}
		case KindCascade:
			gap := sim.Time(1)
			at := start
			for _, p := range r.draw(count, g.N) {
				s.Crashes = append(s.Crashes, Crash{P: p, At: at})
				at += spacing * gap
				gap *= 2
			}
		case KindPartition:
			block := ids.NewSet(r.draw(count, g.N)...)
			rest := ids.FullSet(g.N).Minus(block)
			s.Holds = []sim.Hold{
				{From: block, To: rest, Since: start, Until: start + window},
				{From: rest, To: block, Since: start, Until: start + window},
			}
		case KindSilence:
			region := ids.NewSet(r.draw(count, g.N)...)
			s.Holds = []sim.Hold{
				{From: region, To: ids.FullSet(g.N), Since: start, Until: start + window},
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// ExpandAll expands a family list in order into one schedule list. Two
// families expanding to the same schedule name (same kind, count and
// seed, differing only in timing knobs) would merge distinct pattern
// dimension points in report consumers grouping by name; that is
// rejected here rather than silently conflated.
func (g ScheduleGen) ExpandAll(fams []Family) ([]Schedule, error) {
	var out []Schedule
	seen := make(map[string]bool)
	for _, f := range fams {
		ss, err := g.Expand(f)
		if err != nil {
			return nil, err
		}
		for _, s := range ss {
			if seen[s.Name] {
				return nil, fmt.Errorf("adversary: schedule families expand to duplicate name %q — give same-kind families distinct seeds", s.Name)
			}
			seen[s.Name] = true
		}
		out = append(out, ss...)
	}
	return out, nil
}

// kindSalt folds a kind name into the draw seed so two families
// differing only in kind draw different victims.
func kindSalt(kind string) int64 {
	var h int64 = 17
	for i := 0; i < len(kind); i++ {
		h = h*31 + int64(kind[i])
	}
	return h
}

// draw is the generator's deterministic randomness: a splitmix64
// stream seeded by folding the family parameters. Identical inputs
// yield identical streams on every platform — the property the
// byte-reproducible reports rest on.
type draw struct {
	state uint64
}

func newDraw(keys ...int64) *draw {
	h := uint64(0x243f6a8885a308d3)
	for _, k := range keys {
		h = smix(h ^ uint64(k))
	}
	return &draw{state: h}
}

func smix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (r *draw) next() uint64 {
	r.state = smix(r.state)
	return r.state
}

// intn returns an unbiased value in [0, n): draws falling in the
// 2^64 mod n remainder zone are rejected and redrawn (the stream
// equivalent of fd's boundedDraw) — a plain next()%n over-represents
// low residues, a systematic skew once n grows toward MaxProcs = 256
// and the draw feeds every generated victim set and scope.
func (r *draw) intn(n int) int {
	if n <= 1 {
		return 0
	}
	un := uint64(n)
	reject := -un % un
	for {
		if v := r.next(); v >= reject {
			return int(v % un)
		}
	}
}

// draw picks count distinct process ids from 1..n (a partial
// Fisher–Yates over the identity space), in draw order.
func (r *draw) draw(count, n int) []ids.ProcID {
	pool := make([]ids.ProcID, n)
	for i := range pool {
		pool[i] = ids.ProcID(i + 1)
	}
	out := make([]ids.ProcID, count)
	for i := 0; i < count; i++ {
		j := i + r.intn(n-i)
		pool[i], pool[j] = pool[j], pool[i]
		out[i] = pool[i]
	}
	return out
}
