// Package adversary makes the paper's impossibility arguments
// (Theorems 9–12, Observation O1, the Theorem 5 and Theorem 8 bounds)
// executable.
//
// An impossibility cannot be "run", but its witness construction can:
// the package provides the straw-man reducers a believer in the converse
// would write, and the exact adversarial ingredients the proofs use —
// crash-vs-delay run pairs with identical failure detector outputs, and
// information-theoretic observations about the φ_y family — so tests and
// benchmarks can exhibit each violation concretely.
package adversary

import (
	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// PhiFromS is the straw-man transformation S_x → φ_y that Theorem 9
// refutes: answer query(X) by "X has crashed iff I currently suspect all
// of X" (plus φ's trivial answers). Completeness makes it live, but no
// suspector distinguishes "crashed" from "arbitrarily slow": the
// crash-vs-delay run pair makes it answer true about a live region after
// any claimed stabilization time.
type PhiFromS struct {
	susp fd.Suspector
	t, y int
}

var _ fd.Querier = (*PhiFromS)(nil)

// NewPhiFromS builds the straw-man for a system with resilience t.
func NewPhiFromS(susp fd.Suspector, t, y int) *PhiFromS {
	return &PhiFromS{susp: susp, t: t, y: y}
}

// Query implements fd.Querier.
func (f *PhiFromS) Query(p ids.ProcID, x ids.Set) bool {
	if x.Size() <= f.t-f.y {
		return true
	}
	if x.Size() > f.t {
		return false
	}
	return x.SubsetOf(f.susp.Suspected(p))
}

// SFromPhi is the straw-man transformation φ_y → ◇S_x (x > 1) that
// Theorem 10 refutes: suspect every process whose "zone" (itself plus the
// t−y lowest other identities) queries as crashed, never suspecting
// otherwise. Observation O1 dooms it: with f ≤ t−y actual crashes, every
// informative query answers false, so the output carries no accuracy or
// completeness information at all.
type SFromPhi struct {
	q    fd.Querier
	n, t int
	y    int
}

var _ fd.Suspector = (*SFromPhi)(nil)

// NewSFromPhi builds the straw-man.
func NewSFromPhi(q fd.Querier, n, t, y int) *SFromPhi {
	return &SFromPhi{q: q, n: n, t: t, y: y}
}

// Suspected implements fd.Suspector.
func (f *SFromPhi) Suspected(p ids.ProcID) ids.Set {
	var out ids.Set
	for j := 1; j <= f.n; j++ {
		id := ids.ProcID(j)
		if id == p {
			continue
		}
		zone := ids.NewSet(id)
		for o := 1; o <= f.n && zone.Size() < f.t-f.y+1; o++ {
			if oid := ids.ProcID(o); oid != id && oid != p {
				zone = zone.Add(oid)
			}
		}
		if f.q.Query(p, zone) {
			out = out.Add(id)
		}
	}
	return out
}

// RunPair is the Theorem 9 adversary construction: two configurations
// indistinguishable to any algorithm up to the horizon.
//
//   - RunR: the region E crashes at CrashAt.
//   - RunRPrime: E stays alive, but every message E sends is held back
//     until after Horizon, and (by oracle construction) the failure
//     detector output at the surviving processes is the same as in RunR.
//
// Any query-style transformation that answers true about E in RunR after
// its claimed stabilization time answers true at the same point of
// RunRPrime — violating (eventual) safety there, since E is correct.
type RunPair struct {
	N, T    int
	E       ids.Set  // the region: t−y < |E| ≤ t, E ∌ the protected leader
	CrashAt sim.Time // when E crashes in run R
	Horizon sim.Time // how long run R′ delays E's messages
	Seed    int64
}

// ConfigR returns the configuration of run R (E crashes).
func (rp RunPair) ConfigR(maxSteps sim.Time) sim.Config {
	crashes := make(map[ids.ProcID]sim.Time, rp.E.Size())
	rp.E.ForEach(func(p ids.ProcID) bool {
		crashes[p] = rp.CrashAt
		return true
	})
	return sim.Config{
		N: rp.N, T: rp.T, Seed: rp.Seed, MaxSteps: maxSteps,
		GST: 0, Crashes: crashes,
	}
}

// ConfigRPrime returns the configuration of run R′ (E alive but silent
// until Horizon).
func (rp RunPair) ConfigRPrime(maxSteps sim.Time) sim.Config {
	return sim.Config{
		N: rp.N, T: rp.T, Seed: rp.Seed, MaxSteps: maxSteps,
		GST: 0,
		Holds: []sim.Hold{{
			From:  rp.E,
			To:    ids.FullSet(rp.N),
			Until: rp.Horizon,
		}},
	}
}

// SuspectorForR returns an S_x oracle for run R whose outputs on the
// surviving processes are reproduced exactly by SuspectorForRPrime on
// run R′ — the "same failure detector output" ingredient of the proof.
// It protects a correct leader outside E (legal in both runs) and, after
// CrashAt, suspects exactly E at every surviving process.
func (rp RunPair) SuspectorForR(sys *sim.System, x int, leader ids.ProcID) fd.Suspector {
	return &scriptedSuspector{
		sys: sys, e: rp.E, at: rp.CrashAt, leader: leader, x: x,
	}
}

// SuspectorForRPrime is SuspectorForR's twin for run R′: it emits the
// *same* outputs (suspecting the live region E after CrashAt), which the
// class S_x permits, since E need not be in any accuracy scope.
func (rp RunPair) SuspectorForRPrime(sys *sim.System, x int, leader ids.ProcID) fd.Suspector {
	return &scriptedSuspector{
		sys: sys, e: rp.E, at: rp.CrashAt, leader: leader, x: x,
	}
}

// scriptedSuspector suspects exactly E from time `at` on, at every
// process outside E; processes inside E suspect nobody. Completeness
// holds in run R (E is exactly the crashed set); limited-scope perpetual
// accuracy holds in both runs with scope Q = Π ∖ E around the protected
// leader, provided x ≤ n − |E|.
type scriptedSuspector struct {
	sys    *sim.System
	e      ids.Set
	at     sim.Time
	leader ids.ProcID
	x      int
}

var _ fd.Suspector = (*scriptedSuspector)(nil)

func (s *scriptedSuspector) Suspected(p ids.ProcID) ids.Set {
	if s.e.Contains(p) {
		return ids.EmptySet()
	}
	if s.sys.Now() < s.at {
		return ids.EmptySet()
	}
	return s.e
}
