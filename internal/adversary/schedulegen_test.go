package adversary

import (
	"reflect"
	"testing"

	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

// TestExpandDeterministic: expansion is a pure function of
// (family, n, t) — repeated expansions are deep-equal, and expansion
// order across families does not matter.
func TestExpandDeterministic(t *testing.T) {
	g := NewScheduleGen(16, 5)
	fams := []Family{
		{Kind: KindStaggered, Count: 3, Variants: 4, Seed: 7},
		{Kind: KindClustered, Count: 2, Variants: 2, Seed: 7},
		{Kind: KindCascade, Variants: 3, Seed: 9},
		{Kind: KindPartition, Count: 5, Variants: 2, Seed: 1},
		{Kind: KindSilence, Count: 2, Variants: 2, Seed: 2},
	}
	first, err := g.ExpandAll(fams)
	if err != nil {
		t.Fatal(err)
	}
	second, err := g.ExpandAll(fams)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("repeated expansion differs")
	}
	// Reversed family order: each family's own schedules are unchanged.
	rev := []Family{fams[4], fams[0]}
	got, err := g.ExpandAll(rev)
	if err != nil {
		t.Fatal(err)
	}
	silCount := fams[4].Variants
	if !reflect.DeepEqual(got[silCount:], first[:fams[0].Variants]) {
		t.Fatal("expansion depends on family order")
	}
}

// TestExpandShapes checks each kind's structural contract.
func TestExpandShapes(t *testing.T) {
	const n, tt = 12, 4
	g := NewScheduleGen(n, tt)

	t.Run("staggered", func(t *testing.T) {
		ss, err := g.Expand(Family{Kind: KindStaggered, Count: 3, Variants: 5, Seed: 3, Start: 100, Spacing: 200})
		if err != nil {
			t.Fatal(err)
		}
		if len(ss) != 5 {
			t.Fatalf("got %d variants", len(ss))
		}
		for _, s := range ss {
			if len(s.Crashes) != 3 || len(s.Holds) != 0 {
				t.Fatalf("schedule %s: %d crashes, %d holds", s.Name, len(s.Crashes), len(s.Holds))
			}
			seen := map[ids.ProcID]bool{}
			for i, c := range s.Crashes {
				if seen[c.P] {
					t.Fatalf("%s crashes %v twice", s.Name, c.P)
				}
				seen[c.P] = true
				lo := sim.Time(100 + i*200)
				if c.At < lo || c.At > lo+100 {
					t.Fatalf("%s crash %d at %d outside [%d,%d]", s.Name, i, c.At, lo, lo+100)
				}
			}
		}
	})

	t.Run("clustered", func(t *testing.T) {
		ss, err := g.Expand(Family{Kind: KindClustered, Count: 4, Variants: 3, Seed: 5, Start: 300})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range ss {
			if len(s.Crashes) != 4 {
				t.Fatalf("%s has %d crashes", s.Name, len(s.Crashes))
			}
			for i, c := range s.Crashes {
				if c.At != 300 {
					t.Fatalf("%s crash at %d, want simultaneous 300", s.Name, c.At)
				}
				if i > 0 && c.P != s.Crashes[i-1].P+1 {
					t.Fatalf("%s victims not contiguous: %v", s.Name, s.Crashes)
				}
			}
		}
	})

	t.Run("cascade", func(t *testing.T) {
		ss, err := g.Expand(Family{Kind: KindCascade, Count: 3, Seed: 1, Start: 100, Spacing: 50})
		if err != nil {
			t.Fatal(err)
		}
		want := []sim.Time{100, 150, 250} // Start + Spacing·(2^i − 1)
		for i, c := range ss[0].Crashes {
			if c.At != want[i] {
				t.Fatalf("cascade crash %d at %d, want %d", i, c.At, want[i])
			}
		}
	})

	t.Run("partition", func(t *testing.T) {
		ss, err := g.Expand(Family{Kind: KindPartition, Count: 5, Seed: 2, Start: 400, Window: 600})
		if err != nil {
			t.Fatal(err)
		}
		s := ss[0]
		if len(s.Crashes) != 0 || len(s.Holds) != 2 {
			t.Fatalf("partition: %d crashes, %d holds", len(s.Crashes), len(s.Holds))
		}
		a, b := s.Holds[0], s.Holds[1]
		if !a.From.Equal(b.To) || !a.To.Equal(b.From) {
			t.Fatal("partition holds are not symmetric")
		}
		if a.From.Intersects(a.To) {
			t.Fatal("partition blocks overlap")
		}
		if got := a.From.Size() + a.To.Size(); got != n {
			t.Fatalf("partition blocks cover %d of %d", got, n)
		}
		for _, h := range s.Holds {
			if h.Since != 400 || h.Until != 1000 {
				t.Fatalf("partition window [%d,%d), want [400,1000)", h.Since, h.Until)
			}
		}
	})

	t.Run("silence", func(t *testing.T) {
		ss, err := g.Expand(Family{Kind: KindSilence, Count: 2, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		s := ss[0]
		if len(s.Holds) != 1 || s.Holds[0].From.Size() != 2 || !s.Holds[0].To.Equal(ids.FullSet(n)) {
			t.Fatalf("silence schedule malformed: %+v", s)
		}
	})
}

// TestExpandVariantsDiffer: variants of a drawing family are not all
// identical (the generator actually varies the draw).
func TestExpandVariantsDiffer(t *testing.T) {
	g := NewScheduleGen(32, 10)
	ss, err := g.Expand(Family{Kind: KindStaggered, Count: 5, Variants: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	distinct := false
	for _, s := range ss[1:] {
		if !reflect.DeepEqual(s.Crashes, ss[0].Crashes) {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("all 6 staggered variants drew identical schedules")
	}
}

// TestExpandRejects: invalid families fail fast with a clear error.
func TestExpandRejects(t *testing.T) {
	g := NewScheduleGen(8, 3)
	bad := []Family{
		{Kind: "meteor-strike"},
		{Kind: KindStaggered, Count: 4},  // > t
		{Kind: KindClustered, Count: -2}, // negative explicit count is still > t after no defaulting
		{Kind: KindPartition, Count: 8},  // no processes left on the other side
		{Kind: KindSilence, Count: 9},    // larger than the system
	}
	// A negative count defaults like zero, so drop the case that ends up
	// valid and assert the rest reject.
	for i, f := range bad {
		if f.Count < 0 {
			continue
		}
		if _, err := g.Expand(f); err == nil {
			t.Errorf("family %d (%+v) accepted", i, f)
		}
	}
	// Crash-family expansion with t = 0 has no one to crash.
	if _, err := NewScheduleGen(8, 0).Expand(Family{Kind: KindStaggered}); err == nil {
		t.Error("staggered family with t=0 accepted")
	}
}

// TestExpandedSchedulesRun: every generated schedule is a valid sim
// configuration — crash counts respect t, holds validate, and a run
// completes.
func TestExpandedSchedulesRun(t *testing.T) {
	const n, tt = 10, 3
	g := NewScheduleGen(n, tt)
	fams := []Family{
		{Kind: KindStaggered, Variants: 2, Seed: 1},
		{Kind: KindClustered, Count: 2, Seed: 2},
		{Kind: KindCascade, Count: 2, Seed: 3},
		{Kind: KindPartition, Seed: 4},
		{Kind: KindSilence, Seed: 5},
	}
	ss, err := g.ExpandAll(fams)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ss {
		crashes := make(map[ids.ProcID]sim.Time, len(s.Crashes))
		for _, c := range s.Crashes {
			crashes[c.P] = c.At
		}
		cfg := sim.Config{N: n, T: tt, Seed: 1, MaxSteps: 3_000, Crashes: crashes, Holds: s.Holds}
		sys, err := sim.New(cfg)
		if err != nil {
			t.Fatalf("schedule %s rejected by sim: %v", s.Name, err)
		}
		sys.Run(nil)
	}
}
