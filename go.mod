module fdgrid

go 1.24
