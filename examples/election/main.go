// Election: using the two-wheels emulated Ω_z as an eventual
// multi-leader election service.
//
// The program runs the ◇S_x + ◇φ_y → Ω_z addition on 6 processes,
// prints the evolving trusted sets (the elected committee of ≤ z
// leaders), crashes a process mid-run, and shows the committee
// re-stabilizing on live leadership — the exact service Ω_z specifies:
// eventually one common committee containing a correct process.
package main

import (
	"fmt"
	"sort"

	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/reduction"
	"fdgrid/internal/sim"
)

func main() {
	const (
		n, t = 6, 2
		x, y = 2, 1 // committee size z = t+2−x−y = 1
	)
	z := t + 2 - x - y
	cfg := sim.Config{
		N: n, T: t, Seed: 11, MaxSteps: 400_000, GST: 800,
		Crashes:   map[ids.ProcID]sim.Time{1: 6_000}, // a late crash to re-elect around
		Bandwidth: n,
	}
	sys := sim.MustNew(cfg)
	susp := fd.NewEvtS(sys, x, fd.WithLeader(2))
	quer := fd.NewEvtPhi(sys, y)
	emu, _ := reduction.SpawnTwoWheels(sys, susp, quer, x, y)
	trace := fd.WatchLeader(sys, emu)

	fmt.Printf("eventual %d-leader election on %d processes (◇S_%d + ◇φ_%d → Ω_%d)\n", z, n, x, y, z)
	fmt.Printf("process 1 will crash at vtick 6000; GST at %d\n\n", cfg.GST)

	// Sample the committee a few times along the run.
	checkpoints := []sim.Time{200, 1_000, 3_000, 5_999, 8_000, 15_000, 30_000}
	views := make(map[sim.Time]map[ids.ProcID]ids.Set)
	sys.OnTick(func(now sim.Time) {
		for _, cp := range checkpoints {
			if now == cp {
				view := make(map[ids.ProcID]ids.Set, n)
				for p := 1; p <= n; p++ {
					id := ids.ProcID(p)
					if !sys.Pattern().Crashed(id, now) {
						view[id] = emu.Trusted(id)
					}
				}
				views[now] = view
			}
		}
	})
	sys.Run(trace.StableFor(sys.Pattern().Correct(), 25_000))

	for _, cp := range checkpoints {
		view, ok := views[cp]
		if !ok {
			continue
		}
		procs := make([]int, 0, len(view))
		for p := range view {
			procs = append(procs, int(p))
		}
		sort.Ints(procs)
		fmt.Printf("vtick %-6d committee views: ", cp)
		for _, p := range procs {
			fmt.Printf("p%d→%s ", p, view[ids.ProcID(p)])
		}
		fmt.Println()
	}

	if err := trace.CheckOmega(sys.Pattern(), z, 10_000); err != nil {
		fmt.Println("\nFAILED:", err)
		return
	}
	final, _ := trace.FinalValue(sys.Pattern().Correct().Min())
	fmt.Printf("\nstable committee: %s (size ≤ %d, contains a correct process) — Ω_%d verified\n",
		final, z, z)
}
