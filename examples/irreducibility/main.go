// Irreducibility: the crash-vs-delay adversary of the paper's Theorem 9.
//
// A naive engineer claims to build a ◇φ_y crash-region detector out of
// an S_x suspector: "a region has crashed iff I suspect all of it". The
// adversary defeats any such transformation:
//
//   - run R: the region E really crashes, the suspector (legally)
//     suspects exactly E, and the reducer answers true — as liveness
//     demands;
//   - run R′: E is alive, merely silent (messages delayed), and the
//     suspector emits *the same outputs* — still legal, because S_x's
//     accuracy only protects one process in one scope. The reducer
//     answers true about correct processes: eventual safety is violated
//     after any claimed stabilization time τ.
package main

import (
	"fmt"

	"fdgrid/internal/adversary"
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

func main() {
	const (
		n, t = 5, 2
		x, y = 3, 1
	)
	e := ids.NewSet(4, 5) // the region: t−y < |E| ≤ t

	fmt.Printf("Theorem 9 demo: trying to build ◇φ_%d from S_%d (n=%d, t=%d, E=%s)\n\n", y, x, n, t, e)

	for _, tau := range []sim.Time{500, 2_000, 8_000} {
		rp := adversary.RunPair{N: n, T: t, E: e, CrashAt: 100, Horizon: tau + 1_000, Seed: 42}

		probe := func(label string, cfg sim.Config, correctE bool) sim.Time {
			sys := sim.MustNew(cfg)
			susp := rp.SuspectorForR(sys, x, 1)
			reducer := adversary.NewPhiFromS(susp, t, y)
			var at sim.Time = -1
			sys.OnTick(func(now sim.Time) {
				if at < 0 && now > tau && reducer.Query(1, e) {
					at = now
				}
			})
			sys.Run(func() bool { return at >= 0 })
			status := "liveness satisfied"
			if correctE {
				status = "EVENTUAL SAFETY VIOLATED (E is correct!)"
			}
			fmt.Printf("  τ=%-5d %-28s query(E)=true at vtick %-6d %s\n", tau, label, at, status)
			return at
		}

		probe("run R  (E crashes @100):", rp.ConfigR(tau+2_000), false)
		probe("run R′ (E alive, delayed):", rp.ConfigRPrime(tau+2_000), true)
		fmt.Println()
	}

	fmt.Println("whatever stabilization time the reducer claims, the adversary delays past it:")
	fmt.Println("no S_x-to-◇φ_y transformation exists (paper Theorem 9).")
}
