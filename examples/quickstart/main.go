// Quickstart: solve 2-set agreement among 5 processes (one crashes)
// using the paper's Ω_2-based algorithm, in ~30 lines of API.
package main

import (
	"fmt"

	"fdgrid"
)

func main() {
	cfg := fdgrid.Config{
		N: 5, T: 2, // five processes, at most two crashes
		Seed:      2026,
		MaxSteps:  1_000_000, // virtual-time budget
		GST:       500,       // the oracle may misbehave before this tick
		Crashes:   map[fdgrid.ProcID]fdgrid.Time{4: 700},
		Bandwidth: 5,
	}
	sys := fdgrid.MustNewSystem(cfg)

	// A ground-truth Ω_2 oracle: eventually all correct processes trust
	// the same ≤2 processes, at least one of them correct.
	oracle := fdgrid.NewOmega(sys, 2)

	// Every process proposes 100+its id and runs the Fig. 3 algorithm.
	out := fdgrid.NewOutcome()
	for p := 1; p <= cfg.N; p++ {
		id := fdgrid.ProcID(p)
		sys.Spawn(id, fdgrid.KSetMain(oracle, fdgrid.Value(100+p), out))
	}
	sys.Run(out.AllDecided(sys.Pattern().Correct()))

	// Iterate in process order: ranging the decisions map directly would
	// print in Go's randomized map order, a different output every run.
	decisions := out.Decisions()
	for p := 1; p <= cfg.N; p++ {
		if d, ok := decisions[fdgrid.ProcID(p)]; ok {
			fmt.Printf("process %v decided %d (round %d, vtick %d)\n", fdgrid.ProcID(p), d.Value, d.Round, d.At)
		}
	}
	if err := out.Check(sys.Pattern(), 2); err != nil {
		fmt.Println("FAILED:", err)
		return
	}
	fmt.Printf("ok: %d distinct value(s) decided, validity and termination hold\n",
		len(out.DistinctValues()))
}
