// Additivity: the paper's motivating example (its introduction, Fig. 2).
//
// With t = 3 crashes possible among n = 7 processes:
//
//   - ◇S_t alone solves 2-set agreement but NOT consensus;
//   - ◇φ_1 alone solves t-set agreement but NOT (t−1)-set agreement;
//   - their ADDITION — the two-wheels algorithm — yields Ω_1, which
//     solves consensus: z = t+2−x−y = 3+2−3−1 = 1.
//
// This program runs all three configurations and prints what each
// achieves.
package main

import (
	"fmt"

	"fdgrid/internal/agreement"
	"fdgrid/internal/core"
	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/node"
	"fdgrid/internal/rbcast"
	"fdgrid/internal/reduction"
	"fdgrid/internal/sim"
)

const (
	n = 7
	t = 3
	x = t // scope of ◇S_x
	y = 1 // scope of ◇φ_y
)

func config(seed int64) sim.Config {
	return sim.Config{
		N: n, T: t, Seed: seed, MaxSteps: 2_000_000, GST: 600,
		Crashes:   map[ids.ProcID]sim.Time{6: 300, 7: 900},
		Bandwidth: n,
	}
}

// solveWith runs k-set agreement through the grid construction for class
// c and returns the number of distinct decided values.
func solveWith(c core.Class, k int, seed int64) (int, error) {
	sys := sim.MustNew(config(seed))
	out, err := core.SpawnKSetWith(sys, c, nil)
	if err != nil {
		return 0, err
	}
	rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
	if !rep.StoppedEarly {
		return 0, fmt.Errorf("timed out")
	}
	if err := out.Check(sys.Pattern(), k); err != nil {
		return 0, err
	}
	return len(out.DistinctValues()), nil
}

func main() {
	fmt.Printf("n=%d, t=%d — what each detector class buys you (paper Fig. 2):\n\n", n, t)

	// ◇S_t: line z = t−x+2 = 2 of the grid.
	kS := core.KSetPower(core.Class{Fam: core.FamEvtS, Param: x}, t)
	d, err := solveWith(core.Class{Fam: core.FamEvtS, Param: x}, kS, 1)
	if err != nil {
		fmt.Println("◇S_t run failed:", err)
		return
	}
	fmt.Printf("  ◇S_%d alone      → %d-set agreement (measured %d distinct)\n", x, kS, d)

	// ◇φ_1: line z = t−y+1 = t of the grid.
	kP := core.KSetPower(core.Class{Fam: core.FamEvtPhi, Param: y}, t)
	d, err = solveWith(core.Class{Fam: core.FamEvtPhi, Param: y}, kP, 2)
	if err != nil {
		fmt.Println("◇φ_1 run failed:", err)
		return
	}
	fmt.Printf("  ◇φ_%d alone      → %d-set agreement (measured %d distinct)\n", y, kP, d)

	// The addition: ◇S_t + ◇φ_1 → Ω_1 → consensus.
	v := core.CanTransform(
		[]core.Class{{Fam: core.FamEvtS, Param: x}, {Fam: core.FamEvtPhi, Param: y}},
		core.Class{Fam: core.FamOmega, Param: 1}, t)
	fmt.Printf("  ◇S_%d + ◇φ_%d    → Ω_1? %v (%s)\n", x, y, v.OK, v.Reason)

	sys := sim.MustNew(config(3))
	susp := fd.NewEvtS(sys, x)
	quer := fd.NewEvtPhi(sys, y)
	emu := reduction.NewOmegaEmulation()
	out := agreement.NewOutcome()
	for p := 1; p <= n; p++ {
		id := ids.ProcID(p)
		sys.Spawn(id, func(env *sim.Env) {
			rb := rbcast.New(env)
			lower, upper := reduction.InstallTwoWheels(env, rb, susp, quer, x, y, emu, nil)
			nd := node.New(env, rb, lower, upper)
			agreement.KSet(nd, rb, emu, agreement.Value(100+int(env.ID())), out)
			nd.RunForever()
		})
	}
	rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
	if !rep.StoppedEarly {
		fmt.Println("addition run timed out")
		return
	}
	if err := out.Check(sys.Pattern(), 1); err != nil {
		fmt.Println("CONSENSUS FAILED:", err)
		return
	}
	fmt.Printf("\n  added together they solve CONSENSUS: all correct processes decided %v\n",
		out.DistinctValues())
	fmt.Println("\n  (neither class alone reaches consensus; the sum is stronger than its parts)")
}
