package fdgrid

import (
	"fmt"
	"testing"

	"fdgrid/internal/adversary"
	"fdgrid/internal/ids"
	"fdgrid/internal/reduction"
	"fdgrid/internal/sim"
)

// The benchmarks regenerate the paper's "evaluation": each corresponds
// to an experiment of DESIGN.md §5 (EXP-*) and reports, besides wall
// time, the virtual-time and message-count shapes the paper's results
// predict. cmd/experiments renders the same measurements as the tables
// of EXPERIMENTS.md.

// benchPing is the tag of the scheduler micro-benchmarks.
var benchPing = Intern("bench.ping")

// benchCfg is the common workload: n processes, t = ⌊(n−1)/2⌋, one late
// crash, late stabilization.
func benchCfg(n int, seed int64) Config {
	t := (n - 1) / 2
	crashes := map[ProcID]Time{ProcID(n): 400}
	return Config{
		N: n, T: t, Seed: seed, MaxSteps: 2_000_000,
		GST: 600, Crashes: crashes, Bandwidth: n,
	}
}

// BenchmarkGridLine (EXP-F1, paper Fig. 1): every class of every grid
// line solves its line's k-set agreement via the paper's constructions.
func BenchmarkGridLine(b *testing.B) {
	const (
		n = 5
		t = 2
	)
	for z := 1; z <= t+1; z++ {
		for _, c := range GridLine(z, t) {
			b.Run(fmt.Sprintf("z=%d/%s", z, c), func(b *testing.B) {
				var ticks, rounds float64
				for i := 0; i < b.N; i++ {
					cfg := benchCfg(n, int64(i))
					sys := MustNewSystem(cfg)
					out, err := SpawnKSetWith(sys, c, nil)
					if err != nil {
						b.Fatal(err)
					}
					rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
					if !rep.StoppedEarly {
						b.Fatalf("timed out: %v", out.Decisions())
					}
					if err := out.Check(sys.Pattern(), z); err != nil {
						b.Fatal(err)
					}
					ticks += float64(rep.Steps)
					rounds += float64(out.MaxRound())
				}
				b.ReportMetric(ticks/float64(b.N), "vticks/run")
				b.ReportMetric(rounds/float64(b.N), "rounds/run")
			})
		}
	}
}

// BenchmarkKSetOmega (EXP-F3, paper Fig. 3): the Ω_z-based k-set
// agreement algorithm across system sizes.
func BenchmarkKSetOmega(b *testing.B) {
	for _, n := range []int{5, 7, 9, 11} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var ticks, rounds, msgs float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(n, int64(i))
				sys := MustNewSystem(cfg)
				oracle := NewOmega(sys, 2)
				out := NewOutcome()
				for p := 1; p <= n; p++ {
					sys.Spawn(ProcID(p), KSetMain(oracle, Value(100+p), out))
				}
				rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
				if !rep.StoppedEarly {
					b.Fatal("timed out")
				}
				if err := out.Check(sys.Pattern(), 2); err != nil {
					b.Fatal(err)
				}
				ticks += float64(rep.Steps)
				rounds += float64(out.MaxRound())
				msgs += float64(rep.Messages.TotalSent)
			}
			b.ReportMetric(ticks/float64(b.N), "vticks/run")
			b.ReportMetric(rounds/float64(b.N), "rounds/run")
			b.ReportMetric(msgs/float64(b.N), "msgs/run")
		})
	}
}

// BenchmarkKSetOracleEfficient (EXP-F3a, §3.2): perfect oracle, no
// crashes ⇒ decision in one round (two communication steps).
func BenchmarkKSetOracleEfficient(b *testing.B) {
	const n = 7
	for i := 0; i < b.N; i++ {
		cfg := Config{N: n, T: 3, Seed: int64(i), MaxSteps: 500_000, GST: 0, Bandwidth: n}
		sys := MustNewSystem(cfg)
		oracle := NewOmega(sys, 2, WithStabilizeAt(0))
		out := NewOutcome()
		for p := 1; p <= n; p++ {
			sys.Spawn(ProcID(p), KSetMain(oracle, Value(p), out))
		}
		rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
		if !rep.StoppedEarly {
			b.Fatal("timed out")
		}
		for p, d := range out.Decisions() {
			if d.Round != 1 {
				b.Fatalf("%v decided in round %d", p, d.Round)
			}
		}
	}
	b.ReportMetric(1, "rounds/run")
}

// BenchmarkKSetZeroDegradation (EXP-F3b, §3.2): perfect oracle, crashes
// only initial ⇒ still one round.
func BenchmarkKSetZeroDegradation(b *testing.B) {
	const n = 7
	for i := 0; i < b.N; i++ {
		cfg := Config{
			N: n, T: 3, Seed: int64(i), MaxSteps: 500_000, GST: 0, Bandwidth: n,
			Crashes: map[ProcID]Time{2: 0, 5: 0},
		}
		sys := MustNewSystem(cfg)
		oracle := NewOmega(sys, 2, WithStabilizeAt(0), WithTrusted(NewSet(1, 4)))
		out := NewOutcome()
		for p := 1; p <= n; p++ {
			sys.Spawn(ProcID(p), KSetMain(oracle, Value(p), out))
		}
		rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
		if !rep.StoppedEarly {
			b.Fatal("timed out")
		}
		for p, d := range out.Decisions() {
			if d.Round != 1 {
				b.Fatalf("%v decided in round %d", p, d.Round)
			}
		}
	}
	b.ReportMetric(1, "rounds/run")
}

// BenchmarkConsensusBaselines compares the Fig. 3 algorithm at z = k = 1
// (the Ω-based consensus of ref. [20]) against the rotating-coordinator
// ◇S consensus of ref. [18].
func BenchmarkConsensusBaselines(b *testing.B) {
	const n = 7
	run := func(b *testing.B, spawn func(sys *System, out *Outcome)) {
		var ticks, rounds float64
		for i := 0; i < b.N; i++ {
			cfg := benchCfg(n, int64(i))
			sys := MustNewSystem(cfg)
			out := NewOutcome()
			spawn(sys, out)
			rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
			if !rep.StoppedEarly {
				b.Fatal("timed out")
			}
			if err := out.Check(sys.Pattern(), 1); err != nil {
				b.Fatal(err)
			}
			ticks += float64(rep.Steps)
			rounds += float64(out.MaxRound())
		}
		b.ReportMetric(ticks/float64(b.N), "vticks/run")
		b.ReportMetric(rounds/float64(b.N), "rounds/run")
	}
	b.Run("omega-fig3", func(b *testing.B) {
		run(b, func(sys *System, out *Outcome) {
			oracle := NewOmega(sys, 1)
			for p := 1; p <= n; p++ {
				sys.Spawn(ProcID(p), KSetMain(oracle, Value(p), out))
			}
		})
	})
	b.Run("evtS-rotating", func(b *testing.B) {
		run(b, func(sys *System, out *Outcome) {
			susp := NewEvtS(sys, n)
			for p := 1; p <= n; p++ {
				sys.Spawn(ProcID(p), ConsensusDSMain(susp, Value(p), out))
			}
		})
	})
}

// BenchmarkRingNext (EXP-F4, paper Fig. 4): the ring enumeration the
// wheels spin on.
func BenchmarkRingNext(b *testing.B) {
	b.Run("xring-n9x4", func(b *testing.B) {
		r := ids.NewXRing(9, 4)
		for i := 0; i < b.N; i++ {
			r.Next()
		}
	})
	b.Run("lyring-n9y4l2", func(b *testing.B) {
		r := ids.NewLYRing(9, 4, 2)
		for i := 0; i < b.N; i++ {
			r.Next()
		}
	})
}

// BenchmarkLowerWheel (EXP-F5, paper Fig. 5): convergence and
// quiescence of the lower wheel.
func BenchmarkLowerWheel(b *testing.B) {
	const (
		n = 5
		x = 2
	)
	var moves, xmoves float64
	for i := 0; i < b.N; i++ {
		cfg := Config{
			N: n, T: 2, Seed: int64(i), MaxSteps: 60_000, GST: 600,
			Crashes: map[ProcID]Time{3: 500}, Bandwidth: n,
		}
		sys := MustNewSystem(cfg)
		susp := NewEvtS(sys, x)
		reprs := SpawnLowerWheel(sys, susp, x)
		rep := sys.Run(nil)
		var consumed int
		for p := 1; p <= n; p++ {
			if pos, ok := reprs.Pos(ProcID(p)); ok {
				_ = pos
				consumed++
			}
		}
		moves += float64(consumed)
		xmoves += float64(rep.Messages.Sent["rbcast:wheel.xmove"])
	}
	b.ReportMetric(xmoves/float64(b.N), "xmove-sends/run")
}

// BenchmarkTwoWheels (EXP-F2/F6, paper Figs. 5–7): the additivity
// construction across (x, y), reporting stabilization time of the
// emulated Ω_z.
func BenchmarkTwoWheels(b *testing.B) {
	const (
		n = 5
		t = 2
	)
	for _, p := range []struct{ x, y int }{{1, 0}, {2, 0}, {3, 0}, {1, 1}, {2, 1}, {1, 2}} {
		z := t + 2 - p.x - p.y
		b.Run(fmt.Sprintf("x=%d,y=%d,z=%d", p.x, p.y, z), func(b *testing.B) {
			var stab, msgs float64
			for i := 0; i < b.N; i++ {
				cfg := Config{
					N: n, T: t, Seed: int64(i), MaxSteps: 120_000, GST: 600,
					Crashes: map[ProcID]Time{4: 800}, Bandwidth: n,
				}
				trace, sys, rep, err := AddOmega(cfg, p.x, p.y, 15_000)
				if err != nil {
					b.Fatal(err)
				}
				if err := trace.CheckOmega(sys.Pattern(), z, 10_000); err != nil {
					b.Fatalf("seed %d: %v", i, err)
				}
				var last Time
				sys.Pattern().Correct().ForEach(func(q ProcID) bool {
					if lc := trace.LastChange(q); lc > last {
						last = lc
					}
					return true
				})
				stab += float64(last)
				msgs += float64(rep.Messages.TotalSent)
			}
			b.ReportMetric(stab/float64(b.N), "stab-vticks")
			b.ReportMetric(msgs/float64(b.N), "msgs/run")
		})
	}
}

// BenchmarkPsiToOmega (EXP-F8, paper Fig. 8).
func BenchmarkPsiToOmega(b *testing.B) {
	const (
		n = 6
		t = 2
	)
	for i := 0; i < b.N; i++ {
		cfg := Config{
			N: n, T: t, Seed: int64(i), MaxSteps: 6_000, GST: 0,
			Crashes: map[ProcID]Time{1: 200, 2: 500},
		}
		sys := MustNewSystem(cfg)
		psi := WrapPsi(NewPhi(sys, 1))
		po := NewPsiOmega(n, t, 1, 2, psi)
		trace := WatchLeader(sys, po)
		sys.Run(nil)
		if err := trace.CheckOmega(sys.Pattern(), 2, 1_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAddToS (EXP-F9, paper Fig. 9): the S_x + φ_y → S_n addition
// over the three register substrates.
func BenchmarkAddToS(b *testing.B) {
	for _, substrate := range []string{"memory", "heartbeat", "abd"} {
		b.Run(substrate, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := Config{
					N: 5, T: 2, Seed: int64(i), MaxSteps: 120_000, GST: 0,
					Crashes: map[ProcID]Time{3: 800}, Bandwidth: 5,
				}
				sys := MustNewSystem(cfg)
				susp := NewS(sys, 2)
				quer := NewPhi(sys, 1)
				emu := SpawnAddS(sys, susp, quer, substrate)
				trace := WatchSuspector(sys, emu)
				sys.Run(nil)
				if err := trace.CheckSuspector(sys.Pattern(), 5, true, 20_000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkT5Boundary (EXP-T5, Theorem 5): z ≤ k is tight — with a
// legal Ω_{k+1}, runs exist that decide k+1 distinct values. The bench
// reports the largest decision diversity observed (expected to exceed k
// = z−1 across seeds, never to exceed z).
func BenchmarkT5Boundary(b *testing.B) {
	const (
		n = 5
		t = 2
		z = 2
	)
	maxDistinct := 0
	for i := 0; i < b.N; i++ {
		cfg := Config{N: n, T: t, Seed: int64(i), MaxSteps: 500_000, GST: 0, Bandwidth: n}
		sys := MustNewSystem(cfg)
		// A perfect Ω_2 trusting two correct processes with distinct
		// proposals: a legal oracle for 2-set agreement and the
		// adversary's best case against 1-set (consensus).
		oracle := NewOmega(sys, z, WithStabilizeAt(0), WithTrusted(NewSet(1, 2)))
		out := NewOutcome()
		for p := 1; p <= n; p++ {
			sys.Spawn(ProcID(p), KSetMain(oracle, Value(p), out))
		}
		rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
		if !rep.StoppedEarly {
			b.Fatal("timed out")
		}
		if err := out.Check(sys.Pattern(), z); err != nil {
			b.Fatal(err) // never more than z values
		}
		if d := len(out.DistinctValues()); d > maxDistinct {
			maxDistinct = d
		}
	}
	b.ReportMetric(float64(maxDistinct), "max-distinct")
}

// BenchmarkT8Boundary (EXP-T8, Theorem 8): the two-wheels output
// achieves exactly z = t+2−x−y — it passes the Ω_z checker and fails
// the Ω_{z−1} checker whenever its resting set has full size.
func BenchmarkT8Boundary(b *testing.B) {
	const (
		n = 5
		t = 2
		x = 1
		y = 0
		z = t + 2 - x - y // 3
	)
	tighterFails := 0
	for i := 0; i < b.N; i++ {
		cfg := Config{N: n, T: t, Seed: int64(i), MaxSteps: 120_000, GST: 600, Bandwidth: n}
		trace, sys, _, err := AddOmega(cfg, x, y, 15_000)
		if err != nil {
			b.Fatal(err)
		}
		if err := trace.CheckOmega(sys.Pattern(), z, 10_000); err != nil {
			b.Fatal(err)
		}
		if err := trace.CheckOmega(sys.Pattern(), z-1, 10_000); err != nil {
			tighterFails++
		}
	}
	b.ReportMetric(float64(tighterFails)/float64(b.N), "omega(z-1)-failrate")
}

// BenchmarkIrreducibility (EXP-T9, Theorem 9): the crash-vs-delay run
// pair defeats the straw-man S_x → φ_y reducer; the bench reports the
// time at which eventual safety is violated in run R′ (always past the
// claimed stabilization time).
func BenchmarkIrreducibility(b *testing.B) {
	const (
		n   = 5
		t   = 2
		y   = 1
		tau = Time(1_000)
	)
	e := NewSet(4, 5)
	var violatedSum float64
	for i := 0; i < b.N; i++ {
		rp := adversary.RunPair{N: n, T: t, E: e, CrashAt: 100, Horizon: tau + 1_000, Seed: int64(i)}
		sys := MustNewSystem(rp.ConfigRPrime(tau + 2_000))
		reducer := adversary.NewPhiFromS(rp.SuspectorForRPrime(sys, 3, 1), t, y)
		var violatedAt Time = -1
		sys.OnTick(func(now Time) {
			if violatedAt < 0 && now > tau && reducer.Query(1, e) {
				violatedAt = now
			}
		})
		sys.Run(func() bool { return violatedAt >= 0 })
		if violatedAt < 0 {
			b.Fatal("no violation observed")
		}
		violatedSum += float64(violatedAt)
	}
	b.ReportMetric(violatedSum/float64(b.N), "violation-vtick")
}

// BenchmarkRepeatedInstances measures throughput of consecutive k-set
// instances with a perfect detector and initial crashes — the repeated
// use-case behind the paper's zero-degradation property (§3.2): every
// instance stays single-round.
func BenchmarkRepeatedInstances(b *testing.B) {
	const (
		n = 7
		r = 4
	)
	var ticks float64
	for i := 0; i < b.N; i++ {
		cfg := Config{
			N: n, T: 3, Seed: int64(i), MaxSteps: 4_000_000, GST: 0, Bandwidth: n,
			Crashes: map[ProcID]Time{2: 0, 6: 0},
		}
		sys := MustNewSystem(cfg)
		oracle := NewOmega(sys, 2, WithStabilizeAt(0), WithTrusted(NewSet(1, 4)))
		outs := make([]*Outcome, r)
		for j := range outs {
			outs[j] = NewOutcome()
		}
		for p := 1; p <= n; p++ {
			id := ProcID(p)
			vals := make([]Value, r)
			for j := range vals {
				vals[j] = Value(100*(j+1) + p)
			}
			sys.Spawn(id, SequenceMain(oracle, vals, outs))
		}
		rep := sys.Run(AllInstancesDecided(outs, sys.Pattern().Correct()))
		if !rep.StoppedEarly {
			b.Fatal("timed out")
		}
		for j, o := range outs {
			if err := o.Check(sys.Pattern(), 2); err != nil {
				b.Fatalf("instance %d: %v", j, err)
			}
		}
		ticks += float64(rep.Steps)
	}
	b.ReportMetric(ticks/float64(b.N)/r, "vticks/instance")
}

// BenchmarkAblationOmegaRoutes compares the two routes to Ω (= Ω_1)
// from a full-scope ◇S — a design-choice ablation DESIGN.md calls out:
//
//   - the quiescent single wheel of the companion report [17]
//     (internal/reduction.SingleWheelOmega), message traffic stops;
//   - the two-wheels addition with y = 0 and x = t+1, which also works
//     from the weaker ◇S_{t+1} but keeps inquiring forever.
func BenchmarkAblationOmegaRoutes(b *testing.B) {
	const (
		n = 5
		t = 2
	)
	mkCfg := func(i int) Config {
		return Config{
			N: n, T: t, Seed: int64(i), MaxSteps: 150_000, GST: 500,
			Crashes: map[ProcID]Time{4: 700}, Bandwidth: n,
		}
	}
	b.Run("single-wheel", func(b *testing.B) {
		var msgs float64
		for i := 0; i < b.N; i++ {
			sys := MustNewSystem(mkCfg(i))
			susp := NewEvtS(sys, n)
			emu := reduction.SpawnSingleWheel(sys, susp)
			trace := WatchLeader(sys, emu)
			rep := sys.Run(trace.StableFor(sys.Pattern().Correct(), 15_000))
			if err := trace.CheckOmega(sys.Pattern(), 1, 10_000); err != nil {
				b.Fatal(err)
			}
			msgs += float64(rep.Messages.TotalSent)
		}
		b.ReportMetric(msgs/float64(b.N), "msgs/run")
	})
	b.Run("two-wheels", func(b *testing.B) {
		var msgs float64
		for i := 0; i < b.N; i++ {
			trace, sys, rep, err := AddOmega(mkCfg(i), t+1, 0, 15_000)
			if err != nil {
				b.Fatal(err)
			}
			if err := trace.CheckOmega(sys.Pattern(), 1, 10_000); err != nil {
				b.Fatal(err)
			}
			msgs += float64(rep.Messages.TotalSent)
		}
		b.ReportMetric(msgs/float64(b.N), "msgs/run")
	})
}

// BenchmarkSchedulerTick measures the raw cost of one scheduled virtual
// tick driving one process step — the minimal unit of simulated work,
// and the number behind every virtual-time metric: a sweep is millions
// of these. Under the zero-handoff scheduler the stepping process runs
// the tick phases itself and dispatches itself, so this path does no
// goroutine switch at all.
//
// (The PR-1 version of this benchmark spawned no processes, so the
// clock jumped straight to MaxSteps and it measured nothing.)
func BenchmarkSchedulerTick(b *testing.B) {
	sys := MustNewSystem(Config{N: 8, T: 3, Seed: 1, MaxSteps: sim.Time(b.N) + 1})
	sys.Spawn(1, func(env *sim.Env) {
		for {
			env.Step()
		}
	})
	for p := 2; p <= 8; p++ {
		sys.Spawn(ProcID(p), func(env *sim.Env) {
			for {
				env.StepUntil(sim.Never)
			}
		})
	}
	b.ResetTimer()
	sys.Run(nil)
}

// BenchmarkSchedulerWakeStorm is the worst-case tick: all 8 processes
// wake on every tick, so each tick is a chain of 8 direct process-to-
// process token handoffs (the old scheduler paid 16 switches plus lock
// round-trips for the same tick). Goroutine switch cost is the floor
// here.
func BenchmarkSchedulerWakeStorm(b *testing.B) {
	const n = 8
	sys := MustNewSystem(Config{N: n, T: 3, Seed: 1, MaxSteps: sim.Time(b.N) + 1})
	sys.SpawnAll(func(env *sim.Env) {
		for {
			env.Step()
		}
	})
	b.ResetTimer()
	sys.Run(nil)
}

// BenchmarkSchedulerSend measures one tick carrying one message: a send
// (tag metrics, hold lookup, network enqueue), a delivery and two wakes.
func BenchmarkSchedulerSend(b *testing.B) {
	sys := MustNewSystem(Config{N: 2, T: 0, Seed: 1, MaxSteps: sim.Time(b.N) + 1, Bandwidth: 2})
	sys.Spawn(1, func(env *sim.Env) {
		for {
			env.Send(2, benchPing, nil)
			env.Step()
		}
	})
	sys.Spawn(2, func(env *sim.Env) {
		for {
			env.Step()
		}
	})
	b.ResetTimer()
	sys.Run(nil)
}

// BenchmarkDeliverBatch measures the batched delivery hot path under the
// quadratic-protocol load shape every reduction in this repo produces:
// all n processes broadcast each tick and bandwidth admits the full n²
// messages, so one op (one virtual tick) is n² message deliveries
// grouped into n per-destination batches. This is the loop EXP-SCALE's
// n = 256 cells spend their time in.
func BenchmarkDeliverBatch(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sys := MustNewSystem(Config{
				N: n, T: 0, Seed: 1, MaxSteps: sim.Time(b.N) + 1, Bandwidth: n * n,
			})
			sys.SpawnAll(func(env *sim.Env) {
				for {
					next := env.Now() + 1
					env.Broadcast(benchPing, nil)
					for {
						if _, ok := env.StepUntil(next); !ok {
							break
						}
					}
				}
			})
			b.ResetTimer()
			sys.Run(nil)
			b.ReportMetric(float64(n*n), "msgs/op")
		})
	}
}

// BenchmarkBroadcastFanout measures the single-stamp broadcast fan-out:
// one process fires a burst of broadcasts per tick, the other n−1 only
// drain. One op is one tick: burst×n sends and deliveries plus n wakes —
// the fan-out-dominated shape of an rbcast relay wave (every process
// re-broadcasting one frame lands ~n broadcasts in a tick) or a batch
// of ABD query rounds.
func BenchmarkBroadcastFanout(b *testing.B) {
	const burst = 64
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sys := MustNewSystem(Config{
				N: n, T: 0, Seed: 1, MaxSteps: sim.Time(b.N) + 1, Bandwidth: burst * n,
			})
			sys.Spawn(1, func(env *sim.Env) {
				for {
					next := env.Now() + 1
					for i := 0; i < burst; i++ {
						env.Broadcast(benchPing, nil)
					}
					for {
						if _, ok := env.StepUntil(next); !ok {
							break
						}
					}
				}
			})
			for p := 2; p <= n; p++ {
				sys.Spawn(ProcID(p), func(env *sim.Env) {
					for {
						env.StepUntil(sim.Never)
					}
				})
			}
			b.ResetTimer()
			sys.Run(nil)
			b.ReportMetric(float64(burst*n), "msgs/op")
		})
	}
}

// BenchmarkSchedulerSendHolds is BenchmarkSchedulerSend under a scripted
// adversary with 16 hold rules (all released at tick 1, so delivery
// behaviour matches): the per-send cost of resolving holds.
func BenchmarkSchedulerSendHolds(b *testing.B) {
	holds := make([]Hold, 16)
	for i := range holds {
		holds[i] = Hold{From: NewSet(1), To: NewSet(2), Until: 1}
	}
	sys := MustNewSystem(Config{N: 2, T: 0, Seed: 1, MaxSteps: sim.Time(b.N) + 1, Bandwidth: 2, Holds: holds})
	sys.Spawn(1, func(env *sim.Env) {
		for {
			env.Send(2, benchPing, nil)
			env.Step()
		}
	})
	sys.Spawn(2, func(env *sim.Env) {
		for {
			env.Step()
		}
	})
	b.ResetTimer()
	sys.Run(nil)
}
