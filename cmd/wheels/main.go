// Command wheels runs the paper's two-wheels addition
// ◇S_x + ◇φ_y → Ω_z (Figs. 5–6) and reports convergence, the emulated
// trusted sets, and the traffic profile (quiescent lower wheel,
// steadily-inquiring upper wheel).
//
// Usage:
//
//	wheels [-n 5] [-t 2] [-x 2] [-y 1] [-seed 3] [-gst 600]
//	       [-crashes "4:800"]
package main

import (
	"flag"
	"fmt"
	"os"

	"fdgrid/internal/cliutil"
	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/rbcast"
	"fdgrid/internal/reduction"
	"fdgrid/internal/sim"
)

func main() {
	var (
		n       = flag.Int("n", 5, "number of processes")
		t       = flag.Int("t", 2, "resilience bound")
		x       = flag.Int("x", 2, "scope of the underlying ◇S_x")
		y       = flag.Int("y", 1, "scope of the underlying ◇φ_y")
		seed    = flag.Int64("seed", 3, "scheduler seed")
		gst     = flag.Int64("gst", 600, "global stabilization time")
		crashes = flag.String("crashes", "4:800", "crash schedule p:t,p:t")
		maxStep = flag.Int64("maxsteps", 400_000, "virtual-time budget")
		stable  = flag.Int64("stable", 20_000, "stop once outputs stable this long")
	)
	flag.Parse()

	z := *t + 2 - *x - *y
	crash, err := cliutil.ParseCrashes(*crashes, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := sim.Config{
		N: *n, T: *t, Seed: *seed, MaxSteps: sim.Time(*maxStep),
		GST: sim.Time(*gst), Crashes: crash, Bandwidth: *n,
	}
	sys := sim.MustNew(cfg)
	susp := fd.NewEvtS(sys, *x)
	quer := fd.NewEvtPhi(sys, *y)
	emu, reprs := reduction.SpawnTwoWheels(sys, susp, quer, *x, *y)
	trace := fd.WatchLeader(sys, emu)
	rep := sys.Run(trace.StableFor(sys.Pattern().Correct(), sim.Time(*stable)))

	fmt.Printf("two wheels: ◇S_%d + ◇φ_%d → Ω_%d   (n=%d t=%d seed=%d gst=%d)\n\n",
		*x, *y, z, *n, *t, *seed, *gst)

	tab := &cliutil.Table{Headers: []string{"process", "repr", "trusted", "last change"}}
	for p := 1; p <= *n; p++ {
		id := ids.ProcID(p)
		if sys.Pattern().CrashTime(id) != sim.Never {
			tab.Add(id, "-", "-", fmt.Sprintf("crashed@%d", sys.Pattern().CrashTime(id)))
			continue
		}
		final, _ := trace.FinalValue(id)
		tab.Add(id, reprs.Repr(id), final.String(), trace.LastChange(id))
	}
	fmt.Print(tab.String())

	xmove := rep.Messages.Sent[rbcast.WireTag(sim.Intern("wheel.xmove")).String()]
	lmove := rep.Messages.Sent[rbcast.WireTag(sim.Intern("wheel.lmove")).String()]
	inq := rep.Messages.Sent["wheel.inquiry"]
	resp := rep.Messages.Sent["wheel.response"]
	fmt.Printf("\nvirtual time: %d   messages: x_move=%d l_move=%d inquiry=%d response=%d\n",
		rep.Steps, xmove, lmove, inq, resp)

	if err := trace.CheckOmega(sys.Pattern(), z, sim.Time(*stable)/2); err != nil {
		fmt.Printf("RESULT: FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("RESULT: ok — emulated output satisfies Ω_%d (Theorem 8 at x+y+z = t+2)\n", z)
}
