// Command gridcheck verifies the paper's Fig. 1 grid by execution: for
// every line z (1..t+1) and every class on it, it runs z-set agreement
// in AS[n,t] through the constructions the paper prescribes and checks
// validity, z-agreement and termination.
//
// Usage:
//
//	gridcheck [-n 5] [-t 2] [-seed 7] [-gst 700] [-crashes "4:900"]
//
// Exit status 1 if any cell of the grid fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"fdgrid/internal/cliutil"
	"fdgrid/internal/core"
	"fdgrid/internal/sim"
)

func main() {
	var (
		n       = flag.Int("n", 5, "number of processes")
		t       = flag.Int("t", 2, "resilience bound (t < n/2)")
		seed    = flag.Int64("seed", 7, "scheduler seed")
		gst     = flag.Int64("gst", 700, "global stabilization time (ticks)")
		crashes = flag.String("crashes", "4:900", "crash schedule p:t,p:t")
		maxStep = flag.Int64("maxsteps", 2_000_000, "virtual-time budget")
	)
	flag.Parse()

	crash, err := cliutil.ParseCrashes(*crashes, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	tab := &cliutil.Table{Headers: []string{
		"line z", "class", "k(paper)", "decided", "distinct", "max round", "vticks", "result",
	}}
	failures := 0
	for z := 1; z <= *t+1; z++ {
		for _, c := range core.GridLine(z, *t) {
			cfg := sim.Config{
				N: *n, T: *t, Seed: *seed, MaxSteps: sim.Time(*maxStep),
				GST: sim.Time(*gst), Crashes: crash, Bandwidth: *n,
			}
			sys := sim.MustNew(cfg)
			out, err := core.SpawnKSetWith(sys, c, nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
			verdict := "ok"
			if !rep.StoppedEarly {
				verdict = "TIMEOUT"
				failures++
			} else if err := out.Check(sys.Pattern(), z); err != nil {
				verdict = err.Error()
				failures++
			}
			tab.Add(z, c.String(), core.KSetPower(c, *t),
				len(out.Decisions()), len(out.DistinctValues()), out.MaxRound(),
				rep.Steps, verdict)
		}
	}
	fmt.Printf("grid check: n=%d t=%d seed=%d gst=%d crashes=%q\n\n", *n, *t, *seed, *gst, *crashes)
	fmt.Print(tab.String())
	if failures > 0 {
		fmt.Printf("\n%d grid cells FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall grid cells verified")
}
