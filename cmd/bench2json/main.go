// Command bench2json converts `go test -bench` text output plus
// cmd/experiments sweep timings into the committed benchmark record
// (BENCH_PR3.json by default, via the Makefile's BENCH_OUT): per-
// benchmark ns/op samples (benchstat-compatible — the raw lines are
// carried verbatim) and custom metrics (vticks/run, msgs/run, …), plus
// the wall time of the full experiment sweep.
//
// If the output file already exists and carries a "baseline" section,
// that section is preserved, so re-running `make bench` refreshes the
// current numbers without losing the recorded PR-1 reference point.
//
// Usage:
//
//	bench2json -bench bench.txt -sweep sweep.txt -out BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"

	"fdgrid/internal/benchrec"
)

var sweepLine = regexp.MustCompile(`\((\d+) matrices, (\d+) cells, ([0-9.]+)s\)`)

func parseBench(path string, rec *benchrec.Record) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	parsed, err := benchrec.ParseBenchOutput(f)
	if err != nil {
		return err
	}
	for name, b := range parsed {
		rec.Benchmarks[name] = b
	}
	return nil
}

func parseSweep(path string, rec *benchrec.Record) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if m := sweepLine.FindStringSubmatch(sc.Text()); m != nil {
			v, err := strconv.ParseFloat(m[3], 64)
			if err == nil {
				rec.SweepWallS = append(rec.SweepWallS, v)
			}
			if cells, err := strconv.Atoi(m[2]); err == nil {
				rec.SweepCells = cells
			}
		}
	}
	return sc.Err()
}

func main() {
	var (
		bench   = flag.String("bench", "", "go test -bench output file")
		sweep   = flag.String("sweep", "", "cmd/experiments output file (wall-time lines)")
		out     = flag.String("out", "BENCH_PR3.json", "output JSON file")
		note    = flag.String("note", "", "free-form note recorded in the file")
		machine = flag.String("machine", "", "machine description recorded in the file")
	)
	flag.Parse()

	rec := &benchrec.Record{Note: *note, Machine: *machine, Benchmarks: map[string]*benchrec.Benchmark{}}
	if prev, err := os.ReadFile(*out); err == nil {
		var old benchrec.Record
		if json.Unmarshal(prev, &old) == nil {
			rec.Baseline = old.Baseline
			if rec.Note == "" {
				rec.Note = old.Note
			}
			if rec.Machine == "" {
				rec.Machine = old.Machine
			}
		}
	}
	if *bench != "" {
		if err := parseBench(*bench, rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *sweep != "" {
		if err := parseSweep(*sweep, rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	names := make([]string, 0, len(rec.Benchmarks))
	for n := range rec.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("wrote %s: %d benchmarks, %d sweep timings\n", *out, len(names), len(rec.SweepWallS))
}
