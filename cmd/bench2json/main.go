// Command bench2json converts `go test -bench` text output plus
// cmd/experiments sweep timings into the committed benchmark record
// (BENCH_PR2.json): per-benchmark ns/op samples (benchstat-compatible —
// the raw lines are carried verbatim) and custom metrics (vticks/run,
// msgs/run, …), plus the wall time of the full 151-cell sweep.
//
// If the output file already exists and carries a "baseline" section,
// that section is preserved, so re-running `make bench` refreshes the
// current numbers without losing the recorded PR-1 reference point.
//
// Usage:
//
//	bench2json -bench bench.txt -sweep sweep.txt -out BENCH_PR2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"fdgrid/internal/benchrec"
)

// benchLine matches one `go test -bench` result line. The name group is
// lazy so the `-N` GOMAXPROCS suffix (absent on a 1-CPU box, present
// everywhere else) lands in its own group and is stripped — baseline
// keys must compare equal across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+(.*)$`)
var sweepLine = regexp.MustCompile(`\((\d+) matrices, (\d+) cells, ([0-9.]+)s\)`)

func parseBench(path string, rec *benchrec.Record) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		b := rec.Benchmarks[name]
		if b == nil {
			b = &benchrec.Benchmark{Metrics: map[string][]float64{}}
			rec.Benchmarks[name] = b
		}
		b.Raw = append(b.Raw, line)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsOp = append(b.NsOp, v)
			default:
				b.Metrics[unit] = append(b.Metrics[unit], v)
			}
		}
	}
	return sc.Err()
}

func parseSweep(path string, rec *benchrec.Record) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if m := sweepLine.FindStringSubmatch(sc.Text()); m != nil {
			v, err := strconv.ParseFloat(m[3], 64)
			if err == nil {
				rec.SweepWallS = append(rec.SweepWallS, v)
			}
		}
	}
	return sc.Err()
}

func main() {
	var (
		bench   = flag.String("bench", "", "go test -bench output file")
		sweep   = flag.String("sweep", "", "cmd/experiments output file (wall-time lines)")
		out     = flag.String("out", "BENCH_PR2.json", "output JSON file")
		note    = flag.String("note", "", "free-form note recorded in the file")
		machine = flag.String("machine", "", "machine description recorded in the file")
	)
	flag.Parse()

	rec := &benchrec.Record{Note: *note, Machine: *machine, Benchmarks: map[string]*benchrec.Benchmark{}}
	if prev, err := os.ReadFile(*out); err == nil {
		var old benchrec.Record
		if json.Unmarshal(prev, &old) == nil {
			rec.Baseline = old.Baseline
			if rec.Note == "" {
				rec.Note = old.Note
			}
			if rec.Machine == "" {
				rec.Machine = old.Machine
			}
		}
	}
	if *bench != "" {
		if err := parseBench(*bench, rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *sweep != "" {
		if err := parseSweep(*sweep, rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	names := make([]string, 0, len(rec.Benchmarks))
	for n := range rec.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("wrote %s: %d benchmarks, %d sweep timings\n", *out, len(names), len(rec.SweepWallS))
}
