// Command kset runs one k-set agreement instance in AS[n,t] with a
// chosen failure detector class and prints the decisions.
//
// Usage:
//
//	kset [-n 7] [-t 3] [-class "Omega_2"] [-seed 1] [-gst 500]
//	     [-crashes "2:0,5:900"] [-k 2]
//
// The class is any grid class in the paper's notation (ASCII): S_x,
// <>S_x, Omega_z, phi_y, <>phi_y, Psi_y — e.g. "<>S_3", "phi_1".
package main

import (
	"flag"
	"fmt"
	"os"

	"fdgrid/internal/cliutil"
	"fdgrid/internal/core"
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
)

func main() {
	var (
		n       = flag.Int("n", 7, "number of processes")
		t       = flag.Int("t", 3, "resilience bound (t < n/2)")
		class   = flag.String("class", "Omega_2", "failure detector class, e.g. <>S_3")
		k       = flag.Int("k", 0, "agreement degree to check (default: the class's grid line)")
		seed    = flag.Int64("seed", 1, "scheduler seed")
		gst     = flag.Int64("gst", 500, "global stabilization time (ticks)")
		crashes = flag.String("crashes", "", "crash schedule p:t,p:t")
		maxStep = flag.Int64("maxsteps", 2_000_000, "virtual-time budget")
	)
	flag.Parse()

	c, err := core.ParseClass(*class)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	crash, err := cliutil.ParseCrashes(*crashes, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kk := *k
	if kk == 0 {
		kk = core.KSetPower(c, *t)
	}

	cfg := sim.Config{
		N: *n, T: *t, Seed: *seed, MaxSteps: sim.Time(*maxStep),
		GST: sim.Time(*gst), Crashes: crash, Bandwidth: *n,
	}
	sys := sim.MustNew(cfg)
	out, err := core.SpawnKSetWith(sys, c, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))

	fmt.Printf("%s-based %d-set agreement, n=%d t=%d seed=%d gst=%d crashes=%q\n\n",
		c, kk, *n, *t, *seed, *gst, *crashes)
	tab := &cliutil.Table{Headers: []string{"process", "proposal", "decision", "round", "at vtick"}}
	decs := out.Decisions()
	for p := 1; p <= *n; p++ {
		id := ids.ProcID(p)
		if d, ok := decs[id]; ok {
			tab.Add(id, int(id), d.Value, d.Round, d.At)
		} else if sys.Pattern().CrashTime(id) != sim.Never {
			tab.Add(id, int(id), "-", "-", fmt.Sprintf("crashed@%d", sys.Pattern().CrashTime(id)))
		} else {
			tab.Add(id, int(id), "-", "-", "undecided")
		}
	}
	fmt.Print(tab.String())
	fmt.Printf("\ndistinct values: %v   virtual time: %d   messages: %d\n",
		out.DistinctValues(), rep.Steps, rep.Messages.TotalSent)
	if !rep.StoppedEarly {
		fmt.Println("RESULT: TIMEOUT (some correct process undecided)")
		os.Exit(1)
	}
	if err := out.Check(sys.Pattern(), kk); err != nil {
		fmt.Printf("RESULT: FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("RESULT: ok (validity, %d-agreement, termination)\n", kk)
}
