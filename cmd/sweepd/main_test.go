package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fdgrid/internal/sweep"
)

func TestLoadMatrices(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	good := write("good.json", `[{"name":"m","protocol":"kset-omega","seeds":[0],"sizes":[{"n":5,"t":2}]}]`)
	ms, err := loadMatrices(good)
	if err != nil || len(ms) != 1 || ms[0].Name != "m" || ms[0].Protocol != "kset-omega" {
		t.Fatalf("good spec: %+v %v", ms, err)
	}

	cases := []struct {
		path string
		want string // substring of the error
	}{
		{"", "-matrices is required"},
		{filepath.Join(dir, "missing.json"), "no such file"},
		{write("bad.json", `{"not":"an array"}`), "JSON array"},
		{write("empty.json", `[]`), "no matrices"},
	}
	for _, c := range cases {
		_, err := loadMatrices(c.path)
		if err == nil {
			t.Errorf("loadMatrices(%q) accepted", c.path)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("loadMatrices(%q) error %q does not mention %q", c.path, err, c.want)
		}
	}
}

// TestMatrixSpecRoundTrip pins the contract between `experiments
// -matrices` and sweepd: a Matrix survives the JSON spec file with its
// schedulable content intact.
func TestMatrixSpecRoundTrip(t *testing.T) {
	m := sweep.Matrix{
		Name: "rt", Protocol: "kset-omega",
		Seeds: []int64{0, 1}, Sizes: []sweep.Size{{N: 5, T: 2}},
		Patterns: []sweep.CrashPattern{{Name: "late", Crashes: []sweep.CrashSpec{{Proc: 0, At: 450}}}},
		Combos:   []sweep.Combo{{Z: 2}},
		GST:      400, MaxSteps: 500_000,
	}
	dir := t.TempDir()
	p := filepath.Join(dir, "spec.json")
	blob := `[` + mustJSON(t, m) + `]`
	if err := os.WriteFile(p, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	ms, err := loadMatrices(p)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := ms[0].Cells()
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(want) {
		t.Fatalf("round-tripped matrix expands to %d cells, want %d", len(cells), len(want))
	}
}

func mustJSON(t *testing.T, m sweep.Matrix) string {
	t.Helper()
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}
