// Command sweepd is the fault-tolerant distributed sweep dispatcher: it
// reads a suite of sweep matrices (the JSON array `experiments
// -matrices` exports), fans the work out across worker processes over a
// length-prefixed JSON wire protocol, and merges the streamed results
// into bytes identical to the single-process run — surviving worker
// crashes, hangs, stragglers and corrupt frames along the way via the
// heartbeat suspector, bounded retries, speculative re-dispatch and
// local fallback in internal/dispatch.
//
// Dispatcher mode (default):
//
//	sweepd -matrices suite-spec.json -workers 3 -report suite.json
//	sweepd -matrices ... -connect host:a,host:b   # TCP workers instead of subprocesses
//	sweepd ... -fault "0:crash@5;2:slow=50ms"     # deterministic fault injection
//	sweepd ... -golden suite.golden.json          # byte-compare the merged suite
//	sweepd ... -stats stats.json                  # scheduling stats (separate artifact)
//
// Worker modes:
//
//	sweepd -worker            # serve the protocol on stdin/stdout
//	sweepd -serve :7070       # serve one dispatcher connection over TCP
//
// The merged report carries no scheduling detail — retries, worker
// assignment and duplicates land in the -stats artifact — so its bytes
// stay comparable against the unsharded golden no matter what faults
// the run absorbed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fdgrid/internal/dispatch"
	"fdgrid/internal/sweep"
)

func main() {
	var (
		matricesF = flag.String("matrices", "", "suite spec: JSON array of sweep matrices (see `experiments -matrices`)")
		workersN  = flag.Int("workers", 3, "subprocess workers to spawn (ignored with -connect)")
		connect   = flag.String("connect", "", "comma-separated worker addresses to dial instead of spawning subprocesses")
		units     = flag.Int("units", 4, "work units (shards) per matrix")
		retries   = flag.Int("retries", 2, "re-dispatch attempts per unit before local fallback")
		suspect   = flag.Duration("suspect", time.Second, "suspector base timeout (heartbeat and progress)")
		suspectMx = flag.Duration("suspect-max", 0, "silence that hardens suspicion into dismissal (0 = 10x -suspect)")
		speculate = flag.Bool("speculate", true, "speculatively re-dispatch units held by stragglers")
		fallback  = flag.Bool("local-fallback", true, "run undispatchable units in-process instead of failing")
		faults    = flag.String("fault", "", "fault injection schedule, e.g. \"0:crash@5;2:slow=50ms\" (subprocess workers only)")
		reportF   = flag.String("report", "", "write the merged suite JSON here")
		golden    = flag.String("golden", "", "byte-compare the merged suite against this file and fail on any difference")
		statsF    = flag.String("stats", "", "write the scheduling stats JSON here")
		pool      = flag.Int("pool", 0, "per-worker sweep pool size (0 = split GOMAXPROCS across subprocess workers)")
		verbose   = flag.Bool("v", false, "log scheduling decisions to stderr")

		worker    = flag.Bool("worker", false, "worker mode: serve the dispatch protocol on stdin/stdout")
		serve     = flag.String("serve", "", "worker mode: listen on this address and serve one dispatcher connection")
		name      = flag.String("name", "", "worker mode: self-reported worker name")
		heartbeat = flag.Duration("heartbeat", 500*time.Millisecond, "worker mode: heartbeat interval")
		faultSpec = flag.String("worker-fault", "", "worker mode: arm one fault, e.g. \"crash@5\" (for tests)")
	)
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *worker || *serve != "" {
		if err := runWorker(*serve, *name, *pool, *heartbeat, *faultSpec); err != nil {
			fatal(err)
		}
		return
	}
	if err := runDispatcher(dispatcherFlags{
		matricesF: *matricesF, workersN: *workersN, connect: *connect,
		units: *units, retries: *retries, suspect: *suspect, suspectMax: *suspectMx,
		speculate: *speculate, fallback: *fallback, faults: *faults,
		reportF: *reportF, golden: *golden, statsF: *statsF, pool: *pool, verbose: *verbose,
	}); err != nil {
		fatal(err)
	}
}

// runWorker is both worker modes: stdio (the subprocess fleet) and TCP
// (-serve, one dispatcher connection then exit).
func runWorker(serveAddr, name string, pool int, heartbeat time.Duration, faultSpec string) error {
	var fault dispatch.Fault
	if faultSpec != "" {
		f, err := dispatch.ParseFault(faultSpec)
		if err != nil {
			return err
		}
		fault = f
	}
	opt := dispatch.WorkerOptions{Name: name, Pool: pool, Heartbeat: heartbeat, Fault: fault}
	if serveAddr == "" {
		if opt.Name == "" {
			opt.Name = fmt.Sprintf("stdio-%d", os.Getpid())
		}
		return dispatch.ServeWorker(dispatch.Stdio{}, opt)
	}
	ln, err := net.Listen("tcp", serveAddr)
	if err != nil {
		return err
	}
	defer ln.Close()
	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	if opt.Name == "" {
		opt.Name = conn.LocalAddr().String()
	}
	return dispatch.ServeWorker(conn, opt)
}

type dispatcherFlags struct {
	matricesF, connect, faults, reportF, golden, statsF string
	workersN, units, retries, pool                      int
	suspect, suspectMax                                 time.Duration
	speculate, fallback, verbose                        bool
}

func runDispatcher(f dispatcherFlags) error {
	matrices, err := loadMatrices(f.matricesF)
	if err != nil {
		return err
	}
	schedule, err := dispatch.ParseFaults(f.faults)
	if err != nil {
		return err
	}

	var fleet []dispatch.Transport
	if f.connect != "" {
		if f.faults != "" {
			return fmt.Errorf("sweepd: -fault injects into spawned subprocess workers; arm TCP workers with -worker-fault instead")
		}
		for _, addr := range strings.Split(f.connect, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return fmt.Errorf("sweepd: dial %s: %w", addr, err)
			}
			c := conn
			fleet = append(fleet, dispatch.Transport{Name: addr, RW: conn, Kill: func() { c.Close() }})
		}
		if len(fleet) == 0 {
			return fmt.Errorf("sweepd: -connect %q names no addresses", f.connect)
		}
	} else if f.workersN > 0 {
		exe, err := os.Executable()
		if err != nil {
			return err
		}
		pool := f.pool
		if pool == 0 {
			pool = runtime.GOMAXPROCS(0) / f.workersN
			if pool < 1 {
				pool = 1
			}
		}
		for i := 0; i < f.workersN; i++ {
			args := []string{"-worker", "-name", fmt.Sprintf("sub%d", i), "-pool", strconv.Itoa(pool)}
			if fault, armed := schedule[i]; armed {
				args = append(args, "-worker-fault", fault.String())
			}
			cmd := exec.Command(exe, args...)
			cmd.Stderr = os.Stderr
			tr, err := dispatch.SpawnWorker(fmt.Sprintf("sub%d", i), cmd)
			if err != nil {
				return err
			}
			fleet = append(fleet, tr)
		}
	}

	cfg := dispatch.Config{
		Matrices:       matrices,
		UnitsPerMatrix: f.units,
		MaxRetries:     f.retries,
		SuspectAfter:   f.suspect,
		SuspectMax:     f.suspectMax,
		Speculate:      f.speculate,
		LocalFallback:  f.fallback,
		LocalPool:      f.pool,
	}
	if f.verbose {
		cfg.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}

	start := time.Now()
	reports, stats, err := dispatch.Run(cfg, fleet)
	if stats != nil && f.statsF != "" {
		if blob, merr := json.MarshalIndent(stats, "", "  "); merr == nil {
			os.WriteFile(f.statsF, blob, 0o644)
		}
	}
	if err != nil {
		return err
	}

	suite, err := sweep.SuiteJSON(reports)
	if err != nil {
		return err
	}
	if f.reportF != "" {
		if err := os.WriteFile(f.reportF, suite, 0o644); err != nil {
			return err
		}
	}
	if f.golden != "" {
		want, err := os.ReadFile(f.golden)
		if err != nil {
			return err
		}
		if string(suite) != string(want) {
			return fmt.Errorf("sweepd: merged suite differs from golden %s (got %d bytes, want %d)", f.golden, len(suite), len(want))
		}
		fmt.Printf("merged suite matches golden %s\n", f.golden)
	}

	cells := 0
	for _, r := range reports {
		cells += len(r.Cells)
	}
	fmt.Printf("dispatched %d matrices (%d units, %d cells) across %d workers (%d retries, %d speculated, %d lost, %d local, %.2fs)\n",
		len(reports), stats.Units, cells, len(fleet), stats.Retries, stats.Speculated, stats.WorkersLost, stats.LocalUnits, time.Since(start).Seconds())
	return nil
}

// loadMatrices reads and sanity-checks the suite spec.
func loadMatrices(path string) ([]sweep.Matrix, error) {
	if path == "" {
		return nil, fmt.Errorf("sweepd: -matrices is required (export one with `experiments -matrices suite-spec.json`)")
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var matrices []sweep.Matrix
	if err := json.Unmarshal(blob, &matrices); err != nil {
		return nil, fmt.Errorf("sweepd: %s: %w (want a JSON array of sweep matrices)", path, err)
	}
	if len(matrices) == 0 {
		return nil, fmt.Errorf("sweepd: %s holds no matrices", path)
	}
	return matrices, nil
}
