// Command benchgate is the CI benchmark-regression gate: it compares a
// fresh `go test -bench` run against the committed benchmark record and
// fails when any selected benchmark's median ns/op regressed beyond the
// threshold.
//
// The committed record's numbers were measured on one machine and CI
// runs on another, so the gate is a coarse tripwire for order-of-
// magnitude breakage (a lock reintroduced on the token path, an
// accidental allocation per tick), not a precision instrument — hence
// the generous default threshold and the median-of-counts input.
//
// -emit-raw writes the baseline's raw benchmark lines to a file so
// benchstat can render a proper side-by-side comparison next to the
// gate's verdict.
//
// Usage:
//
//	benchgate -baseline BENCH_PR3.json -bench fresh.txt [-match 'BenchmarkScheduler'] [-threshold 0.25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"

	"fdgrid/internal/benchrec"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_PR3.json", "committed benchmark record")
		benchPath    = flag.String("bench", "", "fresh `go test -bench` output file")
		match        = flag.String("match", "BenchmarkScheduler", "regexp selecting the gated benchmarks")
		threshold    = flag.Float64("threshold", 0.25, "maximum tolerated median ns/op regression (0.25 = +25%)")
		emitRaw      = flag.String("emit-raw", "", "write the baseline's raw benchmark lines here (for benchstat)")
	)
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sel, err := regexp.Compile(*match)
	if err != nil {
		fatal(err)
	}
	blob, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var rec benchrec.Record
	if err := json.Unmarshal(blob, &rec); err != nil {
		fatal(fmt.Errorf("benchgate: unreadable record %s: %w", *baselinePath, err))
	}

	if *emitRaw != "" {
		var lines []string
		names := sortedNames(rec.Benchmarks)
		for _, name := range names {
			lines = append(lines, rec.Benchmarks[name].Raw...)
		}
		if err := os.WriteFile(*emitRaw, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	if *benchPath == "" {
		if *emitRaw == "" {
			fatal(fmt.Errorf("benchgate: nothing to do (need -bench and/or -emit-raw)"))
		}
		return
	}

	f, err := os.Open(*benchPath)
	if err != nil {
		fatal(err)
	}
	fresh, err := benchrec.ParseBenchOutput(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	gated, failed := 0, 0
	for _, name := range sortedNames(fresh) {
		if !sel.MatchString(name) {
			continue
		}
		cur := benchrec.Median(fresh[name].NsOp)
		if cur == 0 {
			continue
		}
		base, ok := rec.Benchmarks[name]
		if !ok || benchrec.Median(base.NsOp) == 0 {
			fmt.Printf("SKIP %-48s no baseline sample\n", name)
			continue
		}
		gated++
		baseMed := benchrec.Median(base.NsOp)
		ratio := cur / baseMed
		verdict := "ok  "
		if ratio > 1+*threshold {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%s %-48s %10.1f → %10.1f ns/op  (%+.1f%%)\n",
			verdict, name, baseMed, cur, (ratio-1)*100)
	}
	// Cross-check the other direction: every gated baseline benchmark
	// must appear in the fresh run. Iterating fresh names alone would let
	// a deleted (or renamed, or accidentally skipped) benchmark slip
	// through — removing BenchmarkSchedulerTick must fail the gate, not
	// silently shrink it.
	missing := 0
	for _, name := range sortedNames(rec.Benchmarks) {
		if !sel.MatchString(name) || benchrec.Median(rec.Benchmarks[name].NsOp) == 0 {
			continue
		}
		if b, ok := fresh[name]; !ok || benchrec.Median(b.NsOp) == 0 {
			fmt.Printf("MISS %-48s gated in the baseline but absent from the fresh run\n", name)
			missing++
		}
	}
	if gated == 0 && missing == 0 {
		fatal(fmt.Errorf("benchgate: no benchmark matched %q with a baseline — the gate gated nothing", *match))
	}
	if missing > 0 {
		fatal(fmt.Errorf("benchgate: %d gated baseline benchmarks missing from the fresh run", missing))
	}
	if failed > 0 {
		fatal(fmt.Errorf("benchgate: %d of %d gated benchmarks regressed beyond +%.0f%%", failed, gated, *threshold*100))
	}
	fmt.Printf("benchgate: %d benchmarks within +%.0f%% of %s\n", gated, *threshold*100, *baselinePath)
}

func sortedNames(m map[string]*benchrec.Benchmark) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
