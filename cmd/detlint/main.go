// Command detlint machine-checks the determinism and run-token
// ownership contracts of this repository (see the "Enforced
// invariants" section of docs/ARCHITECTURE.md): no wall-clock reads,
// no global math/rand draws, no map-iteration order leaking into
// ordered output, no locks or goroutines inside run-token-owned
// packages, no reflection-shaped formatting in the canonical trace
// renderers. Violations are suppressed only by an explicit, audited
// escape:
//
//	//detlint:allow <rule> -- <reason>
//
// Usage:
//
//	detlint [-C dir] [packages]
//
// Packages default to ./... . Exit status 0 means no diagnostics,
// 1 means violations were reported, 2 means the load itself failed.
// `make vet` (and through it `make ci` and the CI vet job) runs
// `detlint ./...` so a new violation fails the gate, not a golden
// diff three PRs later.
package main

import (
	"flag"
	"fmt"
	"os"

	"fdgrid/internal/detlint"
)

func main() {
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	flag.Parse()
	patterns := flag.Args()

	pkgs, err := detlint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := detlint.Check(pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
