package main

import (
	"encoding/json"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// schemaDoc is the key reference the suite artifact is documented by.
const schemaDoc = "../../docs/REPORT_SCHEMA.md"

// docKeyRe matches a schema-table row's key column: `| `key` | ...`.
var docKeyRe = regexp.MustCompile("(?m)^\\| `([a-z_]+)` \\|")

// documentedKeys parses the backticked key column of every table in
// REPORT_SCHEMA.md.
func documentedKeys(t *testing.T) map[string]bool {
	t.Helper()
	blob, err := os.ReadFile(schemaDoc)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, m := range docKeyRe.FindAllStringSubmatch(string(blob), -1) {
		keys[m[1]] = true
	}
	if len(keys) == 0 {
		t.Fatalf("no documented keys parsed from %s", schemaDoc)
	}
	return keys
}

// TestReportSchemaDocumented cross-checks REPORT_SCHEMA.md against the
// committed suite golden: every key that actually appears at the
// report, matrix, or cell level must have a table row, and the trace
// keys — absent from the golden by design, since the suite runs
// untraced — must be documented too.
func TestReportSchemaDocumented(t *testing.T) {
	keys := documentedKeys(t)
	blob, err := os.ReadFile(goldenPath(t))
	if err != nil {
		t.Fatal(err)
	}
	var suite []struct {
		Matrix map[string]json.RawMessage   `json:"matrix"`
		Cells  []map[string]json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(blob, &suite); err != nil {
		t.Fatal(err)
	}
	var reports []map[string]json.RawMessage
	if err := json.Unmarshal(blob, &reports); err != nil {
		t.Fatal(err)
	}

	seen := map[string]string{} // key -> level, for the failure message
	for _, r := range reports {
		for k := range r {
			seen[k] = "report"
		}
	}
	for _, r := range suite {
		for k := range r.Matrix {
			seen[k] = "matrix"
		}
		for _, c := range r.Cells {
			for k := range c {
				seen[k] = "cell"
			}
		}
	}
	if len(seen) < 20 {
		t.Fatalf("implausibly few keys (%d) collected from the suite golden", len(seen))
	}
	for k, level := range seen {
		if !keys[k] {
			t.Errorf("%s-level key %q appears in the suite golden but has no row in %s", level, k, schemaDoc)
		}
	}
	// Keys the golden cannot show (untraced suite, replay-only field)
	// still need rows: they are the artifact's documented extension.
	for _, k := range []string{"trace_level", "trace_digest", "trace_events", "divergence", "shard"} {
		if !keys[k] {
			t.Errorf("key %q must be documented in %s", k, schemaDoc)
		}
	}
}

// linkRe matches markdown links; images and autolinks don't occur in
// these docs.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocLinksResolve walks every relative link in README.md and
// docs/*.md and checks its target exists, so doc moves and renames
// can't leave dangling references.
func TestDocLinksResolve(t *testing.T) {
	docs := []string{"../../README.md", "../../docs/ARCHITECTURE.md", "../../docs/REPORT_SCHEMA.md"}
	extra, err := filepath.Glob("../../docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range extra {
		if d != "../../docs/ARCHITECTURE.md" && d != "../../docs/REPORT_SCHEMA.md" {
			docs = append(docs, d)
		}
	}
	checked := 0
	for _, doc := range docs {
		blob, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(blob), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if unescaped, err := url.PathUnescape(target); err == nil {
				target = unescaped
			}
			if _, err := os.Stat(filepath.Join(filepath.Dir(doc), target)); err != nil {
				t.Errorf("%s links to %q: %v", filepath.Base(doc), m[1], err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links checked; the link regexp or doc list is broken")
	}
}
