// Command experiments regenerates EXPERIMENTS.md: every experiment of
// DESIGN.md §5 (one per figure/result of the paper) is a declarative
// sweep.Matrix; this driver fans the cells out across a worker pool,
// aggregates the per-cell results into the familiar tables, and records
// the paper's claim next to the measured outcome. The per-cell results
// are deterministic, so the rendered report is byte-stable run to run.
//
// The suite also shards: `-shard i/m` runs only every m-th cell of
// every matrix and writes a partial JSON suite; m such runs recombine
// with `-merge` into bytes identical to the unsharded `-report` output.
// That is how CI fans the sweep out across jobs. `-dispatch N` goes the
// rest of the way: the suite runs through the internal/dispatch
// scheduler across N subprocess workers (self-exec'd copies of this
// binary), with the merged report still byte-identical; `-matrices`
// exports the suite's matrices in the JSON form cmd/sweepd consumes.
//
// Usage:
//
//	experiments [-out EXPERIMENTS.md] [-seeds 3] [-workers N] [-report sweep.json]
//	experiments -shard i/m -report shard-i.json        # one shard, no markdown
//	experiments -merge -report merged.json shard-*.json
//	experiments -dispatch 3 -report suite.json         # distributed, no markdown
//	experiments -matrices suite-spec.json              # export matrices for sweepd
//	experiments ... -golden suite.golden.json          # byte-compare the suite
//	experiments ... -cpuprofile cpu.prof -memprofile mem.prof
//	experiments -replay MATRIX:INDEX                   # trace one suite cell
//	experiments -replay MATRIX:INDEX -perturb stab+2000 [-trace full]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"fdgrid/internal/adversary"
	"fdgrid/internal/benchrec"
	"fdgrid/internal/cliutil"
	"fdgrid/internal/core"
	"fdgrid/internal/dispatch"
	"fdgrid/internal/ids"
	"fdgrid/internal/sim"
	"fdgrid/internal/sweep"
	"fdgrid/internal/trace"
)

func main() {
	var (
		out       = flag.String("out", "EXPERIMENTS.md", "output file")
		seeds     = flag.Int("seeds", 3, "seeds per configuration")
		workers   = flag.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
		report    = flag.String("report", "", "also write the canonical JSON sweep reports here")
		verbose   = flag.Bool("v", false, "print per-matrix progress to stderr")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the sweep here")
		memprof   = flag.String("memprofile", "", "write a heap profile (after the sweep, post-GC) here")
		benchFile = flag.String("bench", "BENCH_PR7.json", "benchmark record to render in the EXP-PERF section")
		shardSpec = flag.String("shard", "", "run only shard i/m of every matrix (format \"i/m\"); requires -report and skips the markdown output")
		merge     = flag.Bool("merge", false, "merge the shard suite files given as arguments into one suite; requires -report")
		golden    = flag.String("golden", "", "after writing the suite JSON, byte-compare it against this file and fail on any difference")
		replay    = flag.String("replay", "", "re-run one suite cell with decision tracing on (format \"MATRIX:INDEX\"); skips the suite")
		perturb   = flag.String("perturb", "", "with -replay: one counterfactual edit (\"gst±K\", \"stab±K\", \"crash=P@T\", \"hold[I]±K\") applied to a second run, diffed against the first")
		traceLvl  = flag.String("trace", "", "with -replay: trace level (\"decisions\" or \"full\"; default decisions)")
		matricesF = flag.String("matrices", "", "write the suite's matrices as a JSON array here (sweepd's input format) and exit without running anything")
		dispatchN = flag.Int("dispatch", 0, "run the suite through the distributed dispatcher with this many subprocess workers; requires -report and skips the markdown output")
		wkStdio   = flag.Bool("worker-stdio", false, "internal: run as a stdio dispatch worker (the -dispatch mode spawns these)")
	)
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *wkStdio {
		if err := dispatch.ServeWorker(dispatch.Stdio{}, dispatch.WorkerOptions{
			Name: "experiments-worker",
			Pool: *workers,
		}); err != nil {
			fatal(err)
		}
		return
	}

	if *matricesF != "" {
		ms := suiteMatrices(*seeds)
		blob, err := json.MarshalIndent(ms, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*matricesF, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d matrices)\n", *matricesF, len(ms))
		return
	}

	if *replay != "" {
		if err := runReplay(*replay, *perturb, *traceLvl, *seeds, *workers); err != nil {
			fatal(err)
		}
		return
	}
	if *perturb != "" || *traceLvl != "" {
		fatal(fmt.Errorf("experiments: -perturb and -trace require -replay"))
	}

	if *merge {
		if *report == "" {
			fatal(fmt.Errorf("experiments: -merge requires -report"))
		}
		suite, err := mergeSuites(flag.Args())
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*report, suite, 0o644); err != nil {
			fatal(err)
		}
		if err := compareGolden(suite, *golden); err != nil {
			fatal(err)
		}
		fmt.Printf("merged %d shard suites into %s (%d bytes)\n", len(flag.Args()), *report, len(suite))
		return
	}

	if *dispatchN > 0 {
		if *report == "" {
			fatal(fmt.Errorf("experiments: -dispatch requires -report (the dispatched suite has no markdown output)"))
		}
		if err := runDispatched(*dispatchN, *seeds, *workers, *report, *golden, *verbose); err != nil {
			fatal(err)
		}
		return
	}

	shard, err := parseShard(*shardSpec)
	if err != nil {
		fatal(err)
	}
	if shard.Count > 0 && *report == "" {
		fatal(fmt.Errorf("experiments: -shard requires -report (a shard has no markdown output)"))
	}
	opts := sweep.Options{Workers: *workers, Shard: shard}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	md, reports, err := buildSuite(*seeds, opts, *benchFile, *verbose)
	if err != nil {
		fatal(err)
	}

	if shard.Count == 0 {
		if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
			fatal(err)
		}
	}
	cells := 0
	for _, r := range reports {
		cells += len(r.Cells)
	}
	if *report != "" {
		suite, err := suiteJSON(reports)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*report, suite, 0o644); err != nil {
			fatal(err)
		}
		if err := compareGolden(suite, *golden); err != nil {
			fatal(err)
		}
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			fatal(err)
		}
		// GC first so the profile shows live retained memory (the
		// sweep's steady-state footprint), not transient garbage.
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	target := *out
	if shard.Count > 0 {
		target = fmt.Sprintf("%s [shard %d/%d]", *report, shard.Index, shard.Count)
	}
	fmt.Printf("wrote %s (%d matrices, %d cells, %.2fs)\n", target, len(reports), cells, time.Since(start).Seconds())
}

// parseShard parses "i/m" (empty = unsharded). Strict: both halves
// must be bare integers — fmt.Sscanf-style prefix parsing would accept
// trailing junk like "0/4x" and silently run the wrong shard.
func parseShard(spec string) (sweep.Shard, error) {
	if spec == "" {
		return sweep.Shard{}, nil
	}
	idx, cnt, ok := strings.Cut(spec, "/")
	if !ok {
		return sweep.Shard{}, fmt.Errorf("experiments: bad -shard %q (want i/m)", spec)
	}
	var s sweep.Shard
	var err error
	if s.Index, err = strconv.Atoi(idx); err != nil {
		return sweep.Shard{}, fmt.Errorf("experiments: bad -shard %q: index %q is not an integer (want i/m)", spec, idx)
	}
	if s.Count, err = strconv.Atoi(cnt); err != nil {
		return sweep.Shard{}, fmt.Errorf("experiments: bad -shard %q: count %q is not an integer (want i/m)", spec, cnt)
	}
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return sweep.Shard{}, fmt.Errorf("experiments: -shard %q out of range", spec)
	}
	return s, nil
}

// buildSuite runs every experiment matrix under opts and renders the
// markdown report. With a shard set, only the shard's cells run and the
// markdown (built over partial data) is meaningful only as a side
// effect — callers discard it.
func buildSuite(seeds int, opts sweep.Options, benchFile string, verbose bool) (string, []*sweep.Report, error) {
	var b strings.Builder
	b.WriteString(`# EXPERIMENTS — paper vs. measured

Generated by ` + "`go run ./cmd/experiments`" + `. Every experiment of
DESIGN.md §5 is a declarative sweep.Matrix (internal/sweep): its cells —
seed × size × crash pattern × class combination — run in parallel, each
on an isolated simulated asynchronous system AS[n,t] (internal/sim)
against ground-truth oracles (internal/fd), and the verdicts aggregate
into the tables below next to the paper's claim. Virtual time is in
scheduler ticks; message counts are network-level sends. The simulator
is lockstep-deterministic, so every number here is reproducible.
Absolute numbers are simulator-specific; the *shapes* (who solves what,
parameter frontiers, single-round fast paths, quiescence) are the
reproduction targets.

`)

	var reports []*sweep.Report
	var runErr error
	run := func(m sweep.Matrix) *sweep.Report {
		if runErr != nil {
			return &sweep.Report{Matrix: m}
		}
		r, err := sweep.Run(m, opts)
		if err != nil {
			runErr = err
			return &sweep.Report{Matrix: m}
		}
		reports = append(reports, r)
		if verbose {
			fmt.Fprintf(os.Stderr, "%-32s %6.2fs  %s\n",
				r.Matrix.Name, float64(r.WallNS)/1e9, r.Summary())
		}
		return r
	}

	forEachExperiment(&b, run, seeds)
	if runErr == nil && opts.Shard.Count == 0 {
		// Sharded runs skip the counterfactual: it never contributes to
		// the suite JSON (its runs bypass `run`), and shard markdown is
		// discarded anyway.
		runErr = expCounterfactual(&b, seeds)
	}
	expPerf(&b, benchFile)

	if runErr != nil {
		return "", nil, runErr
	}
	return b.String(), reports, nil
}

// forEachExperiment renders every sweep-driven experiment section, in
// suite order, through run. It is the single definition of which
// matrices make up the suite: buildSuite runs them, suiteMatrices
// collects them without running a cell.
func forEachExperiment(b *strings.Builder, run func(sweep.Matrix) *sweep.Report, seeds int) {
	expF1(b, run, seeds)
	expF2(b, run, seeds)
	expF3(b, run, seeds)
	expF3ab(b, run, seeds)
	expF4(b)
	expF5(b, run, seeds)
	expF6(b, run, seeds)
	expF8(b, run, seeds)
	expF9(b, run, seeds)
	expT5(b, run, seeds)
	expT8(b, run, seeds)
	expT9(b, run)
	expBaselines(b, run, seeds)
	expRepeated(b, run, seeds)
	expAblation(b, run, seeds)
	expScale(b, run, seeds)
	expOracle(b, run, seeds)
}

// suiteMatrices returns every suite matrix, in suite order, without
// running any cells: the exp sections render over empty reports into a
// discarded builder. -replay resolves its MATRIX:INDEX argument against
// this list, so a replayed cell is exactly the suite cell of that name
// and index.
func suiteMatrices(seeds int) []sweep.Matrix {
	var b strings.Builder
	var ms []sweep.Matrix
	forEachExperiment(&b, func(m sweep.Matrix) *sweep.Report {
		ms = append(ms, m)
		return &sweep.Report{Matrix: m}
	}, seeds)
	return ms
}

// runReplay handles -replay: re-run suite cell "MATRIX:INDEX" with
// decision tracing forced on and print its trace fingerprint; with a
// -perturb spec, run the perturbed variant too and report the first
// divergence between the two traces.
func runReplay(spec, pertSpec, level string, seeds, workers int) error {
	name, index, err := parseReplaySpec(spec)
	if err != nil {
		return err
	}
	var m sweep.Matrix
	found := false
	for _, cand := range suiteMatrices(seeds) {
		if cand.Name == name {
			m, found = cand, true
			break
		}
	}
	if !found {
		return fmt.Errorf("experiments: no suite matrix named %q (see EXPERIMENTS.md for names)", name)
	}
	lvl, err := trace.ParseLevel(level)
	if err != nil {
		return err
	}
	if lvl == trace.Off {
		lvl = trace.Decisions
	}

	if pertSpec == "" {
		// No counterfactual: trace the one cell as declared. A shard of
		// Count = len(cells) owns exactly the cells with index ≡ INDEX
		// (mod Count) — that is, the one cell.
		m.TraceLevel = lvl.String()
		cells, err := m.Cells()
		if err != nil {
			return err
		}
		if index < 0 || index >= len(cells) {
			return fmt.Errorf("experiments: replay index %d outside matrix %q (%d cells)", index, name, len(cells))
		}
		r, err := sweep.Run(m, sweep.Options{Workers: workers, Shard: sweep.Shard{Index: index, Count: len(cells)}})
		if err != nil {
			return err
		}
		c := r.Cells[0]
		fmt.Printf("replay %s:%d (%s, trace=%s)\n", name, index, m.Protocol, lvl)
		printReplayCell("cell", c)
		return nil
	}

	pert, err := sweep.ParsePerturbation(pertSpec)
	if err != nil {
		return err
	}
	rr, err := sweep.Replay(m, index, pert, lvl)
	if err != nil {
		return err
	}
	fmt.Printf("replay %s:%d (%s, trace=%s, perturb %s)\n", name, index, m.Protocol, lvl, pert)
	printReplayCell("base", rr.Base)
	printReplayCell("perturbed", rr.Perturbed)
	if rr.Div == nil {
		fmt.Println("divergence: none (the perturbation changed nothing the trace observes)")
	} else {
		fmt.Printf("divergence: %s\n", rr.Div.Summary)
	}
	return nil
}

func printReplayCell(label string, c sweep.CellResult) {
	oracle := ""
	if c.Oracle != "" {
		oracle = " oracle=" + c.Oracle
	}
	fmt.Printf("  %-9s seed=%d n=%d t=%d%s verdict=%s steps=%d trace_events=%d trace_digest=%s\n",
		label, c.Seed, c.Size.N, c.Size.T, oracle, c.Verdict, c.Steps, c.TraceEvents, c.TraceDigest)
}

// parseReplaySpec splits "MATRIX:INDEX" (matrix names contain no
// colon). The index must be a non-negative integer — a negative one
// can never name a cell, so it is rejected here with usage guidance
// rather than later as a confusing out-of-range error.
func parseReplaySpec(spec string) (string, int, error) {
	i := strings.LastIndex(spec, ":")
	if i <= 0 {
		return "", 0, fmt.Errorf("experiments: bad -replay %q (want MATRIX:INDEX)", spec)
	}
	index, err := strconv.Atoi(spec[i+1:])
	if err != nil {
		return "", 0, fmt.Errorf("experiments: bad -replay index in %q (want MATRIX:INDEX): %v", spec, err)
	}
	if index < 0 {
		return "", 0, fmt.Errorf("experiments: bad -replay %q: index must be >= 0", spec)
	}
	return spec[:i], index, nil
}

// suiteJSON renders the suite: a JSON array of the canonical per-matrix
// reports. The merge path and the sweepd dispatcher reproduce these
// bytes exactly — all three go through sweep.SuiteJSON.
func suiteJSON(reports []*sweep.Report) ([]byte, error) {
	return sweep.SuiteJSON(reports)
}

// runDispatched runs the whole suite through the distributed
// dispatcher: n subprocess workers (self-exec'd with -worker-stdio),
// merged output written to reportPath and optionally diffed against a
// golden — byte-identical to the unsharded run by construction.
func runDispatched(n, seeds, pool int, reportPath, golden string, verbose bool) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	// Split the machine between the workers rather than oversubscribing
	// it n×: each subprocess gets an equal slice of the pool unless the
	// user pinned -workers explicitly.
	if pool == 0 {
		pool = runtime.GOMAXPROCS(0) / n
		if pool < 1 {
			pool = 1
		}
	}
	fleet := make([]dispatch.Transport, 0, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, "-worker-stdio", "-workers", strconv.Itoa(pool))
		cmd.Stderr = os.Stderr
		tr, err := dispatch.SpawnWorker(fmt.Sprintf("exp%d", i), cmd)
		if err != nil {
			return err
		}
		fleet = append(fleet, tr)
	}
	cfg := dispatch.Config{
		Matrices:      suiteMatrices(seeds),
		Speculate:     true,
		LocalFallback: true,
		LocalPool:     pool,
	}
	if verbose {
		cfg.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	start := time.Now()
	reports, stats, err := dispatch.Run(cfg, fleet)
	if err != nil {
		return err
	}
	suite, err := suiteJSON(reports)
	if err != nil {
		return err
	}
	if err := os.WriteFile(reportPath, suite, 0o644); err != nil {
		return err
	}
	if err := compareGolden(suite, golden); err != nil {
		return err
	}
	fmt.Printf("dispatched %d matrices (%d units, %d cells) across %d workers (%d retries, %d lost, %.2fs)\n",
		len(reports), stats.Units, stats.Cells, n, stats.Retries, stats.WorkersLost, time.Since(start).Seconds())
	return nil
}

// mergeSuites reads shard suite files (each a JSON array of shard
// reports, one per matrix, in suite order) and recombines them into the
// unsharded suite bytes.
func mergeSuites(paths []string) ([]byte, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("experiments: -merge needs shard suite files as arguments")
	}
	shards := make([][]*sweep.Report, len(paths))
	for i, path := range paths {
		blob, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(blob, &shards[i]); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", path, err)
		}
		if len(shards[i]) != len(shards[0]) {
			return nil, fmt.Errorf("experiments: %s has %d matrices, %s has %d",
				paths[i], len(shards[i]), paths[0], len(shards[0]))
		}
	}
	merged := make([]*sweep.Report, len(shards[0]))
	for j := range shards[0] {
		parts := make([]*sweep.Report, len(shards))
		for i := range shards {
			parts[i] = shards[i][j]
		}
		r, err := sweep.MergeReports(parts)
		if err != nil {
			return nil, fmt.Errorf("experiments: matrix %d (%s): %w", j, parts[0].Matrix.Name, err)
		}
		merged[j] = r
	}
	return suiteJSON(merged)
}

// compareGolden byte-compares suite bytes against a golden file (no-op
// when the path is empty).
func compareGolden(suite []byte, path string) error {
	if path == "" {
		return nil
	}
	want, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if string(suite) != string(want) {
		return fmt.Errorf("experiments: suite differs from golden %s (got %d bytes, want %d)", path, len(suite), len(want))
	}
	fmt.Printf("suite matches golden %s\n", path)
	return nil
}

func seedList(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func section(b *strings.Builder, title, claim string) {
	fmt.Fprintf(b, "## %s\n\n**Paper claim.** %s\n\n", title, claim)
}

func verdict(b *strings.Builder, ok bool, detail string) {
	status := "REPRODUCED"
	if !ok {
		status = "FAILED"
	}
	fmt.Fprintf(b, "\n**Measured.** %s — %s\n\n", status, detail)
}

// group collects the cells of one combo (matrix order is combo-major,
// seed-minor, so a combo's cells are contiguous).
func group(r *sweep.Report, combo sweep.Combo) []sweep.CellResult {
	var out []sweep.CellResult
	for _, c := range r.Cells {
		if c.Combo.String() == combo.String() && c.Size == r.Matrix.Sizes[0] {
			out = append(out, c)
		}
	}
	return out
}

func allPass(cells []sweep.CellResult) bool {
	for _, c := range cells {
		if c.Verdict != sweep.Pass {
			return false
		}
	}
	return true
}

// The avg helpers return 0 over an empty group: a sharded run renders
// its (discarded) markdown over partial reports, so groups can be empty.
func avgSteps(cells []sweep.CellResult) int64 {
	if len(cells) == 0 {
		return 0
	}
	var s int64
	for _, c := range cells {
		s += int64(c.Steps)
	}
	return s / int64(len(cells))
}

func avgMsgs(cells []sweep.CellResult) int64 {
	if len(cells) == 0 {
		return 0
	}
	var s int64
	for _, c := range cells {
		s += c.Messages
	}
	return s / int64(len(cells))
}

func avgMeasure(cells []sweep.CellResult, name string) int64 {
	if len(cells) == 0 {
		return 0
	}
	var s int64
	for _, c := range cells {
		s += c.Measures[name]
	}
	return s / int64(len(cells))
}

func avgRounds(cells []sweep.CellResult) int64 {
	if len(cells) == 0 {
		return 0
	}
	var rounds int64
	for _, c := range cells {
		rounds += int64(c.MaxRound)
	}
	return rounds / int64(len(cells))
}

func maxOf(cells []sweep.CellResult, f func(sweep.CellResult) int) int {
	m := 0
	for _, c := range cells {
		if v := f(c); v > m {
			m = v
		}
	}
	return m
}

// expF1: the grid.
func expF1(b *strings.Builder, run func(sweep.Matrix) *sweep.Report, seeds int) {
	section(b, "EXP-F1 · Fig. 1 — the grid of classes",
		"Every class on line z of the grid solves z-set agreement; "+
			"line z contains S_{t−z+2}, ◇S_{t−z+2}, Ω_z, φ_{t−z+1}, ◇φ_{t−z+1} (and Ψ_{t−z+1}).")
	const t = 2
	var combos []sweep.Combo
	for z := 1; z <= t+1; z++ {
		for _, c := range core.GridLine(z, t) {
			combos = append(combos, sweep.Combo{Family: c.Fam, Param: c.Param, Z: z})
		}
	}
	r := run(sweep.Matrix{
		Name: "F1-grid", Protocol: "kset-grid",
		Seeds: seedList(seeds), Sizes: []sweep.Size{{N: 5, T: t}},
		Patterns: []sweep.CrashPattern{{Name: "late-crash", Crashes: []sweep.CrashSpec{{Proc: 4, At: 900}}}},
		Combos:   combos,
		GST:      600, MaxSteps: 2_000_000,
	})
	tab := &cliutil.Table{Markdown: true, Headers: []string{
		"line z", "class", "runs", "decided", "max distinct", "max round", "avg vticks", "ok"}}
	for _, combo := range combos {
		cells := group(r, combo)
		decisions := 0
		if len(cells) > 0 {
			decisions = cells[len(cells)-1].Decisions
		}
		tab.Add(combo.Z, combo.Class().String(), len(cells),
			decisions,
			maxOf(cells, func(c sweep.CellResult) int { return len(c.Decided) }),
			maxOf(cells, func(c sweep.CellResult) int { return c.MaxRound }),
			avgSteps(cells), allPass(cells))
	}
	b.WriteString(tab.String())
	verdict(b, r.OK(), "every grid cell decides with at most z distinct values (n=5, t=2, one late crash, hostile oracles before GST=600)")
}

// expF2: additivity sweep.
func expF2(b *strings.Builder, run func(sweep.Matrix) *sweep.Report, seeds int) {
	section(b, "EXP-F2 · Fig. 2 / Theorem 8 — additivity ◇S_x + ◇φ_y → Ω_z",
		"The two-wheels algorithm adds any ◇S_x and ◇φ_y into Ω_z with exactly z = t+2−x−y.")
	const t = 2
	var combos []sweep.Combo
	for _, p := range []struct{ x, y int }{{1, 0}, {2, 0}, {3, 0}, {1, 1}, {2, 1}, {1, 2}} {
		combos = append(combos, sweep.Combo{X: p.x, Y: p.y})
	}
	r := run(sweep.Matrix{
		Name: "F2-additivity", Protocol: "two-wheels",
		Seeds: seedList(seeds), Sizes: []sweep.Size{{N: 5, T: t}},
		Patterns:  []sweep.CrashPattern{{Name: "late-crash", Crashes: []sweep.CrashSpec{{Proc: 4, At: 800}}}},
		Combos:    combos,
		Bandwidth: 10,
		GST:       600, MaxSteps: 400_000,
		Params: map[string]int64{"stable_for": 12_000, "margin": 10_000},
	})
	tab := &cliutil.Table{Markdown: true, Headers: []string{
		"x", "y", "z=t+2−x−y", "Ω_z check", "Ω_{z−1} check", "avg stabilization vtick", "avg msgs"}}
	for _, combo := range combos {
		cells := group(r, combo)
		z := t + 2 - combo.X - combo.Y
		tighter := "n/a"
		if z > 1 {
			if avgMeasure(cells, "z_minus_1_passes") > 0 {
				tighter = "passes (resting set smaller than z)"
			} else {
				tighter = "fails (size z)"
			}
		}
		tab.Add(combo.X, combo.Y, z, allPass(cells), tighter,
			avgMeasure(cells, "stabilization"), avgMsgs(cells))
	}
	b.WriteString(tab.String())

	// The theorem quantifies over *pairs* of oracles — any ◇S_x with any
	// ◇φ_y — so the generated dimension must reach both roles at once:
	// each pair family scripts the suspector and parameterizes the
	// querier independently, and every cell carries per-role conformance
	// verdicts (oracle_s, oracle_phi).
	pairs := []adversary.OraclePairFamily{
		// A conforming scope-churn ◇S_2 against a maximally-late ◇φ_1.
		{S: adversary.OracleFamily{Kind: adversary.OracleScopeChurn, X: 2, Seed: 61, Settle: []int{1, 2}},
			Phi: adversary.OracleFamily{Kind: adversary.OracleLateStab, Y: 1, Seed: 62, Start: 20_000, Ramp: 1}},
		// A long-flapping suspector against an over-eager anarchic querier.
		{S: adversary.OracleFamily{Kind: adversary.OracleScopeChurn, X: 2, Seed: 63, Flaps: 10, Period: 120, Settle: []int{1, 2}},
			Phi: adversary.OracleFamily{Kind: adversary.OracleAnarchyBurst, Y: 1, Seed: 64, RatePermille: 950}},
		// Both roles ground-truth, stabilizing late and staggered.
		{S: adversary.OracleFamily{Kind: adversary.OracleLateStab, X: 2, Seed: 65, Start: 8_000, Ramp: 1},
			Phi: adversary.OracleFamily{Kind: adversary.OracleLateStab, Y: 1, Seed: 66, Start: 12_000, Ramp: 1}},
	}
	rPair := run(sweep.Matrix{
		Name: "F2-additivity-pairs", Protocol: "two-wheels",
		Seeds: seedList(seeds), Sizes: []sweep.Size{{N: 5, T: t}},
		Patterns:           []sweep.CrashPattern{{Name: "late-crash", Crashes: []sweep.CrashSpec{{Proc: 4, At: 800}}}},
		OraclePairFamilies: pairs,
		Combos:             []sweep.Combo{{X: 2, Y: 1}},
		Bandwidth:          10,
		GST:                600, MaxSteps: 160_000,
		Params: map[string]int64{"stable_for": 12_000, "margin": 10_000},
	})
	tabP := &cliutil.Table{Markdown: true, Headers: []string{
		"oracle pair", "classes", "S-role verdict", "φ-role verdict", "runs", "Ω_1 check", "avg stabilization vtick"}}
	for _, g := range oracleGroups(rPair) {
		tabP.Add(g.oracle, g.cells[0].OracleClass, roleOf(g.cells, sRole), roleOf(g.cells, phiRole),
			len(g.cells), allPass(g.cells), avgMeasure(g.cells, "stabilization"))
	}
	b.WriteString("\n")
	b.WriteString(tabP.String())
	verdict(b, r.OK() && rPair.OK(),
		"the emulated output satisfies Ω_{t+2−x−y} across the whole frontier x+y ≤ t+1, "+
			"including under generated hostile oracle pairs driving both roles")
}

// expF3: k-set scaling.
func expF3(b *strings.Builder, run func(sweep.Matrix) *sweep.Report, seeds int) {
	section(b, "EXP-F3 · Fig. 3 — Ω_z-based k-set agreement",
		"The algorithm solves k-set agreement for z ≤ k, t < n/2, with two communication steps per round.")
	var sizes []sweep.Size
	for _, n := range []int{5, 7, 9, 11} {
		sizes = append(sizes, sweep.Size{N: n, T: (n - 1) / 2})
	}
	r := run(sweep.Matrix{
		Name: "F3-scaling", Protocol: "kset-omega",
		Seeds: seedList(seeds), Sizes: sizes,
		Patterns: []sweep.CrashPattern{{Name: "last-crashes", Crashes: []sweep.CrashSpec{{Proc: 0, At: 400}}}},
		Combos:   []sweep.Combo{{Z: 2}},
		GST:      600, MaxSteps: 2_000_000,
	})
	tab := &cliutil.Table{Markdown: true, Headers: []string{
		"n", "t", "z", "avg rounds", "avg vticks", "avg msgs", "ok"}}
	for _, size := range sizes {
		var cells []sweep.CellResult
		for _, c := range r.Cells {
			if c.Size == size {
				cells = append(cells, c)
			}
		}
		tab.Add(size.N, size.T, 2, avgRounds(cells), avgSteps(cells), avgMsgs(cells), allPass(cells))
	}
	b.WriteString(tab.String())
	verdict(b, r.OK(), "2-set agreement reached at every size; decision latency tracks the pre-GST anarchy window, messages grow ~n² per round")
}

// expF3ab: oracle efficiency and zero degradation.
func expF3ab(b *strings.Builder, run func(sweep.Matrix) *sweep.Report, seeds int) {
	section(b, "EXP-F3a/b · §3.2 — oracle-efficiency and zero-degradation",
		"With a perfect Ω_k the algorithm decides in one round (two steps) when there is no crash, "+
			"and still in one round when crashes are initial only (zero degradation).")
	ra := run(sweep.Matrix{
		Name: "F3a-oracle-efficiency", Protocol: "kset-omega",
		Seeds: seedList(seeds), Sizes: []sweep.Size{{N: 7, T: 3}},
		Combos: []sweep.Combo{{Z: 2}},
		GST:    0, MaxSteps: 500_000,
		Params: map[string]int64{"stab0": 1, "require_round1": 1, "value_base": 0},
	})
	rb := run(sweep.Matrix{
		Name: "F3b-zero-degradation", Protocol: "kset-omega",
		Seeds: seedList(seeds), Sizes: []sweep.Size{{N: 7, T: 3}},
		Patterns: []sweep.CrashPattern{{Name: "two-initial",
			Crashes: []sweep.CrashSpec{{Proc: 2, At: 0}, {Proc: 5, At: 0}}}},
		Combos: []sweep.Combo{{Z: 2, Trusted: []int{1, 4}}},
		GST:    0, MaxSteps: 500_000,
		Params: map[string]int64{"stab0": 1, "require_round1": 1, "value_base": 0},
	})
	tab := &cliutil.Table{Markdown: true, Headers: []string{"scenario", "runs", "all decided round 1"}}
	tab.Add("perfect oracle, no crash (oracle-efficiency)", len(ra.Cells), ra.OK())
	tab.Add("perfect oracle, 2 initial crashes (zero-degradation)", len(rb.Cells), rb.OK())
	b.WriteString(tab.String())
	verdict(b, ra.OK() && rb.OK(), "single-round fast path in both scenarios")
}

// expF4: rings (static enumeration — no simulation).
func expF4(b *strings.Builder) {
	section(b, "EXP-F4 · Fig. 4 — the common ring of candidate sets",
		"All processes scan the same infinite sequence ℓ¹₁…ℓ¹ₓ, ℓ²₁… over the x-subsets (and (L,Y) pairs).")
	tab := &cliutil.Table{Markdown: true, Headers: []string{"ring", "n", "params", "positions", "invariants"}}
	r1 := ids.NewXRing(9, 4)
	tab.Add("lower (ℓ, X)", 9, "x=4", r1.Len(), "leader ∈ X, |X| = x, cyclic (property-tested)")
	r2 := ids.NewLYRing(9, 4, 2)
	tab.Add("upper (L, Y)", 9, "|Y|=4, |L|=2", r2.Len(), "L ⊆ Y, sizes fixed, cyclic (property-tested)")
	b.WriteString(tab.String())
	verdict(b, true, "enumeration invariants hold (see internal/ids property tests)")
}

// expF5: lower wheel.
func expF5(b *strings.Builder, run func(sweep.Matrix) *sweep.Report, seeds int) {
	section(b, "EXP-F5 · Fig. 5 — the lower wheel (◇S_x → representatives)",
		"The wheel stabilizes on a pair (ℓ, X) per Theorem 6, and is quiescent: only finitely many x_move messages are sent (Corollary 1).")
	r := run(sweep.Matrix{
		Name: "F5-lower-wheel", Protocol: "lower-wheel",
		Seeds: seedList(seeds), Sizes: []sweep.Size{{N: 5, T: 2}},
		Patterns: []sweep.CrashPattern{{Name: "late-crash", Crashes: []sweep.CrashSpec{{Proc: 4, At: 700}}}},
		Combos:   []sweep.Combo{{X: 2}},
		GST:      500, MaxSteps: 100_000,
		Params: map[string]int64{"mark": 80_000},
	})
	tab := &cliutil.Table{Markdown: true, Headers: []string{
		"seed", "stable pair reached", "x_move sends (80% mark)", "x_move sends (end)", "quiescent"}}
	for _, c := range r.Cells {
		tab.Add(c.Seed, c.Verdict == sweep.Pass, c.Measures["xmove_at_mark"],
			c.Measures["xmove_end"], c.Measures["xmove_at_mark"] == c.Measures["xmove_end"])
	}
	b.WriteString(tab.String())
	verdict(b, r.OK(), "positions agree across correct processes and x_move traffic stops")
}

// expF6: upper wheel.
func expF6(b *strings.Builder, run func(sweep.Matrix) *sweep.Report, seeds int) {
	section(b, "EXP-F6 · Figs. 6–7 — the upper wheel (adding ◇φ_y)",
		"The combined wheels output Ω_z; the upper wheel is *not* quiescent — correct processes keep exchanging inquiry/response forever (§4.2.2 remark).")
	r := run(sweep.Matrix{
		Name: "F6-upper-wheel", Protocol: "two-wheels",
		Seeds: seedList(seeds), Sizes: []sweep.Size{{N: 5, T: 2}},
		Combos: []sweep.Combo{{X: 2, Y: 1}},
		GST:    400, MaxSteps: 30_000,
		Params: map[string]int64{"mark": 22_500, "require_nonquiescent": 1, "margin": 10_000},
	})
	tab := &cliutil.Table{Markdown: true, Headers: []string{
		"seed", "Ω_1 check", "inquiries (75% mark)", "inquiries (end)", "still inquiring"}}
	for _, c := range r.Cells {
		tab.Add(c.Seed, c.Verdict == sweep.Pass, c.Measures["inquiries_at_mark"],
			c.Measures["inquiries_end"], c.Measures["inquiries_end"] > c.Measures["inquiries_at_mark"])
	}
	b.WriteString(tab.String())
	verdict(b, r.OK(), "Ω_z emulated while inquiry traffic continues (non-quiescent by design)")
}

// expF8: Ψ→Ω.
func expF8(b *strings.Builder, run func(sweep.Matrix) *sweep.Report, seeds int) {
	section(b, "EXP-F8 · Fig. 8 — Ψ_y → Ω_z (y+z > t)",
		"The chain construction turns any Ψ_y into Ω_z when y+z > t, with no messages at all (Theorem 13).")
	combos := []sweep.Combo{{Y: 2, Z: 1}, {Y: 1, Z: 2}, {Y: 0, Z: 3}}
	r := run(sweep.Matrix{
		Name: "F8-psi-omega", Protocol: "psi-omega",
		Seeds: seedList(seeds), Sizes: []sweep.Size{{N: 6, T: 2}},
		Patterns: []sweep.CrashPattern{{Name: "two-crashes",
			Crashes: []sweep.CrashSpec{{Proc: 1, At: 200}, {Proc: 2, At: 500}}}},
		Combos: combos, Bandwidth: 1,
		GST: 0, MaxSteps: 6_000,
		Params: map[string]int64{"margin": 1_000},
	})
	tab := &cliutil.Table{Markdown: true, Headers: []string{"y", "z", "crashes", "Ω_z check", "msgs"}}
	for _, combo := range combos {
		cells := group(r, combo)
		tab.Add(combo.Y, combo.Z, "{1@200, 2@500}", allPass(cells), avgMsgs(cells))
	}
	b.WriteString(tab.String())
	verdict(b, r.OK(), "local chain queries suffice; zero message cost")
}

// expF9: S_x + φ_y → S.
func expF9(b *strings.Builder, run func(sweep.Matrix) *sweep.Report, seeds int) {
	section(b, "EXP-F9 · Fig. 9 — the addition S_x + φ_y → S_n (x+y > t)",
		"The register-based algorithm adds S_x and φ_y into S = S_n (eventual flavor: ◇S_x + ◇φ_y → ◇S), over shared memory or its message-passing translations.")
	substrates := []sweep.Combo{
		{Name: "memory", X: 2, Y: 1},
		{Name: "heartbeat", X: 2, Y: 1},
		{Name: "abd", X: 2, Y: 1},
	}
	r := run(sweep.Matrix{
		Name: "F9-add-s", Protocol: "add-s",
		Seeds: seedList(seeds), Sizes: []sweep.Size{{N: 5, T: 2}},
		Patterns: []sweep.CrashPattern{{Name: "mid-crash", Crashes: []sweep.CrashSpec{{Proc: 3, At: 800}}}},
		Combos:   substrates,
		GST:      0, MaxSteps: 120_000,
		Params: map[string]int64{"perpetual": 1, "margin": 10_000},
	})
	rEvt := run(sweep.Matrix{
		Name: "F9-add-s-eventual", Protocol: "add-s",
		Seeds: seedList(seeds), Sizes: []sweep.Size{{N: 5, T: 2}},
		Patterns: []sweep.CrashPattern{{Name: "early-crash", Crashes: []sweep.CrashSpec{{Proc: 2, At: 500}}}},
		Combos:   []sweep.Combo{{Name: "memory", X: 2, Y: 1}},
		GST:      2_000, MaxSteps: 150_000,
		Params: map[string]int64{"perpetual": 0, "margin": 10_000},
	})
	tab := &cliutil.Table{Markdown: true, Headers: []string{
		"substrate", "inputs", "output class check", "ok"}}
	for _, combo := range substrates {
		cells := group(r, combo)
		tab.Add(combo.Name, "S_2 + φ_1 (t=2: x+y=3 > t)", "S_5 (perpetual, scope n)", allPass(cells))
	}
	tab.Add("memory", "◇S_2 + ◇φ_1", "◇S_5 (eventual)", rEvt.OK())
	b.WriteString(tab.String())

	// Generated hostile oracle pairs: add-s consumes two oracles, so the
	// generated dimension reaches it only through paired scripts — one
	// per role, each conformance-checked against its declared class.
	pairs := []adversary.OraclePairFamily{
		// A conforming scope-churn ◇S_2 against a maximally-late ◇φ_1.
		{S: adversary.OracleFamily{Kind: adversary.OracleScopeChurn, X: 2, Seed: 71, Settle: []int{1, 2}},
			Phi: adversary.OracleFamily{Kind: adversary.OracleLateStab, Y: 1, Seed: 72, Start: 16_000, Ramp: 1}},
		// A long-flapping suspector against an over-eager anarchic querier.
		{S: adversary.OracleFamily{Kind: adversary.OracleScopeChurn, X: 2, Seed: 73, Flaps: 8, Period: 100, Settle: []int{1, 2}},
			Phi: adversary.OracleFamily{Kind: adversary.OracleAnarchyBurst, Y: 1, Seed: 74, RatePermille: 950}},
		// Both roles ground-truth, stabilizing late and staggered.
		{S: adversary.OracleFamily{Kind: adversary.OracleLateStab, X: 2, Seed: 75, Start: 6_000, Ramp: 1},
			Phi: adversary.OracleFamily{Kind: adversary.OracleLateStab, Y: 1, Seed: 76, Start: 10_000, Ramp: 1}},
	}
	rPair := run(sweep.Matrix{
		Name: "F9-add-s-pairs", Protocol: "add-s",
		Seeds: seedList(seeds), Sizes: []sweep.Size{{N: 5, T: 2}},
		Patterns:           []sweep.CrashPattern{{Name: "mid-crash", Crashes: []sweep.CrashSpec{{Proc: 3, At: 800}}}},
		OraclePairFamilies: pairs,
		Combos:             []sweep.Combo{{Name: "memory", X: 2, Y: 1}},
		GST:                0, MaxSteps: 200_000,
		Params: map[string]int64{"perpetual": 0, "margin": 10_000},
	})
	tabP := &cliutil.Table{Markdown: true, Headers: []string{
		"oracle pair", "classes", "S-role verdict", "φ-role verdict", "runs", "◇S_5 check"}}
	for _, g := range oracleGroups(rPair) {
		tabP.Add(g.oracle, g.cells[0].OracleClass, roleOf(g.cells, sRole), roleOf(g.cells, phiRole),
			len(g.cells), allPass(g.cells))
	}
	b.WriteString("\n")
	b.WriteString(tabP.String())
	verdict(b, r.OK() && rEvt.OK() && rPair.OK(),
		"emulated SUSPECTED sets pass the class checker on every substrate, "+
			"including under generated hostile oracle pairs driving both roles")
}

// expT5: Theorem 5 boundary.
func expT5(b *strings.Builder, run func(sweep.Matrix) *sweep.Report, seeds int) {
	section(b, "EXP-T5 · Theorem 5 — t < n/2 and z ≤ k are tight",
		"k-set agreement is solvable in AS[n,t](Ω_z) iff t < n/2 and z ≤ k: with a legal Ω_{k+1} there are runs deciding k+1 values, and the construction refuses t ≥ n/2.")
	const z = 2
	r := run(sweep.Matrix{
		Name: "T5-tightness", Protocol: "kset-omega",
		Seeds: seedList(seeds * 4), Sizes: []sweep.Size{{N: 5, T: 2}},
		Combos: []sweep.Combo{{Z: z, Trusted: []int{1, 2}}},
		GST:    0, MaxSteps: 500_000,
		Params: map[string]int64{"stab0": 1, "value_base": 0},
	})
	maxDistinct := sweep.MaxDistinct(r.Cells)
	refused := false
	func() {
		defer func() { refused = recover() != nil }()
		cfg := sim.Config{N: 4, T: 2, Seed: 1, MaxSteps: 1_000}
		sys := sim.MustNew(cfg)
		if _, err := core.SpawnKSetWith(sys, core.Class{Fam: core.FamOmega, Param: 1}, nil); err != nil {
			panic(err)
		}
		sys.Run(nil)
	}()
	tab := &cliutil.Table{Markdown: true, Headers: []string{"boundary", "observation"}}
	tab.Add("z ≤ k tight", fmt.Sprintf("Ω_2 runs decided up to %d distinct values (> k=1, never > z=2)", maxDistinct))
	tab.Add("t < n/2", fmt.Sprintf("construction with t ≥ n/2 rejected: %v", refused))
	b.WriteString(tab.String())
	verdict(b, r.OK() && maxDistinct == z && refused, "both sides of Theorem 5 observed")
}

// expT8: Theorem 8 boundary.
func expT8(b *strings.Builder, run func(sweep.Matrix) *sweep.Report, seeds int) {
	section(b, "EXP-T8 · Theorem 8 necessity + Observation O1",
		"x+y+z ≥ t+2 is necessary: the two-wheels output rests on a set of full size z = t+2−x−y, failing the Ω_{z−1} checker; and with f ≤ t−y crashes a φ_y answers by size only (O1).")
	r := run(sweep.Matrix{
		Name: "T8-necessity", Protocol: "two-wheels",
		Seeds: seedList(seeds), Sizes: []sweep.Size{{N: 5, T: 2}},
		Combos: []sweep.Combo{{X: 1, Y: 0}},
		GST:    600, MaxSteps: 200_000,
		Params: map[string]int64{"stable_for": 12_000, "margin": 10_000, "expect_tight": 1},
	})
	failZminus1 := 0
	for _, c := range r.Cells {
		if c.Measures["z_minus_1_passes"] == 0 {
			failZminus1++
		}
	}
	rO1 := run(sweep.Matrix{
		Name: "T8-O1", Protocol: "phi-o1",
		Seeds: []int64{1}, Sizes: []sweep.Size{{N: 6, T: 3}},
		Patterns: []sweep.CrashPattern{{Name: "f=t-y",
			Crashes: []sweep.CrashSpec{{Proc: 1, At: 100}, {Proc: 2, At: 150}}}},
		Combos:    []sweep.Combo{{Y: 1}},
		Bandwidth: 1, GST: 0, MaxSteps: 2_000,
		Params: map[string]int64{"at": 1_500, "ring_x": 3},
	})
	tab := &cliutil.Table{Markdown: true, Headers: []string{"check", "result"}}
	tab.Add("two-wheels output fails Ω_{z−1}", fmt.Sprintf("%d/%d runs", failZminus1, len(r.Cells)))
	tab.Add("O1: f ≤ t−y ⇒ informative queries all false", rO1.OK())
	b.WriteString(tab.String())
	verdict(b, r.OK() && failZminus1 == len(r.Cells) && rO1.OK(), "the construction is exactly optimal (Corollary 4)")
}

// expT9: irreducibility.
func expT9(b *strings.Builder, run func(sweep.Matrix) *sweep.Report) {
	section(b, "EXP-T9 · Theorems 9–12 — irreducibility by crash-vs-delay",
		"No algorithm builds ◇φ_y from S_x: for any claimed stabilization time τ, a run R′ (region E alive but delayed past τ, oracle outputs identical to run R where E crashed) makes the reducer answer true about live processes after τ.")
	tab := &cliutil.Table{Markdown: true, Headers: []string{
		"claimed stabilization τ", "run R: query(E) true at", "run R′ (E correct): safety violated at"}}
	ok := true
	for _, tau := range []int64{500, 2_000, 5_000} {
		r := run(sweep.Matrix{
			Name: fmt.Sprintf("T9-tau%d", tau), Protocol: "irreducibility",
			Seeds: []int64{9}, Sizes: []sweep.Size{{N: 5, T: 2}},
			Combos:    []sweep.Combo{{X: 3, Y: 1, Region: []int{4, 5}}},
			Bandwidth: 1, MaxSteps: sim.Time(tau) + 2_000,
			Params: map[string]int64{"tau": tau, "crash_at": 100, "slack": 2_000},
		})
		ok = ok && r.OK()
		if len(r.Cells) == 0 {
			continue // sharded run: this matrix's only cell lives elsewhere
		}
		c := r.Cells[0]
		tab.Add(tau, c.Measures["query_true_in_r"], c.Measures["violation_in_r_prime"])
	}
	b.WriteString(tab.String())
	verdict(b, ok, "every candidate stabilization time is defeated; Theorems 10–12 follow the same indistinguishability pattern (see internal/adversary tests)")
}

// expBaselines: consensus ancestors.
func expBaselines(b *strings.Builder, run func(sweep.Matrix) *sweep.Report, seeds int) {
	section(b, "Baselines — the Fig. 3 algorithm vs its ancestors",
		"Fig. 3 at z = k = 1 is the Ω-based consensus of [20]; the rotating-coordinator ◇S consensus of [18] is the earlier ancestor. Same quorum pattern, different oracle usage.")
	pattern := []sweep.CrashPattern{{Name: "late-crash", Crashes: []sweep.CrashSpec{{Proc: 7, At: 400}}}}
	size := []sweep.Size{{N: 7, T: 3}}
	rOmega := run(sweep.Matrix{
		Name: "baseline-fig3", Protocol: "kset-omega",
		Seeds: seedList(seeds), Sizes: size, Patterns: pattern,
		Combos: []sweep.Combo{{Z: 1}},
		GST:    600, MaxSteps: 2_000_000,
		Params: map[string]int64{"value_base": 0},
	})
	rDS := run(sweep.Matrix{
		Name: "baseline-rotating-coordinator", Protocol: "consensus-ds",
		Seeds: seedList(seeds), Sizes: size, Patterns: pattern,
		GST: 600, MaxSteps: 2_000_000,
	})
	tab := &cliutil.Table{Markdown: true, Headers: []string{
		"protocol", "oracle", "avg rounds", "avg vticks", "avg msgs", "ok"}}
	for _, row := range []struct {
		name, oracle string
		r            *sweep.Report
	}{
		{"Fig. 3, z=k=1", "Ω_1", rOmega},
		{"rotating coordinator [18]", "◇S", rDS},
	} {
		tab.Add(row.name, row.oracle, avgRounds(row.r.Cells),
			avgSteps(row.r.Cells), avgMsgs(row.r.Cells), row.r.OK())
	}
	b.WriteString(tab.String())
	verdict(b, rOmega.OK() && rDS.OK(), "both ancestors solve consensus; the leader-based variant needs no coordinator rotation after stabilization")
}

// expRepeated: repeated instances (zero-degradation in use).
func expRepeated(b *strings.Builder, run func(sweep.Matrix) *sweep.Report, seeds int) {
	section(b, "EXP-ZD · §3.2 — repeated instances under zero-degradation",
		"Zero-degradation matters when a set agreement algorithm is used repeatedly: with a perfect detector and initial crashes, future executions do not suffer from past failures — every instance stays single-round.")
	const instances = 4
	r := run(sweep.Matrix{
		Name: "ZD-repeated", Protocol: "kset-seq",
		Seeds: seedList(seeds), Sizes: []sweep.Size{{N: 7, T: 3}},
		Patterns: []sweep.CrashPattern{{Name: "two-initial",
			Crashes: []sweep.CrashSpec{{Proc: 2, At: 0}, {Proc: 6, At: 0}}}},
		Combos: []sweep.Combo{{Z: 2, Trusted: []int{1, 4}}},
		GST:    0, MaxSteps: 4_000_000,
		Params: map[string]int64{"stab0": 1, "instances": instances},
	})
	tab := &cliutil.Table{Markdown: true, Headers: []string{
		"instances", "initial crashes", "all instances round 1", "avg vticks/instance"}}
	tab.Add(instances, "{2, 6}", r.OK(), avgMeasure(r.Cells, "vticks_per_instance"))
	b.WriteString(tab.String())
	verdict(b, r.OK(), "no degradation across consecutive instances")
}

// expAblation: the two routes to Ω.
func expAblation(b *strings.Builder, run func(sweep.Matrix) *sweep.Report, seeds int) {
	section(b, "EXP-ABL · ablation — two routes from ◇S to Ω",
		"The companion transformation [17] (quiescent single wheel, needs full-scope ◇S) versus the two-wheels addition with y=0 (works from ◇S_{t+1}, keeps inquiring forever): same Ω output, opposite traffic profiles.")
	const t = 2
	size := []sweep.Size{{N: 5, T: t}}
	pattern := []sweep.CrashPattern{{Name: "late-crash", Crashes: []sweep.CrashSpec{{Proc: 4, At: 700}}}}
	rSW := run(sweep.Matrix{
		Name: "ABL-single-wheel", Protocol: "single-wheel",
		Seeds: seedList(seeds), Sizes: size, Patterns: pattern,
		GST: 500, MaxSteps: 150_000,
		Params: map[string]int64{"stable_for": 12_000, "margin": 10_000},
	})
	rTW := run(sweep.Matrix{
		Name: "ABL-two-wheels-y0", Protocol: "two-wheels",
		Seeds: seedList(seeds), Sizes: size, Patterns: pattern,
		Combos: []sweep.Combo{{X: t + 1, Y: 0}},
		GST:    500, MaxSteps: 150_000,
		Params: map[string]int64{"stable_for": 12_000, "margin": 10_000},
	})
	tab := &cliutil.Table{Markdown: true, Headers: []string{
		"route", "source class", "Ω check", "avg msgs/run", "quiescent"}}
	tab.Add("single wheel [17]", "◇S (= ◇S_n)", rSW.OK(), avgMsgs(rSW.Cells), true)
	tab.Add("two wheels, y=0", fmt.Sprintf("◇S_%d", t+1), rTW.OK(), avgMsgs(rTW.Cells), false)
	b.WriteString(tab.String())
	verdict(b, rSW.OK() && rTW.OK(), "the weaker-source route pays a permanent inquiry stream; the full-scope route goes quiet")
}

// expScale: large-n sweeps under generated adversary schedules — the
// sizes the paper never ran (its arguments are size-generic) exercised
// against the schedule families the adversary package generates.
func expScale(b *strings.Builder, run func(sweep.Matrix) *sweep.Report, seeds int) {
	section(b, "EXP-SCALE · scaling — generated adversaries, n up to 256",
		"(not a paper claim) The paper's algorithms are size-generic; the constructions must keep "+
			"their guarantees at n ≫ the paper's examples and under machine-generated adversary "+
			"schedules (staggered / clustered / cascade crashes, partition- and silence-style hold scripts) "+
			"rather than hand-picked ones.")
	if seeds > 2 {
		seeds = 2 // large cells: bound the suite's wall time
	}
	sizes := []sweep.Size{{N: 64, T: 31}, {N: 96, T: 47}, {N: 128, T: 63}, {N: 192, T: 95}, {N: 256, T: 127}}
	rKSet := run(sweep.Matrix{
		Name: "SCALE-kset", Protocol: "kset-omega",
		Seeds: seedList(seeds), Sizes: sizes,
		AdversaryFamilies: []adversary.Family{
			{Kind: adversary.KindStaggered, Count: 8, Variants: 2, Seed: 11, Start: 100, Spacing: 60},
			{Kind: adversary.KindClustered, Count: 8, Seed: 12, Start: 150},
			{Kind: adversary.KindPartition, Seed: 13, Start: 100, Window: 400},
		},
		Combos: []sweep.Combo{{Z: 2}},
		GST:    200, MaxSteps: 4_000_000,
	})
	tab := &cliutil.Table{Markdown: true, Headers: []string{
		"n", "t", "schedule", "runs", "max distinct", "avg rounds", "avg vticks", "avg msgs", "ok"}}
	for _, size := range sizes {
		byPattern := map[string][]sweep.CellResult{}
		var order []string
		for _, c := range rKSet.Cells {
			if c.Size != size {
				continue
			}
			if _, seen := byPattern[c.Pattern]; !seen {
				order = append(order, c.Pattern)
			}
			byPattern[c.Pattern] = append(byPattern[c.Pattern], c)
		}
		for _, name := range order {
			cells := byPattern[name]
			tab.Add(size.N, size.T, name, len(cells), sweep.MaxDistinct(cells),
				avgRounds(cells), avgSteps(cells), avgMsgs(cells), allPass(cells))
		}
	}
	b.WriteString(tab.String())

	rPsi := run(sweep.Matrix{
		Name: "SCALE-psi", Protocol: "psi-omega",
		Seeds: seedList(seeds), Sizes: []sweep.Size{{N: 96, T: 6}, {N: 128, T: 6}, {N: 192, T: 6}, {N: 256, T: 6}},
		AdversaryFamilies: []adversary.Family{
			{Kind: adversary.KindCascade, Count: 3, Variants: 2, Seed: 21, Start: 100, Spacing: 100},
			{Kind: adversary.KindClustered, Count: 4, Seed: 22, Start: 200},
		},
		Combos: []sweep.Combo{{Y: 4, Z: 3}}, Bandwidth: 1,
		GST: 0, MaxSteps: 6_000,
		Params: map[string]int64{"margin": 1_000},
	})
	tab2 := &cliutil.Table{Markdown: true, Headers: []string{"n", "t", "y", "z", "runs", "Ω_z check", "msgs"}}
	for _, size := range rPsi.Matrix.Sizes {
		var cells []sweep.CellResult
		for _, c := range rPsi.Cells {
			if c.Size == size {
				cells = append(cells, c)
			}
		}
		tab2.Add(size.N, size.T, 4, 3, len(cells), allPass(cells), avgMsgs(cells))
	}
	b.WriteString("\n")
	b.WriteString(tab2.String())
	verdict(b, rKSet.OK() && rPsi.OK(),
		"2-set agreement and the message-free Ψ→Ω chain keep their guarantees at n ∈ {64, 96, 128, 192, 256} across every generated schedule")
}

// oracleGroups collects a report's cells grouped by (size, oracle
// script), in first-appearance order — the EXP-ORACLE table axis.
type oracleGroup struct {
	size   sweep.Size
	oracle string
	cells  []sweep.CellResult
}

func oracleGroups(r *sweep.Report) []*oracleGroup {
	var order []*oracleGroup
	index := map[string]*oracleGroup{}
	for _, c := range r.Cells {
		key := fmt.Sprintf("%d/%s", c.Size.N, c.Oracle)
		g, ok := index[key]
		if !ok {
			g = &oracleGroup{size: c.Size, oracle: c.Oracle}
			index[key] = g
			order = append(order, g)
		}
		g.cells = append(g.cells, c)
	}
	return order
}

// roleOf summarizes one verdict column across a group's cells
// (identical across seeds of one script×pattern by construction).
func roleOf(cells []sweep.CellResult, pick func(sweep.CellResult) string) string {
	if len(cells) == 0 {
		return "n/a"
	}
	v := pick(cells[0])
	for _, c := range cells {
		if pick(c) != v {
			return "mixed"
		}
	}
	if v == "" {
		return "n/a"
	}
	return v
}

// conformanceOf summarizes a group's joint conformance verdicts.
func conformanceOf(cells []sweep.CellResult) string {
	return roleOf(cells, func(c sweep.CellResult) string { return c.OracleConformance })
}

// sRole and phiRole pick the per-role verdicts of paired-oracle cells.
func sRole(c sweep.CellResult) string   { return c.OracleS }
func phiRole(c sweep.CellResult) string { return c.OraclePhi }

// oracleFlapMatrix is the EXP-ORACLE leader-flap/late-stab matrix,
// shared with EXP-CF and resolvable by -replay, so a replayed or
// perturbed cell is exactly a suite cell. It applies the same seed cap
// expOracle does, keeping its cell indices stable however the suite is
// invoked.
func oracleFlapMatrix(seeds int) sweep.Matrix {
	if seeds > 2 {
		seeds = 2 // large cells: bound the suite's wall time
	}
	return sweep.Matrix{
		Name: "ORACLE-kset-flap", Protocol: "kset-omega",
		Seeds: seedList(seeds),
		Sizes: []sweep.Size{{N: 32, T: 15}, {N: 64, T: 31}, {N: 128, T: 63}},
		Patterns: []sweep.CrashPattern{{Name: "late-crash",
			Crashes: []sweep.CrashSpec{{Proc: 0, At: 600}}}},
		OracleFamilies: []adversary.OracleFamily{
			{Kind: adversary.OracleLeaderFlap, Z: 2, Variants: 2, Seed: 31,
				Start: 50, Period: 80, Flaps: 6, Settle: []int{1, 2}},
			{Kind: adversary.OracleLateStab, Variants: 2, Seed: 32, Start: 200, Ramp: 300},
		},
		Combos: []sweep.Combo{{Z: 2}},
		GST:    200, MaxSteps: 4_000_000,
	}
}

// expCounterfactual: counterfactual replay of one EXP-ORACLE cell
// (EXP-CF). Runs through sweep.Replay, not `run`, so its two traced
// runs never enter the suite JSON — the committed suite golden is
// untouched by this section.
func expCounterfactual(b *strings.Builder, seeds int) error {
	section(b, "EXP-CF · counterfactual replay — attributing a divergence to its cause",
		"(not a paper claim) Every cell is deterministic, so re-running it under one declarative "+
			"perturbation and diffing the two decision traces pins the *first* observable consequence "+
			"of that change — a mechanized version of the paper's run-modification arguments "+
			"(crash-vs-delay indistinguishability, Theorems 9–12). Here: the first late-stabilization "+
			"parameter-script cell of ORACLE-kset-flap, replayed with the oracle's scripted "+
			"stabilization pushed 2000 ticks later.")
	m := oracleFlapMatrix(seeds)
	cells, err := m.Cells()
	if err != nil {
		return err
	}
	index := -1
	for i, c := range cells {
		if !c.Oracle.None() && !c.Oracle.IsTimeline() && c.Seed == 0 {
			index = i
			break
		}
	}
	if index < 0 {
		return fmt.Errorf("experiments: EXP-CF found no parameter-script cell in %s", m.Name)
	}
	pert, err := sweep.ParsePerturbation("stab+2000")
	if err != nil {
		return err
	}
	rr, err := sweep.Replay(m, index, pert, trace.Decisions)
	if err != nil {
		return err
	}
	fmt.Fprintf(b, "Replayed: `go run ./cmd/experiments -replay %s:%d -perturb %s` "+
		"(n=%d, t=%d, seed %d, oracle `%s`, trace level `decisions`).\n\n",
		m.Name, index, pert, rr.Base.Size.N, rr.Base.Size.T, rr.Base.Seed, rr.Base.Oracle)
	tab := &cliutil.Table{Markdown: true, Headers: []string{
		"run", "verdict", "rounds", "vticks", "trace events", "trace digest"}}
	tab.Add("base", rr.Base.Verdict, rr.Base.MaxRound, rr.Base.Steps, rr.Base.TraceEvents, rr.Base.TraceDigest)
	tab.Add(pert.String(), rr.Perturbed.Verdict, rr.Perturbed.MaxRound, rr.Perturbed.Steps, rr.Perturbed.TraceEvents, rr.Perturbed.TraceDigest)
	b.WriteString(tab.String())
	if rr.Div == nil {
		b.WriteString("\nDivergence: none — the perturbation changed nothing the trace observes.\n")
	} else {
		fmt.Fprintf(b, "\nDivergence: %s\n", rr.Div.Summary)
	}
	verdict(b, rr.Base.Verdict == sweep.Pass && rr.Perturbed.Verdict == sweep.Pass && rr.Div != nil,
		"both runs still decide (the algorithm tolerates the later stabilization); the trace diff "+
			"pins the first decision the 2000-tick shift actually moved, and the divergence point is "+
			"byte-reproducible run to run")
	return nil
}

// expOracle: generated hostile-oracle families as a sweep dimension —
// the classes are defined by what their oracles may do, so the oracle
// is swept the way crash schedules are (EXP-ORACLE).
func expOracle(b *strings.Builder, run func(sweep.Matrix) *sweep.Report, seeds int) {
	section(b, "EXP-ORACLE · generated hostile-oracle families",
		"(not a paper claim) The classes S_x, ◇S_x, Ω_z and the φ/Ψ families are defined by which "+
			"oracle histories they admit; the algorithms must keep their guarantees under *any* of them. "+
			"adversary.OracleGen makes that dimension sweepable: leader-flapping timelines, scope-churn "+
			"scripts, anarchy bursts with seeded intensity ramps and late-stabilization sweeps expand "+
			"deterministically into scripted or parameterized oracles, and fd/check.go tags every "+
			"generated script with a conformance verdict against its declared class.")
	if seeds > 2 {
		seeds = 2 // large cells: bound the suite's wall time
	}

	// Ω_z timelines flapping under the Fig. 3 k-set algorithm, n up to 128.
	rFlap := run(oracleFlapMatrix(seeds))
	tab := &cliutil.Table{Markdown: true, Headers: []string{
		"n", "oracle", "class", "conformance", "runs", "max distinct", "avg rounds", "avg vticks", "ok"}}
	for _, g := range oracleGroups(rFlap) {
		class := g.cells[0].OracleClass
		tab.Add(g.size.N, g.oracle, class, conformanceOf(g.cells), len(g.cells),
			sweep.MaxDistinct(g.cells), avgRounds(g.cells), avgSteps(g.cells), allPass(g.cells))
	}
	b.WriteString(tab.String())

	// Bursty / late-stabilizing ◇φ under the message-free Ψ→Ω chain.
	rBurst := run(sweep.Matrix{
		Name: "ORACLE-psi-burst", Protocol: "psi-omega",
		Seeds: seedList(seeds),
		Sizes: []sweep.Size{{N: 32, T: 6}, {N: 64, T: 6}, {N: 128, T: 6}},
		Patterns: []sweep.CrashPattern{{Name: "two-crashes",
			Crashes: []sweep.CrashSpec{{Proc: 1, At: 200}, {Proc: 2, At: 500}}}},
		OracleFamilies: []adversary.OracleFamily{
			{Kind: adversary.OracleAnarchyBurst, Variants: 3, Seed: 41,
				Start: 50, Period: 60, Flaps: 8, RatePermille: 900},
			{Kind: adversary.OracleLateStab, Variants: 2, Seed: 42, Start: 400, Ramp: 400},
		},
		Combos: []sweep.Combo{{Y: 4, Z: 3}}, Bandwidth: 1,
		GST: 0, MaxSteps: 6_000,
		Params: map[string]int64{"margin": 1_000},
	})
	tab2 := &cliutil.Table{Markdown: true, Headers: []string{
		"n", "oracle", "conformance", "runs", "Ω_3 check", "msgs"}}
	for _, g := range oracleGroups(rBurst) {
		tab2.Add(g.size.N, g.oracle, conformanceOf(g.cells), len(g.cells),
			allPass(g.cells), avgMsgs(g.cells))
	}
	b.WriteString("\n")
	b.WriteString(tab2.String())

	// Scope-churn ◇S_x scripts driving the two-wheels addition through
	// the scripted-suspector driver.
	rChurn := run(sweep.Matrix{
		Name: "ORACLE-wheels-churn", Protocol: "two-wheels",
		Seeds: seedList(seeds),
		Sizes: []sweep.Size{{N: 5, T: 2}},
		OracleFamilies: []adversary.OracleFamily{
			{Kind: adversary.OracleScopeChurn, X: 2, Variants: 3, Seed: 51, Settle: []int{1, 2}},
		},
		Combos: []sweep.Combo{{X: 2, Y: 1}},
		GST:    400, MaxSteps: 60_000,
		Params: map[string]int64{"stable_for": 12_000, "margin": 10_000},
	})
	tab3 := &cliutil.Table{Markdown: true, Headers: []string{
		"oracle", "class", "conformance", "runs", "Ω_1 check", "avg stabilization vtick"}}
	for _, g := range oracleGroups(rChurn) {
		tab3.Add(g.oracle, g.cells[0].OracleClass, conformanceOf(g.cells), len(g.cells),
			allPass(g.cells), avgMeasure(g.cells, "stabilization"))
	}
	b.WriteString("\n")
	b.WriteString(tab3.String())
	verdict(b, rFlap.OK() && rBurst.OK() && rChurn.OK(),
		"every generated oracle script conforms to its declared class under the swept patterns, and "+
			"k-set agreement, the Ψ→Ω chain and the two-wheels addition all keep their guarantees under "+
			"flapping, bursty and scope-churning oracles up to n = 128")
}

// expPerf renders the committed benchmark record (EXP-PERF): the PR-1
// scheduler baseline versus the zero-handoff scheduler, per benchmark
// and for the full 151-cell matrix. Regenerate the record with
// `make bench`; this section only formats the benchmark record, so the
// rendered report stays a pure function of its inputs.
func expPerf(b *strings.Builder, path string) {
	section(b, "EXP-PERF · infrastructure — scheduler cost",
		"(not a paper claim) Simulation-based exploration scales only if a virtual tick is nearly free: "+
			"the zero-handoff scheduler passes the run token process-to-process with no scheduler goroutine, "+
			"no locks on simulation state and interned-tag metrics.")
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(b, "No benchmark record at %s (run `make bench` to create it).\n", path)
		return
	}
	var rec benchrec.Record
	if err := json.Unmarshal(blob, &rec); err != nil {
		fmt.Fprintf(b, "Unreadable benchmark record %s: %v\n", path, err)
		return
	}
	var baseline *benchrec.Record
	if len(rec.Baseline) > 0 {
		baseline = new(benchrec.Record)
		if err := json.Unmarshal(rec.Baseline, baseline); err != nil {
			baseline = nil
		}
	}
	tab := &cliutil.Table{Markdown: true, Headers: []string{
		"benchmark", "PR-1 median ns/op", "current median ns/op", "speedup"}}
	names := make([]string, 0, len(rec.Benchmarks))
	for name := range rec.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	others := 0
	for _, name := range names {
		cur := benchrec.Median(rec.Benchmarks[name].NsOp)
		if cur == 0 {
			continue
		}
		var base float64
		if baseline != nil {
			if bl, ok := baseline.Benchmarks[name]; ok {
				base = benchrec.Median(bl.NsOp)
			}
		}
		if base == 0 {
			others++ // recorded, but with no PR-1 reference point
			continue
		}
		tab.Add(name, fmt.Sprintf("%.1f", base), fmt.Sprintf("%.1f", cur),
			fmt.Sprintf("%.2fx", base/cur))
	}
	b.WriteString(tab.String())
	if others > 0 {
		fmt.Fprintf(b, "\n(%d further benchmarks without a PR-1 reference are recorded in the file.)\n", others)
	}
	if cur := benchrec.Median(rec.SweepWallS); cur > 0 {
		cells := func(r *benchrec.Record) int {
			if r.SweepCells > 0 {
				return r.SweepCells
			}
			return 151 // records predating the sweep_cells field timed the PR-1 suite
		}
		if baseline != nil {
			if base := benchrec.Median(baseline.SweepWallS); base > 0 {
				fmt.Fprintf(b, "\nFull experiment suite: %.2fs (%d cells, PR-1 scheduler) → %.2fs (%d cells, current). %s\n",
					base, cells(baseline), cur, cells(&rec), rec.Machine)
				return
			}
		}
		fmt.Fprintf(b, "\nFull experiment suite: %.2fs (%d cells). %s\n", cur, cells(&rec), rec.Machine)
	}
}
