package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fdgrid/internal/sweep"
)

// The committed suite golden pins the canonical JSON of every
// experiment matrix at the CI seed count. CI's sharded sweep jobs merge
// their partial suites and diff against the same file, so any
// behavioural drift — scheduler, oracle, protocol or adversary
// generator — surfaces as a byte diff both locally and in CI.
//
// Regenerate (only when a behaviour change is intended and understood):
//
//	go test ./cmd/experiments -run TestSuiteGolden -update-suite-golden
var updateSuiteGolden = flag.Bool("update-suite-golden", false, "rewrite the experiments suite golden")

const goldenSeeds = 3 // must match the CI invocation's -seeds

func goldenPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "suite.golden.json")
}

func buildSuiteJSON(t *testing.T, seeds int, opts sweep.Options) ([]byte, []*sweep.Report) {
	t.Helper()
	_, reports, err := buildSuite(seeds, opts, "no-such-bench-record.json", false)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := suiteJSON(reports)
	if err != nil {
		t.Fatal(err)
	}
	return suite, reports
}

func TestSuiteGolden(t *testing.T) {
	got, reports := buildSuiteJSON(t, goldenSeeds, sweep.Options{})
	for _, r := range reports {
		if !r.OK() {
			t.Errorf("matrix %s", r.Summary())
		}
	}
	path := goldenPath(t)
	if *updateSuiteGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing suite golden (run with -update-suite-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("suite differs from %s (got %d bytes, want %d) — a deliberate change needs -update-suite-golden", path, len(got), len(want))
	}
}

// TestShardMergeMatchesUnsharded drives the CI pipeline in-process:
// every shard runs independently, the partial suites travel through
// files, and the merge reproduces the unsharded bytes.
func TestShardMergeMatchesUnsharded(t *testing.T) {
	const seeds = 2 // smaller than the golden run: this test checks the pipeline, not the values
	want, _ := buildSuiteJSON(t, seeds, sweep.Options{})

	const count = 3
	dir := t.TempDir()
	paths := make([]string, count)
	for i := 0; i < count; i++ {
		suite, _ := buildSuiteJSON(t, seeds, sweep.Options{Shard: sweep.Shard{Index: i, Count: count}})
		paths[i] = filepath.Join(dir, "shard-"+string(rune('0'+i))+".json")
		if err := os.WriteFile(paths[i], suite, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := mergeSuites(paths)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("merged shard suites differ from the unsharded run")
	}
}

// TestParseShard pins the -shard flag grammar.
func TestParseShard(t *testing.T) {
	if s, err := parseShard(""); err != nil || s.Count != 0 {
		t.Fatalf("empty spec: %v %v", s, err)
	}
	if s, err := parseShard("2/4"); err != nil || s.Index != 2 || s.Count != 4 {
		t.Fatalf("2/4: %v %v", s, err)
	}
	// Malformed specs must error with usage guidance, never run a
	// silently wrong shard. The trailing-junk rows pin the strictness
	// Sscanf-style prefix parsing would lose ("0/4x" ran shard 0/4).
	for _, bad := range []string{
		"4/4", "-1/4", "1", "a/b", "1/0",
		"0/4x", "x0/4", "1/2/3", "0 /4", "0/ 4", "/4", "0/", "/",
	} {
		_, err := parseShard(bad)
		if err == nil {
			t.Errorf("spec %q accepted", bad)
			continue
		}
		if !strings.Contains(err.Error(), bad) {
			t.Errorf("spec %q: error does not echo the spec: %v", bad, err)
		}
	}
}

func TestParseReplaySpec(t *testing.T) {
	name, idx, err := parseReplaySpec("kset-grid:12")
	if err != nil || name != "kset-grid" || idx != 12 {
		t.Fatalf("kset-grid:12 -> %q %d %v", name, idx, err)
	}
	// Matrix names can contain dashes and dots but no colon, so the
	// LAST colon splits; everything left of it is the name.
	name, idx, err = parseReplaySpec("odd:name:3")
	if err != nil || name != "odd:name" || idx != 3 {
		t.Fatalf("odd:name:3 -> %q %d %v", name, idx, err)
	}
	for _, bad := range []string{
		"", "kset-grid", ":5", "kset-grid:", "kset-grid:abc",
		"kset-grid:1.5", "kset-grid:-1", "kset-grid:5x",
	} {
		if _, _, err := parseReplaySpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
