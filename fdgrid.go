// Package fdgrid is a Go reproduction of "Irreducibility and Additivity
// of Set Agreement-oriented Failure Detector Classes" (Mostefaoui,
// Rajsbaum, Raynal, Travers — PODC 2006 / IRISA PI 1758).
//
// It provides, over a simulated asynchronous message-passing system
// AS[n,t]:
//
//   - executable failure detector classes S_x, ◇S_x, Ω_z, φ_y, ◇φ_y,
//     Ψ_y (and P ≡ φ_t, ◇P ≡ ◇φ_t);
//   - the paper's Ω_z-based k-set agreement algorithm (its Fig. 3),
//     with the ◇S-based consensus ancestor as a baseline;
//   - the transformation algorithms: the two-wheels addition
//     ◇S_x + ◇φ_y → Ω_{t+2−x−y} (Figs. 5–6), Ψ_y → Ω_z (Fig. 8) and
//     S_x + φ_y → S_n (Fig. 9);
//   - the reducibility grid (Fig. 1) as a queryable table and as
//     runnable constructions;
//   - trace checkers for every class property and for the agreement
//     problem, plus the adversarial run pairs behind the paper's
//     irreducibility theorems.
//
// # Quick start
//
//	cfg := fdgrid.Config{N: 5, T: 2, Seed: 1, MaxSteps: 500_000, GST: 500, Bandwidth: 5}
//	sys := fdgrid.MustNewSystem(cfg)
//	out, _ := fdgrid.SpawnKSetWith(sys, fdgrid.Class{Fam: fdgrid.FamOmega, Param: 2}, nil)
//	sys.Run(out.AllDecided(sys.Pattern().Correct()))
//	err := out.Check(sys.Pattern(), 2) // validity, 2-agreement, termination
//
// The deeper layers remain importable inside this module:
// internal/sim (runtime), internal/fd (oracles and checkers),
// internal/reduction (transformations), internal/agreement (protocols),
// internal/core (the grid).
package fdgrid

import (
	"fdgrid/internal/adversary"
	"fdgrid/internal/agreement"
	"fdgrid/internal/core"
	"fdgrid/internal/fd"
	"fdgrid/internal/ids"
	"fdgrid/internal/reduction"
	"fdgrid/internal/sim"
	"fdgrid/internal/sweep"
)

// Identity and set types.
type (
	// ProcID identifies a process (1..n).
	ProcID = ids.ProcID
	// Set is an immutable set of process identities.
	Set = ids.Set
)

// NewSet builds a set of process identities.
func NewSet(members ...ProcID) Set { return ids.NewSet(members...) }

// FullSet returns {1..n}.
func FullSet(n int) Set { return ids.FullSet(n) }

// Simulation types.
type (
	// Config parameterizes a run of the asynchronous system AS[n,t].
	Config = sim.Config
	// System is one simulated system instance.
	System = sim.System
	// Time is virtual time, in scheduler ticks.
	Time = sim.Time
	// Hold scripts adversarial message delays.
	Hold = sim.Hold
	// Pattern is a run's failure pattern.
	Pattern = sim.Pattern
	// Report summarizes a finished run.
	Report = sim.Report
	// Tag is an interned message tag: protocols intern their tag names
	// once (see Intern) and the wire carries small integer ids, while
	// metrics snapshots stay string-keyed.
	Tag = sim.Tag
	// Message is a point-to-point message as delivered to a process.
	Message = sim.Message
	// MetricsSnapshot is the string-keyed per-tag traffic summary of a
	// finished run.
	MetricsSnapshot = sim.MetricsSnapshot
)

// Intern returns the Tag for a message-tag name, allocating it on first
// use; idempotent and safe for concurrent use.
func Intern(name string) Tag { return sim.Intern(name) }

// NewSystem builds a system from cfg.
func NewSystem(cfg Config) (*System, error) { return sim.New(cfg) }

// MustNewSystem is NewSystem for statically valid configurations.
func MustNewSystem(cfg Config) *System { return sim.MustNew(cfg) }

// Failure detector interfaces and oracles.
type (
	// Suspector is the S_x / ◇S_x output interface.
	Suspector = fd.Suspector
	// Leader is the Ω_z output interface.
	Leader = fd.Leader
	// Querier is the φ_y / ◇φ_y / Ψ_y output interface.
	Querier = fd.Querier
	// OracleOption configures a ground-truth oracle.
	OracleOption = fd.Option
)

// Ground-truth oracle constructors (see internal/fd for options).
var (
	// NewS returns an S_x oracle (perpetual limited-scope accuracy).
	NewS = fd.NewS
	// NewEvtS returns a ◇S_x oracle.
	NewEvtS = fd.NewEvtS
	// NewOmega returns an Ω_z oracle.
	NewOmega = fd.NewOmega
	// NewPhi returns a φ_y oracle.
	NewPhi = fd.NewPhi
	// NewEvtPhi returns a ◇φ_y oracle.
	NewEvtPhi = fd.NewEvtPhi
	// NewP returns a perfect failure detector (φ_t ≡ P).
	NewP = fd.NewP
	// NewEvtP returns an eventually perfect failure detector (◇φ_t).
	NewEvtP = fd.NewEvtP
	// WrapPsi adds the Ψ containment contract to a φ oracle.
	WrapPsi = fd.WrapPsi

	// WithStabilizeAt, WithLeader, WithScope, WithTrusted, WithHostile,
	// WithAnarchyRate, WithEpoch, WithLag, WithLeaderSalt configure
	// oracles.
	WithStabilizeAt = fd.WithStabilizeAt
	WithLeader      = fd.WithLeader
	WithScope       = fd.WithScope
	WithTrusted     = fd.WithTrusted
	WithHostile     = fd.WithHostile
	WithAnarchyRate = fd.WithAnarchyRate
	WithEpoch       = fd.WithEpoch
	WithLag         = fd.WithLag
	WithLeaderSalt  = fd.WithLeaderSalt
)

// Trace recording and class checking.
type (
	// SetTrace records set-valued oracle outputs over a run.
	SetTrace = fd.SetTrace
)

var (
	// WatchLeader records trusted-set outputs for later checking.
	WatchLeader = fd.WatchLeader
	// WatchSuspector records suspected-set outputs.
	WatchSuspector = fd.WatchSuspector
)

// Agreement.
type (
	// Value is a proposal / decision value.
	Value = agreement.Value
	// Decision records one process's decision.
	Decision = agreement.Decision
	// Outcome collects proposals and decisions.
	Outcome = agreement.Outcome
)

// NewOutcome returns an empty outcome recorder.
func NewOutcome() *Outcome { return agreement.NewOutcome() }

// KSetMain returns a process main running the paper's Ω_z-based k-set
// agreement algorithm (Fig. 3) with the given leader oracle.
var KSetMain = agreement.KSetMain

// ConsensusDSMain returns a process main running the ◇S-based consensus
// baseline (rotating coordinator).
var ConsensusDSMain = agreement.ConsensusDSMain

// SequenceMain returns a process main running consecutive independent
// k-set instances (the repeated use-case behind zero-degradation).
var SequenceMain = agreement.SequenceMain

// AllInstancesDecided builds a stop predicate over a sequence's outcomes.
var AllInstancesDecided = agreement.AllInstancesDecided

// The grid.
type (
	// Family enumerates the failure detector families.
	Family = core.Family
	// Class is one failure detector class of the grid.
	Class = core.Class
	// Verdict answers a reducibility query.
	Verdict = core.Verdict
)

// Families (paper Fig. 1).
const (
	FamS      = core.FamS
	FamEvtS   = core.FamEvtS
	FamOmega  = core.FamOmega
	FamPhi    = core.FamPhi
	FamEvtPhi = core.FamEvtPhi
	FamPsi    = core.FamPsi
)

var (
	// KSetPower returns the smallest k the class solves k-set agreement
	// for (its grid line).
	KSetPower = core.KSetPower
	// GridLine returns the classes on line z of the grid.
	GridLine = core.GridLine
	// CanTransform answers reducibility/additivity queries per the
	// paper's theorems.
	CanTransform = core.CanTransform
	// SpawnKSetWith wires a k-set agreement run for any grid class,
	// stacking the prescribed transformations.
	SpawnKSetWith = core.SpawnKSetWith
)

// Transformations.
var (
	// SpawnTwoWheels runs the ◇S_x + ◇φ_y → Ω_z addition (Figs. 5–6)
	// on every process, returning the emulated Ω_z.
	SpawnTwoWheels = reduction.SpawnTwoWheels
	// SpawnLowerWheel runs the Fig. 5 component alone.
	SpawnLowerWheel = reduction.SpawnLowerWheel
	// NewPsiOmega builds Ω_z from Ψ_y locally (Fig. 8), y+z > t.
	NewPsiOmega = reduction.NewPsiOmega
	// SpawnAddS runs the S_x + φ_y → S_n addition (Fig. 9) over a
	// register substrate ("memory", "heartbeat" or "abd").
	SpawnAddS = reduction.SpawnAddS
)

// The scenario-sweep engine.
type (
	// SweepMatrix declares a scenario sweep: the protocol under test and
	// the dimensions (seeds × sizes × crash patterns × class combos)
	// whose cross product forms the cells.
	SweepMatrix = sweep.Matrix
	// SweepSize is one system-size point (n, t).
	SweepSize = sweep.Size
	// SweepCrashPattern is one adversary dimension point.
	SweepCrashPattern = sweep.CrashPattern
	// SweepCrashSpec schedules one crash (Proc ≤ 0 is relative to n).
	SweepCrashSpec = sweep.CrashSpec
	// SweepCombo is one failure-detector dimension point.
	SweepCombo = sweep.Combo
	// SweepCell is one concrete point of the cross product.
	SweepCell = sweep.Cell
	// SweepCellResult is the structured outcome of one cell.
	SweepCellResult = sweep.CellResult
	// SweepReport aggregates a matrix run; its CanonicalJSON is
	// byte-identical across repeated runs of the same matrix.
	SweepReport = sweep.Report
	// SweepOptions configures the worker pool and the optional shard.
	SweepOptions = sweep.Options
	// SweepShard selects slice i of m of a matrix's cells (set it on
	// SweepOptions); m shard runs merge back into the unsharded report
	// via MergeSweepReports, byte-identically.
	SweepShard = sweep.Shard
	// AdversaryFamily declares a generated adversary dimension point
	// (SweepMatrix.AdversaryFamilies): a schedule kind — staggered,
	// clustered, cascade, partition, silence — plus its knobs, expanded
	// deterministically per size by the adversary package.
	AdversaryFamily = adversary.Family
)

// MergeSweepReports recombines a complete shard family into the report
// the unsharded run would have produced (byte-identical canonical JSON).
func MergeSweepReports(parts []*SweepReport) (*SweepReport, error) {
	return sweep.MergeReports(parts)
}

// Sweep expands the matrix and runs every cell on a worker pool, each on
// an isolated simulated system. Because the simulator is
// lockstep-deterministic, the aggregated report is a pure function of
// the matrix: same matrix, same binary → byte-identical canonical JSON,
// whatever the worker count.
//
//	rep, err := fdgrid.Sweep(fdgrid.SweepMatrix{
//		Name: "two-wheels", Protocol: "two-wheels",
//		Seeds: []int64{0, 1, 2}, Sizes: []fdgrid.SweepSize{{N: 5, T: 2}},
//		Combos: []fdgrid.SweepCombo{{X: 2, Y: 1}},
//		GST: 500, MaxSteps: 100_000,
//		Params: map[string]int64{"stable_for": 10_000, "margin": 5_000},
//	}, fdgrid.SweepOptions{})
//
// See internal/sweep's runner registry for the built-in protocols; the
// sweep-based cmd/experiments regenerates every paper figure this way.
func Sweep(m SweepMatrix, opt SweepOptions) (*SweepReport, error) { return sweep.Run(m, opt) }

// SweepProtocols lists the registered sweep protocol names.
func SweepProtocols() []string { return sweep.Protocols() }

// AddOmega runs the complete two-wheels addition experiment: it builds
// AS[n,t] from cfg, runs ◇S_x + ◇φ_y → Ω_z with ground-truth sources,
// and returns the recorded output trace (check it with
// trace.CheckOmega(sys.Pattern(), t+2−x−y, margin)) together with the
// system and run report. If stableFor > 0 the run ends early once the
// emulated output has been stable that long at every correct process;
// pick it above the config's GST and last crash time.
func AddOmega(cfg Config, x, y int, stableFor Time) (*SetTrace, *System, Report, error) {
	sys, err := sim.New(cfg)
	if err != nil {
		return nil, nil, Report{}, err
	}
	susp := fd.NewEvtS(sys, x)
	quer := fd.NewEvtPhi(sys, y)
	emu, _ := reduction.SpawnTwoWheels(sys, susp, quer, x, y)
	trace := fd.WatchLeader(sys, emu)
	var stop func() bool
	if stableFor > 0 {
		stop = trace.StableFor(sys.Pattern().Correct(), stableFor)
	}
	rep := sys.Run(stop)
	return trace, sys, rep, nil
}
