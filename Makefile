# fdgrid — build, verify and smoke-test the reproduction.
#
#   make ci      vet + build + race tests + sweep smoke run (the full gate)
#   make test    plain unit tests
#   make smoke   short parallel sweep through cmd/experiments
#   make bench   benchmarks (5 counts) + sweep wall time → BENCH_PR2.json

GO ?= go

.PHONY: ci vet build test race smoke bench bench-smoke clean

ci: vet build race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A short end-to-end sweep: every experiment matrix runs (the full
# matrix takes under two seconds), the rendered report and canonical
# JSON land in /tmp. Fails if any experiment reports FAILED. Fewer seeds
# are not used: EXP-T5's distinct-value witness needs several.
smoke: build
	$(GO) run ./cmd/experiments -out /tmp/fdgrid-smoke.md -report /tmp/fdgrid-smoke.json
	@if grep -q "FAILED" /tmp/fdgrid-smoke.md; then \
		echo "smoke sweep has FAILED verdicts:"; grep -B1 "FAILED" /tmp/fdgrid-smoke.md; exit 1; \
	fi
	@echo "smoke sweep clean: /tmp/fdgrid-smoke.md"

# Full benchmark pass: every benchmark 5 times (benchstat wants repeated
# samples; a duration-based benchtime lets the nanosecond scheduler
# micro-benchmarks amortize their setup while keeping the sweep-heavy
# ones tractable), plus three timed runs of the full 151-cell experiment
# matrix. The parsed record lands in BENCH_PR2.json; a "baseline"
# section already present there (the committed PR-1 reference) is
# preserved.
bench: build
	$(GO) test -bench . -benchmem -count 5 -benchtime 300ms -run XXX . | tee /tmp/fdgrid-bench.txt
	rm -f /tmp/fdgrid-sweeptime.txt
	for i in 1 2 3; do $(GO) run ./cmd/experiments -out /tmp/fdgrid-bench-sweep.md >> /tmp/fdgrid-sweeptime.txt || exit 1; done
	cat /tmp/fdgrid-sweeptime.txt
	$(GO) run ./cmd/bench2json -bench /tmp/fdgrid-bench.txt -sweep /tmp/fdgrid-sweeptime.txt -out BENCH_PR2.json

# The bench smoke CI runs: the scheduler micro-benchmarks only, enough
# to catch a perf-path regression that breaks outright.
bench-smoke: build
	$(GO) test -bench 'BenchmarkScheduler' -benchtime 1000x -run XXX .

clean:
	rm -f /tmp/fdgrid-smoke.md /tmp/fdgrid-smoke.json
