# fdgrid — build, verify and smoke-test the reproduction.
#
#   make ci      vet + build + race tests + sweep smoke run (the full gate)
#   make test    plain unit tests
#   make smoke   short parallel sweep through cmd/experiments
#   make bench   the paper-figure benchmarks

GO ?= go

.PHONY: ci vet build test race smoke bench clean

ci: vet build race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A short end-to-end sweep: every experiment matrix runs (the full
# matrix takes under two seconds), the rendered report and canonical
# JSON land in /tmp. Fails if any experiment reports FAILED. Fewer seeds
# are not used: EXP-T5's distinct-value witness needs several.
smoke: build
	$(GO) run ./cmd/experiments -out /tmp/fdgrid-smoke.md -report /tmp/fdgrid-smoke.json
	@if grep -q "FAILED" /tmp/fdgrid-smoke.md; then \
		echo "smoke sweep has FAILED verdicts:"; grep -B1 "FAILED" /tmp/fdgrid-smoke.md; exit 1; \
	fi
	@echo "smoke sweep clean: /tmp/fdgrid-smoke.md"

bench:
	$(GO) test -bench . -benchtime 1x -run XXX .

clean:
	rm -f /tmp/fdgrid-smoke.md /tmp/fdgrid-smoke.json
