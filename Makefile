# fdgrid — build, verify and smoke-test the reproduction.
#
#   make ci          vet + build + race tests + sweep smoke + examples (the full gate)
#   make lint        detlint: machine-check the determinism contracts
#   make test        plain unit tests
#   make smoke       short parallel sweep through cmd/experiments
#   make dispatch-smoke  suite through sweepd with a worker crash, diffed vs golden
#   make examples    go run every runnable example (drift gate)
#   make bench       benchmarks (5 counts) + sweep wall time → $(BENCH_OUT)
#   make bench-gate  scheduler micro-benchmarks vs the committed baseline
#
# BENCH_OUT names the committed benchmark record; override it when
# cutting a new baseline (e.g. `make bench BENCH_OUT=BENCH_PR4.json`).

GO ?= go
BENCH_OUT ?= BENCH_PR7.json

.PHONY: ci vet lint build test race smoke dispatch-smoke examples bench bench-smoke bench-gate clean

ci: vet build race smoke dispatch-smoke examples

# detlint machine-checks the determinism and run-token ownership
# contracts (docs/ARCHITECTURE.md, "Enforced invariants"): wall-clock
# reads, global math/rand draws, map-order leaks into ordered output,
# locks/goroutines in run-token-owned packages, non-canonical trace
# rendering. Escapes are //detlint:allow comments with audited reasons.
lint:
	$(GO) run ./cmd/detlint ./...

# vet also enforces gofmt (a formatting diff fails the target with the
# offending files listed) and runs detlint, so the local static gate
# matches the CI vet job.
vet: lint
	$(GO) vet ./...
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -shuffle randomizes test order so inter-test state dependence breaks
# loudly here instead of lurking until a refactor reorders a file.
race:
	$(GO) test -race -shuffle=on ./...

# A short end-to-end sweep: every experiment matrix runs (the full
# matrix takes a couple of seconds), the rendered report and canonical
# JSON land in /tmp. Fails if any experiment reports FAILED. Fewer seeds
# are not used: EXP-T5's distinct-value witness needs several.
smoke: build
	$(GO) run ./cmd/experiments -out /tmp/fdgrid-smoke.md -report /tmp/fdgrid-smoke.json
	@if grep -q "FAILED" /tmp/fdgrid-smoke.md; then \
		echo "smoke sweep has FAILED verdicts:"; grep -B1 "FAILED" /tmp/fdgrid-smoke.md; exit 1; \
	fi
	@echo "smoke sweep clean: /tmp/fdgrid-smoke.md"

# Dispatch smoke: the fault-tolerance path end to end. Export the full
# suite's matrix specs, run them through sweepd with a 3-subprocess
# worker fleet while the fault injector crashes worker 0 after its 5th
# cell, and byte-compare the merged report against the committed suite
# golden — the dispatcher's suspicion, retries and re-sharding must
# provably lose nothing. The stats artifact (retries, workers lost,
# duplicates discarded) is printed for the log but never byte-compared.
dispatch-smoke: build
	$(GO) build -o /tmp/fdgrid-sweepd ./cmd/sweepd
	$(GO) run ./cmd/experiments -seeds 3 -matrices /tmp/fdgrid-suite-spec.json
	/tmp/fdgrid-sweepd -matrices /tmp/fdgrid-suite-spec.json -workers 3 -units 8 \
		-fault "0:crash@5" -suspect 2s \
		-report /tmp/fdgrid-suite-dispatched.json \
		-stats /tmp/fdgrid-dispatch-stats.json \
		-golden cmd/experiments/testdata/suite.golden.json
	@cat /tmp/fdgrid-dispatch-stats.json

# Examples smoke: run every example binary end to end so example drift
# (an API change the examples were not updated for, a run that starts
# failing) breaks the gate instead of rotting silently. Examples print
# to stdout; only their exit codes gate.
examples: build
	@for d in examples/*/; do \
		echo "go run ./$$d"; \
		$(GO) run ./$$d >/dev/null || exit 1; \
	done
	@echo "examples clean"

# Full benchmark pass: every benchmark 5 times (benchstat wants repeated
# samples; a duration-based benchtime lets the nanosecond scheduler
# micro-benchmarks amortize their setup while keeping the sweep-heavy
# ones tractable), plus three timed runs of the full experiment matrix.
# The parsed record lands in $(BENCH_OUT); a "baseline" section already
# present there (the committed PR-1 reference) is preserved.
bench: build
	$(GO) test -bench . -benchmem -count 5 -benchtime 300ms -run XXX . | tee /tmp/fdgrid-bench.txt
	rm -f /tmp/fdgrid-sweeptime.txt
	for i in 1 2 3; do $(GO) run ./cmd/experiments -out /tmp/fdgrid-bench-sweep.md >> /tmp/fdgrid-sweeptime.txt || exit 1; done
	cat /tmp/fdgrid-sweeptime.txt
	$(GO) run ./cmd/bench2json -bench /tmp/fdgrid-bench.txt -sweep /tmp/fdgrid-sweeptime.txt -out $(BENCH_OUT)

# The bench smoke CI runs: the scheduler and batched-delivery
# micro-benchmarks only, enough to catch a perf-path regression that
# breaks outright.
bench-smoke: build
	$(GO) test -bench 'BenchmarkScheduler|BenchmarkDeliverBatch|BenchmarkBroadcastFanout' -benchtime 1000x -run XXX .

# The CI benchmark-regression gate: sample the scheduler and
# batched-delivery micro-benchmarks a few times and compare medians
# against the committed record; a >25% median regression fails (see
# cmd/benchgate for why the threshold is generous).
bench-gate: build
	$(GO) test -bench 'BenchmarkScheduler|BenchmarkDeliverBatch|BenchmarkBroadcastFanout' -benchtime 200ms -count 5 -run XXX . | tee /tmp/fdgrid-bench-gate.txt
	$(GO) run ./cmd/benchgate -baseline $(BENCH_OUT) -bench /tmp/fdgrid-bench-gate.txt -match 'BenchmarkScheduler|BenchmarkDeliverBatch|BenchmarkBroadcastFanout' -threshold 0.25

clean:
	rm -f /tmp/fdgrid-smoke.md /tmp/fdgrid-smoke.json
