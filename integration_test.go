package fdgrid

import (
	"math/rand"
	"testing"

	"fdgrid/internal/core"
	"fdgrid/internal/sim"
)

// TestRandomizedGridSweep is the repository's fuzz-style integration
// test: random system sizes, crash schedules (count, victims and times
// all random, up to t), random grid classes — every run must satisfy
// validity, z-agreement and termination through whatever transformation
// stack the class requires.
func TestRandomizedGridSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep is slow; run without -short")
	}
	const runs = 16
	rng := rand.New(rand.NewSource(20260610))
	for i := 0; i < runs; i++ {
		n := 5 + 2*rng.Intn(3) // 5, 7, 9
		tt := (n - 1) / 2
		// Random crash schedule: up to t crashes, random times (0 = initial).
		crashes := make(map[ProcID]Time)
		for _, p := range rng.Perm(n)[:rng.Intn(tt+1)] {
			crashes[ProcID(p+1)] = Time(rng.Intn(1_500))
		}
		z := 1 + rng.Intn(tt+1)
		line := core.GridLine(z, tt)
		c := line[rng.Intn(len(line))]

		cfg := sim.Config{
			N: n, T: tt, Seed: rng.Int63(), MaxSteps: 3_000_000,
			GST: sim.Time(200 + rng.Intn(1_000)), Crashes: crashes, Bandwidth: n,
		}
		sys := MustNewSystem(cfg)
		out, err := SpawnKSetWith(sys, c, nil)
		if err != nil {
			t.Fatalf("run %d (%v, n=%d, t=%d): %v", i, c, n, tt, err)
		}
		rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
		if !rep.StoppedEarly {
			t.Errorf("run %d (%v, n=%d, t=%d, crashes=%v): timed out; decisions %v",
				i, c, n, tt, crashes, out.Decisions())
			continue
		}
		if err := out.Check(sys.Pattern(), z); err != nil {
			t.Errorf("run %d (%v, n=%d, t=%d, crashes=%v, seed=%d): %v",
				i, c, n, tt, crashes, cfg.Seed, err)
		}
	}
}

// TestCascadingCrashesDuringAgreement injects the maximum number of
// crashes at staggered times straddling the GST — the harshest legal
// failure schedule — and checks agreement still holds.
func TestCascadingCrashesDuringAgreement(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		const (
			n  = 9
			tt = 4
		)
		cfg := Config{
			N: n, T: tt, Seed: seed, MaxSteps: 3_000_000, GST: 1_000, Bandwidth: n,
			Crashes: map[ProcID]Time{
				2: 0,     // initial
				4: 500,   // pre-GST
				6: 1_000, // at GST
				8: 1_500, // post-GST
			},
		}
		sys := MustNewSystem(cfg)
		oracle := NewOmega(sys, 2)
		out := NewOutcome()
		for p := 1; p <= n; p++ {
			sys.Spawn(ProcID(p), KSetMain(oracle, Value(1000+p), out))
		}
		rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
		if !rep.StoppedEarly {
			t.Fatalf("seed %d: timed out", seed)
		}
		if err := out.Check(sys.Pattern(), 2); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestAgreementSafetyNeverViolated: across many seeds, no run — however
// unlucky — ever decides more than z distinct values (safety is per-run,
// not probabilistic).
func TestAgreementSafetyNeverViolated(t *testing.T) {
	const (
		n = 5
		z = 2
	)
	for seed := int64(0); seed < 20; seed++ {
		cfg := Config{
			N: n, T: 2, Seed: seed, MaxSteps: 1_500_000,
			GST: 2_500, Bandwidth: n, // long anarchy: maximal adversarial window
		}
		sys := MustNewSystem(cfg)
		oracle := NewOmega(sys, z)
		out := NewOutcome()
		for p := 1; p <= n; p++ {
			sys.Spawn(ProcID(p), KSetMain(oracle, Value(p), out))
		}
		rep := sys.Run(out.AllDecided(sys.Pattern().Correct()))
		if !rep.StoppedEarly {
			t.Fatalf("seed %d: timed out", seed)
		}
		if got := len(out.DistinctValues()); got > z {
			t.Fatalf("seed %d: %d distinct values decided (z=%d)", seed, got, z)
		}
	}
}
